package tagger

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestPostmortemStoreEndToEnd drives the whole forensics chain the way
// a soak harness would: a detect-arm run with the flight recorder
// sinking into a PostmortemStore, served at /debug/postmortem.
func TestPostmortemStoreEndToEnd(t *testing.T) {
	store := &PostmortemStore{}
	res, err := DetectRunFlightRec(1, ArmDetect, nil, FlightRecConfig{Sink: store.Sink()})
	if err != nil {
		t.Fatalf("DetectRunFlightRec: %v", err)
	}
	if len(res.Incidents) == 0 {
		t.Fatal("detect arm captured no incidents; the CBD workload should deadlock")
	}
	if store.Len() != len(res.Incidents) {
		t.Fatalf("store holds %d episodes, run captured %d incidents", store.Len(), len(res.Incidents))
	}

	eps := store.PostmortemEpisodes()
	first := eps[0]
	if first.Trigger != string(sim.TriggerDeadlockOnset) {
		t.Fatalf("first episode trigger = %q, want %q", first.Trigger, sim.TriggerDeadlockOnset)
	}
	for _, want := range []string{"POST-MORTEM:", "wait-for cycle", "flow "} {
		if !strings.Contains(first.Report, want) {
			t.Errorf("report missing %q:\n%s", want, first.Report)
		}
	}

	// The library report matches what PostmortemReport renders from the
	// raw capture bytes.
	direct, err := PostmortemReport(res.Incidents[0].Data)
	if err != nil {
		t.Fatalf("PostmortemReport: %v", err)
	}
	if direct != first.Report {
		t.Error("stored report differs from direct render of the same capture")
	}

	// Served over the ops endpoint.
	srv := httptest.NewServer(telemetry.HandlerWithPostmortem(store))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/postmortem")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var idx struct {
		Count    int `json:"count"`
		Episodes []struct {
			Seq       int    `json:"seq"`
			Trigger   string `json:"trigger"`
			ReportURL string `json:"report_url"`
		} `json:"episodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatalf("decode index: %v", err)
	}
	if idx.Count != store.Len() || len(idx.Episodes) != store.Len() {
		t.Fatalf("index count = %d (%d rows), want %d", idx.Count, len(idx.Episodes), store.Len())
	}
	rep, err := http.Get(srv.URL + idx.Episodes[0].ReportURL)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Body.Close()
	body, _ := io.ReadAll(rep.Body)
	if string(body) != first.Report {
		t.Error("served report differs from stored report")
	}
}
