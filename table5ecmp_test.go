package tagger

import "testing"

func TestTable5ECMPCase(t *testing.T) {
	row, err := Table5CaseECMP(40, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Table5Case(40, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.ELPSize <= plain.ELPSize {
		t.Errorf("ECMP ELP %d not denser than per-pair %d", row.ELPSize, plain.ELPSize)
	}
	if row.Priorities > 3 {
		t.Errorf("ECMP ELP needs %d priorities, want <= 3 (Table 5)", row.Priorities)
	}
	t.Logf("plain: %d paths/%d prios; ecmp: %d paths/%d prios, %d rules",
		plain.ELPSize, plain.Priorities, row.ELPSize, row.Priorities, row.Rules)
}
