package tagger

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// dropSpanCounters filters out span self-measurement (span_alloc_bytes_total
// et al.), which tracks the process heap, not the simulation.
func dropSpanCounters(cs []telemetry.CounterSnap) []telemetry.CounterSnap {
	out := cs[:0:0]
	for _, c := range cs {
		if strings.HasPrefix(c.Name, "span_") {
			continue
		}
		out = append(out, c)
	}
	return out
}

// TestChaosSweepParDeterminism is the sweep-level determinism contract,
// run under -race by `make determinism`: fanning the seeded soaks across
// workers changes wall-clock only — per-seed verdicts and the merged
// telemetry aggregate are byte-identical to the serial sweep.
func TestChaosSweepParDeterminism(t *testing.T) {
	seeds := sweep.Seeds(1, 4)
	for _, withTagger := range []bool{false, true} {
		serialReg := telemetry.NewRegistry()
		serial, err := ChaosSweep(seeds, withTagger, 1, serialReg)
		if err != nil {
			t.Fatalf("withTagger=%v serial: %v", withTagger, err)
		}
		parReg := telemetry.NewRegistry()
		par, err := ChaosSweep(seeds, withTagger, 4, parReg)
		if err != nil {
			t.Fatalf("withTagger=%v par: %v", withTagger, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("withTagger=%v: par=4 verdicts diverge from par=1:\n%+v\n%+v",
				withTagger, serial, par)
		}
		// Spans measure the harness itself — wall-clock durations and
		// process-global alloc deltas — and legitimately differ run to
		// run; compare the simulator/deploy metrics instead — every
		// non-span counter and the merged histogram populations.
		sa, sb := serialReg.Snapshot(), parReg.Snapshot()
		ca, cb := dropSpanCounters(sa.Counters), dropSpanCounters(sb.Counters)
		if !reflect.DeepEqual(ca, cb) {
			t.Errorf("withTagger=%v: merged counters diverge between par=1 and par=4:\n%+v\n%+v",
				withTagger, ca, cb)
		}
		if len(sa.Hists) != len(sb.Hists) {
			t.Fatalf("withTagger=%v: histogram sets diverge: %d vs %d", withTagger, len(sa.Hists), len(sb.Hists))
		}
		for i := range sa.Hists {
			a, b := sa.Hists[i], sb.Hists[i]
			if a.Name != b.Name || !reflect.DeepEqual(a.Labels, b.Labels) {
				t.Fatalf("withTagger=%v: histogram %d identity diverges: %s vs %s", withTagger, i, a.Name, b.Name)
			}
			// Duration-valued histograms under "span_*" aggregate timing;
			// everything else (pause durations, queue depths in sim time)
			// must match exactly, count and buckets.
			if a.Name == "span_duration_seconds" || a.Name == "span_alloc_bytes" {
				continue
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("withTagger=%v: histogram %s diverges between par=1 and par=4", withTagger, a.Name)
			}
		}
	}
}

// TestChaosSweepMatchesSoak: the sweep is a pure fan-out of ChaosSoak —
// element i equals an independent ChaosSoak of the same seed.
func TestChaosSweepMatchesSoak(t *testing.T) {
	seeds := sweep.Seeds(1, 2)
	res, err := ChaosSweep(seeds, true, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		solo, err := ChaosSoak(seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res[i], solo) {
			t.Errorf("sweep seed %d diverges from a standalone soak", seed)
		}
	}
}
