package tagger

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	clos, err := NewClos(ClosConfig{Pods: 2, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 2, HostsPerToR: 4})
	if err != nil {
		t.Fatal(err)
	}
	set := KBounceELP(clos, 1)
	sys, err := SynthesizeClos(clos, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NumLosslessQueues(); got != 2 {
		t.Errorf("queues = %d, want 2", got)
	}
	if err := sys.Runtime.Verify(); err != nil {
		t.Fatal(err)
	}
	entries := CompressRules(sys.Rules.Rules())
	if len(entries) == 0 || MaxEntriesPerSwitch(entries) == 0 {
		t.Fatal("no TCAM entries")
	}
}

func TestWalkThroughExperiment(t *testing.T) {
	res, g, err := WalkThrough()
	if err != nil {
		t.Fatal(err)
	}
	if res.BruteForceSwitchTags != 3 {
		t.Errorf("Algorithm 1 tags = %d, want 3 (paper Fig 5b)", res.BruteForceSwitchTags)
	}
	if res.MergedSwitchTags != 2 {
		t.Errorf("Algorithm 2 tags = %d, want 2 (paper Fig 5c)", res.MergedSwitchTags)
	}
	if len(res.MergedRules) == 0 || len(res.BruteForceRules) < len(res.MergedRules) {
		t.Errorf("rule counts: bf=%d merged=%d", len(res.BruteForceRules), len(res.MergedRules))
	}
	table := RuleTable(g, res.MergedRules)
	if !strings.Contains(table, "NewTag") {
		t.Error("rule table header missing")
	}
}

func TestFigure6Experiment(t *testing.T) {
	res, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedyQueues != 3 || res.OptimalQueues != 2 {
		t.Errorf("fig6 = %+v, want greedy 3 / optimal 2", res)
	}
}

func TestTable1Experiment(t *testing.T) {
	res := Table1(2, 300_000)
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	if p := res.OverallProbability(); p < 0 || p > 1e-3 {
		t.Errorf("probability %.2e out of band", p)
	}
	if !strings.Contains(res.String(), "Reroute probability") {
		t.Error("table header")
	}
}

func TestTable5SmallCase(t *testing.T) {
	row, err := Table5Case(50, 12, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Priorities > 3 {
		t.Errorf("jellyfish-50 priorities = %d, want <= 3 (paper Table 5)", row.Priorities)
	}
	if row.ELPSize != 50*49 {
		t.Errorf("ELP size = %d", row.ELPSize)
	}
	if row.Rules <= 0 || row.LongestLossless <= 0 {
		t.Errorf("row = %+v", row)
	}
}

func TestFigure10Experiment(t *testing.T) {
	without := Figure10(false)
	if !without.Deadlocked {
		t.Error("fig10 without Tagger should deadlock")
	}
	with := Figure10(true)
	if with.Deadlocked {
		t.Error("fig10 with Tagger deadlocked")
	}
	for _, f := range with.Flows {
		if f.LateGbps < 10 {
			t.Errorf("flow %s at %.1f Gbps", f.Name, f.LateGbps)
		}
		if len(f.Points) == 0 {
			t.Error("empty series")
		}
	}
}

func TestOverheadExperiment(t *testing.T) {
	res := Overhead()
	if res.BaselineGbps == 0 {
		t.Fatal("no baseline goodput")
	}
	if p := res.PenaltyPercent(); p > 1 || p < -1 {
		t.Errorf("overhead %.2f%%, want within ±1%%", p)
	}
}

func TestMultiClassExperiment(t *testing.T) {
	res, err := MultiClass(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedQueues != 3 || res.NaiveQueues != 4 {
		t.Errorf("multi-class = %+v, want shared 3 / naive 4", res)
	}
}

func TestBCubeTagsExperiment(t *testing.T) {
	tags, err := BCubeTags(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tags != 2 {
		t.Errorf("BCube(4,1) tags = %d, want 2 (levels)", tags)
	}
}

func TestMinLosslessQueues(t *testing.T) {
	if MinLosslessQueues(2) != 3 {
		t.Error("lower bound")
	}
}

func TestComputeRoutesFacade(t *testing.T) {
	clos := PaperTestbed()
	tb := ComputeRoutes(clos.Graph, UpDown)
	if tb.Entries() == 0 {
		t.Fatal("no routes")
	}
	n := NewSimulation(clos.Graph, tb, DefaultSimConfig())
	f := n.AddFlow(FlowSpec{Name: "x", Src: clos.Hosts[0], Dst: clos.Hosts[8]})
	n.Run(2_000_000) // 2 ms
	if f.Received() == 0 {
		t.Fatal("simulation facade broken")
	}
}
