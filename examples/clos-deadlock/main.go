// clos-deadlock reproduces the paper's headline demonstration (Figures 3
// and 10): two loop-free flows on 1-bounce reroute paths create a cyclic
// buffer dependency and freeze the fabric; the same scenario under Tagger
// keeps both flows running.
package main

import (
	"fmt"

	tagger "repro"
	"repro/internal/metrics"
)

func main() {
	fmt.Println("Figure 3/10: two 1-bounce flows on the testbed Clos")
	fmt.Println()

	fmt.Println("--- without Tagger ---")
	show(tagger.Figure10(false))

	fmt.Println()
	fmt.Println("--- with Tagger (bounce budget k=1, 2 lossless queues) ---")
	show(tagger.Figure10(true))
}

func show(res tagger.ExperimentResult) {
	if res.Deadlocked {
		fmt.Println("deadlock: the pause-wait cycle is exactly the paper's CBD:")
		for _, e := range res.Cycle {
			fmt.Printf("    %s\n", e)
		}
	} else {
		fmt.Println("no deadlock")
	}
	for _, f := range res.Flows {
		vals := make([]float64, len(f.Points))
		for i, p := range f.Points {
			vals[i] = p.Gbps
		}
		fmt.Printf("  %-6s %s late %.1f Gbps\n", f.Name, metrics.Sparkline(vals, 40), f.LateGbps)
	}
}
