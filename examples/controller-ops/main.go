// controller-ops demonstrates the §6 operational story: a controller
// deploys verified Tagger rules once; link failures need zero rule
// changes (the rules are static by design), and expanding the fabric by a
// pod produces a small incremental bundle that never touches old
// non-spine switches. It then replays the expansion against an
// unreliable switch fabric to show the fault-tolerant deployment
// pipeline: transient install failures are retried with backoff, a
// partial install is caught by readback verification, and an activation
// failure rolls every already-flipped switch back to the previous
// verified bundle — the fabric never runs a half-installed rule set.
package main

import (
	"fmt"
	"log"

	tagger "repro"
)

func main() {
	clos := tagger.PaperTestbed()
	ctl, err := tagger.NewClosController(clos, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial deployment: %d lossless queues, %d switches with rules\n",
		ctl.System().NumLosslessQueues(), len(ctl.Bundle().Switches))

	// A day in production: links flap.
	g := clos.Graph
	events := []tagger.ControllerEvent{
		{Kind: tagger.EventLinkDown, A: g.MustLookup("L1"), B: g.MustLookup("T1")},
		{Kind: tagger.EventLinkDown, A: g.MustLookup("L3"), B: g.MustLookup("T4")},
		{Kind: tagger.EventLinkUp, A: g.MustLookup("L1"), B: g.MustLookup("T1")},
	}
	for _, ev := range events {
		if err := ctl.Handle(ev); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after %d failure events: %d rule updates pushed (Tagger rules are static)\n",
		ctl.FailureCount(), len(ctl.Diffs()))

	// Capacity expansion: one more pod under the existing spines.
	if err := clos.Expand(1); err != nil {
		log.Fatal(err)
	}
	if err := ctl.Handle(tagger.ControllerEvent{Kind: tagger.EventExpansion}); err != nil {
		log.Fatal(err)
	}
	diffs := ctl.Diffs()
	diff := diffs[len(diffs)-1]
	fmt.Printf("after adding a pod: incremental update touches %d switches:\n", len(diff))
	for name, d := range diff {
		fmt.Printf("  %-4s +%d rules -%d rules\n", name, len(d.Added), len(d.Removed))
	}
	fmt.Printf("still %d lossless queues; deployment re-verified deadlock-free\n",
		ctl.System().NumLosslessQueues())

	// The bundle is plain JSON an operator can diff and version.
	data, err := ctl.Bundle().Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment bundle: %d bytes of JSON\n", len(data))

	// ---- Part 2: the same deployment against unreliable switch agents.
	fmt.Println("\n== deploying through an unreliable fabric ==")
	clos2 := tagger.PaperTestbed()
	var names []string
	for _, sw := range clos2.Graph.Switches() {
		names = append(names, clos2.Graph.Node(sw).Name)
	}
	fab := tagger.NewChaosFabric(names)
	// T1 refuses its first two installs; L2 silently drops 60% of the
	// first bundle it is sent while reporting success.
	fab.Inject("T1", tagger.ChaosFault{Kind: tagger.ChaosFaultInstallTransient, Count: 2})
	fab.Inject("L2", tagger.ChaosFault{Kind: tagger.ChaosFaultInstallPartial, Frac: 0.4})

	ctl2, err := tagger.NewClosController(clos2, 1,
		tagger.WithSwitchAgent(fab), tagger.WithDeployConfig(tagger.DefaultDeployConfig()))
	if err != nil {
		log.Fatal(err)
	}
	cnt := ctl2.Counters()
	fmt.Printf("deployed despite faults: %d install failures retried, %d partial installs caught by readback\n",
		cnt["deploy.install.fail"], cnt["deploy.partial_detected"])
	if n := len(tagger.DiffBundles(fab.ActiveBundle(ctl2.Bundle().MaxTag), ctl2.Bundle())); n != 0 {
		log.Fatalf("fabric diverges from verified bundle on %d switches", n)
	}
	fmt.Println("fabric active state verified identical to the controller's bundle")

	// Now an expansion where one spine accepts the new rules but can
	// never activate them: the push must fail atomically.
	if err := clos2.Expand(1); err != nil {
		log.Fatal(err)
	}
	for _, sw := range clos2.Graph.Switches() {
		fab.Add(clos2.Graph.Node(sw).Name) // rack the new pod's agents
	}
	prev := ctl2.Bundle()
	fab.Inject("S2",
		tagger.ChaosFault{Kind: tagger.ChaosFaultPass}, // install lands
		tagger.ChaosFault{Kind: tagger.ChaosFaultPass}, // readback verifies
		tagger.ChaosFault{Kind: tagger.ChaosFaultInstallPersistent, Count: 1 << 20})
	err = ctl2.Handle(tagger.ControllerEvent{Kind: tagger.EventExpansion})
	fmt.Printf("expansion push failed as expected: %v\n", err)
	if err == nil {
		log.Fatal("expansion through a wedged spine should have failed")
	}
	if ctl2.Bundle() != prev {
		log.Fatal("controller advanced past a failed push")
	}
	if n := len(tagger.DiffBundles(fab.ActiveBundle(prev.MaxTag), prev)); n != 0 {
		log.Fatalf("fabric left half-installed on %d switches after rollback", n)
	}
	cnt = ctl2.Counters()
	fmt.Printf("rolled back cleanly: rollbacks=%d, fabric still runs the previous verified bundle\n",
		cnt["deploy.rollbacks"])

	fmt.Println("\naudit tail:")
	audit := ctl2.Audit()
	for _, e := range audit[len(audit)-5:] {
		fmt.Println("  " + e.String())
	}
}
