// controller-ops demonstrates the §6 operational story: a controller
// deploys verified Tagger rules once; link failures need zero rule
// changes (the rules are static by design), and expanding the fabric by a
// pod produces a small incremental bundle that never touches old
// non-spine switches.
package main

import (
	"fmt"
	"log"

	tagger "repro"
)

func main() {
	clos := tagger.PaperTestbed()
	ctl, err := tagger.NewClosController(clos, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial deployment: %d lossless queues, %d switches with rules\n",
		ctl.System().NumLosslessQueues(), len(ctl.Bundle().Switches))

	// A day in production: links flap.
	g := clos.Graph
	events := []tagger.ControllerEvent{
		{Kind: "link-down", A: g.MustLookup("L1"), B: g.MustLookup("T1")},
		{Kind: "link-down", A: g.MustLookup("L3"), B: g.MustLookup("T4")},
		{Kind: "link-up", A: g.MustLookup("L1"), B: g.MustLookup("T1")},
	}
	for _, ev := range events {
		if err := ctl.Handle(ev); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after %d failure events: %d rule updates pushed (Tagger rules are static)\n",
		ctl.FailureEvents, len(ctl.PushedDiffs))

	// Capacity expansion: one more pod under the existing spines.
	if err := clos.Expand(1); err != nil {
		log.Fatal(err)
	}
	if err := ctl.Handle(tagger.ControllerEvent{Kind: "expansion"}); err != nil {
		log.Fatal(err)
	}
	diff := ctl.PushedDiffs[len(ctl.PushedDiffs)-1]
	fmt.Printf("after adding a pod: incremental update touches %d switches:\n", len(diff))
	for name, d := range diff {
		fmt.Printf("  %-4s +%d rules -%d rules\n", name, len(d.Added), len(d.Removed))
	}
	fmt.Printf("still %d lossless queues; deployment re-verified deadlock-free\n",
		ctl.System().NumLosslessQueues())

	// The bundle is plain JSON an operator can diff and version.
	data, err := ctl.Bundle().Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment bundle: %d bytes of JSON\n", len(data))
}
