// jellyfish-scale shows that Tagger needs only a handful of lossless
// queues even on unstructured random topologies (the paper's Table 5):
// generic Algorithms 1+2 on Jellyfish with shortest-path ELPs.
package main

import (
	"fmt"
	"log"

	tagger "repro"
)

func main() {
	fmt.Println("Jellyfish scalability (Table 5): priorities and TCAM entries vs size")
	fmt.Println()

	for _, cfg := range []struct {
		switches, ports, extra int
	}{
		{30, 8, 0},
		{60, 12, 0},
		{120, 16, 0},
		{120, 16, 2000}, // operator adds redundant random paths
	} {
		row, err := tagger.Table5Case(cfg.switches, cfg.ports, cfg.extra, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("switches=%-4d ports=%-3d elp=%-6d (+%d random) -> %d lossless queues, %d TCAM entries max/switch\n",
			row.Switches, row.Ports, row.ELPSize, row.ExtraRandom, row.Priorities, row.Rules)
	}

	fmt.Println()
	fmt.Println("The paper reports 3 priorities suffice even at 2,000 switches;")
	fmt.Println("run `go run ./cmd/taggerscale -switches 2000 -ports 24` to check.")
}
