// Quickstart: build a Clos, pick the expected lossless paths, synthesize
// Tagger rules, verify deadlock freedom, and inspect what a deployment
// would install.
package main

import (
	"fmt"
	"log"

	tagger "repro"
)

func main() {
	// A production-style 3-layer Clos: 2 pods x (2 ToRs + 2 leaves),
	// 2 spines, 4 servers per rack.
	clos, err := tagger.NewClos(tagger.ClosConfig{
		Pods: 2, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 2, HostsPerToR: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The operator decides what must be lossless: all shortest up-down
	// paths plus every 1-bounce reroute (so a single link failure never
	// costs losslessness).
	elp := tagger.KBounceELP(clos, 1)
	fmt.Printf("expected lossless paths: %d\n", elp.Len())

	// Synthesize the provably optimal Clos tagging: bounce counting.
	sys, err := tagger.SynthesizeClos(clos, elp, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossless queues needed: %d (lower bound: %d)\n",
		sys.NumLosslessQueues(), tagger.MinLosslessQueues(1))

	// The deadlock-freedom proof obligations of the paper's Theorem 5.1,
	// checked mechanically on the runtime tagged graph.
	if err := sys.Runtime.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: per-tag CBD-freedom and tag monotonicity hold")

	// What actually lands in switch TCAMs.
	entries := tagger.CompressRules(sys.Rules.Rules())
	fmt.Printf("match-action rules: %d exact -> %d TCAM entries (max %d on one switch)\n",
		len(sys.Rules.Rules()), len(entries), tagger.MaxEntriesPerSwitch(entries))

	// Replaying a failure path: a packet that bounces once stays
	// lossless in tag 2; a second bounce demotes it to the lossy class.
	g := clos.Graph
	bounced := tagger.Path{
		g.MustLookup("T3"), g.MustLookup("L3"), g.MustLookup("S2"),
		g.MustLookup("L1"), g.MustLookup("S1"), g.MustLookup("L2"), g.MustLookup("T1"),
	}
	res := sys.Rules.Replay(bounced, 1)
	fmt.Printf("1-bounce path tags: %v lossless=%v\n", res.Tags, res.Lossless)
}
