// bcube demonstrates Tagger on a server-centric topology: BCube's default
// routing (one address digit corrected per hop, all digit orders) needs
// exactly as many tags as BCube has levels — with no BCube-specific logic,
// just Algorithms 1 and 2.
package main

import (
	"fmt"
	"log"

	tagger "repro"
)

func main() {
	fmt.Println("BCube: generic Tagger synthesis on server-centric topologies")
	fmt.Println()

	for _, c := range []struct{ n, k int }{{2, 1}, {4, 1}, {2, 2}} {
		b, err := tagger.NewBCube(c.n, c.k)
		if err != nil {
			log.Fatal(err)
		}
		set := tagger.BCubeELP(b)
		sys, err := tagger.Synthesize(b.Graph, set)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Runtime.Verify(); err != nil {
			log.Fatalf("BCube(%d,%d): %v", c.n, c.k, err)
		}
		fmt.Printf("BCube(%d,%d): %3d servers, %2d levels, ELP %5d paths -> %d lossless tags (verified deadlock-free)\n",
			c.n, c.k, len(b.Servers), c.k+1, set.Len(), sys.Runtime.NumSwitchTags())
	}

	fmt.Println()
	fmt.Println("paper §5.3: \"a k-level BCube with default routing only needs k tags\"")
}
