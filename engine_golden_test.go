package tagger

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// The engine-equivalence golden: per-scenario event traces and counters
// captured from the pre-rewrite container/heap event loop. The rebuilt
// typed-heap engine must reproduce them byte for byte — same (at, seq)
// tie-break, same dispatch order, same PFC and drop counters — proving
// the allocation work changed nothing observable. Regenerate only for an
// intentional semantic change: go test -run TestEngineGolden -update-engine-golden
var updateEngineGolden = flag.Bool("update-engine-golden", false,
	"rewrite testdata/engine_golden.json from the current engine")

const engineGoldenPath = "testdata/engine_golden.json"

// scenarioGolden pins one scenario run. TraceHash is FNV-64a over the
// JSONL event trace (pauses, resumes, drops, demotions, deadlock onsets,
// in dispatch order with sim timestamps), so any reordering or
// miscounting shows up as a hash mismatch.
type scenarioGolden struct {
	TraceHash    string        `json:"trace_hash"`
	TraceEvents  int64         `json:"trace_events"`
	PauseFrames  int64         `json:"pause_frames"`
	ResumeFrames int64         `json:"resume_frames"`
	Drops        sim.DropStats `json:"drops"`
}

// chaosGolden pins one seeded chaos soak (watchdog verdict + counters);
// the schedule exercises reboots, route churn and the periodic-timer
// event path.
type chaosGolden struct {
	Samples         int           `json:"samples"`
	DeadlockSamples int           `json:"deadlock_samples"`
	FirstDeadlockNs int64         `json:"first_deadlock_ns"`
	PauseFrames     int64         `json:"pause_frames"`
	ResumeFrames    int64         `json:"resume_frames"`
	Drops           sim.DropStats `json:"drops"`
}

type engineGolden struct {
	Scenarios map[string]scenarioGolden `json:"scenarios"`
	Chaos     map[string]chaosGolden    `json:"chaos"`
}

// hashWriter hashes the byte stream fed to it and counts lines.
type hashWriter struct {
	h     interface{ Write([]byte) (int, error) }
	sum   func() uint64
	lines int64
}

func newHashWriter() *hashWriter {
	h := fnv.New64a()
	return &hashWriter{h: h, sum: h.Sum64}
}

func (w *hashWriter) Write(p []byte) (int, error) {
	for _, b := range p {
		if b == '\n' {
			w.lines++
		}
	}
	return w.h.Write(p)
}

// goldenScenarios builds every pinned figure scenario. DCQCN rides along
// on fig10 so the congestion-control timer path is pinned too.
func goldenScenarios() map[string]func() *workload.Scenario {
	mk := func(build func(workload.Options) *workload.Scenario, withTagger, dcqcn bool) func() *workload.Scenario {
		return func() *workload.Scenario {
			opt := workload.Options{}
			if withTagger {
				opt.Bounces = 1
			}
			s := build(opt)
			if dcqcn {
				s.Net.EnableDCQCN(sim.DefaultDCQCN())
			}
			return s
		}
	}
	return map[string]func() *workload.Scenario{
		"fig10-base":    mk(workload.Figure10, false, false),
		"fig10-tagger":  mk(workload.Figure10, true, false),
		"fig10-dcqcn":   mk(workload.Figure10, true, true),
		"fig11-base":    mk(workload.Figure11, false, false),
		"fig11-tagger":  mk(workload.Figure11, true, false),
		"fig12-base":    mk(workload.Figure12, false, false),
		"fig12-tagger":  mk(workload.Figure12, true, false),
		"recovery-fig10": func() *workload.Scenario {
			s := workload.Figure10(workload.Options{})
			s.Net.EnableRecovery(500 * time.Microsecond)
			return s
		},
	}
}

func runGoldenScenario(build func() *workload.Scenario) scenarioGolden {
	s := build()
	w := newHashWriter()
	s.Net.SetTracer(&sim.JSONLTracer{W: w})
	s.Run()
	return scenarioGolden{
		TraceHash:    fmt.Sprintf("%016x", w.sum()),
		TraceEvents:  w.lines,
		PauseFrames:  s.Net.PauseFrames,
		ResumeFrames: s.Net.ResumeFrames,
		Drops:        s.Net.Drops(),
	}
}

func runGoldenChaos(seed int64, withTagger bool) (chaosGolden, error) {
	r, err := ChaosSoak(seed, withTagger)
	if err != nil {
		return chaosGolden{}, err
	}
	return chaosGolden{
		Samples:         r.Watchdog.Samples,
		DeadlockSamples: r.Watchdog.DeadlockSamples,
		FirstDeadlockNs: int64(r.Watchdog.FirstDeadlockAt),
		Drops:           r.Drops,
	}, nil
}

func computeEngineGolden(t *testing.T) engineGolden {
	t.Helper()
	g := engineGolden{
		Scenarios: map[string]scenarioGolden{},
		Chaos:     map[string]chaosGolden{},
	}
	for name, build := range goldenScenarios() {
		g.Scenarios[name] = runGoldenScenario(build)
	}
	for _, c := range []struct {
		name       string
		seed       int64
		withTagger bool
	}{
		{"seed1-base", 1, false},
		{"seed1-tagger", 1, true},
	} {
		cg, err := runGoldenChaos(c.seed, c.withTagger)
		if err != nil {
			t.Fatalf("chaos golden %s: %v", c.name, err)
		}
		g.Chaos[c.name] = cg
	}
	return g
}

// TestEngineGolden replays every pinned scenario on the current engine
// and compares against the pre-rewrite capture.
func TestEngineGolden(t *testing.T) {
	got := computeEngineGolden(t)
	if *updateEngineGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(engineGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(engineGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("engine golden rewritten: %s", engineGoldenPath)
		return
	}
	data, err := os.ReadFile(engineGoldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update-engine-golden to create): %v", err)
	}
	var want engineGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want.Scenarios {
		g, ok := got.Scenarios[name]
		if !ok {
			t.Errorf("scenario %s: missing from current battery", name)
			continue
		}
		if g != w {
			t.Errorf("scenario %s diverged from the pinned engine semantics:\n got %+v\nwant %+v", name, g, w)
		}
	}
	for name, w := range want.Chaos {
		g, ok := got.Chaos[name]
		if !ok {
			t.Errorf("chaos %s: missing from current battery", name)
			continue
		}
		if g != w {
			t.Errorf("chaos %s diverged from the pinned engine semantics:\n got %+v\nwant %+v", name, g, w)
		}
	}
}
