package tagger

import (
	"bytes"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace/pipeline"
)

// Flight-recorder surface: the simulator's always-on incident capture
// (sim.FlightRecorder) and the forensics that read it back.
type (
	// FlightRecConfig tunes the flight recorder (ring size, event
	// window, per-incident cooldown, capture cap, delivery sink).
	FlightRecConfig = sim.FlightRecConfig
	// Incident is one frozen capture: trigger, site, simulated time,
	// and a self-contained binary trace (events + snapshot).
	Incident = sim.Incident
	// FlightRecorder is the armed recorder riding a Network's tracer
	// chain.
	FlightRecorder = sim.FlightRecorder
)

// PostmortemReport runs the forensics pipeline over one incident
// capture and returns the rendered report — the library form of
// `taggertrace postmortem <file>`.
func PostmortemReport(data []byte) (string, error) {
	src, err := pipeline.NewBinarySource(bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := pipeline.RunPostmortem(src, &b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// PostmortemStore accumulates captured incidents with their rendered
// reports and serves them to the telemetry ops endpoint: plug Sink()
// into FlightRecConfig.Sink and the store into
// telemetry.StartOpsWithPostmortem, and every capture appears at
// /debug/postmortem moments after the recorder freezes. Safe for
// concurrent use (simulation goroutine appends, HTTP handlers read).
type PostmortemStore struct {
	mu  sync.Mutex
	eps []telemetry.PostmortemEpisode
}

// Sink returns the FlightRecConfig.Sink adapter: it renders each
// incident's forensics report eagerly (capture time is already off the
// simulator's hot path) and files the episode.
func (s *PostmortemStore) Sink() func(Incident) error {
	return func(inc Incident) error {
		rep, err := PostmortemReport(inc.Data)
		if err != nil {
			rep = "postmortem render failed: " + err.Error() + "\n"
		}
		s.mu.Lock()
		s.eps = append(s.eps, telemetry.PostmortemEpisode{
			Seq:     inc.Seq,
			Trigger: inc.Trigger,
			Node:    inc.Node,
			At:      inc.At,
			Report:  rep,
		})
		s.mu.Unlock()
		return nil
	}
}

// PostmortemEpisodes implements telemetry.PostmortemSource.
func (s *PostmortemStore) PostmortemEpisodes() []telemetry.PostmortemEpisode {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]telemetry.PostmortemEpisode, len(s.eps))
	copy(out, s.eps)
	return out
}

// Len reports how many episodes the store holds.
func (s *PostmortemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.eps)
}
