//go:build race

package tagger

// raceEnabled reports whether this test binary was built with the race
// detector; timing gates skip themselves under its instrumentation.
const raceEnabled = true
