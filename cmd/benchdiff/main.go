// Command benchdiff records and compares benchmark snapshots.
//
// Record mode parses `go test -bench -benchmem` text (stdin or a file)
// into a JSON snapshot:
//
//	go test -bench . -benchmem | benchdiff -record BENCH_2026-08-05.json
//	benchdiff -record BENCH_seed.json bench_seed.txt
//
// Compare mode diffs two snapshots and exits 1 when any benchmark's
// ns/op grew beyond the threshold (default 15%):
//
//	benchdiff BENCH_seed.json BENCH_2026-08-05.json
//	benchdiff -threshold 0.30 old.json new.json
//
// With -alloc-threshold set, allocs/op and bytes/op are gated too; a
// benchmark that was allocation-free in the baseline fails on any
// allocation at all:
//
//	benchdiff -alloc-threshold 0.10 old.json new.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")

	var (
		record    = flag.String("record", "", "parse benchmark text into this JSON snapshot instead of comparing")
		threshold = flag.Float64("threshold", 0.15, "time regression tolerance (0.15 = +15%)")
		allocThr  = flag.Float64("alloc-threshold", -1, "allocs/op and bytes/op regression tolerance; negative disables the allocation gate")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff -record out.json [bench.txt]\n       benchdiff [-threshold 0.15] [-alloc-threshold 0.10] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *record != "" {
		if err := recordSnapshot(*record, flag.Args()); err != nil {
			log.Fatal(err)
		}
		return
	}

	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := benchfmt.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	cur, err := benchfmt.ReadFile(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	deltas := benchfmt.Compare(old, cur, *threshold, *allocThr)
	if len(deltas) == 0 {
		log.Fatalf("no common benchmarks between %s and %s", flag.Arg(0), flag.Arg(1))
	}
	fmt.Print(benchfmt.FormatDeltas(deltas))
	if benchfmt.AnyRegression(deltas) {
		log.Fatalf("regression beyond threshold (time %.0f%%, alloc %.0f%%)", *threshold*100, *allocThr*100)
	}
	fmt.Printf("ok: %d benchmarks within %.0f%% of baseline\n", len(deltas), *threshold*100)
}

func recordSnapshot(out string, args []string) error {
	in := io.Reader(os.Stdin)
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		return fmt.Errorf("record mode takes at most one input file, got %d", len(args))
	}
	snap, err := benchfmt.Parse(in)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	// A -count N run repeats every name; keep each benchmark's fastest
	// run so snapshots stay one-record-per-name and noise-robust.
	snap.Dedupe()
	if err := benchfmt.WriteFile(out, snap); err != nil {
		return err
	}
	fmt.Printf("recorded %d benchmarks to %s\n", len(snap.Benchmarks), out)
	return nil
}
