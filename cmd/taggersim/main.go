// Command taggersim runs the paper's testbed experiments in the packet
// simulator and prints the flow-rate series and deadlock diagnosis.
//
// Usage:
//
//	taggersim -exp fig10            # 1-bounce deadlock (Figure 10)
//	taggersim -exp fig11            # routing loop (Figure 11)
//	taggersim -exp fig12            # PAUSE propagation (Figure 12)
//	taggersim -exp table1 -days 7   # reroute measurement (Table 1)
//	taggersim -exp overhead         # §8 performance penalty
//	taggersim -exp chaos -runs 32 -par 8   # seeded chaos sweep, 8 workers
//	taggersim -exp churn -runs 4    # fabric churn soak: incremental deltas
//	taggersim -exp detect -runs 100 -par 8 # detect-vs-prevent 4-arm matrix
//	taggersim -exp detect -flightrec       # + flight-recorder incident capture
//
// Each figure experiment runs twice — without and with Tagger — matching
// the paper's paired plots.
//
// -flightrec (figures and detect) arms the always-on flight recorder:
// deadlock onset, a detector firing, or a lossless-invariant violation
// freezes the in-memory event ring and dumps a self-contained incident
// file under incidents/ for `taggertrace postmortem`. Captures are
// deterministic — same seed, same bytes, par=1 or par=N.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	tagger "repro"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/telemetry/profile"
)

// opsReg is the run's operational registry when -ops is set: the chaos
// soak's simulator histograms and deployment counters merge into it, and
// the ops endpoint serves it alongside telemetry.Default (which holds
// the synthesis spans).
var opsReg *telemetry.Registry

func main() {
	log.SetFlags(0)
	log.SetPrefix("taggersim: ")

	var (
		exp       = flag.String("exp", "fig10", "experiment: "+strings.Join(experiments, ", "))
		seeds     = flag.Int("seeds", 3, "chaos: number of fault schedules to run (seeds 1..n)")
		runs      = flag.Int("runs", 0, "chaos: number of seeded runs in the sweep (overrides -seeds)")
		par       = flag.Int("par", 1, "chaos: sweep worker count (0 = GOMAXPROCS); results are par-independent")
		days      = flag.Int("days", 7, "table1: days to simulate")
		perDay    = flag.Int64("per-day", 1_000_000, "table1: measurements per day")
		trace     = flag.String("trace", "", "write an event trace to this file (figures: one file; chaos/churn: one file per seed)")
		traceFmt  = flag.String("trace-format", tagger.TraceJSONL, "trace encoding: jsonl or binary")
		flightrec = flag.Bool("flightrec", false, "figures/detect: arm the flight recorder; incidents dump to incidents/*.tgl for `taggertrace postmortem`")
		ops       = flag.String("ops", "", "serve /metrics, /healthz and /debug/pprof on this address; the process stays up after the run until interrupted (e.g. :8080)")
	)
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			log.Fatal(err)
		}
	}()

	if *ops != "" {
		opsReg = telemetry.NewRegistry()
		srv, err := telemetry.StartOps(*ops, telemetry.Default, opsReg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ops endpoint on http://%s (metrics, healthz, debug/pprof)", srv.Addr())
		defer srv.Close()
		defer func() {
			log.Printf("run finished; ops endpoint still serving on http://%s — interrupt to exit", srv.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			<-ch
		}()
	}

	switch *exp {
	case "fig10", "fig11", "fig12":
		run := map[string]func(bool) tagger.ExperimentResult{
			"fig10": tagger.Figure10,
			"fig11": tagger.Figure11,
			"fig12": tagger.Figure12,
		}[*exp]
		if *flightrec {
			if *trace != "" {
				log.Fatal("-flightrec and -trace are mutually exclusive for figures (the recorder is the capture)")
			}
			runFR := func(withTagger bool, label string) {
				res, fr, err := tagger.FigureFlightRec(*exp, withTagger, tagger.FlightRecConfig{})
				if err != nil {
					log.Fatal(err)
				}
				printExperiment(res)
				incs := fr.Incidents()
				for i, name := range writeIncidents(fmt.Sprintf("%s.%s", *exp, label), incs) {
					inc := incs[i]
					fmt.Printf("flight recorder: incident %d (%s at %s, t=%v) -> %s\n",
						inc.Seq, inc.Trigger, inc.Node, inc.At, name)
				}
				fmt.Printf("flight recorder: %d incidents captured, %d triggers dropped, %d ring overwrites\n",
					fr.Captured(), fr.DroppedTriggers(), fr.Overwrites())
			}
			fmt.Printf("=== %s WITHOUT Tagger (flight recorder armed) ===\n", *exp)
			runFR(false, "without")
			fmt.Printf("\n=== %s WITH Tagger (k=1, flight recorder armed) ===\n", *exp)
			runFR(true, "with")
			break
		}
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			fmt.Printf("=== %s WITHOUT Tagger (traced to %s, %s) ===\n", *exp, *trace, *traceFmt)
			res, st, err := tagger.FigureTracedStats(*exp, false, f, *traceFmt)
			if err != nil {
				log.Fatal(err)
			}
			printExperiment(res)
			fmt.Printf("trace capture: %d events dropped by the writer ring\n", st.Dropped)
			if st.Dropped > 0 && *traceFmt == tagger.TraceBinary {
				log.Fatalf("binary trace %s is incomplete (%d events dropped)", *trace, st.Dropped)
			}
			break
		}
		fmt.Printf("=== %s WITHOUT Tagger ===\n", *exp)
		printExperiment(run(false))
		fmt.Printf("\n=== %s WITH Tagger (k=1) ===\n", *exp)
		printExperiment(run(true))
	case "table1":
		res := tagger.Table1(*days, *perDay)
		fmt.Print(res.String())
		fmt.Printf("overall reroute probability: %.2e (paper: ~3e-5)\n", res.OverallProbability())
	case "overhead":
		res := tagger.Overhead()
		fmt.Printf("baseline aggregate goodput: %.1f Gbps (worst-flow P99 latency %v)\n",
			res.BaselineGbps, res.BaselineP99)
		fmt.Printf("with Tagger rules:          %.1f Gbps (worst-flow P99 latency %v)\n",
			res.TaggerGbps, res.TaggerP99)
		fmt.Printf("penalty:                    %.2f%% (paper: negligible)\n", res.PenaltyPercent())
	case "isolation":
		res := tagger.IsolationCost()
		fmt.Printf("§6 shared-tag isolation trade-off:\n")
		fmt.Printf("  class-2 victim with class-1 on healthy route: %.1f Gbps\n", res.VictimCleanGbps)
		fmt.Printf("  class-2 victim with class-1 bounced into its priority: %.1f Gbps\n", res.VictimMixedGbps)
		fmt.Printf("  cost: %.0f%% while the bounce persists (paper: acceptable, bounces are rare)\n",
			res.CostPercent())
	case "multiclass":
		res, err := tagger.MultiClass(2, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d classes, %d bounces: shared tags need %d queues, naive composition %d\n",
			res.Classes, res.Bounces, res.SharedQueues, res.NaiveQueues)
	case "recovery":
		res := tagger.CompareRecovery()
		fmt.Printf("detect-and-break recovery on the Figure 10 scenario:\n")
		fmt.Printf("  deadlock reformed %d times; %d lossless packets sacrificed\n",
			res.RecoveryDetections, res.RecoveryPacketsDropped)
		fmt.Printf("  goodput: recovery %.1f Gbps vs Tagger %.1f Gbps\n",
			res.RecoveryGoodputGbps, res.TaggerGoodputGbps)
		fmt.Println("paper §1: recovery \"cannot guarantee that the deadlock would not immediately reappear\"")
	case "dcqcn":
		res := tagger.DCQCNExperiment()
		fmt.Printf("incast PAUSE frames: %d without congestion control, %d with DCQCN\n",
			res.PausesWithoutCC, res.PausesWithCC)
		fmt.Printf("incast goodput with DCQCN: %.1f Gbps\n", res.GoodputGbps)
		fmt.Printf("Tagger + DCQCN on the Fig 10 scenario clean: %v\n", res.TaggerCleanWith)
	case "budget":
		fmt.Println("lossless queue budget per ASIC generation (§3.3):")
		for _, r := range tagger.QueueBudget() {
			fmt.Printf("  %-14s %4.0f MB buffer, %d x %dG: %d lossless queues (%d KB/queue/port)\n",
				r.Name, r.BufferMB, r.Ports, r.GbpsPerPort, r.MaxLossless, r.PerQueueBytes>>10)
		}
		fmt.Println("paper: \"even newest switching ASICs are not expected to support more than four\"")
	case "reconverge":
		fmt.Println("organic failure handling (no pinned paths): fail L1-T1 and L3-T4 at 5ms,")
		fmt.Println("local fast-reroute detours + stale upstream routes, global convergence at 15ms")
		fmt.Println()
		fmt.Println("=== WITHOUT Tagger ===")
		printExperiment(tagger.Reconvergence(false, 8))
		fmt.Println()
		fmt.Println("=== WITH Tagger (k=1) ===")
		printExperiment(tagger.Reconvergence(true, 8))
	case "chaos":
		n := *seeds
		if *runs > 0 {
			n = *runs
		}
		fmt.Printf("chaos soak: %d seeded fault schedules over the testbed (link flaps,\n", n)
		fmt.Println("switch reboots, faulty switch agents); a 500us watchdog samples for")
		fmt.Println("pause-wait cycles; Tagger rules deploy through the unreliable agents")
		fmt.Println()
		sd := sweep.Seeds(1, n)
		var with, without []tagger.ChaosSoakResult
		if *trace != "" {
			// Tracing runs the soaks serially, one capture per seed and
			// arm: <file>.seed<N>.with / .without.
			fmt.Printf("(tracing each soak to %s.seed<N>.<with|without>, %s)\n\n", *trace, *traceFmt)
			soak := func(seed int64, withTagger bool, arm string) tagger.ChaosSoakResult {
				tr, finish, err := openTrace(fmt.Sprintf("%s.seed%d.%s", *trace, seed, arm), *traceFmt)
				if err != nil {
					log.Fatal(err)
				}
				res, err := tagger.ChaosSoakTraced(seed, withTagger, opsReg, tr)
				if ferr := finish(); err == nil {
					err = ferr
				}
				if err != nil {
					log.Fatal(err)
				}
				return res
			}
			for _, seed := range sd {
				with = append(with, soak(seed, true, "with"))
				without = append(without, soak(seed, false, "without"))
			}
		} else {
			var err error
			with, err = tagger.ChaosSweep(sd, true, *par, opsReg)
			if err != nil {
				log.Fatal(err)
			}
			without, err = tagger.ChaosSweep(sd, false, *par, opsReg)
			if err != nil {
				log.Fatal(err)
			}
		}
		for i, seed := range sd {
			w, wo := with[i], without[i]
			fmt.Printf("seed %-3d %2d faults | with Tagger: clean=%v (bring-up attempts=%d, install failures=%d, partial installs caught=%d) | without: deadlocked=%v (%d/%d samples)\n",
				seed, w.Faults, w.Clean(), w.DeployAttempts,
				w.DeployCounters["deploy.install.fail"],
				w.DeployCounters["deploy.partial_detected"],
				wo.Deadlocked, wo.Watchdog.DeadlockSamples, wo.Watchdog.Samples)
			if wo.FirstDeadlock != nil {
				fmt.Printf("         first cycle at %v: %s\n",
					wo.Watchdog.FirstDeadlockAt, tagger.DeadlockString(wo.FirstDeadlock))
			}
		}
	case "churn":
		n := *seeds
		if *runs > 0 {
			n = *runs
		}
		fmt.Printf("churn soak: %d seeded churn sequences over the testbed (link flaps,\n", n)
		fmt.Println("drains, a pod expansion); each event re-synthesizes incrementally and")
		fmt.Println("deploys per-switch rule deltas two-phase; midway a spine reboots and")
		fmt.Println("the reconciliation sweep re-drives it to intent")
		fmt.Println()
		if *trace != "" {
			fmt.Printf("(tracing a post-churn validation run per seed to %s.seed<N>, %s)\n", *trace, *traceFmt)
		}
		for seed := int64(1); seed <= int64(n); seed++ {
			var res tagger.ChurnSoakResult
			var err error
			if *trace != "" {
				// The churn pipeline is controller-only; -trace appends a
				// packet-level validation run of the converged fabric and
				// captures its event stream.
				tr, finish, terr := openTrace(fmt.Sprintf("%s.seed%d", *trace, seed), *traceFmt)
				if terr != nil {
					log.Fatal(terr)
				}
				res, err = tagger.ChurnSoakTraced(seed, 24, tr)
				if ferr := finish(); err == nil {
					err = ferr
				}
			} else {
				res, err = tagger.ChurnSoak(seed, 24)
			}
			if err != nil {
				log.Fatal(err)
			}
			added, removed, modified := res.RulesMoved()
			fmt.Printf("seed %-3d %2d events (+%d pod) | rules +%d -%d ~%d | %s rebooted, reconcile fixed %d | converged=%v (%d rules live)\n",
				res.Seed, len(res.Events), res.PodsAdded, added, removed, modified,
				res.Rebooted, res.ReconcileFixed, res.Converged, res.FinalRules)
			if !res.Converged {
				log.Fatalf("seed %d: fabric did not converge to intent", res.Seed)
			}
			if *trace != "" && res.ValidationDeadlocked {
				log.Fatalf("seed %d: post-churn validation run deadlocked", res.Seed)
			}
		}
	case "detect":
		// The matrix defaults to 100 seeds (the head-to-head needs a
		// population, not a demo); -runs/-seeds override.
		n := 100
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seeds" {
				n = *seeds
			}
		})
		if *runs > 0 {
			n = *runs
		}
		fmt.Printf("detect-vs-prevent matrix: %d seeds x 4 arms over the Figure 3 CBD\n", n)
		fmt.Println("scenario (jittered starts, background cross traffic, off-path T2")
		fmt.Println("reboots). Arms: tagger (prevention; detector rides along as a")
		fmt.Println("false-positive oracle), detect (in-switch tag detector + targeted")
		fmt.Println("drop), scan (500us global-view detect-and-break), none (control)")
		fmt.Println()
		var matrix map[tagger.DetectArm][]tagger.DetectRunResult
		var err error
		if *flightrec {
			matrix, err = tagger.DetectMatrixFlightRec(sweep.Seeds(1, n), *par, opsReg, tagger.FlightRecConfig{})
		} else {
			matrix, err = tagger.DetectMatrix(sweep.Seeds(1, n), *par, opsReg)
		}
		if err != nil {
			log.Fatal(err)
		}
		sums := tagger.SummarizeDetectMatrix(matrix)
		fmt.Print(tagger.DetectMatrixTable(sums))
		fmt.Println()
		if *flightrec {
			var first string
			for _, arm := range tagger.DetectArms() {
				var captured int
				var dropped, overwrites int64
				for _, r := range matrix[arm] {
					names := writeIncidents(fmt.Sprintf("detect.seed%d.%s", r.Seed, arm), r.Incidents)
					if first == "" && len(names) > 0 {
						first = names[0]
					}
					captured += len(r.Incidents)
					dropped += r.FlightRecDropped
					if r.FlightRecOverwrites > overwrites {
						overwrites = r.FlightRecOverwrites
					}
				}
				fmt.Printf("flight recorder: %-6s arm: %d incidents captured, %d triggers dropped, max ring overwrites %d\n",
					arm, captured, dropped, overwrites)
			}
			if first != "" {
				fmt.Printf("forensics: taggertrace postmortem %s\n", first)
			}
			fmt.Println()
		}
		for _, s := range sums {
			switch s.Arm {
			case tagger.ArmTagger:
				if s.DeadlockSeeds != 0 {
					log.Fatalf("tagger arm deadlocked on %d seeds — prevention failed", s.DeadlockSeeds)
				}
				if s.Detections != 0 {
					log.Fatalf("detector fired %d times on the Tagger-protected topology (false positives)", s.Detections)
				}
			case tagger.ArmDetect:
				if s.UnrecoveredSeeds != 0 {
					log.Fatalf("detect arm never cleared a deadlock on %d seeds", s.UnrecoveredSeeds)
				}
				if s.DeadlockSeeds > 0 && s.MeanTTR > 5*time.Millisecond {
					log.Fatalf("detect arm mean time-to-recover %v exceeds the 5ms bound", s.MeanTTR)
				}
			case tagger.ArmNone:
				if s.DeadlockSeeds != s.Seeds {
					log.Fatalf("control arm deadlocked on only %d/%d seeds — scenario drifted", s.DeadlockSeeds, s.Seeds)
				}
			}
			if s.LosslessDrops != 0 {
				log.Fatalf("%s arm violated the lossless invariant (%d drops)", s.Arm, s.LosslessDrops)
			}
		}
		fmt.Println("invariants held: tagger arm deadlock- and detection-free; detect arm")
		fmt.Println("cleared every seed's deadlocks within bounded time-to-recover (the")
		fmt.Println("cycle re-forms under persistent CBD traffic — §1's case against")
		fmt.Println("detect-and-react); the unprotected control deadlocked on every seed")
	case "compression":
		lv := tagger.CompressionAblation()
		fmt.Printf("testbed rule set compression (§7/Figure 9):\n")
		fmt.Printf("  exact rules:          %d\n", lv.Exact)
		fmt.Printf("  InPort bitmaps only:  %d\n", lv.InPortOnly)
		fmt.Printf("  joint aggregation:    %d\n", lv.Joint)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid experiments: %s\n",
			*exp, strings.Join(experiments, ", "))
		os.Exit(2)
	}
}

// experiments lists every -exp value the switch in main accepts, in
// help/usage order; the default case prints it so a typo answers with
// the menu, not just a shrug.
var experiments = []string{
	"fig10", "fig11", "fig12", "table1", "overhead", "multiclass",
	"recovery", "dcqcn", "budget", "compression", "isolation",
	"reconverge", "chaos", "churn", "detect",
}

// writeIncidents dumps each captured incident under incidents/ as
// <stem>.<seq>.tgl and prints where it went, returning the paths.
func writeIncidents(stem string, incs []tagger.Incident) []string {
	if len(incs) == 0 {
		return nil
	}
	if err := os.MkdirAll("incidents", 0o755); err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, inc := range incs {
		name := fmt.Sprintf("incidents/%s.%d.tgl", stem, inc.Seq)
		if err := os.WriteFile(name, inc.Data, 0o644); err != nil {
			log.Fatal(err)
		}
		names = append(names, name)
	}
	return names
}

// openTrace creates path and wires a tracer in the requested encoding;
// the returned finish function flushes the capture, prints the
// writer-ring drop counter (a lossy capture must never read as a
// complete one), surfaces any loss as an error, and closes the file.
func openTrace(path, format string) (sim.Tracer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	tr, finish, err := tagger.NewTracerStats(f, format)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return tr, func() error {
		st, err := finish()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fmt.Printf("trace capture %s: %d events dropped by the writer ring\n", path, st.Dropped)
		if err == nil && format == tagger.TraceBinary && st.Dropped > 0 {
			err = fmt.Errorf("binary trace %s is incomplete (%d events dropped)", path, st.Dropped)
		}
		return err
	}, nil
}

func printExperiment(res tagger.ExperimentResult) {
	if res.Deadlocked {
		fmt.Printf("DEADLOCK detected; pause-wait cycle:\n")
		for _, e := range res.Cycle {
			fmt.Printf("  %s\n", e)
		}
	} else {
		fmt.Println("no deadlock")
	}
	fmt.Printf("drops: %+v\n", res.Drops)
	fmt.Println("per-flow delivered rate over time (each char = 1 ms, full block = 40 Gbps):")
	for _, f := range res.Flows {
		vals := make([]float64, len(f.Points))
		for i, p := range f.Points {
			vals[i] = p.Gbps
		}
		fmt.Printf("  %-8s %s  late: %5.1f Gbps\n", f.Name, metrics.Sparkline(vals, 40), f.LateGbps)
	}
}
