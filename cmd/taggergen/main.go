// Command taggergen synthesizes Tagger rules for a topology and prints
// the tag statistics and match-action tables a deployment would install.
//
// Usage:
//
//	taggergen -topo clos -pods 2 -tors 2 -leafs 2 -spines 2 -bounces 1
//	taggergen -topo jellyfish -switches 100 -ports 16
//	taggergen -topo bcube -n 4 -k 1
//	taggergen -topo fig5 -rules     # the paper's walk-through example
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	tagger "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("taggergen: ")

	var (
		topo     = flag.String("topo", "clos", "topology: clos, jellyfish, bcube, fattree, fig5")
		pods     = flag.Int("pods", 2, "clos: pods")
		tors     = flag.Int("tors", 2, "clos: ToRs per pod")
		leafs    = flag.Int("leafs", 2, "clos: leaves per pod")
		spines   = flag.Int("spines", 2, "clos: spines")
		hosts    = flag.Int("hosts", 4, "clos: hosts per ToR")
		bounces  = flag.Int("bounces", 1, "clos/fattree: lossless bounce budget k")
		switches = flag.Int("switches", 50, "jellyfish: switch count")
		ports    = flag.Int("ports", 12, "jellyfish: ports per switch")
		seed     = flag.Int64("seed", 1, "jellyfish: construction seed")
		n        = flag.Int("n", 4, "bcube: port count / radix")
		k        = flag.Int("k", 1, "bcube: level; fattree: arity")
		rules    = flag.Bool("rules", false, "print the full rule tables")
		graph    = flag.Bool("graph", false, "print the runtime tagged graph grouped by tag (Fig 5 style)")
	)
	flag.Parse()

	var (
		sys *tagger.System
		g   *tagger.Graph
		err error
	)
	switch *topo {
	case "clos":
		var c *tagger.Clos
		c, err = tagger.NewClos(tagger.ClosConfig{
			Pods: *pods, ToRsPerPod: *tors, LeafsPerPod: *leafs,
			Spines: *spines, HostsPerToR: *hosts,
		})
		if err != nil {
			log.Fatal(err)
		}
		g = c.Graph
		set := tagger.KBounceELP(c, *bounces)
		fmt.Printf("ELP: %d paths (shortest up-down + up to %d bounces)\n", set.Len(), *bounces)
		sys, err = tagger.SynthesizeClos(c, set, *bounces)
	case "fattree":
		var ft *tagger.FatTree
		ft, err = tagger.NewFatTree(*k)
		if err != nil {
			log.Fatal(err)
		}
		g = ft.Graph
		set := tagger.ELPFromKBounce(g, ft.Edges, *bounces)
		fmt.Printf("ELP: %d paths\n", set.Len())
		sys, err = tagger.SynthesizeFatTree(ft, set, *bounces)
	case "jellyfish":
		var j *tagger.Jellyfish
		j, err = tagger.NewJellyfish(tagger.JellyfishConfig{
			Switches: *switches, Ports: *ports, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		g = j.Graph
		set := tagger.ShortestELP(g, j.Switches)
		fmt.Printf("ELP: %d shortest paths between switch pairs\n", set.Len())
		sys, err = tagger.Synthesize(g, set)
	case "bcube":
		var b *tagger.BCube
		b, err = tagger.NewBCube(*n, *k)
		if err != nil {
			log.Fatal(err)
		}
		g = b.Graph
		set := tagger.BCubeELP(b)
		fmt.Printf("ELP: %d default-routing paths between servers\n", set.Len())
		sys, err = tagger.Synthesize(g, set)
	case "fig5":
		res, fg, werr := tagger.WalkThrough()
		if werr != nil {
			log.Fatal(werr)
		}
		fmt.Printf("Figure 5 walk-through:\n")
		fmt.Printf("  Algorithm 1 (brute force): %d lossless switch tags\n", res.BruteForceSwitchTags)
		fmt.Printf("  Algorithm 2 (greedy merge): %d lossless switch tags\n", res.MergedSwitchTags)
		if *rules {
			fmt.Printf("\nTable 3 (Algorithm 1 rules):\n%s", tagger.RuleTable(fg, res.BruteForceRules))
			fmt.Printf("\nTable 4 (Algorithm 2 rules):\n%s", tagger.RuleTable(fg, res.MergedRules))
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	entries := tagger.CompressRules(sys.Rules.Rules())
	fmt.Printf("lossless queues needed: %d\n", sys.NumLosslessQueues())
	fmt.Printf("rules: %d exact, %d compressed TCAM entries, max %d per switch\n",
		len(sys.Rules.Rules()), len(entries), tagger.MaxEntriesPerSwitch(entries))
	if err := sys.Runtime.Verify(); err != nil {
		log.Fatalf("verification FAILED: %v", err)
	}
	fmt.Println("deadlock-freedom verified: per-tag acyclicity + monotonicity hold")
	if *rules {
		fmt.Printf("\n%s", tagger.RuleTable(g, sys.Rules.Rules()))
	}
	if *graph {
		fmt.Println()
		sys.Runtime.Dump(os.Stdout)
	}
}
