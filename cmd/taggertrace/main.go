// Command taggertrace analyzes a JSONL event trace produced by
// `taggersim -trace <file>` (or any sim.JSONLTracer): pause pressure per
// link, drop causes, demotions, and time-to-deadlock.
//
// Usage:
//
//	taggersim -exp fig10 -trace /tmp/fig10.jsonl
//	taggertrace /tmp/fig10.jsonl
//
// Malformed or truncated lines (a crashed simulator leaves a partial last
// line; log shippers sometimes interleave writes) are skipped and counted,
// not fatal: the remaining events still tell the story.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

type linkKey struct{ node, peer string }

// pauseKey identifies one open pause interval: PFC pauses per priority,
// so the same link can hold several intervals at once.
type pauseKey struct {
	linkKey
	prio int
}

// traceSummary is everything analyze extracts from one trace stream.
type traceSummary struct {
	Events  int // well-formed events
	Skipped int // malformed/truncated lines
	Pauses  map[linkKey]int
	Resumes map[linkKey]int
	// PauseDur histograms each link's pause-interval durations (seconds),
	// paired pause→resume per priority; intervals never resumed (a
	// deadlock, or a truncated trace) stay open and are not observed.
	PauseDur      map[linkKey]*telemetry.Histogram
	open          map[pauseKey]int64 // pause-onset T of open intervals
	DropByReason  map[string]int
	DropByFlow    map[string]int
	Demotes       int
	Deadlocks     int
	FirstDeadlock int64 // simulated ns of first onset, -1 if none
	FirstCycle    []string
	LastT         int64
}

// analyze folds a JSONL trace stream into a summary. Each line is decoded
// independently so one bad line costs one event, not the whole run.
func analyze(r io.Reader) (*traceSummary, error) {
	s := &traceSummary{
		Pauses:        map[linkKey]int{},
		Resumes:       map[linkKey]int{},
		PauseDur:      map[linkKey]*telemetry.Histogram{},
		open:          map[pauseKey]int64{},
		DropByReason:  map[string]int{},
		DropByFlow:    map[string]int{},
		FirstDeadlock: -1,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev sim.TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			s.Skipped++
			continue
		}
		s.Events++
		if ev.T > s.LastT {
			s.LastT = ev.T
		}
		switch ev.Kind {
		case "pause":
			lk := linkKey{ev.Node, ev.Peer}
			s.Pauses[lk]++
			s.open[pauseKey{lk, ev.Prio}] = ev.T
		case "resume":
			lk := linkKey{ev.Node, ev.Peer}
			s.Resumes[lk]++
			if start, ok := s.open[pauseKey{lk, ev.Prio}]; ok {
				delete(s.open, pauseKey{lk, ev.Prio})
				h := s.PauseDur[lk]
				if h == nil {
					h = telemetry.NewHistogram(telemetry.DurationBuckets())
					s.PauseDur[lk] = h
				}
				h.ObserveDuration(ev.T - start)
			}
		case "drop":
			s.DropByReason[ev.Reason]++
			s.DropByFlow[ev.Flow]++
		case "demote":
			s.Demotes++
		case "deadlock":
			s.Deadlocks++
			if s.FirstDeadlock < 0 {
				s.FirstDeadlock = ev.T
				s.FirstCycle = ev.Cycle
			}
		}
	}
	return s, sc.Err()
}

func (s *traceSummary) report(w io.Writer, top int) {
	fmt.Fprintf(w, "%d events over %v of simulated time", s.Events, time.Duration(s.LastT))
	if s.Skipped > 0 {
		fmt.Fprintf(w, " (%d malformed lines skipped)", s.Skipped)
	}
	fmt.Fprint(w, "\n\n")

	if s.FirstDeadlock >= 0 {
		fmt.Fprintf(w, "DEADLOCK onset at %v (%d onsets total); first cycle:\n",
			time.Duration(s.FirstDeadlock), s.Deadlocks)
		for _, e := range s.FirstCycle {
			fmt.Fprintf(w, "  %s\n", e)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprint(w, "no deadlock\n\n")
	}

	type row struct {
		k       linkKey
		p, r    int
		pending int
	}
	var rows []row
	for k, p := range s.Pauses {
		rows = append(rows, row{k, p, s.Resumes[k], p - s.Resumes[k]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].p != rows[j].p {
			return rows[i].p > rows[j].p
		}
		if rows[i].k.node != rows[j].k.node {
			return rows[i].k.node < rows[j].k.node
		}
		return rows[i].k.peer < rows[j].k.peer
	})
	if len(rows) > top {
		rows = rows[:top]
	}
	t := metrics.NewTable("Pauser", "Paused peer", "Pauses", "Resumes", "Still paused")
	for _, r := range rows {
		t.AddRow(r.k.node, r.k.peer, r.p, r.r, r.pending)
	}
	fmt.Fprintf(w, "pause pressure (top %d links):\n%s\n", top, t.String())

	if len(s.PauseDur) > 0 {
		type durRow struct {
			k    linkKey
			snap telemetry.HistSnap
		}
		var durs []durRow
		for k, h := range s.PauseDur {
			durs = append(durs, durRow{k, h.Snapshot()})
		}
		sort.Slice(durs, func(i, j int) bool {
			if durs[i].snap.Count != durs[j].snap.Count {
				return durs[i].snap.Count > durs[j].snap.Count
			}
			if durs[i].k.node != durs[j].k.node {
				return durs[i].k.node < durs[j].k.node
			}
			return durs[i].k.peer < durs[j].k.peer
		})
		if len(durs) > top {
			durs = durs[:top]
		}
		dt := metrics.NewTable("Pauser", "Paused peer", "Intervals", "p50", "p95", "p99")
		for _, r := range durs {
			dt.AddRow(r.k.node, r.k.peer, r.snap.Count,
				secDuration(r.snap.Quantile(0.50)),
				secDuration(r.snap.Quantile(0.95)),
				secDuration(r.snap.Quantile(0.99)))
		}
		fmt.Fprintf(w, "pause durations (top %d links by paired pause/resume intervals):\n%s\n", top, dt.String())
	}

	if len(s.DropByReason) > 0 {
		dt := metrics.NewTable("Drop reason", "Count")
		reasons := make([]string, 0, len(s.DropByReason))
		for r := range s.DropByReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			dt.AddRow(r, s.DropByReason[r])
		}
		fmt.Fprintf(w, "drops:\n%s", dt.String())
	}
	if s.Demotes > 0 {
		fmt.Fprintf(w, "lossless-to-lossy demotions: %d\n", s.Demotes)
	}
}

// secDuration rounds a duration given in seconds for table display.
func secDuration(sec float64) time.Duration {
	return time.Duration(sec * 1e9).Round(10 * time.Nanosecond)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("taggertrace: ")
	top := flag.Int("top", 10, "links to show in the pause-pressure table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: taggertrace [-top N] <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	s, err := analyze(f)
	if err != nil {
		log.Fatal(err)
	}
	s.report(os.Stdout, *top)
	if s.Skipped > 0 {
		log.Printf("warning: skipped %d malformed lines", s.Skipped)
	}
}
