// Command taggertrace analyzes a JSONL event trace produced by
// `taggersim -trace <file>` (or any sim.JSONLTracer): pause pressure per
// link, drop causes, demotions, and time-to-deadlock.
//
// Usage:
//
//	taggersim -exp fig10 -trace /tmp/fig10.jsonl
//	taggertrace /tmp/fig10.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("taggertrace: ")
	top := flag.Int("top", 10, "links to show in the pause-pressure table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: taggertrace [-top N] <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	type linkKey struct{ node, peer string }
	pauses := map[linkKey]int{}
	resumes := map[linkKey]int{}
	dropByReason := map[string]int{}
	dropByFlow := map[string]int{}
	demotes := 0
	var events, deadlocks int
	var firstDeadlock int64 = -1
	var firstCycle []string
	var lastT int64

	dec := json.NewDecoder(f)
	for dec.More() {
		var ev sim.TraceEvent
		if err := dec.Decode(&ev); err != nil {
			log.Fatalf("line %d: %v", events+1, err)
		}
		events++
		if ev.T > lastT {
			lastT = ev.T
		}
		switch ev.Kind {
		case "pause":
			pauses[linkKey{ev.Node, ev.Peer}]++
		case "resume":
			resumes[linkKey{ev.Node, ev.Peer}]++
		case "drop":
			dropByReason[ev.Reason]++
			dropByFlow[ev.Flow]++
		case "demote":
			demotes++
		case "deadlock":
			deadlocks++
			if firstDeadlock < 0 {
				firstDeadlock = ev.T
				firstCycle = ev.Cycle
			}
		}
	}

	fmt.Printf("%d events over %v of simulated time\n\n", events, time.Duration(lastT))

	if firstDeadlock >= 0 {
		fmt.Printf("DEADLOCK onset at %v (%d onsets total); first cycle:\n",
			time.Duration(firstDeadlock), deadlocks)
		for _, e := range firstCycle {
			fmt.Printf("  %s\n", e)
		}
		fmt.Println()
	} else {
		fmt.Print("no deadlock\n\n")
	}

	type row struct {
		k       linkKey
		p, r    int
		pending int
	}
	var rows []row
	for k, p := range pauses {
		rows = append(rows, row{k, p, resumes[k], p - resumes[k]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].p != rows[j].p {
			return rows[i].p > rows[j].p
		}
		if rows[i].k.node != rows[j].k.node {
			return rows[i].k.node < rows[j].k.node
		}
		return rows[i].k.peer < rows[j].k.peer
	})
	if len(rows) > *top {
		rows = rows[:*top]
	}
	t := metrics.NewTable("Pauser", "Paused peer", "Pauses", "Resumes", "Still paused")
	for _, r := range rows {
		t.AddRow(r.k.node, r.k.peer, r.p, r.r, r.pending)
	}
	fmt.Printf("pause pressure (top %d links):\n%s\n", *top, t.String())

	if len(dropByReason) > 0 {
		dt := metrics.NewTable("Drop reason", "Count")
		reasons := make([]string, 0, len(dropByReason))
		for r := range dropByReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			dt.AddRow(r, dropByReason[r])
		}
		fmt.Printf("drops:\n%s", dt.String())
	}
	if demotes > 0 {
		fmt.Printf("lossless-to-lossy demotions: %d\n", demotes)
	}
}
