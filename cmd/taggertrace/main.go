// Command taggertrace analyzes an event trace produced by `taggersim
// -trace <file>` — the legacy JSONL format or the binary format
// (`-trace-format binary`) — through a staged streaming pipeline:
// ingest → normalize → metric computation → report. Batches are
// bounded, so arbitrarily large captures analyze in constant memory.
//
// Usage:
//
//	taggersim -exp fig10 -trace /tmp/fig10.trc -trace-format binary
//	taggertrace /tmp/fig10.trc                # format auto-sniffed
//	taggertrace -o jsonl /tmp/fig10.trc       # downgrade to JSONL
//	taggertrace postmortem incident.tgl       # flight-recorder forensics
//
// The postmortem subcommand (equivalently `-o postmortem`) runs the
// forensics pipeline over a flight-recorder incident capture
// (`taggersim -flightrec`): it reconstructs the wait-for cycle from
// the frozen snapshot, attributes the queued bytes hop by hop to flows
// and TCAM rules, and lays out the onset timeline.
//
// Malformed input (log shippers sometimes interleave writes) is skipped
// and counted, not fatal: the remaining events still tell the story.
// A binary trace that ends mid-record (a crashed simulator leaves a
// partial tail) is analyzed the same way but exits nonzero, because a
// torn capture's totals undercount the run; pass -allow-truncated to
// accept it, as when salvaging whatever a crash left behind.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/trace"
	"repro/internal/trace/pipeline"
)

// run wires the pipeline for one invocation: ingest r in format,
// normalize, then either fold metrics and render the report or re-emit
// the stream as JSONL. The returned Diag carries what was lost to
// damage: ingest skips + normalize drops, the subset with unknown
// kinds, and whether a binary stream ended mid-record.
func run(r io.Reader, w io.Writer, format, output string, top int) (pipeline.Diag, error) {
	src, err := pipeline.Open(r, format)
	if err != nil {
		return pipeline.Diag{}, err
	}
	norm := &pipeline.Normalize{}
	stages := []pipeline.Stage{norm}
	diag := func() pipeline.Diag {
		d := pipeline.Diag{Skipped: src.Skipped() + norm.Dropped}
		if bs, ok := src.(*pipeline.BinarySource); ok {
			d.Alien = bs.Alien()
			d.Truncated = bs.Truncated()
		}
		return d
	}
	switch output {
	case "report":
		sum := pipeline.NewSummary()
		if err := pipeline.Run(src, stages, sum); err != nil {
			return diag(), err
		}
		sum.ReportDiag(w, top, diag())
	case "jsonl":
		if err := pipeline.Run(src, stages, pipeline.NewJSONLSink(w)); err != nil {
			return diag(), err
		}
	case "postmortem":
		pm := pipeline.NewPostmortem()
		if err := pipeline.Run(src, stages, pm); err != nil {
			return diag(), err
		}
		var snap *trace.Snapshot
		if bs, ok := src.(*pipeline.BinarySource); ok {
			snap = bs.Snapshot()
		}
		pm.Render(w, snap, diag())
	default:
		return pipeline.Diag{}, fmt.Errorf("unknown output %q (want report, jsonl or postmortem)", output)
	}
	return diag(), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("taggertrace: ")
	top := flag.Int("top", 10, "links to show in the per-link tables")
	format := flag.String("format", pipeline.FormatAuto, "input format: auto, binary or jsonl")
	output := flag.String("o", "report", "output: report (human summary), jsonl (re-emit the event stream) or postmortem (flight-recorder forensics)")
	allowTrunc := flag.Bool("allow-truncated", false, "exit zero even if the binary trace ends mid-record")
	argv := os.Args[1:]
	if len(argv) > 0 && argv[0] == "postmortem" {
		argv = append([]string{"-o", "postmortem"}, argv[1:]...)
	}
	flag.CommandLine.Parse(argv)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: taggertrace [postmortem] [-top N] [-format auto|binary|jsonl] [-o report|jsonl|postmortem] [-allow-truncated] <trace>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	diag, err := run(f, os.Stdout, *format, *output, *top)
	if err != nil {
		log.Fatal(err)
	}
	if diag.Skipped > 0 {
		log.Printf("warning: skipped %d malformed lines (%d with unknown kinds)", diag.Skipped, diag.Alien)
	}
	if diag.Truncated {
		log.Printf("warning: trace truncated mid-record")
		if !*allowTrunc {
			os.Exit(1)
		}
	}
}
