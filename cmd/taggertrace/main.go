// Command taggertrace analyzes an event trace produced by `taggersim
// -trace <file>` — the legacy JSONL format or the binary format
// (`-trace-format binary`) — through a staged streaming pipeline:
// ingest → normalize → metric computation → report. Batches are
// bounded, so arbitrarily large captures analyze in constant memory.
//
// Usage:
//
//	taggersim -exp fig10 -trace /tmp/fig10.trc -trace-format binary
//	taggertrace /tmp/fig10.trc                # format auto-sniffed
//	taggertrace -o jsonl /tmp/fig10.trc       # downgrade to JSONL
//
// Malformed or truncated input (a crashed simulator leaves a partial
// tail; log shippers sometimes interleave writes) is skipped and
// counted, not fatal: the remaining events still tell the story.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/trace/pipeline"
)

// run wires the pipeline for one invocation: ingest r in format,
// normalize, then either fold metrics and render the report or re-emit
// the stream as JSONL. It returns the combined count of entries lost to
// damage (ingest skips + normalize drops).
func run(r io.Reader, w io.Writer, format, output string, top int) (int64, error) {
	src, err := pipeline.Open(r, format)
	if err != nil {
		return 0, err
	}
	norm := &pipeline.Normalize{}
	stages := []pipeline.Stage{norm}
	switch output {
	case "report":
		sum := pipeline.NewSummary()
		if err := pipeline.Run(src, stages, sum); err != nil {
			return src.Skipped() + norm.Dropped, err
		}
		sum.Report(w, top, src.Skipped()+norm.Dropped)
	case "jsonl":
		if err := pipeline.Run(src, stages, pipeline.NewJSONLSink(w)); err != nil {
			return src.Skipped() + norm.Dropped, err
		}
	default:
		return 0, fmt.Errorf("unknown output %q (want report or jsonl)", output)
	}
	return src.Skipped() + norm.Dropped, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("taggertrace: ")
	top := flag.Int("top", 10, "links to show in the per-link tables")
	format := flag.String("format", pipeline.FormatAuto, "input format: auto, binary or jsonl")
	output := flag.String("o", "report", "output: report (human summary) or jsonl (re-emit the event stream)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: taggertrace [-top N] [-format auto|binary|jsonl] [-o report|jsonl] <trace>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	skipped, err := run(f, os.Stdout, *format, *output, *top)
	if err != nil {
		log.Fatal(err)
	}
	if skipped > 0 {
		log.Printf("warning: skipped %d malformed lines", skipped)
	}
}
