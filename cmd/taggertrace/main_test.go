package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	tagger "repro"
	"repro/internal/trace"
)

// -update regenerates the golden fixtures under testdata/: the fig10
// trace captured in both encodings plus the pinned report. Run it (via
// `make trace-golden UPDATE=1`) only after an intentional trace-format
// or report-layout change, and review the diff.
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

const (
	goldenJSONL   = "testdata/fig10.jsonl"
	goldenBinary  = "testdata/fig10.bin"
	goldenReport  = "testdata/report.golden"
	goldenTGL     = "testdata/fig3cbd.tgl"
	goldenForensy = "testdata/postmortem.golden"
)

// regenerate captures the deterministic fig10 (no Tagger) run in both
// encodings and pins the report rendered from the JSONL capture.
func regenerate(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, g := range []struct {
		path, format string
	}{{goldenJSONL, tagger.TraceJSONL}, {goldenBinary, tagger.TraceBinary}} {
		f, err := os.Create(g.path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tagger.FigureTracedFormat("fig10", false, f, g.format); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	in, err := os.Open(goldenJSONL)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var report bytes.Buffer
	if _, err := run(in, &report, "auto", "report", 10); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenReport, report.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s, %s, %s", goldenJSONL, goldenBinary, goldenReport)
}

func runFile(t *testing.T, path, format, output string) (string, int64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	diag, err := run(f, &out, format, output, 10)
	if err != nil {
		t.Fatalf("run(%s, %s, %s): %v", path, format, output, err)
	}
	return out.String(), diag.Skipped
}

// TestGoldenReport pins the report output: the checked-in fig10
// captures — one JSONL, one binary, same deterministic run — must both
// render byte-identically to testdata/report.golden, whether the format
// is sniffed or named. A diff here means the report layout or the trace
// encoding changed; regenerate deliberately with -update.
func TestGoldenReport(t *testing.T) {
	if *update {
		regenerate(t)
	}
	want, err := os.ReadFile(goldenReport)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name, path, format string
	}{
		{"jsonl-auto", goldenJSONL, "auto"},
		{"jsonl-named", goldenJSONL, "jsonl"},
		{"binary-auto", goldenBinary, "auto"},
		{"binary-named", goldenBinary, "binary"},
	} {
		got, skipped := runFile(t, c.path, c.format, "report")
		if skipped != 0 {
			t.Errorf("%s: %d entries skipped in a clean capture", c.name, skipped)
		}
		if got != string(want) {
			t.Errorf("%s: report diverges from %s\n--- got ---\n%s--- want ---\n%s",
				c.name, goldenReport, got, want)
		}
	}
	if !strings.Contains(string(want), "DEADLOCK onset") {
		t.Errorf("golden fig10 (no Tagger) report lost its deadlock:\n%s", want)
	}
}

// regeneratePostmortem captures a seeded flight-recorder incident — the
// detect arm's Fig 3 CBD deadlock onset — and pins the forensics report
// rendered from it.
func regeneratePostmortem(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	res, err := tagger.DetectRunFlightRec(1, tagger.ArmDetect, nil, tagger.FlightRecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incidents) == 0 {
		t.Fatal("seeded detect run captured no incidents")
	}
	inc := res.Incidents[0]
	if err := os.WriteFile(goldenTGL, inc.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	var report bytes.Buffer
	if _, err := run(bytes.NewReader(inc.Data), &report, "binary", "postmortem", 10); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenForensy, report.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s, %s", goldenTGL, goldenForensy)
}

// TestGoldenPostmortem pins the forensics pipeline end to end: the
// checked-in incident capture (a seeded detect-arm deadlock onset) must
// render byte-identically to testdata/postmortem.golden, and the report
// must name the wait-for cycle, the culprit flows and the live detector
// tags. A diff means the snapshot encoding or the report layout changed;
// regenerate deliberately with `make postmortem-golden UPDATE=1`.
func TestGoldenPostmortem(t *testing.T) {
	if *update {
		regeneratePostmortem(t)
	}
	want, err := os.ReadFile(goldenForensy)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"auto", "binary"} {
		got, skipped := runFile(t, goldenTGL, format, "postmortem")
		if skipped != 0 {
			t.Errorf("format %s: %d entries skipped in a clean capture", format, skipped)
		}
		if got != string(want) {
			t.Errorf("format %s: postmortem diverges from %s\n--- got ---\n%s--- want ---\n%s",
				format, goldenForensy, got, want)
		}
	}
	for _, must := range []string{"POST-MORTEM: deadlock-onset", "wait-for cycle", "flow ", "live detector tags"} {
		if !strings.Contains(string(want), must) {
			t.Errorf("golden postmortem report lost %q:\n%s", must, want)
		}
	}
}

// TestGoldenPostmortemFresh re-captures the same seeded incident live
// and checks it is byte-identical to the checked-in capture: the
// recorder's output is a pure function of (seed, arm), never of wall
// clock, host or scheduling.
func TestGoldenPostmortemFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates a full detect run")
	}
	want, err := os.ReadFile(goldenTGL)
	if err != nil {
		t.Skipf("golden incident missing (run with -update): %v", err)
	}
	res, err := tagger.DetectRunFlightRec(1, tagger.ArmDetect, nil, tagger.FlightRecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incidents) == 0 {
		t.Fatal("seeded detect run captured no incidents")
	}
	if !bytes.Equal(res.Incidents[0].Data, want) {
		t.Errorf("fresh capture differs from %s (%d vs %d bytes): incident capture is not deterministic",
			goldenTGL, len(res.Incidents[0].Data), len(want))
	}
}

// TestGoldenJSONLExport pins the compatibility downgrade: `-o jsonl`
// over the binary capture must re-emit the legacy format byte-for-byte
// — exactly the file sim.JSONLTracer wrote for the same run.
func TestGoldenJSONLExport(t *testing.T) {
	if *update {
		regenerate(t)
	}
	want, err := os.ReadFile(goldenJSONL)
	if err != nil {
		t.Fatal(err)
	}
	got, skipped := runFile(t, goldenBinary, "auto", "jsonl")
	if skipped != 0 {
		t.Errorf("%d entries skipped in a clean capture", skipped)
	}
	if got != string(want) {
		t.Errorf("binary->jsonl export is not byte-identical to the JSONL capture\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRunRejectsBadFlags: unknown formats and outputs fail up front.
func TestRunRejectsBadFlags(t *testing.T) {
	if _, err := run(strings.NewReader(""), io.Discard, "xml", "report", 10); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := run(strings.NewReader(""), io.Discard, "auto", "csv", 10); err == nil {
		t.Error("unknown output accepted")
	}
}

// TestRunSurfacesCorruption: the CLI path reports the combined
// ingest+normalize loss for damaged input.
func TestRunSurfacesCorruption(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		`{"t":1,"kind":"pause","node":"A","peer":"B","prio":1}`,
		`garbage`,
		`{"t":2,"kind":"comet","node":"A"}`, // decodes, normalize drops it
	}, "\n"))
	var out bytes.Buffer
	diag, err := run(in, &out, "auto", "report", 10)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Skipped != 2 {
		t.Errorf("skipped = %d, want 2 (1 ingest + 1 normalize)", diag.Skipped)
	}
	if !strings.Contains(out.String(), "2 malformed lines skipped") {
		t.Errorf("report does not surface the loss:\n%s", out.String())
	}
}

// TestRunSurfacesTruncation: a binary capture cut mid-record must be
// analyzed to the torn point, flagged in Diag (so main can exit
// nonzero without -allow-truncated), and called out in the report
// footer.
func TestRunSurfacesTruncation(t *testing.T) {
	if _, err := os.Stat(goldenBinary); err != nil {
		t.Skipf("golden binary missing (run with -update): %v", err)
	}
	whole, err := os.ReadFile(goldenBinary)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside an entry: 7 bytes past an entry boundary near the end.
	cut := len(whole) - (len(whole)-trace.HeaderSize)%trace.EntrySize - trace.EntrySize + 7
	var out bytes.Buffer
	diag, err := run(bytes.NewReader(whole[:cut]), &out, "binary", "report", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Truncated {
		t.Error("Diag.Truncated = false for a torn capture")
	}
	if diag.Skipped == 0 {
		t.Error("torn tail not counted as skipped")
	}
	if !strings.Contains(out.String(), "WARNING: trace ended mid-record") {
		t.Errorf("report footer missing the truncation warning:\n%s", out.String())
	}
	// The intact prefix must still be analyzed.
	if !strings.Contains(out.String(), "events over") {
		t.Errorf("torn capture produced no analysis:\n%s", out.String())
	}
}

// TestRunSurfacesAlienKinds: entries with a kind this reader does not
// speak (a newer producer) are skipped, tallied separately from
// damage, and noted in the report footer.
func TestRunSurfacesAlienKinds(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Intern("T1"), w.Intern("L1")
	w.Emit(trace.Entry{Tick: 100, Kind: trace.KindPause, Prio: 1, A: a, B: b})
	w.Emit(trace.Entry{Tick: 200, Kind: trace.Kind(200), A: a}) // from the future
	w.Emit(trace.Entry{Tick: 300, Kind: trace.KindResume, Prio: 1, A: a, B: b})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	diag, err := run(bytes.NewReader(buf.Bytes()), &out, "binary", "report", 10)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Alien != 1 || diag.Skipped != 1 {
		t.Errorf("diag = %+v, want Alien=1 Skipped=1", diag)
	}
	if diag.Truncated {
		t.Error("clean stream flagged truncated")
	}
	if !strings.Contains(out.String(), "kinds this reader does not speak") {
		t.Errorf("report footer missing the alien-kind note:\n%s", out.String())
	}
}

// TestMillionEventStreamBoundedMemory is the scale gate: a million-event
// binary capture must stream through the full report pipeline with
// retained memory proportional to the number of distinct links, not
// events.
func TestMillionEventStreamBoundedMemory(t *testing.T) {
	const events = 1_000_000
	path := filepath.Join(t.TempDir(), "big.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// RingSize covering the whole run keeps generation loss-free without
	// pacing the emit loop against the writer's flush ticker.
	w, err := trace.NewWriter(f, trace.Config{RingSize: 1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	nodes := [4]uint32{w.Intern("T1"), w.Intern("T2"), w.Intern("L1"), w.Intern("L2")}
	for i := 0; i < events; i++ {
		k := trace.KindPause
		if i%2 == 1 {
			k = trace.KindResume
		}
		w.Emit(trace.Entry{
			Tick: int64(i) * 100, Kind: k, Prio: 1,
			A: nodes[i%4], B: nodes[(i+1)%4], Depth: int64(i % 9216),
		})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := w.Dropped(); n != 0 {
		t.Fatalf("generation dropped %d events; the streaming claim needs all %d", n, events)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var out bytes.Buffer
	diag, err := run(in, &out, "binary", "report", 10)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	if diag.Skipped != 0 {
		t.Errorf("skipped = %d, want 0", diag.Skipped)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("%d events", events)) {
		t.Errorf("report did not fold all events:\n%s", out.String())
	}
	// The 32MB input must not be resident: allow a generous fixed budget
	// for histograms, tables and test scaffolding.
	const budget = 8 << 20
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > budget {
		t.Errorf("heap grew %d bytes analyzing a %d-event trace; want < %d (bounded memory)",
			growth, events, budget)
	}
}
