package main

import (
	"strings"
	"testing"
)

// TestAnalyzeSkipsMalformedLines pins the fix for the abort-on-bad-line
// bug: the old decoder log.Fatal'd on the first malformed line, so a
// truncated trace (crashed simulator, interleaved shipper writes) yielded
// no analysis at all. Bad lines must be skipped and counted while every
// well-formed event before AND after them is still folded in.
func TestAnalyzeSkipsMalformedLines(t *testing.T) {
	trace := strings.Join([]string{
		`{"t":10,"kind":"pause","node":"T1","peer":"L1","prio":1}`,
		`{"t":15,"kind":"drop","node":"T1","flow":"f1","reason":"ttl"}`,
		`not json at all`,
		`{"t":20,"kind":"resume","node":"T1","peer":"L1"`, // truncated
		``, // blank lines are not events and not errors
		`{"t":30,"kind":"resume","node":"T1","peer":"L1","prio":1}`,
		`{"t":40,"kind":"deadlock","node":"L1","cycle":["L1->T1","T1->L1"]}`,
		`{"t":45,"kind":"demote","node":"T1","flow":"f2"}`,
		`{"t":50,"kind":"pau`, // truncated final line
	}, "\n")

	s, err := analyze(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if s.Skipped != 3 {
		t.Errorf("Skipped = %d, want 3", s.Skipped)
	}
	if s.Events != 5 {
		t.Errorf("Events = %d, want 5", s.Events)
	}
	k := linkKey{"T1", "L1"}
	if s.Pauses[k] != 1 || s.Resumes[k] != 1 {
		t.Errorf("pauses/resumes = %d/%d, want 1/1", s.Pauses[k], s.Resumes[k])
	}
	if s.DropByReason["ttl"] != 1 || s.Demotes != 1 || s.Deadlocks != 1 {
		t.Errorf("drops/demotes/deadlocks = %d/%d/%d",
			s.DropByReason["ttl"], s.Demotes, s.Deadlocks)
	}
	if s.FirstDeadlock != 40 || len(s.FirstCycle) != 2 {
		t.Errorf("first deadlock = %d cycle %v", s.FirstDeadlock, s.FirstCycle)
	}
	if s.LastT != 45 {
		t.Errorf("LastT = %d, want 45", s.LastT)
	}

	var b strings.Builder
	s.report(&b, 10)
	out := b.String()
	if !strings.Contains(out, "3 malformed lines skipped") {
		t.Errorf("report does not surface the skip count:\n%s", out)
	}
	if !strings.Contains(out, "DEADLOCK onset at 40ns") {
		t.Errorf("report lost the deadlock:\n%s", out)
	}
}

func TestAnalyzeCleanTrace(t *testing.T) {
	trace := `{"t":5,"kind":"pause","node":"A","peer":"B","prio":2}` + "\n"
	s, err := analyze(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if s.Skipped != 0 || s.Events != 1 {
		t.Errorf("skipped/events = %d/%d, want 0/1", s.Skipped, s.Events)
	}
	var b strings.Builder
	s.report(&b, 10)
	if strings.Contains(b.String(), "skipped") {
		t.Errorf("clean trace must not mention skips:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "no deadlock") {
		t.Errorf("missing no-deadlock line:\n%s", b.String())
	}
}

// TestPauseDurationPercentiles: paired pause/resume intervals feed the
// per-link duration histograms (per priority, so overlapping pauses on
// different priorities pair correctly), unresumed pauses are excluded,
// and the report renders a percentile table honoring -top.
func TestPauseDurationPercentiles(t *testing.T) {
	trace := strings.Join([]string{
		// A->B: two 2µs intervals on prio 1, plus one never-resumed pause.
		`{"t":1000,"kind":"pause","node":"A","peer":"B","prio":1}`,
		`{"t":3000,"kind":"resume","node":"A","peer":"B","prio":1}`,
		`{"t":10000,"kind":"pause","node":"A","peer":"B","prio":1}`,
		`{"t":12000,"kind":"resume","node":"A","peer":"B","prio":1}`,
		`{"t":20000,"kind":"pause","node":"A","peer":"B","prio":2}`,
		// C->D: three 4µs intervals, overlapping across priorities.
		`{"t":1000,"kind":"pause","node":"C","peer":"D","prio":1}`,
		`{"t":2000,"kind":"pause","node":"C","peer":"D","prio":2}`,
		`{"t":5000,"kind":"resume","node":"C","peer":"D","prio":1}`,
		`{"t":6000,"kind":"resume","node":"C","peer":"D","prio":2}`,
		`{"t":9000,"kind":"pause","node":"C","peer":"D","prio":1}`,
		`{"t":13000,"kind":"resume","node":"C","peer":"D","prio":1}`,
	}, "\n")

	s, err := analyze(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	ab, cd := linkKey{"A", "B"}, linkKey{"C", "D"}
	if got := s.PauseDur[ab].Count(); got != 2 {
		t.Errorf("A->B intervals = %d, want 2 (open pause must not count)", got)
	}
	if got := s.PauseDur[cd].Count(); got != 3 {
		t.Errorf("C->D intervals = %d, want 3", got)
	}
	snap := s.PauseDur[cd].Snapshot()
	if snap.Min != 4e-6 || snap.Max != 4e-6 {
		t.Errorf("C->D min/max = %v/%v s, want 4µs exactly", snap.Min, snap.Max)
	}

	var b strings.Builder
	s.report(&b, 10)
	out := b.String()
	if !strings.Contains(out, "pause durations") || !strings.Contains(out, "p99") {
		t.Fatalf("report missing the percentile table:\n%s", out)
	}
	if !strings.Contains(out, "2µs") || !strings.Contains(out, "4µs") {
		t.Errorf("percentile table missing expected durations:\n%s", out)
	}

	// -top 1 keeps only the busiest link (C->D, 3 intervals).
	b.Reset()
	s.report(&b, 1)
	durSection := b.String()[strings.Index(b.String(), "pause durations"):]
	if !strings.Contains(durSection, "C") || strings.Contains(durSection, "A     B") {
		t.Errorf("-top 1 did not keep only the busiest link:\n%s", durSection)
	}
}
