// Command taggerfuzz drives the differential verification battery in
// internal/check over seeded random topologies. Each seed becomes a
// bounded Clos, Jellyfish or BCube instance; the battery cross-checks the
// synthesis algorithms, the serial and parallel pipelines, and the
// compressed and uncompressed TCAM images against the independent oracle.
//
// On a failure the driver greedily shrinks the case to a minimal
// configuration that still fails and writes a runnable Go test to the
// corpus directory, so the divergence survives as a regression test:
//
//	taggerfuzz -seeds 200 -topo all -par 8
//	taggerfuzz -topo jellyfish -seed 1337 -seeds 1   # replay one seed
//	taggerfuzz -churn -seeds 250 -par 8              # churn differential
//	taggerfuzz -cache -seeds 100 -par 8              # synthesis-cache differential
//
// With -churn the battery switches to the fabric-churn differential:
// each seed drives a random link-flap/drain/pod-add sequence through the
// incremental re-synthesis engine and demands rule-for-rule equality
// with from-scratch synthesis after every event (plus the §5.1 oracle).
//
// With -cache every seed's synthesis goes through ONE shared
// fingerprint-keyed cache (internal/synthcache) — cold builds,
// same-instance re-requests, and isomorphic twin instances — and each
// answer must be rule-for-rule identical to from-scratch synthesis and
// pass the oracle. Running seeds in parallel against the shared cache
// also exercises the single-flight and eviction paths under contention.
//
// The seed sweep fans across -par workers (runs are independent; verdicts
// and repro output are reported in seed order, so -par never changes what
// the command prints or writes). Shrinking runs serially after the sweep.
//
// The exit status is the number of failing seeds (capped at 125), so CI
// can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/check"
	"repro/internal/sweep"
	"repro/internal/synthcache"
	"repro/internal/telemetry/profile"
)

func main() {
	var (
		seeds = flag.Int("seeds", 50, "seeds to run per topology family")
		base  = flag.Int64("seed", 1, "first seed; seeds run [seed, seed+seeds)")
		topo  = flag.String("topo", "all", "topology family: clos, jellyfish, bcube or all")
		out   = flag.String("out", filepath.Join("internal", "check", "testdata", "fuzz-corpus"),
			"directory for shrunk repro tests")
		quiet = flag.Bool("q", false, "only report failures and the final tally")
		par   = flag.Int("par", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial)")
		churn = flag.Bool("churn", false, "run the churn differential (incremental vs from-scratch synthesis)")
		cfuzz = flag.Bool("cache", false, "run the synthesis-cache differential (cached/stamped vs from-scratch synthesis)")
	)
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()
	log.SetFlags(0)

	stop, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			log.Fatal(err)
		}
	}()

	topos := check.Topos()
	if *churn {
		topos = check.ChurnTopos()
	}
	if *cfuzz {
		topos = check.CacheTopos()
	}
	if *topo != "all" {
		found := false
		for _, t := range topos {
			if t == *topo {
				topos, found = []string{t}, true
				break
			}
		}
		if !found {
			log.Fatalf("taggerfuzz: unknown -topo %q (want one of %v or all)", *topo, topos)
		}
	}

	failures := 0
	switch {
	case *churn:
		failures = runChurn(topos, *base, *seeds, *par, *quiet, *out)
	case *cfuzz:
		failures = runCache(topos, *base, *seeds, *par, *quiet)
	default:
		failures = runBattery(topos, *base, *seeds, *par, *quiet, *out)
	}

	if failures > 0 {
		fmt.Printf("taggerfuzz: %d failing seed(s)\n", failures)
		if failures > 125 {
			failures = 125
		}
		if err := stop(); err != nil { // os.Exit skips the deferred stop
			log.Print(err)
		}
		os.Exit(failures)
	}
	fmt.Printf("taggerfuzz: all %d seed(s) clean across %d topolog%s\n",
		*seeds, len(topos), map[bool]string{true: "y", false: "ies"}[len(topos) == 1])
}

// runBattery sweeps the classic differential battery. One verdict per
// (topology, seed); the sweep itself never errors — a failing battery is
// the verdict, carried in the result.
func runBattery(topos []string, base int64, seeds, par int, quiet bool, out string) int {
	type verdict struct {
		c   check.Case
		err error
	}
	failures := 0
	for _, t := range topos {
		t := t
		verdicts, _ := sweep.Run(sweep.Seeds(base, seeds), par,
			func(seed int64) (verdict, error) {
				c := check.GenCase(t, seed)
				return verdict{c: c, err: check.RunCase(c)}, nil
			})
		for _, v := range verdicts {
			if v.err == nil {
				if !quiet {
					fmt.Printf("ok   %s\n", v.c)
				}
				continue
			}
			failures++
			fmt.Printf("FAIL %s\n     %v\n", v.c, v.err)
			min := check.Shrink(v.c, func(c check.Case) bool { return check.RunCase(c) != nil })
			minErr := check.RunCase(min)
			if minErr == nil {
				// Shrink guarantees the returned case fails its predicate;
				// a pass here means the failure is flaky — report the
				// original instead of emitting a lying repro.
				min, minErr = v.c, v.err
			}
			fmt.Printf("     shrunk to %s\n", min)
			path := filepath.Join(out, fmt.Sprintf("repro_%s_test.go", check.ReproName(min)))
			if werr := writeRepro(path, check.ReproSource(min, minErr)); werr != nil {
				log.Printf("taggerfuzz: writing repro: %v", werr)
			} else {
				fmt.Printf("     repro written to %s\n", path)
			}
		}
	}
	return failures
}

// runChurn sweeps the churn differential with the same verdict/shrink/
// repro discipline as the classic battery.
func runChurn(topos []string, base int64, seeds, par int, quiet bool, out string) int {
	type verdict struct {
		c   check.ChurnCase
		err error
	}
	failures := 0
	for _, t := range topos {
		t := t
		verdicts, _ := sweep.Run(sweep.Seeds(base, seeds), par,
			func(seed int64) (verdict, error) {
				c := check.GenChurnCase(t, seed)
				return verdict{c: c, err: check.RunChurnCase(c)}, nil
			})
		for _, v := range verdicts {
			if v.err == nil {
				if !quiet {
					fmt.Printf("ok   %s\n", v.c)
				}
				continue
			}
			failures++
			fmt.Printf("FAIL %s\n     %v\n", v.c, v.err)
			min := check.ShrinkChurn(v.c, func(c check.ChurnCase) bool { return check.RunChurnCase(c) != nil })
			minErr := check.RunChurnCase(min)
			if minErr == nil {
				min, minErr = v.c, v.err
			}
			fmt.Printf("     shrunk to %s\n", min)
			path := filepath.Join(out, fmt.Sprintf("repro_%s_test.go", check.ChurnReproName(min)))
			if werr := writeRepro(path, check.ChurnReproSource(min, minErr)); werr != nil {
				log.Printf("taggerfuzz: writing repro: %v", werr)
			} else {
				fmt.Printf("     repro written to %s\n", path)
			}
		}
	}
	return failures
}

// runCache sweeps the synthesis-cache differential. One cache is shared
// across every seed AND every sweep worker, so parallel runs also stress
// the single-flight and LRU-eviction machinery; the per-case verdict is
// deterministic regardless (every tier must match from-scratch). Cache
// cases are cheap and fully determined by (topo, seed), so failures are
// reported directly without the shrink/repro pipeline.
func runCache(topos []string, base int64, seeds, par int, quiet bool) int {
	type verdict struct {
		c   check.CacheCase
		err error
	}
	cache := synthcache.New(48)
	failures := 0
	for _, t := range topos {
		t := t
		verdicts, _ := sweep.Run(sweep.Seeds(base, seeds), par,
			func(seed int64) (verdict, error) {
				c := check.GenCacheCase(t, seed)
				return verdict{c: c, err: check.RunCacheCase(c, cache)}, nil
			})
		for _, v := range verdicts {
			if v.err == nil {
				if !quiet {
					fmt.Printf("ok   %s\n", v.c)
				}
				continue
			}
			failures++
			fmt.Printf("FAIL %s\n     %v\n", v.c, v.err)
		}
	}
	st := cache.Stats()
	fmt.Printf("taggerfuzz: cache stats: %d hits / %d misses (ratio %.2f), %d translated, %d pod-stamped, %d evictions, %d single-flight waits\n",
		st.Hits, st.Misses, st.HitRatio(), st.Translated, st.PodStamped, st.Evictions, st.SingleFlightWait)
	return failures
}

func writeRepro(path, src string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(src), 0o644)
}
