// Command taggerscale reproduces the scalability evaluation: Table 5's
// Jellyfish sweep (priorities and TCAM entries vs size) plus the BCube
// and Clos tag counts.
//
// Usage:
//
//	taggerscale                         # the default Table 5 sweep
//	taggerscale -switches 500 -ports 24 # one custom Jellyfish point
//	taggerscale -switches 500 -random 10000
//	taggerscale -switches 500 -par 1    # force the serial synthesis path
//	taggerscale -bcube                  # BCube levels vs tags
//	taggerscale -cpuprofile cpu.out -switches 200
package main

import (
	"flag"
	"fmt"
	"log"

	tagger "repro"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/telemetry/profile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("taggerscale: ")

	var (
		switches = flag.Int("switches", 0, "custom Jellyfish switch count (0 = default sweep)")
		ports    = flag.Int("ports", 24, "custom Jellyfish ports per switch")
		random   = flag.Int("random", 0, "extra random ELP paths")
		seed     = flag.Int64("seed", 1, "Jellyfish seed")
		bcube    = flag.Bool("bcube", false, "run the BCube tag-count sweep instead")
		fattree  = flag.Bool("fattree", false, "run the fat-tree sweep instead")
		par      = flag.Int("par", 0, "synthesis worker count (0 = GOMAXPROCS, 1 = serial legacy path)")
		ops      = flag.String("ops", "", "serve /metrics, /healthz and /debug/pprof on this address during and after the sweep (e.g. :8080)")
	)
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			log.Fatal(err)
		}
	}()

	if *ops != "" {
		srv, err := telemetry.StartOps(*ops, telemetry.Default)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ops endpoint on http://%s (metrics, healthz, debug/pprof)", srv.Addr())
		defer srv.Close()
	}
	run(*switches, *ports, *random, *seed, *par, *bcube, *fattree)
}

func run(switches, ports, random int, seed int64, par int, bcube, fattree bool) {
	if fattree {
		t := metrics.NewTable("k", "Switches", "Hosts", "ELP", "Queues", "TCAM max/switch")
		for _, k := range []int{4, 6, 8} {
			ft, err := tagger.NewFatTree(k)
			if err != nil {
				log.Fatal(err)
			}
			set := tagger.ELPFromKBounce(ft.Graph, ft.Edges, 1)
			sys, err := tagger.SynthesizeFatTree(ft, set, 1)
			if err != nil {
				log.Fatal(err)
			}
			entries := tagger.CompressRules(sys.Rules.Rules())
			t.AddRow(k, len(ft.Graph.Switches()), len(ft.Hosts), set.Len(),
				sys.NumLosslessQueues(), tagger.MaxEntriesPerSwitch(entries))
		}
		fmt.Print(t.String())
		fmt.Println("bounce-counting needs 2 lossless queues at every fat-tree scale")
		return
	}

	if bcube {
		t := metrics.NewTable("BCube(n,k)", "Servers", "Levels", "Tags")
		for _, c := range []struct{ n, k int }{{4, 1}, {2, 2}, {8, 1}} {
			tags, err := tagger.BCubeTags(c.n, c.k)
			if err != nil {
				log.Fatal(err)
			}
			servers := 1
			for i := 0; i <= c.k; i++ {
				servers *= c.n
			}
			t.AddRow(fmt.Sprintf("BCube(%d,%d)", c.n, c.k), servers, c.k+1, tags)
		}
		fmt.Print(t.String())
		fmt.Println("paper: a k-level BCube with default routing needs k tags")
		return
	}

	if switches > 0 {
		row, err := tagger.Table5CasePar(switches, ports, random, seed, par)
		if err != nil {
			log.Fatal(err)
		}
		res := tagger.Table5Result{Rows: []tagger.Table5Row{row}}
		fmt.Print(res.String())
		return
	}

	res, err := tagger.Table5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
	fmt.Println("paper Table 5: 3 lossless priorities suffice up to 2,000 switches")
}
