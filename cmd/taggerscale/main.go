// Command taggerscale reproduces the scalability evaluation: Table 5's
// Jellyfish sweep (priorities and TCAM entries vs size) plus the BCube
// and Clos tag counts.
//
// Usage:
//
//	taggerscale                         # the default Table 5 sweep
//	taggerscale -switches 500 -ports 24 # one custom Jellyfish point
//	taggerscale -switches 500 -random 10000
//	taggerscale -switches 500 -par 1    # force the serial synthesis path
//	taggerscale -bcube                  # BCube levels vs tags
//	taggerscale -cache                  # synthesis-cache cold/warm demo
//	taggerscale -cpuprofile cpu.out -switches 200
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	tagger "repro"
	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/metrics"
	"repro/internal/synthcache"
	"repro/internal/telemetry"
	"repro/internal/telemetry/profile"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("taggerscale: ")

	var (
		switches  = flag.Int("switches", 0, "custom Jellyfish switch count (0 = default sweep)")
		ports     = flag.Int("ports", 24, "custom Jellyfish ports per switch")
		random    = flag.Int("random", 0, "extra random ELP paths")
		seed      = flag.Int64("seed", 1, "Jellyfish seed")
		bcube     = flag.Bool("bcube", false, "run the BCube tag-count sweep instead")
		fattree   = flag.Bool("fattree", false, "run the fat-tree sweep instead")
		par       = flag.Int("par", 0, "synthesis worker count (0 = GOMAXPROCS, 1 = serial legacy path)")
		ops       = flag.String("ops", "", "serve /metrics, /healthz and /debug/pprof on this address during and after the sweep (e.g. :8080)")
		cacheDemo = flag.Bool("cache", false, "demo the synthesis cache: cold vs warm Jellyfish synthesis and pod-memoized fat-tree synthesis, with hit ratios")
		cacheSize = flag.Int("cache-size", synthcache.DefaultCapacity, "synthesis-cache capacity (entries) for -cache")
	)
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			log.Fatal(err)
		}
	}()

	if *ops != "" {
		srv, err := telemetry.StartOps(*ops, telemetry.Default)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ops endpoint on http://%s (metrics, healthz, debug/pprof)", srv.Addr())
		defer srv.Close()
	}
	if *cacheDemo {
		runCacheDemo(*switches, *ports, *seed, *cacheSize)
		return
	}
	run(*switches, *ports, *random, *seed, *par, *bcube, *fattree)
}

// runCacheDemo measures the synthesis cache on the two workloads the
// repo's benchgate tracks: a warm-cache rehit on a Jellyfish fabric
// (fingerprint lookup vs full Algorithm 1+2 + TCAM compilation) and
// representative-pod stamping on a fat-tree (one pod pair enumerated,
// the rest stamped by pod-permutation automorphisms).
func runCacheDemo(switches, ports int, seed int64, capacity int) {
	if switches <= 0 {
		switches = 200
	}
	cache := synthcache.New(capacity)

	j, err := topology.NewJellyfish(topology.JellyfishConfig{
		Switches: switches, Ports: ports, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	set := elp.ShortestAllN(j.Graph, j.Switches, 1)
	t0 := time.Now()
	if _, err := cache.Synthesize(j.Graph, set.Paths(), core.Options{}); err != nil {
		log.Fatal(err)
	}
	cold := time.Since(t0)
	t0 = time.Now()
	warm, err := cache.Synthesize(j.Graph, set.Paths(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	warmD := time.Since(t0)
	if !warm.Hit {
		log.Fatal("warm jellyfish request missed the cache")
	}
	fmt.Printf("jellyfish %d switches, %d ELP paths:\n", switches, set.Len())
	fmt.Printf("  cold synthesis  %12v\n", cold.Round(time.Microsecond))
	fmt.Printf("  warm cache hit  %12v  (%.0fx faster)\n",
		warmD.Round(time.Microsecond), float64(cold)/float64(warmD))

	const k = 8
	ft, err := topology.NewFatTree(k)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	ftSet := elp.KBounce(ft.Graph, ft.Edges, 1, nil)
	if _, err := core.ClosSynthesize(ft.Graph, ftSet.Paths(), 1); err != nil {
		log.Fatal(err)
	}
	scratch := time.Since(t0)
	t0 = time.Now()
	memo, err := cache.ClosKBounce(ft.Graph, ft.Edges, 1)
	if err != nil {
		log.Fatal(err)
	}
	memoD := time.Since(t0)
	t0 = time.Now()
	if r, err := cache.ClosKBounce(ft.Graph, ft.Edges, 1); err != nil || !r.Hit {
		log.Fatalf("warm fat-tree request missed the cache (%v)", err)
	}
	rehitD := time.Since(t0)
	fmt.Printf("fat-tree k=%d (%d switches, %d ELP paths):\n",
		k, len(ft.Graph.Switches()), ftSet.Len())
	fmt.Printf("  from-scratch    %12v\n", scratch.Round(time.Millisecond))
	fmt.Printf("  pod-memoized    %12v  (%.1fx faster, stamped=%v)\n",
		memoD.Round(time.Millisecond), float64(scratch)/float64(memoD), memo.PodMemoized)
	fmt.Printf("  warm cache hit  %12v\n", rehitD.Round(time.Microsecond))

	st := cache.Stats()
	fmt.Printf("cache: %d hits / %d misses (hit ratio %.2f), %d pod-stamped, capacity %d\n",
		st.Hits, st.Misses, st.HitRatio(), st.PodStamped, capacity)
}

func run(switches, ports, random int, seed int64, par int, bcube, fattree bool) {
	if fattree {
		t := metrics.NewTable("k", "Switches", "Hosts", "ELP", "Queues", "TCAM max/switch")
		for _, k := range []int{4, 6, 8} {
			ft, err := tagger.NewFatTree(k)
			if err != nil {
				log.Fatal(err)
			}
			set := tagger.ELPFromKBounce(ft.Graph, ft.Edges, 1)
			sys, err := tagger.SynthesizeFatTree(ft, set, 1)
			if err != nil {
				log.Fatal(err)
			}
			entries := tagger.CompressRules(sys.Rules.Rules())
			t.AddRow(k, len(ft.Graph.Switches()), len(ft.Hosts), set.Len(),
				sys.NumLosslessQueues(), tagger.MaxEntriesPerSwitch(entries))
		}
		fmt.Print(t.String())
		fmt.Println("bounce-counting needs 2 lossless queues at every fat-tree scale")
		return
	}

	if bcube {
		t := metrics.NewTable("BCube(n,k)", "Servers", "Levels", "Tags")
		for _, c := range []struct{ n, k int }{{4, 1}, {2, 2}, {8, 1}} {
			tags, err := tagger.BCubeTags(c.n, c.k)
			if err != nil {
				log.Fatal(err)
			}
			servers := 1
			for i := 0; i <= c.k; i++ {
				servers *= c.n
			}
			t.AddRow(fmt.Sprintf("BCube(%d,%d)", c.n, c.k), servers, c.k+1, tags)
		}
		fmt.Print(t.String())
		fmt.Println("paper: a k-level BCube with default routing needs k tags")
		return
	}

	if switches > 0 {
		row, err := tagger.Table5CasePar(switches, ports, random, seed, par)
		if err != nil {
			log.Fatal(err)
		}
		res := tagger.Table5Result{Rows: []tagger.Table5Row{row}}
		fmt.Print(res.String())
		return
	}

	res, err := tagger.Table5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
	fmt.Println("paper Table 5: 3 lossless priorities suffice up to 2,000 switches")
}
