package tagger

import (
	"fmt"
	"io"
	"time"

	"repro/internal/chaos"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/elp"
	"repro/internal/measure"
	"repro/internal/metrics"
	"repro/internal/paper"
	"repro/internal/pfc"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/tcam"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file contains one driver per table/figure of the paper's
// evaluation. Each driver returns a structured result whose fields map
// directly onto the published artifact; EXPERIMENTS.md records the
// paper-vs-measured comparison.

// --- Table 1 ----------------------------------------------------------------

// Table1Result reproduces the reroute-probability measurement.
type Table1Result struct {
	Rows []measure.DayResult
}

// OverallProbability returns the pooled reroute probability.
func (r Table1Result) OverallProbability() float64 {
	var total, rer int64
	for _, row := range r.Rows {
		total += row.Total
		rer += row.Rerouted
	}
	if total == 0 {
		return 0
	}
	return float64(rer) / float64(total)
}

// String renders the table like the paper's Table 1.
func (r Table1Result) String() string {
	t := metrics.NewTable("Day", "Total No.", "Rerouted No.", "Reroute probability")
	for _, row := range r.Rows {
		t.AddRow(row.Day, row.Total, row.Rerouted, fmt.Sprintf("%.2e", row.Probability))
	}
	return t.String()
}

// Table1 runs the IP-in-IP probe campaign: days of measurements over a
// Clos with a transient link-failure process (§3.2).
func Table1(days int, perDay int64) Table1Result {
	c := paper.Testbed()
	return Table1Result{Rows: measure.RunCampaign(c, measure.DefaultConfig(), days, perDay)}
}

// --- Tables 3 and 4: the Figure 5 walk-through ------------------------------

// WalkThroughResult reproduces Figure 5 and Tables 3/4: the 6-node example
// topology, brute-force tags, merged tags, and the rewriting rules.
type WalkThroughResult struct {
	BruteForceSwitchTags int // Figure 5(b): 3
	MergedSwitchTags     int // Figure 5(c): 2
	BruteForceRules      []Rule
	MergedRules          []Rule
}

// RuleTable renders a rule list in the layout of Tables 3/4.
func RuleTable(g *Graph, rules []Rule) string {
	t := metrics.NewTable("Switch", "Tag", "InPort", "OutPort", "NewTag")
	for _, r := range rules {
		t.AddRow(g.Node(r.Switch).Name, r.Tag, r.In, r.Out, r.NewTag)
	}
	return t.String()
}

// WalkThrough runs both algorithms on the Figure 5 fixture.
func WalkThrough() (*WalkThroughResult, *Graph, error) {
	f := paper.NewFig5()
	bf, err := core.Synthesize(f.Graph, f.ELP.Paths(), core.Options{SkipMerge: true})
	if err != nil {
		return nil, nil, err
	}
	merged, err := core.Synthesize(f.Graph, f.ELP.Paths(), core.Options{})
	if err != nil {
		return nil, nil, err
	}
	return &WalkThroughResult{
		BruteForceSwitchTags: bf.Runtime.NumSwitchTags(),
		MergedSwitchTags:     merged.Runtime.NumSwitchTags(),
		BruteForceRules:      bf.Rules.Rules(),
		MergedRules:          merged.Rules.Rules(),
	}, f.Graph, nil
}

// --- Table 5: Jellyfish scalability ------------------------------------------

// Table5Row is one row of the Jellyfish scalability table.
type Table5Row struct {
	Switches        int
	Ports           int
	LongestLossless int // hops of the longest ELP path
	ELPSize         int // number of expected lossless paths
	Priorities      int // lossless queues needed (paper: 3 everywhere)
	Rules           int // max TCAM entries on any one switch (compressed)
	ExtraRandom     int // additional random paths (last row of the table)
}

// Table5Result is the whole table.
type Table5Result struct{ Rows []Table5Row }

// String renders it like the paper.
func (r Table5Result) String() string {
	t := metrics.NewTable("Switches", "Ports", "Longest", "ELP", "Priorities", "Rules", "+Random")
	for _, row := range r.Rows {
		t.AddRow(row.Switches, row.Ports, row.LongestLossless, row.ELPSize,
			row.Priorities, row.Rules, row.ExtraRandom)
	}
	return t.String()
}

// Table5Case computes one row: a Jellyfish of the given size with
// shortest-path ELP between all switch pairs (plus extraRandom random
// paths), synthesized with Algorithms 1+2 and compressed to TCAM entries.
func Table5Case(switches, ports int, extraRandom int, seed int64) (Table5Row, error) {
	return table5Case(switches, ports, extraRandom, seed, false, 1)
}

// Table5CasePar is Table5Case with an explicit worker count for the
// fan-out stages: ELP enumeration, Algorithm 1, rule derivation, replay
// and TCAM compression (0 = GOMAXPROCS, 1 = serial). Every worker count
// computes the identical row; see internal/parallel.
func Table5CasePar(switches, ports, extraRandom int, seed int64, par int) (Table5Row, error) {
	return table5Case(switches, ports, extraRandom, seed, false, par)
}

// Table5CaseECMP is Table5Case with the denser ELP production fabrics
// run: ALL equal-cost shortest paths per pair (capped at 8), the multipath
// sets ECMP actually spreads over.
func Table5CaseECMP(switches, ports int, seed int64) (Table5Row, error) {
	return table5Case(switches, ports, 0, seed, true, 1)
}

func table5Case(switches, ports, extraRandom int, seed int64, ecmp bool, par int) (Table5Row, error) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{
		Switches: switches, Ports: ports, Seed: seed,
	})
	if err != nil {
		return Table5Row{}, err
	}
	var set *elp.Set
	if ecmp {
		set = elp.ShortestAllECMP(j.Graph, j.Switches, 8)
	} else {
		set = elp.ShortestAllN(j.Graph, j.Switches, par)
	}
	if extraRandom > 0 {
		maxHops := 2 // random paths up to 2x the diameter-ish; keep short
		for _, p := range set.Paths() {
			if p.Hops() > maxHops {
				maxHops = p.Hops()
			}
		}
		elp.AddRandomPaths(set, j.Graph, j.Switches, extraRandom, maxHops+2, seed^0x7ead)
	}
	sys, err := core.Synthesize(j.Graph, set.Paths(), core.Options{Workers: par})
	if err != nil {
		return Table5Row{}, err
	}
	entries := tcam.CompressN(sys.Rules.Rules(), par)
	return Table5Row{
		Switches:        switches,
		Ports:           ports,
		LongestLossless: set.LongestHops(),
		ELPSize:         set.Len(),
		Priorities:      sys.Runtime.NumSwitchTags(),
		Rules:           tcam.MaxPerSwitch(entries),
		ExtraRandom:     extraRandom,
	}, nil
}

// Table5 computes the default sweep. The paper scales to 2,000 switches;
// the same code handles it, the default keeps CI fast.
func Table5() (Table5Result, error) {
	cases := []struct {
		switches, ports, extra int
	}{
		{50, 12, 0},
		{100, 16, 0},
		{200, 24, 0},
		{200, 24, 10000},
	}
	var out Table5Result
	for _, cse := range cases {
		row, err := Table5Case(cse.switches, cse.ports, cse.extra, 1)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// --- Figure 6: greedy vs optimal on Clos -------------------------------------

// Figure6Result compares Algorithm 2 against the Clos-specific optimum on
// the shortest + 1-bounce ELP.
type Figure6Result struct {
	GreedyQueues  int // paper: 3
	OptimalQueues int // paper: 2
}

// Figure6 runs the comparison on the testbed Clos.
func Figure6() (Figure6Result, error) {
	c := paper.Testbed()
	set := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	greedy, err := core.Synthesize(c.Graph, set.Paths(), core.Options{})
	if err != nil {
		return Figure6Result{}, err
	}
	opt, err := core.ClosSynthesize(c.Graph, set.Paths(), 1)
	if err != nil {
		return Figure6Result{}, err
	}
	return Figure6Result{
		GreedyQueues:  greedy.Runtime.NumSwitchTags(),
		OptimalQueues: opt.Runtime.NumSwitchTags(),
	}, nil
}

// --- Figures 10-12: testbed experiments ---------------------------------------

// FlowSeries is one flow's delivered-rate time series.
type FlowSeries struct {
	Name   string
	Points []sim.RatePoint
	// LateGbps is the mean delivered rate over the last quarter of the
	// run — zero for deadlocked flows.
	LateGbps float64
}

// ExperimentResult holds one scenario run.
type ExperimentResult struct {
	Deadlocked bool
	Cycle      []string // the detected pause-wait cycle, if any
	Flows      []FlowSeries
	Drops      sim.DropStats
}

func runScenario(s *workload.Scenario) ExperimentResult {
	s.Run()
	res := ExperimentResult{
		Deadlocked: s.Net.Deadlocked(),
		Cycle:      s.Net.DetectDeadlock(),
		Drops:      s.Net.Drops(),
	}
	lateFrom := s.Duration * 3 / 4
	for _, f := range s.Flows {
		res.Flows = append(res.Flows, FlowSeries{
			Name:     f.Name(),
			Points:   f.Series(s.Duration),
			LateGbps: f.MeanGbps(lateFrom, s.Duration),
		})
	}
	return res
}

// Figure10 runs the 1-bounce deadlock experiment; withTagger selects the
// (a)/(b) halves of the figure.
func Figure10(withTagger bool) ExperimentResult {
	opt := workload.Options{}
	if withTagger {
		opt.Bounces = 1
	}
	return runScenario(workload.Figure10(opt))
}

// Reconvergence runs the organic failure experiment: no pinned paths —
// two link failures, local fast-reroute detours (the 1-bounce paths),
// stale upstream routes with transient micro-loops, then global
// convergence at 15 ms. It is the §3 story end to end.
func Reconvergence(withTagger bool, flows int) ExperimentResult {
	opt := workload.Options{}
	if withTagger {
		opt.Bounces = 1
	}
	return runScenario(workload.Reconvergence(opt, flows))
}

// Trace encodings accepted by the traced experiment drivers.
const (
	TraceJSONL  = "jsonl"
	TraceBinary = "binary"
)

// CaptureStats reports what one traced run's capture path shed:
// Dropped counts events the writer lost — the binary tracer's SPSC
// ring under backpressure, or JSONL events arriving after a write
// error. Surfaced so a lossy capture never reads as a complete one.
type CaptureStats struct {
	Dropped int64
}

// NewTracerStats builds an event tracer writing to w in the requested
// encoding. The returned finish function flushes the capture and hands
// back its loss counters; a write error is returned as an error, but
// ring drops alone are the caller's policy call (NewTracer turns them
// into errors; taggersim surfaces them in its end-of-run summary).
// Call finish exactly once, after the simulation completes.
func NewTracerStats(w io.Writer, format string) (sim.Tracer, func() (CaptureStats, error), error) {
	switch format {
	case "", TraceJSONL:
		tr := &sim.JSONLTracer{W: w}
		return tr, func() (CaptureStats, error) {
			st := CaptureStats{Dropped: tr.Dropped}
			if tr.Err != nil {
				return st, fmt.Errorf("tagger: trace write: %w (%d events dropped)", tr.Err, tr.Dropped)
			}
			return st, nil
		}, nil
	case TraceBinary:
		bt, err := sim.NewBinaryTracer(w, trace.Config{})
		if err != nil {
			return nil, nil, err
		}
		return bt, func() (CaptureStats, error) {
			if err := bt.Close(); err != nil {
				return CaptureStats{Dropped: bt.Dropped()}, fmt.Errorf("tagger: trace write: %w", err)
			}
			return CaptureStats{Dropped: bt.Dropped()}, nil
		}, nil
	}
	return nil, nil, fmt.Errorf("tagger: unknown trace format %q (want %s or %s)", format, TraceJSONL, TraceBinary)
}

// NewTracer is NewTracerStats with the strict loss policy folded in:
// finish reports any loss — a write error, or (binary) ring-buffer
// drops — as an error.
func NewTracer(w io.Writer, format string) (sim.Tracer, func() error, error) {
	tr, finish, err := NewTracerStats(w, format)
	if err != nil {
		return nil, nil, err
	}
	isBinary := format == TraceBinary
	return tr, func() error {
		st, err := finish()
		if err != nil {
			return err
		}
		if isBinary && st.Dropped > 0 {
			return fmt.Errorf("tagger: binary trace dropped %d events", st.Dropped)
		}
		return nil
	}, nil
}

// figureScenario builds the named figure experiment's scenario.
func figureScenario(name string, withTagger bool) (*workload.Scenario, error) {
	opt := workload.Options{}
	if withTagger {
		opt.Bounces = 1
	}
	switch name {
	case "fig10":
		return workload.Figure10(opt), nil
	case "fig11":
		return workload.Figure11(opt), nil
	case "fig12":
		return workload.Figure12(opt), nil
	}
	return nil, fmt.Errorf("tagger: unknown figure %q", name)
}

// FigureTracedStats runs one of the figure experiments with an event
// trace written to w, surfacing the capture-loss counters so the
// caller can put them in its end-of-run summary. Drops alone are not
// an error here; a write failure is.
func FigureTracedStats(name string, withTagger bool, w io.Writer, format string) (ExperimentResult, CaptureStats, error) {
	s, err := figureScenario(name, withTagger)
	if err != nil {
		return ExperimentResult{}, CaptureStats{}, err
	}
	tr, finish, err := NewTracerStats(w, format)
	if err != nil {
		return ExperimentResult{}, CaptureStats{}, err
	}
	s.Net.SetTracer(tr)
	res := runScenario(s)
	st, err := finish()
	return res, st, err
}

// FigureTracedFormat runs one of the figure experiments with an event
// trace (pauses, resumes, demotions, drops, deadlock onsets) written to
// w in the given encoding (TraceJSONL or TraceBinary); any capture
// loss is an error.
func FigureTracedFormat(name string, withTagger bool, w io.Writer, format string) (ExperimentResult, error) {
	res, st, err := FigureTracedStats(name, withTagger, w, format)
	if err != nil {
		return res, err
	}
	if format == TraceBinary && st.Dropped > 0 {
		return res, fmt.Errorf("tagger: binary trace dropped %d events", st.Dropped)
	}
	return res, nil
}

// FigureFlightRec runs one of the figure experiments with the flight
// recorder armed: deadlock onset (or an invariant violation) freezes
// the last-window ring and captures a self-contained incident. The
// returned recorder holds the incidents and the capture-loss counters
// (DroppedTriggers, Overwrites) for the end-of-run summary.
func FigureFlightRec(name string, withTagger bool, cfg sim.FlightRecConfig) (ExperimentResult, *sim.FlightRecorder, error) {
	s, err := figureScenario(name, withTagger)
	if err != nil {
		return ExperimentResult{}, nil, err
	}
	fr := s.Net.EnableFlightRecorder(cfg)
	res := runScenario(s)
	return res, fr, nil
}

// FigureTraced is FigureTracedFormat pinned to the legacy JSONL
// encoding.
func FigureTraced(name string, withTagger bool, w io.Writer) (ExperimentResult, error) {
	return FigureTracedFormat(name, withTagger, w, TraceJSONL)
}

// Figure11 runs the routing-loop experiment.
func Figure11(withTagger bool) ExperimentResult {
	opt := workload.Options{}
	if withTagger {
		opt.Bounces = 1
	}
	return runScenario(workload.Figure11(opt))
}

// Figure12 runs the PAUSE-propagation shuffle experiment.
func Figure12(withTagger bool) ExperimentResult {
	opt := workload.Options{}
	if withTagger {
		opt.Bounces = 1
	}
	return runScenario(workload.Figure12(opt))
}

// --- §8 overhead ---------------------------------------------------------------

// OverheadResult quantifies Tagger's performance penalty on a healthy
// permutation workload — throughput and delivery latency, since the
// paper claims "no discernible impact on throughput and latency".
type OverheadResult struct {
	BaselineGbps float64
	TaggerGbps   float64
	BaselineP99  time.Duration
	TaggerP99    time.Duration
}

// PenaltyPercent returns the relative goodput loss (negative = gain).
func (o OverheadResult) PenaltyPercent() float64 {
	if o.BaselineGbps == 0 {
		return 0
	}
	return (o.BaselineGbps - o.TaggerGbps) / o.BaselineGbps * 100
}

// Overhead measures aggregate goodput and worst-flow P99 latency with
// and without Tagger rules.
func Overhead() OverheadResult {
	worstP99 := func(s *workload.Scenario) time.Duration {
		var worst time.Duration
		for _, f := range s.Flows {
			if p := f.Latency().P99; p > worst {
				worst = p
			}
		}
		return worst
	}
	base := workload.Permutation(workload.Options{})
	base.Run()
	tagged := workload.Permutation(workload.Options{Bounces: 1})
	tagged.Run()
	from, to := 5*time.Millisecond, 10*time.Millisecond
	return OverheadResult{
		BaselineGbps: base.AggregateGoodput(from, to),
		TaggerGbps:   tagged.AggregateGoodput(from, to),
		BaselineP99:  worstP99(base),
		TaggerP99:    worstP99(tagged),
	}
}

// --- §6 multi-class -------------------------------------------------------------

// MultiClassResult compares shared-tag queues against the naive
// composition.
type MultiClassResult struct {
	Classes      int
	Bounces      int
	SharedQueues int // M + N
	NaiveQueues  int // N * (M + 1)
}

// MultiClass evaluates the §6 composition on the testbed Clos.
func MultiClass(classes, bounces int) (MultiClassResult, error) {
	c := paper.Testbed()
	full := elp.KBounce(c.Graph, c.ToRs, bounces, nil)
	base, err := core.ClosSynthesize(c.Graph, full.Paths(), bounces)
	if err != nil {
		return MultiClassResult{}, err
	}
	sets := make([][]Path, classes)
	ud := elp.UpDownAll(c.Graph, c.ToRs)
	for i := range sets {
		if i == 0 {
			sets[i] = full.Paths()
		} else {
			sets[i] = ud.Paths() // later classes tolerate fewer bounces
		}
	}
	mc, err := core.MultiClassClos(base, sets, bounces)
	if err != nil {
		return MultiClassResult{}, err
	}
	return MultiClassResult{
		Classes:      classes,
		Bounces:      bounces,
		SharedQueues: mc.NumLosslessQueues(),
		NaiveQueues:  core.NaiveMultiClassQueues(classes, bounces),
	}, nil
}

// --- BCube / fat-tree scalability -------------------------------------------------

// BCubeTags synthesizes BCube(n,k) with its default-routing ELP and
// returns the lossless queue count (paper: the number of BCube levels).
func BCubeTags(n, k int) (int, error) {
	b, err := topology.NewBCube(n, k)
	if err != nil {
		return 0, err
	}
	set := elp.BCubeELP(b, nil)
	sys, err := core.Synthesize(b.Graph, set.Paths(), core.Options{})
	if err != nil {
		return 0, err
	}
	return sys.Runtime.NumSwitchTags(), nil
}

// --- Prevention vs detect-and-break recovery --------------------------------------

// RecoveryComparison quantifies the §1 argument against recovery-based
// schemes on the Figure 10 scenario.
type RecoveryComparison struct {
	// Recovery runs detect-and-break every 500 us.
	RecoveryDetections     int
	RecoveryPacketsDropped int64
	RecoveryGoodputGbps    float64
	// Tagger is the prevention alternative on identical traffic.
	TaggerGoodputGbps float64
}

// CompareRecovery runs the two deployments side by side.
func CompareRecovery() RecoveryComparison {
	var out RecoveryComparison

	rec := workload.Figure10(workload.Options{})
	stats := rec.Net.EnableRecovery(500 * time.Microsecond)
	rec.Run()
	out.RecoveryDetections = stats.Detections
	out.RecoveryPacketsDropped = stats.PacketsDropped
	out.RecoveryGoodputGbps = rec.AggregateGoodput(rec.Duration/2, rec.Duration)

	tag := workload.Figure10(workload.Options{Bounces: 1})
	tag.Run()
	out.TaggerGoodputGbps = tag.AggregateGoodput(tag.Duration/2, tag.Duration)
	return out
}

// --- DCQCN interaction (§6) ----------------------------------------------------------

// DCQCNResult compares PAUSE generation with and without congestion
// control on an incast, with and without Tagger.
type DCQCNResult struct {
	PausesWithoutCC int64
	PausesWithCC    int64
	GoodputGbps     float64 // with CC
	TaggerCleanWith bool    // Tagger + DCQCN coexist without drops
}

// DCQCNExperiment runs the incast comparison.
func DCQCNExperiment() DCQCNResult {
	run := func(cc bool) (*sim.Network, float64) {
		c := paper.Testbed()
		tb := routingComputeUD(c)
		n := sim.New(c.Graph, tb, sim.DefaultConfig())
		if cc {
			n.EnableDCQCN(sim.DefaultDCQCN())
		}
		g := c.Graph
		f1 := n.AddFlow(sim.FlowSpec{Name: "a", Src: g.MustLookup("H5"), Dst: g.MustLookup("H1")})
		f2 := n.AddFlow(sim.FlowSpec{Name: "b", Src: g.MustLookup("H9"), Dst: g.MustLookup("H1")})
		n.Run(15 * time.Millisecond)
		return n, f1.MeanGbps(8*time.Millisecond, 15*time.Millisecond) +
			f2.MeanGbps(8*time.Millisecond, 15*time.Millisecond)
	}
	var out DCQCNResult
	base, _ := run(false)
	out.PausesWithoutCC = base.PauseFrames
	withCC, goodput := run(true)
	out.PausesWithCC = withCC.PauseFrames
	out.GoodputGbps = goodput

	// Tagger + DCQCN on the Figure 10 scenario: clean.
	s := workload.Figure10(workload.Options{Bounces: 1})
	s.Net.EnableDCQCN(sim.DefaultDCQCN())
	s.Run()
	out.TaggerCleanWith = !s.Net.Deadlocked() && s.Net.Drops().Total() == 0
	return out
}

func routingComputeUD(c *topology.Clos) *routing.Tables {
	return routing.ComputeToHosts(c.Graph, routing.UpDown)
}

// --- §3.3 lossless queue budget --------------------------------------------------------

// QueueBudgetRow is one chip generation's analysis.
type QueueBudgetRow struct {
	Name          string
	BufferMB      float64
	Ports         int
	GbpsPerPort   int64
	MaxLossless   int
	PerQueueBytes int64
}

// QueueBudget reproduces the §3.3 claim that commodity ASICs support only
// a handful of lossless queues.
func QueueBudget() []QueueBudgetRow {
	specs := []struct {
		name string
		s    pfc.ChipSpec
	}{
		{"Tomahawk-40G", pfc.Tomahawk40G()},
		{"Tomahawk-100G", pfc.Tomahawk100G()},
	}
	out := make([]QueueBudgetRow, 0, len(specs))
	for _, sp := range specs {
		out = append(out, QueueBudgetRow{
			Name:          sp.name,
			BufferMB:      float64(sp.s.TotalBuffer) / (1 << 20),
			Ports:         sp.s.Ports,
			GbpsPerPort:   sp.s.LinkBitsPerSec / 1_000_000_000,
			MaxLossless:   sp.s.MaxLosslessQueues(),
			PerQueueBytes: sp.s.PerQueueReservation(),
		})
	}
	return out
}

// --- §6 isolation trade-off ------------------------------------------------------------------

// IsolationResult quantifies the reduced isolation of the shared-tag
// multi-class composition: a bounced class-1 flow lands in class 2's
// priority and takes its capacity and pauses.
type IsolationResult struct {
	VictimCleanGbps float64 // class-2 rate with the class-1 flow on a healthy route
	VictimMixedGbps float64 // class-2 rate with the class-1 flow bounced into its priority
}

// CostPercent returns the victim's relative rate loss.
func (r IsolationResult) CostPercent() float64 {
	if r.VictimCleanGbps == 0 {
		return 0
	}
	return (r.VictimCleanGbps - r.VictimMixedGbps) / r.VictimCleanGbps * 100
}

// IsolationCost runs the §6 experiment both ways.
func IsolationCost() IsolationResult {
	mixed := workload.MultiClassIsolation(true)
	mixed.Run()
	clean := workload.MultiClassIsolation(false)
	clean.Run()
	from, to := 8*time.Millisecond, 15*time.Millisecond
	return IsolationResult{
		VictimCleanGbps: clean.ByName["victim"].MeanGbps(from, to),
		VictimMixedGbps: mixed.ByName["victim"].MeanGbps(from, to),
	}
}

// --- Chaos soak: fault-tolerant deployment + continuous watchdog -------------------------

// ChaosSoakResult is one seeded soak verdict: a chaos schedule ran
// against the testbed, a continuous watchdog sampled for pause-wait
// cycles, and (with Tagger) the rules reached the fabric through an
// unreliable agent fleet consuming the same schedule's RPC faults.
type ChaosSoakResult struct {
	Seed   int64
	Faults int // schedule length
	// Deadlocked reports whether the watchdog ever observed a cycle.
	Deadlocked    bool
	FirstDeadlock []string
	Watchdog      sim.WatchdogStats
	Drops         sim.DropStats
	// Deployment outcome (withTagger only): how many controller
	// bring-up attempts the agent faults forced, the audit counters of
	// the successful one, and whether the fabric's ACTIVE rule state was
	// verified identical to the controller's bundle before the soak —
	// the "never runs a half-installed bundle" guarantee.
	DeployAttempts int
	DeployCounters map[string]int64
	FabricVerified bool
}

// Clean reports the soak invariant for a Tagger deployment: no deadlock
// and no lossless drops (reboot losses excluded by construction).
func (r ChaosSoakResult) Clean() bool {
	return !r.Deadlocked && r.Watchdog.LosslessDrops == 0
}

// ChaosSoakConfig returns the default schedule shape for the testbed:
// flaps over the Figure 3 cross-pod leaf-ToR links, reboots and agent
// faults on switches outside the CBD.
func ChaosSoakConfig() chaos.Config {
	return chaos.Config{
		Duration:      40 * time.Millisecond,
		Links:         workload.ChaosLinks(),
		Switches:      workload.ChaosSwitches(),
		LinkFlaps:     3,
		Reboots:       2,
		InstallFaults: 2,
		RPCFaults:     2,
	}
}

// ChaosSoak runs one seeded chaos schedule. With Tagger, rules are
// deployed through a chaos.Fabric loaded with the schedule's agent
// faults: installs fail transiently or land partially, the controller
// retries/verifies/rolls back, and bring-up is re-attempted until the
// fabric runs a fully verified bundle — which is then what the packet
// simulation executes. Without Tagger the identical schedule runs bare,
// reproducing the deadlock the deployment exists to prevent.
func ChaosSoak(seed int64, withTagger bool) (ChaosSoakResult, error) {
	return ChaosSoakWithTelemetry(seed, withTagger, nil)
}

// ChaosSoakWithTelemetry is ChaosSoak with operational metrics: when reg
// is non-nil the packet simulation reports its PFC pause histograms and
// deadlock gauges into it, the soak itself runs under a "soak" span, and
// the controller's deployment counters/spans are merged in after
// bring-up. A nil reg keeps the soak telemetry-free (and bit-identical
// to previous behavior, which the determinism test pins).
func ChaosSoakWithTelemetry(seed int64, withTagger bool, reg *telemetry.Registry) (ChaosSoakResult, error) {
	return chaosSoak(seed, withTagger, reg, nil)
}

// ChaosSoakTraced is ChaosSoakWithTelemetry with the packet
// simulation's event stream captured by tr (build one with NewTracer);
// the caller owns flushing the capture after the soak returns. Tracing
// implies a serial, per-seed run — the sweep fan-out stays untraced.
func ChaosSoakTraced(seed int64, withTagger bool, reg *telemetry.Registry, tr sim.Tracer) (ChaosSoakResult, error) {
	return chaosSoak(seed, withTagger, reg, tr)
}

func chaosSoak(seed int64, withTagger bool, reg *telemetry.Registry, tr sim.Tracer) (ChaosSoakResult, error) {
	defer reg.StartSpan("soak").End()
	sched := chaos.Generate(ChaosSoakConfig(), seed)
	s := workload.Chaos(workload.Options{}, sched)
	res := ChaosSoakResult{Seed: seed, Faults: len(sched.Faults)}
	if reg != nil {
		s.Net.SetTelemetry(reg)
	}
	if tr != nil {
		s.Net.SetTracer(tr)
	}

	if withTagger {
		g := s.Clos.Graph
		var names []string
		for _, sw := range g.Switches() {
			names = append(names, g.Node(sw).Name)
		}
		fab := chaos.NewFabric(names)
		fab.Load(sched)
		// Bring-up through the faulty agents: a schedule can queue more
		// consecutive failures than one push retries through, so the
		// operator story is "re-run until verified" — each attempt drains
		// the persistent faults further.
		var ctl *controller.Controller
		var err error
		for res.DeployAttempts = 1; res.DeployAttempts <= 6; res.DeployAttempts++ {
			ctl, err = controller.NewClos(s.Clos, 1, controller.WithAgent(fab))
			if err == nil {
				break
			}
		}
		if ctl != nil && reg != nil {
			reg.Merge(ctl.Telemetry().Snapshot())
		}
		if err != nil {
			return res, fmt.Errorf("tagger: chaos bring-up never converged: %w", err)
		}
		res.DeployCounters = ctl.Counters()
		// The simulation runs exactly the fabric's ACTIVE state, not the
		// controller's intent — verified identical first.
		live := fab.ActiveBundle(ctl.Bundle().MaxTag)
		res.FabricVerified = len(deploy.Diff(live, ctl.Bundle())) == 0
		if !res.FabricVerified {
			return res, fmt.Errorf("tagger: fabric active state diverges from verified bundle")
		}
		rs, err := deploy.Import(g, live)
		if err != nil {
			return res, err
		}
		s.Net.InstallTagger(rs)
	}

	wd := s.Net.StartWatchdog(500 * time.Microsecond)
	s.Run()
	res.Watchdog = *wd
	res.Deadlocked = wd.DeadlockSamples > 0
	res.FirstDeadlock = wd.FirstDeadlock
	res.Drops = s.Net.Drops()
	return res, nil
}

// ChaosSweep runs one independent chaos soak per seed, fanned across par
// workers (par <= 0 means GOMAXPROCS), and returns the verdicts in seed
// order. Each run owns its Network and — when reg is non-nil — a private
// telemetry registry, merged into reg in seed order after every run
// completes, so par=1 and par=N produce identical results and identical
// aggregate telemetry (the -race determinism gate pins this).
func ChaosSweep(seeds []int64, withTagger bool, par int, reg *telemetry.Registry) ([]ChaosSoakResult, error) {
	return sweep.RunMerged(seeds, par, reg,
		func(seed int64, runReg *telemetry.Registry) (ChaosSoakResult, error) {
			return ChaosSoakWithTelemetry(seed, withTagger, runReg)
		})
}

// --- §7 compression ablation -------------------------------------------------------------

// CompressionAblation reports entry counts at each compression level for
// the testbed's deployed rule set.
func CompressionAblation() tcam.CompressionLevels {
	c := paper.Testbed()
	rs := core.ClosRules(c.Graph, 1, 1)
	return tcam.Levels(rs.Rules())
}

// --- §6 churn survival -------------------------------------------------------

// ChurnEventResult records one churn event's end-to-end outcome: the
// rule delta the controller pushed and whether the fabric tracked intent
// through it.
type ChurnEventResult struct {
	Event string // e.g. "link-down T1-L1"
	Stats controller.DeltaStats
}

// ChurnSoakResult summarizes one seeded churn soak: a generated
// link-flap / drain / pod-add sequence driven through the incremental
// controller with per-switch delta deploys, a mid-run switch reboot
// repaired by reconciliation, and a final convergence verdict.
type ChurnSoakResult struct {
	Seed      int64
	Events    []ChurnEventResult
	PodsAdded int
	// Rebooted is the switch wiped mid-run; ReconcileFixed counts the
	// switches Reconcile() had to re-drive toward intent afterwards.
	Rebooted       string
	ReconcileFixed int
	// Converged reports whether every switch's active rules equal the
	// controller's intent bundle after the full sequence.
	Converged  bool
	FinalRules int
	// ValidationDeadlocked is set by ChurnSoakTraced: whether the
	// post-churn validation run of the converged fabric deadlocked
	// (it must not — the deployed rules exist to prevent exactly that).
	ValidationDeadlocked bool
}

// RulesMoved totals the rule-level churn across every delta push.
func (r ChurnSoakResult) RulesMoved() (added, removed, modified int) {
	for _, ev := range r.Events {
		added += ev.Stats.RulesAdded
		removed += ev.Stats.RulesRemoved
		modified += ev.Stats.RulesModified
	}
	return
}

// churnSwitchLinks collects switch-to-switch links as name pairs for the
// churn generator; host attachment links never carry ELP paths.
func churnSwitchLinks(g *topology.Graph) [][2]string {
	var out [][2]string
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		if g.Node(l.A).Kind.IsSwitch() && g.Node(l.B).Kind.IsSwitch() {
			out = append(out, [2]string{g.Node(l.A).Name, g.Node(l.B).Name})
		}
	}
	return out
}

// ChurnSoak drives one seeded churn sequence over the paper testbed
// through the incremental pipeline: tracker -> Resynth -> per-switch
// two-phase delta deploys. Halfway through it reboots a spine (wiping
// its rules behind the controller's back) and lets Reconcile repair it.
// The sequence must end converged: fabric active state == intent bundle
// on every switch.
func ChurnSoak(seed int64, events int) (ChurnSoakResult, error) {
	res, _, err := churnSoak(seed, events)
	return res, err
}

// churnState is what a finished churn soak leaves behind for the traced
// validation run: the (possibly expanded) topology, the fabric's agent
// state and the controller holding the intent bundle.
type churnState struct {
	clos *topology.Clos
	fab  *chaos.Fabric
	ctl  *controller.Controller
}

// ChurnSoakTraced runs ChurnSoak and then validates the converged
// fabric in the packet simulator under an event trace: the fabric's
// ACTIVE bundle (not the controller's intent) is imported, routes are
// recomputed over the post-churn topology, cross-pod flows run for a
// few milliseconds and every pause/resume/demotion lands in tr. The
// churn pipeline itself is controller-only; this is what makes
// `taggersim -exp churn -trace` produce an analyzable capture.
func ChurnSoakTraced(seed int64, events int, tr sim.Tracer) (ChurnSoakResult, error) {
	res, st, err := churnSoak(seed, events)
	if err != nil {
		return res, err
	}
	g := st.clos.Graph
	live := st.fab.ActiveBundle(st.ctl.Bundle().MaxTag)
	rs, err := deploy.Import(g, live)
	if err != nil {
		return res, err
	}
	n := sim.New(g, routing.ComputeToHosts(g, routing.UpDown), sim.DefaultConfig())
	n.InstallTagger(rs)
	n.SetTracer(tr)
	n.AddFlow(sim.FlowSpec{Name: "v1", Src: g.MustLookup("H5"), Dst: g.MustLookup("H1")})
	n.AddFlow(sim.FlowSpec{Name: "v2", Src: g.MustLookup("H9"), Dst: g.MustLookup("H1")})
	n.Run(5 * time.Millisecond)
	res.ValidationDeadlocked = n.Deadlocked()
	return res, nil
}

func churnSoak(seed int64, events int) (ChurnSoakResult, *churnState, error) {
	res := ChurnSoakResult{Seed: seed}
	c := paper.Testbed()
	g := c.Graph
	names := func() []string {
		var out []string
		for _, sw := range g.Switches() {
			out = append(out, g.Node(sw).Name)
		}
		return out
	}
	fab := chaos.NewFabric(names())
	ctl, err := controller.NewChurn(g,
		controller.KBouncePolicy(func() []topology.NodeID { return c.ToRs }, 1),
		controller.WithAgent(fab),
		controller.WithDeployConfig(controller.DeployConfig{
			MaxAttempts: 5,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			JitterSeed:  seed,
		}))
	if err != nil {
		return res, nil, err
	}

	seq := chaos.GenerateChurn(chaos.ChurnConfig{
		Links:    churnSwitchLinks(g),
		Switches: names(),
		Events:   events,
		PodAdds:  1,
	}, seed)

	for i, ev := range seq {
		var cev controller.Event
		switch ev.Kind {
		case chaos.ChurnLinkDown:
			cev = controller.Event{Kind: controller.EventLinkDown,
				A: g.MustLookup(ev.A), B: g.MustLookup(ev.B)}
		case chaos.ChurnLinkUp:
			cev = controller.Event{Kind: controller.EventLinkUp,
				A: g.MustLookup(ev.A), B: g.MustLookup(ev.B)}
		case chaos.ChurnDrain:
			cev = controller.Event{Kind: controller.EventSwitchDrain,
				A: g.MustLookup(ev.Switch)}
		case chaos.ChurnUndrain:
			cev = controller.Event{Kind: controller.EventSwitchUndrain,
				A: g.MustLookup(ev.Switch)}
		case chaos.ChurnPodAdd:
			if err := c.Expand(1); err != nil {
				return res, nil, fmt.Errorf("tagger: churn event %d: %w", i, err)
			}
			fab.Add(names()...)
			res.PodsAdded++
			cev = controller.Event{Kind: controller.EventExpansion}
		default:
			return res, nil, fmt.Errorf("tagger: unknown churn kind %v", ev.Kind)
		}
		if err := ctl.HandleChurn(cev); err != nil {
			return res, nil, fmt.Errorf("tagger: churn event %d (%s): %w", i, ev, err)
		}
		log := ctl.DeltaLog()
		res.Events = append(res.Events, ChurnEventResult{
			Event: ev.String(),
			Stats: log[len(log)-1],
		})

		// Midway, a switch loses its rules to a reboot; the periodic
		// reconciliation sweep must notice and re-drive it to intent.
		if i == len(seq)/2 {
			res.Rebooted = "S1"
			fab.Reboot(res.Rebooted)
			fixed, err := ctl.Reconcile()
			if err != nil {
				return res, nil, fmt.Errorf("tagger: reconcile after reboot: %w", err)
			}
			res.ReconcileFixed = fixed
		}
	}

	intent := ctl.Bundle()
	res.Converged = len(deploy.Diff(fab.ActiveBundle(intent.MaxTag), intent)) == 0
	for _, sb := range intent.Switches {
		res.FinalRules += len(sb.Rules)
	}
	return res, &churnState{clos: c, fab: fab, ctl: ctl}, nil
}
