GO ?= go
BENCHTIME ?= 1x
# Benchmarks run -count $(BENCHCOUNT) and benchdiff -record keeps the
# fastest run per name (min-of-N): scheduler and GC noise only ever adds
# time, so single-sample snapshots systematically overstate cost and make
# the 15% regression gate flappy.
BENCHCOUNT ?= 3
BENCH_OUT ?= BENCH_$(shell date +%F).json
# Opt-in perf gate: make check BENCH_BASELINE=BENCH_seed.json reruns the
# benchmarks and fails on a >15% time regression against that snapshot.
BENCH_BASELINE ?=

.PHONY: all check build vet test determinism race detect-smoke bench bench-sim benchdiff benchgate telemetry-overhead trace-golden postmortem-golden fuzz fuzz-smoke churn-fuzz cache-fuzz cover examples experiments clean

all: check

# check is the pre-merge gate: build, vet, tests, the parallel-determinism
# contract under the race detector, the full race suite, the
# detect-vs-prevent matrix smoke, the bounded differential fuzz smoke,
# the trace-format and post-mortem goldens, the telemetry overhead gate,
# and (opt-in via BENCH_BASELINE) the benchmark regression gate.
check: build vet test determinism race detect-smoke fuzz-smoke churn-fuzz cache-fuzz trace-golden postmortem-golden telemetry-overhead benchgate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The par=1 vs par=N equivalence proofs, under the race detector: the
# parallel synthesis path must emit byte-identical rules and graphs, and
# the sweep runner's verdicts and merged telemetry must be independent of
# the worker count.
determinism:
	$(GO) test -race -run 'TestParallelDeterminism|TestChaosSweepParDeterminism|TestDetectMatrixParDeterminism' .

race:
	$(GO) test -race ./...

# The detect-vs-prevent matrix smoke under the race detector: the
# four-arm invariants (tagger prevents + detector stays quiet, detect
# and scan arms recover within bound, the control starves) on a small
# seed set. Part of `make check`.
detect-smoke:
	$(GO) test -race -count=1 -run 'TestDetectMatrixSmoke' .

# Runs every benchmark and records the results as a JSON snapshot
# (BENCH_<date>.json) for the repo's performance trajectory. Override
# BENCHTIME for stabler numbers: make bench BENCHTIME=5x
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./... | tee /tmp/bench_run.txt
	$(GO) run ./cmd/benchdiff -record $(BENCH_OUT) /tmp/bench_run.txt

# The event-engine microbenchmarks alone: heap schedule/dispatch,
# steady-state forwarding (allocs/op must read 0 — gated by
# TestSteadyStateZeroAlloc and the benchgate's -alloc-threshold), and the
# large-Clos soak slice the sweep runner fans out over.
bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkEventScheduleDispatch|BenchmarkSteadyStateForwarding|BenchmarkLargeClosSoak' -benchmem -benchtime $(BENCHTIME) ./internal/sim/

# Compares two snapshots; fails on a >15% time regression.
# Usage: make benchdiff OLD=BENCH_seed.json NEW=BENCH_2026-08-05.json
benchdiff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

benchgate:
ifeq ($(strip $(BENCH_BASELINE)),)
	@echo "benchgate: skipped (set BENCH_BASELINE=BENCH_seed.json to enable)"
else
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./... > /tmp/benchgate_run.txt
	$(GO) run ./cmd/benchdiff -record /tmp/benchgate_run.json /tmp/benchgate_run.txt
	$(GO) run ./cmd/benchdiff -alloc-threshold 0.50 $(BENCH_BASELINE) /tmp/benchgate_run.json
endif

# Telemetry must be near-free for hot synthesis code: the instrumented
# Algorithm 2 benchmark (spans + merge counters live, the default) must
# stay within 5% of a TAGGER_TELEMETRY=off run of the same build.
# -count 5 + benchdiff's fastest-run dedupe keeps scheduler noise from
# tripping the tight threshold.
telemetry-overhead:
	TAGGER_TELEMETRY=off $(GO) test -run '^$$' -bench 'BenchmarkAlgorithm2Jellyfish200$$' -benchtime 100x -count 5 . > /tmp/telemetry_off.txt
	$(GO) test -run '^$$' -bench 'BenchmarkAlgorithm2Jellyfish200$$' -benchtime 100x -count 5 . > /tmp/telemetry_on.txt
	$(GO) run ./cmd/benchdiff -record /tmp/telemetry_off.json /tmp/telemetry_off.txt
	$(GO) run ./cmd/benchdiff -record /tmp/telemetry_on.json /tmp/telemetry_on.txt
	$(GO) run ./cmd/benchdiff -threshold 0.05 /tmp/telemetry_off.json /tmp/telemetry_on.json

# Verifies the taggertrace golden fixtures: the checked-in fig10 trace
# captures (JSONL + binary) must render byte-identical reports, and the
# `-o jsonl` downgrade of the binary capture must be byte-identical to
# the JSONL capture. After an INTENTIONAL trace-format or report change,
# regenerate with `make trace-golden UPDATE=1` and review the diff (the
# binary header/entry layout is versioned — bump trace.Version when the
# wire layout itself changes).
trace-golden:
ifeq ($(strip $(UPDATE)),)
	$(GO) test -count=1 -run 'TestGolden' ./cmd/taggertrace/
else
	$(GO) test -count=1 -run 'TestGolden' ./cmd/taggertrace/ -update
endif

# Verifies the flight-recorder forensics goldens: the checked-in seeded
# incident capture (the detect arm's Fig 3 CBD onset) must render a
# byte-identical post-mortem report, a fresh capture of the same seed
# must be byte-identical to the checked-in one, and the recorder's
# steady-state record path must stay allocation-free. After an
# INTENTIONAL snapshot-encoding or report-layout change, regenerate with
# `make postmortem-golden UPDATE=1` and review the diff.
postmortem-golden:
ifeq ($(strip $(UPDATE)),)
	$(GO) test -count=1 -run 'TestGoldenPostmortem' ./cmd/taggertrace/
else
	$(GO) test -count=1 -run 'TestGoldenPostmortem' ./cmd/taggertrace/ -update
endif
	$(GO) test -count=1 -run 'ZeroAlloc' ./internal/trace/ ./internal/sim/

fuzz:
	$(GO) test -fuzz FuzzDecodeRoCEv2 -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzDecodeIPv4 -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzDecodePFC -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzRunCase -fuzztime 60s ./internal/check/
	$(GO) test -fuzz FuzzShrinkConvergence -fuzztime 30s ./internal/check/
	$(GO) test -fuzz FuzzTraceDecode -fuzztime 30s ./internal/trace/

# Bounded differential fuzzing for the pre-merge gate: a few seconds of
# native coverage-guided fuzzing over the check battery plus a seeded
# taggerfuzz sweep of every topology family. Failing inputs shrink to
# runnable repro tests under internal/check/testdata/fuzz-corpus/.
fuzz-smoke:
	$(GO) test -fuzz FuzzRunCase -fuzztime 5s ./internal/check/
	$(GO) run ./cmd/taggerfuzz -seeds 25 -topo all -q

# The churn differential: fuzzed link-flap/drain/pod-add sequences where
# every step's incremental re-synthesis must match from-scratch synthesis
# rule-for-rule and re-pass the Theorem 5.1 oracle. Failures shrink to
# minimal event sequences.
churn-fuzz:
	$(GO) run ./cmd/taggerfuzz -churn -seeds 25 -q

# The synthesis-cache differential: every seed's synthesis served through
# one shared fingerprint-keyed cache (cold build, same-instance rehit,
# isomorphic twin instance) must be rule-for-rule identical to
# from-scratch synthesis and re-pass the oracle. Runs under the race
# detector: parallel seeds against the shared cache exercise the
# single-flight and LRU-eviction machinery concurrently.
cache-fuzz:
	$(GO) run -race ./cmd/taggerfuzz -cache -seeds 25 -q
	$(GO) test -race -count=1 -run 'TestCacheSweepShared' ./internal/check/

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clos-deadlock
	$(GO) run ./examples/jellyfish-scale
	$(GO) run ./examples/bcube
	$(GO) run ./examples/controller-ops

experiments:
	$(GO) run ./cmd/taggergen -topo fig5 -rules
	$(GO) run ./cmd/taggersim -exp fig10
	$(GO) run ./cmd/taggersim -exp fig11
	$(GO) run ./cmd/taggersim -exp fig12
	$(GO) run ./cmd/taggersim -exp reconverge
	$(GO) run ./cmd/taggersim -exp table1
	$(GO) run ./cmd/taggersim -exp overhead
	$(GO) run ./cmd/taggersim -exp recovery
	$(GO) run ./cmd/taggersim -exp dcqcn
	$(GO) run ./cmd/taggersim -exp isolation
	$(GO) run ./cmd/taggersim -exp budget
	$(GO) run ./cmd/taggersim -exp compression
	$(GO) run ./cmd/taggersim -exp multiclass
	$(GO) run ./cmd/taggersim -exp chaos
	$(GO) run ./cmd/taggersim -exp churn
	$(GO) run ./cmd/taggersim -exp detect -runs 20
	$(GO) run ./cmd/taggerscale
	$(GO) run ./cmd/taggerscale -bcube

clean:
	$(GO) clean -testcache
