GO ?= go

.PHONY: all check build vet test race bench fuzz cover examples experiments clean

all: check

# check is the pre-merge gate: build, vet, tests, and the race detector.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerates every table and figure of the paper (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz FuzzDecodeRoCEv2 -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzDecodeIPv4 -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzDecodePFC -fuzztime 30s ./internal/wire/

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clos-deadlock
	$(GO) run ./examples/jellyfish-scale
	$(GO) run ./examples/bcube
	$(GO) run ./examples/controller-ops

experiments:
	$(GO) run ./cmd/taggergen -topo fig5 -rules
	$(GO) run ./cmd/taggersim -exp fig10
	$(GO) run ./cmd/taggersim -exp fig11
	$(GO) run ./cmd/taggersim -exp fig12
	$(GO) run ./cmd/taggersim -exp reconverge
	$(GO) run ./cmd/taggersim -exp table1
	$(GO) run ./cmd/taggersim -exp overhead
	$(GO) run ./cmd/taggersim -exp recovery
	$(GO) run ./cmd/taggersim -exp dcqcn
	$(GO) run ./cmd/taggersim -exp isolation
	$(GO) run ./cmd/taggersim -exp budget
	$(GO) run ./cmd/taggersim -exp compression
	$(GO) run ./cmd/taggersim -exp multiclass
	$(GO) run ./cmd/taggersim -exp chaos
	$(GO) run ./cmd/taggerscale
	$(GO) run ./cmd/taggerscale -bcube

clean:
	$(GO) clean -testcache
