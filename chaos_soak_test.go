package tagger

import (
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// TestChaosSoak is the headline robustness claim: across seeded fault
// schedules (link flaps, switch reboots, faulty switch agents), a
// Tagger deployment pushed through the unreliable agents keeps the
// fabric deadlock-free with zero lossless drops, while the identical
// schedules without Tagger deadlock.
func TestChaosSoak(t *testing.T) {
	seeds := []int64{1, 2, 3}
	baselineDeadlocks := 0
	for _, seed := range seeds {
		with, err := ChaosSoak(seed, true)
		if err != nil {
			t.Fatalf("seed %d with Tagger: %v", seed, err)
		}
		if !with.FabricVerified {
			t.Errorf("seed %d: fabric ran an unverified bundle", seed)
		}
		if !with.Clean() {
			t.Errorf("seed %d with Tagger: deadlocked=%v losslessDrops=%d (first cycle: %v)",
				seed, with.Deadlocked, with.Watchdog.LosslessDrops, with.FirstDeadlock)
		}
		if with.Drops.HeadroomViolation != 0 {
			t.Errorf("seed %d with Tagger: %d headroom violations", seed, with.Drops.HeadroomViolation)
		}
		if with.Watchdog.Samples == 0 {
			t.Errorf("seed %d: watchdog never sampled", seed)
		}

		without, err := ChaosSoak(seed, false)
		if err != nil {
			t.Fatalf("seed %d without Tagger: %v", seed, err)
		}
		if without.Deadlocked {
			baselineDeadlocks++
		}
	}
	if baselineDeadlocks == 0 {
		t.Error("no schedule deadlocked the no-Tagger baseline; the soak proves nothing")
	}
}

// TestChaosSoakDeterministic: same seed, same verdict — bit-identical
// result structures across runs, both with and without Tagger.
func TestChaosSoakDeterministic(t *testing.T) {
	for _, withTagger := range []bool{false, true} {
		a, err := ChaosSoak(2, withTagger)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ChaosSoak(2, withTagger)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("withTagger=%v: identical seeds produced different results:\n%+v\n%+v",
				withTagger, a, b)
		}
	}
}

// TestChaosSoakCountsRebootLossesSeparately: reboot-induced losses land
// in their own counter and never in the lossless-drop invariant.
func TestChaosSoakCountsRebootLossesSeparately(t *testing.T) {
	// Seed 2's schedule includes reboots that catch queued traffic.
	r, err := ChaosSoak(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Drops.SwitchReboot == 0 {
		t.Skip("schedule produced no reboot losses on this testbed")
	}
	if r.Watchdog.RebootDrops != r.Drops.SwitchReboot {
		t.Errorf("watchdog saw %d reboot drops, sim counted %d",
			r.Watchdog.RebootDrops, r.Drops.SwitchReboot)
	}
	if !r.Clean() {
		t.Error("reboot losses tripped the lossless-drop invariant")
	}
}

// TestChaosSoakTelemetry: a soak run with a registry attached reports
// the simulator's PFC histograms, the merged deployment counters, and a
// "soak" span — the wiring the taggersim ops endpoint serves.
func TestChaosSoakTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, err := ChaosSoakWithTelemetry(1, true, reg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	counters := map[string]int64{}
	for _, cs := range snap.Counters {
		counters[cs.Name] += cs.Value
	}
	if counters["deploy.pushes"] == 0 {
		t.Error("controller deploy counters not merged into registry")
	}
	if got := counters["deploy.pushes"]; got != r.DeployCounters["deploy.pushes"] {
		t.Errorf("merged deploy.pushes = %d, result carries %d", got, r.DeployCounters["deploy.pushes"])
	}
	var sawPause, sawSoak bool
	for _, hs := range snap.Hists {
		if hs.Name == "sim_pause_duration_seconds" && hs.Count > 0 {
			sawPause = true
		}
		if hs.Name == "span_duration_seconds" {
			for _, l := range hs.Labels {
				if l.K == "span" && l.V == "soak" {
					sawSoak = true
				}
			}
		}
	}
	if !sawPause {
		t.Error("no pause-duration observations from the soak")
	}
	if !sawSoak {
		t.Error("no soak span recorded")
	}
}
