package tagger

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// TestDetectMatrixSmoke is the CI gate (`make detect-smoke`): a small
// four-arm matrix whose invariants are the experiment's whole point —
// the Tagger arm prevents (zero deadlocks, and its ride-along detector
// with mitigation off never fires: the false-positive oracle), the
// detect arm recovers every deadlock it sees within a bounded
// time-to-recover, the scan arm also recovers (slower cadence), and
// the unprotected control deadlocks on every seed and never recovers.
func TestDetectMatrixSmoke(t *testing.T) {
	seeds := sweep.Seeds(1, 6)
	matrix, err := DetectMatrix(seeds, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sums := SummarizeDetectMatrix(matrix)
	if len(sums) != 4 {
		t.Fatalf("got %d arm summaries, want 4", len(sums))
	}
	for _, s := range sums {
		if s.Seeds != len(seeds) {
			t.Errorf("%s: %d seeds, want %d", s.Arm, s.Seeds, len(seeds))
		}
		if s.LosslessDrops != 0 {
			t.Errorf("%s: %d lossless-invariant violations", s.Arm, s.LosslessDrops)
		}
		switch s.Arm {
		case ArmTagger:
			if s.DeadlockSeeds != 0 {
				t.Errorf("tagger arm deadlocked on %d seeds", s.DeadlockSeeds)
			}
			if s.Detections != 0 || s.FalsePositives != 0 {
				t.Errorf("detector fired on the protected topology: %d detections, %d FPs",
					s.Detections, s.FalsePositives)
			}
			if s.SacrificedPackets != 0 {
				t.Errorf("tagger arm sacrificed %d packets with nothing to mitigate", s.SacrificedPackets)
			}
		case ArmDetect:
			if s.DeadlockSeeds != len(seeds) {
				t.Errorf("detect arm saw deadlock on %d/%d seeds; scenario drifted", s.DeadlockSeeds, len(seeds))
			}
			if s.UnrecoveredSeeds != 0 {
				t.Errorf("detect arm never cleared a deadlock on %d seeds", s.UnrecoveredSeeds)
			}
			if s.Detections == 0 {
				t.Error("detect arm recovered without detections")
			}
			if s.MeanTTD <= 0 || s.MeanTTD > 2*time.Millisecond {
				t.Errorf("mean time-to-detect = %v, want (0, 2ms]", s.MeanTTD)
			}
			if s.MeanTTR <= 0 || s.MeanTTR > 5*time.Millisecond {
				t.Errorf("mean time-to-recover = %v, want (0, 5ms]", s.MeanTTR)
			}
		case ArmScan:
			if s.UnrecoveredSeeds != 0 {
				t.Errorf("scan arm never cleared a deadlock on %d seeds", s.UnrecoveredSeeds)
			}
			if s.SacrificedPackets == 0 {
				t.Error("scan arm recovered without flushing anything")
			}
		case ArmNone:
			if s.DeadlockSeeds != len(seeds) {
				t.Errorf("control deadlocked on only %d/%d seeds; the comparison needs a control that starves",
					s.DeadlockSeeds, len(seeds))
			}
			if s.RecoveredSeeds != 0 {
				t.Errorf("control recovered on %d seeds with no protection installed", s.RecoveredSeeds)
			}
		}
	}
	// The headline ordering: prevention beats both reactive arms on
	// goodput, and every protected arm beats nothing wouldn't hold (the
	// reactive arms pay for recovery in sacrificed packets), so pin only
	// the prevention win.
	byArm := map[DetectArm]DetectArmSummary{}
	for _, s := range sums {
		byArm[s.Arm] = s
	}
	if tg, dt := byArm[ArmTagger], byArm[ArmDetect]; tg.MeanGoodputGbps <= dt.MeanGoodputGbps {
		t.Errorf("tagger goodput %.1f <= detect goodput %.1f; prevention lost its headline",
			tg.MeanGoodputGbps, dt.MeanGoodputGbps)
	}
	if table := DetectMatrixTable(sums); table == "" {
		t.Error("empty matrix table")
	}
}

// TestDetectMatrixParDeterminism is the matrix's par-independence
// contract, run under -race by `make determinism`: fanning the seeded
// runs across workers changes wall-clock only — per-cell results and
// the merged telemetry are identical to the serial sweep.
func TestDetectMatrixParDeterminism(t *testing.T) {
	seeds := sweep.Seeds(1, 3)
	serialReg := telemetry.NewRegistry()
	serial, err := DetectMatrix(seeds, 1, serialReg)
	if err != nil {
		t.Fatal(err)
	}
	parReg := telemetry.NewRegistry()
	par, err := DetectMatrix(seeds, 4, parReg)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range DetectArms() {
		if !reflect.DeepEqual(serial[arm], par[arm]) {
			t.Errorf("arm %s: par=4 results diverge from par=1:\n%+v\n%+v",
				arm, serial[arm], par[arm])
		}
	}
	sa, sb := serialReg.Snapshot(), parReg.Snapshot()
	if ca, cb := dropSpanCounters(sa.Counters), dropSpanCounters(sb.Counters); !reflect.DeepEqual(ca, cb) {
		t.Errorf("merged counters diverge between par=1 and par=4:\n%+v\n%+v", ca, cb)
	}
}
