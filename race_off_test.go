//go:build !race

package tagger

const raceEnabled = false
