package tagger

// One benchmark per table and figure of the paper's evaluation. Each
// bench both times the artifact's regeneration and reports the headline
// quantity as a custom metric, so `go test -bench=. -benchmem` doubles as
// the reproduction harness (see EXPERIMENTS.md for paper-vs-measured).

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cbd"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/synthcache"
	"repro/internal/tcam"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// --- Table 1: reroute probability -------------------------------------------

func BenchmarkTable1RerouteMeasurement(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		res := Table1(1, 200_000)
		p = res.OverallProbability()
	}
	b.ReportMetric(p, "reroute-prob")
}

// --- Tables 3/4 + Figure 5: the walk-through ---------------------------------

func BenchmarkTable3BruteForceRules(b *testing.B) {
	f := paper.NewFig5()
	var rules int
	for i := 0; i < b.N; i++ {
		sys, err := core.Synthesize(f.Graph, f.ELP.Paths(), core.Options{SkipMerge: true})
		if err != nil {
			b.Fatal(err)
		}
		rules = sys.Rules.Len()
	}
	b.ReportMetric(float64(rules), "rules")
}

func BenchmarkTable4GreedyRules(b *testing.B) {
	f := paper.NewFig5()
	var rules, tags int
	for i := 0; i < b.N; i++ {
		sys, err := core.Synthesize(f.Graph, f.ELP.Paths(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rules = sys.Rules.Len()
		tags = sys.Runtime.NumSwitchTags()
	}
	b.ReportMetric(float64(rules), "rules")
	b.ReportMetric(float64(tags), "tags")
}

func BenchmarkFigure5Algorithm1(b *testing.B) {
	f := paper.NewFig5()
	var tags int
	for i := 0; i < b.N; i++ {
		bf := core.BruteForce(f.Graph, f.ELP.Paths())
		tags = bf.NumSwitchTags()
	}
	b.ReportMetric(float64(tags), "tags")
}

func BenchmarkFigure5Algorithm2(b *testing.B) {
	f := paper.NewFig5()
	bf := core.BruteForce(f.Graph, f.ELP.Paths())
	var tags int
	for i := 0; i < b.N; i++ {
		merged := core.GreedyMinimize(bf)
		tags = merged.NumSwitchTags()
	}
	b.ReportMetric(float64(tags), "tags")
}

// --- Table 5: Jellyfish scalability -------------------------------------------

func benchTable5(b *testing.B, switches, ports, extra int) {
	b.Helper()
	var row Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = Table5Case(switches, ports, extra, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.Priorities), "priorities")
	b.ReportMetric(float64(row.Rules), "max-rules")
	b.ReportMetric(float64(row.LongestLossless), "longest")
}

func BenchmarkTable5Jellyfish50(b *testing.B)  { benchTable5(b, 50, 12, 0) }
func BenchmarkTable5Jellyfish100(b *testing.B) { benchTable5(b, 100, 16, 0) }
func BenchmarkTable5Jellyfish200(b *testing.B) { benchTable5(b, 200, 24, 0) }
func BenchmarkTable5JellyfishRandomPaths(b *testing.B) {
	benchTable5(b, 100, 16, 10000)
}

// --- Figure 1 / Figure 3: CBD detection ----------------------------------------

func BenchmarkFigure3CBDDetect(b *testing.B) {
	c := paper.Testbed()
	paths := []routing.Path{paper.Fig3GreenPath(c), paper.Fig3BluePath(c)}
	var cyc int
	for i := 0; i < b.N; i++ {
		d := cbd.FromPaths(c.Graph, paths, cbd.SinglePriority(1))
		cyc = len(d.FindCycle())
	}
	b.ReportMetric(float64(cyc), "cycle-len")
}

func BenchmarkFigure3CBDUnderTagger(b *testing.B) {
	c := paper.Testbed()
	rs := core.ClosRules(c.Graph, 1, 1)
	paths := []routing.Path{paper.Fig3GreenPath(c), paper.Fig3BluePath(c)}
	classify := func(p routing.Path) []int { return rs.Priorities(p, 1) }
	var cyc int
	for i := 0; i < b.N; i++ {
		d := cbd.FromPaths(c.Graph, paths, classify)
		cyc = len(d.FindCycle())
	}
	b.ReportMetric(float64(cyc), "cycle-len") // 0: Tagger breaks the CBD
}

// --- Figure 4 / Figure 6: Clos tagging -----------------------------------------

func BenchmarkFigure4ClosSynthesis(b *testing.B) {
	c := paper.Testbed()
	set := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	var queues int
	for i := 0; i < b.N; i++ {
		sys, err := core.ClosSynthesize(c.Graph, set.Paths(), 1)
		if err != nil {
			b.Fatal(err)
		}
		queues = sys.NumLosslessQueues()
	}
	b.ReportMetric(float64(queues), "queues")
}

func BenchmarkFigure6GreedyVsOptimal(b *testing.B) {
	var res Figure6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Figure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.GreedyQueues), "greedy-queues")
	b.ReportMetric(float64(res.OptimalQueues), "optimal-queues")
}

// --- Figures 10-12: simulator experiments ---------------------------------------

func benchFigure(b *testing.B, run func(bool) ExperimentResult, withTagger bool) {
	b.Helper()
	var res ExperimentResult
	for i := 0; i < b.N; i++ {
		res = run(withTagger)
	}
	dl := 0.0
	if res.Deadlocked {
		dl = 1
	}
	var late float64
	for _, f := range res.Flows {
		late += f.LateGbps
	}
	b.ReportMetric(dl, "deadlocked")
	b.ReportMetric(late, "late-gbps")
}

func BenchmarkFigure10Baseline(b *testing.B)   { benchFigure(b, Figure10, false) }
func BenchmarkFigure10WithTagger(b *testing.B) { benchFigure(b, Figure10, true) }
func BenchmarkFigure11Baseline(b *testing.B)   { benchFigure(b, Figure11, false) }
func BenchmarkFigure11WithTagger(b *testing.B) { benchFigure(b, Figure11, true) }
func BenchmarkFigure12Baseline(b *testing.B)   { benchFigure(b, Figure12, false) }
func BenchmarkFigure12WithTagger(b *testing.B) { benchFigure(b, Figure12, true) }

// --- §8 overhead -------------------------------------------------------------------

func BenchmarkTaggerOverhead(b *testing.B) {
	var res OverheadResult
	for i := 0; i < b.N; i++ {
		res = Overhead()
	}
	b.ReportMetric(res.PenaltyPercent(), "penalty-%")
	b.ReportMetric(res.BaselineGbps, "baseline-gbps")
}

// --- §5.3 Algorithm 2 runtime scaling (S1) -------------------------------------------

func benchAlg2(b *testing.B, switches, ports int) {
	b.Helper()
	j, err := NewJellyfish(JellyfishConfig{Switches: switches, Ports: ports, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	set := elp.ShortestAll(j.Graph, j.Switches)
	bf := core.BruteForce(j.Graph, set.Paths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GreedyMinimize(bf)
	}
}

func BenchmarkAlgorithm2Jellyfish50(b *testing.B)  { benchAlg2(b, 50, 12) }
func BenchmarkAlgorithm2Jellyfish100(b *testing.B) { benchAlg2(b, 100, 16) }
func BenchmarkAlgorithm2Jellyfish200(b *testing.B) { benchAlg2(b, 200, 24) }

// --- §6 multi-class (S2) ---------------------------------------------------------------

func BenchmarkMultiClassComposition(b *testing.B) {
	var res MultiClassResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = MultiClass(2, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.SharedQueues), "shared-queues")
	b.ReportMetric(float64(res.NaiveQueues), "naive-queues")
}

// --- §7 rule compression (S3) -------------------------------------------------------------

func BenchmarkRuleCompression(b *testing.B) {
	c := paper.Testbed()
	rs := core.ClosRules(c.Graph, 1, 1)
	rules := rs.Rules()
	var entries int
	for i := 0; i < b.N; i++ {
		entries = len(CompressRules(rules))
	}
	b.ReportMetric(float64(len(rules)), "exact-rules")
	b.ReportMetric(float64(entries), "tcam-entries")
}

// --- BCube (§5.3) ------------------------------------------------------------------------

func BenchmarkBCubeSynthesis(b *testing.B) {
	var tags int
	for i := 0; i < b.N; i++ {
		var err error
		tags, err = BCubeTags(4, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tags), "tags")
}

// --- Prevention vs detect-and-break recovery (related-work baseline) -----------------------

func BenchmarkRecoveryVsTagger(b *testing.B) {
	var res RecoveryComparison
	for i := 0; i < b.N; i++ {
		res = CompareRecovery()
	}
	b.ReportMetric(float64(res.RecoveryDetections), "reformations")
	b.ReportMetric(res.RecoveryGoodputGbps, "recovery-gbps")
	b.ReportMetric(res.TaggerGoodputGbps, "tagger-gbps")
}

// --- DCQCN interaction (§6) -------------------------------------------------------------

func BenchmarkDCQCNInteraction(b *testing.B) {
	var res DCQCNResult
	for i := 0; i < b.N; i++ {
		res = DCQCNExperiment()
	}
	b.ReportMetric(float64(res.PausesWithoutCC), "pauses-no-cc")
	b.ReportMetric(float64(res.PausesWithCC), "pauses-cc")
}

// --- §3.3 queue budget --------------------------------------------------------------------

func BenchmarkQueueBudget(b *testing.B) {
	var rows []QueueBudgetRow
	for i := 0; i < b.N; i++ {
		rows = QueueBudget()
	}
	b.ReportMetric(float64(rows[0].MaxLossless), "queues-40g")
	b.ReportMetric(float64(rows[1].MaxLossless), "queues-100g")
}

// --- §7 compression levels -------------------------------------------------------------------

func BenchmarkCompressionLevels(b *testing.B) {
	var lv tcam.CompressionLevels
	for i := 0; i < b.N; i++ {
		lv = CompressionAblation()
	}
	b.ReportMetric(float64(lv.Exact), "exact")
	b.ReportMetric(float64(lv.InPortOnly), "inport-only")
	b.ReportMetric(float64(lv.Joint), "joint")
}

// --- §6 isolation trade-off ----------------------------------------------------------------

func BenchmarkIsolationCost(b *testing.B) {
	var res IsolationResult
	for i := 0; i < b.N; i++ {
		res = IsolationCost()
	}
	b.ReportMetric(res.VictimCleanGbps, "victim-clean-gbps")
	b.ReportMetric(res.VictimMixedGbps, "victim-mixed-gbps")
}

// --- Organic failure reconvergence (§3 end to end) --------------------------------------------

func BenchmarkReconvergenceBaseline(b *testing.B) {
	var res ExperimentResult
	for i := 0; i < b.N; i++ {
		res = Reconvergence(false, 8)
	}
	dl := 0.0
	if res.Deadlocked {
		dl = 1
	}
	b.ReportMetric(dl, "deadlocked")
}

func BenchmarkReconvergenceWithTagger(b *testing.B) {
	var res ExperimentResult
	for i := 0; i < b.N; i++ {
		res = Reconvergence(true, 8)
	}
	dl := 0.0
	if res.Deadlocked {
		dl = 1
	}
	var late float64
	for _, f := range res.Flows {
		late += f.LateGbps
	}
	b.ReportMetric(dl, "deadlocked")
	b.ReportMetric(late, "late-gbps")
}

// --- Frame-level dataplane -------------------------------------------------------------------

func BenchmarkDataplaneFrameForward(b *testing.B) {
	c := paper.Testbed()
	rs := core.ClosRules(c.Graph, 1, 1)
	fab := dataplane.Compile(c.Graph, rs)
	green := paper.Fig3GreenPath(c)
	pkt := &wire.RoCEv2Packet{
		IP:  wire.IPv4{DSCP: 1, TTL: 64},
		BTH: wire.BTH{Opcode: wire.OpcodeRCWriteOnly},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Encode + full 6-hop pipeline walk: the cost a software
		// forwarder would pay per packet.
		frame := wire.EncodeRoCEv2(pkt)
		if _, err := fab.ForwardFrame(frame, green); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Incremental re-synthesis under churn (§4 deployability) ---------------------------------

// benchFlapClos is large enough that a single link flap touches only a
// sliver of the rule space — the regime where incremental re-synthesis
// pays for itself. The wide spine layer (64 of the 80 links are
// leaf-spine) makes leaf-spine the dominant link class, so that is the
// link the flap benchmarks exercise.
func benchFlapClos(b *testing.B) (*topology.Clos, *elp.Set) {
	b.Helper()
	cl, err := topology.NewClos(topology.ClosConfig{
		Pods: 4, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cl, elp.KBounce(cl.Graph, cl.ToRs, 1, nil)
}

// BenchmarkResynthSingleLinkFlap: one L1-S1 down + up cycle through the
// incremental path (tracker delta + Resynth.Apply twice per iteration).
func BenchmarkResynthSingleLinkFlap(b *testing.B) {
	cl, set := benchFlapClos(b)
	g := cl.Graph
	rs, err := core.NewResynth(g, set.Paths(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tr := elp.NewTracker(g, set)
	l1, s1 := g.MustLookup("L1"), g.MustLookup("S1")
	b.ReportMetric(float64(set.Len()), "paths")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FailLink(l1, s1)
		if _, err := rs.Apply(nil, tr.LinkDown(l1, s1)); err != nil {
			b.Fatal(err)
		}
		g.RestoreLink(l1, s1)
		if _, err := rs.Apply(tr.LinkUp(l1, s1), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSynthSingleLinkFlap: the same flap handled the pre-churn
// way — re-enumerate the ELP and synthesize from scratch after each
// topology change. The Resynth benchmark above must beat this by >=10x.
func BenchmarkFullSynthSingleLinkFlap(b *testing.B) {
	cl, _ := benchFlapClos(b)
	g := cl.Graph
	l1, s1 := g.MustLookup("L1"), g.MustLookup("S1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FailLink(l1, s1)
		set := elp.KBounce(g, cl.ToRs, 1, nil)
		if _, err := core.Synthesize(g, set.Paths(), core.Options{}); err != nil {
			b.Fatal(err)
		}
		g.RestoreLink(l1, s1)
		set = elp.KBounce(g, cl.ToRs, 1, nil)
		if _, err := core.Synthesize(g, set.Paths(), core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Trace capture cost ------------------------------------------------------------------

// traceCaptureEvents is the simulator's hot-path event mix: PFC
// transitions with queue depths plus a drop, all names already seen.
var traceCaptureEvents = []sim.TraceEvent{
	{T: 1, Kind: "pause", Node: "T1", Peer: "L1", Prio: 1, Depth: 9216},
	{T: 2, Kind: "resume", Node: "T1", Peer: "L1", Prio: 1, Depth: 512},
	{T: 3, Kind: "drop", Node: "T1", Flow: "f1", Reason: "ttl"},
}

// BenchmarkTraceCapture compares the per-event capture cost of the two
// trace encodings as taggersim wires them: straight to a file. JSONL
// pays a synchronous encode + write per event on the simulator's
// goroutine; binary pays a fixed-width marshal into the ring and lets
// the background writer own the file. Binary must stay at 0 allocs/op
// (TestBinaryTracerZeroAlloc and the benchgate's -alloc-threshold pin
// it) and ≥10x cheaper per event (TestTraceCaptureSpeedup pins that).
func BenchmarkTraceCapture(b *testing.B) {
	b.Run("Binary", func(b *testing.B) {
		f, err := os.Create(filepath.Join(b.TempDir(), "trace.bin"))
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		bt, err := sim.NewBinaryTracer(f, trace.Config{
			RingSize: 1 << 18, FlushInterval: 200 * time.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range traceCaptureEvents { // warm the intern table
			bt.Trace(ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bt.Trace(traceCaptureEvents[i%len(traceCaptureEvents)])
		}
		b.StopTimer()
		if err := bt.Close(); err != nil {
			b.Fatal(err)
		}
		if n := bt.Dropped(); n > 0 {
			b.Fatalf("ring dropped %d events; the timing excludes real capture work", n)
		}
	})
	b.Run("JSONL", func(b *testing.B) {
		f, err := os.Create(filepath.Join(b.TempDir(), "trace.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		tr := &sim.JSONLTracer{W: f}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Trace(traceCaptureEvents[i%len(traceCaptureEvents)])
		}
		b.StopTimer()
		if tr.Err != nil || tr.Dropped != 0 {
			b.Fatalf("err=%v dropped=%d", tr.Err, tr.Dropped)
		}
	})
}

// TestTraceCaptureSpeedup gates the tentpole claim in-suite: capturing
// an event to a file in the binary format must cost at least 10x less
// simulator time than the JSONL tracer (in practice far more — the
// JSONL path is a synchronous encode + write syscall per event).
// Best-of-three damps scheduler noise.
func TestTraceCaptureSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector: its atomics instrumentation taxes the ring far more than the JSONL encoder")
	}
	const n = 100_000
	dir := t.TempDir()
	best := func(f func(path string) time.Duration, name string) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if d := f(filepath.Join(dir, fmt.Sprintf("%s.%d", name, i))); d < min {
				min = d
			}
		}
		return min
	}
	binary := best(func(path string) time.Duration {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		bt, err := sim.NewBinaryTracer(f, trace.Config{RingSize: 1 << 18})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range traceCaptureEvents {
			bt.Trace(ev)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			bt.Trace(traceCaptureEvents[i%len(traceCaptureEvents)])
		}
		elapsed := time.Since(start)
		if err := bt.Close(); err != nil {
			t.Fatal(err)
		}
		if d := bt.Dropped(); d > 0 {
			t.Fatalf("binary capture dropped %d events", d)
		}
		return elapsed
	}, "bin")
	jsonl := best(func(path string) time.Duration {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tr := &sim.JSONLTracer{W: f}
		start := time.Now()
		for i := 0; i < n; i++ {
			tr.Trace(traceCaptureEvents[i%len(traceCaptureEvents)])
		}
		return time.Since(start)
	}, "jsonl")
	if binary*10 > jsonl {
		t.Errorf("binary capture %v for %d events vs JSONL %v: less than the promised 10x", binary, n, jsonl)
	}
}

// --- Simulator raw throughput --------------------------------------------------------------

func BenchmarkSimulatorPacketRate(b *testing.B) {
	c := paper.Testbed()
	for i := 0; i < b.N; i++ {
		tb := routing.ComputeToHosts(c.Graph, routing.UpDown)
		n := NewSimulation(c.Graph, tb, DefaultSimConfig())
		n.AddFlow(FlowSpec{Name: "x", Src: c.Hosts[0], Dst: c.Hosts[8]})
		n.Run(5_000_000) // 5 ms of simulated 40G traffic
	}
}

// --- Synthesis cache: warm hits and pod memoization ---------------------------

// synthCacheJellyfish builds the Jellyfish200 workload the cache
// benchmarks share: the fabric and its 1-shortest-path ELP.
func synthCacheJellyfish(tb testing.TB) (*topology.Jellyfish, []routing.Path) {
	tb.Helper()
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 200, Ports: 24, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	return j, elp.ShortestAllN(j.Graph, j.Switches, 1).Paths()
}

// BenchmarkSynthCacheCold is the baseline for the warm-hit claim: every
// iteration pays the full pipeline on a fresh cache — canonicalization,
// Algorithms 1+2, TCAM compilation.
func BenchmarkSynthCacheCold(b *testing.B) {
	j, paths := synthCacheJellyfish(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := synthcache.New(8)
		if _, err := cache.Synthesize(j.Graph, paths, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthCacheWarm times the steady state a long-lived controller
// or sweep sees: the same (topology, ELP) request answered from the
// cache. Pair with BenchmarkSynthCacheCold for the ≥50x tentpole ratio
// (gated in-suite by TestSynthCacheWarmSpeedup).
func BenchmarkSynthCacheWarm(b *testing.B) {
	j, paths := synthCacheJellyfish(b)
	cache := synthcache.New(8)
	if _, err := cache.Synthesize(j.Graph, paths, core.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cache.Synthesize(j.Graph, paths, core.Options{})
		if err != nil || !r.Hit {
			b.Fatalf("warm request missed (hit=%v err=%v)", r.Hit, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(cache.Stats().HitRatio(), "hit-ratio")
}

// BenchmarkFatTreeSynthFromScratch is the cold baseline for pod
// memoization: full KBounce enumeration over every pod pair of a k=8
// fat-tree (5.2M paths) plus Clos rule synthesis and replay. k=16 (the
// paper's largest) is infeasible here — enumeration alone is hours —
// which is exactly the motivation for stamping.
func BenchmarkFatTreeSynthFromScratch(b *testing.B) {
	ft, err := topology.NewFatTree(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := elp.KBounce(ft.Graph, ft.Edges, 1, nil)
		if _, err := core.ClosSynthesize(ft.Graph, set.Paths(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFatTreePodMemoized builds the same system via
// representative-pod stamping: one pod pair enumerated and replayed, the
// other 54 ordered pairs stamped by pod-permutation automorphisms
// (rule-identical — see make cache-fuzz). Each iteration uses a fresh
// cache so it times the memoized BUILD, not a warm hit.
func BenchmarkFatTreePodMemoized(b *testing.B) {
	ft, err := topology.NewFatTree(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := synthcache.New(8)
		r, err := cache.ClosKBounce(ft.Graph, ft.Edges, 1)
		if err != nil || !r.PodMemoized {
			b.Fatalf("pod stamping not used (memoized=%v err=%v)", r.PodMemoized, err)
		}
	}
}

// TestSynthCacheWarmSpeedup gates the tentpole claim in-suite: a warm
// cache hit on Jellyfish200 must be at least 50x faster than cold
// synthesis (in practice orders of magnitude — the warm path is two map
// lookups and a hash of the option key).
func TestSynthCacheWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	j, paths := synthCacheJellyfish(t)
	cache := synthcache.New(8)
	start := time.Now()
	if _, err := cache.Synthesize(j.Graph, paths, core.Options{}); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	const iters = 200
	warm := time.Duration(1<<63 - 1)
	for round := 0; round < 3; round++ {
		start = time.Now()
		for i := 0; i < iters; i++ {
			r, err := cache.Synthesize(j.Graph, paths, core.Options{})
			if err != nil || !r.Hit {
				t.Fatalf("warm request missed (hit=%v err=%v)", r.Hit, err)
			}
		}
		if d := time.Since(start) / iters; d < warm {
			warm = d
		}
	}
	if ratio := float64(cold) / float64(warm); ratio < 50 {
		t.Errorf("warm cache speedup %.1fx, want >= 50x (cold %v, warm %v)", ratio, cold, warm)
	}
}

// TestFatTreePodMemoizedSpeedup gates the pod-memoization claim: the
// stamped k=8 fat-tree build must be at least 4x faster than from
// scratch (measured ~6-12x: the representative pair still pays its own
// enumeration and replay).
func TestFatTreePodMemoizedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	ft, err := topology.NewFatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	set := elp.KBounce(ft.Graph, ft.Edges, 1, nil)
	if _, err := core.ClosSynthesize(ft.Graph, set.Paths(), 1); err != nil {
		t.Fatal(err)
	}
	scratch := time.Since(start)

	memo := time.Duration(1<<63 - 1)
	for round := 0; round < 2; round++ {
		cache := synthcache.New(8)
		start = time.Now()
		r, err := cache.ClosKBounce(ft.Graph, ft.Edges, 1)
		if err != nil || !r.PodMemoized {
			t.Fatalf("pod stamping not used (memoized=%v err=%v)", r.PodMemoized, err)
		}
		if d := time.Since(start); d < memo {
			memo = d
		}
	}
	if ratio := float64(scratch) / float64(memo); ratio < 4 {
		t.Errorf("pod-memoized speedup %.1fx, want >= 4x (scratch %v, memoized %v)", ratio, scratch, memo)
	}
}
