package tagger

import (
	"testing"

	"repro/internal/wire"
)

// TestFullDeploymentChain exercises the entire operator pipeline in one
// pass: synthesize -> verify -> export JSON bundle -> re-import on a
// "different controller" -> compile per-switch TCAMs -> push real RoCEv2
// frames through every ELP path -> confirm the byte-level tags match the
// abstract model, end to end.
func TestFullDeploymentChain(t *testing.T) {
	clos := PaperTestbed()
	set := KBounceELP(clos, 1)

	// 1. Synthesize and verify.
	sys, err := SynthesizeClos(clos, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Runtime.Verify(); err != nil {
		t.Fatal(err)
	}

	// 2. Export -> bytes -> import (a fresh controller restoring state).
	data, err := ExportBundle(sys.Rules).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := UnmarshalBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ImportBundle(clos.Graph, bundle)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Compile the frame-level dataplane from the RESTORED rules.
	dp := CompileDataplane(clos.Graph, restored)
	if dp.TotalEntries() == 0 {
		t.Fatal("empty dataplane")
	}

	// 4. Forward an encoded frame along every ELP path; tags must match
	// the original (pre-serialization) system's replay hop for hop.
	for _, p := range set.Paths() {
		want := sys.Rules.Replay(p, 1)
		frame := wire.EncodeRoCEv2(&wire.RoCEv2Packet{
			IP:  wire.IPv4{DSCP: 1, TTL: 64},
			BTH: wire.BTH{Opcode: wire.OpcodeRCWriteOnly},
		})
		got, err := dp.ForwardFrame(frame, p)
		if err != nil {
			t.Fatalf("path %s: %v", p.String(clos.Graph), err)
		}
		for i := range got {
			if got[i] != want.Tags[i] {
				t.Fatalf("path %s hop %d: frame %d vs abstract %d",
					p.String(clos.Graph), i, got[i], want.Tags[i])
			}
		}
	}

	// 5. The restored rules drive a simulation identically: the Figure 10
	// scenario stays deadlock-free.
	tb := ComputeRoutes(clos.Graph, UpDown)
	n := NewSimulation(clos.Graph, tb, DefaultSimConfig())
	n.InstallTagger(restored)
	g := clos.Graph
	n.AddFlow(FlowSpec{
		Name: "green", Src: g.MustLookup("H9"), Dst: g.MustLookup("H1"),
		Pin: Path{g.MustLookup("H9"), g.MustLookup("T3"), g.MustLookup("L3"),
			g.MustLookup("S2"), g.MustLookup("L1"), g.MustLookup("S1"),
			g.MustLookup("L2"), g.MustLookup("T1"), g.MustLookup("H1")},
	})
	n.AddFlow(FlowSpec{
		Name: "blue", Src: g.MustLookup("H2"), Dst: g.MustLookup("H13"),
		Start: 1_000_000,
		Pin: Path{g.MustLookup("H2"), g.MustLookup("T1"), g.MustLookup("L1"),
			g.MustLookup("S1"), g.MustLookup("L3"), g.MustLookup("S2"),
			g.MustLookup("L4"), g.MustLookup("T4"), g.MustLookup("H13")},
	})
	n.Run(10_000_000)
	if n.Deadlocked() {
		t.Fatal("restored deployment deadlocked")
	}
	if d := n.Drops(); d.Total() != 0 {
		t.Fatalf("restored deployment dropped: %+v", d)
	}
}
