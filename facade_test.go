package tagger

import (
	"strings"
	"testing"
)

func TestFigure11Experiment(t *testing.T) {
	without := Figure11(false)
	if !without.Deadlocked {
		t.Error("fig11 baseline should deadlock")
	}
	with := Figure11(true)
	if with.Deadlocked {
		t.Error("fig11 with Tagger deadlocked")
	}
	// F1 alive, F2 dead under Tagger.
	rates := map[string]float64{}
	for _, f := range with.Flows {
		rates[f.Name] = f.LateGbps
	}
	if rates["F1"] < 5 {
		t.Errorf("F1 = %.1f Gbps", rates["F1"])
	}
	if rates["F2"] > 0.01 {
		t.Errorf("F2 = %.1f Gbps, should be dead in the loop", rates["F2"])
	}
}

func TestFigure12Experiment(t *testing.T) {
	without := Figure12(false)
	if !without.Deadlocked {
		t.Error("fig12 baseline should deadlock")
	}
	stuck := 0
	for _, f := range without.Flows {
		if f.LateGbps < 0.01 {
			stuck++
		}
	}
	if stuck != len(without.Flows) {
		t.Errorf("PAUSE propagation froze %d/%d flows", stuck, len(without.Flows))
	}
	with := Figure12(true)
	if with.Deadlocked {
		t.Error("fig12 with Tagger deadlocked")
	}
}

func TestTable5ResultString(t *testing.T) {
	row, err := Table5Case(30, 8, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := Table5Result{Rows: []Table5Row{row}}
	s := res.String()
	if !strings.Contains(s, "Priorities") || !strings.Contains(s, "30") {
		t.Errorf("table: %q", s)
	}
}

func TestSynthesizeBruteForceFacade(t *testing.T) {
	clos := PaperTestbed()
	set := UpDownELP(clos)
	sys, err := SynthesizeBruteForce(clos.Graph, set)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force on up-down ToR paths needs one tag per hop (4).
	if got := sys.Runtime.NumSwitchTags(); got != 4 {
		t.Errorf("brute-force tags = %d, want 4", got)
	}
	merged, err := Synthesize(clos.Graph, set)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Runtime.NumSwitchTags(); got != 1 {
		t.Errorf("merged tags = %d, want 1", got)
	}
}

func TestFatTreeFacade(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	set := ELPFromKBounce(ft.Graph, ft.Edges, 1)
	sys, err := SynthesizeFatTree(ft, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumLosslessQueues() != 2 {
		t.Errorf("fat-tree queues = %d", sys.NumLosslessQueues())
	}
}

func TestJellyfishFacadeWithRandomELP(t *testing.T) {
	j, err := NewJellyfish(JellyfishConfig{Switches: 15, Ports: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	set := ShortestELP(j.Graph, j.Switches)
	before := set.Len()
	AddRandomELP(set, j.Graph, j.Switches, 30, 6, 5)
	if set.Len() != before+30 {
		t.Errorf("random ELP: %d -> %d", before, set.Len())
	}
	sys, err := Synthesize(j.Graph, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Runtime.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBCubeFacade(t *testing.T) {
	b, err := NewBCube(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	set := BCubeELP(b)
	if set.Len() == 0 {
		t.Fatal("empty BCube ELP")
	}
}

func TestDCQCNFacadeDefaults(t *testing.T) {
	cfg := DefaultDCQCN()
	if cfg.KMin <= 0 || cfg.KMax <= cfg.KMin || cfg.PMax <= 0 {
		t.Errorf("defaults: %+v", cfg)
	}
	clos := PaperTestbed()
	tb := ComputeRoutes(clos.Graph, UpDown)
	n := NewSimulation(clos.Graph, tb, DefaultSimConfig())
	n.EnableDCQCN(cfg)
	f := n.AddFlow(FlowSpec{Name: "x", Src: clos.Hosts[0], Dst: clos.Hosts[8]})
	n.Run(2_000_000)
	if f.Received() == 0 {
		t.Fatal("flow dead under DCQCN facade")
	}
}

func TestRecoveryFacade(t *testing.T) {
	clos := PaperTestbed()
	tb := ComputeRoutes(clos.Graph, UpDown)
	n := NewSimulation(clos.Graph, tb, DefaultSimConfig())
	var stats *RecoveryStats = n.EnableRecovery(1_000_000)
	n.AddFlow(FlowSpec{Name: "x", Src: clos.Hosts[0], Dst: clos.Hosts[8]})
	n.Run(3_000_000)
	if stats.Detections != 0 {
		t.Error("healthy network triggered recovery")
	}
}
