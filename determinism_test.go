package tagger

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/routing"
	"repro/internal/tcam"
	"repro/internal/topology"
)

// fingerprint is everything externally observable about one synthesis run:
// the installed rules, the sorted node/edge views of both tagged graphs,
// and the compressed TCAM image. Two runs with equal fingerprints install
// byte-identical switch configurations.
type fingerprint struct {
	Rules     []core.Rule
	BFNodes   []core.TagNode
	BFEdges   []core.TagEdge
	MNodes    []core.TagNode
	MEdges    []core.TagEdge
	RTNodes   []core.TagNode
	RTEdges   []core.TagEdge
	Queues    int
	Conflicts int
	TCAM      []tcam.Entry
	MaxPerSw  int
}

func synthFingerprint(t *testing.T, g *topology.Graph, paths []routing.Path, workers int) fingerprint {
	t.Helper()
	sys, err := core.Synthesize(g, paths, core.Options{Workers: workers})
	if err != nil {
		t.Fatalf("Synthesize(workers=%d): %v", workers, err)
	}
	entries := tcam.CompressN(sys.Rules.Rules(), workers)
	return fingerprint{
		Rules:     sys.Rules.Rules(),
		BFNodes:   sys.BruteForce.Nodes(),
		BFEdges:   sys.BruteForce.Edges(),
		MNodes:    sys.Merged.Nodes(),
		MEdges:    sys.Merged.Edges(),
		RTNodes:   sys.Runtime.Nodes(),
		RTEdges:   sys.Runtime.Edges(),
		Queues:    sys.NumLosslessQueues(),
		Conflicts: len(sys.Conflicts),
		TCAM:      entries,
		MaxPerSw:  tcam.MaxPerSwitch(entries),
	}
}

func requireSameFingerprint(t *testing.T, want, got fingerprint, workers int) {
	t.Helper()
	if reflect.DeepEqual(want, got) {
		return
	}
	// Narrow the diff so a failure names the diverging stage.
	for _, part := range []struct {
		name string
		a, b any
	}{
		{"Rules", want.Rules, got.Rules},
		{"BruteForce.Nodes", want.BFNodes, got.BFNodes},
		{"BruteForce.Edges", want.BFEdges, got.BFEdges},
		{"Merged.Nodes", want.MNodes, got.MNodes},
		{"Merged.Edges", want.MEdges, got.MEdges},
		{"Runtime.Nodes", want.RTNodes, got.RTNodes},
		{"Runtime.Edges", want.RTEdges, got.RTEdges},
		{"Queues", want.Queues, got.Queues},
		{"Conflicts", want.Conflicts, got.Conflicts},
		{"TCAM", want.TCAM, got.TCAM},
		{"MaxPerSwitch", want.MaxPerSw, got.MaxPerSw},
	} {
		if !reflect.DeepEqual(part.a, part.b) {
			t.Errorf("workers=%d diverges from workers=1 at %s", workers, part.name)
		}
	}
}

// TestParallelDeterminism is the contract the parallel synthesis path
// makes: for every topology and ELP, par=1 and par=N emit identical
// rules, tagged graphs, and TCAM images. Fig 5 covers the walk-through
// example, the testbed Clos covers bounce paths, and Jellyfish covers
// large irregular graphs across several seeds.
func TestParallelDeterminism(t *testing.T) {
	type tc struct {
		name  string
		graph *topology.Graph
		paths []routing.Path
	}
	var cases []tc

	f := paper.NewFig5()
	cases = append(cases, tc{"Fig5", f.Graph, f.ELP.Paths()})

	c := paper.Testbed()
	set := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	cases = append(cases, tc{"ClosTestbed1Bounce", c.Graph, set.Paths()})

	for _, seed := range []int64{1, 2, 7} {
		j, err := topology.NewJellyfish(topology.JellyfishConfig{
			Switches: 100, Ports: 12, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate the ELP serially once: path enumeration determinism
		// is asserted separately below so synthesis divergence isn't
		// masked by input divergence.
		jset := elp.ShortestAllN(j.Graph, j.Switches, 1)
		cases = append(cases, tc{fmt.Sprintf("Jellyfish100/seed=%d", seed), j.Graph, jset.Paths()})
	}

	for _, tcse := range cases {
		t.Run(tcse.name, func(t *testing.T) {
			serial := synthFingerprint(t, tcse.graph, tcse.paths, 1)
			for _, workers := range []int{2, 4, 0} { // 0 = GOMAXPROCS
				got := synthFingerprint(t, tcse.graph, tcse.paths, workers)
				requireSameFingerprint(t, serial, got, workers)
			}
		})
	}
}

// TestParallelDeterminismELP asserts the enumeration stage alone: sharded
// BFS returns the same path list in the same order as the serial walk.
func TestParallelDeterminismELP(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		j, err := topology.NewJellyfish(topology.JellyfishConfig{
			Switches: 80, Ports: 10, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		serial := elp.ShortestAllN(j.Graph, j.Switches, 1).Paths()
		for _, workers := range []int{3, 0} {
			par := elp.ShortestAllN(j.Graph, j.Switches, workers).Paths()
			if len(par) != len(serial) {
				t.Fatalf("seed %d workers=%d: %d paths, serial has %d", seed, workers, len(par), len(serial))
			}
			for i := range serial {
				if !reflect.DeepEqual(serial[i], par[i]) {
					t.Fatalf("seed %d workers=%d: path %d differs: %v vs %v",
						seed, workers, i, serial[i], par[i])
				}
			}
		}
	}
}
