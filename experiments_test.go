package tagger

import (
	"testing"
)

func TestCompareRecoveryExperiment(t *testing.T) {
	res := CompareRecovery()
	if res.RecoveryDetections < 2 {
		t.Errorf("recovery detections = %d, want repeated reformation", res.RecoveryDetections)
	}
	if res.RecoveryPacketsDropped == 0 {
		t.Error("recovery sacrificed no packets")
	}
	if res.TaggerGoodputGbps < res.RecoveryGoodputGbps*2 {
		t.Errorf("Tagger goodput %.1f should dominate recovery %.1f",
			res.TaggerGoodputGbps, res.RecoveryGoodputGbps)
	}
}

func TestDCQCNExperimentShape(t *testing.T) {
	res := DCQCNExperiment()
	if res.PausesWithCC*5 > res.PausesWithoutCC {
		t.Errorf("DCQCN pauses %d not far below baseline %d",
			res.PausesWithCC, res.PausesWithoutCC)
	}
	if res.GoodputGbps < 20 {
		t.Errorf("incast goodput with CC = %.1f Gbps", res.GoodputGbps)
	}
	if !res.TaggerCleanWith {
		t.Error("Tagger + DCQCN not clean")
	}
}

func TestQueueBudgetExperiment(t *testing.T) {
	rows := QueueBudget()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxLossless < 1 || r.MaxLossless > 4 {
			t.Errorf("%s: %d lossless queues, paper says a handful (<= 4)", r.Name, r.MaxLossless)
		}
		if r.PerQueueBytes <= 0 || r.BufferMB <= 0 {
			t.Errorf("row fields: %+v", r)
		}
	}
	if rows[1].MaxLossless > rows[0].MaxLossless {
		t.Error("budget should not improve across generations (§3.3)")
	}
}

func TestCompressionAblationExperiment(t *testing.T) {
	lv := CompressionAblation()
	if !(lv.Exact > lv.InPortOnly && lv.InPortOnly > lv.Joint) {
		t.Errorf("compression levels: %+v", lv)
	}
}

func TestBundleFacade(t *testing.T) {
	clos := PaperTestbed()
	set := KBounceELP(clos, 1)
	sys, err := SynthesizeClos(clos, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := ExportBundle(sys.Rules)
	rs, err := ImportBundle(clos.Graph, b)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != sys.Rules.Len() {
		t.Errorf("roundtrip lost rules: %d vs %d", rs.Len(), sys.Rules.Len())
	}
	if diffs := DiffBundles(b, ExportBundle(rs)); len(diffs) != 0 {
		t.Errorf("roundtrip diff: %v", diffs)
	}
}

func TestControllerFacade(t *testing.T) {
	clos := PaperTestbed()
	ctl, err := NewClosController(clos, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := clos.Graph
	if err := ctl.Handle(ControllerEvent{Kind: EventLinkDown,
		A: g.MustLookup("L1"), B: g.MustLookup("T1")}); err != nil {
		t.Fatal(err)
	}
	if len(ctl.Diffs()) != 0 {
		t.Error("failure caused rule churn")
	}
}

func TestDataplaneFacade(t *testing.T) {
	clos := PaperTestbed()
	set := KBounceELP(clos, 1)
	sys, err := SynthesizeClos(clos, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	dp := CompileDataplane(clos.Graph, sys.Rules)
	if dp.TotalEntries() == 0 {
		t.Fatal("empty dataplane")
	}
}

func TestChipSpecFacade(t *testing.T) {
	if Tomahawk40G().MaxLosslessQueues() < 1 || Tomahawk100G().MaxLosslessQueues() < 1 {
		t.Error("chip budgets")
	}
}
