package tagger

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// DetectArm names one arm of the detect-vs-prevent experiment matrix.
type DetectArm string

// The four arms: prevention (Tagger rules, deadlock never forms),
// in-switch detect-and-react (the DCFIT-style tag detector with the
// targeted-drop hook), global-view detect-and-break (the periodic
// recovery scan), and nothing (the control that starves).
const (
	ArmTagger DetectArm = "tagger"
	ArmDetect DetectArm = "detect"
	ArmScan   DetectArm = "scan"
	ArmNone   DetectArm = "none"
)

// DetectArms lists the matrix arms in report order.
func DetectArms() []DetectArm { return []DetectArm{ArmTagger, ArmDetect, ArmScan, ArmNone} }

// DetectRunResult is one (seed, arm) cell of the matrix.
type DetectRunResult struct {
	Seed int64
	Arm  DetectArm

	// Deadlock episode tracking (all arms): onsets observed at PFC
	// granularity, how many cleared, and the recovery latency.
	Onsets     int
	FirstOnset time.Duration // -1 if none
	Recoveries int
	MeanTTR    time.Duration
	MaxTTR     time.Duration
	// StillOpen reports a deadlock live at the very end of the run.
	// Under persistent CBD traffic the cycle re-forms moments after
	// every break (the paper's §1 argument against detect-and-react),
	// so a reactive arm routinely ends mid-episode; the failure signal
	// is Onsets > 0 with Recoveries == 0, not StillOpen.
	StillOpen bool

	// In-switch detector outcome (tagger and detect arms; the tagger arm
	// runs the detector with mitigation off as a false-positive oracle).
	Detections     int
	FalsePositives int
	MeanTTD        time.Duration
	MaxTTD         time.Duration
	Mitigations    int

	// ScanDetections counts the global-view monitor's interventions
	// (scan arm only).
	ScanDetections int

	// GoodputGbps is the aggregate delivered rate over the scenario's
	// steady window (2ms to the horizon) — the metric deadlock collapses.
	GoodputGbps float64

	Drops    sim.DropStats
	Watchdog sim.WatchdogStats

	// Incidents holds the flight-recorder captures for this cell
	// (DetectRunFlightRec / DetectMatrixFlightRec only; nil otherwise).
	// Each is a self-contained binary trace for `taggertrace
	// postmortem`, deterministic per (seed, arm), so the sweep stays
	// par-independent. FlightRecDropped and FlightRecOverwrites are the
	// capture-loss counters for the run summary.
	Incidents           []sim.Incident
	FlightRecDropped    int64
	FlightRecOverwrites int64
}

// Recovered reports whether the run's protection actually cleared
// deadlock episodes (at least one onset and at least one recovery).
func (r DetectRunResult) Recovered() bool { return r.Onsets > 0 && r.Recoveries > 0 }

// DetectRun executes one cell of the matrix: the seeded DetectMatrix
// scenario (Figure 3 CBD pair with jittered starts, background cross
// traffic, off-path T2 reboots) under the given arm's protection. When
// reg is non-nil the cell reports arm-qualified counters into it
// ("detect.matrix.*" with an arm label), commutative under merge so the
// sweep aggregate is par-independent.
func DetectRun(seed int64, arm DetectArm, reg *telemetry.Registry) (DetectRunResult, error) {
	return detectRun(seed, arm, reg, nil)
}

// DetectRunFlightRec is DetectRun with the flight recorder armed: any
// deadlock onset, detector firing (or false positive) or invariant
// violation freezes the ring and files an incident into the result's
// Incidents.
func DetectRunFlightRec(seed int64, arm DetectArm, reg *telemetry.Registry, cfg sim.FlightRecConfig) (DetectRunResult, error) {
	return detectRun(seed, arm, reg, &cfg)
}

func detectRun(seed int64, arm DetectArm, reg *telemetry.Registry, frCfg *sim.FlightRecConfig) (DetectRunResult, error) {
	opt := workload.Options{}
	if arm == ArmTagger {
		opt.Bounces = 1
	}
	s := workload.DetectMatrix(opt, seed)
	res := DetectRunResult{Seed: seed, Arm: arm, FirstOnset: -1}

	var det *sim.DetectorStats
	var scan *sim.RecoveryStats
	switch arm {
	case ArmTagger:
		// The detector rides along with mitigation off: on a protected
		// topology it must never fire, which makes every Tagger-arm run a
		// false-positive oracle.
		det = s.Net.EnableDetector(sim.DetectorConfig{Mitigation: sim.MitigateNone})
	case ArmDetect:
		det = s.Net.EnableDetector(sim.DetectorConfig{Mitigation: sim.MitigateDrop})
	case ArmScan:
		scan = s.Net.EnableRecovery(500 * time.Microsecond)
	case ArmNone:
	default:
		return res, fmt.Errorf("detect: unknown arm %q", arm)
	}
	var fr *sim.FlightRecorder
	if frCfg != nil {
		fr = s.Net.EnableFlightRecorder(*frCfg)
	}
	track := s.Net.TrackDeadlocks()
	wd := s.Net.StartWatchdog(500 * time.Microsecond)

	s.Run()

	res.Onsets = track.Onsets
	res.FirstOnset = track.FirstOnsetAt
	res.Recoveries = track.Recoveries
	res.MeanTTR = track.MeanTTR()
	res.MaxTTR = track.MaxTTR
	res.StillOpen = track.Open()
	if det != nil {
		res.Detections = det.Detections
		res.FalsePositives = det.FalsePositives
		res.MeanTTD = det.MeanTTD()
		res.MaxTTD = det.MaxTTD
		res.Mitigations = det.Mitigations
	}
	if scan != nil {
		res.ScanDetections = scan.Detections
	}
	res.GoodputGbps = s.AggregateGoodput(2*time.Millisecond, s.Duration)
	res.Drops = s.Net.Drops()
	res.Watchdog = *wd
	if fr != nil {
		res.Incidents = fr.Incidents()
		res.FlightRecDropped = fr.DroppedTriggers()
		res.FlightRecOverwrites = fr.Overwrites()
		if err := fr.SinkErr(); err != nil {
			return res, fmt.Errorf("detect: seed %d arm %s: flight-recorder sink: %w", seed, arm, err)
		}
	}

	if reg != nil {
		a := string(arm)
		reg.Counter("detect.matrix.seeds", "arm", a).Inc()
		reg.Counter("detect.matrix.onsets", "arm", a).Add(int64(res.Onsets))
		reg.Counter("detect.matrix.recoveries", "arm", a).Add(int64(res.Recoveries))
		reg.Counter("detect.matrix.detections", "arm", a).Add(int64(res.Detections))
		reg.Counter("detect.matrix.false_positives", "arm", a).Add(int64(res.FalsePositives))
		if res.StillOpen {
			reg.Counter("detect.matrix.unrecovered", "arm", a).Inc()
		}
	}
	return res, nil
}

// DetectMatrix fans the four-arm experiment across par workers: every
// arm runs every seed independently (its own Network, its own scenario
// build), results return in (arm, seed) order, and — via
// sweep.RunMerged — per-run telemetry merges into reg deterministically.
func DetectMatrix(seeds []int64, par int, reg *telemetry.Registry) (map[DetectArm][]DetectRunResult, error) {
	return detectMatrix(seeds, par, reg, nil)
}

// DetectMatrixFlightRec is DetectMatrix with the flight recorder armed
// in every cell; each result carries its incidents. Captures are
// deterministic per (seed, arm), so the matrix — incident bytes
// included — is identical at par=1 and par=N.
func DetectMatrixFlightRec(seeds []int64, par int, reg *telemetry.Registry, cfg sim.FlightRecConfig) (map[DetectArm][]DetectRunResult, error) {
	return detectMatrix(seeds, par, reg, &cfg)
}

func detectMatrix(seeds []int64, par int, reg *telemetry.Registry, frCfg *sim.FlightRecConfig) (map[DetectArm][]DetectRunResult, error) {
	out := make(map[DetectArm][]DetectRunResult, 4)
	for _, arm := range DetectArms() {
		arm := arm
		results, err := sweep.RunMerged(seeds, par, reg,
			func(seed int64, runReg *telemetry.Registry) (DetectRunResult, error) {
				return detectRun(seed, arm, runReg, frCfg)
			})
		if err != nil {
			return out, fmt.Errorf("detect: arm %s: %w", arm, err)
		}
		out[arm] = results
	}
	return out, nil
}

// DetectArmSummary aggregates one arm over the sweep.
type DetectArmSummary struct {
	Arm   DetectArm
	Seeds int
	// DeadlockSeeds counts seeds with at least one deadlock onset;
	// RecoveredSeeds the subset that cleared episodes;
	// UnrecoveredSeeds those that never cleared one — a reactive arm's
	// genuine failure mode. OpenAtEnd counts seeds whose last episode
	// was still live at the horizon (expected under persistent CBD
	// traffic: the cycle re-forms after every break).
	DeadlockSeeds    int
	RecoveredSeeds   int
	UnrecoveredSeeds int
	OpenAtEnd        int

	Detections     int
	FalsePositives int
	// MeanTTD/MaxTTD aggregate time-to-detect over seeds that detected;
	// MeanTTR/MaxTTR aggregate time-to-recover over seeds that recovered.
	MeanTTD time.Duration
	MaxTTD  time.Duration
	MeanTTR time.Duration
	MaxTTR  time.Duration

	// MeanGoodputGbps averages the steady-window aggregate rate over
	// seeds.
	MeanGoodputGbps float64
	// SacrificedPackets totals the deliberate losses (detector
	// mitigation + recovery flushes) the arm paid for its recoveries.
	SacrificedPackets int64
	// LosslessDrops totals genuine invariant violations (must be zero).
	LosslessDrops int64
}

// SummarizeDetectMatrix folds per-seed cells into per-arm summaries in
// report order.
func SummarizeDetectMatrix(m map[DetectArm][]DetectRunResult) []DetectArmSummary {
	var out []DetectArmSummary
	for _, arm := range DetectArms() {
		runs := m[arm]
		if len(runs) == 0 {
			continue
		}
		s := DetectArmSummary{Arm: arm, Seeds: len(runs)}
		var ttdSum, ttrSum time.Duration
		var ttdN, ttrN int
		for _, r := range runs {
			if r.Onsets > 0 {
				s.DeadlockSeeds++
				if r.Recoveries > 0 {
					s.RecoveredSeeds++
				} else {
					s.UnrecoveredSeeds++
				}
			}
			if r.StillOpen {
				s.OpenAtEnd++
			}
			s.Detections += r.Detections
			s.FalsePositives += r.FalsePositives
			if r.Detections > 0 {
				ttdSum += r.MeanTTD
				ttdN++
				if r.MaxTTD > s.MaxTTD {
					s.MaxTTD = r.MaxTTD
				}
			}
			if r.Recoveries > 0 {
				ttrSum += r.MeanTTR
				ttrN++
				if r.MaxTTR > s.MaxTTR {
					s.MaxTTR = r.MaxTTR
				}
			}
			s.MeanGoodputGbps += r.GoodputGbps
			s.SacrificedPackets += r.Drops.DetectMitigation + r.Drops.RecoveryFlush
			s.LosslessDrops += r.Watchdog.LosslessDrops
		}
		if ttdN > 0 {
			s.MeanTTD = ttdSum / time.Duration(ttdN)
		}
		if ttrN > 0 {
			s.MeanTTR = ttrSum / time.Duration(ttrN)
		}
		s.MeanGoodputGbps /= float64(len(runs))
		out = append(out, s)
	}
	return out
}

// DetectMatrixTable renders the arm comparison. Goodput loss is
// relative to the Tagger arm (the prevention baseline the paper argues
// for); the column reads 0% for Tagger by construction.
func DetectMatrixTable(sums []DetectArmSummary) string {
	var base float64
	for _, s := range sums {
		if s.Arm == ArmTagger {
			base = s.MeanGoodputGbps
		}
	}
	t := metrics.NewTable("Arm", "Seeds", "Deadlocked", "Recovered", "Never recov", "Open@end",
		"Detections", "FP", "Mean TTD", "Mean TTR", "Goodput", "Loss", "Sacrificed")
	for _, s := range sums {
		loss := "n/a"
		if base > 0 {
			loss = fmt.Sprintf("%.1f%%", 100*(base-s.MeanGoodputGbps)/base)
		}
		ttd, ttr := "-", "-"
		if s.Detections > 0 {
			ttd = s.MeanTTD.Round(time.Microsecond).String()
		}
		if s.MeanTTR > 0 {
			ttr = s.MeanTTR.Round(time.Microsecond).String()
		}
		t.AddRow(string(s.Arm), s.Seeds, s.DeadlockSeeds, s.RecoveredSeeds, s.UnrecoveredSeeds,
			s.OpenAtEnd, s.Detections, s.FalsePositives, ttd, ttr,
			fmt.Sprintf("%.1f Gbps", s.MeanGoodputGbps), loss, s.SacrificedPackets)
	}
	return t.String()
}
