package tagger_test

import (
	"fmt"

	tagger "repro"
)

// The complete operator workflow: topology, ELP, synthesis, verification.
func ExampleSynthesizeClos() {
	clos, _ := tagger.NewClos(tagger.ClosConfig{
		Pods: 2, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 2, HostsPerToR: 4,
	})
	elp := tagger.KBounceELP(clos, 1) // lossless through one reroute bounce
	sys, _ := tagger.SynthesizeClos(clos, elp, 1)
	fmt.Println("queues:", sys.NumLosslessQueues())
	fmt.Println("verified:", sys.Runtime.Verify() == nil)
	// Output:
	// queues: 2
	// verified: true
}

// Generic synthesis (Algorithms 1+2) on an unstructured topology.
func ExampleSynthesize() {
	j, _ := tagger.NewJellyfish(tagger.JellyfishConfig{Switches: 30, Ports: 8, Seed: 7})
	sys, _ := tagger.Synthesize(j.Graph, tagger.ShortestELP(j.Graph, j.Switches))
	fmt.Println("priorities needed:", sys.Runtime.NumSwitchTags() <= 3)
	// Output:
	// priorities needed: true
}

// A packet's tag journey along a 1-bounce reroute: the bounce moves it
// from tag 1 to tag 2; it stays lossless because the ELP covers one
// bounce.
func ExampleRuleset_Replay() {
	clos, _ := tagger.NewClos(tagger.ClosConfig{
		Pods: 2, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 2, HostsPerToR: 1,
	})
	sys, _ := tagger.SynthesizeClos(clos, tagger.KBounceELP(clos, 1), 1)
	g := clos.Graph
	bounced := tagger.Path{
		g.MustLookup("T3"), g.MustLookup("L3"), g.MustLookup("S2"),
		g.MustLookup("L1"), g.MustLookup("S1"), g.MustLookup("L2"), g.MustLookup("T1"),
	}
	res := sys.Rules.Replay(bounced, 1)
	fmt.Println("tags:", res.Tags, "lossless:", res.Lossless)
	// Output:
	// tags: [1 1 1 2 2 2] lossless: true
}

// The provable lower bound of §4.4.
func ExampleMinLosslessQueues() {
	for k := 0; k <= 2; k++ {
		fmt.Printf("k=%d bounces -> >= %d lossless queues\n", k, tagger.MinLosslessQueues(k))
	}
	// Output:
	// k=0 bounces -> >= 1 lossless queues
	// k=1 bounces -> >= 2 lossless queues
	// k=2 bounces -> >= 3 lossless queues
}

// Exporting the deployment bundle an operator pushes to switches.
func ExampleExportBundle() {
	clos, _ := tagger.NewClos(tagger.ClosConfig{
		Pods: 2, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 2, HostsPerToR: 1,
	})
	sys, _ := tagger.SynthesizeClos(clos, tagger.KBounceELP(clos, 1), 1)
	b := tagger.ExportBundle(sys.Rules)
	fmt.Println("switches with rules:", len(b.Switches), "max lossless tag:", b.MaxTag)
	// Output:
	// switches with rules: 10 max lossless tag: 2
}
