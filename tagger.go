// Package tagger is a complete implementation of "Tagger: Practical PFC
// Deadlock Prevention in Data Center Networks" (Hu et al., CoNEXT 2017).
//
// Tagger prevents PFC-induced deadlocks in RoCE data centers without
// touching routing protocols: given an operator-supplied set of Expected
// Lossless Paths (ELP), it computes static per-switch match-action rules
// that rewrite a small tag carried in each packet (DSCP in practice) so
// that no cyclic buffer dependency can ever form. Packets that stray from
// the ELP — link failures, routing loops — are demoted to a lossy queue
// and can no longer propagate PAUSE.
//
// The package exposes:
//
//   - topology builders (Clos, fat-tree, BCube, Jellyfish) and routing
//     (shortest-path and valley-free up-down, with failures and ECMP);
//   - ELP enumerators (up-down, k-bounce, per-pair shortest, random,
//     BCube default routing);
//   - the tagging algorithms: Algorithm 1 (brute force), Algorithm 2
//     (greedy tag minimization), the provably optimal Clos scheme, rule
//     synthesis with conflict repair, and the deadlock-freedom verifier
//     for the two requirements of the paper's Theorem 5.1;
//   - the TCAM model: three-step pipeline, priority transition, and the
//     bitmap rule compression of §7;
//   - a deterministic packet-level fabric simulator with PFC
//     PAUSE/RESUME, used to reproduce the paper's testbed experiments
//     (Figures 10-12) and measure overhead;
//   - experiment drivers regenerating every table and figure of the
//     paper's evaluation (see experiments.go and EXPERIMENTS.md).
//
// Quick start:
//
//	clos, _ := tagger.NewClos(tagger.ClosConfig{
//		Pods: 2, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 2, HostsPerToR: 4,
//	})
//	elp := tagger.KBounceELP(clos, 1)             // lossless up to 1 bounce
//	sys, _ := tagger.SynthesizeClos(clos, elp, 1) // 2 lossless queues
//	fmt.Println(sys.NumLosslessQueues(), len(sys.Rules.Rules()))
package tagger

import (
	"repro/internal/chaos"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/deploy"
	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/pfc"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/tcam"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Re-exported topology types and constructors.
type (
	// Graph is a data center topology.
	Graph = topology.Graph
	// NodeID identifies a node in a Graph.
	NodeID = topology.NodeID
	// Clos is a built three-layer Clos with its layer rosters.
	Clos = topology.Clos
	// ClosConfig parameterizes NewClos.
	ClosConfig = topology.ClosConfig
	// FatTree is a built k-ary fat-tree.
	FatTree = topology.FatTree
	// BCube is a built BCube(n,k) server-centric topology.
	BCube = topology.BCube
	// Jellyfish is a built random-regular topology.
	Jellyfish = topology.Jellyfish
	// JellyfishConfig parameterizes NewJellyfish.
	JellyfishConfig = topology.JellyfishConfig
)

// NewClos builds a three-layer Clos topology.
func NewClos(cfg ClosConfig) (*Clos, error) { return topology.NewClos(cfg) }

// PaperTestbed returns the Clos of the paper's Figure 2 testbed.
func PaperTestbed() *Clos { return paper.Testbed() }

// NewFatTree builds the classic k-ary fat-tree.
func NewFatTree(k int) (*FatTree, error) { return topology.NewFatTree(k) }

// NewBCube builds BCube(n, k).
func NewBCube(n, k int) (*BCube, error) { return topology.NewBCube(n, k) }

// NewJellyfish builds a Jellyfish random-regular topology.
func NewJellyfish(cfg JellyfishConfig) (*Jellyfish, error) { return topology.NewJellyfish(cfg) }

// Re-exported routing types.
type (
	// Path is a node sequence.
	Path = routing.Path
	// Tables is destination-based forwarding state with ECMP.
	Tables = routing.Tables
)

// Routing disciplines for ComputeRoutes.
const (
	// Shortest computes plain shortest-path forwarding (valleys allowed
	// after failures).
	Shortest = routing.Shortest
	// UpDown computes valley-free forwarding for layered fabrics.
	UpDown = routing.UpDown
)

// ComputeRoutes builds forwarding tables toward every host.
func ComputeRoutes(g *Graph, d routing.Discipline) *Tables {
	return routing.ComputeToHosts(g, d)
}

// ELP is an expected-lossless-path set.
type ELP = elp.Set

// UpDownELP returns all shortest up-down paths between the Clos's ToRs.
func UpDownELP(c *Clos) *ELP { return elp.UpDownAll(c.Graph, c.ToRs) }

// KBounceELP returns all up-to-k-bounce paths between the Clos's ToRs
// (including the shortest up-down paths).
func KBounceELP(c *Clos, k int) *ELP { return elp.KBounce(c.Graph, c.ToRs, k, nil) }

// ELPFromKBounce is KBounceELP for arbitrary layered topologies: all
// up-to-k-bounce paths between the given endpoints (e.g. a fat-tree's
// edge switches).
func ELPFromKBounce(g *Graph, endpoints []NodeID, k int) *ELP {
	return elp.KBounce(g, endpoints, k, nil)
}

// ShortestELP returns one shortest path per ordered switch pair — the
// Table 5 ELP for Jellyfish-like topologies.
func ShortestELP(g *Graph, endpoints []NodeID) *ELP { return elp.ShortestAll(g, endpoints) }

// BCubeELP returns BCube's default-routing path diversity between all
// servers.
func BCubeELP(b *BCube) *ELP { return elp.BCubeELP(b, nil) }

// AddRandomELP adds count random loop-free paths (Table 5's last row).
func AddRandomELP(s *ELP, g *Graph, endpoints []NodeID, count, maxHops int, seed int64) {
	elp.AddRandomPaths(s, g, endpoints, count, maxHops, seed)
}

// HostLevelELP expands a switch-level ELP to host level (NIC-stamped
// deployments); limit bounds hosts per endpoint (0 = all).
func HostLevelELP(g *Graph, s *ELP, limit int) *ELP { return elp.HostLevel(g, s, limit) }

// Re-exported core types: the paper's contribution.
type (
	// System is a synthesized Tagger deployment: rules plus the verified
	// runtime tagged graph.
	System = core.System
	// TaggedGraph is the paper's G(V, E) over (port, tag) vertices.
	TaggedGraph = core.TaggedGraph
	// Ruleset is the per-switch tag rewriting table.
	Ruleset = core.Ruleset
	// Rule is one (tag, InPort, OutPort) -> NewTag entry.
	Rule = core.Rule
	// MultiClassSystem is the §6 multi-application-class composition.
	MultiClassSystem = core.MultiClassSystem
)

// Synthesize runs the generic pipeline (Algorithm 1 + Algorithm 2 + rule
// synthesis + repair + verification) for any topology and ELP.
func Synthesize(g *Graph, paths *ELP) (*System, error) {
	return core.Synthesize(g, paths.Paths(), core.Options{})
}

// SynthesizeBruteForce runs Algorithm 1 only (the ablation baseline: one
// lossless priority per hop of the longest lossless route).
func SynthesizeBruteForce(g *Graph, paths *ELP) (*System, error) {
	return core.Synthesize(g, paths.Paths(), core.Options{SkipMerge: true})
}

// SynthesizeClos runs the topology-specific optimal scheme for layered
// Clos/fat-trees: tags count bounces, k+1 lossless priorities.
func SynthesizeClos(c *Clos, paths *ELP, maxBounces int) (*System, error) {
	return core.ClosSynthesize(c.Graph, paths.Paths(), maxBounces)
}

// SynthesizeFatTree is SynthesizeClos for fat-trees.
func SynthesizeFatTree(ft *FatTree, paths *ELP, maxBounces int) (*System, error) {
	return core.ClosSynthesize(ft.Graph, paths.Paths(), maxBounces)
}

// MinLosslessQueues is the §4.4 lower bound: k-bounce losslessness needs
// at least k+1 lossless priorities.
func MinLosslessQueues(k int) int { return core.MinLosslessQueues(k) }

// Re-exported TCAM model.
type (
	// TCAMEntry is one compressed pattern/mask entry (Figure 9).
	TCAMEntry = tcam.Entry
	// Pipeline is the three-step classification pipeline of §7.
	Pipeline = tcam.Pipeline
)

// CompressRules converts exact rules to compressed TCAM entries.
func CompressRules(rules []Rule) []TCAMEntry { return tcam.Compress(rules) }

// MaxEntriesPerSwitch returns the largest per-ASIC entry count.
func MaxEntriesPerSwitch(entries []TCAMEntry) int { return tcam.MaxPerSwitch(entries) }

// Re-exported simulator.
type (
	// Network is a deterministic packet-level PFC fabric simulation.
	Network = sim.Network
	// SimConfig parameterizes the simulator.
	SimConfig = sim.Config
	// FlowSpec describes one transfer.
	FlowSpec = sim.FlowSpec
	// Flow is a running transfer with statistics.
	Flow = sim.Flow
	// Scenario is a pre-built paper experiment.
	Scenario = workload.Scenario
	// ScenarioOptions selects the Tagger deployment for a scenario.
	ScenarioOptions = workload.Options
)

// NewSimulation builds a simulator over a topology and forwarding tables.
func NewSimulation(g *Graph, tables *Tables, cfg SimConfig) *Network {
	return sim.New(g, tables, cfg)
}

// DefaultSimConfig returns testbed-like simulator parameters.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// DCQCNConfig parameterizes the simulator's congestion control.
type DCQCNConfig = sim.DCQCNConfig

// DefaultDCQCN returns testbed-proportioned congestion control
// parameters.
func DefaultDCQCN() DCQCNConfig { return sim.DefaultDCQCN() }

// RecoveryStats counts what a detect-and-break deadlock recovery scheme
// had to do (the related-work baseline the paper argues against).
type RecoveryStats = sim.RecoveryStats

// WatchdogStats is the continuous deadlock watchdog's tally — the
// chaos-soak verdict.
type WatchdogStats = sim.WatchdogStats

// DeadlockString renders a detected pause-wait cycle for logs.
func DeadlockString(cycle []string) string { return sim.DeadlockString(cycle) }

// Deployment artifacts (§6): serialized bundles and the SDN controller.
type (
	// Bundle is the JSON deployment artifact operators push to switches.
	Bundle = deploy.Bundle
	// ControllerEvent is a topology event delivered to the controller.
	ControllerEvent = controller.Event
	// ControllerEventKind is the typed event discriminator.
	ControllerEventKind = controller.EventKind
	// FabricController owns a fabric's Tagger deployment.
	FabricController = controller.Controller
	// SwitchAgent is the controller's per-switch install RPC surface.
	SwitchAgent = controller.SwitchAgent
	// DeployConfig tunes the controller's retry/backoff/rollback pipeline.
	DeployConfig = controller.DeployConfig
	// AuditEntry is one recorded deployment RPC attempt.
	AuditEntry = controller.AuditEntry
	// ControllerOption customizes controller construction.
	ControllerOption = controller.Option
)

// Typed controller event kinds; a misspelled kind is now a compile error.
const (
	EventLinkDown  = controller.EventLinkDown
	EventLinkUp    = controller.EventLinkUp
	EventExpansion = controller.EventExpansion
)

// ParseControllerEventKind maps a wire name ("link-down", "link-up",
// "expansion") to its typed kind, erroring on unknown names — the
// runtime path for decoded inputs.
func ParseControllerEventKind(s string) (ControllerEventKind, error) {
	return controller.ParseEventKind(s)
}

// WithSwitchAgent points a controller's install RPCs at the given agent.
func WithSwitchAgent(a SwitchAgent) ControllerOption { return controller.WithAgent(a) }

// WithDeployConfig overrides a controller's retry/backoff parameters.
func WithDeployConfig(cfg DeployConfig) ControllerOption { return controller.WithDeployConfig(cfg) }

// DefaultDeployConfig returns the standard pipeline parameters.
func DefaultDeployConfig() DeployConfig { return controller.DefaultDeployConfig() }

// Chaos harness: seeded fault schedules and the unreliable switch fabric.
type (
	// ChaosConfig parameterizes fault-schedule generation.
	ChaosConfig = chaos.Config
	// ChaosSchedule is a seeded, time-sorted fault plan.
	ChaosSchedule = chaos.Schedule
	// ChaosFault is one timed fault event.
	ChaosFault = chaos.Fault
	// ChaosFabric is the unreliable in-memory switch-agent fleet.
	ChaosFabric = chaos.Fabric
)

// Fault kinds for hand-built chaos faults.
const (
	ChaosFaultLinkDown          = chaos.FaultLinkDown
	ChaosFaultLinkUp            = chaos.FaultLinkUp
	ChaosFaultSwitchReboot      = chaos.FaultSwitchReboot
	ChaosFaultRPCDrop           = chaos.FaultRPCDrop
	ChaosFaultRPCDelay          = chaos.FaultRPCDelay
	ChaosFaultRPCDuplicate      = chaos.FaultRPCDuplicate
	ChaosFaultInstallTransient  = chaos.FaultInstallTransient
	ChaosFaultInstallPersistent = chaos.FaultInstallPersistent
	ChaosFaultInstallPartial    = chaos.FaultInstallPartial
	ChaosFaultPass              = chaos.FaultPass
)

// GenerateChaos produces the deterministic fault schedule for (cfg, seed).
func GenerateChaos(cfg ChaosConfig, seed int64) ChaosSchedule { return chaos.Generate(cfg, seed) }

// NewChaosFabric builds an unreliable agent fleet over the named switches.
func NewChaosFabric(switches []string) *ChaosFabric { return chaos.NewFabric(switches) }

// ExportBundle serializes a ruleset for deployment.
func ExportBundle(rs *Ruleset) *Bundle { return deploy.Export(rs) }

// ImportBundle reconstructs a ruleset from a bundle over a topology.
func ImportBundle(g *Graph, b *Bundle) (*Ruleset, error) { return deploy.Import(g, b) }

// UnmarshalBundle parses a serialized deployment bundle.
func UnmarshalBundle(data []byte) (*Bundle, error) { return deploy.Unmarshal(data) }

// DiffBundles computes the per-switch rule changes between deployments.
func DiffBundles(oldB, newB *Bundle) map[string]deploy.SwitchDiff { return deploy.Diff(oldB, newB) }

// NewClosController builds the §6 SDN controller deploying the optimal
// Clos scheme with bounce budget k. Options can point it at an
// unreliable switch fabric and tune the retry pipeline.
func NewClosController(c *Clos, k int, opts ...ControllerOption) (*FabricController, error) {
	return controller.NewClos(c, k, opts...)
}

// Dataplane is the frame-level (§7 Broadcom-style) compiled TCAM fabric.
type Dataplane = dataplane.Fabric

// CompileDataplane compiles every switch's TCAM from a ruleset.
func CompileDataplane(g *Graph, rs *Ruleset) *Dataplane { return dataplane.Compile(g, rs) }

// ChipSpec describes an ASIC for the §3.3 lossless-queue budget analysis.
type ChipSpec = pfc.ChipSpec

// Tomahawk40G and Tomahawk100G approximate two switch generations.
func Tomahawk40G() ChipSpec  { return pfc.Tomahawk40G() }
func Tomahawk100G() ChipSpec { return pfc.Tomahawk100G() }
