// Package sweep fans independent seeded simulation runs across a bounded
// worker pool. It is the multi-run counterpart of internal/parallel's
// shard fan-out, with the same determinism discipline: every run is
// isolated (its own Network, its own telemetry.Registry), workers write
// only their own result slot, and post-run aggregation — result order,
// error selection, telemetry merging — happens in seed order on the
// caller's goroutine. par=1 and par=N are therefore observably identical,
// and par=1 runs inline with zero scheduling overhead (the legacy serial
// path, kept exercised by the -race determinism gate).
package sweep

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Seeds returns the n consecutive seeds starting at first — the standard
// sweep domain (seeds 1..n for first=1).
func Seeds(first int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = first + int64(i)
	}
	return out
}

// PanicError is a run body's panic converted to a seed-attributed
// error. A panicking seed must not kill the whole sweep — on the
// worker-pool path it would take the process down with a goroutine
// backtrace that names no seed; here it costs one result slot and
// carries the seed, the panic value and the stack of the panicking
// goroutine, and the other seeds complete normally.
type PanicError struct {
	Seed  int64
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: seed %d panicked: %v", e.Seed, e.Value)
}

// guard runs fn(i, seed) converting a panic into a *PanicError.
func guard[T any](i int, seed int64, fn func(i int, seed int64) (T, error)) (result T, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Seed: seed, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i, seed)
}

// run is the shared worker pool: fn fills slot i for seeds[i]. It
// returns the per-seed error slots so callers choose their own error
// policy (Run reports the first in seed order, RunMerged also counts).
// Panics in fn are recovered into *PanicError slots on both paths, so
// the serial and parallel failure behavior is identical.
func run[T any](seeds []int64, par int, fn func(i int, seed int64) (T, error)) ([]T, []error) {
	results := make([]T, len(seeds))
	errs := make([]error, len(seeds))
	workers := parallel.Workers(par, len(seeds))
	if workers <= 1 {
		for i, seed := range seeds {
			results[i], errs[i] = guard(i, seed, fn)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = guard(i, seeds[i], fn)
				}
			}()
		}
		for i := range seeds {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	return results, errs
}

// firstError returns the first non-nil error in seed order.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes fn once per seed on min(par, len(seeds)) workers (par <= 0
// means GOMAXPROCS) and returns the results in seed order. Every seed
// runs regardless of other seeds' failures; the returned error is the
// first failure in seed order (deterministic — never "whichever worker
// lost the race"), with the corresponding zero-valued results left in
// place.
func Run[T any](seeds []int64, par int, fn func(seed int64) (T, error)) ([]T, error) {
	results, errs := run(seeds, par, func(_ int, seed int64) (T, error) { return fn(seed) })
	return results, firstError(errs)
}

// RunMerged is Run for instrumented sweeps: each run receives a private
// telemetry.Registry (nil when reg is nil, preserving the uninstrumented
// fast path), and after every run completes the private registries merge
// into reg in seed order. Counters and histograms are commutative, so the
// merged aggregate is identical for par=1 and par=N.
//
// Unlike Run, a failure does not hide later ones: when any seed fails,
// the returned error carries the total failed-seed count alongside the
// first failure in seed order (unwrappable via errors.Is/As), and the
// aggregate registry (when non-nil) gains "sweep.seeds" and
// "sweep.seed_failures" counters — so a long churn soak that loses 30
// seeds reads as 30, not as 1.
func RunMerged[T any](seeds []int64, par int, reg *telemetry.Registry,
	fn func(seed int64, reg *telemetry.Registry) (T, error)) ([]T, error) {
	regs := make([]*telemetry.Registry, len(seeds))
	if reg != nil {
		for i := range regs {
			regs[i] = telemetry.NewRegistry()
		}
	}
	results, errs := run(seeds, par, func(i int, seed int64) (T, error) {
		return fn(seed, regs[i])
	})
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if reg != nil {
		for _, r := range regs {
			reg.Merge(r.Snapshot())
		}
		reg.Counter("sweep.seeds").Add(int64(len(seeds)))
		reg.Counter("sweep.seed_failures").Add(int64(failed))
	}
	err := firstError(errs)
	if failed > 1 {
		err = fmt.Errorf("sweep: %d of %d seeds failed; first: %w", failed, len(seeds), err)
	}
	return results, err
}
