package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

func TestSeeds(t *testing.T) {
	if got, want := Seeds(3, 4), []int64{3, 4, 5, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("Seeds(3,4) = %v, want %v", got, want)
	}
	if got := Seeds(1, 0); len(got) != 0 {
		t.Errorf("Seeds(1,0) = %v, want empty", got)
	}
}

// TestRunSeedOrder: results come back in seed order for every worker
// count, including par > len(seeds) and the inline par=1 path.
func TestRunSeedOrder(t *testing.T) {
	seeds := Seeds(10, 25)
	for _, par := range []int{1, 2, 7, 64, 0} {
		got, err := Run(seeds, par, func(seed int64) (int64, error) { return seed * seed, nil })
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, seed := range seeds {
			if got[i] != seed*seed {
				t.Fatalf("par=%d: slot %d = %d, want %d", par, i, got[i], seed*seed)
			}
		}
	}
}

// TestRunFirstErrorBySeedOrder: the reported error is the failing run
// with the lowest seed index, not whichever worker finished first, and
// every seed still runs.
func TestRunFirstErrorBySeedOrder(t *testing.T) {
	seeds := Seeds(1, 16)
	var ran atomic.Int64
	_, err := Run(seeds, 4, func(seed int64) (int, error) {
		ran.Add(1)
		if seed%5 == 0 {
			return 0, fmt.Errorf("seed %d failed", seed)
		}
		return int(seed), nil
	})
	if err == nil || err.Error() != "seed 5 failed" {
		t.Errorf("err = %v, want the seed-5 failure (first in seed order)", err)
	}
	if ran.Load() != int64(len(seeds)) {
		t.Errorf("ran %d of %d seeds; a failure must not cancel the sweep", ran.Load(), len(seeds))
	}
}

// TestRunMergedTelemetryParIndependent: the merged registry aggregate is
// identical for par=1 and par=N — counters sum, and the
// last-merge-wins gauge resolves by seed order, not completion order.
func TestRunMergedTelemetryParIndependent(t *testing.T) {
	seeds := Seeds(1, 9)
	runOne := func(par int) telemetry.Snapshot {
		reg := telemetry.NewRegistry()
		_, err := RunMerged(seeds, par, reg, func(seed int64, r *telemetry.Registry) (struct{}, error) {
			r.Counter("runs_total").Add(seed)
			r.Gauge("last_seed").Set(float64(seed))
			r.Histogram("seed_hist", []float64{5, 10}).Observe(float64(seed))
			return struct{}{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	serial := runOne(1)
	for _, par := range []int{3, 0} {
		if got := runOne(par); !reflect.DeepEqual(got, serial) {
			t.Errorf("par=%d merged telemetry diverges from serial:\n got %+v\nwant %+v", par, got, serial)
		}
	}
	// Sanity: the aggregate actually saw every run.
	if v := serial.Counters[0].Value; v != 45 {
		t.Errorf("runs_total = %d, want 45", v)
	}
	if v := serial.Gauges[0].Value; v != 9 {
		t.Errorf("last_seed = %v, want 9 (highest seed merges last)", v)
	}
}

// TestRunMergedCountsFailures: a multi-failure sweep surfaces the total
// failed-seed count in the error (with the first failure unwrappable)
// and in the aggregate registry's counters, instead of silently hiding
// every failure after the first.
func TestRunMergedCountsFailures(t *testing.T) {
	seeds := Seeds(1, 16)
	sentinel := errors.New("boom")
	reg := telemetry.NewRegistry()
	_, err := RunMerged(seeds, 4, reg, func(seed int64, r *telemetry.Registry) (int, error) {
		if seed%5 == 0 {
			return 0, fmt.Errorf("seed %d: %w", seed, sentinel)
		}
		return int(seed), nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the wrapped first failure", err)
	}
	want := "sweep: 3 of 16 seeds failed; first: seed 5: boom"
	if err.Error() != want {
		t.Errorf("err = %q, want %q", err, want)
	}
	counters := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters["sweep.seeds"] != 16 || counters["sweep.seed_failures"] != 3 {
		t.Errorf("counters = %v, want sweep.seeds=16 sweep.seed_failures=3", counters)
	}

	// A single failure keeps the bare error (no redundant "1 of N" wrap).
	_, err = RunMerged(seeds, 1, nil, func(seed int64, r *telemetry.Registry) (int, error) {
		if seed == 7 {
			return 0, fmt.Errorf("seed 7 failed")
		}
		return 0, nil
	})
	if err == nil || err.Error() != "seed 7 failed" {
		t.Errorf("single-failure err = %v, want the bare seed-7 failure", err)
	}
}

// TestRunMergedNilRegistry: a nil aggregate registry keeps the
// uninstrumented path — callbacks receive nil.
func TestRunMergedNilRegistry(t *testing.T) {
	_, err := RunMerged(Seeds(1, 4), 2, nil, func(seed int64, r *telemetry.Registry) (int, error) {
		if r != nil {
			return 0, errors.New("expected nil per-run registry")
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunMergedPanicRecovery: a run body that panics costs its own
// result slot, not the sweep. The failure surfaces as a seed-attributed
// *PanicError (with a stack), the other seeds complete, and the
// behavior is identical on the serial and worker-pool paths.
func TestRunMergedPanicRecovery(t *testing.T) {
	for _, par := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		results, err := RunMerged(Seeds(1, 8), par, reg,
			func(seed int64, r *telemetry.Registry) (int64, error) {
				if seed == 5 {
					panic(fmt.Sprintf("injected failure for seed %d", seed))
				}
				r.Counter("runs").Inc()
				return seed * 10, nil
			})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("par=%d: err = %v, want a *PanicError", par, err)
		}
		if pe.Seed != 5 {
			t.Errorf("par=%d: PanicError.Seed = %d, want 5", par, pe.Seed)
		}
		if want := "injected failure for seed 5"; pe.Value != want {
			t.Errorf("par=%d: PanicError.Value = %v, want %q", par, pe.Value, want)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("par=%d: PanicError.Stack is empty", par)
		}
		for i, got := range results {
			want := (int64(i) + 1) * 10
			if i == 4 {
				want = 0 // the panicked slot stays zero-valued
			}
			if got != want {
				t.Errorf("par=%d: results[%d] = %d, want %d", par, i, got, want)
			}
		}
		if got := reg.Counter("runs").Value(); got != 7 {
			t.Errorf("par=%d: completed runs = %d, want 7", par, got)
		}
		if got := reg.Counter("sweep.seed_failures").Value(); got != 1 {
			t.Errorf("par=%d: seed_failures = %d, want 1", par, got)
		}
	}
}

// TestRunPanicRecovery: the plain Run path gets the same conversion.
func TestRunPanicRecovery(t *testing.T) {
	results, err := Run(Seeds(1, 3), 1, func(seed int64) (int, error) {
		if seed == 2 {
			panic("boom")
		}
		return int(seed), nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PanicError", err)
	}
	if pe.Seed != 2 {
		t.Errorf("PanicError.Seed = %d, want 2", pe.Seed)
	}
	if results[0] != 1 || results[1] != 0 || results[2] != 3 {
		t.Errorf("results = %v, want [1 0 3]", results)
	}
}
