package chaos

import (
	"fmt"
	"math/rand"
)

// Churn events are topology-intent changes (as opposed to the Fault
// taxonomy, which models things breaking): links going down and coming
// back, switches draining for maintenance and returning, pods being
// added. The churn controller and the check package's churn fuzzer both
// consume sequences of these.

// ChurnKind discriminates churn events.
type ChurnKind int

const (
	// ChurnLinkDown takes the A-B link out of service.
	ChurnLinkDown ChurnKind = iota + 1
	// ChurnLinkUp returns the A-B link to service.
	ChurnLinkUp
	// ChurnDrain removes expected lossless traffic from Switch.
	ChurnDrain
	// ChurnUndrain returns Switch to service.
	ChurnUndrain
	// ChurnPodAdd expands the topology by one pod.
	ChurnPodAdd
)

// String names the kind.
func (k ChurnKind) String() string {
	switch k {
	case ChurnLinkDown:
		return "link-down"
	case ChurnLinkUp:
		return "link-up"
	case ChurnDrain:
		return "switch-drain"
	case ChurnUndrain:
		return "switch-undrain"
	case ChurnPodAdd:
		return "pod-add"
	default:
		return fmt.Sprintf("ChurnKind(%d)", int(k))
	}
}

// ChurnEvent is one churn step. Link events use A/B, drain events use
// Switch, pod adds use neither.
type ChurnEvent struct {
	Kind   ChurnKind
	A, B   string
	Switch string
}

// String renders one event.
func (e ChurnEvent) String() string {
	switch e.Kind {
	case ChurnLinkDown, ChurnLinkUp:
		return fmt.Sprintf("%s %s-%s", e.Kind, e.A, e.B)
	case ChurnDrain, ChurnUndrain:
		return fmt.Sprintf("%s %s", e.Kind, e.Switch)
	default:
		return e.Kind.String()
	}
}

// ChurnConfig parameterizes churn-sequence generation.
type ChurnConfig struct {
	// Links are the candidate links, as endpoint name pairs.
	Links [][2]string
	// Switches are the candidate drain targets.
	Switches []string
	// Events is the sequence length to generate.
	Events int
	// PodAdds caps how many pod expansions to interleave (0 = none).
	PodAdds int
	// MaxDownLinks / MaxDrained bound how much of the fabric may be out
	// at once. Zero defaults to a quarter of the candidates plus one.
	MaxDownLinks, MaxDrained int
}

// GenerateChurn produces a deterministic, *applicable* churn sequence
// for (cfg, seed): the generator tracks which links are down and which
// switches are drained, so it never downs a down link or undrains a
// healthy switch, and recovery events are biased 2:1 so sequences
// interleave outage and repair rather than monotonically degrading.
func GenerateChurn(cfg ChurnConfig, seed int64) []ChurnEvent {
	rng := rand.New(rand.NewSource(seed))
	maxDown := cfg.MaxDownLinks
	if maxDown <= 0 {
		maxDown = len(cfg.Links)/4 + 1
	}
	maxDrained := cfg.MaxDrained
	if maxDrained <= 0 {
		maxDrained = len(cfg.Switches)/4 + 1
	}
	down := make(map[int]bool)
	drained := make(map[int]bool)
	podsLeft := cfg.PodAdds

	// pick returns a random element of the index set {0..n-1} minus the
	// excluded set (in==false) or intersected with it (in==true), walking
	// indices in order so the choice is deterministic for a fixed rng.
	pick := func(n int, set map[int]bool, in bool) int {
		var cand []int
		for i := 0; i < n; i++ {
			if set[i] == in {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			return -1
		}
		return cand[rng.Intn(len(cand))]
	}

	var out []ChurnEvent
	for len(out) < cfg.Events {
		var kinds []ChurnKind
		if len(down) < maxDown && len(down) < len(cfg.Links) {
			kinds = append(kinds, ChurnLinkDown)
		}
		if len(down) > 0 {
			kinds = append(kinds, ChurnLinkUp, ChurnLinkUp)
		}
		if len(drained) < maxDrained && len(drained) < len(cfg.Switches) {
			kinds = append(kinds, ChurnDrain)
		}
		if len(drained) > 0 {
			kinds = append(kinds, ChurnUndrain, ChurnUndrain)
		}
		if podsLeft > 0 {
			kinds = append(kinds, ChurnPodAdd)
		}
		if len(kinds) == 0 {
			break
		}
		switch kinds[rng.Intn(len(kinds))] {
		case ChurnLinkDown:
			i := pick(len(cfg.Links), down, false)
			down[i] = true
			out = append(out, ChurnEvent{Kind: ChurnLinkDown, A: cfg.Links[i][0], B: cfg.Links[i][1]})
		case ChurnLinkUp:
			i := pick(len(cfg.Links), down, true)
			delete(down, i)
			out = append(out, ChurnEvent{Kind: ChurnLinkUp, A: cfg.Links[i][0], B: cfg.Links[i][1]})
		case ChurnDrain:
			i := pick(len(cfg.Switches), drained, false)
			drained[i] = true
			out = append(out, ChurnEvent{Kind: ChurnDrain, Switch: cfg.Switches[i]})
		case ChurnUndrain:
			i := pick(len(cfg.Switches), drained, true)
			delete(drained, i)
			out = append(out, ChurnEvent{Kind: ChurnUndrain, Switch: cfg.Switches[i]})
		case ChurnPodAdd:
			podsLeft--
			out = append(out, ChurnEvent{Kind: ChurnPodAdd})
		}
	}
	return out
}
