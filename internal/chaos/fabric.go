package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/deploy"
)

// Fabric is an in-memory fleet of unreliable switch rule agents. It
// implements the controller's SwitchAgent interface (Install / Fetch /
// Activate) and misbehaves according to per-switch fault queues loaded
// from a Schedule or injected directly.
//
// Each switch holds two bundle slots, STAGED and ACTIVE, mirroring the
// two-phase deployment protocol. Faults are consumed one per RPC in
// queue order, so a run against a fixed schedule and a fixed RPC
// sequence is fully deterministic.
type Fabric struct {
	mu sync.Mutex
	sw map[string]*swState

	// RPCTimeout is the deadline the control channel enforces; a delayed
	// reply beyond it surfaces as a timeout error even though the op was
	// applied (the caller must re-push idempotently). Default 50ms.
	RPCTimeout time.Duration

	calls int64
}

type swState struct {
	staged    deploy.SwitchBundle
	active    deploy.SwitchBundle
	hasStaged bool
	reboots   int
	queue     []Fault
}

// NewFabric builds a fabric with an agent per named switch and no
// faults queued.
func NewFabric(switches []string) *Fabric {
	f := &Fabric{sw: make(map[string]*swState), RPCTimeout: 50 * time.Millisecond}
	for _, name := range switches {
		f.sw[name] = &swState{}
	}
	return f
}

// Add registers agents for newly racked switches (e.g. after a pod
// expansion). Existing switches keep their state.
func (f *Fabric) Add(switches ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, name := range switches {
		if _, ok := f.sw[name]; !ok {
			f.sw[name] = &swState{}
		}
	}
}

// Load queues every agent-visible fault of the schedule onto its target
// switch, in time order. Link faults are not agent faults; the caller
// feeds those to the simulator.
func (f *Fabric) Load(s Schedule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fault := range s.AgentFaults() {
		if st, ok := f.sw[fault.Switch]; ok {
			st.queue = append(st.queue, fault)
		}
	}
}

// Inject appends faults to one switch's queue — the scripted hook for
// tests and examples.
func (f *Fabric) Inject(sw string, faults ...Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.sw[sw]
	if !ok {
		panic(fmt.Sprintf("chaos: unknown switch %q", sw))
	}
	st.queue = append(st.queue, faults...)
}

// state looks up a switch or errors like a dead control channel would.
func (f *Fabric) state(sw string) (*swState, error) {
	st, ok := f.sw[sw]
	if !ok {
		return nil, fmt.Errorf("chaos: no agent for switch %q", sw)
	}
	return st, nil
}

// roll consumes the head fault of sw's queue for the given op. It
// returns (applyTimes, partialFrac, err): applyTimes is how many times
// the op should be applied (0 = request lost, 2 = duplicated, -1 = apply
// a partial install keeping partialFrac of the rules), err is the error
// the caller sees (the op may still have been applied — that is the
// point).
func (f *Fabric) roll(st *swState, install bool) (int, float64, error) {
	if len(st.queue) == 0 {
		return 1, 0, nil
	}
	head := &st.queue[0]
	pop := func() { st.queue = st.queue[1:] }
	switch head.Kind {
	case FaultInstallPartial:
		if !install {
			return 1, 0, nil // partial faults wait for the next install RPC
		}
		frac := head.Frac
		pop()
		return -1, frac, nil
	case FaultInstallTransient, FaultInstallPersistent:
		kind := head.Kind
		head.Count--
		if head.Count <= 0 {
			pop()
		}
		return 0, 0, fmt.Errorf("agent busy (%s)", kind)
	case FaultRPCDrop:
		pop()
		return 0, 0, fmt.Errorf("rpc timeout: request lost")
	case FaultRPCDelay:
		d := head.Delay
		pop()
		if d > f.RPCTimeout {
			return 1, 0, fmt.Errorf("rpc timeout after %v (op applied)", f.RPCTimeout)
		}
		return 1, 0, nil
	case FaultRPCDuplicate:
		pop()
		return 2, 0, nil
	case FaultSwitchReboot:
		pop()
		st.staged, st.active = deploy.SwitchBundle{}, deploy.SwitchBundle{}
		st.hasStaged = false
		st.reboots++
		return 0, 0, fmt.Errorf("connection reset: switch rebooting")
	default:
		pop()
		return 1, 0, nil
	}
}

// Install implements SwitchAgent: stage b on sw, subject to faults.
func (f *Fabric) Install(sw string, b deploy.SwitchBundle) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	st, err := f.state(sw)
	if err != nil {
		return err
	}
	times, frac, ferr := f.roll(st, true)
	if times == -1 {
		// Partial install: only a prefix of the bundle lands, and the
		// agent reports success — silent corruption for readback to catch.
		keep := int(float64(len(b.Rules)) * frac)
		if keep >= len(b.Rules) && len(b.Rules) > 0 {
			keep = len(b.Rules) - 1
		}
		st.staged = deploy.SwitchBundle{Rules: append([]deploy.RuleJSON(nil), b.Rules[:keep]...)}
		st.hasStaged = true
		return nil
	}
	for i := 0; i < times; i++ {
		st.staged = deploy.SwitchBundle{Rules: append([]deploy.RuleJSON(nil), b.Rules...)}
		st.hasStaged = true
	}
	return ferr
}

// Fetch implements SwitchAgent: read back the staged bundle.
func (f *Fabric) Fetch(sw string) (deploy.SwitchBundle, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	st, err := f.state(sw)
	if err != nil {
		return deploy.SwitchBundle{}, err
	}
	times, _, ferr := f.roll(st, false)
	if times == 0 && ferr != nil {
		return deploy.SwitchBundle{}, ferr
	}
	out := deploy.SwitchBundle{Rules: append([]deploy.RuleJSON(nil), st.staged.Rules...)}
	return out, ferr
}

// Activate implements SwitchAgent: promote staged to active atomically.
// Activating with nothing staged (a rebooted switch) is an error, never
// a silent wipe of the live rules.
func (f *Fabric) Activate(sw string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	st, err := f.state(sw)
	if err != nil {
		return err
	}
	times, _, ferr := f.roll(st, false)
	for i := 0; i < times; i++ {
		if !st.hasStaged {
			return fmt.Errorf("nothing staged on %s", sw)
		}
		st.active = deploy.SwitchBundle{Rules: append([]deploy.RuleJSON(nil), st.staged.Rules...)}
	}
	return ferr
}

// FetchActive implements the controller's DeltaAgent read side: the
// currently ACTIVE bundle, subject to the same control-channel faults as
// Fetch.
func (f *Fabric) FetchActive(sw string) (deploy.SwitchBundle, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	st, err := f.state(sw)
	if err != nil {
		return deploy.SwitchBundle{}, err
	}
	times, _, ferr := f.roll(st, false)
	if times == 0 && ferr != nil {
		return deploy.SwitchBundle{}, ferr
	}
	return deploy.SwitchBundle{Rules: append([]deploy.RuleJSON(nil), st.active.Rules...)}, ferr
}

// Patch implements the controller's DeltaAgent write side: stage the
// result of applying d to the ACTIVE bundle. Like Install it is subject
// to install-class faults — a partial patch silently stages only a prefix
// of the patched table, which readback verification must catch.
func (f *Fabric) Patch(sw string, d deploy.SwitchDiff) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	st, err := f.state(sw)
	if err != nil {
		return err
	}
	times, frac, ferr := f.roll(st, true)
	if times == -1 {
		full := deploy.ApplyDelta(st.active, d)
		keep := int(float64(len(full.Rules)) * frac)
		if keep >= len(full.Rules) && len(full.Rules) > 0 {
			keep = len(full.Rules) - 1
		}
		st.staged = deploy.SwitchBundle{Rules: full.Rules[:keep]}
		st.hasStaged = true
		return nil
	}
	for i := 0; i < times; i++ {
		st.staged = deploy.ApplyDelta(st.active, d)
		st.hasStaged = true
	}
	return ferr
}

// Reboot wipes a switch's staged and active rule state immediately — the
// agent-level effect of a power cycle, for scenarios that couple fabric
// reboots to simulator reboots.
func (f *Fabric) Reboot(sw string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st, ok := f.sw[sw]; ok {
		st.staged, st.active = deploy.SwitchBundle{}, deploy.SwitchBundle{}
		st.hasStaged = false
		st.reboots++
	}
}

// Active returns a copy of sw's live bundle.
func (f *Fabric) Active(sw string) deploy.SwitchBundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.sw[sw]
	if !ok {
		return deploy.SwitchBundle{}
	}
	return deploy.SwitchBundle{Rules: append([]deploy.RuleJSON(nil), st.active.Rules...)}
}

// ActiveBundle assembles the fabric-wide live deployment: what the
// switches are actually running, as opposed to what the controller
// believes it pushed. Switches with no active rules are omitted.
func (f *Fabric) ActiveBundle(maxTag int) *deploy.Bundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := &deploy.Bundle{MaxTag: maxTag, Switches: make(map[string]deploy.SwitchBundle)}
	for name, st := range f.sw {
		if len(st.active.Rules) == 0 {
			continue
		}
		b.Switches[name] = deploy.SwitchBundle{Rules: append([]deploy.RuleJSON(nil), st.active.Rules...)}
	}
	return b
}

// Calls returns the total RPCs the fabric has served.
func (f *Fabric) Calls() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// PendingFaults returns how many faults remain queued across the fabric.
func (f *Fabric) PendingFaults() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, st := range f.sw {
		n += len(st.queue)
	}
	return n
}
