package chaos

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/deploy"
)

func testConfig() Config {
	return Config{
		Duration:      40 * time.Millisecond,
		Links:         [][2]string{{"L1", "T1"}, {"L3", "T4"}, {"L2", "T2"}},
		Switches:      []string{"T1", "T2", "L1", "L3", "S1"},
		LinkFlaps:     4,
		Reboots:       2,
		InstallFaults: 3,
		RPCFaults:     3,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testConfig(), 11)
	b := Generate(testConfig(), 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Generate(testConfig(), 12)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateShape(t *testing.T) {
	s := Generate(testConfig(), 3)
	if got, want := len(s.LinkFaults()), 8; got != want {
		t.Errorf("link faults = %d, want %d (4 flaps, paired)", got, want)
	}
	if got := len(s.Reboots()); got != 2 {
		t.Errorf("reboots = %d", got)
	}
	for i := 1; i < len(s.Faults); i++ {
		if s.Faults[i].At < s.Faults[i-1].At {
			t.Fatal("schedule not time-sorted")
		}
	}
	downs := map[string]time.Duration{}
	for _, f := range s.LinkFaults() {
		key := f.A + "-" + f.B
		switch f.Kind {
		case FaultLinkDown:
			downs[key] = f.At
		case FaultLinkUp:
			if at, ok := downs[key]; ok && f.At <= at {
				t.Errorf("flap %s repairs before it fails", key)
			}
		}
		if f.At > s.Duration {
			t.Errorf("fault beyond horizon: %v", f)
		}
	}
}

func bundle(n int) deploy.SwitchBundle {
	b := deploy.SwitchBundle{}
	for i := 0; i < n; i++ {
		b.Rules = append(b.Rules, deploy.RuleJSON{Tag: 1, In: i, Out: i + 1, NewTag: 2})
	}
	return b
}

func TestFabricDropLosesRequest(t *testing.T) {
	f := NewFabric([]string{"A"})
	f.Inject("A", Fault{Kind: FaultRPCDrop})
	if err := f.Install("A", bundle(3)); err == nil {
		t.Fatal("dropped request reported success")
	}
	got, err := f.Fetch("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rules) != 0 {
		t.Fatal("dropped install still staged rules")
	}
}

func TestFabricDelayAppliesButTimesOut(t *testing.T) {
	f := NewFabric([]string{"A"})
	f.Inject("A", Fault{Kind: FaultRPCDelay, Delay: time.Hour})
	if err := f.Install("A", bundle(3)); err == nil {
		t.Fatal("over-deadline delay reported success")
	}
	got, err := f.Fetch("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rules) != 3 {
		t.Fatalf("delayed install should have applied; staged %d rules", len(got.Rules))
	}
	// A short delay is invisible.
	f.Inject("A", Fault{Kind: FaultRPCDelay, Delay: time.Millisecond})
	if err := f.Install("A", bundle(2)); err != nil {
		t.Fatal(err)
	}
}

func TestFabricTransientCountsDown(t *testing.T) {
	f := NewFabric([]string{"A"})
	f.Inject("A", Fault{Kind: FaultInstallTransient, Count: 2})
	if err := f.Install("A", bundle(1)); err == nil {
		t.Fatal("1st call should fail")
	}
	if err := f.Install("A", bundle(1)); err == nil {
		t.Fatal("2nd call should fail")
	}
	if err := f.Install("A", bundle(1)); err != nil {
		t.Fatalf("3rd call should pass: %v", err)
	}
}

func TestFabricPartialKeepsPrefixAndWaitsForInstall(t *testing.T) {
	f := NewFabric([]string{"A"})
	f.Inject("A", Fault{Kind: FaultInstallPartial, Frac: 0.5})
	// A partial fault must not fire on a Fetch.
	if _, err := f.Fetch("A"); err != nil {
		t.Fatal(err)
	}
	if err := f.Install("A", bundle(4)); err != nil {
		t.Fatalf("partial install must report success (that is the danger): %v", err)
	}
	got, err := f.Fetch("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rules) != 2 {
		t.Fatalf("staged %d rules, want prefix of 2", len(got.Rules))
	}
	// Even Frac 1.0 must land strictly fewer rules than pushed.
	f.Inject("A", Fault{Kind: FaultInstallPartial, Frac: 1.0})
	if err := f.Install("A", bundle(4)); err != nil {
		t.Fatal(err)
	}
	got, _ = f.Fetch("A")
	if len(got.Rules) >= 4 {
		t.Fatalf("partial with Frac=1 staged all %d rules", len(got.Rules))
	}
}

func TestFabricRebootWipesAndActivateRefuses(t *testing.T) {
	f := NewFabric([]string{"A"})
	if err := f.Install("A", bundle(3)); err != nil {
		t.Fatal(err)
	}
	if err := f.Activate("A"); err != nil {
		t.Fatal(err)
	}
	if len(f.Active("A").Rules) != 3 {
		t.Fatal("activation lost rules")
	}
	f.Reboot("A")
	if len(f.Active("A").Rules) != 0 {
		t.Fatal("reboot kept active rules")
	}
	if err := f.Activate("A"); err == nil {
		t.Fatal("activate with nothing staged must refuse, not wipe live rules")
	}
}

func TestFabricDuplicateIsIdempotent(t *testing.T) {
	f := NewFabric([]string{"A"})
	f.Inject("A", Fault{Kind: FaultRPCDuplicate})
	if err := f.Install("A", bundle(3)); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Fetch("A")
	if len(got.Rules) != 3 {
		t.Fatalf("duplicated install corrupted staged state: %d rules", len(got.Rules))
	}
}

func TestActiveBundleAssemblesLiveState(t *testing.T) {
	f := NewFabric([]string{"A", "B"})
	if err := f.Install("A", bundle(2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Activate("A"); err != nil {
		t.Fatal(err)
	}
	if err := f.Install("B", bundle(5)); err != nil {
		t.Fatal(err)
	}
	// B staged but never activated: must not appear live.
	live := f.ActiveBundle(2)
	if len(live.Switches) != 1 || len(live.Switches["A"].Rules) != 2 {
		t.Fatalf("live bundle wrong: %+v", live.Switches)
	}
}

func TestLoadRoutesAgentFaults(t *testing.T) {
	s := Generate(testConfig(), 5)
	f := NewFabric(testConfig().Switches)
	f.Load(s)
	if want := len(s.AgentFaults()); f.PendingFaults() != want {
		t.Errorf("loaded %d faults, want %d", f.PendingFaults(), want)
	}
}
