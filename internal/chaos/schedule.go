// Package chaos is the deterministic fault-injection harness: a seeded
// generator of timed fault schedules (link flaps, switch reboots,
// control-channel pathologies, rule-install failures) and an unreliable
// in-memory switch-agent fabric driven by those schedules.
//
// Determinism contract: the same Config and seed produce byte-identical
// schedules, and a fabric replaying a schedule against the same RPC
// sequence produces the same outcomes — so every chaos soak verdict and
// every controller audit log is exactly reproducible from its seed.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// FaultKind discriminates the fault taxonomy.
type FaultKind int

const (
	// FaultLinkDown takes a link out of service at At.
	FaultLinkDown FaultKind = iota + 1
	// FaultLinkUp returns a link to service at At (generated paired with
	// FaultLinkDown — a flap).
	FaultLinkUp
	// FaultSwitchReboot power-cycles a switch: all queue/buffer state and
	// any staged or active agent rules are lost.
	FaultSwitchReboot
	// FaultRPCDrop loses one control-channel request: the op is not
	// applied and the caller sees a timeout.
	FaultRPCDrop
	// FaultRPCDelay delays one control-channel reply by Delay; the op IS
	// applied, and if Delay exceeds the agent's RPC timeout the caller
	// sees a timeout anyway — the idempotent-re-push case.
	FaultRPCDelay
	// FaultRPCDuplicate applies one control-channel request twice.
	FaultRPCDuplicate
	// FaultInstallTransient fails the next Count RPCs to a switch, then
	// recovers.
	FaultInstallTransient
	// FaultInstallPersistent is FaultInstallTransient with a count sized
	// to outlast a default retry budget.
	FaultInstallPersistent
	// FaultInstallPartial silently stages only a prefix of the pushed
	// SwitchBundle (Frac of its rules) while reporting success — the
	// failure mode readback verification exists for.
	FaultInstallPartial
	// FaultPass consumes one RPC without injecting anything — a spacer
	// that lets scripted tests aim a later fault at a specific RPC in the
	// install/fetch/activate sequence. Generate never emits it.
	FaultPass
)

// String names the kind for logs and audit output.
func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultSwitchReboot:
		return "switch-reboot"
	case FaultRPCDrop:
		return "rpc-drop"
	case FaultRPCDelay:
		return "rpc-delay"
	case FaultRPCDuplicate:
		return "rpc-duplicate"
	case FaultInstallTransient:
		return "install-transient"
	case FaultInstallPersistent:
		return "install-persistent"
	case FaultInstallPartial:
		return "install-partial"
	case FaultPass:
		return "pass"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one timed fault event. Fields beyond At/Kind are a union:
// link faults use A/B, switch-scoped faults use Switch plus the
// kind-specific parameters.
type Fault struct {
	At   time.Duration
	Kind FaultKind

	// A, B name the link endpoints for link faults.
	A, B string
	// Switch names the target for reboot/RPC/install faults.
	Switch string
	// Count is the number of consecutive failing RPCs for
	// transient/persistent install faults.
	Count int
	// Frac is the fraction of rules that land for a partial install.
	Frac float64
	// Delay is the reply delay for FaultRPCDelay.
	Delay time.Duration
}

// String renders one schedule line.
func (f Fault) String() string {
	switch f.Kind {
	case FaultLinkDown, FaultLinkUp:
		return fmt.Sprintf("%8v %s %s-%s", f.At, f.Kind, f.A, f.B)
	case FaultInstallTransient, FaultInstallPersistent:
		return fmt.Sprintf("%8v %s %s x%d", f.At, f.Kind, f.Switch, f.Count)
	case FaultInstallPartial:
		return fmt.Sprintf("%8v %s %s keep=%.0f%%", f.At, f.Kind, f.Switch, 100*f.Frac)
	case FaultPass:
		return fmt.Sprintf("%8v %s %s", f.At, "pass", f.Switch)
	case FaultRPCDelay:
		return fmt.Sprintf("%8v %s %s delay=%v", f.At, f.Kind, f.Switch, f.Delay)
	default:
		return fmt.Sprintf("%8v %s %s", f.At, f.Kind, f.Switch)
	}
}

// Schedule is a seeded, time-sorted fault plan.
type Schedule struct {
	Seed     int64
	Duration time.Duration
	Faults   []Fault
}

// Config parameterizes schedule generation.
type Config struct {
	// Duration is the soak horizon faults are placed within.
	Duration time.Duration
	// Links are the candidate links to flap, as endpoint name pairs.
	Links [][2]string
	// Switches are the candidate targets for reboots and agent faults.
	Switches []string
	// LinkFlaps, Reboots, InstallFaults and RPCFaults count how many of
	// each class to generate.
	LinkFlaps     int
	Reboots       int
	InstallFaults int
	RPCFaults     int
	// MinDown/MaxDown bound a flap's outage window; zero values default
	// to Duration/8 and Duration/3.
	MinDown, MaxDown time.Duration
	// RPCTimeoutHint scales generated RPC delays (default 50ms): delays
	// are drawn from [hint/2, 3*hint), so some exceed the timeout and
	// some do not.
	RPCTimeoutHint time.Duration
}

// Generate produces the deterministic fault schedule for (cfg, seed).
func Generate(cfg Config, seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Duration <= 0 {
		cfg.Duration = 40 * time.Millisecond
	}
	minDown, maxDown := cfg.MinDown, cfg.MaxDown
	if minDown <= 0 {
		minDown = cfg.Duration / 8
	}
	if maxDown <= minDown {
		maxDown = cfg.Duration / 3
	}
	hint := cfg.RPCTimeoutHint
	if hint <= 0 {
		hint = 50 * time.Millisecond
	}

	var faults []Fault
	between := func(lo, hi time.Duration) time.Duration {
		if hi <= lo {
			return lo
		}
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}

	for i := 0; i < cfg.LinkFlaps && len(cfg.Links) > 0; i++ {
		l := cfg.Links[rng.Intn(len(cfg.Links))]
		down := between(cfg.Duration/20, cfg.Duration*7/10)
		dur := between(minDown, maxDown)
		up := down + dur
		if lim := cfg.Duration * 19 / 20; up > lim {
			up = lim
		}
		faults = append(faults,
			Fault{At: down, Kind: FaultLinkDown, A: l[0], B: l[1]},
			Fault{At: up, Kind: FaultLinkUp, A: l[0], B: l[1]})
	}
	for i := 0; i < cfg.Reboots && len(cfg.Switches) > 0; i++ {
		faults = append(faults, Fault{
			At:     between(cfg.Duration/10, cfg.Duration*4/5),
			Kind:   FaultSwitchReboot,
			Switch: cfg.Switches[rng.Intn(len(cfg.Switches))],
		})
	}
	for i := 0; i < cfg.InstallFaults && len(cfg.Switches) > 0; i++ {
		f := Fault{
			At:     between(0, cfg.Duration*4/5),
			Switch: cfg.Switches[rng.Intn(len(cfg.Switches))],
		}
		switch rng.Intn(3) {
		case 0:
			f.Kind, f.Count = FaultInstallTransient, 1+rng.Intn(3)
		case 1:
			f.Kind, f.Count = FaultInstallPersistent, 8+rng.Intn(8)
		default:
			f.Kind, f.Frac = FaultInstallPartial, 0.1+0.8*rng.Float64()
		}
		faults = append(faults, f)
	}
	for i := 0; i < cfg.RPCFaults && len(cfg.Switches) > 0; i++ {
		f := Fault{
			At:     between(0, cfg.Duration*4/5),
			Switch: cfg.Switches[rng.Intn(len(cfg.Switches))],
		}
		switch rng.Intn(3) {
		case 0:
			f.Kind = FaultRPCDrop
		case 1:
			f.Kind, f.Delay = FaultRPCDelay, between(hint/2, 3*hint)
		default:
			f.Kind = FaultRPCDuplicate
		}
		faults = append(faults, f)
	}

	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
	return Schedule{Seed: seed, Duration: cfg.Duration, Faults: faults}
}

// LinkFaults returns only the link-down/link-up events, in time order.
func (s Schedule) LinkFaults() []Fault {
	var out []Fault
	for _, f := range s.Faults {
		if f.Kind == FaultLinkDown || f.Kind == FaultLinkUp {
			out = append(out, f)
		}
	}
	return out
}

// Reboots returns only the switch-reboot events, in time order.
func (s Schedule) Reboots() []Fault {
	var out []Fault
	for _, f := range s.Faults {
		if f.Kind == FaultSwitchReboot {
			out = append(out, f)
		}
	}
	return out
}

// AgentFaults returns the control-channel and install faults, in time
// order — the subset a Fabric consumes.
func (s Schedule) AgentFaults() []Fault {
	var out []Fault
	for _, f := range s.Faults {
		switch f.Kind {
		case FaultRPCDrop, FaultRPCDelay, FaultRPCDuplicate,
			FaultInstallTransient, FaultInstallPersistent, FaultInstallPartial,
			FaultSwitchReboot:
			out = append(out, f)
		}
	}
	return out
}

// String renders the whole schedule, one fault per line.
func (s Schedule) String() string {
	out := fmt.Sprintf("chaos schedule seed=%d duration=%v (%d faults)\n", s.Seed, s.Duration, len(s.Faults))
	for _, f := range s.Faults {
		out += "  " + f.String() + "\n"
	}
	return out
}
