package chaos

import (
	"reflect"
	"testing"

	"repro/internal/deploy"
)

func churnCfg(events int) ChurnConfig {
	return ChurnConfig{
		Links:    [][2]string{{"T1", "L1"}, {"T1", "L2"}, {"T2", "L1"}, {"T2", "L2"}},
		Switches: []string{"T1", "T2", "L1", "L2"},
		Events:   events,
		PodAdds:  2,
	}
}

func TestGenerateChurnDeterministic(t *testing.T) {
	a := GenerateChurn(churnCfg(40), 7)
	b := GenerateChurn(churnCfg(40), 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different sequences")
	}
	if len(a) != 40 {
		t.Fatalf("generated %d events, want 40", len(a))
	}
	c := GenerateChurn(churnCfg(40), 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestGenerateChurnPrefix: under a fixed seed, a shorter sequence is a
// prefix of a longer one — what lets the shrinker trim events off the
// tail by lowering Events.
func TestGenerateChurnPrefix(t *testing.T) {
	long := GenerateChurn(churnCfg(30), 5)
	short := GenerateChurn(churnCfg(12), 5)
	if !reflect.DeepEqual(long[:len(short)], short) {
		t.Fatal("shorter sequence is not a prefix of the longer one")
	}
}

// TestGenerateChurnApplicable replays the generated sequence against a
// state machine and asserts every event is applicable in context: no
// down event for a down link, no undrain of a healthy switch, outage
// caps respected, pod adds bounded.
func TestGenerateChurnApplicable(t *testing.T) {
	cfg := churnCfg(200)
	cfg.MaxDownLinks = 2
	cfg.MaxDrained = 1
	for seed := int64(1); seed <= 20; seed++ {
		down := map[[2]string]bool{}
		drained := map[string]bool{}
		pods := 0
		for i, ev := range GenerateChurn(cfg, seed) {
			switch ev.Kind {
			case ChurnLinkDown:
				key := [2]string{ev.A, ev.B}
				if down[key] {
					t.Fatalf("seed %d event %d: %s downs a down link", seed, i, ev)
				}
				down[key] = true
				if len(down) > cfg.MaxDownLinks {
					t.Fatalf("seed %d event %d: %d links down exceeds cap %d", seed, i, len(down), cfg.MaxDownLinks)
				}
			case ChurnLinkUp:
				key := [2]string{ev.A, ev.B}
				if !down[key] {
					t.Fatalf("seed %d event %d: %s restores a healthy link", seed, i, ev)
				}
				delete(down, key)
			case ChurnDrain:
				if drained[ev.Switch] {
					t.Fatalf("seed %d event %d: %s drains a drained switch", seed, i, ev)
				}
				drained[ev.Switch] = true
				if len(drained) > cfg.MaxDrained {
					t.Fatalf("seed %d event %d: %d drained exceeds cap %d", seed, i, len(drained), cfg.MaxDrained)
				}
			case ChurnUndrain:
				if !drained[ev.Switch] {
					t.Fatalf("seed %d event %d: %s undrains a healthy switch", seed, i, ev)
				}
				delete(drained, ev.Switch)
			case ChurnPodAdd:
				pods++
			default:
				t.Fatalf("seed %d event %d: unknown kind %v", seed, i, ev.Kind)
			}
		}
		if pods > cfg.PodAdds {
			t.Fatalf("seed %d: %d pod adds exceeds budget %d", seed, pods, cfg.PodAdds)
		}
	}
}

// TestFabricPatchAppliesDeltaToActive: Patch stages the delta applied to
// the ACTIVE table (not the staged one), FetchActive reads the live
// table, and partial-patch faults silently stage a prefix for readback
// verification to catch — the same contract Install has.
func TestFabricPatchAppliesDeltaToActive(t *testing.T) {
	f := NewFabric([]string{"S1"})
	base := deploy.SwitchBundle{Rules: []deploy.RuleJSON{
		{Tag: 1, In: 0, Out: 1, NewTag: 1},
		{Tag: 2, In: 1, Out: 0, NewTag: 2},
	}}
	if err := f.Install("S1", base); err != nil {
		t.Fatal(err)
	}
	if err := f.Activate("S1"); err != nil {
		t.Fatal(err)
	}
	active, err := f.FetchActive("S1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(active, base) {
		t.Fatalf("FetchActive = %+v, want %+v", active, base)
	}

	want := deploy.SwitchBundle{Rules: []deploy.RuleJSON{
		{Tag: 1, In: 0, Out: 1, NewTag: 1},
		{Tag: 3, In: 2, Out: 1, NewTag: 3},
	}}
	delta := deploy.DeltaFor(base, want)
	if err := f.Patch("S1", delta); err != nil {
		t.Fatal(err)
	}
	staged, err := f.Fetch("S1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(staged.Rules, deploy.ApplyDelta(base, delta).Rules) {
		t.Fatalf("staged = %+v, want delta applied to active", staged)
	}
	// Active is untouched until Activate.
	active, _ = f.FetchActive("S1")
	if !reflect.DeepEqual(active, base) {
		t.Fatal("Patch modified the active table")
	}
	// Re-patching (the retry case) recomputes from active — same result.
	if err := f.Patch("S1", delta); err != nil {
		t.Fatal(err)
	}
	again, _ := f.Fetch("S1")
	if !reflect.DeepEqual(again, staged) {
		t.Fatal("re-patch diverged from the first patch")
	}

	// A partial patch stages only a prefix and reports success.
	f.Inject("S1", Fault{Kind: FaultInstallPartial, Frac: 0.5})
	if err := f.Patch("S1", delta); err != nil {
		t.Fatalf("partial patch should report success, got %v", err)
	}
	short, _ := f.Fetch("S1")
	if len(short.Rules) >= len(want.Rules) {
		t.Fatalf("partial patch staged %d rules, want fewer than %d", len(short.Rules), len(want.Rules))
	}
}
