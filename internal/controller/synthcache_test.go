package controller

import (
	"testing"

	"repro/internal/check"
	"repro/internal/paper"
	"repro/internal/synthcache"
	"repro/internal/topology"
)

// TestControllerSharesSynthCache: two controllers over one fabric and
// one cache — the second's initial deploy is served from the first's
// synthesis, and both run rule-for-rule identical systems.
func TestControllerSharesSynthCache(t *testing.T) {
	c := paper.Testbed()
	cache := synthcache.New(8)
	ctl1, err := NewClos(c, 1, WithSynthCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses == 0 {
		t.Fatal("first controller did not synthesize through the cache")
	}
	ctl2, err := NewClos(c, 1, WithSynthCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("second controller missed the warm cache: %+v", st)
	}
	if diffs := check.DiffRulesets(ctl1.System().Rules, ctl2.System().Rules); len(diffs) != 0 {
		t.Fatalf("cached controller diverged: %d rule diffs", len(diffs))
	}
	if err := check.VerifySystem(ctl2.System()); err != nil {
		t.Fatalf("cache-served system fails the oracle: %v", err)
	}
}

// TestChurnControllerFullRebuildHitsCache: the churn engine's
// full-rebuild fallback routes through the cache via the
// NewResynthFull hook, so a rebuild on previously-seen state is a hit.
func TestChurnControllerFullRebuildHitsCache(t *testing.T) {
	c := paper.Testbed()
	cache := synthcache.New(8)
	ctl, err := NewChurn(c.Graph, KBouncePolicy(func() []topology.NodeID { return c.ToRs }, 1), WithSynthCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses == 0 {
		t.Fatal("churn controller's initial build bypassed the cache")
	}
	// Drive a flap cycle; whether the engine patches incrementally or
	// falls back to full rebuild, the system must stay oracle-clean and
	// the cache must never serve a wrong-shaped system.
	a, b := c.Graph.MustLookup("L1"), c.Graph.MustLookup("T1")
	for i := 0; i < 3; i++ {
		if err := ctl.Handle(Event{Kind: EventLinkDown, A: a, B: b}); err != nil {
			t.Fatal(err)
		}
		if err := ctl.Handle(Event{Kind: EventLinkUp, A: a, B: b}); err != nil {
			t.Fatal(err)
		}
	}
	if err := check.VerifySystem(ctl.System()); err != nil {
		t.Fatalf("post-churn system fails the oracle: %v", err)
	}
	if ctl.System().Graph != c.Graph {
		t.Fatal("controller system bound to the wrong graph")
	}
}
