package controller

import (
	"testing"

	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/topology"
)

func TestControllerDeploysVerifiedSystem(t *testing.T) {
	c := paper.Testbed()
	ctl, err := NewClos(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := ctl.System()
	if sys == nil || sys.NumLosslessQueues() != 2 {
		t.Fatalf("deployed system: %+v", sys)
	}
	if ctl.Bundle() == nil || len(ctl.Bundle().Switches) == 0 {
		t.Fatal("no bundle")
	}
}

// TestFailuresAreRuleNoOps encodes the paper's core operational property:
// the rule plane does not move when links fail or recover.
func TestFailuresAreRuleNoOps(t *testing.T) {
	c := paper.Testbed()
	ctl, err := NewClos(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	events := []Event{
		{Kind: EventLinkDown, A: g.MustLookup("L1"), B: g.MustLookup("T1")},
		{Kind: EventLinkDown, A: g.MustLookup("L3"), B: g.MustLookup("T4")},
		{Kind: EventLinkUp, A: g.MustLookup("L1"), B: g.MustLookup("T1")},
	}
	for _, ev := range events {
		if err := ctl.Handle(ev); err != nil {
			t.Fatal(err)
		}
	}
	if ctl.FailureCount() != 3 {
		t.Errorf("FailureCount = %d", ctl.FailureCount())
	}
	if len(ctl.Diffs()) != 0 {
		t.Fatalf("failures pushed %d rule diffs; Tagger rules must be static", len(ctl.Diffs()))
	}
}

// TestExpansionPushesIncrementalBundle: adding a pod updates only the new
// switches and the spines' new ports.
func TestExpansionPushesIncrementalBundle(t *testing.T) {
	c := paper.Testbed()
	ctl, err := NewClos(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	oldSwitches := map[string]bool{}
	for _, sw := range g.Switches() {
		oldSwitches[g.Node(sw).Name] = true
	}
	spines := map[string]bool{}
	for _, s := range c.Spines {
		spines[g.Node(s).Name] = true
	}

	if err := c.Expand(1); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Handle(Event{Kind: EventExpansion}); err != nil {
		t.Fatal(err)
	}
	if len(ctl.Diffs()) != 1 {
		t.Fatalf("diffs pushed = %d, want 1", len(ctl.Diffs()))
	}
	for name := range ctl.Diffs()[0] {
		if oldSwitches[name] && !spines[name] {
			t.Errorf("expansion touched old non-spine switch %s", name)
		}
	}
	// The new deployment is verified and still 2 queues.
	if got := ctl.System().NumLosslessQueues(); got != 2 {
		t.Errorf("queues after expansion = %d", got)
	}
}

func TestUnknownEvent(t *testing.T) {
	c := paper.Testbed()
	ctl, err := NewClos(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// "meteor" is no longer expressible at compile time; the runtime
	// error path survives for zero-valued and decoded-but-invalid kinds.
	if err := ctl.Handle(Event{}); err == nil {
		t.Fatal("zero-kind event accepted")
	}
	if _, err := ParseEventKind("meteor"); err == nil {
		t.Fatal("unknown wire kind accepted")
	}
	for _, name := range []string{"link-down", "link-up", "expansion"} {
		k, err := ParseEventKind(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.String() != name {
			t.Errorf("round trip %q -> %v", name, k)
		}
	}
}

func TestGenericController(t *testing.T) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 20, Ports: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	policy := func(g *topology.Graph) *elp.Set {
		return elp.ShortestAll(g, j.Switches)
	}
	ctl, err := NewGeneric(j.Graph, policy)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.System().Runtime.NumSwitchTags() > 3 {
		t.Errorf("jellyfish-20 tags = %d", ctl.System().Runtime.NumSwitchTags())
	}
	// Failure: no rule churn, same as Clos.
	a, b := j.Switches[0], j.Switches[1]
	if err := ctl.Handle(Event{Kind: EventLinkDown, A: a, B: b}); err != nil {
		t.Fatal(err)
	}
	if len(ctl.Diffs()) != 0 {
		t.Fatal("generic controller pushed diffs on failure")
	}
}
