package controller

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/deploy"
	"repro/internal/paper"
	"repro/internal/topology"
)

// The chaos fabric must satisfy the delta-deploy agent contract too.
var _ DeltaAgent = (*chaos.Fabric)(nil)
var _ DeltaAgent = (*loopbackAgent)(nil)

// newChurnTestbed builds the paper testbed with a chaos fabric and a
// churn controller over it (k=1 bounce policy, generic synthesis).
func newChurnTestbed(t *testing.T, seed int64) (*topology.Clos, *chaos.Fabric, *Controller) {
	t.Helper()
	c := paper.Testbed()
	fab := chaos.NewFabric(switchNames(c.Graph))
	ctl, err := NewChurn(c.Graph,
		KBouncePolicy(func() []topology.NodeID { return c.ToRs }, 1),
		WithAgent(fab), WithDeployConfig(testCfg(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(c.Graph)) {
		t.Fatal("initial churn deployment does not match the fabric")
	}
	return c, fab, ctl
}

// TestChurnLinkFlapDeltas: a link-down removes the rules its paths
// needed, the recovery restores them, the fabric tracks intent through
// both, and the delta log records real per-event rule churn.
func TestChurnLinkFlapDeltas(t *testing.T) {
	c, fab, ctl := newChurnTestbed(t, 7)
	g := c.Graph
	initial := ctl.Bundle()

	a, b := g.MustLookup("T1"), g.MustLookup("L1")
	if err := ctl.HandleChurn(Event{Kind: EventLinkDown, A: a, B: b}); err != nil {
		t.Fatal(err)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(g)) {
		t.Fatal("fabric diverged after link-down")
	}
	if err := ctl.HandleChurn(Event{Kind: EventLinkUp, A: a, B: b}); err != nil {
		t.Fatal(err)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(g)) {
		t.Fatal("fabric diverged after link-up")
	}
	// Recovery restores the exact pre-churn deployment.
	if d := deploy.Diff(initial, ctl.Bundle()); len(d) != 0 {
		t.Fatalf("down+up did not restore the original bundle: %v", d)
	}

	log := ctl.DeltaLog()
	if len(log) != 2 {
		t.Fatalf("delta log has %d entries, want 2: %v", len(log), log)
	}
	down, up := log[0], log[1]
	if down.Event != "link-down" || up.Event != "link-up" {
		t.Fatalf("delta log events = %q, %q", down.Event, up.Event)
	}
	if down.RulesRemoved == 0 || up.RulesAdded == 0 {
		t.Errorf("expected rule churn, got down=%+v up=%+v", down, up)
	}
	if down.FullPushes != 0 || up.FullPushes != 0 {
		t.Errorf("delta agent in use, yet full pushes recorded: down=%+v up=%+v", down, up)
	}
	if down.SwitchesSkipped == 0 {
		t.Errorf("no switch skipped as no-op on a single-link event: %+v", down)
	}

	// The per-push summary also lands in the audit log and the counters.
	var sawDelta bool
	for _, e := range ctl.Audit() {
		if e.Op == OpDelta && strings.Contains(e.Note, "link-down") {
			sawDelta = true
		}
	}
	if !sawDelta {
		t.Error("audit log has no OpDelta entry for the link-down push")
	}
	cnt := ctl.Counters()
	if cnt["deploy.delta.rules_removed"] == 0 || cnt["deploy.delta.switches_skipped"] == 0 {
		t.Errorf("delta counters not exported: %v", cnt)
	}
}

// TestChurnDrainUndrainRoundTrip: draining a spine pulls its paths (and
// rules) out, undraining restores the exact original deployment.
func TestChurnDrainUndrainRoundTrip(t *testing.T) {
	c, fab, ctl := newChurnTestbed(t, 11)
	g := c.Graph
	initial := ctl.Bundle()
	s1 := g.MustLookup("S1")

	if err := ctl.HandleChurn(Event{Kind: EventSwitchDrain, A: s1}); err != nil {
		t.Fatal(err)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(g)) {
		t.Fatal("fabric diverged after drain")
	}
	// The drained spine must hold no rules at all.
	if got := len(fab.Active("S1").Rules); got != 0 {
		t.Fatalf("drained spine still runs %d rules", got)
	}
	if err := ctl.HandleChurn(Event{Kind: EventSwitchUndrain, A: s1}); err != nil {
		t.Fatal(err)
	}
	if d := deploy.Diff(initial, ctl.Bundle()); len(d) != 0 {
		t.Fatalf("drain+undrain did not restore the original bundle: %v", d)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(g)) {
		t.Fatal("fabric diverged after undrain")
	}
}

// TestChurnExpansionDeltas: a pod expansion through the churn path adds
// the new switches' rules while old switches that need no changes are
// skipped as no-ops.
func TestChurnExpansionDeltas(t *testing.T) {
	c, fab, ctl := newChurnTestbed(t, 13)
	if err := c.Expand(1); err != nil {
		t.Fatal(err)
	}
	fab.Add(switchNames(c.Graph)...)
	if err := ctl.HandleChurn(Event{Kind: EventExpansion}); err != nil {
		t.Fatal(err)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(c.Graph)) {
		t.Fatal("fabric diverged after expansion")
	}
	log := ctl.DeltaLog()
	last := log[len(log)-1]
	if last.Event != "expansion" || last.RulesAdded == 0 {
		t.Fatalf("expansion stats = %+v", last)
	}
	if last.SwitchesSkipped == 0 {
		t.Errorf("expansion should skip unchanged old switches as no-ops: %+v", last)
	}
}

// TestChurnRebootMidActivateReconverges is the rollback-convergence
// guarantee end to end: a switch reboots exactly at the activate step of
// a delta push, the two-phase protocol rolls the already-flipped
// switches back (fabric consistent on the OLD bundle), intent still
// advances, and Reconcile() then drives every switch — including the
// rebooted, now-empty one — to the new intent.
func TestChurnRebootMidActivateReconverges(t *testing.T) {
	c, fab, ctl := newChurnTestbed(t, 17)
	g := c.Graph
	prev := ctl.Bundle()

	// Delta push for a drain touches S1 (all rules removed) and the
	// leaves (bounce entries via S1 removed). Arm S1 to survive
	// fetch-active, patch and verify, then reboot on its first activate:
	// the leaves (sorted before S1) have already flipped and must roll
	// back; S1 comes up empty.
	fab.Inject("S1",
		chaos.Fault{Kind: chaos.FaultPass}, // fetch-active
		chaos.Fault{Kind: chaos.FaultPass}, // patch
		chaos.Fault{Kind: chaos.FaultPass}, // staged readback
		chaos.Fault{Kind: chaos.FaultSwitchReboot})

	err := ctl.HandleChurn(Event{Kind: EventSwitchDrain, A: g.MustLookup("S1")})
	if err == nil {
		t.Fatal("activation failure did not surface")
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("error does not mention rollback: %v", err)
	}
	// Intent advanced past the failed push (Reconcile's job to deliver)...
	intent := ctl.Bundle()
	if len(deploy.Diff(prev, intent)) == 0 {
		t.Fatal("intent did not advance")
	}
	// ...so the fabric must currently diverge from it: the non-rebooted
	// switches rolled back to the previous bundle, and S1 is wiped.
	if fabricMatches(t, fab, intent, switchNames(g)) {
		t.Fatal("fabric already matches intent; reboot fault did not bite")
	}
	if got := len(fab.Active("S1").Rules); got != 0 {
		t.Fatalf("rebooted switch still runs %d rules", got)
	}

	fixed, err := ctl.Reconcile()
	if err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if fixed == 0 {
		t.Fatal("reconcile repaired nothing")
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(g)) {
		t.Fatal("fabric does not match intent after reconciliation")
	}
	cnt := ctl.Counters()
	if cnt["deploy.rollbacks"] != 1 {
		t.Errorf("rollbacks = %d, want 1", cnt["deploy.rollbacks"])
	}
	if cnt["deploy.reconcile.switches_fixed"] == 0 {
		t.Errorf("reconcile.switches_fixed = 0, want > 0; counters: %v", cnt)
	}

	// A clean fabric reconciles to a no-op.
	fixed, err = ctl.Reconcile()
	if err != nil || fixed != 0 {
		t.Fatalf("idle reconcile = (%d, %v), want (0, nil)", fixed, err)
	}
}

// TestChurnRebootThenReconcile: a plain out-of-band reboot (no push in
// flight) is repaired by reconciliation alone — the delta path fetches
// the empty active table and re-issues the full switch delta.
func TestChurnRebootThenReconcile(t *testing.T) {
	c, fab, ctl := newChurnTestbed(t, 19)
	fab.Reboot("T1")
	if len(fab.Active("T1").Rules) != 0 {
		t.Fatal("reboot did not wipe agent state")
	}
	fixed, err := ctl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 1 {
		t.Fatalf("fixed = %d, want 1 (only T1 was wiped)", fixed)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(c.Graph)) {
		t.Fatal("fabric does not match intent after reconciliation")
	}
}

// TestChurnReconcileWithFlakyChannel: reconciliation retries through
// control-channel faults and still converges within its round budget.
func TestChurnReconcileWithFlakyChannel(t *testing.T) {
	c, fab, ctl := newChurnTestbed(t, 23)
	fab.Reboot("L2")
	fab.Inject("L2",
		chaos.Fault{Kind: chaos.FaultRPCDrop},                       // fetch-active attempt 1 lost
		chaos.Fault{Kind: chaos.FaultPass},                          // fetch-active attempt 2
		chaos.Fault{Kind: chaos.FaultInstallTransient, Count: 1},    // patch attempt 1 busy
		chaos.Fault{Kind: chaos.FaultInstallPartial, Frac: 0.5},     // patch attempt 2 lands half
		chaos.Fault{Kind: chaos.FaultPass})                          // readback exposes it; retry clean
	fixed, err := ctl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 1 {
		t.Fatalf("fixed = %d, want 1", fixed)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(c.Graph)) {
		t.Fatal("fabric does not match intent after flaky reconciliation")
	}
	if ctl.Counters()["deploy.partial_detected"] == 0 {
		t.Error("partial patch was not detected by the staged readback")
	}
}

// TestHandleChurnRequiresChurnController: the classic controllers reject
// churn events instead of silently mishandling them.
func TestHandleChurnRequiresChurnController(t *testing.T) {
	c := paper.Testbed()
	ctl, err := NewClos(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	err = ctl.HandleChurn(Event{Kind: EventLinkDown, A: g.MustLookup("T1"), B: g.MustLookup("L1")})
	if err == nil || !strings.Contains(err.Error(), "NewChurn") {
		t.Fatalf("err = %v, want the NewChurn guidance", err)
	}
}
