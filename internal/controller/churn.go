package controller

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/elp"
	"repro/internal/routing"
	"repro/internal/synthcache"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// This file is the churn-resilient control loop: a controller mode where
// topology churn (link flaps, switch drains, pod adds) re-synthesizes
// incrementally (core.Resynth + elp.Tracker) and deploys per-switch rule
// *deltas* computed against each switch's live active table, instead of
// re-running the full pipeline and re-pushing whole bundles. A
// reconciliation pass re-fetches live state and re-issues deltas until
// the fabric matches intent, so a switch that reboots mid-churn converges
// instead of wedging.

// DeltaAgent extends SwitchAgent with the two RPCs delta deploys need:
// reading a switch's ACTIVE table (the ground truth deltas are computed
// against) and Patch, which applies a delta to a copy of the active table
// and writes the result into the STAGED slot. Patch recomputes from
// ACTIVE on every call, so re-issuing a delta after a lost reply or a
// partial write is idempotent.
type DeltaAgent interface {
	SwitchAgent
	// FetchActive returns the currently active bundle on the switch.
	FetchActive(sw string) (deploy.SwitchBundle, error)
	// Patch stages ApplyDelta(active, d) on the switch.
	Patch(sw string, d deploy.SwitchDiff) error
}

// DeltaStats summarizes one delta push: what the churn event cost the
// fabric in rule updates. It is appended to the controller's DeltaLog,
// mirrored into the audit log as an OpDelta entry, and exported as
// deploy.delta.* counters.
type DeltaStats struct {
	// Event is the churn event kind that triggered the push.
	Event string
	// Rule-level churn across all patched switches. RulesUnchanged counts
	// desired rules that were already live (on both patched and skipped
	// switches).
	RulesAdded, RulesRemoved, RulesModified, RulesUnchanged int
	// SwitchesChanged is the number of switches patched; SwitchesSkipped
	// the number whose active table already matched intent (no-op).
	SwitchesChanged, SwitchesSkipped int
	// FullPushes counts switches that got a wholesale bundle install
	// because the agent does not implement DeltaAgent.
	FullPushes int
}

// String renders the stats in audit-log form.
func (s DeltaStats) String() string {
	return fmt.Sprintf("%s: +%d -%d ~%d =%d rules, %d switches changed, %d skipped",
		s.Event, s.RulesAdded, s.RulesRemoved, s.RulesModified, s.RulesUnchanged,
		s.SwitchesChanged, s.SwitchesSkipped)
}

// NewChurn builds the churn-resilient controller: generic synthesis
// (Algorithms 1+2) under the given policy, kept up to date incrementally.
// Use HandleChurn to feed it events and Reconcile to re-converge the
// fabric after agent-side losses. The initial deployment is a full push.
func NewChurn(g *topology.Graph, policy ELPPolicy, opts ...Option) (*Controller, error) {
	ctl := &Controller{
		g:         g,
		policy:    policy,
		agent:     newLoopbackAgent(),
		deployCfg: DefaultDeployConfig(),
		tel:       telemetry.NewRegistry(),
		known:     make(map[string]bool),
	}
	ctl.synth = func(g *topology.Graph, s *elp.Set) (*core.System, error) {
		return core.Synthesize(g, s.Paths(), core.Options{})
	}
	ctl.jitter = newJitter(ctl.deployCfg.JitterSeed)
	for _, o := range opts {
		o(ctl)
	}
	set := policy(g)
	// With a synthesis cache attached, the initial build and every
	// rebuild() fallback go through it (NewResynthFull hook); cached
	// systems are shared read-only and rule-identical to fresh ones.
	var fullSynth func(*topology.Graph, []routing.Path, core.Options) (*core.System, error)
	if ctl.synthCache != nil {
		fullSynth = synthcache.FullSynth(ctl.synthCache)
	}
	rs, err := core.NewResynthFull(g, set.Paths(), core.Options{}, fullSynth)
	if err != nil {
		return nil, fmt.Errorf("controller: synthesis failed: %w", err)
	}
	sys := rs.System()
	if err := sys.Runtime.Verify(); err != nil {
		return nil, fmt.Errorf("controller: refusing to deploy unverified rules: %w", err)
	}
	ctl.resynth = rs
	ctl.tracker = elp.NewTracker(g, set)
	newBundle := deploy.Export(sys.Rules)
	if err := ctl.pushBundle(newBundle, false); err != nil {
		return nil, err
	}
	ctl.current, ctl.bundle = sys, newBundle
	ctl.noteSwitches(newBundle)
	return ctl, nil
}

// DeltaLog returns a copy of the per-push delta stats, in push order.
func (c *Controller) DeltaLog() []DeltaStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]DeltaStats(nil), c.deltaLog...)
}

// HandleChurn processes one churn event end to end: update the topology
// and the ELP bookkeeping, re-synthesize incrementally, and push the rule
// deltas. Unlike Handle — which encodes the paper's "failures need no
// rule changes" claim — HandleChurn treats every event as an intent
// change: paths knocked out by a down link or a drain leave the ELP (and
// their rules leave the switches), recovered capacity re-adds them.
//
// Intent always advances, even when the delta push fails: the fabric
// stays consistent on its previous bundle (two-phase rollback), the error
// is returned, and Reconcile() re-drives the fabric toward intent.
func (c *Controller) HandleChurn(ev Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.resynth == nil {
		return fmt.Errorf("controller: HandleChurn requires a churn controller (NewChurn)")
	}
	switch ev.Kind {
	case EventLinkDown:
		c.g.FailLink(ev.A, ev.B)
		return c.applyChurn(ev, nil, c.tracker.LinkDown(ev.A, ev.B))
	case EventLinkUp:
		c.g.RestoreLink(ev.A, ev.B)
		return c.applyChurn(ev, c.tracker.LinkUp(ev.A, ev.B), nil)
	case EventSwitchDrain:
		return c.applyChurn(ev, nil, c.tracker.Drain(ev.A))
	case EventSwitchUndrain:
		return c.applyChurn(ev, c.tracker.Undrain(ev.A), nil)
	case EventExpansion:
		set := c.policy(c.g)
		return c.applyChurn(ev, c.tracker.AddPaths(set.Paths()), nil)
	default:
		return fmt.Errorf("controller: unknown churn event kind %q", ev.Kind)
	}
}

// applyChurn re-synthesizes for the ELP delta and pushes the resulting
// rule deltas. Called with c.mu held.
func (c *Controller) applyChurn(ev Event, added, removed []routing.Path) error {
	defer c.tel.StartSpan("deploy/churn").End()
	sys, err := c.resynth.Apply(added, removed)
	if err != nil {
		return fmt.Errorf("controller: incremental re-synthesis failed: %w", err)
	}
	if err := sys.Runtime.Verify(); err != nil {
		return fmt.Errorf("controller: refusing to deploy unverified rules: %w", err)
	}
	newBundle := deploy.Export(sys.Rules)
	stats, pushErr := c.pushDelta(newBundle)
	stats.Event = ev.Kind.String()
	c.deltaLog = append(c.deltaLog, stats)
	c.auditDelta(stats)
	if c.bundle != nil {
		if d := deploy.Diff(c.bundle, newBundle); len(d) > 0 {
			c.pushedDiffs = append(c.pushedDiffs, d)
		}
	}
	c.current, c.bundle = sys, newBundle
	c.noteSwitches(newBundle)
	return pushErr
}

// auditDelta appends the per-push stats summary entry and bumps the
// delta counters.
func (c *Controller) auditDelta(stats DeltaStats) {
	c.auditLog = append(c.auditLog, AuditEntry{
		Seq: c.auditSeq, Switch: "*", Op: OpDelta, Attempt: 1, Note: stats.String(),
	})
	c.auditSeq++
	c.tel.Counter("deploy.delta.rules_added").Add(int64(stats.RulesAdded))
	c.tel.Counter("deploy.delta.rules_removed").Add(int64(stats.RulesRemoved))
	c.tel.Counter("deploy.delta.rules_modified").Add(int64(stats.RulesModified))
	c.tel.Counter("deploy.delta.rules_unchanged").Add(int64(stats.RulesUnchanged))
	c.tel.Counter("deploy.delta.switches_changed").Add(int64(stats.SwitchesChanged))
	c.tel.Counter("deploy.delta.switches_skipped").Add(int64(stats.SwitchesSkipped))
}

// pushDelta deploys newBundle by patching only the switches whose intent
// changed, with the same two-phase discipline as pushBundle: stage every
// delta (patch + staged readback verify), then activate with rollback on
// failure. Deltas are computed against each switch's live ACTIVE table,
// so a switch some earlier reconciliation already fixed is skipped as a
// no-op. Called with c.mu held.
func (c *Controller) pushDelta(newBundle *deploy.Bundle) (DeltaStats, error) {
	push := c.tel.StartSpan("deploy/push-delta")
	defer push.End()
	c.tel.Counter("deploy.pushes").Inc()
	var stats DeltaStats

	old := c.bundle
	if old == nil {
		old = &deploy.Bundle{Switches: map[string]deploy.SwitchBundle{}}
	}
	diffs := deploy.Diff(old, newBundle)
	names := make([]string, 0, len(diffs))
	for sw := range diffs {
		names = append(names, sw)
	}
	sort.Strings(names)
	for sw, sb := range newBundle.Switches {
		if _, ok := diffs[sw]; !ok {
			stats.SwitchesSkipped++
			stats.RulesUnchanged += len(sb.Rules)
		}
	}

	da, hasDelta := c.agent.(DeltaAgent)

	// Phase 1: stage deltas on every switch whose intent changed. Failure
	// aborts with the active fabric untouched.
	stage := push.Child("stage")
	var toActivate []string
	for _, sw := range names {
		desired := newBundle.Switches[sw]
		if !hasDelta {
			a, r, m := diffs[sw].Counts()
			stats.RulesAdded += a
			stats.RulesRemoved += r
			stats.RulesModified += m
			stats.RulesUnchanged += len(desired.Rules) - a - m
			stats.FullPushes++
			stats.SwitchesChanged++
			if err := c.installVerify(sw, desired); err != nil {
				c.tel.Counter("deploy.aborted_staging").Inc()
				stage.End()
				return stats, err
			}
			toActivate = append(toActivate, sw)
			continue
		}
		var active deploy.SwitchBundle
		if err := c.attempt(sw, OpFetchActive, func() error {
			var e error
			active, e = da.FetchActive(sw)
			return e
		}); err != nil {
			c.tel.Counter("deploy.aborted_staging").Inc()
			stage.End()
			return stats, err
		}
		delta := deploy.DeltaFor(active, desired)
		if delta.Empty() {
			// Live state already matches intent (e.g. a reconcile got
			// here first): nothing to stage, nothing to activate.
			stats.SwitchesSkipped++
			stats.RulesUnchanged += len(desired.Rules)
			continue
		}
		a, r, m := delta.Counts()
		stats.RulesAdded += a
		stats.RulesRemoved += r
		stats.RulesModified += m
		stats.RulesUnchanged += len(desired.Rules) - a - m
		stats.SwitchesChanged++
		if err := c.patchVerify(da, sw, delta, desired); err != nil {
			c.tel.Counter("deploy.aborted_staging").Inc()
			stage.End()
			return stats, err
		}
		toActivate = append(toActivate, sw)
	}
	stage.End()

	// Phase 2: flip, rolling back every switch already flipped if one
	// cannot activate.
	activate := push.Child("activate")
	defer activate.End()
	var activated []string
	for _, sw := range toActivate {
		if err := c.attempt(sw, OpActivate, func() error {
			return c.agent.Activate(sw)
		}); err != nil {
			c.rollback(activated)
			return stats, fmt.Errorf("controller: rolled back to previous bundle: %w", err)
		}
		activated = append(activated, sw)
	}
	return stats, nil
}

// patchVerify stages one delta and confirms the staged readback matches
// the desired table. Patch recomputes staged from the switch's active
// table, so each retry is a clean re-application — a partial write never
// compounds.
func (c *Controller) patchVerify(da DeltaAgent, sw string, delta deploy.SwitchDiff, want deploy.SwitchBundle) error {
	x := c.rpc()
	err := x.patchVerify(da, sw, delta, want)
	c.absorb(x)
	return err
}

// patchVerify is the rpcCtx body of Controller.patchVerify.
func (x *rpcCtx) patchVerify(da DeltaAgent, sw string, delta deploy.SwitchDiff, want deploy.SwitchBundle) error {
	maxTries := x.cfg.MaxAttempts
	if maxTries < 1 {
		maxTries = 1
	}
	var err error
	for try := 1; try <= maxTries; try++ {
		op := OpPatch
		err = da.Patch(sw, delta)
		if err == nil {
			x.auditRecord(sw, OpPatch, try, nil, 0)
			op = OpVerify
			var got deploy.SwitchBundle
			got, err = da.Fetch(sw)
			if err == nil && !sameRules(got.Rules, want.Rules) {
				err = fmt.Errorf("staged delta mismatch: %d/%d rules landed", len(got.Rules), len(want.Rules))
				x.tel.Counter("deploy.partial_detected").Inc()
			}
			if err == nil {
				x.auditRecord(sw, OpVerify, try, nil, 0)
				x.tel.Gauge("deploy_last_attempts", "switch", sw, "op", OpPatch).Set(float64(try))
				if try > 1 {
					x.tel.Counter("deploy_retries_total", "switch", sw).Add(int64(try - 1))
				}
				return nil
			}
		}
		var backoff time.Duration
		if try < maxTries {
			backoff = x.backoffFor(try)
			x.tel.Counter("deploy.backoff_ns").Add(int64(backoff))
			if x.cfg.Sleep != nil {
				x.cfg.Sleep(backoff)
			}
		}
		x.auditRecord(sw, op, try, err, backoff)
	}
	x.tel.Counter("deploy.gave_up").Inc()
	x.tel.Gauge("deploy_last_attempts", "switch", sw, "op", OpPatch).Set(float64(maxTries))
	x.tel.Counter("deploy_retries_total", "switch", sw).Add(int64(maxTries - 1))
	return fmt.Errorf("controller: patch on %s failed after %d attempts: %w", sw, maxTries, err)
}

// Reconcile drives the fabric back to the deployed intent (c.bundle): it
// re-fetches every known switch's active table, computes the delta to
// intent, and re-issues patch+activate for any divergence — up to
// DeployConfig.ReconcileRounds sweeps. This is the convergence path after
// partial deploy failures, switch reboots, or any agent-side state loss.
// Unlike a push, reconciliation activates per switch immediately: the
// fabric is already divergent, so convergence beats atomicity.
//
// It returns how many switches were repaired. A fabric still divergent
// after the round budget is an error. Agents without DeltaAgent support
// fall back to a full forced re-push (Redeploy semantics).
func (c *Controller) Reconcile() (fixed int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bundle == nil {
		return 0, fmt.Errorf("controller: nothing deployed yet")
	}
	da, hasDelta := c.agent.(DeltaAgent)
	if !hasDelta {
		return 0, c.pushBundle(c.bundle, true)
	}
	defer c.tel.StartSpan("deploy/reconcile").End()
	rounds := c.deployCfg.ReconcileRounds
	if rounds < 1 {
		rounds = 3
	}
	names := make([]string, 0, len(c.known))
	for sw := range c.known {
		names = append(names, sw)
	}
	sort.Strings(names)

	for round := 1; round <= rounds; round++ {
		c.tel.Counter("deploy.reconcile.rounds").Inc()
		dirty := false
		var roundErr error
		for _, sw := range names {
			desired := c.bundle.Switches[sw] // zero value: switch should hold no rules
			var active deploy.SwitchBundle
			if e := c.attempt(sw, OpFetchActive, func() error {
				var e error
				active, e = da.FetchActive(sw)
				return e
			}); e != nil {
				dirty = true
				if roundErr == nil {
					roundErr = e
				}
				continue
			}
			delta := deploy.DeltaFor(active, desired)
			if delta.Empty() {
				continue
			}
			dirty = true
			if e := c.patchVerify(da, sw, delta, desired); e != nil {
				if roundErr == nil {
					roundErr = e
				}
				continue
			}
			if e := c.attempt(sw, OpActivate, func() error { return da.Activate(sw) }); e != nil {
				if roundErr == nil {
					roundErr = e
				}
				continue
			}
			fixed++
			c.tel.Counter("deploy.reconcile.switches_fixed").Inc()
		}
		if !dirty {
			return fixed, nil
		}
		if round == rounds && roundErr != nil {
			return fixed, fmt.Errorf("controller: fabric did not converge after %d reconcile rounds: %w", rounds, roundErr)
		}
	}
	// The round budget is spent; verify the last sweep actually converged.
	for _, sw := range names {
		active, e := da.FetchActive(sw)
		if e != nil {
			return fixed, fmt.Errorf("controller: reconcile verification: %w", e)
		}
		if d := deploy.DeltaFor(active, c.bundle.Switches[sw]); !d.Empty() {
			return fixed, fmt.Errorf("controller: switch %s still diverges from intent after %d reconcile rounds", sw, rounds)
		}
	}
	return fixed, nil
}

// noteSwitches records bundle membership in the reconcile roster. Called
// with c.mu held.
func (c *Controller) noteSwitches(b *deploy.Bundle) {
	if c.known == nil {
		c.known = make(map[string]bool)
	}
	for sw := range b.Switches {
		c.known[sw] = true
	}
}
