package controller

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/paper"
)

func parallelCfg(seed int64, workers int) DeployConfig {
	cfg := testCfg(seed)
	cfg.Parallel = workers
	return cfg
}

// TestParallelPushMatchesSerial: the fan-out path must land the fabric in
// exactly the state the serial path does — same bundle on every switch,
// no rollbacks — including through transient faults.
func TestParallelPushMatchesSerial(t *testing.T) {
	deployWith := func(cfg DeployConfig) (*chaos.Fabric, *Controller) {
		c := paper.Testbed()
		fab := chaos.NewFabric(switchNames(c.Graph))
		fab.Inject("T1", chaos.Fault{Kind: chaos.FaultInstallTransient, Count: 2})
		fab.Inject("L2", chaos.Fault{Kind: chaos.FaultRPCDrop})
		ctl, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		return fab, ctl
	}
	serialFab, serialCtl := deployWith(testCfg(7))
	parFab, parCtl := deployWith(parallelCfg(7, 8))

	if !fabricMatches(t, parFab, parCtl.Bundle(), nil) {
		t.Fatal("parallel push left the fabric diverged from its bundle")
	}
	serialLive := serialFab.ActiveBundle(serialCtl.Bundle().MaxTag)
	if !fabricMatches(t, parFab, serialLive, nil) {
		t.Fatal("parallel push landed a different fabric state than serial")
	}
	if got := parCtl.Counters()["deploy.rollbacks"]; got != 0 {
		t.Errorf("parallel push rolled back %d times on transient faults", got)
	}
}

// TestParallelAuditDeterministic: per-switch jitter streams and the
// group-then-name merge order make the audit log reproducible no matter
// how the worker goroutines interleave.
func TestParallelAuditDeterministic(t *testing.T) {
	run := func() []AuditEntry {
		c := paper.Testbed()
		fab := chaos.NewFabric(switchNames(c.Graph))
		fab.Inject("T2", chaos.Fault{Kind: chaos.FaultInstallTransient, Count: 3})
		fab.Inject("L4", chaos.Fault{Kind: chaos.FaultInstallPartial, Frac: 0.5})
		ctl, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(parallelCfg(42, 6)))
		if err != nil {
			t.Fatal(err)
		}
		return ctl.Audit()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("parallel audit logs differ across identical runs")
	}
	var backoffs int
	for _, e := range a {
		if e.Backoff > 0 {
			backoffs++
		}
	}
	if backoffs == 0 {
		t.Fatal("no backoff recorded for a faulty parallel run")
	}
	// Sequence numbers must be dense after the merge.
	for i, e := range a {
		if e.Seq != i {
			t.Fatalf("audit seq not dense after merge: entry %d has seq %d", i, e.Seq)
		}
	}
}

// TestParallelActivationFailureRollsBack: the two-phase guarantee holds
// under fan-out — an exhausted activation rolls every flipped switch
// back to the previous verified bundle.
func TestParallelActivationFailureRollsBack(t *testing.T) {
	c := paper.Testbed()
	names := switchNames(c.Graph)
	fab := chaos.NewFabric(append(names, "T5", "T6", "L5", "L6"))
	ctl, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(parallelCfg(7, 4)))
	if err != nil {
		t.Fatal(err)
	}
	prev := ctl.Bundle()

	if err := c.Expand(1); err != nil {
		t.Fatal(err)
	}
	fab.Inject("S2",
		chaos.Fault{Kind: chaos.FaultPass},
		chaos.Fault{Kind: chaos.FaultPass},
		chaos.Fault{Kind: chaos.FaultInstallPersistent, Count: 1000})
	err = ctl.Handle(Event{Kind: EventExpansion})
	if err == nil {
		t.Fatal("expansion push should have failed")
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("error does not mention rollback: %v", err)
	}
	if ctl.Bundle() != prev {
		t.Fatal("controller advanced its bundle past a failed push")
	}
	if !fabricMatches(t, fab, prev, names) {
		t.Fatal("fabric is not running the previous verified bundle after rollback")
	}
	if got := ctl.Counters()["deploy.rollbacks"]; got != 1 {
		t.Errorf("rollbacks = %d, want 1", got)
	}
}

// TestParallelStagingAbortLeavesActiveUntouched: a switch that cannot
// stage aborts the fan-out push in phase 1 — no switch activates.
func TestParallelStagingAbortLeavesActiveUntouched(t *testing.T) {
	c := paper.Testbed()
	fab := chaos.NewFabric(switchNames(c.Graph))
	fab.Inject("L1", chaos.Fault{Kind: chaos.FaultInstallPersistent, Count: 1000})
	_, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(parallelCfg(7, 8)))
	if err == nil {
		t.Fatal("persistent staging failure did not surface")
	}
	if live := fab.ActiveBundle(2); len(live.Switches) != 0 {
		t.Fatal("staging-phase abort still activated switches")
	}
}
