// Package controller is the §6 SDN deployment story: a central
// controller that owns the ELP definition, synthesizes the Tagger rules,
// pushes deployment bundles, and reacts to topology events.
//
// Its behavior encodes the paper's two operational claims:
//
//   - link failures and reroutes need NO rule updates — the tagging rules
//     are static and defined only over local information, so the
//     controller's failure handler is a no-op on the rule plane;
//   - topology expansion produces an incremental bundle: only the new
//     switches (plus spine entries for their new ports) receive updates.
package controller

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/elp"
	"repro/internal/topology"
)

// ELPPolicy computes the expected lossless path set for the current
// topology. The controller re-evaluates it on topology *changes* (not on
// failures, which by design change nothing).
type ELPPolicy func(g *topology.Graph) *elp.Set

// KBouncePolicy is the standard Clos policy: shortest up-down plus up to
// k bounces between the given endpoint roster (re-read on every
// evaluation so expansion picks up new ToRs).
func KBouncePolicy(endpoints func() []topology.NodeID, k int) ELPPolicy {
	return func(g *topology.Graph) *elp.Set {
		return elp.KBounce(g, endpoints(), k, nil)
	}
}

// Event is a topology event delivered to the controller.
type Event struct {
	// Kind is "link-down", "link-up" or "expansion".
	Kind string
	// A, B name the link endpoints for link events.
	A, B topology.NodeID
}

// Controller owns the fabric's Tagger deployment.
type Controller struct {
	mu     sync.Mutex
	g      *topology.Graph
	policy ELPPolicy
	// synth builds the system from the policy's ELP; the Clos deployment
	// uses ClosSynthesize, generic fabrics use Synthesize.
	synth func(g *topology.Graph, paths *elp.Set) (*core.System, error)

	current *core.System
	bundle  *deploy.Bundle

	// PushedDiffs records every incremental update the controller
	// emitted, for tests and audit.
	PushedDiffs []map[string]deploy.SwitchDiff
	// FailureEvents counts failure notifications handled (with zero rule
	// churn, which TestFailuresAreRuleNoOps asserts).
	FailureEvents int
}

// NewClos builds a controller deploying the optimal Clos scheme with the
// given bounce budget.
func NewClos(c *topology.Clos, k int) (*Controller, error) {
	ctl := &Controller{
		g:      c.Graph,
		policy: KBouncePolicy(func() []topology.NodeID { return c.ToRs }, k),
		synth: func(g *topology.Graph, s *elp.Set) (*core.System, error) {
			return core.ClosSynthesize(g, s.Paths(), k)
		},
	}
	if err := ctl.resync(); err != nil {
		return nil, err
	}
	return ctl, nil
}

// NewGeneric builds a controller running Algorithms 1+2 under the given
// policy.
func NewGeneric(g *topology.Graph, policy ELPPolicy) (*Controller, error) {
	ctl := &Controller{
		g:      g,
		policy: policy,
		synth: func(g *topology.Graph, s *elp.Set) (*core.System, error) {
			return core.Synthesize(g, s.Paths(), core.Options{})
		},
	}
	if err := ctl.resync(); err != nil {
		return nil, err
	}
	return ctl, nil
}

// System returns the currently deployed system.
func (c *Controller) System() *core.System {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Bundle returns the currently deployed bundle.
func (c *Controller) Bundle() *deploy.Bundle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bundle
}

// resync recomputes the system and records the diff against the previous
// deployment.
func (c *Controller) resync() error {
	set := c.policy(c.g)
	sys, err := c.synth(c.g, set)
	if err != nil {
		return fmt.Errorf("controller: synthesis failed: %w", err)
	}
	if err := sys.Runtime.Verify(); err != nil {
		return fmt.Errorf("controller: refusing to deploy unverified rules: %w", err)
	}
	newBundle := deploy.Export(sys.Rules)
	if c.bundle != nil {
		if d := deploy.Diff(c.bundle, newBundle); len(d) > 0 {
			c.PushedDiffs = append(c.PushedDiffs, d)
		}
	}
	c.current, c.bundle = sys, newBundle
	return nil
}

// Handle processes one topology event.
//
// Failures are acknowledged but deliberately do not resynthesize: the
// whole point of Tagger is that the installed rules already cover every
// reroute the ELP anticipates, and wayward packets demote to lossy. An
// expansion event re-runs the policy and pushes the incremental bundle.
func (c *Controller) Handle(ev Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case "link-down":
		c.FailureEvents++
		c.g.FailLink(ev.A, ev.B)
		return nil
	case "link-up":
		c.FailureEvents++
		c.g.RestoreLink(ev.A, ev.B)
		return nil
	case "expansion":
		return c.resync()
	default:
		return fmt.Errorf("controller: unknown event kind %q", ev.Kind)
	}
}
