// Package controller is the §6 SDN deployment story: a central
// controller that owns the ELP definition, synthesizes the Tagger rules,
// pushes deployment bundles, and reacts to topology events.
//
// Its behavior encodes the paper's two operational claims:
//
//   - link failures and reroutes need NO rule updates — the tagging rules
//     are static and defined only over local information, so the
//     controller's failure handler is a no-op on the rule plane;
//   - topology expansion produces an incremental bundle: only the new
//     switches (plus spine entries for their new ports) receive updates.
//
// Rule pushes go through a fault-tolerant pipeline (agent.go): per-switch
// install RPCs against a SwitchAgent, verify-then-activate two-phase
// semantics, capped exponential backoff with seeded jitter, and rollback
// to the previous verified bundle when activation cannot complete — so an
// unreliable fabric never keeps running a half-installed rule set. Every
// attempt is recorded in a structured audit log and exported as metrics
// counters.
package controller

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/elp"
	"repro/internal/synthcache"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// ELPPolicy computes the expected lossless path set for the current
// topology. The controller re-evaluates it on topology *changes* (not on
// failures, which by design change nothing).
type ELPPolicy func(g *topology.Graph) *elp.Set

// KBouncePolicy is the standard Clos policy: shortest up-down plus up to
// k bounces between the given endpoint roster (re-read on every
// evaluation so expansion picks up new ToRs).
func KBouncePolicy(endpoints func() []topology.NodeID, k int) ELPPolicy {
	return func(g *topology.Graph) *elp.Set {
		return elp.KBounce(g, endpoints(), k, nil)
	}
}

// EventKind is the type of a topology event. The zero value is invalid,
// so an Event built without a kind is rejected at Handle time, and a
// misspelled kind is a compile error rather than a runtime surprise.
type EventKind int

const (
	// EventInvalid is the zero value; Handle rejects it.
	EventInvalid EventKind = iota
	// EventLinkDown reports a failed link (rule plane: no-op).
	EventLinkDown
	// EventLinkUp reports a recovered link (rule plane: no-op).
	EventLinkUp
	// EventExpansion reports that the topology grew; the controller
	// re-evaluates the policy and pushes the incremental bundle.
	EventExpansion
	// EventSwitchDrain asks that switch A carry no expected lossless
	// paths (maintenance). Only the churn controller (HandleChurn) acts
	// on it — the classic Handle path has no drain notion.
	EventSwitchDrain
	// EventSwitchUndrain returns switch A to service.
	EventSwitchUndrain
)

// String renders the kind using the wire names ("link-down", "link-up",
// "expansion").
func (k EventKind) String() string {
	switch k {
	case EventLinkDown:
		return "link-down"
	case EventLinkUp:
		return "link-up"
	case EventExpansion:
		return "expansion"
	case EventSwitchDrain:
		return "switch-drain"
	case EventSwitchUndrain:
		return "switch-undrain"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// ParseEventKind maps a wire name to its kind. Decoded inputs (JSON
// feeds, CLIs) come through here, keeping the unknown-kind runtime error
// path that typed in-process events no longer need.
func ParseEventKind(s string) (EventKind, error) {
	switch s {
	case "link-down":
		return EventLinkDown, nil
	case "link-up":
		return EventLinkUp, nil
	case "expansion":
		return EventExpansion, nil
	case "switch-drain":
		return EventSwitchDrain, nil
	case "switch-undrain":
		return EventSwitchUndrain, nil
	default:
		return EventInvalid, fmt.Errorf("controller: unknown event kind %q", s)
	}
}

// Event is a topology event delivered to the controller.
type Event struct {
	Kind EventKind
	// A, B name the link endpoints for link events; drain events name
	// the switch in A.
	A, B topology.NodeID
}

// Controller owns the fabric's Tagger deployment.
type Controller struct {
	mu     sync.Mutex
	g      *topology.Graph
	policy ELPPolicy
	// synth builds the system from the policy's ELP; the Clos deployment
	// uses ClosSynthesize, generic fabrics use Synthesize.
	synth func(g *topology.Graph, paths *elp.Set) (*core.System, error)

	current *core.System
	bundle  *deploy.Bundle // last fully verified-and-activated bundle

	agent     SwitchAgent
	deployCfg DeployConfig
	jitter    *rand.Rand

	// pushedDiffs records every incremental update the controller
	// emitted; failureEvents counts failure notifications handled (with
	// zero rule churn). Both live under mu — use Diffs()/FailureCount().
	pushedDiffs   []map[string]deploy.SwitchDiff
	failureEvents int

	auditLog []AuditEntry
	auditSeq int

	// Churn-mode state (NewChurn): the incremental synthesis engine, the
	// ELP bookkeeping that feeds it, per-delta-push stats, and the roster
	// of switches ever touched (what Reconcile sweeps).
	resynth  *core.Resynth
	tracker  *elp.Tracker
	deltaLog []DeltaStats
	known    map[string]bool
	// synthCache, when set (WithSynthCache), memoizes full synthesis:
	// fresh deploys, expansion resyncs and churn rebuild fallbacks hit
	// the cache instead of re-running synthesis on topologies it has
	// already seen. Cached systems are rule-identical to fresh ones, so
	// deployment behavior is unchanged.
	synthCache *synthcache.Cache

	// tel receives the deployment metrics (deploy.* counters, per-switch
	// retry/rollback gauges) and the push-pipeline spans. Each controller
	// gets its own registry by default so Counters() stays deterministic
	// per instance; WithTelemetry points it at a shared one (e.g. the one
	// an ops endpoint serves).
	tel *telemetry.Registry
}

// Option customizes a controller at construction time.
type Option func(*Controller)

// WithAgent points the controller's install RPCs at the given switch
// agent (default: a perfectly reliable in-process loopback).
func WithAgent(a SwitchAgent) Option {
	return func(c *Controller) { c.agent = a }
}

// WithDeployConfig overrides the retry/backoff parameters.
func WithDeployConfig(cfg DeployConfig) Option {
	return func(c *Controller) {
		c.deployCfg = cfg
		c.jitter = newJitter(cfg.JitterSeed)
	}
}

// WithTelemetry points the controller's metrics and spans at the given
// registry instead of a private one — the wiring for serving deployment
// metrics from a process-wide ops endpoint. Sharing a registry across
// controllers accumulates their counts.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *Controller) { c.tel = reg }
}

// WithSynthCache routes the controller's synthesis through the given
// cache. Sharing one cache across controllers (or across rebuilds of the
// same fabric) turns repeated synthesis of an already-seen topology into
// a lookup; correctness is unchanged because cached systems are
// rule-identical to from-scratch synthesis (see internal/synthcache).
func WithSynthCache(cache *synthcache.Cache) Option {
	return func(c *Controller) { c.synthCache = cache }
}

// synthFunc builds a system from the policy's ELP over the current graph.
type synthFunc = func(*topology.Graph, *elp.Set) (*core.System, error)

func newController(g *topology.Graph, policy ELPPolicy, synth synthFunc,
	cached func(*synthcache.Cache) synthFunc, opts []Option) (*Controller, error) {
	ctl := &Controller{
		g:         g,
		policy:    policy,
		synth:     synth,
		agent:     newLoopbackAgent(),
		deployCfg: DefaultDeployConfig(),
		tel:       telemetry.NewRegistry(),
	}
	ctl.jitter = newJitter(ctl.deployCfg.JitterSeed)
	for _, o := range opts {
		o(ctl)
	}
	if ctl.synthCache != nil && cached != nil {
		ctl.synth = cached(ctl.synthCache)
	}
	if err := ctl.resync(); err != nil {
		return nil, err
	}
	return ctl, nil
}

// NewClos builds a controller deploying the optimal Clos scheme with the
// given bounce budget.
func NewClos(c *topology.Clos, k int, opts ...Option) (*Controller, error) {
	return newController(c.Graph,
		KBouncePolicy(func() []topology.NodeID { return c.ToRs }, k),
		func(g *topology.Graph, s *elp.Set) (*core.System, error) {
			return core.ClosSynthesize(g, s.Paths(), k)
		},
		func(cache *synthcache.Cache) synthFunc {
			return func(g *topology.Graph, s *elp.Set) (*core.System, error) {
				r, err := cache.SynthesizeClos(g, s.Paths(), k)
				if err != nil {
					return nil, err
				}
				return r.Sys, nil
			}
		}, opts)
}

// NewGeneric builds a controller running Algorithms 1+2 under the given
// policy.
func NewGeneric(g *topology.Graph, policy ELPPolicy, opts ...Option) (*Controller, error) {
	return newController(g, policy,
		func(g *topology.Graph, s *elp.Set) (*core.System, error) {
			return core.Synthesize(g, s.Paths(), core.Options{})
		},
		func(cache *synthcache.Cache) synthFunc {
			return func(g *topology.Graph, s *elp.Set) (*core.System, error) {
				r, err := cache.Synthesize(g, s.Paths(), core.Options{})
				if err != nil {
					return nil, err
				}
				return r.Sys, nil
			}
		}, opts)
}

// System returns the currently deployed system.
func (c *Controller) System() *core.System {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Bundle returns the currently deployed bundle.
func (c *Controller) Bundle() *deploy.Bundle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bundle
}

// Diffs returns a copy of every incremental update the controller has
// pushed, for tests and audit.
func (c *Controller) Diffs() []map[string]deploy.SwitchDiff {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]map[string]deploy.SwitchDiff(nil), c.pushedDiffs...)
}

// FailureCount returns the number of failure notifications handled (each
// with zero rule churn, which TestFailuresAreRuleNoOps asserts).
func (c *Controller) FailureCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failureEvents
}

// Audit returns a copy of the deployment audit log: one entry per RPC
// attempt, in order.
func (c *Controller) Audit() []AuditEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]AuditEntry(nil), c.auditLog...)
}

// Counters returns a snapshot of the deployment counters (attempts,
// failures, rollbacks, backoff time): every telemetry counter in the
// "deploy." namespace, unlabeled. Per-switch gauges and pipeline spans
// live on the full registry (Telemetry()); this view stays deterministic
// for a fixed fault schedule, which the chaos-soak determinism test
// relies on.
func (c *Controller) Counters() map[string]int64 {
	out := make(map[string]int64)
	for _, cs := range c.tel.Snapshot().Counters {
		if strings.HasPrefix(cs.Name, "deploy.") && len(cs.Labels) == 0 {
			out[cs.Name] = cs.Value
		}
	}
	return out
}

// Telemetry returns the registry the controller reports into, for
// merging into a process-wide ops registry or asserting on spans.
func (c *Controller) Telemetry() *telemetry.Registry { return c.tel }

// resync recomputes the system, pushes it through the fault-tolerant
// pipeline, and records the diff against the previous deployment. On
// push failure the previous deployment stays current (and stays active
// on the fabric — pushBundle rolled it back).
func (c *Controller) resync() error {
	set := c.policy(c.g)
	sys, err := c.synth(c.g, set)
	if err != nil {
		return fmt.Errorf("controller: synthesis failed: %w", err)
	}
	if err := sys.Runtime.Verify(); err != nil {
		return fmt.Errorf("controller: refusing to deploy unverified rules: %w", err)
	}
	newBundle := deploy.Export(sys.Rules)
	if err := c.pushBundle(newBundle, false); err != nil {
		return err
	}
	if c.bundle != nil {
		if d := deploy.Diff(c.bundle, newBundle); len(d) > 0 {
			c.pushedDiffs = append(c.pushedDiffs, d)
		}
	}
	c.current, c.bundle = sys, newBundle
	return nil
}

// Redeploy force-pushes the full current bundle to every switch — the
// recovery action after a switch reboot wiped its agent state. Installs
// are idempotent, so re-pushing switches that kept their rules is
// harmless.
func (c *Controller) Redeploy() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bundle == nil {
		return fmt.Errorf("controller: nothing deployed yet")
	}
	return c.pushBundle(c.bundle, true)
}

// Handle processes one topology event.
//
// Failures are acknowledged but deliberately do not resynthesize: the
// whole point of Tagger is that the installed rules already cover every
// reroute the ELP anticipates, and wayward packets demote to lossy. An
// expansion event re-runs the policy and pushes the incremental bundle.
func (c *Controller) Handle(ev Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case EventLinkDown:
		c.failureEvents++
		c.g.FailLink(ev.A, ev.B)
		return nil
	case EventLinkUp:
		c.failureEvents++
		c.g.RestoreLink(ev.A, ev.B)
		return nil
	case EventExpansion:
		return c.resync()
	default:
		return fmt.Errorf("controller: unknown event kind %q", ev.Kind)
	}
}
