package controller

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/deploy"
	"repro/internal/telemetry"
)

// SwitchAgent is the controller's RPC surface to the rule agents running
// on the switches. A production deployment backs it with the switch
// vendor's config channel; tests back it with in-memory fabrics,
// including the chaos package's unreliable one.
//
// The protocol is staged two-phase: Install writes a full SwitchBundle
// into the switch's STAGED slot (never touching live forwarding), Fetch
// reads the staged slot back for verification, and Activate atomically
// promotes STAGED to ACTIVE. All three calls are idempotent, so the
// controller can blindly re-issue one after a lost reply.
//
// Every call may fail: agents are unreliable by assumption (timeouts,
// reboots, partial writes). Errors carry no retryability contract — the
// controller retries everything with capped backoff and gives up after
// MaxAttempts.
type SwitchAgent interface {
	// Install stages b on the named switch, replacing any prior staged
	// bundle wholesale.
	Install(sw string, b deploy.SwitchBundle) error
	// Fetch returns the currently staged bundle for readback verification.
	Fetch(sw string) (deploy.SwitchBundle, error)
	// Activate promotes the staged bundle to active atomically.
	Activate(sw string) error
}

// loopbackAgent is the default perfectly-reliable in-process agent; it
// preserves the pre-chaos controller behavior (installs always succeed).
type loopbackAgent struct {
	staged map[string]deploy.SwitchBundle
	active map[string]deploy.SwitchBundle
}

func newLoopbackAgent() *loopbackAgent {
	return &loopbackAgent{
		staged: make(map[string]deploy.SwitchBundle),
		active: make(map[string]deploy.SwitchBundle),
	}
}

func (a *loopbackAgent) Install(sw string, b deploy.SwitchBundle) error {
	a.staged[sw] = cloneSwitchBundle(b)
	return nil
}

func (a *loopbackAgent) Fetch(sw string) (deploy.SwitchBundle, error) {
	return cloneSwitchBundle(a.staged[sw]), nil
}

func (a *loopbackAgent) Activate(sw string) error {
	a.active[sw] = cloneSwitchBundle(a.staged[sw])
	return nil
}

func (a *loopbackAgent) FetchActive(sw string) (deploy.SwitchBundle, error) {
	return cloneSwitchBundle(a.active[sw]), nil
}

func (a *loopbackAgent) Patch(sw string, d deploy.SwitchDiff) error {
	a.staged[sw] = deploy.ApplyDelta(a.active[sw], d)
	return nil
}

// cloneSwitchBundle deep-copies a bundle so agent state cannot alias the
// controller's.
func cloneSwitchBundle(b deploy.SwitchBundle) deploy.SwitchBundle {
	return deploy.SwitchBundle{Rules: append([]deploy.RuleJSON(nil), b.Rules...)}
}

// DeployConfig tunes the fault-tolerant push pipeline.
type DeployConfig struct {
	// MaxAttempts bounds tries per RPC phase per switch (minimum 1).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic +/-25% backoff jitter, so a fixed
	// seed reproduces the exact retry timeline.
	JitterSeed int64
	// Sleep, when non-nil, is called with each backoff delay (production
	// sets time.Sleep). Nil keeps the pipeline virtual-time only: delays
	// are computed, logged and audited but not slept, which is what the
	// deterministic tests and the simulator want.
	Sleep func(time.Duration)
	// ReconcileRounds bounds how many fetch-diff-patch sweeps Reconcile
	// makes before declaring the fabric divergent (minimum 1; 0 means the
	// default of 3).
	ReconcileRounds int
	// Parallel bounds how many switches each push phase drives
	// concurrently (0 or 1: the classic serial pipeline). The parallel
	// path batches switches into identical-bundle groups
	// (deploy.GroupIdentical) and gives every switch its own
	// deterministic jitter stream, so the audit log stays reproducible
	// for a fixed fault schedule: entries are merged in group-then-name
	// order, not arrival order.
	Parallel int
}

// DefaultDeployConfig returns the pipeline parameters used by the
// examples and the chaos soak: up to 6 tries per RPC, 10ms..1s backoff.
func DefaultDeployConfig() DeployConfig {
	return DeployConfig{
		MaxAttempts: 6,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  time.Second,
		JitterSeed:  1,
	}
}

// Deployment phase names, used in audit entries and metrics counters.
const (
	OpInstall     = "install"
	OpVerify      = "verify"
	OpActivate    = "activate"
	OpRollback    = "rollback"
	OpFetchActive = "fetch-active"
	OpPatch       = "patch"
	OpDelta       = "delta" // per-push summary entry, not an RPC
)

// AuditEntry records one RPC attempt of the deployment pipeline. The
// sequence of entries for a fixed JitterSeed and fault schedule is
// byte-for-byte deterministic.
type AuditEntry struct {
	// Seq is the global attempt index within this controller.
	Seq int
	// Switch names the target switch.
	Switch string
	// Op is one of OpInstall, OpVerify, OpActivate, OpRollback ("rollback"
	// entries are re-activations of the previous verified bundle).
	Op string
	// Attempt counts tries of this op on this switch within one push,
	// starting at 1.
	Attempt int
	// Err is the failure ("" on success).
	Err string
	// Backoff is the delay scheduled before the next attempt (zero when
	// the attempt succeeded or the pipeline gave up).
	Backoff time.Duration
	// Note carries free-form detail for non-RPC entries (e.g. the OpDelta
	// per-push stats summary); "" for plain attempts.
	Note string
}

// String renders one audit line.
func (e AuditEntry) String() string {
	out := fmt.Sprintf("#%d %s %s attempt %d", e.Seq, e.Switch, e.Op, e.Attempt)
	if e.Err == "" {
		out += ": ok"
	} else {
		out += ": " + e.Err
		if e.Backoff > 0 {
			out += fmt.Sprintf(" (retry in %v)", e.Backoff)
		}
	}
	if e.Note != "" {
		out += " [" + e.Note + "]"
	}
	return out
}

// rpcCtx is one deployment pipeline's execution context: the agent, the
// retry policy, a jitter stream and an audit buffer. The serial pipeline
// uses a single context backed by the controller's shared jitter; the
// parallel fan-out gives every switch its own context (and its own
// deterministically-seeded jitter stream), then merges the buffers in a
// scheduling-independent order. Entries are buffered with Seq unset;
// Controller.absorb assigns global sequence numbers at merge time.
type rpcCtx struct {
	agent  SwitchAgent
	cfg    DeployConfig
	tel    *telemetry.Registry
	jitter *rand.Rand
	log    []AuditEntry
}

// backoffFor returns the capped exponential delay before retrying after
// the attempt-th failure (attempt >= 1), with seeded +/-25% jitter.
func (x *rpcCtx) backoffFor(attempt int) time.Duration {
	d := x.cfg.BaseBackoff
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if x.cfg.MaxBackoff > 0 && d >= x.cfg.MaxBackoff {
			d = x.cfg.MaxBackoff
			break
		}
	}
	if x.cfg.MaxBackoff > 0 && d > x.cfg.MaxBackoff {
		d = x.cfg.MaxBackoff
	}
	// Deterministic jitter in [0.75, 1.25).
	j := 0.75 + 0.5*x.jitter.Float64()
	return time.Duration(float64(d) * j)
}

// auditRecord buffers one entry and bumps the matching counters.
func (x *rpcCtx) auditRecord(sw, op string, attempt int, err error, backoff time.Duration) {
	e := AuditEntry{Switch: sw, Op: op, Attempt: attempt, Backoff: backoff}
	if err != nil {
		e.Err = err.Error()
		x.tel.Counter("deploy." + op + ".fail").Inc()
	} else {
		x.tel.Counter("deploy." + op + ".ok").Inc()
	}
	x.log = append(x.log, e)
}

// attempt runs fn up to MaxAttempts times with backoff between failures,
// auditing every try under the given op name. It returns the last error
// when every attempt failed.
func (x *rpcCtx) attempt(sw, op string, fn func() error) error {
	max := x.cfg.MaxAttempts
	if max < 1 {
		max = 1
	}
	var err error
	for try := 1; try <= max; try++ {
		err = fn()
		if err == nil {
			x.auditRecord(sw, op, try, nil, 0)
			x.tel.Gauge("deploy_last_attempts", "switch", sw, "op", op).Set(float64(try))
			if try > 1 {
				x.tel.Counter("deploy_retries_total", "switch", sw).Add(int64(try - 1))
			}
			return nil
		}
		var backoff time.Duration
		if try < max {
			backoff = x.backoffFor(try)
			x.tel.Counter("deploy.backoff_ns").Add(int64(backoff))
			if x.cfg.Sleep != nil {
				x.cfg.Sleep(backoff)
			}
		}
		x.auditRecord(sw, op, try, err, backoff)
	}
	x.tel.Counter("deploy.gave_up").Inc()
	x.tel.Gauge("deploy_last_attempts", "switch", sw, "op", op).Set(float64(max))
	x.tel.Counter("deploy_retries_total", "switch", sw).Add(int64(max - 1))
	return fmt.Errorf("controller: %s on %s failed after %d attempts: %w", op, sw, max, err)
}

// installVerify pushes one switch's bundle and confirms the staged
// readback matches. Each attempt is one install+verify round; any failure
// — a lost RPC, a partial install caught by the readback mismatch —
// triggers an idempotent re-push of the whole SwitchBundle after backoff.
func (x *rpcCtx) installVerify(sw string, want deploy.SwitchBundle) error {
	max := x.cfg.MaxAttempts
	if max < 1 {
		max = 1
	}
	var err error
	for try := 1; try <= max; try++ {
		op := OpInstall
		err = x.agent.Install(sw, want)
		if err == nil {
			x.auditRecord(sw, OpInstall, try, nil, 0)
			op = OpVerify
			var got deploy.SwitchBundle
			got, err = x.agent.Fetch(sw)
			if err == nil && !sameRules(got.Rules, want.Rules) {
				err = fmt.Errorf("staged bundle mismatch: %d/%d rules landed", len(got.Rules), len(want.Rules))
				x.tel.Counter("deploy.partial_detected").Inc()
			}
			if err == nil {
				x.auditRecord(sw, OpVerify, try, nil, 0)
				x.tel.Gauge("deploy_last_attempts", "switch", sw, "op", OpInstall).Set(float64(try))
				if try > 1 {
					x.tel.Counter("deploy_retries_total", "switch", sw).Add(int64(try - 1))
				}
				return nil
			}
		}
		var backoff time.Duration
		if try < max {
			backoff = x.backoffFor(try)
			x.tel.Counter("deploy.backoff_ns").Add(int64(backoff))
			if x.cfg.Sleep != nil {
				x.cfg.Sleep(backoff)
			}
		}
		x.auditRecord(sw, op, try, err, backoff)
	}
	x.tel.Counter("deploy.gave_up").Inc()
	x.tel.Gauge("deploy_last_attempts", "switch", sw, "op", OpInstall).Set(float64(max))
	x.tel.Counter("deploy_retries_total", "switch", sw).Add(int64(max - 1))
	return fmt.Errorf("controller: install on %s failed after %d attempts: %w", sw, max, err)
}

// rpc returns the serial pipeline context: shared jitter stream, shared
// telemetry, buffering into a fresh log absorbed by the caller.
func (c *Controller) rpc() *rpcCtx {
	return &rpcCtx{agent: c.agent, cfg: c.deployCfg, tel: c.tel, jitter: c.jitter}
}

// rpcFor returns an isolated pipeline context for one switch of a
// parallel push: same policy and telemetry, but a private jitter stream
// seeded from (JitterSeed, switch name) so the retry timeline of each
// switch is deterministic regardless of goroutine scheduling.
func (c *Controller) rpcFor(sw string) *rpcCtx {
	h := fnv.New64a()
	h.Write([]byte(sw))
	return &rpcCtx{
		agent:  c.agent,
		cfg:    c.deployCfg,
		tel:    c.tel,
		jitter: newJitter(c.deployCfg.JitterSeed ^ int64(h.Sum64())),
	}
}

// absorb appends a context's buffered audit entries to the controller
// log, assigning global sequence numbers.
func (c *Controller) absorb(x *rpcCtx) {
	for _, e := range x.log {
		e.Seq = c.auditSeq
		c.auditSeq++
		c.auditLog = append(c.auditLog, e)
	}
	x.log = x.log[:0]
}

// attempt is the serial-path retry wrapper (see rpcCtx.attempt).
func (c *Controller) attempt(sw, op string, fn func() error) error {
	x := c.rpc()
	err := x.attempt(sw, op, fn)
	c.absorb(x)
	return err
}

// installVerify is the serial-path wrapper (see rpcCtx.installVerify).
func (c *Controller) installVerify(sw string, want deploy.SwitchBundle) error {
	x := c.rpc()
	err := x.installVerify(sw, want)
	c.absorb(x)
	return err
}

// sameRules compares rule lists order-insensitively (agents may reorder).
func sameRules(a, b []deploy.RuleJSON) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r deploy.RuleJSON) string {
		return fmt.Sprintf("%d/%d/%d>%d", r.Tag, r.In, r.Out, r.NewTag)
	}
	set := make(map[string]int, len(a))
	for _, r := range a {
		set[key(r)]++
	}
	for _, r := range b {
		set[key(r)]--
		if set[key(r)] < 0 {
			return false
		}
	}
	return true
}

// pushBundle deploys newBundle to the fabric with two-phase semantics:
//
//	phase 1: install + verify the staged bundle on every switch that
//	         needs changes (the live rules are untouched);
//	phase 2: activate switch by switch; if any activation exhausts its
//	         retries, re-install and re-activate the PREVIOUS verified
//	         bundle on every switch already flipped (rollback), so the
//	         fabric never keeps running a half-deployed rule set.
//
// Switches whose bundle is unchanged are skipped entirely — expansion
// stays incremental — unless forceAll re-pushes everything (Redeploy
// after a switch reboot). Called with c.mu held.
func (c *Controller) pushBundle(newBundle *deploy.Bundle, forceAll bool) error {
	push := c.tel.StartSpan("deploy/push")
	defer push.End()
	changed := c.changedSwitches(newBundle, forceAll)
	c.tel.Counter("deploy.pushes").Inc()
	if c.deployCfg.Parallel > 1 && len(changed) > 1 {
		return c.pushBundleParallel(push, newBundle, changed)
	}

	// Phase 1: stage everywhere. Failure here aborts with the active
	// fabric untouched (staged slots are inert).
	stage := push.Child("stage")
	for _, sw := range changed {
		if err := c.installVerify(sw, newBundle.Switches[sw]); err != nil {
			c.tel.Counter("deploy.aborted_staging").Inc()
			stage.End()
			return err
		}
	}
	stage.End()

	// Phase 2: flip. Track what flipped so we can roll back.
	activate := push.Child("activate")
	defer activate.End()
	var activated []string
	for _, sw := range changed {
		if err := c.attempt(sw, OpActivate, func() error {
			return c.agent.Activate(sw)
		}); err != nil {
			c.rollback(activated)
			return fmt.Errorf("controller: rolled back to previous bundle: %w", err)
		}
		activated = append(activated, sw)
	}
	return nil
}

// pushBundleParallel is pushBundle's bounded fan-out path. Switches are
// batched into identical-bundle groups (deploy.GroupIdentical) — on the
// symmetric fabrics Tagger targets most of the fleet shares a handful of
// distinct bundle bodies — and each phase drives up to Parallel switches
// concurrently. Two-phase semantics match the serial path: every switch
// is staged (staged slots are inert, so staging all before checking for
// failures is safe), any staging failure aborts with the active fabric
// untouched, and an exhausted activation rolls back every switch that
// already flipped. Each switch runs on its own rpcCtx with a
// deterministically-seeded jitter stream; audit buffers are absorbed in
// group-then-name order after each phase, so the log is reproducible for
// a fixed fault schedule no matter how goroutines interleave.
func (c *Controller) pushBundleParallel(push *telemetry.Span, newBundle *deploy.Bundle, changed []string) error {
	groups := deploy.GroupIdentical(newBundle, changed)
	c.tel.Gauge("deploy_push_groups").Set(float64(len(groups)))
	c.tel.Gauge("deploy_push_switches").Set(float64(len(changed)))

	ordered := make([]string, 0, len(changed))
	for _, gr := range groups {
		ordered = append(ordered, gr.Switches...)
	}
	ctxs := make(map[string]*rpcCtx, len(ordered))
	for _, sw := range ordered {
		ctxs[sw] = c.rpcFor(sw)
	}
	workers := c.deployCfg.Parallel
	if workers > len(ordered) {
		workers = len(ordered)
	}

	// runPhase applies fn to every switch with bounded concurrency and
	// returns the per-switch errors. Audit entries stay buffered in each
	// switch's rpcCtx until absorbAll.
	runPhase := func(fn func(x *rpcCtx, sw string) error) map[string]error {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		var mu sync.Mutex
		errs := make(map[string]error)
		for _, sw := range ordered {
			wg.Add(1)
			sem <- struct{}{}
			go func(sw string) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := fn(ctxs[sw], sw); err != nil {
					mu.Lock()
					errs[sw] = err
					mu.Unlock()
				}
			}(sw)
		}
		wg.Wait()
		return errs
	}
	absorbAll := func() {
		for _, sw := range ordered {
			c.absorb(ctxs[sw])
		}
	}
	firstErr := func(errs map[string]error) error {
		for _, sw := range ordered {
			if err := errs[sw]; err != nil {
				return err
			}
		}
		return nil
	}

	// Phase 1: stage everywhere. Failure aborts with the active fabric
	// untouched.
	stage := push.Child("stage")
	stageErrs := runPhase(func(x *rpcCtx, sw string) error {
		return x.installVerify(sw, newBundle.Switches[sw])
	})
	stage.End()
	absorbAll()
	if err := firstErr(stageErrs); err != nil {
		c.tel.Counter("deploy.aborted_staging").Inc()
		return err
	}

	// Phase 2: flip. Track what flipped so we can roll back.
	activate := push.Child("activate")
	defer activate.End()
	var actMu sync.Mutex
	var activated []string
	actErrs := runPhase(func(x *rpcCtx, sw string) error {
		err := x.attempt(sw, OpActivate, func() error {
			return c.agent.Activate(sw)
		})
		if err == nil {
			actMu.Lock()
			activated = append(activated, sw)
			actMu.Unlock()
		}
		return err
	})
	absorbAll()
	if err := firstErr(actErrs); err != nil {
		sort.Strings(activated)
		c.rollback(activated)
		return fmt.Errorf("controller: rolled back to previous bundle: %w", err)
	}
	return nil
}

// rollback re-stages and re-activates the previous verified bundle on the
// given switches. Rollback RPCs get the same retry/backoff treatment; a
// switch that refuses even the rollback is recorded (counter
// deploy.rollback.stuck) — operators must intervene, exactly as in a real
// fabric.
func (c *Controller) rollback(switches []string) {
	defer c.tel.StartSpan("deploy/rollback").End()
	c.tel.Counter("deploy.rollbacks").Inc()
	prev := &deploy.Bundle{Switches: map[string]deploy.SwitchBundle{}}
	if c.bundle != nil {
		prev = c.bundle
	}
	for _, sw := range switches {
		c.tel.Counter("deploy_rollbacks_total", "switch", sw).Inc()
		if err := c.installVerify(sw, prev.Switches[sw]); err != nil {
			c.tel.Counter("deploy.rollback.stuck").Inc()
			continue
		}
		if err := c.attempt(sw, OpRollback, func() error {
			return c.agent.Activate(sw)
		}); err != nil {
			c.tel.Counter("deploy.rollback.stuck").Inc()
		}
	}
}

// changedSwitches returns, in deterministic order, the switches whose
// bundle differs from the currently deployed one (every switch on the
// first push or when forced).
func (c *Controller) changedSwitches(newBundle *deploy.Bundle, forceAll bool) []string {
	var names []string
	if c.bundle == nil || forceAll {
		for sw := range newBundle.Switches {
			names = append(names, sw)
		}
	} else {
		for sw := range deploy.Diff(c.bundle, newBundle) {
			names = append(names, sw)
		}
	}
	sort.Strings(names)
	return names
}

// newJitter builds the seeded jitter source.
func newJitter(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
