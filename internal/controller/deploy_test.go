package controller

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/deploy"
	"repro/internal/paper"
	"repro/internal/topology"
)

// The chaos fabric must satisfy the controller's agent contract.
var _ SwitchAgent = (*chaos.Fabric)(nil)

// switchNames returns every switch of the graph by name.
func switchNames(g *topology.Graph) []string {
	var out []string
	for _, sw := range g.Switches() {
		out = append(out, g.Node(sw).Name)
	}
	return out
}

// fabricMatches reports whether every switch's ACTIVE rules equal the
// bundle's (and no switch runs rules the bundle does not have).
func fabricMatches(t *testing.T, f *chaos.Fabric, b *deploy.Bundle, names []string) bool {
	t.Helper()
	live := f.ActiveBundle(b.MaxTag)
	return len(deploy.Diff(live, b)) == 0
}

func testCfg(seed int64) DeployConfig {
	return DeployConfig{
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		JitterSeed:  seed,
	}
}

func TestDeployThroughFlakyAgentsConverges(t *testing.T) {
	c := paper.Testbed()
	fab := chaos.NewFabric(switchNames(c.Graph))
	// Transient failures and control-channel pathologies on several
	// switches: drops lose requests, long delays apply-but-timeout (the
	// idempotent re-push case), duplicates apply twice.
	fab.Inject("T1", chaos.Fault{Kind: chaos.FaultInstallTransient, Count: 2})
	fab.Inject("L2", chaos.Fault{Kind: chaos.FaultRPCDrop})
	fab.Inject("S1", chaos.Fault{Kind: chaos.FaultRPCDelay, Delay: time.Hour})
	fab.Inject("S2", chaos.Fault{Kind: chaos.FaultRPCDuplicate})

	ctl, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(testCfg(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(c.Graph)) {
		t.Fatal("fabric active state does not match the deployed bundle")
	}
	cnt := ctl.Counters()
	if cnt["deploy.install.fail"] == 0 && cnt["deploy.verify.fail"] == 0 {
		t.Errorf("expected some recorded failures, counters: %v", cnt)
	}
	if cnt["deploy.rollbacks"] != 0 {
		t.Errorf("transient faults must not trigger rollback: %v", cnt)
	}
}

func TestPartialInstallDetectedAndRepaired(t *testing.T) {
	c := paper.Testbed()
	fab := chaos.NewFabric(switchNames(c.Graph))
	fab.Inject("L1", chaos.Fault{Kind: chaos.FaultInstallPartial, Frac: 0.4})

	ctl, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(testCfg(7)))
	if err != nil {
		t.Fatal(err)
	}
	if got := ctl.Counters()["deploy.partial_detected"]; got != 1 {
		t.Errorf("partial_detected = %d, want 1", got)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(c.Graph)) {
		t.Fatal("partial install survived verification")
	}
	// The audit log must show the failed verify followed by a successful
	// re-push on L1.
	var sawMismatch, sawRepair bool
	for _, e := range ctl.Audit() {
		if e.Switch != "L1" || e.Op != OpVerify {
			continue
		}
		if e.Err != "" && strings.Contains(e.Err, "mismatch") {
			sawMismatch = true
		}
		if sawMismatch && e.Err == "" {
			sawRepair = true
		}
	}
	if !sawMismatch || !sawRepair {
		t.Errorf("audit log missing mismatch/repair sequence: %v", ctl.Audit())
	}
}

// TestActivationFailureRollsBack is the two-phase guarantee: when a
// switch refuses to activate after every retry, the switches that
// already flipped are re-pointed at the previous verified bundle and the
// controller keeps the old deployment — the fabric never keeps running
// a half-deployed rule set.
func TestActivationFailureRollsBack(t *testing.T) {
	c := paper.Testbed()
	fab := chaos.NewFabric(switchNames(c.Graph))
	ctl, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(testCfg(7)))
	if err != nil {
		t.Fatal(err)
	}
	prev := ctl.Bundle()

	// Expansion will push to (sorted) L5, L6, S1, S2, T5, T6. Arm S2 so
	// its install+verify pass and every activate attempt fails: L5, L6,
	// S1 activate first and must be rolled back.
	if err := c.Expand(1); err != nil {
		t.Fatal(err)
	}
	// The fabric needs agents for the new switches.
	fab2 := chaos.NewFabric(switchNames(c.Graph))
	fab2.Inject("S2",
		chaos.Fault{Kind: chaos.FaultPass}, // install
		chaos.Fault{Kind: chaos.FaultPass}, // verify readback
		chaos.Fault{Kind: chaos.FaultInstallPersistent, Count: 1000})
	ctl2, err := NewClos(c, 1, WithAgent(fab2), WithDeployConfig(testCfg(7)))
	_ = ctl2
	if err == nil {
		t.Fatal("activation failure did not surface")
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("error does not mention rollback: %v", err)
	}
	// Every switch's active slot must be empty (the pre-push state) —
	// no switch may keep running the new bundle.
	live := fab2.ActiveBundle(prev.MaxTag)
	if len(live.Switches) != 0 {
		t.Fatalf("switches still running the aborted bundle: %v", live.Switches)
	}
}

// TestExpansionActivationFailureKeepsPreviousBundle drives the same
// rollback through an established controller: the first deployment
// sticks, the expansion push fails at activation, and the fabric ends up
// running exactly the previous verified bundle.
func TestExpansionActivationFailureKeepsPreviousBundle(t *testing.T) {
	c := paper.Testbed()
	names := switchNames(c.Graph)
	fab := chaos.NewFabric(append(names, "T5", "T6", "L5", "L6"))
	ctl, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(testCfg(7)))
	if err != nil {
		t.Fatal(err)
	}
	prev := ctl.Bundle()

	if err := c.Expand(1); err != nil {
		t.Fatal(err)
	}
	fab.Inject("S2",
		chaos.Fault{Kind: chaos.FaultPass},
		chaos.Fault{Kind: chaos.FaultPass},
		chaos.Fault{Kind: chaos.FaultInstallPersistent, Count: 1000})
	if err := ctl.Handle(Event{Kind: EventExpansion}); err == nil {
		t.Fatal("expansion push should have failed")
	}
	if ctl.Bundle() != prev {
		t.Fatal("controller advanced its bundle past a failed push")
	}
	if len(ctl.Diffs()) != 0 {
		t.Fatal("failed push recorded a diff")
	}
	if !fabricMatches(t, fab, prev, names) {
		t.Fatal("fabric is not running the previous verified bundle after rollback")
	}
	if got := ctl.Counters()["deploy.rollbacks"]; got != 1 {
		t.Errorf("rollbacks = %d, want 1", got)
	}
}

// TestAuditDeterministic is the determinism contract: same fault
// schedule + same jitter seed => identical audit log, including the
// backoff timeline.
func TestAuditDeterministic(t *testing.T) {
	run := func() []AuditEntry {
		c := paper.Testbed()
		fab := chaos.NewFabric(switchNames(c.Graph))
		fab.Inject("T2", chaos.Fault{Kind: chaos.FaultInstallTransient, Count: 3})
		fab.Inject("L4", chaos.Fault{Kind: chaos.FaultInstallPartial, Frac: 0.5})
		ctl, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(testCfg(42)))
		if err != nil {
			t.Fatal(err)
		}
		return ctl.Audit()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("audit logs differ across identical runs")
	}
	var backoffs int
	for _, e := range a {
		if e.Backoff > 0 {
			backoffs++
		}
	}
	if backoffs == 0 {
		t.Fatal("no backoff recorded for a faulty run")
	}
}

func TestRedeployAfterAgentReboot(t *testing.T) {
	c := paper.Testbed()
	fab := chaos.NewFabric(switchNames(c.Graph))
	ctl, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(testCfg(7)))
	if err != nil {
		t.Fatal(err)
	}
	fab.Reboot("T3")
	if len(fab.Active("T3").Rules) != 0 {
		t.Fatal("reboot did not wipe agent state")
	}
	if err := ctl.Redeploy(); err != nil {
		t.Fatal(err)
	}
	if !fabricMatches(t, fab, ctl.Bundle(), switchNames(c.Graph)) {
		t.Fatal("redeploy did not restore the fabric")
	}
}

// TestGaveUpStagingLeavesActiveUntouched: a switch that cannot even
// stage aborts the push in phase 1, before any activation — the live
// fabric keeps the previous bundle with zero rollback work.
func TestGaveUpStagingLeavesActiveUntouched(t *testing.T) {
	c := paper.Testbed()
	fab := chaos.NewFabric(switchNames(c.Graph))
	fab.Inject("L1", chaos.Fault{Kind: chaos.FaultInstallPersistent, Count: 1000})
	_, err := NewClos(c, 1, WithAgent(fab), WithDeployConfig(testCfg(7)))
	if err == nil {
		t.Fatal("persistent staging failure did not surface")
	}
	if live := fab.ActiveBundle(2); len(live.Switches) != 0 {
		t.Fatal("staging-phase abort still activated switches")
	}
}

// TestAccessorsRaceFree exercises the mutex-guarded accessors against
// concurrent event handling; `go test -race` is the assertion.
func TestAccessorsRaceFree(t *testing.T) {
	c := paper.Testbed()
	ctl, err := NewClos(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	a, b := g.MustLookup("L1"), g.MustLookup("T1")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			ev := Event{Kind: EventLinkDown, A: a, B: b}
			if i%2 == 1 {
				ev.Kind = EventLinkUp
			}
			if err := ctl.Handle(ev); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = ctl.Diffs()
			_ = ctl.FailureCount()
			_ = ctl.Audit()
			_ = ctl.Counters()
		}
	}()
	wg.Wait()
	if ctl.FailureCount() != 200 {
		t.Errorf("FailureCount = %d", ctl.FailureCount())
	}
}
