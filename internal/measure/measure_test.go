package measure

import (
	"strings"
	"testing"

	"repro/internal/paper"
)

func TestHealthyNetworkNoReroutes(t *testing.T) {
	c := paper.Testbed()
	cfg := DefaultConfig()
	cfg.EpisodeRate = 0 // no failures ever
	res := RunCampaign(c, cfg, 1, 10_000)
	if len(res) != 1 {
		t.Fatal("rows")
	}
	if res[0].Rerouted != 0 || res[0].Probability != 0 {
		t.Errorf("healthy network saw reroutes: %+v", res[0])
	}
	if res[0].Total != 10_000 || res[0].Day != 1 {
		t.Errorf("row fields: %+v", res[0])
	}
}

func TestRerouteProbabilityBand(t *testing.T) {
	// With the default failure process, the measured probability should
	// land in the paper's 1e-5 order of magnitude.
	c := paper.Testbed()
	res := RunCampaign(c, DefaultConfig(), 7, 2_000_000)
	if len(res) != 7 {
		t.Fatalf("rows = %d", len(res))
	}
	var total, rer int64
	for _, r := range res {
		total += r.Total
		rer += r.Rerouted
		if r.Day < 1 || r.Day > 7 {
			t.Errorf("day out of range: %+v", r)
		}
	}
	p := float64(rer) / float64(total)
	if p < 1e-6 || p > 1e-3 {
		t.Errorf("reroute probability %.2e outside the plausible band around 1e-5", p)
	}
	if rer == 0 {
		t.Error("failure process produced no reroutes at all")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	c := paper.Testbed()
	cfg := DefaultConfig()
	cfg.EpisodeRate = 1e-3 // denser for a short run
	a := RunCampaign(c, cfg, 2, 50_000)
	b := RunCampaign(paper.Testbed(), cfg, 2, 50_000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEpisodesActuallyLowerTTL(t *testing.T) {
	// Force a near-certain failure process and verify reroutes register.
	c := paper.Testbed()
	cfg := DefaultConfig()
	cfg.EpisodeRate = 0.05
	cfg.EpisodeLength = 100
	res := RunCampaign(c, cfg, 1, 20_000)
	if res[0].Rerouted == 0 {
		t.Fatal("dense failure process produced no rerouted measurements")
	}
	if res[0].Probability <= 0 {
		t.Error("probability not computed")
	}
}

func TestDayResultString(t *testing.T) {
	s := DayResult{Day: 3, Total: 100, Rerouted: 2, Probability: 0.02}.String()
	if !strings.Contains(s, "day 3") || !strings.Contains(s, "rerouted=2") {
		t.Errorf("bad row rendering: %q", s)
	}
}

func TestFailedLinksRestoredAfterDay(t *testing.T) {
	c := paper.Testbed()
	cfg := DefaultConfig()
	cfg.EpisodeRate = 0.01
	mc := NewCampaign(c, cfg)
	mc.RunDay(1, 10_000)
	if got := len(c.Graph.FailedLinks()); got != 0 {
		t.Errorf("%d links left failed after the day", got)
	}
}
