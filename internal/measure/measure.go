// Package measure reproduces the paper's §3.2 up-down-violation
// measurement (Table 1): servers send IP-in-IP probes to the highest-layer
// switches; the switch decapsulates and routes the probe back using the
// inner header with TTL 64; a received TTL below the shortest-path value
// proves the probe took a reroute (bounce) path.
//
// The authors had production telemetry from more than 20 data centers; we
// drive the same probe arithmetic over a simulated failure process on a
// Clos, calibrated so per-measurement reroute probability lands in the
// paper's observed ~1e-5 band.
package measure

import (
	"fmt"
	"math/rand"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Config parameterizes the measurement campaign.
type Config struct {
	// ProbesPerMeasurement is the paper's n = 100.
	ProbesPerMeasurement int
	// InitialTTL of the inner header; the paper uses 64.
	InitialTTL int
	// EpisodeRate is the probability that a new link-failure episode
	// begins at any given measurement tick.
	EpisodeRate float64
	// EpisodeLength is how many measurement ticks a failure persists
	// ("such routes can persist for minutes or even longer").
	EpisodeLength int
	// Seed drives the deterministic random process.
	Seed int64
}

// DefaultConfig matches the paper's methodology with an episode process
// calibrated to land in the ~1e-5 reroute-probability band for the
// testbed-sized Clos.
func DefaultConfig() Config {
	return Config{
		ProbesPerMeasurement: 100,
		InitialTTL:           64,
		EpisodeRate:          1e-5,
		EpisodeLength:        40,
		Seed:                 1,
	}
}

// DayResult is one row of Table 1.
type DayResult struct {
	Day         int
	Total       int64 // measurements taken
	Rerouted    int64 // measurements that saw a rerouted probe
	Probability float64
}

// String renders the row like the paper's table.
func (d DayResult) String() string {
	return fmt.Sprintf("day %d: total=%d rerouted=%d p=%.2e",
		d.Day, d.Total, d.Rerouted, d.Probability)
}

// Campaign runs the probe methodology over a Clos.
type Campaign struct {
	clos *topology.Clos
	cfg  Config
	rng  *rand.Rand

	// Active failure episodes: remaining ticks per failed link.
	active map[topology.LinkID]int

	// intended caches the healthy downward route of each (spine, host)
	// probe. A failure on the intended route forces a detour from the
	// failure point — the local reroute real networks take, which (unlike
	// a globally recomputed shortest path) can be longer and lower the
	// received TTL.
	intended map[[2]topology.NodeID]routing.Path
}

// NewCampaign prepares a campaign over the given Clos.
func NewCampaign(c *topology.Clos, cfg Config) *Campaign {
	mc := &Campaign{
		clos:     c,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		active:   make(map[topology.LinkID]int),
		intended: make(map[[2]topology.NodeID]routing.Path),
	}
	for _, s := range c.Spines {
		for _, h := range c.Hosts {
			mc.intended[[2]topology.NodeID{s, h}] = routing.ShortestPath(c.Graph, s, h)
		}
	}
	return mc
}

// fabricLinks returns the switch-to-switch links (candidates for failure).
func (mc *Campaign) fabricLinks() []topology.LinkID {
	g := mc.clos.Graph
	var out []topology.LinkID
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		if g.Node(l.A).Kind.IsSwitch() && g.Node(l.B).Kind.IsSwitch() {
			out = append(out, l.ID)
		}
	}
	return out
}

// RunDay executes measurements measurement ticks and returns the day row.
// Each tick: advance the failure process, pick a random (server, spine)
// pair, decapsulate at the spine, and route the probe back over the
// current topology; if any of the n probes sees TTL below the healthy
// value, the measurement counts as rerouted.
func (mc *Campaign) RunDay(day int, measurements int64) DayResult {
	g := mc.clos.Graph
	links := mc.fabricLinks()
	hosts := mc.clos.Hosts
	spines := mc.clos.Spines

	res := DayResult{Day: day, Total: measurements}
	for i := int64(0); i < measurements; i++ {
		// Failure process.
		for l, left := range mc.active {
			if left <= 1 {
				g.Link(l).Failed = false
				delete(mc.active, l)
			} else {
				mc.active[l] = left - 1
			}
		}
		if mc.rng.Float64() < mc.cfg.EpisodeRate {
			l := links[mc.rng.Intn(len(links))]
			if _, already := mc.active[l]; !already {
				g.Link(l).Failed = true
				mc.active[l] = mc.cfg.EpisodeLength
			}
		}

		host := hosts[mc.rng.Intn(len(hosts))]
		spine := spines[mc.rng.Intn(len(spines))]
		if mc.measurementSeesReroute(spine, host) {
			res.Rerouted++
		}
	}
	if res.Total > 0 {
		res.Probability = float64(res.Rerouted) / float64(res.Total)
	}
	// Clean up any episodes that outlived the day.
	for l := range mc.active {
		g.Link(l).Failed = false
		delete(mc.active, l)
	}
	return res
}

// measurementSeesReroute walks one probe's intended downward route from
// the spine. If a hop's link is failed, the probe detours: it follows the
// shortest route from the failure point over the degraded topology (a
// bounce back up when the failure is below). The received TTL is lower
// than expected iff the detour lengthened the path.
func (mc *Campaign) measurementSeesReroute(spine, host topology.NodeID) bool {
	if len(mc.active) == 0 {
		return false // healthy network: TTL always as expected
	}
	g := mc.clos.Graph
	p := mc.intended[[2]topology.NodeID{spine, host}]
	hops := 0
	for i := 0; i+1 < len(p); i++ {
		l := g.LinkBetween(p[i], p[i+1])
		if l == nil || !l.Failed {
			hops++
			continue
		}
		// Detour from the failure point.
		detour := routing.ShortestPath(g, p[i], host)
		if detour == nil {
			return true // probe lost: certainly anomalous
		}
		hops += detour.Hops()
		break
	}
	return hops > p.Hops()
}

// RunCampaign produces the full Table 1: one row per day.
func RunCampaign(c *topology.Clos, cfg Config, days int, perDay int64) []DayResult {
	mc := NewCampaign(c, cfg)
	out := make([]DayResult, 0, days)
	for d := 1; d <= days; d++ {
		out = append(out, mc.RunDay(d, perDay))
	}
	return out
}
