package wire

import "testing"

// Fuzz targets: decoders must never panic or over-read on arbitrary
// bytes, and anything they accept must re-encode to something they accept
// again (decode-encode-decode stability).

func FuzzDecodeIPv4(f *testing.F) {
	h := IPv4{DSCP: 1, TTL: 64, Protocol: ProtoUDP, Src: [4]byte{1}, Dst: [4]byte{2}}
	f.Add(h.Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, _, err := DecodeIPv4(data)
		if err != nil {
			return
		}
		// Accepted packets round-trip through our encoder.
		re := got.Encode(nil)
		got2, _, err := DecodeIPv4(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got2 != got {
			t.Fatalf("unstable: %+v vs %+v", got, got2)
		}
	})
}

func FuzzDecodeRoCEv2(f *testing.F) {
	p := &RoCEv2Packet{
		IP:      IPv4{DSCP: 1, TTL: 64},
		BTH:     BTH{Opcode: OpcodeRCSendOnly, PSN: 7},
		Payload: []byte{1, 2, 3},
	}
	f.Add(EncodeRoCEv2(p))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeRoCEv2(data)
		if err != nil {
			return
		}
		re := EncodeRoCEv2(got)
		got2, err := DecodeRoCEv2(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got2.IP.DSCP != got.IP.DSCP || got2.BTH.PSN != got.BTH.PSN {
			t.Fatal("unstable fields")
		}
	})
}

func FuzzDecodePFC(f *testing.F) {
	var fr PFCFrame
	fr.Enabled[2] = true
	fr.Quanta[2] = 9
	f.Add(fr.Encode(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodePFC(data)
		if err != nil {
			return
		}
		got2, err := DecodePFC(got.Encode(nil))
		if err != nil || got2 != got {
			t.Fatalf("unstable: %+v vs %+v (%v)", got, got2, err)
		}
	})
}

func FuzzDecapProbe(f *testing.F) {
	p := &ProbePacket{
		Outer: IPv4{TTL: 64, Src: [4]byte{10, 0, 0, 9}, Dst: [4]byte{10, 255, 0, 1}},
		Inner: IPv4{TTL: 64, Src: [4]byte{10, 255, 0, 1}, Dst: [4]byte{10, 0, 0, 9}},
	}
	f.Add(EncodeProbe(p))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DecapProbe(data) // must not panic
	})
}
