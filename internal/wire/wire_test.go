package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MAC{0x01, 0x02, 0x03, 0x04, 0x05, 0x06},
		Src:       MAC{0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f},
		EtherType: EtherTypeIPv4,
	}
	b := e.Encode(nil)
	if len(b) != EthernetLen {
		t.Fatalf("len = %d", len(b))
	}
	got, rest, err := DecodeEthernet(append(b, 0xAA))
	if err != nil {
		t.Fatal(err)
	}
	if got != e || len(rest) != 1 {
		t.Errorf("roundtrip: %+v", got)
	}
	if _, _, err := DecodeEthernet(b[:10]); err != ErrTruncated {
		t.Errorf("truncation: %v", err)
	}
	if got.Src.String() != "0a:0b:0c:0d:0e:0f" {
		t.Errorf("MAC string: %s", got.Src)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := IPv4{
		DSCP: 2, ECN: 1, TotalLen: 40, ID: 0x1234, TTL: 64, Protocol: ProtoUDP,
		Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
	}
	b := h.Encode(nil)
	if len(b) != IPv4Len {
		t.Fatalf("len = %d", len(b))
	}
	got, rest, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || len(rest) != 0 {
		t.Errorf("roundtrip: %+v vs %+v", got, h)
	}
	// Corrupt a byte: checksum must catch it.
	b[16] ^= 0xff
	if _, _, err := DecodeIPv4(b); err == nil {
		t.Error("corruption not detected")
	}
	// Bad version.
	b[16] ^= 0xff
	b[0] = 0x65
	if _, _, err := DecodeIPv4(b); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	if _, _, err := DecodeIPv4(b[:10]); err != ErrTruncated {
		t.Error("truncation")
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(dscp, ecn, ttl, proto uint8, id, totalLen uint16, src, dst [4]byte) bool {
		h := IPv4{
			DSCP: dscp & 0x3f, ECN: ecn & 0x03, TotalLen: totalLen, ID: id,
			TTL: ttl, Protocol: proto, Src: src, Dst: dst,
		}
		got, _, err := DecodeIPv4(h.Encode(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{Src: 50000, Dst: RoCEv2Port, Length: 100}
	got, rest, err := DecodeUDP(append(u.Encode(nil), 1, 2))
	if err != nil || got != u || len(rest) != 2 {
		t.Fatalf("roundtrip: %+v %v", got, err)
	}
	if _, _, err := DecodeUDP(nil); err != ErrTruncated {
		t.Error("truncation")
	}
}

func TestBTHRoundTrip(t *testing.T) {
	h := BTH{Opcode: OpcodeRCWriteOnly, PKey: 0xffff, DestQP: 0x0abcde, AckReq: true, PSN: 0x123456}
	b := h.Encode(nil)
	if len(b) != BTHLen {
		t.Fatalf("len = %d", len(b))
	}
	got, rest, err := DecodeBTH(append(b, 9))
	if err != nil || got != h || len(rest) != 1 {
		t.Fatalf("roundtrip: %+v vs %+v (%v)", got, h, err)
	}
	if _, _, err := DecodeBTH(b[:4]); err != ErrTruncated {
		t.Error("truncation")
	}
}

func TestRoCEv2EndToEnd(t *testing.T) {
	p := &RoCEv2Packet{
		Eth: Ethernet{Dst: MAC{1}, Src: MAC{2}},
		IP: IPv4{
			DSCP: 1, TTL: 64,
			Src: [4]byte{10, 1, 0, 1}, Dst: [4]byte{10, 2, 0, 1},
		},
		UDP:     UDP{Src: 49152},
		BTH:     BTH{Opcode: OpcodeRCSendOnly, DestQP: 7, PSN: 42},
		Payload: bytes.Repeat([]byte{0x5a}, 32),
	}
	frame := EncodeRoCEv2(p)
	got, err := DecodeRoCEv2(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag() != 1 {
		t.Errorf("tag = %d", got.Tag())
	}
	if got.BTH.PSN != 42 || got.UDP.Dst != RoCEv2Port {
		t.Errorf("fields: %+v", got)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Error("payload mangled")
	}

	// Wrong ethertype / protocol / port are all rejected.
	bad := append([]byte(nil), frame...)
	bad[12] = 0x86 // not IPv4
	if _, err := DecodeRoCEv2(bad); err == nil {
		t.Error("ethertype accepted")
	}
}

func TestRewriteTag(t *testing.T) {
	p := &RoCEv2Packet{
		IP:  IPv4{DSCP: 1, TTL: 64, Src: [4]byte{1}, Dst: [4]byte{2}},
		BTH: BTH{Opcode: OpcodeRCSendOnly},
	}
	frame := EncodeRoCEv2(p)
	old, err := RewriteTag(frame, 2)
	if err != nil || old != 1 {
		t.Fatalf("rewrite: old=%d err=%v", old, err)
	}
	// The frame must still parse with a valid checksum and the new tag.
	got, err := DecodeRoCEv2(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag() != 2 {
		t.Errorf("tag = %d", got.Tag())
	}
	if _, err := RewriteTag(frame[:10], 1); err != ErrTruncated {
		t.Error("truncation")
	}
}

func TestDecrementTTL(t *testing.T) {
	p := &RoCEv2Packet{IP: IPv4{DSCP: 1, TTL: 64}, BTH: BTH{}}
	frame := EncodeRoCEv2(p)
	for want := 63; want >= 62; want-- {
		ttl, err := DecrementTTL(frame)
		if err != nil || ttl != want {
			t.Fatalf("ttl = %d err=%v", ttl, err)
		}
	}
	got, err := DecodeRoCEv2(frame)
	if err != nil {
		t.Fatal(err) // checksum must remain valid
	}
	if got.IP.TTL != 62 {
		t.Errorf("TTL = %d", got.IP.TTL)
	}
	// At zero it stays zero.
	for i := 0; i < 70; i++ {
		DecrementTTL(frame)
	}
	if ttl, _ := DecrementTTL(frame); ttl != 0 {
		t.Errorf("TTL should floor at 0, got %d", ttl)
	}
}

func TestProbeEncapDecap(t *testing.T) {
	// The §3.2 measurement: outer server->spine, inner spine->server.
	p := &ProbePacket{
		Outer: IPv4{TTL: 64, Src: [4]byte{10, 0, 0, 9}, Dst: [4]byte{10, 255, 0, 1}},
		Inner: IPv4{TTL: 64, Src: [4]byte{10, 255, 0, 1}, Dst: [4]byte{10, 0, 0, 9}},
	}
	b := EncodeProbe(p)
	inner, payload, err := DecapProbe(b)
	if err != nil {
		t.Fatal(err)
	}
	if inner.Dst != p.Inner.Dst || inner.TTL != 64 || len(payload) != 0 {
		t.Errorf("inner: %+v", inner)
	}
	// Non-IPIP outer is rejected.
	q := &RoCEv2Packet{IP: IPv4{TTL: 4}, BTH: BTH{}}
	frame := EncodeRoCEv2(q)
	if _, _, err := DecapProbe(frame[EthernetLen:]); err == nil {
		t.Error("non-probe accepted")
	}
}

func TestPFCFrameRoundTrip(t *testing.T) {
	f := PFCFrame{}
	f.Enabled[1] = true
	f.Enabled[3] = true
	f.Quanta[1] = 0xffff
	f.Quanta[3] = 100
	b := f.Encode(nil)
	if len(b) != PFCFrameLen {
		t.Fatalf("len = %d", len(b))
	}
	got, err := DecodePFC(b)
	if err != nil || got != f {
		t.Fatalf("roundtrip: %+v (%v)", got, err)
	}
	// Opcode check.
	b[1] = 0x02
	if _, err := DecodePFC(b); err != ErrBadOpcode {
		t.Errorf("opcode: %v", err)
	}
	if _, err := DecodePFC(b[:4]); err != ErrTruncated {
		t.Error("truncation")
	}
}

func TestPFCFrameProperty(t *testing.T) {
	f := func(vec uint8, q [8]uint16) bool {
		var fr PFCFrame
		for i := 0; i < 8; i++ {
			fr.Enabled[i] = vec&(1<<uint(i)) != 0
			fr.Quanta[i] = q[i]
		}
		got, err := DecodePFC(fr.Encode(nil))
		return err == nil && got == fr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
