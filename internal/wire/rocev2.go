package wire

import "fmt"

// RoCEv2Packet is a fully parsed RoCEv2 frame.
type RoCEv2Packet struct {
	Eth     Ethernet
	IP      IPv4
	UDP     UDP
	BTH     BTH
	Payload []byte
}

// Tag returns the Tagger tag the packet carries: the DSCP field (§7:
// "We use DSCP field in IP header as the tag").
func (p *RoCEv2Packet) Tag() int { return int(p.IP.DSCP) }

// EncodeRoCEv2 composes a complete frame.
func EncodeRoCEv2(p *RoCEv2Packet) []byte {
	p.UDP.Dst = RoCEv2Port
	p.UDP.Length = uint16(UDPLen + BTHLen + len(p.Payload))
	p.IP.Protocol = ProtoUDP
	p.IP.TotalLen = uint16(IPv4Len) + p.UDP.Length
	p.Eth.EtherType = EtherTypeIPv4

	b := make([]byte, 0, EthernetLen+int(p.IP.TotalLen))
	b = p.Eth.Encode(b)
	b = p.IP.Encode(b)
	b = p.UDP.Encode(b)
	b = p.BTH.Encode(b)
	return append(b, p.Payload...)
}

// DecodeRoCEv2 parses a frame down to the BTH, rejecting non-RoCEv2
// traffic.
func DecodeRoCEv2(b []byte) (*RoCEv2Packet, error) {
	var p RoCEv2Packet
	var err error
	var rest []byte
	if p.Eth, rest, err = DecodeEthernet(b); err != nil {
		return nil, err
	}
	if p.Eth.EtherType != EtherTypeIPv4 {
		return nil, fmt.Errorf("wire: ethertype 0x%04x is not IPv4", p.Eth.EtherType)
	}
	if p.IP, rest, err = DecodeIPv4(rest); err != nil {
		return nil, err
	}
	if p.IP.Protocol != ProtoUDP {
		return nil, fmt.Errorf("wire: protocol %d is not UDP", p.IP.Protocol)
	}
	if p.UDP, rest, err = DecodeUDP(rest); err != nil {
		return nil, err
	}
	if p.UDP.Dst != RoCEv2Port {
		return nil, fmt.Errorf("wire: UDP port %d is not RoCEv2", p.UDP.Dst)
	}
	if p.BTH, rest, err = DecodeBTH(rest); err != nil {
		return nil, err
	}
	p.Payload = rest
	return &p, nil
}

// RewriteTag performs the §7 switch action on an encoded frame in place:
// rewrite DSCP to the new tag and fix the IPv4 checksum. It is the
// byte-level equivalent of core.Ruleset.Classify's rewrite step and
// returns the old tag.
func RewriteTag(frame []byte, newTag int) (old int, err error) {
	if len(frame) < EthernetLen+IPv4Len {
		return 0, ErrTruncated
	}
	ip := frame[EthernetLen : EthernetLen+IPv4Len]
	if ip[0]>>4 != 4 {
		return 0, ErrBadVersion
	}
	old = int(ip[1] >> 2)
	ip[1] = byte(newTag)<<2 | ip[1]&0x03
	// Incremental checksum update would do; recompute for clarity.
	ip[10], ip[11] = 0, 0
	sum := ipChecksum(ip)
	ip[10], ip[11] = byte(sum>>8), byte(sum)
	return old, nil
}

// DecrementTTL performs the per-hop TTL update on an encoded frame,
// returning the new TTL (the Table 1 probes measure exactly this field).
func DecrementTTL(frame []byte) (int, error) {
	if len(frame) < EthernetLen+IPv4Len {
		return 0, ErrTruncated
	}
	ip := frame[EthernetLen : EthernetLen+IPv4Len]
	if ip[8] == 0 {
		return 0, nil
	}
	ip[8]--
	ip[10], ip[11] = 0, 0
	sum := ipChecksum(ip)
	ip[10], ip[11] = byte(sum>>8), byte(sum)
	return int(ip[8]), nil
}

// ProbePacket is the §3.2 IP-in-IP measurement probe: outer header
// addressed server -> spine, inner header spine -> server with TTL 64.
type ProbePacket struct {
	Outer IPv4
	Inner IPv4
}

// EncodeProbe composes the probe (no L2; the measurement rides the
// routed fabric).
func EncodeProbe(p *ProbePacket) []byte {
	p.Outer.Protocol = ProtoIPIP
	p.Inner.TotalLen = IPv4Len
	p.Outer.TotalLen = 2 * IPv4Len
	b := make([]byte, 0, 2*IPv4Len)
	b = p.Outer.Encode(b)
	return p.Inner.Encode(b)
}

// DecapProbe performs the spine's hardware decapsulation: it strips the
// outer header and returns the inner packet, which the switch then
// routes by its own header — exactly the paper's measurement trick.
func DecapProbe(b []byte) (IPv4, []byte, error) {
	outer, rest, err := DecodeIPv4(b)
	if err != nil {
		return IPv4{}, nil, err
	}
	if outer.Protocol != ProtoIPIP {
		return IPv4{}, nil, fmt.Errorf("wire: protocol %d is not IP-in-IP", outer.Protocol)
	}
	inner, payload, err := DecodeIPv4(rest)
	if err != nil {
		return IPv4{}, nil, err
	}
	return inner, payload, nil
}
