// Package wire implements the on-the-wire encodings Tagger's deployment
// story depends on (§7): Ethernet, IPv4 with the DSCP field that carries
// the tag, UDP, the RoCEv2 Base Transport Header, and the IEEE 802.1Qbb
// PFC PAUSE frame. The deployment described in the paper is exactly
// "rewrite DSCP in the IP header with TCAM rules"; this package is the
// byte-level ground truth for that claim, with layered decoding in the
// style of gopacket (each layer exposes its payload for the next).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Common errors.
var (
	ErrTruncated  = errors.New("wire: truncated packet")
	ErrBadVersion = errors.New("wire: unsupported IP version")
	ErrBadOpcode  = errors.New("wire: not a PFC frame")
)

// EtherType values used here.
const (
	EtherTypeIPv4 uint16 = 0x0800
	// EtherTypeMACControl carries PAUSE/PFC frames.
	EtherTypeMACControl uint16 = 0x8808
)

// PFCOpcode is the MAC control opcode for priority-based flow control.
const PFCOpcode uint16 = 0x0101

// RoCEv2Port is the well-known UDP destination port of RoCEv2.
const RoCEv2Port uint16 = 4791

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the usual colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is the 14-byte Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// EthernetLen is the encoded header length.
const EthernetLen = 14

// Encode appends the header to b.
func (e *Ethernet) Encode(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// DecodeEthernet parses the header and returns it with its payload.
func DecodeEthernet(b []byte) (Ethernet, []byte, error) {
	if len(b) < EthernetLen {
		return Ethernet{}, nil, ErrTruncated
	}
	var e Ethernet
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return e, b[EthernetLen:], nil
}

// IPv4 is the fixed 20-byte IPv4 header (no options), which is what the
// Tagger pipeline matches and rewrites: the Tag lives in DSCP.
type IPv4 struct {
	DSCP     uint8 // 6 bits: the Tagger tag
	ECN      uint8 // 2 bits: used by the DCQCN substrate
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst [4]byte
}

// IPv4Len is the encoded header length (no options).
const IPv4Len = 20

// Protocol numbers used here.
const (
	ProtoUDP  uint8 = 17
	ProtoIPIP uint8 = 4 // IP-in-IP, the Table 1 probe encapsulation
)

// Encode appends the header (with correct checksum) to b.
func (h *IPv4) Encode(b []byte) []byte {
	start := len(b)
	b = append(b,
		0x45,                   // version 4, IHL 5
		h.DSCP<<2|(h.ECN&0x03), // TOS byte
		byte(h.TotalLen>>8), byte(h.TotalLen),
		byte(h.ID>>8), byte(h.ID),
		0, 0, // flags/fragment
		h.TTL, h.Protocol,
		0, 0, // checksum placeholder
	)
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	sum := ipChecksum(b[start : start+IPv4Len])
	binary.BigEndian.PutUint16(b[start+10:start+12], sum)
	return b
}

// DecodeIPv4 parses the header, verifies the checksum, and returns the
// payload.
func DecodeIPv4(b []byte) (IPv4, []byte, error) {
	if len(b) < IPv4Len {
		return IPv4{}, nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return IPv4{}, nil, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4Len || len(b) < ihl {
		return IPv4{}, nil, ErrTruncated
	}
	if ipChecksum(b[:ihl]) != 0 {
		return IPv4{}, nil, fmt.Errorf("wire: bad IPv4 checksum")
	}
	var h IPv4
	h.DSCP = b[1] >> 2
	h.ECN = b[1] & 0x03
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, b[ihl:], nil
}

// ipChecksum is the standard ones-complement sum (checksum field zeroed
// by the caller for computation; verification over a valid header yields
// zero).
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDP is the 8-byte UDP header (checksum left zero, as RoCEv2 permits).
type UDP struct {
	Src, Dst uint16
	Length   uint16
}

// UDPLen is the encoded header length.
const UDPLen = 8

// Encode appends the header to b.
func (u *UDP) Encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, u.Src)
	b = binary.BigEndian.AppendUint16(b, u.Dst)
	b = binary.BigEndian.AppendUint16(b, u.Length)
	return binary.BigEndian.AppendUint16(b, 0)
}

// DecodeUDP parses the header and returns the payload.
func DecodeUDP(b []byte) (UDP, []byte, error) {
	if len(b) < UDPLen {
		return UDP{}, nil, ErrTruncated
	}
	var u UDP
	u.Src = binary.BigEndian.Uint16(b[0:2])
	u.Dst = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	return u, b[UDPLen:], nil
}

// BTH is the 12-byte InfiniBand Base Transport Header RoCEv2 carries in
// UDP.
type BTH struct {
	Opcode uint8
	PKey   uint16
	DestQP uint32 // 24 bits
	AckReq bool
	PSN    uint32 // 24 bits
}

// BTHLen is the encoded header length.
const BTHLen = 12

// Common opcodes.
const (
	OpcodeRCSendOnly  uint8 = 0x04
	OpcodeRCWriteOnly uint8 = 0x0A
	OpcodeRCReadReq   uint8 = 0x0C
	OpcodeCNP         uint8 = 0x81 // DCQCN congestion notification
)

// Encode appends the header to b. Layout per the InfiniBand spec:
// opcode, SE/M/Pad/TVer, PKey, reserved, DestQP(24), AckReq+reserved,
// PSN(24).
func (h *BTH) Encode(b []byte) []byte {
	b = append(b, h.Opcode, 0) // SE/M/Pad/TVer zeroed
	b = binary.BigEndian.AppendUint16(b, h.PKey)
	b = append(b, 0, byte(h.DestQP>>16), byte(h.DestQP>>8), byte(h.DestQP))
	ack := byte(0)
	if h.AckReq {
		ack = 0x80
	}
	return append(b, ack, byte(h.PSN>>16), byte(h.PSN>>8), byte(h.PSN))
}

// DecodeBTH parses the header and returns the payload.
func DecodeBTH(b []byte) (BTH, []byte, error) {
	if len(b) < BTHLen {
		return BTH{}, nil, ErrTruncated
	}
	var h BTH
	h.Opcode = b[0]
	h.PKey = binary.BigEndian.Uint16(b[2:4])
	h.DestQP = uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7])
	h.AckReq = b[8]&0x80 != 0
	h.PSN = uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
	return h, b[BTHLen:], nil
}

// PFCFrame is the 802.1Qbb per-priority PAUSE MAC control frame: an
// enable bitmap plus one pause-quanta counter per priority.
type PFCFrame struct {
	Enabled [8]bool
	Quanta  [8]uint16
}

// PFCFrameLen is the MAC-control payload length (opcode + vector + 8
// times).
const PFCFrameLen = 2 + 2 + 16

// Encode appends opcode, priority-enable vector and the 8 quanta.
func (f *PFCFrame) Encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, PFCOpcode)
	var vec uint16
	for i, on := range f.Enabled {
		if on {
			vec |= 1 << uint(i)
		}
	}
	b = binary.BigEndian.AppendUint16(b, vec)
	for _, q := range f.Quanta {
		b = binary.BigEndian.AppendUint16(b, q)
	}
	return b
}

// DecodePFC parses a MAC-control payload.
func DecodePFC(b []byte) (PFCFrame, error) {
	if len(b) < PFCFrameLen {
		return PFCFrame{}, ErrTruncated
	}
	if binary.BigEndian.Uint16(b[0:2]) != PFCOpcode {
		return PFCFrame{}, ErrBadOpcode
	}
	var f PFCFrame
	vec := binary.BigEndian.Uint16(b[2:4])
	for i := 0; i < 8; i++ {
		f.Enabled[i] = vec&(1<<uint(i)) != 0
		f.Quanta[i] = binary.BigEndian.Uint16(b[4+2*i : 6+2*i])
	}
	return f, nil
}
