package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"repro/internal/topology"
)

// This file decomposes layered Clos/fat-tree fabrics into pods and
// fingerprints each pod's quotient structure. Two pods with equal
// fingerprints are positionally isomorphic — member i of one maps to
// member i of the other preserving layers, kinds, intra-pod wiring,
// host attachment, link health AND the attachment pattern to the shared
// upper layer — which is exactly the license the synthesis cache needs
// to enumerate paths for a representative pod pair and stamp the rest
// out by dense-ID translation.
//
// Port NUMBERS are deliberately not part of the quotient: the pod
// permutation only has to be an automorphism of (adjacency, layers,
// kinds, health). Path enumeration never sees port numbers; stamped
// rule-graph ports are recomputed from the mapped node pair with
// PortToPeer, exactly as replay would; and the Clos rules themselves are
// emitted over the full graph, never translated. Shared switches in
// particular CANNOT have pod-symmetric port numbers (core c's port
// toward pod p is allocated in pod order), so hashing them would make
// every real fat-tree non-uniform.

// Pod is one lower-layer component of a layered fabric.
type Pod struct {
	// Members holds the pod's switches in canonical member order
	// (descending layer, then ascending node ID). Position in this slice
	// is the identity the pod fingerprint speaks about.
	Members []topology.NodeID
	// FP is the pod's quotient fingerprint.
	FP Fingerprint
}

// PodDecomposition is the result of Decompose.
type PodDecomposition struct {
	// Shared holds the switches every pod attaches to (layer >= 3:
	// spines/cores), ascending by node ID.
	Shared []topology.NodeID
	// Pods holds the layer-1/2 connected components, ordered by smallest
	// member node ID (construction order for the repo's builders).
	Pods []Pod
	// Uniform reports that there are at least two pods and every pod has
	// the same fingerprint.
	Uniform bool

	podIdx    []int32 // node ID -> pod index, -1 for shared/hosts
	memberPos []int32 // node ID -> position in its pod's Members
	sharedIdx []int32 // node ID -> index into Shared, -1 otherwise
}

// PodOf returns the pod index of node id, or -1 for shared switches and
// hosts.
func (d *PodDecomposition) PodOf(id topology.NodeID) int { return int(d.podIdx[id]) }

// MemberPos returns id's position inside its pod's Members, or -1 when
// id is not a pod member.
func (d *PodDecomposition) MemberPos(id topology.NodeID) int { return int(d.memberPos[id]) }

// Decompose splits g into pods and a shared upper layer. It returns
// ok=false when the graph is not a layered fabric of the expected shape:
// every switch must carry layer 1..2 (pod) or >= 3 (shared), and pods
// may reach each other only through the shared layer.
func Decompose(g *topology.Graph) (*PodDecomposition, bool) {
	n := g.NumNodes()
	d := &PodDecomposition{
		podIdx:    make([]int32, n),
		memberPos: make([]int32, n),
		sharedIdx: make([]int32, n),
	}
	for i := range d.podIdx {
		d.podIdx[i] = -1
		d.memberPos[i] = -1
		d.sharedIdx[i] = -1
	}

	var podSwitches []topology.NodeID
	for _, sw := range g.Switches() {
		switch l := g.Node(sw).Layer; {
		case l >= 3:
			d.sharedIdx[sw] = int32(len(d.Shared))
			d.Shared = append(d.Shared, sw)
		case l == 1 || l == 2:
			podSwitches = append(podSwitches, sw)
		default:
			return nil, false // unlayered (Jellyfish, BCube): no pods
		}
	}
	if len(podSwitches) == 0 {
		return nil, false
	}

	// Union-find over pod-switch adjacency (links between two pod
	// switches, failed ones included — wiring, not health).
	parent := make(map[topology.NodeID]topology.NodeID, len(podSwitches))
	for _, sw := range podSwitches {
		parent[sw] = sw
	}
	var find func(x topology.NodeID) topology.NodeID
	find = func(x topology.NodeID) topology.NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		_, aPod := parent[l.A]
		_, bPod := parent[l.B]
		if aPod && bPod {
			parent[find(l.A)] = find(l.B)
		}
	}

	// Group components; pods ordered by smallest member ID.
	groups := make(map[topology.NodeID][]topology.NodeID)
	for _, sw := range podSwitches { // g.Switches() is ID-ascending
		groups[find(sw)] = append(groups[find(sw)], sw)
	}
	roots := make([]topology.NodeID, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })

	for pi, root := range roots {
		members := groups[root]
		// Canonical member order: descending layer, then ascending ID.
		sort.Slice(members, func(i, j int) bool {
			li, lj := g.Node(members[i]).Layer, g.Node(members[j]).Layer
			if li != lj {
				return li > lj
			}
			return members[i] < members[j]
		})
		for mi, sw := range members {
			d.podIdx[sw] = int32(pi)
			d.memberPos[sw] = int32(mi)
		}
		d.Pods = append(d.Pods, Pod{Members: members})
	}

	// Fingerprint each pod's quotient: per member in canonical order,
	// per port in number order, the peer classified as intra-pod member
	// position / shared index / host, with the link's health. Health IS
	// included here — path enumeration (the thing pod stamping memoizes)
	// routes around failed links.
	for pi := range d.Pods {
		p := &d.Pods[pi]
		buf := make([]byte, 0, 64*len(p.Members))
		buf = binary.AppendUvarint(buf, uint64(len(p.Members)))
		for _, sw := range p.Members {
			nd := g.Node(sw)
			buf = binary.AppendUvarint(buf, uint64(nd.Kind))
			buf = binary.AppendVarint(buf, int64(nd.Layer))
			buf = binary.AppendUvarint(buf, uint64(len(nd.Ports)))
			for _, pid := range nd.Ports {
				pt := g.Port(pid)
				if pt.Peer == topology.InvalidNode {
					buf = append(buf, 0)
					continue
				}
				failed := byte(0)
				if g.Link(pt.Link).Failed {
					failed = 1
				}
				switch {
				case d.podIdx[pt.Peer] == int32(pi):
					buf = append(buf, 1, failed)
					buf = binary.AppendUvarint(buf, uint64(d.memberPos[pt.Peer]))
				case d.sharedIdx[pt.Peer] >= 0:
					buf = append(buf, 2, failed)
					buf = binary.AppendUvarint(buf, uint64(d.sharedIdx[pt.Peer]))
				case g.Node(pt.Peer).Kind == topology.KindHost:
					buf = append(buf, 3, failed)
				default:
					// A direct link to another pod or to an unclassified
					// node: not the shape we can stamp.
					return nil, false
				}
			}
		}
		p.FP = sha256.Sum256(buf)
	}

	d.Uniform = len(d.Pods) >= 2
	for i := 1; i < len(d.Pods); i++ {
		if d.Pods[i].FP != d.Pods[0].FP {
			d.Uniform = false
			break
		}
	}
	return d, true
}

// Translate returns the node map of the pod-permutation automorphism
// described by podPerm (pod i's members map positionally onto pod
// podPerm[i]'s; shared switches map to themselves). Hosts map to
// InvalidNode — switch-level paths never contain them, and callers must
// fall back to full synthesis if theirs do. Valid only when the
// decomposition is Uniform (equal pod fingerprints license the
// positional mapping).
func (d *PodDecomposition) Translate(podPerm []int) []topology.NodeID {
	out := make([]topology.NodeID, len(d.podIdx))
	for i := range out {
		out[i] = topology.InvalidNode
	}
	for _, sw := range d.Shared {
		out[sw] = sw
	}
	for pi := range d.Pods {
		src := d.Pods[pi].Members
		dst := d.Pods[podPerm[pi]].Members
		for mi, sw := range src {
			out[sw] = dst[mi]
		}
	}
	return out
}

// PodPerm builds the pod permutation sending pod 0 to p and pod 1 to q
// (p != q), with the remaining pods bijected onto the remaining indices
// in ascending order. Every ordered pod pair is reached this way, which
// is how the stamper covers all inter-pod path buckets from the (0, 1)
// representative.
func PodPerm(numPods, p, q int) []int {
	perm := make([]int, numPods)
	used := make([]bool, numPods)
	perm[0], perm[1] = p, q
	used[p], used[q] = true, true
	next := 0
	for i := 2; i < numPods; i++ {
		for used[next] {
			next++
		}
		perm[i] = next
		used[next] = true
	}
	return perm
}
