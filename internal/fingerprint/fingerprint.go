// Package fingerprint computes canonical content hashes of topologies,
// ELP path sets and synthesis options — the keys of the synthesis cache
// (internal/synthcache).
//
// The central object is the Canon: a canonical ordering of a graph's
// nodes plus a SHA-256 fingerprint of the graph relabeled into that
// order. Node IDs never enter the fingerprint, so two graphs that differ
// only by a permutation of their node IDs (same wiring, same kinds and
// layers, same port numbering) hash equal whenever canonicalization
// assigns them the same order. The ordering is computed by
// Weisfeiler-Leman color refinement with node-name tie-breaks, which
// makes it exact for graphs built by the deterministic topology builders
// and best-effort for hand-built isomorphic copies.
//
// Soundness does not depend on the ordering being perfect: the
// fingerprint covers the complete relabeled structure, so (modulo a
// SHA-256 collision) equal fingerprints imply the position-wise node map
// between the two graphs is an isomorphism that preserves kinds, layers
// and port numbers. An imperfect canonical order can only cause a cache
// MISS for isomorphic graphs, never a false hit.
//
// Link health (Failed flags) is deliberately excluded from the graph
// fingerprint: rule synthesis is a pure function of the wiring and the
// ELP — failures enter only through the path set, which is hashed
// separately (PathsSum) — so a cached system stays valid across link
// flaps. Callers whose inputs DO depend on health (e.g. a cached path
// enumeration) mix in HealthSum explicitly.
package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Fingerprint is a 256-bit content hash.
type Fingerprint [sha256.Size]byte

// String renders the first 12 hex digits — enough to log and compare by
// eye, like an abbreviated git object name.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:6]) }

// Canon is the canonical view of a graph: the fingerprint of its
// relabeled encoding plus the node order that produced it.
type Canon struct {
	// FP hashes the relabeled structure (no names, no IDs, no health).
	FP Fingerprint
	// Order maps canonical position -> node ID.
	Order []topology.NodeID
	// Pos maps node ID -> canonical position (the inverse of Order).
	Pos []int32
	// NameSum hashes the node names in canonical order. Two graphs with
	// equal FP and equal NameSum agree on naming as well as structure,
	// which deployment bundles (keyed by switch name) care about.
	NameSum Fingerprint
}

// mix64 is a splitmix64 finalizer: cheap, deterministic across runs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// wlRounds bounds color refinement. Three rounds separate every node
// class the repo's topology families produce; more rounds would only
// sharpen the ordering (never change the fingerprint's soundness).
const wlRounds = 3

// Canonicalize computes the canonical order and fingerprint of g.
func Canonicalize(g *topology.Graph) *Canon {
	n := g.NumNodes()
	colors := make([]uint64, n)
	next := make([]uint64, n)
	for _, id := range g.Nodes() {
		nd := g.Node(id)
		colors[id] = mix64(uint64(nd.Kind)<<40 ^ uint64(uint32(nd.Layer))<<8 ^ uint64(len(nd.Ports)))
	}
	// WL refinement: a node's new color mixes its own color with the
	// per-port sequence of peer colors (port order is part of the
	// structure — rules match on port numbers).
	for round := 0; round < wlRounds; round++ {
		for _, id := range g.Nodes() {
			h := mix64(colors[id])
			for _, pid := range g.Node(id).Ports {
				p := g.Port(pid)
				pc := uint64(0)
				if p.Peer != topology.InvalidNode {
					pc = colors[p.Peer]
				}
				h = mix64(h ^ pc)
			}
			next[id] = h
		}
		colors, next = next, colors
	}

	c := &Canon{
		Order: make([]topology.NodeID, n),
		Pos:   make([]int32, n),
	}
	for i := range c.Order {
		c.Order[i] = topology.NodeID(i)
	}
	sort.Slice(c.Order, func(i, j int) bool {
		a, b := c.Order[i], c.Order[j]
		if colors[a] != colors[b] {
			return colors[a] < colors[b]
		}
		return g.Node(a).Name < g.Node(b).Name
	})
	for pos, id := range c.Order {
		c.Pos[id] = int32(pos)
	}

	// Encode the relabeled graph. Per node in canonical order: kind,
	// layer, port count, then per port in number order the peer's
	// canonical position and the peer-side port number. That pins the
	// complete wiring including port numbering, which rule translation
	// relies on.
	buf := make([]byte, 0, 16+n*8+g.NumPorts()*4)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(g.NumLinks()))
	buf = binary.AppendUvarint(buf, uint64(g.NumPorts()))
	nameBuf := make([]byte, 0, n*8)
	for _, id := range c.Order {
		nd := g.Node(id)
		buf = binary.AppendUvarint(buf, uint64(nd.Kind))
		buf = binary.AppendVarint(buf, int64(nd.Layer))
		buf = binary.AppendUvarint(buf, uint64(len(nd.Ports)))
		for _, pid := range nd.Ports {
			p := g.Port(pid)
			if p.Peer == topology.InvalidNode {
				buf = binary.AppendUvarint(buf, 0)
				buf = binary.AppendUvarint(buf, 0)
				continue
			}
			l := g.Link(p.Link)
			peerPort := l.APort
			if l.A == id {
				peerPort = l.BPort
			}
			buf = binary.AppendUvarint(buf, uint64(c.Pos[p.Peer])+1)
			buf = binary.AppendUvarint(buf, uint64(peerPort)+1)
		}
		nameBuf = append(nameBuf, nd.Name...)
		nameBuf = append(nameBuf, 0)
	}
	c.FP = sha256.Sum256(buf)
	c.NameSum = sha256.Sum256(nameBuf)
	return c
}

// SameLabeling reports whether two canons assign the same node IDs and
// names to every canonical position — i.e. the graphs are identical as
// labeled structures, so cached state can be shared without translation.
func SameLabeling(a, b *Canon) bool {
	if a == b {
		return true
	}
	if a.NameSum != b.NameSum || len(a.Order) != len(b.Order) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
	}
	return true
}

// PathsSum hashes a path sequence as node canonical positions. The
// SEQUENCE is hashed, not the set: synthesis output is proven
// order-independent only for the parallel decomposition, and hashing the
// order keeps the key conservative (a reordered input is a different
// key, never a wrong hit).
func PathsSum(c *Canon, paths []routing.Path) Fingerprint {
	size := 8
	for _, p := range paths {
		size += 2 + len(p)*3
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(paths)))
	for _, p := range paths {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		for _, n := range p {
			buf = binary.AppendUvarint(buf, uint64(c.Pos[n]))
		}
	}
	return sha256.Sum256(buf)
}

// HealthSum hashes the failed-link set as canonical position pairs.
// Canonically sorted, so the flap history does not matter — only which
// links are down right now.
func HealthSum(c *Canon, g *topology.Graph) Fingerprint {
	failed := g.FailedLinks()
	pairs := make([][2]int32, 0, len(failed))
	for _, lid := range failed {
		l := g.Link(lid)
		a, b := c.Pos[l.A], c.Pos[l.B]
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, [2]int32{a, b})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	buf := make([]byte, 0, 8+len(pairs)*6)
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, p := range pairs {
		buf = binary.AppendUvarint(buf, uint64(p[0]))
		buf = binary.AppendUvarint(buf, uint64(p[1]))
	}
	return sha256.Sum256(buf)
}

// Key combines a scheme label, integer parameters and component
// fingerprints into one cache key.
func Key(scheme string, params []int, parts ...Fingerprint) Fingerprint {
	buf := make([]byte, 0, len(scheme)+1+len(params)*4+len(parts)*sha256.Size)
	buf = append(buf, scheme...)
	buf = append(buf, 0)
	for _, v := range params {
		buf = binary.AppendVarint(buf, int64(v))
	}
	for _, p := range parts {
		buf = append(buf, p[:]...)
	}
	return sha256.Sum256(buf)
}
