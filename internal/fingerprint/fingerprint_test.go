package fingerprint

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// twoLayer builds a 2-spine / 4-ToR fabric. spinesFirst controls node-ID
// assignment order; prefix controls names. The CONNECT order (ToR-major,
// spine 1 then spine 2) is identical in both variants, so the two graphs
// are isomorphic including port numbers while their node IDs and names
// are permuted/disjoint.
func twoLayer(spinesFirst bool, prefix string) *topology.Graph {
	g := topology.New()
	var spines, tors []topology.NodeID
	addSpines := func() {
		for i := 0; i < 2; i++ {
			spines = append(spines, g.AddNode(prefix+"s"+string(rune('1'+i)), topology.KindSpine, 3))
		}
	}
	addTors := func() {
		for i := 0; i < 4; i++ {
			tors = append(tors, g.AddNode(prefix+"t"+string(rune('1'+i)), topology.KindToR, 1))
		}
	}
	if spinesFirst {
		addSpines()
		addTors()
	} else {
		addTors()
		addSpines()
	}
	for _, t := range tors {
		for _, s := range spines {
			g.Connect(t, s)
		}
	}
	return g
}

func TestCanonicalizePermutationInvariant(t *testing.T) {
	a := Canonicalize(twoLayer(true, "a"))
	b := Canonicalize(twoLayer(false, "b"))
	if a.FP != b.FP {
		t.Fatalf("isomorphic graphs fingerprint differently: %s vs %s", a.FP, b.FP)
	}
	if a.NameSum == b.NameSum {
		t.Fatal("differently-named graphs share a NameSum")
	}
	if SameLabeling(a, b) {
		t.Fatal("SameLabeling true across distinct labelings")
	}
	// The positional map must be an isomorphism: every canonical position
	// holds nodes of the same kind/layer in both graphs.
	ga, gb := twoLayer(true, "a"), twoLayer(false, "b")
	ca, cb := Canonicalize(ga), Canonicalize(gb)
	for pos := range ca.Order {
		na, nb := ga.Node(ca.Order[pos]), gb.Node(cb.Order[pos])
		if na.Kind != nb.Kind || na.Layer != nb.Layer {
			t.Fatalf("position %d maps %v/%d to %v/%d", pos, na.Kind, na.Layer, nb.Kind, nb.Layer)
		}
	}
}

func TestCanonicalizeDistinguishesWiring(t *testing.T) {
	a := twoLayer(true, "a")
	b := twoLayer(true, "b")
	// Extra link changes the wiring: fingerprints must diverge.
	b.Connect(b.MustLookup("bt1"), b.MustLookup("bt2"))
	if Canonicalize(a).FP == Canonicalize(b).FP {
		t.Fatal("different wirings share a fingerprint")
	}
}

func TestFingerprintIgnoresHealthGenIgnoresFlaps(t *testing.T) {
	g := twoLayer(true, "a")
	before := Canonicalize(g)
	genBefore := g.Gen()
	g.FailLink(g.MustLookup("at1"), g.MustLookup("as1"))
	if g.Gen() != genBefore {
		t.Fatal("FailLink bumped the wiring generation")
	}
	after := Canonicalize(g)
	if before.FP != after.FP {
		t.Fatal("link health leaked into the graph fingerprint")
	}
	if HealthSum(before, g) == (Fingerprint{}) {
		t.Fatal("HealthSum is zero-valued")
	}
	healthyAgain := g.Gen()
	g.RestoreLink(g.MustLookup("at1"), g.MustLookup("as1"))
	if g.Gen() != healthyAgain {
		t.Fatal("RestoreLink bumped the wiring generation")
	}
	// Wiring changes DO bump the generation.
	g.Connect(g.MustLookup("at1"), g.MustLookup("at2"))
	if g.Gen() == genBefore {
		t.Fatal("Connect did not bump the wiring generation")
	}
}

func TestHealthSumFlapOrderIndependent(t *testing.T) {
	g := twoLayer(true, "a")
	c := Canonicalize(g)
	t1, s1 := g.MustLookup("at1"), g.MustLookup("as1")
	t2, s2 := g.MustLookup("at2"), g.MustLookup("as2")
	g.FailLink(t1, s1)
	g.FailLink(t2, s2)
	h1 := HealthSum(c, g)
	g.RestoreLink(t1, s1)
	g.RestoreLink(t2, s2)
	g.FailLink(t2, s2)
	g.FailLink(t1, s1)
	if h2 := HealthSum(c, g); h1 != h2 {
		t.Fatal("HealthSum depends on flap order")
	}
}

func TestDecomposeFatTree(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := Decompose(ft.Graph)
	if !ok {
		t.Fatal("fat-tree did not decompose")
	}
	if len(d.Pods) != 4 || !d.Uniform {
		t.Fatalf("pods = %d, uniform = %v; want 4 uniform pods", len(d.Pods), d.Uniform)
	}
	if len(d.Shared) != 4 {
		t.Fatalf("shared = %d, want 4 cores", len(d.Shared))
	}
	for _, p := range d.Pods {
		if len(p.Members) != 4 {
			t.Fatalf("pod members = %d, want 4 (2 aggs + 2 edges)", len(p.Members))
		}
		// Canonical member order: aggs (layer 2) before edges (layer 1).
		if ft.Graph.Node(p.Members[0]).Layer != 2 || ft.Graph.Node(p.Members[3]).Layer != 1 {
			t.Fatal("pod member order is not layer-descending")
		}
	}
	// A failed intra-pod link breaks uniformity (health is part of the
	// pod fingerprint — enumeration routes around it).
	ft.Graph.FailLink(ft.Edges[0], ft.Aggs[0])
	d2, ok := Decompose(ft.Graph)
	if !ok || d2.Uniform {
		t.Fatalf("ok=%v uniform=%v after intra-pod failure; want ok, non-uniform", ok, d2.Uniform)
	}
}

func TestDecomposeRejectsUnlayered(t *testing.T) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 12, Ports: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Decompose(j.Graph); ok {
		t.Fatal("jellyfish decomposed into pods")
	}
}

func TestPodPermCoversAllPairs(t *testing.T) {
	const n = 5
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			perm := PodPerm(n, p, q)
			if perm[0] != p || perm[1] != q {
				t.Fatalf("PodPerm(%d,%d,%d) sends (0,1) to (%d,%d)", n, p, q, perm[0], perm[1])
			}
			seen := make([]bool, n)
			for _, v := range perm {
				if v < 0 || v >= n || seen[v] {
					t.Fatalf("PodPerm(%d,%d,%d) = %v is not a permutation", n, p, q, perm)
				}
				seen[v] = true
			}
		}
	}
}

func TestPathsSumOrderSensitive(t *testing.T) {
	g := twoLayer(true, "a")
	c := Canonicalize(g)
	t1, t2 := g.MustLookup("at1"), g.MustLookup("at2")
	s1 := g.MustLookup("as1")
	p1 := routing.Path{t1, s1, t2}
	p2 := routing.Path{t2, s1, t1}
	a := PathsSum(c, []routing.Path{p1, p2})
	b := PathsSum(c, []routing.Path{p2, p1})
	if a == b {
		t.Fatal("PathsSum ignores path order")
	}
}
