package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkAlgorithm2Jellyfish200         	       1	  70200000 ns/op	15900000 B/op	   68660 allocs/op
BenchmarkTable5Jellyfish200             	       5	 382600000 ns/op	         4.000 longest	        24.00 max-rules	         3.000 priorities	91000000 B/op	  612783 allocs/op
PASS
ok  	repro	12.345s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Context["goos"]; got != "linux" {
		t.Errorf("context goos = %q, want linux", got)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(f.Benchmarks))
	}
	a := f.Benchmarks[0]
	if a.Name != "BenchmarkAlgorithm2Jellyfish200" || a.N != 1 ||
		a.NsPerOp != 70200000 || a.BytesPerOp != 15900000 || a.AllocsPerOp != 68660 {
		t.Errorf("unexpected first benchmark: %+v", a)
	}
	b := f.Benchmarks[1]
	if b.Metrics["priorities"] != 3 || b.Metrics["max-rules"] != 24 {
		t.Errorf("custom metrics not parsed: %+v", b.Metrics)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken 12 ns/op\n")); err == nil {
		t.Error("odd field count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBroken x 100 ns/op\n")); err == nil {
		t.Error("non-numeric iteration count accepted")
	}
}

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, N: 1, NsPerOp: ns, AllocsPerOp: allocs}
}

// The contract the Makefile gate relies on: a 20% time regression trips
// the default 15% threshold, a 10% one does not.
func TestCompareThreshold(t *testing.T) {
	old := &File{Benchmarks: []Benchmark{
		bench("BenchmarkSlower", 100e6, 1000),
		bench("BenchmarkWithin", 100e6, 1000),
		bench("BenchmarkFaster", 100e6, 1000),
		bench("BenchmarkRemoved", 100e6, 1000),
	}}
	cur := &File{Benchmarks: []Benchmark{
		bench("BenchmarkSlower", 120e6, 1000), // +20%: regression
		bench("BenchmarkWithin", 110e6, 1000), // +10%: noise, passes
		bench("BenchmarkFaster", 50e6, 500),
		bench("BenchmarkAdded", 100e6, 1000),
	}}
	deltas := Compare(old, cur, 0.15, -1)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3 (unmatched names skipped)", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if !byName["BenchmarkSlower"].Regression {
		t.Error("+20%% not flagged as regression at 15%% threshold")
	}
	if byName["BenchmarkWithin"].Regression {
		t.Error("+10%% flagged as regression at 15%% threshold")
	}
	if byName["BenchmarkFaster"].Regression {
		t.Error("speedup flagged as regression")
	}
	if !AnyRegression(deltas) {
		t.Error("AnyRegression missed the flagged delta")
	}
	out := FormatDeltas(deltas)
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("formatted table missing REGRESSION marker:\n%s", out)
	}
}

// TestCompareAllocThreshold: the allocation gate trips on allocs/op or
// bytes/op growth beyond its own threshold, treats zero-to-nonzero as an
// unconditional failure (the steady-state zero-alloc contract), and
// disengages entirely when negative.
func TestCompareAllocThreshold(t *testing.T) {
	mem := func(name string, ns, allocs, bytes float64) Benchmark {
		return Benchmark{Name: name, N: 1, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes}
	}
	old := &File{Benchmarks: []Benchmark{
		mem("BenchmarkAllocGrew", 100, 1000, 8000),
		mem("BenchmarkBytesGrew", 100, 1000, 8000),
		mem("BenchmarkZeroToNonzero", 100, 0, 0),
		mem("BenchmarkWithin", 100, 1000, 8000),
	}}
	cur := &File{Benchmarks: []Benchmark{
		mem("BenchmarkAllocGrew", 100, 1200, 8000), // +20% allocs/op
		mem("BenchmarkBytesGrew", 100, 1000, 9600), // +20% bytes/op
		mem("BenchmarkZeroToNonzero", 100, 1, 16),  // was allocation-free
		mem("BenchmarkWithin", 100, 1050, 8400),    // +5%: under threshold
	}}
	byName := map[string]Delta{}
	for _, d := range Compare(old, cur, 0.15, 0.10) {
		byName[d.Name] = d
	}
	for _, name := range []string{"BenchmarkAllocGrew", "BenchmarkBytesGrew", "BenchmarkZeroToNonzero"} {
		if !byName[name].AllocRegression {
			t.Errorf("%s not flagged as alloc regression", name)
		}
		if byName[name].Regression {
			t.Errorf("%s flagged as time regression; only its allocations grew", name)
		}
	}
	if byName["BenchmarkWithin"].AllocRegression {
		t.Error("+5%% allocation growth flagged at 10%% threshold")
	}
	if !AnyRegression(Compare(old, cur, 0.15, 0.10)) {
		t.Error("AnyRegression missed the alloc-only regressions")
	}
	if AnyRegression(Compare(old, cur, 0.15, -1)) {
		t.Error("negative alloc threshold must disable the allocation gate")
	}
	out := FormatDeltas(Compare(old, cur, 0.15, 0.10))
	if !strings.Contains(out, "ALLOC REGRESSION") {
		t.Errorf("formatted table missing ALLOC REGRESSION marker:\n%s", out)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(f.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d", len(got.Benchmarks), len(f.Benchmarks))
	}
	for i := range got.Benchmarks {
		if got.Benchmarks[i].Name != f.Benchmarks[i].Name ||
			got.Benchmarks[i].NsPerOp != f.Benchmarks[i].NsPerOp {
			t.Errorf("benchmark %d differs after round trip", i)
		}
	}
	// Identical snapshots compare clean at any threshold, allocation
	// gate included.
	if AnyRegression(Compare(f, got, 0, 0)) {
		t.Error("identical snapshots reported a regression")
	}
}

// TestDedupe: -count N output repeats every benchmark name; Dedupe keeps
// the fastest run per name (scheduler noise only adds time) and leaves
// already-unique snapshots untouched.
func TestDedupe(t *testing.T) {
	f := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkB", NsPerOp: 50},
		{Name: "BenchmarkA", NsPerOp: 120, AllocsPerOp: 7},
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 7},
		{Name: "BenchmarkA", NsPerOp: 110, AllocsPerOp: 7},
	}}
	f.Dedupe()
	if len(f.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	if f.Benchmarks[0].Name != "BenchmarkA" || f.Benchmarks[0].NsPerOp != 100 {
		t.Errorf("kept %+v, want BenchmarkA at 100 ns/op", f.Benchmarks[0])
	}
	if f.Benchmarks[1].Name != "BenchmarkB" || f.Benchmarks[1].NsPerOp != 50 {
		t.Errorf("kept %+v, want BenchmarkB at 50 ns/op", f.Benchmarks[1])
	}
	before := f.Benchmarks
	f.Dedupe() // idempotent on unique names
	if len(f.Benchmarks) != 2 || &before[0] != &f.Benchmarks[0] {
		t.Error("Dedupe on a unique snapshot must be a no-op")
	}
}

// TestDedupeSingleIterationSamples is the `make bench BENCHTIME=1x` shape
// that motivated min-of-N gating: every repeated run reports n=1
// iterations, so each sample is a single raw measurement with full
// scheduler/GC noise on it. Dedupe must still collapse the repeats to the
// fastest sample (keeping its n=1 honest, not summing counts), and a
// snapshot where each name appears exactly once — a -count 1 run — must
// pass through unchanged.
func TestDedupeSingleIterationSamples(t *testing.T) {
	f := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkSynth", N: 1, NsPerOp: 9_800_000},
		{Name: "BenchmarkSynth", N: 1, NsPerOp: 7_100_000},
		{Name: "BenchmarkSynth", N: 1, NsPerOp: 8_300_000},
	}}
	f.Dedupe()
	if len(f.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	if b := f.Benchmarks[0]; b.NsPerOp != 7_100_000 || b.N != 1 {
		t.Errorf("kept %+v, want the fastest n=1 sample at 7.1ms", b)
	}

	single := &File{Benchmarks: []Benchmark{{Name: "BenchmarkOnce", N: 1, NsPerOp: 42}}}
	single.Dedupe()
	if len(single.Benchmarks) != 1 || single.Benchmarks[0].NsPerOp != 42 {
		t.Errorf("n=1 single-sample snapshot changed: %+v", single.Benchmarks)
	}
}
