// Package benchfmt parses `go test -bench` output into structured
// records, persists them as JSON snapshot files (the repo's BENCH_*.json
// trajectory), and compares two snapshots against a regression threshold.
// It is the engine behind `make bench` and cmd/benchdiff.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	N           int64   `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "priorities",
	// "max-rules") and any standard unit not broken out above.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is one benchmark snapshot: the JSON document `benchdiff -record`
// writes and `benchdiff old new` compares.
type File struct {
	// Context captures the `goos:`/`goarch:`/`pkg:`/`cpu:` header lines.
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Parse reads `go test -bench` text output. Non-benchmark lines (PASS,
// ok, header lines) are skipped; header lines are kept as context.
func Parse(r io.Reader) (*File, error) {
	f := &File{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		for _, h := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, h+":"); ok {
				f.Context[h] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: %w", err)
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool { return f.Benchmarks[i].Name < f.Benchmarks[j].Name })
	return f, nil
}

func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: fields[0], N: n}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// Dedupe collapses duplicate benchmark names — what a `-count N` run
// produces — into a single record each, keeping the run with the lowest
// ns/op. Min-of-N is the standard noise-robust estimate: scheduler and
// GC interference only ever add time, so the fastest run is the closest
// observation of the code's true cost. No-op for -count 1 output.
func (f *File) Dedupe() {
	best := make(map[string]Benchmark, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		if prev, ok := best[b.Name]; !ok || b.NsPerOp < prev.NsPerOp {
			best[b.Name] = b
		}
	}
	if len(best) == len(f.Benchmarks) {
		return
	}
	f.Benchmarks = f.Benchmarks[:0]
	for _, b := range best {
		f.Benchmarks = append(f.Benchmarks, b)
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool { return f.Benchmarks[i].Name < f.Benchmarks[j].Name })
}

// WriteFile persists a snapshot as indented JSON.
func WriteFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a snapshot written by WriteFile.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &f, nil
}

// Delta is the old-vs-new comparison of one benchmark.
type Delta struct {
	Name       string
	OldNs      float64
	NewNs      float64
	TimeRatio  float64 // new/old; 1.20 = 20% slower
	OldAllocs  float64
	NewAllocs  float64
	OldBytes   float64
	NewBytes   float64
	Regression bool // time ratio exceeded the threshold
	// AllocRegression flags allocs/op or bytes/op growth beyond the
	// allocation threshold, including a zero-alloc benchmark starting to
	// allocate at all (the engine's steady-state contract).
	AllocRegression bool
}

// Compare matches benchmarks by name and flags every one whose ns/op
// grew by more than threshold (0.15 = +15%), or whose allocs/op or
// bytes/op grew by more than allocThreshold. A negative allocThreshold
// disables allocation gating (needed when snapshots come from runs
// without -benchmem, or with deliberately different instrumentation).
// Benchmarks present in only one snapshot are skipped — the gate judges
// only common ground.
func Compare(old, new *File, threshold, allocThreshold float64) []Delta {
	idx := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		idx[b.Name] = b
	}
	var out []Delta
	for _, nb := range new.Benchmarks {
		ob, ok := idx[nb.Name]
		if !ok || ob.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:      nb.Name,
			OldNs:     ob.NsPerOp,
			NewNs:     nb.NsPerOp,
			TimeRatio: nb.NsPerOp / ob.NsPerOp,
			OldAllocs: ob.AllocsPerOp,
			NewAllocs: nb.AllocsPerOp,
			OldBytes:  ob.BytesPerOp,
			NewBytes:  nb.BytesPerOp,
		}
		d.Regression = d.TimeRatio > 1+threshold
		if allocThreshold >= 0 {
			d.AllocRegression = allocGrew(d.OldAllocs, d.NewAllocs, allocThreshold) ||
				allocGrew(d.OldBytes, d.NewBytes, allocThreshold)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// allocGrew applies the allocation gate to one old/new counter pair.
// Zero-to-nonzero is always a regression: no ratio tolerance can excuse a
// benchmark that used to run allocation-free.
func allocGrew(old, new, threshold float64) bool {
	if old == 0 {
		return new > 0
	}
	return new/old > 1+threshold
}

// AnyRegression reports whether some delta tripped a threshold.
func AnyRegression(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Regression || d.AllocRegression {
			return true
		}
	}
	return false
}

// FormatDeltas renders a comparison table for terminals and CI logs.
func FormatDeltas(deltas []Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %14s %14s %8s %12s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "allocs")
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  << REGRESSION"
		}
		if d.AllocRegression {
			mark += "  << ALLOC REGRESSION"
		}
		fmt.Fprintf(&b, "%-40s %14.0f %14.0f %7.2fx %6.0f->%-6.0f%s\n",
			d.Name, d.OldNs, d.NewNs, d.TimeRatio, d.OldAllocs, d.NewAllocs, mark)
	}
	return b.String()
}
