package elp

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// BCubeELP enumerates the default BCube routing paths between every
// ordered pair of the given servers: for each pair, one path per
// permutation of the differing address digits, correcting one digit per
// hop through the corresponding level's switch (Guo et al., SIGCOMM 2009).
// This is the path diversity BCube actually uses, and the ELP for which
// the Tagger paper reports that a k-level BCube needs k tags.
//
// endpoints must be server nodes of b; nil means all servers.
func BCubeELP(b *topology.BCube, endpoints []topology.NodeID) *Set {
	if endpoints == nil {
		endpoints = b.Servers
	}
	s := NewSet()
	for _, src := range endpoints {
		for _, dst := range endpoints {
			if src == dst {
				continue
			}
			sa, ok := b.ServerNumber(src)
			if !ok {
				continue
			}
			da, ok := b.ServerNumber(dst)
			if !ok {
				continue
			}
			var diff []int
			for l := 0; l <= b.K; l++ {
				if b.Digit(sa, l) != b.Digit(da, l) {
					diff = append(diff, l)
				}
			}
			permute(diff, func(order []int) {
				if p := bcubePath(b, sa, da, order); p != nil {
					s.MustAdd(b.Graph, p)
				}
			})
		}
	}
	return s
}

// bcubePath builds the path from server sa to server da correcting digits
// in the given level order.
func bcubePath(b *topology.BCube, sa, da int, order []int) routing.Path {
	pow := make([]int, b.K+2)
	pow[0] = 1
	for i := 1; i <= b.K+1; i++ {
		pow[i] = pow[i-1] * b.N
	}
	cur := sa
	p := routing.Path{b.Servers[cur]}
	for _, l := range order {
		// The level-l switch both cur and next attach to: cur's address
		// with digit l removed.
		swIdx := (cur/pow[l+1])*pow[l] + cur%pow[l]
		next := cur + (b.Digit(da, l)-b.Digit(cur, l))*pow[l]
		p = append(p, b.Switches[l][swIdx], b.Servers[next])
		cur = next
	}
	if cur != da {
		return nil
	}
	return p
}

// permute calls f with every permutation of s (s is reused; f must not
// retain it).
func permute(s []int, f func([]int)) {
	if len(s) == 0 {
		f(s)
		return
	}
	var rec func(k int)
	rec = func(k int) {
		if k == len(s) {
			f(s)
			return
		}
		for i := k; i < len(s); i++ {
			s[k], s[i] = s[i], s[k]
			rec(k + 1)
			s[k], s[i] = s[i], s[k]
		}
	}
	rec(0)
}
