package elp

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// churnGraph builds a tiny two-tier fabric for tracker tests:
// T1, T2 each connect to L1 and L2.
func churnGraph(t *testing.T) (*topology.Graph, *Set) {
	t.Helper()
	cl, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 1, LeafsPerPod: 1, Spines: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl.Graph, KBounce(cl.Graph, cl.ToRs, 1, nil)
}

func TestTrackerLinkDownUp(t *testing.T) {
	g, set := churnGraph(t)
	tr := NewTracker(g, set)
	if tr.ActiveLen() != set.Len() || tr.AbsentLen() != 0 {
		t.Fatalf("fresh tracker: active=%d absent=%d, want %d/0", tr.ActiveLen(), tr.AbsentLen(), set.Len())
	}
	a, b := g.MustLookup("T1"), g.MustLookup("L1")
	g.FailLink(a, b)
	removed := tr.LinkDown(a, b)
	if len(removed) == 0 {
		t.Fatal("no paths removed for a link every T1-via-L1 path crosses")
	}
	for _, p := range removed {
		if tr.Usable(p) {
			t.Fatalf("removed path %s still usable", p.String(g))
		}
	}
	if tr.ActiveLen()+tr.AbsentLen() != set.Len() {
		t.Fatal("paths leaked during link-down")
	}
	g.RestoreLink(a, b)
	added := tr.LinkUp(a, b)
	if len(added) != len(removed) {
		t.Fatalf("recovery restored %d of %d paths", len(added), len(removed))
	}
	if tr.ActiveLen() != set.Len() || tr.AbsentLen() != 0 {
		t.Fatalf("after recovery: active=%d absent=%d", tr.ActiveLen(), tr.AbsentLen())
	}
}

// TestTrackerOverlappingFailures is the global-pool property: a path
// knocked out by link X that also crosses failed link Y must stay absent
// when X recovers, and come back only when the last obstruction clears.
func TestTrackerOverlappingFailures(t *testing.T) {
	g, set := churnGraph(t)
	tr := NewTracker(g, set)
	t1, l1 := g.MustLookup("T1"), g.MustLookup("L1")
	s1, l2 := g.MustLookup("S1"), g.MustLookup("L2")

	// Find a tracked path crossing both T1-L1 and S1-L2
	// (T1 > L1 > S1 > L2 > T2).
	var victim routing.Path
	for _, p := range tr.Active() {
		if len(p) == 5 && p[0] == t1 && p[2] == s1 {
			victim = p
		}
	}
	if victim == nil {
		t.Fatal("no T1>L1>S1>L2>T2 path in the ELP")
	}

	g.FailLink(t1, l1)
	tr.LinkDown(t1, l1)
	g.FailLink(s1, l2)
	tr.LinkDown(s1, l2)

	// First failure recovers; the victim still crosses the second.
	g.RestoreLink(t1, l1)
	for _, p := range tr.LinkUp(t1, l1) {
		if p.Key() == victim.Key() {
			t.Fatal("path reactivated while its second failed link is still down")
		}
	}
	if tr.Usable(victim) {
		t.Fatal("victim reported usable with S1-L2 down")
	}
	g.RestoreLink(s1, l2)
	restored := false
	for _, p := range tr.LinkUp(s1, l2) {
		if p.Key() == victim.Key() {
			restored = true
		}
	}
	if !restored {
		t.Fatal("victim not restored after the last obstruction cleared")
	}
}

func TestTrackerDrainUndrain(t *testing.T) {
	g, set := churnGraph(t)
	tr := NewTracker(g, set)
	l1 := g.MustLookup("L1")
	removed := tr.Drain(l1)
	if len(removed) == 0 {
		t.Fatal("draining L1 removed nothing")
	}
	if !tr.Drained(l1) {
		t.Fatal("drain mark not recorded")
	}
	// Draining again is a no-op.
	if again := tr.Drain(l1); len(again) != 0 {
		t.Fatalf("second drain removed %d paths", len(again))
	}
	// A drained node blocks reactivation even when links are healthy.
	for _, p := range removed {
		if tr.Usable(p) {
			t.Fatalf("path %s through drained switch reported usable", p.String(g))
		}
	}
	added := tr.Undrain(l1)
	if len(added) != len(removed) {
		t.Fatalf("undrain restored %d of %d paths", len(added), len(removed))
	}
	if tr.Undrain(l1) != nil {
		t.Fatal("undraining a healthy switch restored paths")
	}
}

// TestTrackerDrainLinkInteraction: a path parked by a drain that also
// crosses a failed link stays absent through the undrain.
func TestTrackerDrainLinkInteraction(t *testing.T) {
	g, set := churnGraph(t)
	tr := NewTracker(g, set)
	t1, l1 := g.MustLookup("T1"), g.MustLookup("L1")

	tr.Drain(l1)
	g.FailLink(t1, l1)
	tr.LinkDown(t1, l1) // no-op: the drain already parked those paths

	for _, p := range tr.Undrain(l1) {
		for i := 1; i < len(p); i++ {
			if (p[i-1] == t1 && p[i] == l1) || (p[i-1] == l1 && p[i] == t1) {
				t.Fatalf("path %s crossing the failed link reactivated on undrain", p.String(g))
			}
		}
	}
	g.RestoreLink(t1, l1)
	tr.LinkUp(t1, l1)
	if tr.ActiveLen() != set.Len() || tr.AbsentLen() != 0 {
		t.Fatalf("full recovery incomplete: active=%d absent=%d want %d/0",
			tr.ActiveLen(), tr.AbsentLen(), set.Len())
	}
}

func TestTrackerAddRemove(t *testing.T) {
	g, set := churnGraph(t)
	tr := NewTracker(g, set)
	base := tr.ActiveLen()

	// Re-adding known paths is a no-op.
	if added := tr.AddPaths(set.Paths()); len(added) != 0 {
		t.Fatalf("re-adding tracked paths activated %d", len(added))
	}

	// A new path over a failed link parks absent immediately. Leaf-to-leaf
	// paths are valid in the graph but outside the ToR-endpoint ELP, so
	// L1 > S1 > L2 is guaranteed untracked.
	l1, s1, l2 := g.MustLookup("L1"), g.MustLookup("S1"), g.MustLookup("L2")
	g.FailLink(s1, l2)
	fresh := routing.Path{l1, s1, l2}
	if _, ok := tr.idx[fresh.Key()]; ok {
		t.Fatal("test path already tracked; pick another")
	}
	tr.Remove([]routing.Path{fresh}) // removing unknown paths is a no-op
	if added := tr.AddPaths([]routing.Path{fresh}); len(added) != 0 {
		t.Fatalf("path over a failed link activated: %v", added)
	}
	if tr.AbsentLen() == 0 {
		t.Fatal("unusable new path not parked")
	}
	g.RestoreLink(s1, l2)
	if restored := tr.LinkUp(s1, l2); len(restored) != 1 || restored[0].Key() != fresh.Key() {
		t.Fatalf("parked path not restored: %v", restored)
	}

	deactivated := tr.Remove([]routing.Path{fresh})
	if len(deactivated) != 1 {
		t.Fatalf("Remove returned %d active paths, want 1", len(deactivated))
	}
	if tr.ActiveLen() != base {
		t.Fatalf("active=%d after remove, want %d", tr.ActiveLen(), base)
	}
}
