package elp

import (
	"testing"

	"repro/internal/topology"
)

func BenchmarkKBounceTestbed(b *testing.B) {
	c, err := topology.NewClos(topology.PaperTestbed())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if KBounce(c.Graph, c.ToRs, 1, nil).Len() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkShortestAllJellyfish100(b *testing.B) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 100, Ports: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ShortestAll(j.Graph, j.Switches).Len() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBCubeELP(b *testing.B) {
	bc, err := topology.NewBCube(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if BCubeELP(bc, nil).Len() == 0 {
			b.Fatal("empty")
		}
	}
}
