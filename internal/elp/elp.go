// Package elp builds and validates Expected Lossless Path (ELP) sets.
//
// An ELP set is the operator-supplied input to Tagger (§4.1 of the paper):
// the routes that must remain lossless. Any loop-free route may be
// included. This package provides the enumerators the paper's evaluation
// uses: all shortest up-down paths on Clos, paths with up to k bounces,
// per-pair shortest paths on arbitrary topologies (Jellyfish, BCube), and
// extra random paths (Table 5's last row).
package elp

import (
	"fmt"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Set is a deduplicated collection of loop-free expected lossless paths.
type Set struct {
	paths []routing.Path
	keys  map[string]bool
}

// NewSet returns an empty ELP set.
func NewSet() *Set {
	return &Set{keys: make(map[string]bool)}
}

// Add validates and inserts a path; duplicates are ignored. It returns an
// error for paths that are empty, contain a repeated node, or traverse
// non-adjacent node pairs.
func (s *Set) Add(g *topology.Graph, p routing.Path) error {
	if len(p) == 0 {
		return fmt.Errorf("elp: empty path")
	}
	if !p.LoopFree() {
		return fmt.Errorf("elp: path %s has a loop", p.String(g))
	}
	if !p.Valid(g) {
		return fmt.Errorf("elp: path %s traverses non-adjacent nodes", p.String(g))
	}
	if s.keys == nil {
		s.keys = make(map[string]bool)
	}
	k := p.Key()
	if s.keys[k] {
		return nil
	}
	s.keys[k] = true
	s.paths = append(s.paths, p)
	return nil
}

// MustAdd is Add that panics on invalid paths; for fixed test fixtures.
func (s *Set) MustAdd(g *topology.Graph, p routing.Path) {
	if err := s.Add(g, p); err != nil {
		panic(err)
	}
}

// AddAll adds every path, returning the first validation error.
func (s *Set) AddAll(g *topology.Graph, paths []routing.Path) error {
	for _, p := range paths {
		if err := s.Add(g, p); err != nil {
			return err
		}
	}
	return nil
}

// Paths returns the paths in insertion order. The slice is shared; do not
// modify it.
func (s *Set) Paths() []routing.Path { return s.paths }

// Len returns the number of distinct paths.
func (s *Set) Len() int { return len(s.paths) }

// Contains reports whether the exact node sequence is in the set.
func (s *Set) Contains(p routing.Path) bool { return s.keys[p.Key()] }

// LongestHops returns the maximum hop count over the set (0 for empty).
func (s *Set) LongestHops() int {
	m := 0
	for _, p := range s.paths {
		if h := p.Hops(); h > m {
			m = h
		}
	}
	return m
}

// UpDownAll adds, for every ordered pair of the given endpoints, every
// shortest valley-free path. Endpoints are typically the ToR switches of a
// Clos. Unreachable pairs are skipped.
func UpDownAll(g *topology.Graph, endpoints []topology.NodeID) *Set {
	defer telemetry.Default.StartSpan("synth/elp").End()
	s := NewSet()
	for _, a := range endpoints {
		for _, b := range endpoints {
			if a == b {
				continue
			}
			for _, p := range routing.UpDownPaths(g, a, b, 0) {
				s.MustAdd(g, p)
			}
		}
	}
	return s
}

// KBounce adds, for every ordered endpoint pair, every loop-free path that
// is a concatenation of at most k+1 shortest valley-free segments joined
// at bounce switches — i.e. all paths with at most k bounces (§4.3). The
// junction switches may be any switch in via (defaults to all switches
// when via is nil). Paths that revisit a node are discarded, matching the
// paper's loop-free requirement on ELP routes.
//
// The shortest (0-bounce) paths are included, so the result is the
// "shortest plus up-to-k-bounce" ELP the paper uses for Clos.
func KBounce(g *topology.Graph, endpoints []topology.NodeID, k int, via []topology.NodeID) *Set {
	defer telemetry.Default.StartSpan("synth/elp").End()
	if via == nil {
		via = g.Switches()
	}
	s := NewSet()
	// Cache of shortest valley-free segments between switch pairs, with
	// and without the first-hop-must-ascend constraint.
	type segKey struct {
		a, b    topology.NodeID
		firstUp bool
	}
	segCache := map[segKey][]routing.Path{}
	segsBetween := func(a, b topology.NodeID, firstUp bool) []routing.Path {
		if a == b {
			return nil
		}
		key := segKey{a, b, firstUp}
		if ps, ok := segCache[key]; ok {
			return ps
		}
		var ps []routing.Path
		if firstUp {
			ps = routing.UpDownPathsFirstUp(g, a, b, 0)
		} else {
			ps = routing.UpDownPaths(g, a, b, 0)
		}
		segCache[key] = ps
		return ps
	}

	endsDescending := func(seg routing.Path) bool {
		return len(seg) >= 2 && g.Node(seg[len(seg)-1]).Layer < g.Node(seg[len(seg)-2]).Layer
	}

	// extend grows prefix toward dst. mustAscend is set right after a
	// bounce junction: the packet arrived descending, so the next segment
	// must leave ascending or the junction was not a bounce at all.
	var extend func(prefix routing.Path, bouncesLeft int, dst topology.NodeID, mustAscend bool)
	extend = func(prefix routing.Path, bouncesLeft int, dst topology.NodeID, mustAscend bool) {
		cur := prefix.Dst()
		// Finish directly.
		for _, seg := range segsBetween(cur, dst, mustAscend) {
			if full, ok := routing.Concat(prefix, seg); ok && full.LoopFree() {
				s.MustAdd(g, full)
			}
		}
		if bouncesLeft == 0 {
			return
		}
		// Bounce at an intermediate switch x, then continue ascending.
		for _, x := range via {
			if x == cur || x == dst {
				continue
			}
			for _, seg := range segsBetween(cur, x, mustAscend) {
				// A genuine bounce requires arriving at x descending.
				if !endsDescending(seg) {
					continue
				}
				if full, ok := routing.Concat(prefix, seg); ok && full.LoopFree() {
					extend(full, bouncesLeft-1, dst, true)
				}
			}
		}
	}

	for _, a := range endpoints {
		for _, b := range endpoints {
			if a == b {
				continue
			}
			extend(routing.Path{a}, k, b, false)
		}
	}
	return s
}

// ShortestAll adds one shortest path for every ordered pair of the given
// endpoints (deterministic tie-break). This is the ELP used for Jellyfish
// and BCube scalability (Table 5): "LP is shortest paths".
func ShortestAll(g *topology.Graph, endpoints []topology.NodeID) *Set {
	return ShortestAllN(g, endpoints, 1)
}

// ShortestAllN is ShortestAll with an explicit worker count (0 =
// GOMAXPROCS, 1 = serial). Sources are sharded across workers — each BFS
// is independent — and the per-source path lists are folded into the set
// in source order, so every worker count yields the same set.
func ShortestAllN(g *topology.Graph, endpoints []topology.NodeID, par int) *Set {
	defer telemetry.Default.StartSpan("synth/elp").End()
	w := parallel.Workers(par, len(endpoints))
	if w <= 1 {
		s := NewSet()
		var sc bfsScratch
		for _, a := range endpoints {
			// One BFS per source covers all destinations.
			for _, p := range shortestTreePaths(g, a, endpoints, &sc) {
				s.MustAdd(g, p)
			}
		}
		return s
	}
	perSrc := make([][]routing.Path, len(endpoints))
	parallel.ForEachShard(len(endpoints), w, func(sh parallel.Shard) {
		var sc bfsScratch
		for i := sh.Lo; i < sh.Hi; i++ {
			perSrc[i] = shortestTreePaths(g, endpoints[i], endpoints, &sc)
		}
	})
	s := NewSet()
	for _, paths := range perSrc {
		for _, p := range paths {
			s.MustAdd(g, p)
		}
	}
	return s
}

// ShortestAllECMP adds every shortest path for each ordered pair, capped
// at limit paths per pair (limit <= 0: unlimited). Exponentially many
// paths can exist; use only on small graphs or with a cap.
func ShortestAllECMP(g *topology.Graph, endpoints []topology.NodeID, limit int) *Set {
	s := NewSet()
	for _, a := range endpoints {
		for _, b := range endpoints {
			if a == b {
				continue
			}
			for _, p := range routing.AllShortestPaths(g, a, b, limit) {
				s.MustAdd(g, p)
			}
		}
	}
	return s
}

// bfsScratch holds the per-source BFS state so repeated calls (one per
// source, across the whole endpoint set) reuse the same backing arrays.
type bfsScratch struct {
	dist   []int32
	parent []topology.NodeID
	queue  []topology.NodeID
	nbuf   []topology.NodeID
}

// shortestTreePaths extracts one shortest path from src to each other
// endpoint using a single BFS with deterministic parent choice.
func shortestTreePaths(g *topology.Graph, src topology.NodeID, endpoints []topology.NodeID, sc *bfsScratch) []routing.Path {
	n := g.NumNodes()
	if cap(sc.dist) < n {
		sc.dist = make([]int32, n)
		sc.parent = make([]topology.NodeID, n)
	}
	dist, parent := sc.dist[:n], sc.parent[:n]
	for i := range dist {
		dist[i] = -1
		parent[i] = topology.InvalidNode
	}
	dist[src] = 0
	queue := append(sc.queue[:0], src)
	nbuf := sc.nbuf
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if u != src && g.Node(u).Kind == topology.KindHost {
			continue
		}
		nbuf = g.Neighbors(u, nbuf[:0])
		// Deterministic: ascending neighbor IDs. Insertion sort — the
		// lists are port-count sized and this avoids sort.Slice's
		// reflection machinery in the innermost BFS loop.
		for i := 1; i < len(nbuf); i++ {
			v := nbuf[i]
			j := i - 1
			for j >= 0 && nbuf[j] > v {
				nbuf[j+1] = nbuf[j]
				j--
			}
			nbuf[j+1] = v
		}
		for _, v := range nbuf {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	sc.queue, sc.nbuf = queue, nbuf
	// All paths of one source share a single backing arena: two
	// allocations per source instead of one per destination.
	total := 0
	count := 0
	for _, b := range endpoints {
		if b != src && dist[b] >= 0 {
			total += int(dist[b]) + 1
			count++
		}
	}
	arena := make([]topology.NodeID, total)
	out := make([]routing.Path, 0, count)
	off := 0
	for _, b := range endpoints {
		if b == src || dist[b] < 0 {
			continue
		}
		p := routing.Path(arena[off : off+int(dist[b])+1])
		off += int(dist[b]) + 1
		for cur, i := b, int(dist[b]); i >= 0; cur, i = parent[cur], i-1 {
			p[i] = cur
		}
		out = append(out, p)
	}
	return out
}

// HostLevel expands a switch-level path set to host level: every path
// from switch a to switch b becomes one path per (host under a, host
// under b) pair, with the hosts prepended/appended. Host-level ELPs model
// deployments where the NIC stamps the tag and the ToR's host-facing
// ingress is part of the tagged graph. The expansion multiplies the set
// by hostsPerEndpoint^2; limit bounds hosts used per endpoint (0 = all).
func HostLevel(g *topology.Graph, s *Set, limit int) *Set {
	hostsUnder := func(sw topology.NodeID) []topology.NodeID {
		var out []topology.NodeID
		var nbuf []topology.NodeID
		nbuf = g.Neighbors(sw, nbuf)
		for _, nb := range nbuf {
			if g.Node(nb).Kind == topology.KindHost {
				out = append(out, nb)
				if limit > 0 && len(out) == limit {
					break
				}
			}
		}
		return out
	}
	out := NewSet()
	for _, p := range s.Paths() {
		srcs := hostsUnder(p.Src())
		dsts := hostsUnder(p.Dst())
		for _, sh := range srcs {
			for _, dh := range dsts {
				hp := make(routing.Path, 0, len(p)+2)
				hp = append(hp, sh)
				hp = append(hp, p...)
				hp = append(hp, dh)
				out.MustAdd(g, hp)
			}
		}
	}
	return out
}

// RandomPaths adds count random loop-free walks between random endpoint
// pairs (Table 5's "+10,000 random paths" row). Each walk is a random
// simple path of at most maxHops hops found by randomized DFS; pairs with
// no such path are retried with new endpoints. Generation is
// deterministic per seed.
func RandomPaths(g *topology.Graph, endpoints []topology.NodeID, count, maxHops int, seed int64) *Set {
	s := NewSet()
	AddRandomPaths(s, g, endpoints, count, maxHops, seed)
	return s
}

// AddRandomPaths inserts count random loop-free paths into an existing set.
func AddRandomPaths(s *Set, g *topology.Graph, endpoints []topology.NodeID, count, maxHops int, seed int64) {
	if len(endpoints) < 2 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	var nbuf []topology.NodeID
	attempts := 0
	for added := 0; added < count && attempts < count*50; attempts++ {
		a := endpoints[rng.Intn(len(endpoints))]
		b := endpoints[rng.Intn(len(endpoints))]
		if a == b {
			continue
		}
		p := randomSimplePath(g, a, b, maxHops, rng, &nbuf)
		if p == nil {
			continue
		}
		if !s.Contains(p) {
			s.MustAdd(g, p)
			added++
		}
	}
}

func randomSimplePath(g *topology.Graph, a, b topology.NodeID, maxHops int, rng *rand.Rand, nbuf *[]topology.NodeID) routing.Path {
	if maxHops <= 0 {
		maxHops = 8
	}
	onPath := map[topology.NodeID]bool{a: true}
	var dfs func(cur topology.NodeID, hops int, acc routing.Path) routing.Path
	dfs = func(cur topology.NodeID, hops int, acc routing.Path) routing.Path {
		if cur == b {
			out := make(routing.Path, len(acc))
			copy(out, acc)
			return out
		}
		if hops == maxHops {
			return nil
		}
		if cur != a && g.Node(cur).Kind == topology.KindHost {
			return nil
		}
		*nbuf = g.Neighbors(cur, (*nbuf)[:0])
		nbs := append([]topology.NodeID(nil), *nbuf...)
		rng.Shuffle(len(nbs), func(i, j int) { nbs[i], nbs[j] = nbs[j], nbs[i] })
		for _, v := range nbs {
			if onPath[v] {
				continue
			}
			if v != b && g.Node(v).Kind == topology.KindHost {
				continue
			}
			onPath[v] = true
			if p := dfs(v, hops+1, append(acc, v)); p != nil {
				return p
			}
			delete(onPath, v)
		}
		return nil
	}
	return dfs(a, 0, routing.Path{a})
}
