package elp

import (
	"math/rand"

	"repro/internal/routing"
	"repro/internal/topology"
)

// DeviationPaths returns up to count seeded random loop-free paths that
// are NOT in base — routes a packet could actually take after a link
// failure or routing reconvergence pushed it off the expected lossless
// paths. The verification harness (internal/check) replays them through
// the compiled TCAM pipelines to confirm both tables agree on demoting
// strays to the lossy queue; the simulator uses the same notion when it
// reroutes around failures.
//
// Interior nodes are never plain hosts (hosts do not forward), endpoints
// are drawn from the given set, and generation is deterministic per
// seed. Fewer than count paths are returned when the topology is too
// small to yield enough distinct off-ELP routes.
func DeviationPaths(g *topology.Graph, base *Set, endpoints []topology.NodeID, count, maxHops int, seed int64) []routing.Path {
	if len(endpoints) < 2 || count <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	var out []routing.Path
	var nbuf []topology.NodeID
	for attempts := 0; len(out) < count && attempts < count*50; attempts++ {
		a := endpoints[rng.Intn(len(endpoints))]
		b := endpoints[rng.Intn(len(endpoints))]
		if a == b {
			continue
		}
		p := randomSimplePath(g, a, b, maxHops, rng, &nbuf)
		if p == nil {
			continue
		}
		k := p.Key()
		if seen[k] || (base != nil && base.Contains(p)) {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}
