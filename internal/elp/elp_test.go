package elp

import (
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/topology"
)

func paperClos(t *testing.T) *topology.Clos {
	t.Helper()
	c, err := topology.NewClos(topology.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetAddValidation(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	s := NewSet()

	if err := s.Add(g, routing.Path{}); err == nil {
		t.Error("empty path accepted")
	}
	if err := s.Add(g, routing.Path{n("T1"), n("L1"), n("T1")}); err == nil {
		t.Error("looping path accepted")
	}
	if err := s.Add(g, routing.Path{n("T1"), n("S1")}); err == nil {
		t.Error("non-adjacent path accepted")
	}
	p := routing.Path{n("T1"), n("L1"), n("S1")}
	if err := s.Add(g, p); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(g, p); err != nil {
		t.Fatal("duplicate add should be a no-op, not an error")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Contains(p) {
		t.Error("Contains failed")
	}
	if s.LongestHops() != 2 {
		t.Errorf("LongestHops = %d", s.LongestHops())
	}
	if err := s.AddAll(g, []routing.Path{{n("T2"), n("L1")}, {n("T2"), n("L2")}}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if err := s.AddAll(g, []routing.Path{{n("T1"), n("S1")}}); err == nil {
		t.Error("AddAll should surface validation errors")
	}
}

func TestMustAddPanics(t *testing.T) {
	c := paperClos(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSet().MustAdd(c.Graph, routing.Path{})
}

func TestUpDownAllCounts(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	s := UpDownAll(g, c.ToRs)
	// Ordered ToR pairs: same-pod pairs (4) x 2 paths + cross-pod pairs (8) x 8 paths.
	want := 4*2 + 8*8
	if s.Len() != want {
		t.Fatalf("UpDownAll paths = %d, want %d", s.Len(), want)
	}
	for _, p := range s.Paths() {
		if !p.ValleyFree(g) {
			t.Errorf("path %s not valley-free", p.String(g))
		}
	}
	if s.LongestHops() != 4 {
		t.Errorf("LongestHops = %d, want 4", s.LongestHops())
	}
}

func TestKBounceZeroEqualsUpDown(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	ud := UpDownAll(g, c.ToRs)
	kb := KBounce(g, c.ToRs, 0, nil)
	if kb.Len() != ud.Len() {
		t.Fatalf("KBounce(0) = %d paths, UpDownAll = %d", kb.Len(), ud.Len())
	}
	for _, p := range ud.Paths() {
		if !kb.Contains(p) {
			t.Errorf("missing path %s", p.String(g))
		}
	}
}

func TestKBounceOneContainsFig3Paths(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	s := KBounce(g, c.ToRs, 1, nil)

	// The green flow's bounced path from Fig 3:
	// T3 -> L3 -> S2 -> L1 (bounce) -> S1 -> L2 -> T1.
	green := routing.Path{n("T3"), n("L3"), n("S2"), n("L1"), n("S1"), n("L2"), n("T1")}
	if !s.Contains(green) {
		t.Errorf("1-bounce ELP missing green path %s", green.String(g))
	}
	// The blue flow's bounced path:
	// T1 -> L1 -> S1 -> L3 (bounce) -> S2 -> L4 -> T4.
	blue := routing.Path{n("T1"), n("L1"), n("S1"), n("L3"), n("S2"), n("L4"), n("T4")}
	if !s.Contains(blue) {
		t.Errorf("1-bounce ELP missing blue path %s", blue.String(g))
	}
	// All paths have at most one bounce and are loop-free.
	for _, p := range s.Paths() {
		if b := p.Bounces(g); b > 1 {
			t.Errorf("path %s has %d bounces", p.String(g), b)
		}
		if !p.LoopFree() {
			t.Errorf("path %s loops", p.String(g))
		}
	}
	// Strictly more paths than 0-bounce.
	if s.Len() <= UpDownAll(g, c.ToRs).Len() {
		t.Error("1-bounce ELP should be strictly larger than up-down ELP")
	}
}

func TestKBounceBouncesBounded(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	for k := 0; k <= 2; k++ {
		s := KBounce(g, c.ToRs, k, nil)
		maxB := 0
		for _, p := range s.Paths() {
			if b := p.Bounces(g); b > maxB {
				maxB = b
			}
		}
		if maxB > k {
			t.Errorf("k=%d: found path with %d bounces", k, maxB)
		}
		if k > 0 && maxB != k {
			t.Errorf("k=%d: expected some path with exactly %d bounces, max was %d", k, k, maxB)
		}
	}
}

func TestShortestAll(t *testing.T) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 12, Ports: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := j.Graph
	s := ShortestAll(g, j.Switches)
	want := 12 * 11
	if s.Len() != want {
		t.Fatalf("ShortestAll = %d paths, want %d", s.Len(), want)
	}
	for _, p := range s.Paths() {
		if !p.LoopFree() || !p.Valid(g) {
			t.Errorf("bad path %s", p.String(g))
		}
		if d := routing.Distance(g, p.Src(), p.Dst()); p.Hops() != d {
			t.Errorf("path %s is not shortest (%d vs %d)", p.String(g), p.Hops(), d)
		}
	}
}

func TestShortestAllECMP(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	s := ShortestAllECMP(g, c.ToRs, 0)
	// Same-pod pairs have 2 shortest paths, cross-pod 8.
	want := 4*2 + 8*8
	if s.Len() != want {
		t.Fatalf("ShortestAllECMP = %d, want %d", s.Len(), want)
	}
	capped := ShortestAllECMP(g, c.ToRs, 1)
	if capped.Len() != 12 {
		t.Errorf("capped = %d, want 12 (one per ordered pair)", capped.Len())
	}
}

func TestRandomPaths(t *testing.T) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 20, Ports: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := j.Graph
	s := RandomPaths(g, j.Switches, 100, 6, 11)
	if s.Len() != 100 {
		t.Fatalf("RandomPaths = %d, want 100", s.Len())
	}
	for _, p := range s.Paths() {
		if !p.LoopFree() || !p.Valid(g) {
			t.Errorf("bad random path %s", p.String(g))
		}
		if p.Hops() > 6 {
			t.Errorf("path too long: %s", p.String(g))
		}
	}
	// Deterministic per seed.
	s2 := RandomPaths(g, j.Switches, 100, 6, 11)
	for i, p := range s.Paths() {
		if !p.Equal(s2.Paths()[i]) {
			t.Fatal("RandomPaths not deterministic")
		}
	}
	// Different seeds differ.
	s3 := RandomPaths(g, j.Switches, 100, 6, 12)
	same := true
	for i, p := range s.Paths() {
		if !p.Equal(s3.Paths()[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical path sets")
	}
}

func TestAddRandomPathsExtends(t *testing.T) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 15, Ports: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := ShortestAll(j.Graph, j.Switches)
	before := s.Len()
	AddRandomPaths(s, j.Graph, j.Switches, 50, 6, 21)
	if s.Len() != before+50 {
		t.Errorf("extended set = %d, want %d", s.Len(), before+50)
	}
}

// Property: KBounce output on random small Clos configs contains only
// loop-free valid paths within the bounce budget.
func TestKBounceProperty(t *testing.T) {
	f := func(pods, tors, leafs, spines uint8, k uint8) bool {
		cfg := topology.ClosConfig{
			Pods:        int(pods%2) + 2,
			ToRsPerPod:  int(tors%2) + 1,
			LeafsPerPod: int(leafs%2) + 1,
			Spines:      int(spines%2) + 1,
		}
		c, err := topology.NewClos(cfg)
		if err != nil {
			return false
		}
		kk := int(k % 2)
		s := KBounce(c.Graph, c.ToRs, kk, nil)
		for _, p := range s.Paths() {
			if !p.LoopFree() || !p.Valid(c.Graph) || p.Bounces(c.Graph) > kk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
