package elp

import (
	"testing"

	"repro/internal/topology"
)

func TestBCubeELPStructure(t *testing.T) {
	b, err := topology.NewBCube(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := BCubeELP(b, nil)
	// 4 servers, 12 ordered pairs. Pairs differing in one digit have one
	// path; pairs differing in both digits have 2 (two digit orders):
	// per server: 2 one-digit peers + 1 two-digit peer => 2*1 + 1*2 = 4
	// paths; 4 servers => 16.
	if s.Len() != 16 {
		t.Fatalf("paths = %d, want 16", s.Len())
	}
	g := b.Graph
	for _, p := range s.Paths() {
		if !p.LoopFree() || !p.Valid(g) {
			t.Errorf("bad path %s", p.String(g))
		}
		// BCube paths alternate server, switch, server, ...
		for i, n := range p {
			isSwitch := g.Node(n).Kind.IsSwitch()
			if (i%2 == 1) != isSwitch {
				t.Errorf("path %s does not alternate at %d", p.String(g), i)
			}
		}
		// Endpoints are servers.
		if g.Node(p.Src()).Kind != topology.KindRelayHost ||
			g.Node(p.Dst()).Kind != topology.KindRelayHost {
			t.Errorf("endpoints of %s", p.String(g))
		}
	}
}

func TestBCubeELPDigitCorrection(t *testing.T) {
	// Each hop corrects exactly one address digit.
	b, err := topology.NewBCube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := BCubeELP(b, b.Servers[:4])
	for _, p := range s.Paths() {
		// Server nodes appear at even indices; consecutive servers differ
		// in exactly one digit.
		for i := 0; i+2 < len(p); i += 2 {
			a, _ := b.ServerNumber(p[i])
			c, _ := b.ServerNumber(p[i+2])
			diff := 0
			for l := 0; l <= b.K; l++ {
				if b.Digit(a, l) != b.Digit(c, l) {
					diff++
				}
			}
			if diff != 1 {
				t.Errorf("path %s: hop corrects %d digits", p.String(b.Graph), diff)
			}
		}
	}
}

func TestBCubeELPSubsetEndpoints(t *testing.T) {
	b, err := topology.NewBCube(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub := b.Servers[:3]
	s := BCubeELP(b, sub)
	for _, p := range s.Paths() {
		srcOK, dstOK := false, false
		for _, e := range sub {
			if p.Src() == e {
				srcOK = true
			}
			if p.Dst() == e {
				dstOK = true
			}
		}
		if !srcOK || !dstOK {
			t.Errorf("path %s escapes the endpoint subset", p.String(b.Graph))
		}
	}
	// Servers differing in all 3 digits have 3! = 6 paths.
	s0, s7 := b.Servers[0], b.Servers[7]
	all := BCubeELP(b, []topology.NodeID{s0, s7})
	if all.Len() != 12 { // 6 each direction
		t.Errorf("3-digit pair paths = %d, want 12", all.Len())
	}
}

func TestPermute(t *testing.T) {
	var got [][]int
	permute([]int{1, 2, 3}, func(s []int) {
		cp := append([]int(nil), s...)
		got = append(got, cp)
	})
	if len(got) != 6 {
		t.Fatalf("permutations = %d", len(got))
	}
	seen := map[string]bool{}
	for _, p := range got {
		k := ""
		for _, v := range p {
			k += string(rune('0' + v))
		}
		if seen[k] {
			t.Fatalf("duplicate permutation %s", k)
		}
		seen[k] = true
	}
	// Empty input: one call with the empty slice.
	calls := 0
	permute(nil, func([]int) { calls++ })
	if calls != 1 {
		t.Errorf("empty permute calls = %d", calls)
	}
}
