package elp

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// Tracker maintains an ELP set through fabric churn: link failures and
// recoveries, switch drains for maintenance, and expansion-driven path
// additions. It partitions the tracked paths into *active* (currently
// usable, fed to synthesis) and *absent* (knocked out by some churn
// event, kept so a recovery can restore them), and every churn method
// returns the exact paths that moved — the delta the incremental
// re-synthesis path (core.Resynth) consumes.
//
// Absent paths live in one global pool, not per-event buckets: a path
// knocked out by link A may also traverse failed link B or drained
// switch S, so every recovery re-validates the whole pool against
// current topology health rather than trusting the event that parked it.
type Tracker struct {
	g       *topology.Graph
	idx     map[string]int // path key -> slot in list
	list    []trackedPath
	dead    int // tombstoned slots
	drained map[topology.NodeID]bool
}

type trackedPath struct {
	path   routing.Path // nil = tombstone
	active bool
}

// NewTracker tracks the paths of s (all initially active) over g.
func NewTracker(g *topology.Graph, s *Set) *Tracker {
	t := &Tracker{
		g:       g,
		idx:     make(map[string]int, s.Len()),
		drained: make(map[topology.NodeID]bool),
	}
	for _, p := range s.Paths() {
		t.idx[p.Key()] = len(t.list)
		t.list = append(t.list, trackedPath{path: p, active: true})
	}
	return t
}

// Active returns the currently active paths in insertion order.
func (t *Tracker) Active() []routing.Path {
	out := make([]routing.Path, 0, len(t.list))
	for _, e := range t.list {
		if e.path != nil && e.active {
			out = append(out, e.path)
		}
	}
	return out
}

// ActiveLen returns the number of active paths.
func (t *Tracker) ActiveLen() int {
	n := 0
	for _, e := range t.list {
		if e.path != nil && e.active {
			n++
		}
	}
	return n
}

// AbsentLen returns the number of tracked-but-unusable paths.
func (t *Tracker) AbsentLen() int {
	n := 0
	for _, e := range t.list {
		if e.path != nil && !e.active {
			n++
		}
	}
	return n
}

// Drained reports whether sw is currently drained.
func (t *Tracker) Drained(sw topology.NodeID) bool { return t.drained[sw] }

// Usable reports whether p could be active right now: every hop crosses a
// healthy link and no node on it is drained.
func (t *Tracker) Usable(p routing.Path) bool {
	for _, n := range p {
		if t.drained[n] {
			return false
		}
	}
	for i := 1; i < len(p); i++ {
		l := t.g.LinkBetween(p[i-1], p[i])
		if l == nil || l.Failed {
			return false
		}
	}
	return true
}

// LinkDown deactivates every active path traversing the a-b link and
// returns them. The caller is responsible for the topology-side
// Graph.FailLink; Tracker only does path bookkeeping.
func (t *Tracker) LinkDown(a, b topology.NodeID) []routing.Path {
	var out []routing.Path
	for i := range t.list {
		e := &t.list[i]
		if e.path == nil || !e.active || !traverses(e.path, a, b) {
			continue
		}
		e.active = false
		out = append(out, e.path)
	}
	return out
}

// LinkUp re-validates the whole absent pool (the a-b arguments are
// documentation of the trigger; restoring one link can revive paths
// parked by any earlier event) and returns the paths that became active.
// The caller restores the link in the Graph first.
func (t *Tracker) LinkUp(a, b topology.NodeID) []routing.Path {
	return t.revalidate()
}

// Drain marks sw as drained and deactivates every active path visiting
// it, returning them. The topology is untouched: drained switches still
// forward while the controller removes traffic from them.
func (t *Tracker) Drain(sw topology.NodeID) []routing.Path {
	if t.drained[sw] {
		return nil
	}
	t.drained[sw] = true
	var out []routing.Path
	for i := range t.list {
		e := &t.list[i]
		if e.path == nil || !e.active || !visits(e.path, sw) {
			continue
		}
		e.active = false
		out = append(out, e.path)
	}
	return out
}

// Undrain clears the drain mark and returns the absent paths that became
// active again.
func (t *Tracker) Undrain(sw topology.NodeID) []routing.Path {
	if !t.drained[sw] {
		return nil
	}
	delete(t.drained, sw)
	return t.revalidate()
}

// AddPaths tracks any paths not yet known (deduplicated by key) — the
// expansion entry point, fed the re-enumerated policy output. Usable
// paths start active and are returned; unusable ones are parked absent.
func (t *Tracker) AddPaths(paths []routing.Path) (activated []routing.Path) {
	for _, p := range paths {
		k := p.Key()
		if _, ok := t.idx[k]; ok {
			continue
		}
		usable := t.Usable(p)
		t.idx[k] = len(t.list)
		t.list = append(t.list, trackedPath{path: p, active: usable})
		if usable {
			activated = append(activated, p)
		}
	}
	return activated
}

// Remove forgets paths entirely (no recovery will restore them).
func (t *Tracker) Remove(paths []routing.Path) (deactivated []routing.Path) {
	for _, p := range paths {
		idx, ok := t.idx[p.Key()]
		if !ok {
			continue
		}
		e := &t.list[idx]
		if e.active {
			deactivated = append(deactivated, e.path)
		}
		delete(t.idx, p.Key())
		e.path = nil
		t.dead++
	}
	t.compact()
	return deactivated
}

// revalidate sweeps the absent pool and activates every path that is
// usable under current link health and drain marks.
func (t *Tracker) revalidate() []routing.Path {
	var out []routing.Path
	for i := range t.list {
		e := &t.list[i]
		if e.path == nil || e.active || !t.Usable(e.path) {
			continue
		}
		e.active = true
		out = append(out, e.path)
	}
	return out
}

func (t *Tracker) compact() {
	if t.dead <= len(t.list)/2 || t.dead == 0 {
		return
	}
	live := make([]trackedPath, 0, len(t.list)-t.dead)
	for _, e := range t.list {
		if e.path != nil {
			t.idx[e.path.Key()] = len(live)
			live = append(live, e)
		}
	}
	t.list, t.dead = live, 0
}

func traverses(p routing.Path, a, b topology.NodeID) bool {
	for i := 1; i < len(p); i++ {
		if (p[i-1] == a && p[i] == b) || (p[i-1] == b && p[i] == a) {
			return true
		}
	}
	return false
}

func visits(p routing.Path, n topology.NodeID) bool {
	for _, x := range p {
		if x == n {
			return true
		}
	}
	return false
}
