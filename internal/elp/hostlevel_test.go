package elp

import (
	"testing"

	"repro/internal/topology"
)

func TestHostLevelExpansion(t *testing.T) {
	c, err := topology.NewClos(topology.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	sw := UpDownAll(g, c.ToRs)
	hl := HostLevel(g, sw, 0)
	// 4 hosts per ToR: every switch path expands by 16.
	if hl.Len() != sw.Len()*16 {
		t.Fatalf("host-level = %d, want %d", hl.Len(), sw.Len()*16)
	}
	for _, p := range hl.Paths() {
		if g.Node(p.Src()).Kind != topology.KindHost || g.Node(p.Dst()).Kind != topology.KindHost {
			t.Fatalf("endpoints not hosts: %s", p.String(g))
		}
		if !p.LoopFree() || !p.Valid(g) {
			t.Fatalf("bad path %s", p.String(g))
		}
	}
	// Cap limits the blow-up.
	capped := HostLevel(g, sw, 1)
	if capped.Len() != sw.Len() {
		t.Errorf("capped = %d, want %d", capped.Len(), sw.Len())
	}
}
