package pfc

import (
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	good := Config{XoffThreshold: 100, XonThreshold: 50, Headroom: 200}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{XoffThreshold: 0, XonThreshold: 0},
		{XoffThreshold: 100, XonThreshold: 200},
		{XoffThreshold: 100, XonThreshold: -1},
		{XoffThreshold: 100, XonThreshold: 50, Headroom: -5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
}

func TestComputeHeadroom(t *testing.T) {
	// 40 Gbps, 1.5 us one-way, 1KB MTU: in-flight = 5e9 B/s * 3e-6 s = 15000 B.
	got := ComputeHeadroom(40_000_000_000, 1500*time.Nanosecond, 1024)
	want := int64(15000 + 3*1024)
	if got != want {
		t.Errorf("headroom = %d, want %d", got, want)
	}
	// Headroom grows with delay and rate.
	if ComputeHeadroom(40_000_000_000, 3*time.Microsecond, 1024) <= got {
		t.Error("headroom should grow with delay")
	}
	if ComputeHeadroom(100_000_000_000, 1500*time.Nanosecond, 1024) <= got {
		t.Error("headroom should grow with rate")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(1<<20, 40_000_000_000, time.Microsecond, 1024)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.XoffThreshold != 1<<19 || c.XonThreshold != 1<<18 {
		t.Errorf("thresholds = %d/%d", c.XoffThreshold, c.XonThreshold)
	}
	if c.Headroom <= 0 {
		t.Error("headroom missing")
	}
}

func TestQuantaRoundTrip(t *testing.T) {
	const rate = 40_000_000_000
	if QuantaForDuration(0, rate) != 0 {
		t.Error("zero duration should be zero quanta")
	}
	// One quantum at 40G is 512/40e9 s = 12.8 ns.
	q := QuantaForDuration(128*time.Nanosecond, rate)
	if q != 10 {
		t.Errorf("quanta = %d, want 10", q)
	}
	d := DurationForQuanta(q, rate)
	if d < 127*time.Nanosecond || d > 129*time.Nanosecond {
		t.Errorf("duration = %v", d)
	}
	// Saturation at 0xFFFF.
	if QuantaForDuration(time.Second, rate) != 0xFFFF {
		t.Error("expected saturation")
	}
	// Rounding up: 1 ns is less than one quantum but must pause at least 1.
	if QuantaForDuration(time.Nanosecond, rate) != 1 {
		t.Error("expected round-up to 1")
	}
}

func TestFrame(t *testing.T) {
	f := Frame{Priority: 3, Pause: true}
	if f.Priority != 3 || !f.Pause {
		t.Error("frame fields")
	}
	if MaxPriorities != 8 || QuantumBits != 512 {
		t.Error("standard constants drifted")
	}
}
