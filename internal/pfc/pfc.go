// Package pfc models IEEE 802.1Qbb Priority Flow Control: the per-
// priority PAUSE/RESUME state machine parameters, frame encoding, and the
// headroom arithmetic that makes a priority genuinely lossless.
package pfc

import (
	"fmt"
	"time"
)

// MaxPriorities is the number of PFC classes the standard defines.
const MaxPriorities = 8

// QuantumBits is the unit of the PFC pause_time field: one quantum is the
// time to transmit 512 bits at the port's speed.
const QuantumBits = 512

// Config holds the per-queue PFC thresholds of one switch, in bytes of
// ingress occupancy. A priority's ingress counter crossing XoffThreshold
// emits PAUSE upstream; falling to XonThreshold emits RESUME. Headroom is
// the buffer reserved above Xoff to absorb in-flight data while the PAUSE
// takes effect — sized by ComputeHeadroom, it is what guarantees zero
// loss.
type Config struct {
	XoffThreshold int64
	XonThreshold  int64
	Headroom      int64
}

// Validate reports the first inconsistency, or nil.
func (c Config) Validate() error {
	switch {
	case c.XoffThreshold <= 0:
		return fmt.Errorf("pfc: XoffThreshold must be positive, got %d", c.XoffThreshold)
	case c.XonThreshold < 0 || c.XonThreshold > c.XoffThreshold:
		return fmt.Errorf("pfc: XonThreshold %d out of [0, %d]", c.XonThreshold, c.XoffThreshold)
	case c.Headroom < 0:
		return fmt.Errorf("pfc: negative headroom %d", c.Headroom)
	}
	return nil
}

// Frame is a PFC PAUSE/RESUME control frame for one priority. Pause=false
// encodes a resume (pause_time 0).
type Frame struct {
	Priority int
	Pause    bool
}

// ComputeHeadroom returns the ingress headroom (bytes) a lossless
// priority needs on a link of the given rate and one-way propagation
// delay, following the standard worst-case accounting (§2 of the paper:
// "sufficient headroom to buffer packets that are in flight during the
// time it takes for the PAUSE to take effect"):
//
//   - a maximum-size frame may have just started transmission upstream
//     when the threshold was crossed (one MTU),
//   - the PAUSE frame itself waits behind a frame in the worst case and
//     crosses the wire (one MTU + propagation),
//   - data already in flight keeps arriving for one round trip
//     (2 x delay x rate),
//   - the pause quantum granularity adds one more frame.
func ComputeHeadroom(linkBitsPerSec int64, oneWayDelay time.Duration, mtuBytes int64) int64 {
	bytesPerSec := linkBitsPerSec / 8
	inFlight := int64(float64(bytesPerSec) * (2 * oneWayDelay.Seconds()))
	return inFlight + 3*mtuBytes
}

// DefaultConfig returns thresholds proportioned for the given per-port
// buffer budget: Xoff at half the budget, Xon at a quarter, and headroom
// from the link parameters. It is the configuration style used on the
// paper's testbed switches.
func DefaultConfig(perPortBuffer int64, linkBitsPerSec int64, oneWayDelay time.Duration, mtuBytes int64) Config {
	return Config{
		XoffThreshold: perPortBuffer / 2,
		XonThreshold:  perPortBuffer / 4,
		Headroom:      ComputeHeadroom(linkBitsPerSec, oneWayDelay, mtuBytes),
	}
}

// QuantaForDuration converts a pause duration to PFC quanta at the given
// link speed, rounding up; the standard caps the field at 0xFFFF.
func QuantaForDuration(d time.Duration, linkBitsPerSec int64) uint16 {
	if d <= 0 {
		return 0
	}
	quantumSec := float64(QuantumBits) / float64(linkBitsPerSec)
	q := d.Seconds() / quantumSec
	if q >= 0xFFFF {
		return 0xFFFF
	}
	n := uint16(q)
	if float64(n) < q {
		n++
	}
	return n
}

// DurationForQuanta converts a quanta count to wall time at a link speed.
func DurationForQuanta(q uint16, linkBitsPerSec int64) time.Duration {
	sec := float64(q) * float64(QuantumBits) / float64(linkBitsPerSec)
	return time.Duration(sec * float64(time.Second))
}
