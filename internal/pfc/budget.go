package pfc

import (
	"fmt"
	"time"
)

// ChipSpec describes a switching ASIC's buffering and port configuration
// for the §3.3 analysis: how many lossless priorities can a chip really
// support? "The switch buffers are made of extremely fast and hence
// extremely expensive memory... Some of this buffer must also be set
// aside to serve lossy traffic... even newest switching ASICs are not
// expected to support more than four lossless queues."
type ChipSpec struct {
	// TotalBuffer is the shared packet buffer in bytes.
	TotalBuffer int64
	// Ports and LinkBitsPerSec describe the front panel.
	Ports          int
	LinkBitsPerSec int64
	// CableDelay is the one-way propagation delay to the peer (cable +
	// peer reaction time).
	CableDelay time.Duration
	// MTU in bytes.
	MTU int64
	// LossyFraction is the share of buffer reserved for lossy (TCP)
	// traffic, which still dominates data center mixes.
	LossyFraction float64
	// XoffPerQueue is the operating threshold each lossless ingress queue
	// needs below its headroom to absorb normal bursts.
	XoffPerQueue int64
}

// Validate reports the first bad field.
func (s ChipSpec) Validate() error {
	switch {
	case s.TotalBuffer <= 0:
		return fmt.Errorf("pfc: TotalBuffer must be positive")
	case s.Ports <= 0:
		return fmt.Errorf("pfc: Ports must be positive")
	case s.LinkBitsPerSec <= 0:
		return fmt.Errorf("pfc: LinkBitsPerSec must be positive")
	case s.LossyFraction < 0 || s.LossyFraction >= 1:
		return fmt.Errorf("pfc: LossyFraction %v out of [0,1)", s.LossyFraction)
	case s.XoffPerQueue < 0:
		return fmt.Errorf("pfc: negative XoffPerQueue")
	}
	return nil
}

// PerQueueReservation returns the bytes one lossless queue on one port
// must have exclusively available: its headroom (which guarantees
// losslessness) plus its operating threshold.
func (s ChipSpec) PerQueueReservation() int64 {
	return ComputeHeadroom(s.LinkBitsPerSec, s.CableDelay, s.MTU) + s.XoffPerQueue
}

// MaxLosslessQueues returns how many lossless priorities the chip can
// guarantee across all ports simultaneously: the buffer left after the
// lossy reservation, divided by the per-port, per-queue worst case.
func (s ChipSpec) MaxLosslessQueues() int {
	if err := s.Validate(); err != nil {
		return 0
	}
	usable := int64(float64(s.TotalBuffer) * (1 - s.LossyFraction))
	per := s.PerQueueReservation() * int64(s.Ports)
	if per <= 0 {
		return 0
	}
	n := int(usable / per)
	if n > MaxPriorities {
		return MaxPriorities
	}
	return n
}

// Tomahawk40G approximates the paper's testbed generation: 16 MB shared
// buffer, 32x40G, short intra-rack cables.
func Tomahawk40G() ChipSpec {
	return ChipSpec{
		TotalBuffer:    16 << 20,
		Ports:          32,
		LinkBitsPerSec: 40_000_000_000,
		CableDelay:     2 * time.Microsecond,
		MTU:            1024,
		LossyFraction:  0.5,
		XoffPerQueue:   64 << 10,
	}
}

// Tomahawk100G approximates the next generation: same buffer-per-
// bandwidth pressure the paper warns about — buffer grows slower than
// speed, so the queue budget shrinks.
func Tomahawk100G() ChipSpec {
	return ChipSpec{
		TotalBuffer:    32 << 20,
		Ports:          32,
		LinkBitsPerSec: 100_000_000_000,
		CableDelay:     4 * time.Microsecond, // longer reach, deeper pipelines
		MTU:            4096,
		LossyFraction:  0.5,
		XoffPerQueue:   128 << 10,
	}
}
