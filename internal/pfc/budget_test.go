package pfc

import (
	"testing"
	"time"
)

func TestChipSpecValidate(t *testing.T) {
	good := Tomahawk40G()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ChipSpec{
		{},
		{TotalBuffer: 1, Ports: 0, LinkBitsPerSec: 1},
		{TotalBuffer: 1, Ports: 1, LinkBitsPerSec: 0},
		{TotalBuffer: 1, Ports: 1, LinkBitsPerSec: 1, LossyFraction: 1.5},
		{TotalBuffer: 1, Ports: 1, LinkBitsPerSec: 1, XoffPerQueue: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
	if (ChipSpec{}).MaxLosslessQueues() != 0 {
		t.Error("invalid spec should yield 0 queues")
	}
}

// TestPaperQueueBudgetClaim reproduces §3.3: commodity chips can
// realistically guarantee only a few lossless priorities, and the budget
// does not improve across generations because buffer grows slower than
// speed ("their size is not expected to increase rapidly even as link
// speeds and port counts go up").
func TestPaperQueueBudgetClaim(t *testing.T) {
	g40 := Tomahawk40G().MaxLosslessQueues()
	g100 := Tomahawk100G().MaxLosslessQueues()
	if g40 < 2 || g40 > 4 {
		t.Errorf("40G generation supports %d lossless queues, paper says 2-4", g40)
	}
	if g100 > 4 {
		t.Errorf("100G generation supports %d lossless queues, paper says <= 4", g100)
	}
	if g100 > g40 {
		t.Errorf("queue budget improved across generations (%d -> %d), contradicting §3.3", g40, g100)
	}
}

func TestQueueBudgetMonotonicity(t *testing.T) {
	base := Tomahawk40G()

	bigger := base
	bigger.TotalBuffer *= 4
	if bigger.MaxLosslessQueues() < base.MaxLosslessQueues() {
		t.Error("more buffer cannot reduce the budget")
	}

	faster := base
	faster.LinkBitsPerSec *= 4
	if faster.MaxLosslessQueues() > base.MaxLosslessQueues() {
		t.Error("faster links cannot increase the budget")
	}

	longer := base
	longer.CableDelay = 20 * time.Microsecond
	if longer.MaxLosslessQueues() > base.MaxLosslessQueues() {
		t.Error("longer cables cannot increase the budget")
	}

	lossier := base
	lossier.LossyFraction = 0.9
	if lossier.MaxLosslessQueues() > base.MaxLosslessQueues() {
		t.Error("bigger lossy reservation cannot increase the budget")
	}
}

func TestQueueBudgetCap(t *testing.T) {
	// A hypothetical chip with oceans of buffer is still capped by the
	// PFC standard's 8 priorities.
	s := Tomahawk40G()
	s.TotalBuffer = 1 << 40
	if got := s.MaxLosslessQueues(); got != MaxPriorities {
		t.Errorf("budget = %d, want capped at %d", got, MaxPriorities)
	}
}

func TestPerQueueReservation(t *testing.T) {
	s := Tomahawk40G()
	want := ComputeHeadroom(s.LinkBitsPerSec, s.CableDelay, s.MTU) + s.XoffPerQueue
	if got := s.PerQueueReservation(); got != want {
		t.Errorf("reservation = %d, want %d", got, want)
	}
}
