// Package paper holds the concrete fixtures of the Tagger paper's figures
// and tables — the walk-through topology of Figure 5, the testbed Clos of
// Figure 2, and the named flows and failures of Figures 3, 10, 11 and 12 —
// so that tests, benchmarks and example programs all reproduce exactly the
// published scenarios.
package paper

import (
	"repro/internal/elp"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Fig5 is the walk-through example of Figure 5: three switches A, B, C in
// a triangle with one endpoint each (D on A, E on B, F on C), and the
// 12-path ELP listed in Figure 5(a).
type Fig5 struct {
	Graph            *topology.Graph
	A, B, C, D, E, F topology.NodeID
	ELP              *elp.Set
}

// NewFig5 builds the Figure 5 fixture.
func NewFig5() *Fig5 {
	g := topology.New()
	f := &Fig5{Graph: g}
	// Unlayered switches: the walk-through treats the triangle as an
	// arbitrary topology, exercising the generic algorithms.
	f.A = g.AddNode("A", topology.KindSwitch, -1)
	f.B = g.AddNode("B", topology.KindSwitch, -1)
	f.C = g.AddNode("C", topology.KindSwitch, -1)
	f.D = g.AddNode("D", topology.KindHost, 0)
	f.E = g.AddNode("E", topology.KindHost, 0)
	f.F = g.AddNode("F", topology.KindHost, 0)
	g.Connect(f.A, f.B)
	g.Connect(f.A, f.C)
	g.Connect(f.B, f.C)
	g.Connect(f.D, f.A)
	g.Connect(f.E, f.B)
	g.Connect(f.F, f.C)

	f.ELP = elp.NewSet()
	for _, p := range [][]topology.NodeID{
		{f.D, f.A, f.B, f.E}, {f.D, f.A, f.C, f.B, f.E},
		{f.E, f.B, f.A, f.D}, {f.E, f.B, f.C, f.A, f.D},
		{f.D, f.A, f.C, f.F}, {f.D, f.A, f.B, f.C, f.F},
		{f.F, f.C, f.A, f.D}, {f.F, f.C, f.B, f.A, f.D},
		{f.E, f.B, f.C, f.F}, {f.E, f.B, f.A, f.C, f.F},
		{f.F, f.C, f.B, f.E}, {f.F, f.C, f.A, f.B, f.E},
	} {
		f.ELP.MustAdd(g, routing.Path(p))
	}
	return f
}

// Testbed builds the Figure 2 testbed Clos (2 spines, 2 pods of 2 leaves
// and 2 ToRs, 4 hosts per ToR).
func Testbed() *topology.Clos {
	c, err := topology.NewClos(topology.PaperTestbed())
	if err != nil {
		panic(err) // fixed config, cannot fail
	}
	return c
}

// Fig3GreenPath returns the green flow's 1-bounce path of Figure 3
// (T3 to T1, bouncing at L1 after the L1-T1 failure). The spine choices
// matter: the CBD closes because green shares S2's ingress-from-L3 queue
// with the blue flow and feeds S1's ingress-from-L1 queue that blue also
// occupies, yielding the cycle L1 -> S1 -> L3 -> S2 -> L1 of the figure.
func Fig3GreenPath(c *topology.Clos) routing.Path {
	g := c.Graph
	return routing.Path{
		g.MustLookup("T3"), g.MustLookup("L3"), g.MustLookup("S2"),
		g.MustLookup("L1"), g.MustLookup("S1"), g.MustLookup("L2"), g.MustLookup("T1"),
	}
}

// Fig3BluePath returns the blue flow's 1-bounce path of Figure 3
// (T1 to T4, bouncing at L3 after the L3-T4 failure).
func Fig3BluePath(c *topology.Clos) routing.Path {
	g := c.Graph
	return routing.Path{
		g.MustLookup("T1"), g.MustLookup("L1"), g.MustLookup("S1"),
		g.MustLookup("L3"), g.MustLookup("S2"), g.MustLookup("L4"), g.MustLookup("T4"),
	}
}
