package tcam

import (
	"sort"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Entry is one compressed TCAM entry: it fires when the packet's tag
// equals Tag, its ingress port is in InPorts and its egress port is in
// OutPorts (the pattern/mask pairs of Figure 9), and rewrites the tag to
// NewTag. A compressed entry is semantically the cross product
// InPorts x OutPorts of uncompressed rules, so compression is lossless
// only when the grouped rules form exact cross products — the compressor
// guarantees that.
type Entry struct {
	Switch   topology.NodeID
	Tag      int
	InPorts  Bitmap
	OutPorts Bitmap
	NewTag   int
}

// Matches reports whether the entry fires for (tag, in, out).
func (e *Entry) Matches(tag, in, out int) bool {
	return e.Tag == tag && e.InPorts.Get(in) && e.OutPorts.Get(out)
}

// Compress converts exact rules into TCAM entries using the bit-masking
// aggregation of §7/Figure 9, in two stages:
//
//  1. rules identical except for InPort merge into one entry with an
//     ingress-port bitmap (the paper's n·m(m-1)/2 result);
//  2. entries with identical (switch, tag, newtag, InPorts) then merge
//     their OutPorts ("joint aggregation on tag, InPort and OutPort").
//
// Both stages preserve exact semantics: stage 1 groups rules that share
// (switch, tag, out, newtag), so the cross product adds nothing; stage 2
// only merges entries whose InPort sets are identical, so the union of
// cross products is again exact.
func Compress(rules []core.Rule) []Entry {
	return CompressN(rules, 1)
}

// CompressN is Compress with an explicit worker count (0 = GOMAXPROCS,
// 1 = serial). Both stages only ever merge rules of the same switch and
// emit entries in ascending switch order, so when the input is grouped by
// switch (Ruleset.Rules() order) it can be cut at switch boundaries,
// compressed chunk-wise in parallel, and concatenated — identical output
// for every worker count. Ungrouped input falls back to one chunk.
func CompressN(rules []core.Rule, par int) []Entry {
	defer telemetry.Default.StartSpan("synth/tcam").End()
	w := parallel.Workers(par, len(rules))
	chunks := switchChunks(rules, w)
	if len(chunks) <= 1 {
		return compressChunk(rules)
	}
	outs := make([][]Entry, len(chunks))
	parallel.ForEachShard(len(chunks), len(chunks), func(s parallel.Shard) {
		for i := s.Lo; i < s.Hi; i++ {
			outs[i] = compressChunk(chunks[i])
		}
	})
	var res []Entry
	for _, o := range outs {
		res = append(res, o...)
	}
	return res
}

// switchChunks cuts rules into at most want contiguous chunks of
// near-equal size without splitting any switch across chunks. It returns
// a single chunk when the input is not grouped by switch.
func switchChunks(rules []core.Rule, want int) [][]core.Rule {
	if want <= 1 || len(rules) == 0 {
		return [][]core.Rule{rules}
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Switch < rules[i-1].Switch {
			return [][]core.Rule{rules}
		}
	}
	target := (len(rules) + want - 1) / want
	var chunks [][]core.Rule
	lo := 0
	for lo < len(rules) {
		hi := lo + target
		if hi >= len(rules) {
			hi = len(rules)
		} else {
			for hi < len(rules) && rules[hi].Switch == rules[hi-1].Switch {
				hi++
			}
		}
		chunks = append(chunks, rules[lo:hi])
		lo = hi
	}
	return chunks
}

func compressChunk(rules []core.Rule) []Entry {
	// Stage 1: group by (switch, tag, out, newtag), merge InPorts.
	type outKey struct {
		sw       topology.NodeID
		tag, out int
		newTag   int
	}
	stage1 := make(map[outKey]*Entry)
	var order []outKey // deterministic iteration
	for _, r := range rules {
		k := outKey{r.Switch, r.Tag, r.Out, r.NewTag}
		e, ok := stage1[k]
		if !ok {
			e = &Entry{Switch: r.Switch, Tag: r.Tag, NewTag: r.NewTag}
			e.OutPorts.Set(r.Out)
			stage1[k] = e
			order = append(order, k)
		}
		e.InPorts.Set(r.In)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.sw != b.sw {
			return a.sw < b.sw
		}
		if a.tag != b.tag {
			return a.tag < b.tag
		}
		if a.newTag != b.newTag {
			return a.newTag < b.newTag
		}
		return a.out < b.out
	})

	// Stage 2: merge entries with identical (switch, tag, newtag, InPorts).
	type inKey struct {
		sw     topology.NodeID
		tag    int
		newTag int
		inKey  string
	}
	stage2 := make(map[inKey]*Entry)
	var out []*Entry
	for _, k := range order {
		e := stage1[k]
		k2 := inKey{e.Switch, e.Tag, e.NewTag, e.InPorts.Key()}
		if merged, ok := stage2[k2]; ok {
			merged.OutPorts.Union(e.OutPorts)
			continue
		}
		stage2[k2] = e
		out = append(out, e)
	}

	res := make([]Entry, len(out))
	for i, e := range out {
		res[i] = *e
		// Canonical bitmaps: logically equal entries are struct-equal.
		res[i].InPorts.trim()
		res[i].OutPorts.trim()
	}
	return res
}

// CompressInPortOnly runs only stage 1 (the paper's n·m(m-1)/2 result),
// for the compression-level ablation: rules identical except InPort merge;
// OutPorts stay singletons.
func CompressInPortOnly(rules []core.Rule) []Entry {
	type outKey struct {
		sw       topology.NodeID
		tag, out int
		newTag   int
	}
	grouped := make(map[outKey]*Entry)
	var order []outKey
	for _, r := range rules {
		k := outKey{r.Switch, r.Tag, r.Out, r.NewTag}
		e, ok := grouped[k]
		if !ok {
			e = &Entry{Switch: r.Switch, Tag: r.Tag, NewTag: r.NewTag}
			e.OutPorts.Set(r.Out)
			grouped[k] = e
			order = append(order, k)
		}
		e.InPorts.Set(r.In)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.sw != b.sw {
			return a.sw < b.sw
		}
		if a.tag != b.tag {
			return a.tag < b.tag
		}
		if a.newTag != b.newTag {
			return a.newTag < b.newTag
		}
		return a.out < b.out
	})
	out := make([]Entry, 0, len(order))
	for _, k := range order {
		e := *grouped[k]
		e.InPorts.trim()
		e.OutPorts.trim()
		out = append(out, e)
	}
	return out
}

// CompressionLevels reports the entry counts at every compression level
// of §7: exact rules, InPort aggregation only, and joint aggregation.
type CompressionLevels struct {
	Exact      int
	InPortOnly int
	Joint      int
}

// Levels computes all three counts for a rule set.
func Levels(rules []core.Rule) CompressionLevels {
	return CompressionLevels{
		Exact:      len(rules),
		InPortOnly: len(CompressInPortOnly(rules)),
		Joint:      len(Compress(rules)),
	}
}

// Lookup scans entries in order and returns the first match — TCAM
// first-hit semantics. ok is false when no entry fires (the pipeline then
// falls through to the lossy safeguard).
func Lookup(entries []Entry, sw topology.NodeID, tag, in, out int) (newTag int, ok bool) {
	for i := range entries {
		if entries[i].Switch == sw && entries[i].Matches(tag, in, out) {
			return entries[i].NewTag, true
		}
	}
	return 0, false
}

// PerSwitchCount returns entry counts grouped by switch.
func PerSwitchCount(entries []Entry) map[topology.NodeID]int {
	m := make(map[topology.NodeID]int)
	for i := range entries {
		m[entries[i].Switch]++
	}
	return m
}

// MaxPerSwitch returns the largest per-switch entry count — the number
// that must fit in one ASIC's TCAM (Table 5's "Rules" column).
func MaxPerSwitch(entries []Entry) int {
	max := 0
	for _, c := range PerSwitchCount(entries) {
		if c > max {
			max = c
		}
	}
	return max
}

// UncompressedBound returns the paper's worst-case per-switch rule count
// without compression: n(n-1)·m(m-1)/2 for n ports and m tags.
func UncompressedBound(n, m int) int { return n * (n - 1) * m * (m - 1) / 2 }

// InPortAggregatedBound returns the paper's per-switch bound after InPort
// aggregation: n·m(m-1)/2.
func InPortAggregatedBound(n, m int) int { return n * m * (m - 1) / 2 }
