package tcam

import (
	"testing"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/paper"
)

func TestCompressionLevelsOrdering(t *testing.T) {
	// §7: every level strictly helps on the Clos rule set, and the
	// ordering exact >= in-port-only >= joint always holds.
	c := paper.Testbed()
	rs := core.ClosRules(c.Graph, 1, 1)
	lv := Levels(rs.Rules())
	if !(lv.Exact >= lv.InPortOnly && lv.InPortOnly >= lv.Joint) {
		t.Fatalf("levels out of order: %+v", lv)
	}
	if lv.InPortOnly >= lv.Exact {
		t.Errorf("in-port aggregation did not help: %+v", lv)
	}
	if lv.Joint >= lv.InPortOnly {
		t.Errorf("joint aggregation did not help: %+v", lv)
	}
}

func TestCompressInPortOnlySemantics(t *testing.T) {
	// Stage 1 alone must also be exact: same lookups as the rules.
	f := paper.NewFig5()
	sys, err := core.Synthesize(f.Graph, f.ELP.Paths(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries := CompressInPortOnly(sys.Rules.Rules())
	for _, r := range sys.Rules.Rules() {
		got, ok := Lookup(entries, r.Switch, r.Tag, r.In, r.Out)
		if !ok || got != r.NewTag {
			t.Fatalf("rule %+v: lookup %d,%v", r, got, ok)
		}
	}
	// And no false positives on a sampled grid.
	g := f.Graph
	for _, sw := range g.Switches() {
		for tag := 1; tag <= sys.Rules.MaxTag(); tag++ {
			for in := 0; in < g.PortCount(sw); in++ {
				for out := 0; out < g.PortCount(sw); out++ {
					_, okE := Lookup(entries, sw, tag, in, out)
					_, okR := sys.Rules.Lookup(sw, tag, in, out)
					if okE != okR {
						t.Fatalf("coverage differs at %s tag=%d in=%d out=%d",
							g.Node(sw).Name, tag, in, out)
					}
				}
			}
		}
	}
}

func TestLevelsOnLargerELP(t *testing.T) {
	c := paper.Testbed()
	set := elp.KBounce(c.Graph, c.ToRs, 2, nil)
	sys, err := core.ClosSynthesize(c.Graph, set.Paths(), 2)
	if err != nil {
		t.Fatal(err)
	}
	lv := Levels(sys.Rules.Rules())
	if lv.Joint == 0 || lv.Exact == 0 {
		t.Fatalf("degenerate levels: %+v", lv)
	}
	// The paper's headline factor: in-port aggregation alone divides the
	// count by about (n-1); joint goes further. Assert at least 2x total.
	if lv.Joint*2 > lv.Exact {
		t.Errorf("compression below 2x: %+v", lv)
	}
}
