package tcam

import (
	"repro/internal/core"
	"repro/internal/topology"
)

// QueueKind distinguishes lossless priority queues from the lossy queue.
type QueueKind uint8

// Queue kinds.
const (
	Lossless QueueKind = iota
	Lossy
)

// QueueDecision is where the pipeline put a packet and with what tag.
type QueueDecision struct {
	IngressQueue int // queue index at ingress (by old tag)
	EgressQueue  int // queue index at egress (by new tag) — §7's key fix
	NewTag       int
	Kind         QueueKind
}

// Pipeline is the three-step match-action pipeline of §7 (Figure 7):
//
//	step 1: match tag        -> ingress priority queue
//	step 2: match (tag,in,out) -> rewrite tag
//	step 3: match NEW tag    -> egress priority queue
//
// Step 3 must use the rewritten tag: enqueueing the packet by its old
// priority means a downstream PFC PAUSE for the new priority cannot pause
// the queue the packet actually sits in, causing drops (Figure 8). Setting
// LegacyEgressByOldTag simulates that broken default for the ablation
// experiment.
type Pipeline struct {
	Rules *core.Ruleset
	// LegacyEgressByOldTag reproduces the §7 failure mode where the egress
	// queue is selected by the ingress priority.
	LegacyEgressByOldTag bool
}

// queueOf maps a tag to a queue index: lossless tag t occupies queue t
// (1-based); everything else is the lossy queue 0.
func (pl *Pipeline) queueOf(tag int) (int, QueueKind) {
	if pl.Rules.IsLossless(tag) {
		return tag, Lossless
	}
	return 0, Lossy
}

// Process classifies a packet at switch sw arriving on ingress port in
// with the given tag, destined for egress port out.
func (pl *Pipeline) Process(sw topology.NodeID, tag, in, out int) QueueDecision {
	var d QueueDecision
	var inKind QueueKind
	d.IngressQueue, inKind = pl.queueOf(tag)
	d.NewTag = pl.Rules.Classify(sw, tag, in, out)
	if pl.LegacyEgressByOldTag {
		d.EgressQueue = d.IngressQueue
		d.Kind = inKind
		if d.NewTag == core.LossyTag {
			// Even the legacy path cannot keep a lossy packet lossless.
			d.EgressQueue, d.Kind = pl.queueOf(d.NewTag)
		}
		return d
	}
	d.EgressQueue, d.Kind = pl.queueOf(d.NewTag)
	return d
}

// LosslessQueues returns how many lossless queues the pipeline needs.
func (pl *Pipeline) LosslessQueues() int { return pl.Rules.MaxTag() }
