// Package tcam models the TCAM representation of Tagger's match-action
// rules on commodity switching ASICs (§7 of the paper): port-bitmap
// patterns and masks, the three-step classification pipeline, and the
// rule-compression scheme of Figure 9 that reduces the per-switch entry
// count from n(n-1)·m(m-1)/2 to n·m(m-1)/2 and below.
package tcam

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bitmap is a fixed-width port bitmap as used by commodity ASIC TCAM
// patterns: bit i set means port i matches. On real hardware the width is
// the chip's port count; here it grows on demand in 64-bit words.
type Bitmap struct {
	words []uint64
}

// NewBitmap returns a bitmap sized for at least n ports.
func NewBitmap(n int) Bitmap {
	if n <= 0 {
		return Bitmap{}
	}
	return Bitmap{words: make([]uint64, (n+63)/64)}
}

// Set sets bit i, growing the bitmap if needed.
func (b *Bitmap) Set(i int) {
	w := i / 64
	for len(b.words) <= w {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << uint(i%64)
}

// Get reports bit i.
func (b Bitmap) Get(i int) bool {
	w := i / 64
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<uint(i%64)) != 0
}

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// trim drops trailing zero words so that bitmaps with identical bit sets
// have identical representations regardless of how they were built
// (pre-sized via NewBitmap vs grown by Set). Canonical representations
// make struct-level comparisons (reflect.DeepEqual in the determinism
// and differential tests) agree with Equal.
func (b *Bitmap) trim() {
	for len(b.words) > 0 && b.words[len(b.words)-1] == 0 {
		b.words = b.words[:len(b.words)-1]
	}
}

// Union sets every bit of o in b (mask-merge). Word counts need not
// match; b grows as needed and trailing zero words in o add nothing.
func (b *Bitmap) Union(o Bitmap) {
	for len(b.words) < len(o.words) {
		b.words = append(b.words, 0)
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// Compare orders bitmaps by their bit sets, treating them as unbounded
// integers (zero-extended): -1, 0, or +1. Bitmaps that Equal compare 0
// regardless of trailing zero words.
func (b Bitmap) Compare(o Bitmap) int {
	n := len(b.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := n - 1; i >= 0; i-- {
		var x, y uint64
		if i < len(b.words) {
			x = b.words[i]
		}
		if i < len(o.words) {
			y = o.words[i]
		}
		if x != y {
			if x < y {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Equal reports whether two bitmaps have identical bit sets.
func (b Bitmap) Equal(o Bitmap) bool {
	n := len(b.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var x, y uint64
		if i < len(b.words) {
			x = b.words[i]
		}
		if i < len(o.words) {
			y = o.words[i]
		}
		if x != y {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key.
func (b Bitmap) Key() string {
	// Trim trailing zero words so logically equal bitmaps share a key.
	end := len(b.words)
	for end > 0 && b.words[end-1] == 0 {
		end--
	}
	var sb strings.Builder
	for i := 0; i < end; i++ {
		fmt.Fprintf(&sb, "%016x", b.words[i])
	}
	return sb.String()
}

// Ports returns the indices of set bits in ascending order.
func (b Bitmap) Ports() []int {
	var out []int
	for wi, w := range b.words {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			out = append(out, wi*64+i)
			w &^= 1 << uint(i)
		}
	}
	return out
}

// String renders the bitmap LSB-last over width w (like the paper's
// Figure 9, where the first bit from the right is port 0... the paper
// numbers from 1; we keep 0-based and render right-to-left). width <= 0
// renders the logical width — trailing zero words are not rendered, so
// logically equal bitmaps stringify identically however they were built.
func (b Bitmap) String(width int) string {
	if width <= 0 {
		end := len(b.words)
		for end > 0 && b.words[end-1] == 0 {
			end--
		}
		width = end * 64
	}
	buf := make([]byte, width)
	for i := 0; i < width; i++ {
		if b.Get(width - 1 - i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
