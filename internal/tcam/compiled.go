package tcam

import (
	"repro/internal/core"
	"repro/internal/topology"
)

// Compiled is the three-step §7 pipeline executed over the compressed
// TCAM image instead of the abstract exact-match ruleset: step 2's
// rewrite decision comes from first-hit Lookup over each switch's
// compressed entries, exactly like a real ASIC walks its TCAM list. The
// abstract ruleset is retained only for the deployment boundary defaults
// (which ports face hosts, how many lossless tags exist) — the same
// information a switch config carries outside its TCAM.
//
// Compiled exists so correctness tooling can differentially compare the
// compressed and uncompressed tables: for every reachable (switch, tag,
// in, out) the decisions of Pipeline (uncompressed) and Compiled
// (compressed) must be identical, or compression lost information.
type Compiled struct {
	rules    *core.Ruleset
	bySwitch map[topology.NodeID][]Entry
	// LegacyEgressByOldTag mirrors Pipeline's §7 ablation flag: egress
	// queue chosen by the ingress priority instead of the rewritten tag.
	LegacyEgressByOldTag bool
}

// NewCompiled compresses rs (with the given worker count; 0 =
// GOMAXPROCS) and returns the compiled pipeline over the image.
func NewCompiled(rs *core.Ruleset, par int) *Compiled {
	c := &Compiled{rules: rs, bySwitch: make(map[topology.NodeID][]Entry)}
	for _, e := range CompressN(rs.Rules(), par) {
		c.bySwitch[e.Switch] = append(c.bySwitch[e.Switch], e)
	}
	return c
}

// CompiledFromEntries returns the compiled pipeline over a precomputed
// compressed image instead of re-running compression. The caller
// guarantees the entries are a faithful compression of rs — the
// synthesis cache uses this to carry a verified image through a graph
// isomorphism — and that each switch's entries arrive in TCAM priority
// order.
func CompiledFromEntries(rs *core.Ruleset, entries []Entry) *Compiled {
	c := &Compiled{rules: rs, bySwitch: make(map[topology.NodeID][]Entry)}
	for _, e := range entries {
		c.bySwitch[e.Switch] = append(c.bySwitch[e.Switch], e)
	}
	return c
}

// Entries returns one switch's compressed entries in TCAM order.
func (c *Compiled) Entries(sw topology.NodeID) []Entry { return c.bySwitch[sw] }

// TotalEntries returns the fabric-wide compressed entry count.
func (c *Compiled) TotalEntries() int {
	t := 0
	for _, es := range c.bySwitch {
		t += len(es)
	}
	return t
}

func (c *Compiled) queueOf(tag int) (int, QueueKind) {
	if c.rules.IsLossless(tag) {
		return tag, Lossless
	}
	return 0, Lossy
}

// Process classifies a packet at switch sw arriving on ingress port in
// with the given tag, destined for egress port out — the compressed-image
// twin of Pipeline.Process.
func (c *Compiled) Process(sw topology.NodeID, tag, in, out int) QueueDecision {
	var d QueueDecision
	var inKind QueueKind
	d.IngressQueue, inKind = c.queueOf(tag)

	newTag, hit := Lookup(c.bySwitch[sw], sw, tag, in, out)
	switch {
	case hit:
	case !c.rules.IsLossless(tag):
		newTag = core.LossyTag // once lossy, always lossy
	case c.rules.HostFacing(sw, in), c.rules.HostFacing(sw, out):
		newTag = tag // injection / delivery defaults
	default:
		newTag = core.LossyTag // the safeguard entry at the end of the list
	}
	d.NewTag = newTag

	if c.LegacyEgressByOldTag {
		d.EgressQueue = d.IngressQueue
		d.Kind = inKind
		if d.NewTag == core.LossyTag {
			d.EgressQueue, d.Kind = c.queueOf(d.NewTag)
		}
		return d
	}
	d.EgressQueue, d.Kind = c.queueOf(d.NewTag)
	return d
}
