package tcam

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// TestBitmapWordBoundaryCanonical pins the contract the satellite fix
// establishes: a bitmap pre-sized via NewBitmap and one grown by Set must
// behave identically in every comparison surface — Equal, Count, Key,
// Compare, Union, and the logical-width String rendering — across the
// 63/64/65-bit word boundaries where trailing zero words appear.
func TestBitmapWordBoundaryCanonical(t *testing.T) {
	cases := []struct {
		name  string
		size  int // NewBitmap pre-size for the "sized" twin
		bits  []int
		width int // expected logical word count after trim
	}{
		{"bit63-sized128", 128, []int{63}, 1},
		{"bit63-sized65", 65, []int{63}, 1},
		{"bit64-sized128", 128, []int{64}, 2},
		{"bit65-sized192", 192, []int{65}, 2},
		{"bits63-64-65", 256, []int{63, 64, 65}, 2},
		{"low-bit-wide-alloc", 1024, []int{0}, 1},
		{"empty-sized", 640, nil, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sized := NewBitmap(tc.size)
			var grown Bitmap
			for _, b := range tc.bits {
				sized.Set(b)
				grown.Set(b)
			}
			if !sized.Equal(grown) || !grown.Equal(sized) {
				t.Error("Equal disagrees across representations")
			}
			if sized.Count() != grown.Count() || sized.Count() != len(tc.bits) {
				t.Errorf("Count: sized=%d grown=%d want %d", sized.Count(), grown.Count(), len(tc.bits))
			}
			if sized.Key() != grown.Key() {
				t.Errorf("Key: %q vs %q", sized.Key(), grown.Key())
			}
			if sized.Compare(grown) != 0 || grown.Compare(sized) != 0 {
				t.Error("Compare nonzero for equal bit sets")
			}
			if sized.String(0) != grown.String(0) {
				t.Errorf("String(0): %q vs %q", sized.String(0), grown.String(0))
			}
			if len(sized.String(0)) != tc.width*64 {
				t.Errorf("String(0) width = %d, want %d", len(sized.String(0)), tc.width*64)
			}
			// Mask-merge: unioning the over-allocated twin into a compact
			// bitmap must neither lose bits nor change the bit set.
			var acc Bitmap
			acc.Union(sized)
			if !acc.Equal(grown) {
				t.Error("Union(sized) lost or invented bits")
			}
			acc.Union(grown)
			if acc.Count() != len(tc.bits) {
				t.Error("Union not idempotent")
			}
		})
	}
}

// TestBitmapCompareOrdering: Compare orders by bit set as an unbounded
// integer and is insensitive to trailing zero words on either side.
func TestBitmapCompareOrdering(t *testing.T) {
	mk := func(size int, bits ...int) Bitmap {
		b := NewBitmap(size)
		for _, i := range bits {
			b.Set(i)
		}
		return b
	}
	cases := []struct {
		a, b Bitmap
		want int
	}{
		{mk(0, 63), mk(0, 64), -1},
		{mk(256, 63), mk(0, 64), -1},
		{mk(0, 64), mk(256, 63), 1},
		{mk(0, 5), mk(0, 5, 65), -1},
		{mk(512, 5, 65), mk(0, 5), 1},
		{mk(0), mk(128), 0},
		{mk(0, 64, 3), mk(192, 3, 64), 0},
	}
	for i, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("case %d: Compare = %d, want %d", i, got, tc.want)
		}
		if got := tc.b.Compare(tc.a); got != -tc.want {
			t.Errorf("case %d: reverse Compare = %d, want %d", i, got, -tc.want)
		}
	}
}

// TestCompressCanonicalEntries: compressed entries carry canonical
// (trimmed) bitmaps, so struct-level equality — what the determinism and
// differential tests use — agrees with logical equality.
func TestCompressCanonicalEntries(t *testing.T) {
	g := topology.New()
	sw := g.AddNode("A", topology.KindSwitch, -1)
	var rules []core.Rule
	for _, in := range []int{0, 1, 64} { // straddles the word boundary
		for _, out := range []int{2, 63, 65} {
			rules = append(rules, core.Rule{Switch: sw, Tag: 1, In: in, Out: out, NewTag: 2})
		}
	}
	a := Compress(rules)
	b := CompressN(rules, 1)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical inputs compressed to non-DeepEqual entries")
	}
	for _, e := range a {
		trimmed := e
		trimmed.InPorts.trim()
		trimmed.OutPorts.trim()
		if !reflect.DeepEqual(e, trimmed) {
			t.Errorf("entry %+v carries trailing zero words", e)
		}
	}
}
