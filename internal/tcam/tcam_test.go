package tcam

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/paper"
	"repro/internal/topology"
)

func TestBitmapBasics(t *testing.T) {
	var b Bitmap
	if b.Get(5) || b.Count() != 0 {
		t.Error("zero bitmap should be empty")
	}
	b.Set(0)
	b.Set(2)
	b.Set(1)
	if !b.Get(0) || !b.Get(1) || !b.Get(2) || b.Get(3) {
		t.Error("Get wrong")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d", b.Count())
	}
	// Figure 9: InPorts {0,1,2} over width 4 renders as 0111.
	if got := b.String(4); got != "0111" {
		t.Errorf("String = %q, want 0111", got)
	}
	ports := b.Ports()
	if len(ports) != 3 || ports[0] != 0 || ports[2] != 2 {
		t.Errorf("Ports = %v", ports)
	}
	b.Set(200) // grows
	if !b.Get(200) || b.Count() != 4 {
		t.Error("growth broken")
	}
}

func TestBitmapEqualAndKey(t *testing.T) {
	var a, b Bitmap
	a.Set(3)
	b.Set(3)
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("equal bitmaps differ")
	}
	b.Set(70)
	if a.Equal(b) || a.Key() == b.Key() {
		t.Error("different bitmaps equal")
	}
	// Trailing zero words do not affect equality or keys.
	var c Bitmap
	c.Set(3)
	c.Set(100)
	var d Bitmap
	d.Set(100)
	d.Set(3)
	if !c.Equal(d) || c.Key() != d.Key() {
		t.Error("canonicalization broken")
	}
	var e Bitmap
	e.Set(70)
	e2 := NewBitmap(128)
	e2.Set(70)
	if !e.Equal(e2) {
		t.Error("pre-sized vs grown bitmaps should be equal")
	}
}

func TestCompressFig9(t *testing.T) {
	// Figure 9: three rules identical except InPort merge into one entry.
	g := topology.New()
	sw := g.AddNode("A", topology.KindSwitch, -1)
	rules := []core.Rule{
		{Switch: sw, Tag: 1, In: 0, Out: 3, NewTag: 2},
		{Switch: sw, Tag: 1, In: 1, Out: 3, NewTag: 2},
		{Switch: sw, Tag: 1, In: 2, Out: 3, NewTag: 2},
	}
	entries := Compress(rules)
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.InPorts.Count() != 3 || !e.OutPorts.Get(3) || e.NewTag != 2 {
		t.Errorf("entry = %+v", e)
	}
	if !e.Matches(1, 1, 3) || e.Matches(1, 3, 3) || e.Matches(2, 1, 3) {
		t.Error("Matches wrong")
	}
}

func TestCompressJointAggregation(t *testing.T) {
	// Rules forming an exact cross product {0,1} x {2,3} merge to one
	// entry via stage 2.
	g := topology.New()
	sw := g.AddNode("A", topology.KindSwitch, -1)
	var rules []core.Rule
	for _, in := range []int{0, 1} {
		for _, out := range []int{2, 3} {
			rules = append(rules, core.Rule{Switch: sw, Tag: 1, In: in, Out: out, NewTag: 1})
		}
	}
	entries := Compress(rules)
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	if entries[0].InPorts.Count() != 2 || entries[0].OutPorts.Count() != 2 {
		t.Errorf("entry = %+v", entries[0])
	}
}

func TestCompressNoFalsePositives(t *testing.T) {
	// A non-cross-product set must NOT merge into something that matches
	// extra pairs: {(0,2),(1,3)} stays as two entries.
	g := topology.New()
	sw := g.AddNode("A", topology.KindSwitch, -1)
	rules := []core.Rule{
		{Switch: sw, Tag: 1, In: 0, Out: 2, NewTag: 1},
		{Switch: sw, Tag: 1, In: 1, Out: 3, NewTag: 1},
	}
	entries := Compress(rules)
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	if _, ok := Lookup(entries, sw, 1, 0, 3); ok {
		t.Error("compression invented a match for (0,3)")
	}
	if _, ok := Lookup(entries, sw, 1, 1, 2); ok {
		t.Error("compression invented a match for (1,2)")
	}
}

// Property: compression is semantics-preserving — for every (tag, in,
// out) triple in a generated rule set, the compressed entries return the
// same rewrite, and triples absent from the rule set never match.
func TestCompressSemanticsProperty(t *testing.T) {
	g := topology.New()
	sw := g.AddNode("A", topology.KindSwitch, -1)
	f := func(seed uint32, n uint8) bool {
		nRules := int(n%24) + 1
		r := seed
		next := func(mod int) int {
			r = r*1664525 + 1013904223
			return int(r>>16) % mod
		}
		type key struct{ tag, in, out int }
		want := map[key]int{}
		var rules []core.Rule
		for i := 0; i < nRules; i++ {
			k := key{next(3) + 1, next(6), next(6)}
			nt := next(3) + 1
			if prev, ok := want[k]; ok {
				nt = prev // keep rule sets functional
			}
			want[k] = nt
			rules = append(rules, core.Rule{Switch: sw, Tag: k.tag, In: k.in, Out: k.out, NewTag: nt})
		}
		entries := Compress(rules)
		for tag := 1; tag <= 3; tag++ {
			for in := 0; in < 6; in++ {
				for out := 0; out < 6; out++ {
					got, ok := Lookup(entries, sw, tag, in, out)
					exp, expOK := want[key{tag, in, out}]
					if ok != expOK || (ok && got != exp) {
						t.Logf("mismatch at (%d,%d,%d): got %d,%v want %d,%v",
							tag, in, out, got, ok, exp, expOK)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressClosRulesWithinBounds(t *testing.T) {
	c := paper.Testbed()
	rs := core.ClosRules(c.Graph, 1, 1)
	entries := Compress(rs.Rules())
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	if len(entries) >= rs.Len() {
		t.Errorf("compression did not shrink: %d entries vs %d rules", len(entries), rs.Len())
	}
	// The per-switch count must respect the paper's InPort-aggregated
	// bound n*m(m-1)/2... the bound is for the generic construction; the
	// Clos scheme has keep rules too, so check against the uncompressed
	// count per switch instead.
	per := PerSwitchCount(entries)
	for sw, cnt := range per {
		own := 0
		for _, r := range rs.RulesAt(sw) {
			_ = r
			own++
		}
		if cnt > own {
			t.Errorf("switch %s: %d entries > %d rules", c.Graph.Node(sw).Name, cnt, own)
		}
	}
	if MaxPerSwitch(entries) <= 0 {
		t.Error("MaxPerSwitch")
	}
}

func TestBounds(t *testing.T) {
	if UncompressedBound(32, 3) != 32*31*3*2/2 {
		t.Error("UncompressedBound")
	}
	if InPortAggregatedBound(32, 3) != 32*3*2/2 {
		t.Error("InPortAggregatedBound")
	}
}

func TestPipelinePriorityTransition(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	rs := core.ClosRules(g, 1, 1)
	l1 := g.MustLookup("L1")
	inS1 := g.PortToPeer(l1, g.MustLookup("S1"))
	outS2 := g.PortToPeer(l1, g.MustLookup("S2"))

	// Correct pipeline: bounce rewrites 1 -> 2 and the egress queue follows
	// the NEW tag (Figure 8b).
	pl := &Pipeline{Rules: rs}
	d := pl.Process(l1, 1, inS1, outS2)
	if d.NewTag != 2 || d.IngressQueue != 1 || d.EgressQueue != 2 || d.Kind != Lossless {
		t.Errorf("correct pipeline: %+v", d)
	}

	// Legacy pipeline: egress queue stays at the OLD priority (Figure 8a),
	// the mismatch that loses packets.
	legacy := &Pipeline{Rules: rs, LegacyEgressByOldTag: true}
	d = legacy.Process(l1, 1, inS1, outS2)
	if d.NewTag != 2 || d.EgressQueue != 1 {
		t.Errorf("legacy pipeline: %+v", d)
	}

	// Lossy fallback: second bounce.
	d = pl.Process(l1, 2, inS1, outS2)
	if d.Kind != Lossy || d.EgressQueue != 0 {
		t.Errorf("lossy: %+v", d)
	}
	d = legacy.Process(l1, 2, inS1, outS2)
	if d.Kind != Lossy {
		t.Errorf("legacy lossy: %+v", d)
	}
	if pl.LosslessQueues() != 2 {
		t.Errorf("LosslessQueues = %d", pl.LosslessQueues())
	}
}

func TestCompressSynthesizedSystem(t *testing.T) {
	// End-to-end: synthesize Fig-5, compress, and confirm Lookup agrees
	// with the ruleset for every installed rule.
	f := paper.NewFig5()
	sys, err := core.Synthesize(f.Graph, f.ELP.Paths(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries := Compress(sys.Rules.Rules())
	for _, r := range sys.Rules.Rules() {
		got, ok := Lookup(entries, r.Switch, r.Tag, r.In, r.Out)
		if !ok || got != r.NewTag {
			t.Errorf("rule %+v: lookup = %d,%v", r, got, ok)
		}
	}
	if len(entries) > sys.Rules.Len() {
		t.Errorf("compression grew the table: %d > %d", len(entries), sys.Rules.Len())
	}
}
