// Package dataplane is the frame-level switch pipeline of §7: the
// three-step match-action sequence (DSCP-based ingress priority queuing,
// ingress ACL with DSCP rewriting, ACL-based egress priority queuing)
// executed on encoded RoCEv2 frames via compressed TCAM entries —
// everything the paper implemented on Broadcom ASICs, in bytes.
//
// It exists to close the loop between the abstract Ruleset used by the
// algorithms and the wire: tests assert that pushing real frames through
// the TCAM produces exactly the tag sequences core.Ruleset.Replay
// predicts.
package dataplane

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tcam"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Verdict is the pipeline's decision for one frame.
type Verdict struct {
	// IngressQueue and EgressQueue index priority queues; 0 is lossy.
	IngressQueue int
	EgressQueue  int
	// NewTag is the rewritten DSCP (LossyTag when demoted).
	NewTag int
	// Drop is set when the frame must be discarded (TTL exhausted).
	Drop bool
	// DropReason explains a drop.
	DropReason string
}

// Switch is one forwarding element's installed state.
type Switch struct {
	node    topology.NodeID
	entries []tcam.Entry // this switch's entries, TCAM order
	rules   *core.Ruleset
	maxTag  int
}

// NewSwitch compiles the per-switch TCAM from a synthesized ruleset.
// The abstract ruleset is retained only for the injection/delivery
// defaults (host-facing port knowledge); all rewrite decisions go through
// the compressed entries, which is the point.
func NewSwitch(node topology.NodeID, rs *core.Ruleset) *Switch {
	var own []core.Rule
	for _, r := range rs.RulesAt(node) {
		own = append(own, r)
	}
	return &Switch{
		node:    node,
		entries: tcam.Compress(own),
		rules:   rs,
		maxTag:  rs.MaxTag(),
	}
}

// Entries returns the number of TCAM entries installed.
func (s *Switch) Entries() int { return len(s.entries) }

// Process runs one encoded frame through the §7 pipeline: parse DSCP,
// classify ingress, TCAM lookup (with the safeguard lossy default),
// rewrite DSCP + decrement TTL in place, classify egress by the NEW tag.
func (s *Switch) Process(frame []byte, in, out int) (Verdict, error) {
	pkt, err := wire.DecodeRoCEv2(frame)
	if err != nil {
		return Verdict{}, fmt.Errorf("dataplane: %w", err)
	}
	var v Verdict
	tag := pkt.Tag()
	v.IngressQueue = s.queueOf(tag)

	ttl, err := wire.DecrementTTL(frame)
	if err != nil {
		return Verdict{}, err
	}
	if ttl == 0 {
		v.Drop = true
		v.DropReason = "ttl expired"
		return v, nil
	}

	// Step 2: TCAM lookup; first-hit wins; misses fall to the boundary
	// defaults and then the lossy safeguard.
	newTag, hit := tcam.Lookup(s.entries, s.node, tag, in, out)
	switch {
	case hit:
	case !s.lossless(tag):
		newTag = core.LossyTag
	case s.rules.HostFacing(s.node, in), s.rules.HostFacing(s.node, out):
		newTag = tag // injection / delivery
	default:
		newTag = core.LossyTag // the last TCAM entry: safeguard
	}
	v.NewTag = newTag
	if newTag != tag {
		if _, err := wire.RewriteTag(frame, newTag); err != nil {
			return Verdict{}, err
		}
	}
	v.EgressQueue = s.queueOf(newTag)
	return v, nil
}

func (s *Switch) lossless(tag int) bool { return tag >= 1 && tag <= s.maxTag }

func (s *Switch) queueOf(tag int) int {
	if s.lossless(tag) {
		return tag
	}
	return 0
}

// Fabric is every switch's compiled dataplane.
type Fabric struct {
	g        *topology.Graph
	switches map[topology.NodeID]*Switch
}

// Compile builds the dataplane for every switch in the topology.
func Compile(g *topology.Graph, rs *core.Ruleset) *Fabric {
	f := &Fabric{g: g, switches: make(map[topology.NodeID]*Switch)}
	for _, sw := range g.Switches() {
		f.switches[sw] = NewSwitch(sw, rs)
	}
	return f
}

// Switch returns one node's dataplane.
func (f *Fabric) Switch(n topology.NodeID) *Switch { return f.switches[n] }

// TotalEntries sums TCAM entries fabric-wide.
func (f *Fabric) TotalEntries() int {
	t := 0
	for _, s := range f.switches {
		t += s.Entries()
	}
	return t
}

// ForwardFrame walks an encoded frame along a path of nodes, running
// every switch's pipeline, and returns the tag observed at each arrival
// (the byte-level analogue of core.Ruleset.Replay). The frame is
// modified in place like real forwarding would.
func (f *Fabric) ForwardFrame(frame []byte, path []topology.NodeID) ([]int, error) {
	var tags []int
	for i := 0; i+1 < len(path); i++ {
		cur := path[i]
		if i == 0 || !f.g.Node(cur).Kind.IsSwitch() {
			// Source stamps; relay-host hops also rewrite below if they
			// carry rules, but plain endpoints just emit.
			pkt, err := wire.DecodeRoCEv2(frame)
			if err != nil {
				return nil, err
			}
			tags = append(tags, pkt.Tag())
			continue
		}
		in := f.g.PortToPeer(cur, path[i-1])
		out := f.g.PortToPeer(cur, path[i+1])
		sw := f.switches[cur]
		if sw == nil {
			return nil, fmt.Errorf("dataplane: no switch compiled for %s", f.g.Node(cur).Name)
		}
		v, err := sw.Process(frame, in, out)
		if err != nil {
			return nil, err
		}
		if v.Drop {
			return tags, fmt.Errorf("dataplane: dropped at %s: %s", f.g.Node(cur).Name, v.DropReason)
		}
		tags = append(tags, v.NewTag)
	}
	return tags, nil
}
