package dataplane

import (
	"testing"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/wire"
)

func newFrame(tag, ttl int) []byte {
	return wire.EncodeRoCEv2(&wire.RoCEv2Packet{
		IP:  wire.IPv4{DSCP: uint8(tag), TTL: uint8(ttl), Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		BTH: wire.BTH{Opcode: wire.OpcodeRCWriteOnly},
	})
}

// TestFrameReplayMatchesAbstractReplay is the load-bearing cross-check:
// for every path in the testbed's 1-bounce ELP, pushing a real encoded
// frame through the compiled TCAM dataplane yields exactly the tag
// sequence the abstract ruleset predicts.
func TestFrameReplayMatchesAbstractReplay(t *testing.T) {
	c := paper.Testbed()
	rs := core.ClosRules(c.Graph, 1, 1)
	fab := Compile(c.Graph, rs)
	set := elp.KBounce(c.Graph, c.ToRs, 1, nil)

	for _, p := range set.Paths() {
		want := rs.Replay(p, 1)
		frame := newFrame(1, 64)
		got, err := fab.ForwardFrame(frame, p)
		if err != nil {
			t.Fatalf("path %s: %v", p.String(c.Graph), err)
		}
		if len(got) != len(want.Tags) {
			t.Fatalf("path %s: %d tags vs %d", p.String(c.Graph), len(got), len(want.Tags))
		}
		for i := range got {
			if got[i] != want.Tags[i] {
				t.Fatalf("path %s hop %d: frame tag %d, abstract tag %d",
					p.String(c.Graph), i, got[i], want.Tags[i])
			}
		}
	}
}

func TestFrameReplayGenericSynthesis(t *testing.T) {
	// Same cross-check for the generic Algorithm 1+2 pipeline on Fig 5.
	f := paper.NewFig5()
	sys, err := core.Synthesize(f.Graph, f.ELP.Paths(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fab := Compile(f.Graph, sys.Rules)
	for _, p := range f.ELP.Paths() {
		want := sys.Rules.Replay(p, 1)
		got, err := fab.ForwardFrame(newFrame(1, 64), p)
		if err != nil {
			t.Fatalf("path %s: %v", p.String(f.Graph), err)
		}
		for i := range got {
			if got[i] != want.Tags[i] {
				t.Fatalf("path %s hop %d: %d vs %d", p.String(f.Graph), i, got[i], want.Tags[i])
			}
		}
	}
}

func TestLossySafeguard(t *testing.T) {
	// A frame arriving on a fabric port with a (tag,in,out) no rule
	// covers is demoted to the lossy DSCP — the last TCAM entry.
	c := paper.Testbed()
	g := c.Graph
	rs := core.ClosRules(g, 1, 1)
	fab := Compile(g, rs)
	l1 := g.MustLookup("L1")
	sw := fab.Switch(l1)
	inS1 := g.PortToPeer(l1, g.MustLookup("S1"))
	outS2 := g.PortToPeer(l1, g.MustLookup("S2"))

	// Tag 2 bouncing again exceeds the budget: lossy.
	frame := newFrame(2, 64)
	v, err := sw.Process(frame, inS1, outS2)
	if err != nil {
		t.Fatal(err)
	}
	if v.NewTag != core.LossyTag || v.EgressQueue != 0 {
		t.Errorf("verdict: %+v", v)
	}
	// The frame itself now carries the lossy DSCP.
	pkt, err := wire.DecodeRoCEv2(frame)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Tag() != core.LossyTag {
		t.Errorf("frame DSCP = %d", pkt.Tag())
	}
	// And it can never become lossless again.
	v, err = sw.Process(frame, inS1, g.PortToPeer(l1, g.MustLookup("T1")))
	if err != nil {
		t.Fatal(err)
	}
	if v.NewTag != core.LossyTag || v.IngressQueue != 0 {
		t.Errorf("lossy escape: %+v", v)
	}
}

func TestTTLDropInDataplane(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	rs := core.ClosRules(g, 1, 1)
	sw := NewSwitch(g.MustLookup("L1"), rs)
	frame := newFrame(1, 1)
	v, err := sw.Process(frame, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Drop || v.DropReason == "" {
		t.Errorf("verdict: %+v", v)
	}
}

func TestMalformedFrameRejected(t *testing.T) {
	c := paper.Testbed()
	rs := core.ClosRules(c.Graph, 1, 1)
	sw := NewSwitch(c.Graph.MustLookup("L1"), rs)
	if _, err := sw.Process([]byte{1, 2, 3}, 0, 1); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFabricAccounting(t *testing.T) {
	c := paper.Testbed()
	rs := core.ClosRules(c.Graph, 1, 1)
	fab := Compile(c.Graph, rs)
	if fab.TotalEntries() == 0 {
		t.Fatal("no entries compiled")
	}
	if fab.Switch(c.Spines[0]) == nil {
		t.Fatal("spine missing")
	}
	// Spines never rewrite upward, so their entries are keep-rules only;
	// compression should make them very few.
	if got := fab.Switch(c.Spines[0]).Entries(); got > fab.Switch(c.Leaves[0]).Entries() {
		t.Errorf("spine entries %d > leaf %d", got, fab.Switch(c.Leaves[0]).Entries())
	}
}
