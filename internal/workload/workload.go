// Package workload builds the named traffic scenarios of the Tagger
// paper's evaluation (§8.1) as ready-to-run simulations: the 1-bounce
// deadlock of Figures 3/10, the routing loop of Figure 11, the shuffle
// PAUSE-propagation of Figure 12, and generic patterns for the overhead
// measurements.
package workload

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Scenario is a configured simulation plus handles to its flows.
type Scenario struct {
	Clos   *topology.Clos
	Tables *routing.Tables
	Net    *sim.Network
	Flows  []*sim.Flow
	ByName map[string]*sim.Flow
	// Duration is the recommended Run() horizon for the scenario.
	Duration time.Duration
}

// Run executes the scenario to its recommended horizon.
func (s *Scenario) Run() { s.Net.Run(s.Duration) }

// Options selects the Tagger deployment for a scenario.
type Options struct {
	// Tagger enables the Clos bounce-counting rules with the given bounce
	// budget; Bounces <= 0 disables Tagger entirely (the baseline).
	Bounces int
	// LegacyEgress reproduces the Figure 8a misconfiguration.
	LegacyEgress bool
	// Config overrides the simulator defaults when non-nil.
	Config *sim.Config
}

func newScenario(opt Options, duration time.Duration) *Scenario {
	return newScenarioWith(opt, duration, routing.UpDown)
}

// newScenarioWith builds a testbed scenario under the given routing
// discipline (Figures 10-12 pin their special paths over static up-down
// tables; the reconvergence scenario needs shortest-path recomputation).
func newScenarioWith(opt Options, duration time.Duration, d routing.Discipline) *Scenario {
	c := paper.Testbed()
	tb := routing.ComputeToHosts(c.Graph, d)
	cfg := sim.DefaultConfig()
	if opt.Config != nil {
		cfg = *opt.Config
	}
	n := sim.New(c.Graph, tb, cfg)
	if opt.Bounces > 0 {
		n.InstallTagger(core.ClosRules(c.Graph, opt.Bounces, 1))
		n.SetLegacyEgress(opt.LegacyEgress)
	}
	return &Scenario{
		Clos: c, Tables: tb, Net: n,
		ByName:   map[string]*sim.Flow{},
		Duration: duration,
	}
}

func (s *Scenario) addFlow(spec sim.FlowSpec) *sim.Flow {
	f := s.Net.AddFlow(spec)
	s.Flows = append(s.Flows, f)
	s.ByName[spec.Name] = f
	return f
}

// hostPath extends a switch-level path with the host endpoints.
func hostPath(g *topology.Graph, src topology.NodeID, swPath routing.Path, dst topology.NodeID) routing.Path {
	p := make(routing.Path, 0, len(swPath)+2)
	p = append(p, src)
	p = append(p, swPath...)
	p = append(p, dst)
	return p
}

// Figure10 builds the 1-bounce deadlock experiment: the green flow
// (H9 -> H1) and blue flow (H2 -> H13) pinned to the Figure 3 paths, blue
// starting 2 ms in (the paper staggers them by 20 s on the testbed; the
// simulator compresses time).
func Figure10(opt Options) *Scenario {
	s := newScenario(opt, 20*time.Millisecond)
	g := s.Clos.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	s.addFlow(sim.FlowSpec{
		Name: "green", Src: n("H9"), Dst: n("H1"),
		Pin: hostPath(g, n("H9"), paper.Fig3GreenPath(s.Clos), n("H1")),
	})
	s.addFlow(sim.FlowSpec{
		Name: "blue", Src: n("H2"), Dst: n("H13"), Start: 2 * time.Millisecond,
		Pin: hostPath(g, n("H2"), paper.Fig3BluePath(s.Clos), n("H13")),
	})
	return s
}

// Figure11 builds the routing-loop experiment: F1 (H1 -> H5) and F2
// (H2 -> H6) run normally; at 5 ms a bad route traps H6-bound traffic in
// a T1 <-> L1 loop. F1's up-down path shares the T1-L1 link with the loop.
func Figure11(opt Options) *Scenario {
	s := newScenario(opt, 20*time.Millisecond)
	g := s.Clos.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	// Pin F1 via L1 so it demonstrably shares the looped link.
	s.addFlow(sim.FlowSpec{
		Name: "F1", Src: n("H1"), Dst: n("H5"),
		Pin: routing.Path{n("H1"), n("T1"), n("L1"), n("T2"), n("H5")},
	})
	s.addFlow(sim.FlowSpec{Name: "F2", Src: n("H2"), Dst: n("H6")})
	s.Net.At(5*time.Millisecond, func() {
		s.Tables.OverrideNextNode(n("T1"), n("H6"), n("L1"))
		s.Tables.OverrideNextNode(n("L1"), n("H6"), n("T1"))
	})
	return s
}

// Figure12 builds the PAUSE-propagation experiment: a 4-to-1 shuffle
// (H9, H10, H13, H14 -> H2) plus a 1-to-4 shuffle (H5 -> H11, H12, H15,
// H16). Two of the eight flows are pinned onto the Figure 3 1-bounce
// paths, recreating the CBD; without Tagger the resulting deadlock pauses
// every flow in the fabric.
func Figure12(opt Options) *Scenario {
	s := newScenario(opt, 25*time.Millisecond)
	g := s.Clos.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }

	// The bounced pair (starts staggered so the CBD assembles mid-run).
	s.addFlow(sim.FlowSpec{
		Name: "H9>H2", Src: n("H9"), Dst: n("H2"), Start: 4 * time.Millisecond,
		Pin: routing.Path{n("H9"), n("T3"), n("L3"), n("S2"), n("L1"), n("S1"), n("L2"), n("T1"), n("H2")},
	})
	s.addFlow(sim.FlowSpec{
		Name: "H5>H15", Src: n("H5"), Dst: n("H15"), Start: 6 * time.Millisecond,
		Pin: routing.Path{n("H5"), n("T2"), n("L1"), n("S1"), n("L3"), n("S2"), n("L4"), n("T4"), n("H15")},
	})
	// Remaining shuffle flows on normal routes.
	for _, src := range []string{"H10", "H13", "H14"} {
		s.addFlow(sim.FlowSpec{
			Name: src + ">H2", Src: n(src), Dst: n("H2"),
		})
	}
	for _, dst := range []string{"H11", "H12", "H16"} {
		s.addFlow(sim.FlowSpec{
			Name: "H5>" + dst, Src: n("H5"), Dst: n(dst), Start: time.Millisecond,
		})
	}
	return s
}

// Permutation builds a cross-pod permutation workload on normal up-down
// routes (no failures, no bounces): every host in pod 0 sends to the
// corresponding host in pod 1 and vice versa. It is the §8 performance
// baseline for measuring Tagger's overhead.
func Permutation(opt Options) *Scenario {
	s := newScenario(opt, 10*time.Millisecond)
	g := s.Clos.Graph
	hosts := s.Clos.Hosts
	half := len(hosts) / 2
	for i := 0; i < half; i++ {
		src, dst := hosts[i], hosts[half+i]
		s.addFlow(sim.FlowSpec{
			Name: fmt.Sprintf("%s>%s", g.Node(src).Name, g.Node(dst).Name),
			Src:  src, Dst: dst,
		})
	}
	return s
}

// TaggerELP returns the expected-lossless-path set the testbed deployment
// uses: all shortest up-down paths plus all 1-bounce paths between ToRs.
func TaggerELP(c *topology.Clos) *elp.Set {
	return elp.KBounce(c.Graph, c.ToRs, 1, nil)
}

// MultiClassIsolation builds the §6 reduced-isolation experiment: a
// class-2 flow (NIC stamp 2) rides priority 2 on an up-down path while a
// class-1 flow is (optionally) bounced into priority 2 on a shared
// segment and then congested at its destination. With the bounce, the
// PFC pauses the congested class-1 traffic triggers land on priority 2
// and throttle the innocent class-2 flow — the isolation cost the paper
// accepts because bounces are rare.
//
// Flows: "victim" (class 2, H13 -> H2 via T4>L4>S1>L2>T1), "mixer"
// (class 1, H9 -> H1; bounced at L1 when bounce is true, normal up-down
// otherwise), and "comp" (class 1, H5 -> H1) congesting T1 -> H1.
func MultiClassIsolation(bounce bool) *Scenario {
	s := newScenario(Options{Bounces: 1}, 15*time.Millisecond)
	// Shared rules: 1 bounce, 2 classes -> tags 1..3.
	s.Net.InstallTagger(core.ClosRules(s.Clos.Graph, 1, 2))
	g := s.Clos.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }

	s.addFlow(sim.FlowSpec{
		Name: "victim", Src: n("H13"), Dst: n("H2"), StartTag: 2,
		Pin: routing.Path{n("H13"), n("T4"), n("L4"), n("S1"), n("L2"), n("T1"), n("H2")},
	})
	mixer := sim.FlowSpec{Name: "mixer", Src: n("H9"), Dst: n("H1"), Start: 2 * time.Millisecond}
	if bounce {
		// The L1-T1 "failure" reroute: the mixer bounces at L1 into
		// priority 2 and detours across the victim's S1 > L2 > T1
		// segment — class 2 now shares its queues with bounced class-1
		// traffic.
		mixer.Pin = routing.Path{n("H9"), n("T3"), n("L3"), n("S2"), n("L1"),
			n("S1"), n("L2"), n("T1"), n("H1")}
	} else {
		// Healthy route: disjoint from the victim beyond T1's host links.
		mixer.Pin = routing.Path{n("H9"), n("T3"), n("L3"), n("S2"), n("L1"), n("T1"), n("H1")}
	}
	s.addFlow(mixer)
	return s
}

// AggregateGoodput sums the mean delivered rate of all flows over a
// window.
func (s *Scenario) AggregateGoodput(from, to time.Duration) float64 {
	var sum float64
	for _, f := range s.Flows {
		sum += f.MeanGbps(from, to)
	}
	return sum
}
