package workload

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Chaos builds a schedule-driven soak scenario: the Reconvergence
// cross-pod traffic matrix runs while a seeded chaos.Schedule injects
// link flaps and switch reboots into the fabric. Failures are handled
// the way §3.1/§3.2 describe production networks handling them —
// asynchronously: the leaf adjacent to a dead leaf-ToR link installs a
// local detour up to a spine immediately (creating 1-bounce paths),
// while the rest of the fabric keeps stale routes until a link recovery
// triggers global reconvergence. Concurrent flaps in both pods therefore
// recreate the Figure 3 CBD organically; without Tagger the soak
// deadlocks, with Tagger the bounces ride the second lossless class.
//
// Reboots power-cycle the switch mid-traffic (sim.RebootSwitch): queue
// and PFC state is lost and the dropped packets are counted under
// DropStats.SwitchReboot, outside the lossless-drop invariant. Rule
// state is static and re-pushed by the controller out of band, modeled
// as instantaneous relative to fabric time.
//
// Determinism: the schedule is data, the wiring below is mechanical, and
// the simulator is deterministic — same schedule, same verdict.
func Chaos(opt Options, sched chaos.Schedule) *Scenario {
	s := newScenario(opt, sched.Duration+10*time.Millisecond)
	g := s.Clos.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }

	// The Reconvergence traffic matrix: cross-pod pairs in both
	// directions so detours in either pod carry load.
	pairs := [][2]string{
		{"H9", "H1"}, {"H2", "H13"}, {"H10", "H3"}, {"H4", "H14"},
		{"H11", "H2"}, {"H1", "H15"}, {"H12", "H4"}, {"H3", "H16"},
	}
	for i, p := range pairs {
		s.addFlow(sim.FlowSpec{
			Name:  p[0] + ">" + p[1],
			Src:   n(p[0]),
			Dst:   n(p[1]),
			Start: time.Duration(i) * 250 * time.Microsecond,
		})
	}

	// Hosts under each ToR, for installing detour routes.
	hostsOf := map[topology.NodeID][]topology.NodeID{}
	for _, h := range s.Clos.Hosts {
		tor := g.Neighbors(h, nil)[0]
		hostsOf[tor] = append(hostsOf[tor], h)
	}

	for _, f := range sched.Faults {
		f := f
		switch f.Kind {
		case chaos.FaultLinkDown:
			a, b := n(f.A), n(f.B)
			leaf, tor := a, b
			if g.Node(leaf).Kind != topology.KindLeaf {
				leaf, tor = tor, leaf
			}
			if g.Node(leaf).Kind != topology.KindLeaf || g.Node(tor).Kind != topology.KindToR {
				panic(fmt.Sprintf("workload: chaos flap %s-%s is not a leaf-ToR link", f.A, f.B))
			}
			s.Net.At(f.At, func() {
				if !g.FailLink(leaf, tor) {
					return
				}
				// Local fast-reroute: the leaf sends ToR-bound traffic back
				// up to its first healthy spine (a 1-bounce path); the rest
				// of the fabric has not converged yet.
				var spine topology.NodeID = -1
				for _, nb := range g.Neighbors(leaf, nil) {
					if g.Node(nb).Kind == topology.KindSpine {
						spine = nb
						break
					}
				}
				if spine < 0 {
					return // leaf fully cut off from the spine layer
				}
				for _, h := range hostsOf[tor] {
					s.Tables.OverrideNextNode(leaf, h, spine)
				}
			})
		case chaos.FaultLinkUp:
			a, b := n(f.A), n(f.B)
			s.Net.At(f.At, func() {
				g.RestoreLink(a, b)
				// A recovery is when routing converges globally: overrides
				// drop and routes re-form around any links still down.
				s.Tables.Recompute()
			})
		case chaos.FaultSwitchReboot:
			sw := n(f.Switch)
			s.Net.At(f.At, func() {
				s.Net.RebootSwitch(sw)
			})
		}
		// Agent-side faults (RPC/install) are consumed by a chaos.Fabric
		// during deployment, not by the packet simulation.
	}
	return s
}

// ChaosLinks returns the candidate flap set for the testbed: the
// cross-pod leaf-ToR pairs of Figure 3, whose concurrent failure forms
// the CBD.
func ChaosLinks() [][2]string {
	return [][2]string{{"L1", "T1"}, {"L3", "T4"}}
}

// ChaosSwitches returns the candidate reboot/agent-fault targets: the
// testbed switches not directly implicated in the Figure 3 CBD, so
// reboots add churn without trivially breaking the deadlock under test.
func ChaosSwitches() []string {
	return []string{"L2", "L4", "T2", "T3"}
}
