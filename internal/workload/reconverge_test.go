package workload

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestReconvergenceWithTaggerSurvives is the paper's end-to-end promise
// on organic traffic: real link failures, local fast-reroute detours,
// stale upstream routes — and the Tagger fabric neither deadlocks nor
// drops lossless packets, across flow counts.
func TestReconvergenceWithTaggerSurvives(t *testing.T) {
	for _, flows := range []int{2, 4, 8} {
		s := Reconvergence(Options{Bounces: 1}, flows)
		s.Run()
		if s.Net.Deadlocked() {
			t.Fatalf("flows=%d: deadlock under Tagger: %v", flows, s.Net.DetectDeadlock())
		}
		// Lossless traffic is never lost; loop traffic dying in the lossy
		// class during the transient is the designed protection.
		if d := s.Net.Drops(); d.HeadroomViolation != 0 {
			t.Errorf("flows=%d: lossless drops %+v", flows, d)
		}
		// Every flow delivers again once routing has converged.
		for _, f := range s.Flows {
			if r := f.MeanGbps(20*time.Millisecond, 25*time.Millisecond); r < 1 {
				t.Errorf("flows=%d: %s at %.2f Gbps after convergence", flows, f.Name(), r)
			}
		}
	}
}

// TestReconvergenceBaselineDeadlocks: with enough bidirectional cross-pod
// flows the organic detours assemble the Figure 3 CBD without any path
// pinning, and the unprotected fabric locks up.
func TestReconvergenceBaselineDeadlocks(t *testing.T) {
	s := Reconvergence(Options{}, 8)
	s.Run()
	if !s.Net.Deadlocked() {
		t.Skip("organic placement did not close a CBD this run; the pinned Figure 10 covers determinism")
	}
	var alive int
	for _, f := range s.Flows {
		if f.MeanGbps(20*time.Millisecond, 25*time.Millisecond) > 0.01 {
			alive++
		}
	}
	t.Logf("baseline deadlocked; %d/%d flows still alive", alive, len(s.Flows))
}

// TestReconvergenceTransientProtection confirms the transient really
// exercises Tagger's machinery: micro-loop packets exceed the bounce
// budget and demote to the lossy class (where they die harmlessly)
// instead of wedging a lossless priority.
func TestReconvergenceTransientProtection(t *testing.T) {
	s := Reconvergence(Options{Bounces: 1}, 8)
	tr := &countingTracerShim{}
	s.Net.SetTracer(tr)
	s.Run()
	if tr.demotes == 0 {
		t.Error("no demotions: the transient produced no over-budget traffic?")
	}
	if tr.deadlocks != 0 {
		t.Errorf("%d deadlock onsets under Tagger", tr.deadlocks)
	}
}

type countingTracerShim struct {
	demotes   int
	deadlocks int
}

func (c *countingTracerShim) Trace(ev sim.TraceEvent) {
	switch ev.Kind {
	case "demote":
		c.demotes++
	case "deadlock":
		c.deadlocks++
	}
}
