package workload

import (
	"testing"
	"time"

	"repro/internal/paper"
)

func TestFigure10WithoutTaggerDeadlocks(t *testing.T) {
	s := Figure10(Options{Bounces: 0})
	s.Run()
	if !s.Net.Deadlocked() {
		t.Fatal("Figure 10(a): expected deadlock without Tagger")
	}
	for _, f := range s.Flows {
		if r := f.MeanGbps(s.Duration-5*time.Millisecond, s.Duration); r > 0.01 {
			t.Errorf("flow %s still delivering %.2f Gbps under deadlock", f.Name(), r)
		}
	}
}

func TestFigure10WithTaggerFlows(t *testing.T) {
	s := Figure10(Options{Bounces: 1})
	s.Run()
	if s.Net.Deadlocked() {
		t.Fatalf("Figure 10(b): deadlock under Tagger: %v", s.Net.DetectDeadlock())
	}
	for _, f := range s.Flows {
		if r := f.MeanGbps(s.Duration-5*time.Millisecond, s.Duration); r < 10 {
			t.Errorf("flow %s at %.2f Gbps, want > 10 under Tagger", f.Name(), r)
		}
	}
	if d := s.Net.Drops(); d.Total() != 0 {
		t.Errorf("drops under Tagger: %+v", d)
	}
}

func TestFigure11(t *testing.T) {
	// Without Tagger: deadlock pauses F1 too.
	base := Figure11(Options{Bounces: 0})
	base.Run()
	if !base.Net.Deadlocked() {
		t.Fatal("Figure 11 baseline: expected deadlock from routing loop")
	}
	if r := base.ByName["F1"].MeanGbps(base.Duration-5*time.Millisecond, base.Duration); r > 0.01 {
		t.Errorf("baseline F1 still at %.2f Gbps", r)
	}

	// With Tagger: F1 keeps flowing, F2's looped packets die harmlessly.
	tg := Figure11(Options{Bounces: 1})
	tg.Run()
	if tg.Net.Deadlocked() {
		t.Fatalf("Figure 11 Tagger: deadlock: %v", tg.Net.DetectDeadlock())
	}
	if r := tg.ByName["F1"].MeanGbps(tg.Duration-5*time.Millisecond, tg.Duration); r < 5 {
		t.Errorf("Tagger F1 at %.2f Gbps, want > 5", r)
	}
	if r := tg.ByName["F2"].MeanGbps(10*time.Millisecond, tg.Duration); r > 0.01 {
		t.Errorf("Tagger F2 should be dead in the loop, got %.2f", r)
	}
	d := tg.Net.Drops()
	if d.TTLExpired+d.LossyOverflow == 0 {
		t.Error("expected looped packets to die by TTL or lossy overflow")
	}
	if d.HeadroomViolation != 0 {
		t.Errorf("lossless drop under Tagger: %+v", d)
	}
}

func TestFigure12PausePropagation(t *testing.T) {
	// Without Tagger: the CBD from the two bounced flows pauses all 8.
	base := Figure12(Options{Bounces: 0})
	base.Run()
	if !base.Net.Deadlocked() {
		t.Fatal("Figure 12 baseline: expected deadlock")
	}
	stuck := 0
	for _, f := range base.Flows {
		if f.MeanGbps(base.Duration-5*time.Millisecond, base.Duration) < 0.01 {
			stuck++
		}
	}
	if stuck != len(base.Flows) {
		t.Errorf("only %d/%d flows paused by propagation", stuck, len(base.Flows))
	}

	// With Tagger: everyone keeps flowing.
	tg := Figure12(Options{Bounces: 1})
	tg.Run()
	if tg.Net.Deadlocked() {
		t.Fatalf("Figure 12 Tagger: deadlock: %v", tg.Net.DetectDeadlock())
	}
	for _, f := range tg.Flows {
		if r := f.MeanGbps(tg.Duration-5*time.Millisecond, tg.Duration); r < 1 {
			t.Errorf("flow %s at %.2f Gbps under Tagger", f.Name(), r)
		}
	}
}

func TestPermutationOverheadNegligible(t *testing.T) {
	// §8: Tagger imposes no discernible throughput penalty. Compare the
	// permutation workload's aggregate goodput with and without rules.
	base := Permutation(Options{Bounces: 0})
	base.Run()
	tagged := Permutation(Options{Bounces: 1})
	tagged.Run()

	from, to := 5*time.Millisecond, 10*time.Millisecond
	gb := base.AggregateGoodput(from, to)
	gt := tagged.AggregateGoodput(from, to)
	if gb == 0 {
		t.Fatal("baseline produced no goodput")
	}
	penalty := (gb - gt) / gb
	if penalty > 0.01 || penalty < -0.01 {
		t.Errorf("Tagger overhead = %.2f%% (base %.1f vs tagged %.1f Gbps), want |x| <= 1%%",
			penalty*100, gb, gt)
	}
}

func TestTaggerELP(t *testing.T) {
	s := Figure10(Options{Bounces: 1})
	set := TaggerELP(s.Clos)
	if set.Len() == 0 {
		t.Fatal("empty ELP")
	}
	// Both pinned scenario paths (switch-level) must be expected lossless.
	if !set.Contains(paper.Fig3GreenPath(s.Clos)) || !set.Contains(paper.Fig3BluePath(s.Clos)) {
		t.Error("scenario paths missing from the deployed ELP")
	}
}
