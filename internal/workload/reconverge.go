package workload

import (
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Reconvergence builds the organic version of the Figure 3 story: no
// pinned paths. Cross-pod flows run on normal ECMP up-down routes; at 5 ms
// the two Figure 3 links (L1-T1 and L3-T4) fail and the failure is
// handled the way §3.1/§3.2 describe production networks handling it —
// asynchronously:
//
//   - the switches adjacent to the failures install local detours
//     immediately (L1 sends T1-bound traffic back up to a spine; L3 does
//     the same for T4-bound traffic): the 1-bounce paths;
//   - the rest of the fabric keeps its old routes ("there is no guarantee
//     that all routers will react to network dynamics at the exact same
//     time"; the paper measured such routes persisting for minutes).
//
// Upstream traffic therefore keeps arriving at L1/L3 and bounces; flows
// whose spine-side ECMP hash points at the broken leaf even ping-pong in
// a transient micro-loop (the spine's stale route sends them straight
// back) — the §3.2 pathologies, organically. At 15 ms routing converges
// globally (Recompute) and the fabric heals. With Tagger no phase of this
// can deadlock: bounces ride the second lossless class and loop packets
// exhaust the bounce budget and die in the lossy class.
func Reconvergence(opt Options, flows int) *Scenario {
	s := newScenario(opt, 25*time.Millisecond)
	g := s.Clos.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }

	// Cross-pod pairs in both directions so both detours carry load.
	pairs := [][2]string{
		{"H9", "H1"}, {"H2", "H13"}, {"H10", "H3"}, {"H4", "H14"},
		{"H11", "H2"}, {"H1", "H15"}, {"H12", "H4"}, {"H3", "H16"},
	}
	if flows > len(pairs) {
		flows = len(pairs)
	}
	for i := 0; i < flows; i++ {
		s.addFlow(sim.FlowSpec{
			Name:  pairs[i][0] + ">" + pairs[i][1],
			Src:   n(pairs[i][0]),
			Dst:   n(pairs[i][1]),
			Start: time.Duration(i) * 250 * time.Microsecond,
		})
	}

	s.Net.At(5*time.Millisecond, func() {
		g.FailLink(n("L1"), n("T1"))
		g.FailLink(n("L3"), n("T4"))
		// Local fast-reroute at the failure points; the rest of the
		// fabric has not converged yet.
		for _, h := range []string{"H1", "H2", "H3", "H4"} {
			s.Tables.OverrideNextNode(n("L1"), n(h), n("S1"))
		}
		for _, h := range []string{"H13", "H14", "H15", "H16"} {
			s.Tables.OverrideNextNode(n("L3"), n(h), n("S2"))
		}
	})
	s.Net.At(15*time.Millisecond, func() {
		// Global convergence: valley-free routes around the failures.
		s.Tables.Recompute()
	})
	return s
}
