package workload

import (
	"testing"
	"time"
)

// TestMultiClassIsolationCost measures the §6 trade-off: when a class-1
// flow bounces into class 2's priority and then gets congested, its PFC
// pauses throttle the innocent class-2 victim; with the same load on a
// normal (unbounced) route the victim keeps its fair share.
func TestMultiClassIsolationCost(t *testing.T) {
	mixed := MultiClassIsolation(true)
	mixed.Run()
	clean := MultiClassIsolation(false)
	clean.Run()

	from, to := 8*time.Millisecond, 15*time.Millisecond
	victimMixed := mixed.ByName["victim"].MeanGbps(from, to)
	victimClean := clean.ByName["victim"].MeanGbps(from, to)

	if mixed.Net.Deadlocked() || clean.Net.Deadlocked() {
		t.Fatal("isolation experiment deadlocked")
	}
	if victimClean < 15 {
		t.Fatalf("clean victim rate = %.1f Gbps, scenario miswired", victimClean)
	}
	if victimMixed >= victimClean {
		t.Errorf("no isolation cost visible: mixed %.1f >= clean %.1f Gbps",
			victimMixed, victimClean)
	}
	t.Logf("victim: clean %.1f Gbps vs mixed-with-bounced-class-1 %.1f Gbps",
		victimClean, victimMixed)

	// Losslessness holds for everyone in both runs.
	if d := mixed.Net.Drops(); d.HeadroomViolation != 0 || d.LossyOverflow != 0 {
		t.Errorf("mixed drops: %+v", d)
	}
	if d := clean.Net.Drops(); d.Total() != 0 {
		t.Errorf("clean drops: %+v", d)
	}
}
