package workload

import (
	"time"

	"repro/internal/chaos"
	"repro/internal/paper"
	"repro/internal/sim"
	"repro/internal/topology"
)

// DetectMatrix builds one seeded instance of the detect-vs-prevent
// experiment scenario: the Figure 3 CBD pair (green H9 -> H1, blue
// H2 -> H13, pinned to the 1-bounce paths) with seed-jittered start
// times, two unpinned background cross-pod flows keeping the rest of
// the fabric busy, and a seeded chaos schedule of switch reboots aimed
// exclusively at T2 — a ToR on neither pinned path, so the reboots add
// buffer churn and loss without ever breaking the CBD for free. An
// unprotected run therefore deadlocks on every seed, which is what
// makes the arm comparison (Tagger prevents / detector recovers /
// global scan recovers / nothing starves) meaningful.
//
// The same (opt, seed) always builds the same scenario: jitter is pure
// arithmetic on the seed and the reboot schedule comes from
// chaos.Generate's determinism contract.
func DetectMatrix(opt Options, seed int64) *Scenario {
	const horizon = 30 * time.Millisecond
	s := newScenario(opt, horizon)
	g := s.Clos.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }

	jitter := func(mod, step int64) time.Duration {
		v := seed % mod
		if v < 0 {
			v += mod
		}
		return time.Duration(v*step) * time.Microsecond
	}
	s.addFlow(sim.FlowSpec{
		Name: "green", Src: n("H9"), Dst: n("H1"),
		Start: 500*time.Microsecond + jitter(7, 100),
		Pin:   hostPath(g, n("H9"), paper.Fig3GreenPath(s.Clos), n("H1")),
	})
	s.addFlow(sim.FlowSpec{
		Name: "blue", Src: n("H2"), Dst: n("H13"),
		Start: 1500*time.Microsecond + jitter(5, 200),
		Pin:   hostPath(g, n("H2"), paper.Fig3BluePath(s.Clos), n("H13")),
	})
	// Background cross traffic on normal up-down routes: load on queues
	// the detector must not misread as a cycle.
	s.addFlow(sim.FlowSpec{Name: "bg1", Src: n("H6"), Dst: n("H10"),
		Start: 200 * time.Microsecond})
	s.addFlow(sim.FlowSpec{Name: "bg2", Src: n("H14"), Dst: n("H5"),
		Start: 800*time.Microsecond + jitter(3, 150)})

	sched := chaos.Generate(chaos.Config{
		Duration: horizon,
		Switches: []string{"T2"},
		Reboots:  2,
	}, seed)
	for _, f := range sched.Reboots() {
		sw := n(f.Switch)
		s.Net.At(f.At, func() { s.Net.RebootSwitch(sw) })
	}
	return s
}
