package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// staticPM is a canned PostmortemSource.
type staticPM []PostmortemEpisode

func (s staticPM) PostmortemEpisodes() []PostmortemEpisode { return s }

func TestPostmortemEndpoints(t *testing.T) {
	pm := staticPM{
		{Seq: 1, Trigger: "deadlock-onset", Node: "L1", At: 5 * time.Millisecond,
			Report: "POST-MORTEM: deadlock-onset at L1\nwait-for cycle (2 hops):\n"},
		{Seq: 2, Trigger: "detector-fire", Node: "T3", At: 7 * time.Millisecond,
			Report: "POST-MORTEM: detector-fire at T3\n"},
	}
	srv := httptest.NewServer(HandlerWithPostmortem(pm, NewRegistry()))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/postmortem")
	if code != http.StatusOK {
		t.Fatalf("/debug/postmortem status %d", code)
	}
	var idx struct {
		Count    int `json:"count"`
		Episodes []struct {
			Seq     int    `json:"seq"`
			Trigger string `json:"trigger"`
			Node    string `json:"node"`
			At      string `json:"at"`
			URL     string `json:"report_url"`
		} `json:"episodes"`
	}
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("index not JSON: %v (%s)", err, body)
	}
	if idx.Count != 2 || len(idx.Episodes) != 2 {
		t.Fatalf("index count = %d/%d, want 2", idx.Count, len(idx.Episodes))
	}
	ep := idx.Episodes[0]
	if ep.Seq != 1 || ep.Trigger != "deadlock-onset" || ep.Node != "L1" ||
		ep.At != "5ms" || ep.URL != "/debug/postmortem/1" {
		t.Fatalf("episode row = %+v", ep)
	}
	if strings.Contains(body, "wait-for cycle") {
		t.Fatal("index must not inline full reports")
	}

	code, body = get("/debug/postmortem/2")
	if code != http.StatusOK || !strings.Contains(body, "detector-fire at T3") {
		t.Fatalf("report fetch: status %d body %q", code, body)
	}

	if code, _ = get("/debug/postmortem/9"); code != http.StatusNotFound {
		t.Fatalf("missing incident status %d, want 404", code)
	}
	if code, _ = get("/debug/postmortem/bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad seq status %d, want 400", code)
	}
}

// TestPostmortemNilSource: the routes exist (empty index, no panics)
// even when no recorder is wired in — the plain Handler path.
func TestPostmortemNilSource(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/postmortem")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var idx struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &idx); err != nil || idx.Count != 0 {
		t.Fatalf("empty index: err=%v count=%d (%s)", err, idx.Count, body)
	}
}
