package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the ops endpoint mux over the given registries:
//
//	/metrics       Prometheus text exposition (all registries merged)
//	/healthz       JSON liveness: status, uptime, metric counts
//	/debug/pprof/  the standard runtime profiles
//
// Multiple registries cover the common deployment shape: the
// process-wide Default (synthesis spans) plus per-subsystem registries
// (a soak's simulator histograms, a controller's deploy counters).
// Same-name metrics across registries are summed at scrape time.
func Handler(regs ...*Registry) http.Handler {
	return HandlerWithPostmortem(nil, regs...)
}

// HandlerWithPostmortem is Handler plus the flight-recorder forensics
// routes (/debug/postmortem index, /debug/postmortem/<seq> report) fed
// from pm. A nil pm serves an empty index.
func HandlerWithPostmortem(pm PostmortemSource, regs ...*Registry) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	servePostmortem(mux, pm)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		merged := NewRegistry()
		for _, reg := range regs {
			merged.Merge(reg.Snapshot())
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, merged.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var counters, gauges, hists int
		for _, reg := range regs {
			s := reg.Snapshot()
			counters += len(s.Counters)
			gauges += len(s.Gauges)
			hists += len(s.Hists)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":     "ok",
			"uptime":     time.Since(start).String(),
			"counters":   counters,
			"gauges":     gauges,
			"histograms": hists,
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsServer is a running ops endpoint.
type OpsServer struct {
	srv *http.Server
	lis net.Listener
}

// StartOps listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves
// the ops endpoint in a background goroutine. It returns once the
// listener is bound, so the caller can print Addr() and curl it
// immediately.
func StartOps(addr string, regs ...*Registry) (*OpsServer, error) {
	return StartOpsWithPostmortem(addr, nil, regs...)
}

// StartOpsWithPostmortem is StartOps serving the forensics routes too.
func StartOpsWithPostmortem(addr string, pm PostmortemSource, regs ...*Registry) (*OpsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: ops listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HandlerWithPostmortem(pm, regs...)}
	go srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &OpsServer{srv: srv, lis: lis}, nil
}

// Addr returns the bound listen address.
func (o *OpsServer) Addr() string { return o.lis.Addr().String() }

// Close shuts the server down.
func (o *OpsServer) Close() error { return o.srv.Close() }
