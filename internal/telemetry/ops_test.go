package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOpsEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("deploy.pushes").Add(2)
	reg.Histogram("sim_pause_duration_seconds", []float64{0.001, 0.01}, "link", "L1->T1").
		Observe(0.002)
	other := NewRegistry()
	other.Counter("deploy.pushes").Add(3) // summed with reg's at scrape time

	srv := httptest.NewServer(Handler(reg, other))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE deploy_pushes counter",
		"deploy_pushes 5",
		`sim_pause_duration_seconds_bucket{link="L1->T1",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v (%s)", err, body)
	}
	if health["status"] != "ok" {
		t.Fatalf("/healthz status field = %v", health["status"])
	}

	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestStartOpsServesAndCloses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	srv, err := StartOps("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "x 1") {
		t.Fatalf("metrics body: %s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
