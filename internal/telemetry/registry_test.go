package telemetry

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("depth", "node", "L1")
	g.Set(7)
	g.Add(-2.5)
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", got)
	}
	if r.Gauge("depth", "node", "L2") == g {
		t.Fatal("different labels must be different gauges")
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "b", "2", "a", "1")
	b := r.Counter("x", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not affect identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list must panic")
		}
	}()
	r.Counter("y", "only-key")
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("z.last").Add(1)
		r.Counter("a.first", "sw", "L2").Add(2)
		r.Counter("a.first", "sw", "L1").Add(3)
		r.Gauge("g").Set(1.5)
		r.Histogram("h", []float64{1, 2}).Observe(1.5)
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	if s1.Counters[0].Name != "a.first" || s1.Counters[0].Labels[0].V != "L1" {
		t.Fatalf("unexpected counter order: %+v", s1.Counters)
	}
}

func TestMergeAccumulates(t *testing.T) {
	run := func(v int64) Snapshot {
		r := NewRegistry()
		r.Counter("deploy.pushes").Add(v)
		r.Gauge("last_seed").Set(float64(v))
		h := r.Histogram("pause", []float64{1, 10, 100})
		h.Observe(float64(v))
		return r.Snapshot()
	}
	agg := NewRegistry()
	agg.Merge(run(2))
	agg.Merge(run(50))
	s := agg.Snapshot()
	if s.Counters[0].Value != 52 {
		t.Fatalf("merged counter = %d, want 52", s.Counters[0].Value)
	}
	if s.Gauges[0].Value != 50 {
		t.Fatalf("merged gauge = %v, want 50 (last write wins)", s.Gauges[0].Value)
	}
	h := s.Hists[0]
	if h.Count != 2 || h.Sum != 52 {
		t.Fatalf("merged histogram count/sum = %d/%v, want 2/52", h.Count, h.Sum)
	}
	if h.Min != 2 || h.Max != 50 {
		t.Fatalf("merged histogram min/max = %v/%v, want 2/50", h.Min, h.Max)
	}
}

func TestMergeMismatchedBoundsPanics(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", []float64{1, 2}).Observe(1)
	b := NewRegistry()
	b.Histogram("h", []float64{1, 2, 3}).Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("merging histograms with different bounds must panic")
		}
	}()
	a.Merge(b.Snapshot())
}

func TestDisabledRegistryIsNoop(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	if c := r.Counter("x"); c != nil {
		t.Fatal("disabled registry must hand out nil counters")
	}
	r.Counter("x").Inc()                      // must not panic
	r.Gauge("y").Set(1)                       // must not panic
	r.Histogram("z", []float64{1}).Observe(1) // must not panic
	if sp := r.StartSpan("phase"); sp != nil {
		t.Fatal("disabled registry must hand out nil spans")
	}
	var nilReg *Registry
	nilReg.Counter("x").Inc() // nil registry is a valid sink too
	if s := nilReg.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestRegistryConcurrentStress hammers one registry from many goroutines
// mixing metric creation, updates, spans, snapshots and merges. Run
// under -race (make race does) it is the satellite's concurrency proof.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	agg := NewRegistry()
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("stress.counter", "worker", fmt.Sprint(w%4)).Inc()
				r.Gauge("stress.gauge").Set(float64(i))
				r.Histogram("stress.hist", []float64{1, 10, 100}, "worker", fmt.Sprint(w%4)).
					Observe(float64(i % 150))
				sp := r.StartSpan("stress")
				sp.Child("inner").End()
				sp.End()
				if i%50 == 0 {
					agg.Merge(r.Snapshot())
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range r.Snapshot().Counters {
		if c.Name == "stress.counter" {
			total += c.Value
		}
	}
	if total != workers*iters {
		t.Fatalf("lost counter increments: %d, want %d", total, workers*iters)
	}
}
