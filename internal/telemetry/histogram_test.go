package telemetry

import (
	"math"
	"testing"
)

func TestHistogramBucketsAndOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// SearchFloat64s: values equal to a bound land in that bound's bucket.
	want := []int64{2, 1, 1, 2}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 6 || s.Sum != 5556.5 {
		t.Fatalf("count/sum = %d/%v, want 6/5556.5", s.Count, s.Sum)
	}
	if s.Min != 0.5 || s.Max != 5000 {
		t.Fatalf("min/max = %v/%v, want 0.5/5000", s.Min, s.Max)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 12)) // 1..2048
	for v := 1.0; v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, lo, hi float64 }{
		{0.50, 400, 600},
		{0.95, 850, 1000},
		{0.99, 950, 1000},
	} {
		got := s.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", tc.q, got, tc.lo, tc.hi)
		}
	}
	if got := s.Quantile(1); got != 1000 {
		t.Errorf("q1 = %v, want the max 1000", got)
	}
}

func TestHistogramQuantileEmptyAndSingle(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if !math.IsNaN(h.Snapshot().Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	h.Observe(1.5)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 1.5 {
			t.Fatalf("single-sample q%v = %v, want exactly 1.5 (min==max clamp)", q, got)
		}
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	h.ObserveDuration(2_500_000) // 2.5ms
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0.0025 {
		t.Fatalf("count/sum = %d/%v, want 1/0.0025s", s.Count, s.Sum)
	}
}

func TestExpBucketsShape(t *testing.T) {
	bs := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(bs[i]-want[i]) > 1e-15 {
			t.Fatalf("bucket %d = %v, want %v", i, bs[i], want[i])
		}
	}
}
