// Package profile is the shared -cpuprofile/-memprofile plumbing for the
// CLIs (taggerscale, taggersim, taggerfuzz), so every long-running
// command grows profiling support by registering two flags instead of
// re-implementing the pprof lifecycle.
package profile

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config holds the profile output paths, normally bound to flags via
// AddFlags. Empty paths disable the respective profile.
type Config struct {
	CPU string
	Mem string
}

// AddFlags registers -cpuprofile and -memprofile on the flag set (pass
// flag.CommandLine for a CLI's top level) and returns the config the
// parsed values land in.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return c
}

// Start begins CPU profiling when configured and returns a stop function
// that ends it and writes the heap profile. Callers defer stop()
// immediately; with both paths empty it is a no-op.
func (c *Config) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if c.CPU != "" {
		cpuFile, err = os.Create(c.CPU)
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profile: %w", err)
			}
		}
		if c.Mem != "" {
			f, err := os.Create(c.Mem)
			if err != nil {
				return fmt.Errorf("profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // measure retained heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profile: %w", err)
			}
		}
		return nil
	}, nil
}
