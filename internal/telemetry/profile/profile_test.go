package profile

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestAddFlagsAndStart(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddFlags(fs)
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to write.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartNoop(t *testing.T) {
	stop, err := (&Config{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
