package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SanitizeName maps an internal metric name onto the Prometheus
// identifier charset [a-zA-Z0-9_:], so legacy dotted names
// ("deploy.install.fail") expose as valid families
// ("deploy_install_fail"). A leading digit gains an underscore prefix.
func SanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatLabels renders a canonical {k="v",...} block ("" when empty).
// extra, when non-empty, is appended verbatim as a pre-rendered pair
// (the histogram le label).
func formatLabels(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(SanitizeName(l.K))
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.V))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the Prometheus way: shortest round-trip
// representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Families are sorted by exposed name, each
// preceded by a # TYPE line; within a family, series keep the snapshot's
// deterministic label order. Histograms emit cumulative le buckets plus
// the +Inf bucket, _sum and _count.
func WritePrometheus(w io.Writer, s Snapshot) error {
	type series struct {
		kind  string // "counter", "gauge", "histogram"
		lines []string
	}
	families := map[string]*series{}
	add := func(name, kind, line string) error {
		f, ok := families[name]
		if !ok {
			f = &series{kind: kind}
			families[name] = f
		} else if f.kind != kind {
			return fmt.Errorf("telemetry: metric %q exported as both %s and %s", name, f.kind, kind)
		}
		f.lines = append(f.lines, line)
		return nil
	}

	for _, c := range s.Counters {
		name := SanitizeName(c.Name)
		if err := add(name, "counter",
			fmt.Sprintf("%s%s %d", name, formatLabels(c.Labels, ""), c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := SanitizeName(g.Name)
		if err := add(name, "gauge",
			fmt.Sprintf("%s%s %s", name, formatLabels(g.Labels, ""), formatFloat(g.Value))); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		name := SanitizeName(h.Name)
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			line := fmt.Sprintf("%s_bucket%s %d", name,
				formatLabels(h.Labels, `le="`+le+`"`), cum)
			if err := add(name, "histogram", line); err != nil {
				return err
			}
		}
		if err := add(name, "histogram", fmt.Sprintf("%s_sum%s %s",
			name, formatLabels(h.Labels, ""), formatFloat(h.Sum))); err != nil {
			return err
		}
		if err := add(name, "histogram", fmt.Sprintf("%s_count%s %d",
			name, formatLabels(h.Labels, ""), h.Count)); err != nil {
			return err
		}
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := families[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.kind); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonlRecord is one exported metric line.
type jsonlRecord struct {
	Type   string            `json:"type"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Bounds []float64         `json:"bounds,omitempty"`
	Counts []int64           `json:"counts,omitempty"`
	Sum    *float64          `json:"sum,omitempty"`
	Count  *int64            `json:"count,omitempty"`
	P50    *float64          `json:"p50,omitempty"`
	P95    *float64          `json:"p95,omitempty"`
	P99    *float64          `json:"p99,omitempty"`
}

// WriteJSONL renders a snapshot as one JSON object per line, in the
// snapshot's deterministic order — the machine-readable sibling of the
// Prometheus exposition, fit for appending to run logs and for golden
// tests.
func WriteJSONL(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	labelMap := func(ls []Label) map[string]string {
		if len(ls) == 0 {
			return nil
		}
		m := make(map[string]string, len(ls))
		for _, l := range ls {
			m[l.K] = l.V
		}
		return m
	}
	fptr := func(v float64) *float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil // JSON has no NaN/Inf; omit instead
		}
		return &v
	}
	for _, c := range s.Counters {
		v := float64(c.Value)
		if err := enc.Encode(jsonlRecord{Type: "counter", Name: c.Name,
			Labels: labelMap(c.Labels), Value: &v}); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := enc.Encode(jsonlRecord{Type: "gauge", Name: g.Name,
			Labels: labelMap(g.Labels), Value: fptr(g.Value)}); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		cnt := h.Count
		if err := enc.Encode(jsonlRecord{Type: "histogram", Name: h.Name,
			Labels: labelMap(h.Labels), Bounds: h.Bounds, Counts: h.Counts,
			Sum: fptr(h.Sum), Count: &cnt,
			P50: fptr(h.Quantile(0.50)), P95: fptr(h.Quantile(0.95)),
			P99: fptr(h.Quantile(0.99))}); err != nil {
			return err
		}
	}
	return nil
}
