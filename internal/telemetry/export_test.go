package telemetry

import (
	"strings"
	"testing"
)

// buildSample is the fixture for both exporter golden tests: legacy
// dotted counter names, labels needing escaping, a histogram, a gauge.
func buildSample() Snapshot {
	r := NewRegistry()
	r.Counter("deploy.install.fail").Add(3)
	r.Counter("deploy.install.ok", "switch", "L1-T1").Add(7)
	r.Counter("deploy.install.ok", "switch", `we"ird\name`).Add(1)
	r.Gauge("sim_queue_depth_bytes", "node", "L2").Set(4096)
	// Binary-exact observations keep the goldens free of float fuzz.
	h := r.Histogram("sim_pause_duration_seconds", []float64{0.25, 1, 4},
		"link", "L1->T1")
	h.Observe(0.125)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(8)
	return r.Snapshot()
}

// TestPrometheusGolden pins the full exposition byte-for-byte: family
// ordering, name sanitization, label escaping, cumulative histogram
// buckets, sum/count lines.
func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, buildSample()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE deploy_install_fail counter
deploy_install_fail 3
# TYPE deploy_install_ok counter
deploy_install_ok{switch="L1-T1"} 7
deploy_install_ok{switch="we\"ird\\name"} 1
# TYPE sim_pause_duration_seconds histogram
sim_pause_duration_seconds_bucket{link="L1->T1",le="0.25"} 1
sim_pause_duration_seconds_bucket{link="L1->T1",le="1"} 3
sim_pause_duration_seconds_bucket{link="L1->T1",le="4"} 3
sim_pause_duration_seconds_bucket{link="L1->T1",le="+Inf"} 4
sim_pause_duration_seconds_sum{link="L1->T1"} 9.125
sim_pause_duration_seconds_count{link="L1->T1"} 4
# TYPE sim_queue_depth_bytes gauge
sim_queue_depth_bytes{node="L2"} 4096
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusDeterministic: two identical registries must render the
// same bytes (map iteration must not leak into the output).
func TestPrometheusDeterministic(t *testing.T) {
	render := func() string {
		var b strings.Builder
		if err := WritePrometheus(&b, buildSample()); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if render() != first {
			t.Fatal("exposition output is nondeterministic")
		}
	}
}

func TestJSONLGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteJSONL(&b, buildSample()); err != nil {
		t.Fatal(err)
	}
	want := `{"type":"counter","name":"deploy.install.fail","value":3}
{"type":"counter","name":"deploy.install.ok","labels":{"switch":"L1-T1"},"value":7}
{"type":"counter","name":"deploy.install.ok","labels":{"switch":"we\"ird\\name"},"value":1}
{"type":"gauge","name":"sim_queue_depth_bytes","labels":{"node":"L2"},"value":4096}
{"type":"histogram","name":"sim_pause_duration_seconds","labels":{"link":"L1->T1"},"bounds":[0.25,1,4],"counts":[1,2,0,1],"sum":9.125,"count":4,"p50":0.625,"p95":7.199999999999999,"p99":7.84}
`
	if got := b.String(); got != want {
		t.Fatalf("jsonl mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"deploy.install.fail": "deploy_install_fail",
		"already_fine:x":      "already_fine:x",
		"9starts-digit":       "_9starts_digit",
		"sim pause µs":        "sim_pause__s",
	} {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusTypeConflict: one exposed name registered as two
// different metric types must error, not emit an invalid exposition.
func TestWritePrometheusTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup.metric").Inc()
	r.Gauge("dup_metric").Set(1) // sanitizes to the same family name
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err == nil {
		t.Fatal("want an error for a name exported as both counter and gauge")
	}
}
