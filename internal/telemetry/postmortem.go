package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// PostmortemEpisode is one captured flight-recorder incident as the
// ops endpoint serves it: identity plus the rendered forensics report.
// The telemetry package defines the type (rather than reaching into
// the simulator) so the ops server stays dependency-free: any layer
// that captures incidents adapts them to this shape.
type PostmortemEpisode struct {
	Seq     int           `json:"seq"`
	Trigger string        `json:"trigger"`
	Node    string        `json:"node"`
	At      time.Duration `json:"-"`
	// Report is the rendered forensics text, served whole at
	// /debug/postmortem/<seq> and omitted from the JSON index.
	Report string `json:"-"`
}

// PostmortemSource yields the episodes the ops endpoint exposes,
// newest last. Implementations must be safe for concurrent calls (the
// HTTP server invokes them from handler goroutines).
type PostmortemSource interface {
	PostmortemEpisodes() []PostmortemEpisode
}

// servePostmortem registers the forensics routes on mux:
//
//	/debug/postmortem        JSON index of captured incidents
//	/debug/postmortem/<seq>  one incident's rendered report (text)
//
// A nil src serves an empty index — the routes always exist, so
// dashboards can probe them without caring whether a recorder is
// armed.
func servePostmortem(mux *http.ServeMux, src PostmortemSource) {
	episodes := func() []PostmortemEpisode {
		if src == nil {
			return nil
		}
		return src.PostmortemEpisodes()
	}
	mux.HandleFunc("/debug/postmortem", func(w http.ResponseWriter, r *http.Request) {
		eps := episodes()
		type row struct {
			PostmortemEpisode
			At  string `json:"at"`
			URL string `json:"report_url"`
		}
		rows := make([]row, 0, len(eps))
		for _, ep := range eps {
			rows = append(rows, row{ep, ep.At.String(),
				"/debug/postmortem/" + strconv.Itoa(ep.Seq)})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"count":    len(rows),
			"episodes": rows,
		})
	})
	mux.HandleFunc("/debug/postmortem/", func(w http.ResponseWriter, r *http.Request) {
		seqStr := strings.TrimPrefix(r.URL.Path, "/debug/postmortem/")
		seq, err := strconv.Atoi(seqStr)
		if err != nil {
			http.Error(w, "bad incident seq", http.StatusBadRequest)
			return
		}
		for _, ep := range episodes() {
			if ep.Seq == seq {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				w.Write([]byte(ep.Report))
				return
			}
		}
		http.Error(w, "no such incident", http.StatusNotFound)
	})
}
