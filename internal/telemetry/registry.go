// Package telemetry is the repo's shared observability substrate: a
// concurrency-safe metrics registry (counters, gauges, bucketed
// histograms), a lightweight span tracer for pipeline phases, and
// exporters for Prometheus text exposition and deterministic JSONL.
//
// Every long-running subsystem reports through it — the synthesis
// pipeline emits per-phase spans, the simulator feeds PFC pause-duration
// and queue-depth histograms, and the controller's two-phase deployment
// exports retry/rollback counters and gauges — so a single HTTP ops
// endpoint (ops.go) can expose the whole system's live state.
//
// Identity is (name, sorted label pairs). Metric names may use any
// characters; the Prometheus exporter sanitizes them at exposition time,
// so legacy dotted names ("deploy.install.fail") and native underscore
// names coexist. All mutating operations are safe for concurrent use;
// snapshots are deterministic (sorted) so golden tests and diffing work.
package telemetry

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair.
type Label struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d (atomically, CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry owns a namespace of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is a valid no-op sink: every lookup
// returns nil and every nil metric's mutators return immediately, so
// instrumented code needs no nil checks.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*counterEntry
	gauges   map[string]*gaugeEntry
	hists    map[string]*histEntry

	disabled atomic.Bool
}

type counterEntry struct {
	name   string
	labels []Label
	c      *Counter
}

type gaugeEntry struct {
	name   string
	labels []Label
	g      *Gauge
}

type histEntry struct {
	name   string
	labels []Label
	h      *Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*counterEntry),
		gauges:   make(map[string]*gaugeEntry),
		hists:    make(map[string]*histEntry),
	}
}

// Default is the process-wide registry the instrumented packages (core
// synthesis, elp, tcam) report into. Set TAGGER_TELEMETRY=off to disable
// it at startup — span and metric calls against a disabled registry are
// cheap no-ops, which is what the `make telemetry-overhead` gate
// measures against.
var Default = NewRegistry()

func init() {
	if os.Getenv("TAGGER_TELEMETRY") == "off" {
		Default.SetEnabled(false)
	}
}

// SetEnabled toggles the registry. Disabled registries hand out nil
// metrics (no-op on use) and nil spans. Metrics obtained while enabled
// keep working, and Snapshot still reports them; the flag gates lookups,
// not live handles.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.disabled.Store(!on)
}

// Enabled reports whether the registry is accepting instrumentation.
func (r *Registry) Enabled() bool { return r != nil && !r.disabled.Load() }

// canonLabels validates variadic k,v pairs and returns them sorted by
// key. Odd-length label lists are a programming error.
func canonLabels(name string, kv []string) []Label {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %q: odd label list %q", name, kv))
	}
	ls := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{K: kv[i], V: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	return ls
}

// metricKey is the registry map key: name plus canonical label string.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.K)
		b.WriteByte(1)
		b.WriteString(l.V)
	}
	return b.String()
}

// Counter returns the counter registered under name and the given k,v
// label pairs, creating it on first use.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if !r.Enabled() {
		return nil
	}
	labels := canonLabels(name, kv)
	key := metricKey(name, labels)
	r.mu.RLock()
	e, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return e.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.counters[key]; ok {
		return e.c
	}
	e = &counterEntry{name: name, labels: labels, c: &Counter{}}
	r.counters[key] = e
	return e.c
}

// Gauge returns the gauge registered under name and the given k,v label
// pairs, creating it on first use.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	labels := canonLabels(name, kv)
	key := metricKey(name, labels)
	r.mu.RLock()
	e, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return e.g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.gauges[key]; ok {
		return e.g
	}
	e = &gaugeEntry{name: name, labels: labels, g: &Gauge{}}
	r.gauges[key] = e
	return e.g
}

// Histogram returns the histogram registered under name and the given
// k,v label pairs, creating it with the given bucket upper bounds on
// first use. Later lookups of the same metric must pass compatible
// bounds (or nil to reuse whatever was registered).
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	labels := canonLabels(name, kv)
	key := metricKey(name, labels)
	r.mu.RLock()
	e, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return e.h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.hists[key]; ok {
		return e.h
	}
	e = &histEntry{name: name, labels: labels, h: NewHistogram(bounds)}
	r.hists[key] = e
	return e.h
}

// Snapshot captures the full registry state, sorted by (name, labels) so
// two snapshots of identical state render identically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for key, e := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{
			Name: e.name, Labels: e.labels, Value: e.c.Value(), key: key})
	}
	for key, e := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{
			Name: e.name, Labels: e.labels, Value: e.g.Value(), key: key})
	}
	for key, e := range r.hists {
		hs := e.h.Snapshot()
		hs.Name, hs.Labels, hs.key = e.name, e.labels, key
		s.Hists = append(s.Hists, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].key < s.Counters[j].key })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].key < s.Gauges[j].key })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].key < s.Hists[j].key })
	return s
}

// Merge folds a snapshot into the registry: counters and histogram
// buckets add, gauges take the snapshot's value. It is how per-run
// registries (one chaos soak, one controller bring-up) roll up into the
// process-wide registry an ops endpoint serves. Merging a histogram into
// an existing one with different bucket bounds panics: two metrics
// sharing a name must share a layout.
func (r *Registry) Merge(s Snapshot) {
	if !r.Enabled() {
		return
	}
	for _, c := range s.Counters {
		r.Counter(c.Name, flattenLabels(c.Labels)...).Add(c.Value)
	}
	for _, g := range s.Gauges {
		r.Gauge(g.Name, flattenLabels(g.Labels)...).Set(g.Value)
	}
	for _, h := range s.Hists {
		dst := r.Histogram(h.Name, h.Bounds, flattenLabels(h.Labels)...)
		dst.absorb(h)
	}
}

// flattenLabels converts canonical labels back to the variadic k,v form.
func flattenLabels(ls []Label) []string {
	if len(ls) == 0 {
		return nil
	}
	kv := make([]string, 0, 2*len(ls))
	for _, l := range ls {
		kv = append(kv, l.K, l.V)
	}
	return kv
}

// Snapshot is a point-in-time copy of a registry, decoupled from the
// live metrics and deterministically ordered.
type Snapshot struct {
	Counters []CounterSnap `json:"counters,omitempty"`
	Gauges   []GaugeSnap   `json:"gauges,omitempty"`
	Hists    []HistSnap    `json:"histograms,omitempty"`
}

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`

	key string
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`

	key string
}
