package telemetry

import (
	"runtime/metrics"
	"time"
)

// Span measures one pipeline phase: wall-clock duration and the bytes
// the Go heap allocated while it was open. Spans nest — Child spans
// record under a slash-joined path ("synth/alg2"), so the exporters show
// the phase taxonomy directly. Ending a span records three metrics, all
// labeled span=<path>:
//
//	span_duration_seconds  histogram of wall-clock time
//	span_total             counter of completed spans
//	span_alloc_bytes_total counter of heap bytes allocated inside
//
// A nil *Span (what a disabled or nil registry hands out) is a valid
// no-op, so instrumented code never branches on telemetry being on.
//
// Alloc deltas come from runtime/metrics' monotonic heap-allocs gauge,
// which is cheap to read (no stop-the-world) but process-global:
// concurrent goroutines' allocations land in whichever spans are open.
// For the serial synthesis pipeline that is exactly the per-phase cost;
// for par=N runs it is an upper bound.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
	heap0 uint64
}

const heapAllocsMetric = "/gc/heap/allocs:bytes"

// readHeapAllocs samples cumulative heap allocation bytes.
func readHeapAllocs() uint64 {
	s := [1]metrics.Sample{{Name: heapAllocsMetric}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// StartSpan opens a root span under the given phase name.
func (r *Registry) StartSpan(name string) *Span {
	if !r.Enabled() {
		return nil
	}
	return &Span{reg: r, path: name, start: time.Now(), heap0: readHeapAllocs()}
}

// Child opens a nested span; its path is parent-path/name.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, path: s.path + "/" + name, start: time.Now(), heap0: readHeapAllocs()}
}

// Path returns the span's slash-joined phase path ("" for nil spans).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End closes the span, records its metrics, and returns the wall-clock
// duration (0 for nil spans).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	alloc := readHeapAllocs() - s.heap0
	s.reg.Histogram("span_duration_seconds", DurationBuckets(), "span", s.path).
		Observe(d.Seconds())
	s.reg.Counter("span_total", "span", s.path).Inc()
	s.reg.Counter("span_alloc_bytes_total", "span", s.path).Add(int64(alloc))
	return d
}
