package telemetry

import (
	"testing"
	"time"
)

// allocSink keeps test allocations observable by the heap stats.
var allocSink []byte

func TestSpanRecordsMetrics(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("synth")
	child := sp.Child("alg2")
	allocSink = make([]byte, 1<<20) // force a visible alloc delta inside the child
	time.Sleep(time.Millisecond)
	if d := child.End(); d < time.Millisecond {
		t.Fatalf("child duration %v, want >= 1ms", d)
	}
	sp.End()

	s := r.Snapshot()
	byLabel := map[string]int64{}
	for _, c := range s.Counters {
		if c.Name == "span_total" {
			byLabel[c.Labels[0].V] = c.Value
		}
	}
	if byLabel["synth"] != 1 || byLabel["synth/alg2"] != 1 {
		t.Fatalf("span_total by path = %v, want synth=1 synth/alg2=1", byLabel)
	}
	var alloced int64
	for _, c := range s.Counters {
		if c.Name == "span_alloc_bytes_total" && c.Labels[0].V == "synth/alg2" {
			alloced = c.Value
		}
	}
	if alloced < 1<<20 {
		t.Fatalf("span_alloc_bytes_total{synth/alg2} = %d, want >= 1MiB", alloced)
	}
	var durCount int64
	for _, h := range s.Hists {
		if h.Name == "span_duration_seconds" && h.Labels[0].V == "synth/alg2" {
			durCount = h.Count
		}
	}
	if durCount != 1 {
		t.Fatalf("span_duration_seconds{synth/alg2} count = %d, want 1", durCount)
	}
}

func TestNilSpanIsNoop(t *testing.T) {
	var sp *Span
	if sp.Path() != "" || sp.Child("x") != nil || sp.End() != 0 {
		t.Fatal("nil span must be inert")
	}
	r := NewRegistry()
	r.SetEnabled(false)
	if got := r.StartSpan("x").Child("y").End(); got != 0 {
		t.Fatalf("disabled-registry span chain returned %v, want 0", got)
	}
}
