package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a concurrency-safe bucketed histogram. Buckets are
// defined by sorted upper bounds; an implicit +Inf bucket catches the
// overflow. Observations update per-bucket counters, a running sum, and
// min/max watermarks, all lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last = +Inf overflow
	sumBits atomic.Uint64
	count   atomic.Int64
	minBits atomic.Uint64 // +Inf until first observation
	maxBits atomic.Uint64 // -Inf until first observation
}

// NewHistogram builds a standalone histogram over the given bucket upper
// bounds (sorted ascending; a copy is taken). Most callers get
// histograms from a Registry; standalone construction serves offline
// analyzers like taggertrace.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration given in nanoseconds as seconds —
// the Prometheus convention for time histograms.
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures the histogram state. Name/Labels are filled by the
// registry when snapshotting registered histograms.
func (h *Histogram) Snapshot() HistSnap {
	if h == nil {
		return HistSnap{}
	}
	s := HistSnap{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.count.Load(),
		Min:    math.Float64frombits(h.minBits.Load()),
		Max:    math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// absorb adds a snapshot's observations into the live histogram (the
// Merge path). Bounds must match.
func (h *Histogram) absorb(s HistSnap) {
	if h == nil || s.Count == 0 {
		return
	}
	if len(s.Bounds) != len(h.bounds) {
		panic("telemetry: histogram merge with mismatched bucket bounds")
	}
	for i, b := range s.Bounds {
		if b != h.bounds[i] {
			panic("telemetry: histogram merge with mismatched bucket bounds")
		}
	}
	for i, c := range s.Counts {
		h.counts[i].Add(c)
	}
	h.count.Add(s.Count)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + s.Sum)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= s.Min {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(s.Min)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= s.Max {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(s.Max)) {
			break
		}
	}
}

// Quantile estimates the q-th quantile (0..1) from a histogram snapshot
// by linear interpolation within the containing bucket, clamped to the
// observed min/max so sparse histograms don't report bucket-edge
// artifacts. Returns NaN when empty.
func (s HistSnap) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < hi {
				hi = s.Bounds[i]
			}
			if lo < s.Min {
				lo = s.Min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return s.Max
}

// HistSnap is one histogram's snapshot.
type HistSnap struct {
	Name   string    `json:"name"`
	Labels []Label   `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per bucket; last is +Inf overflow
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`

	key string
}

// Mean returns the average observation (NaN when empty).
func (s HistSnap) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// ExpBuckets returns n upper bounds starting at start, each factor times
// the previous — the standard shape for duration and size histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// DurationBuckets spans 1µs to ~65s in powers of two — wide enough for
// both PFC pause durations (µs..ms) and synthesis phases (ms..s).
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 2, 26) }

// ByteBuckets spans 1KiB to 1GiB in powers of two, for queue depths and
// alloc deltas.
func ByteBuckets() []float64 { return ExpBuckets(1024, 2, 21) }
