// Package metrics provides the small formatting and series helpers the
// experiment drivers and CLIs share: aligned text tables and throughput
// series rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table. Rows may have more or fewer cells than the
// header: column widths cover the widest row, short rows end early, and
// cells beyond the last sized column render unpadded.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(width) {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Counters is a named-counter set with deterministic rendering. It is
// safe for concurrent use (all methods take an internal mutex).
//
// Deprecated: new code should use the telemetry registry
// (repro/internal/telemetry), which adds labels, gauges, histograms and
// Prometheus/JSONL export. The former owners (the controller deploy
// pipeline, the chaos harness) have migrated; this type remains for
// small throwaway tallies only.
type Counters struct {
	mu   sync.Mutex
	vals map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add increments the named counter by delta (creating it at zero).
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.vals[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Names returns every counter name in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.namesLocked()
}

func (c *Counters) namesLocked() []string {
	names := make([]string, 0, len(c.vals))
	for n := range c.vals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the counter map, decoupled from the live set.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}

// String renders the counters as an aligned two-column table, names
// sorted, so output is stable across runs.
func (c *Counters) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := NewTable("counter", "value")
	for _, n := range c.namesLocked() {
		t.AddRow(n, c.vals[n])
	}
	return t.String()
}

// Sparkline renders a series of non-negative values as a compact unicode
// bar chart, used by the CLIs to show rate-vs-time like the paper's
// figures.
func Sparkline(values []float64, max float64) string {
	if len(values) == 0 {
		return ""
	}
	if max <= 0 {
		for _, v := range values {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			max = 1
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range values {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// MeanStd returns the mean and population standard deviation.
func MeanStd(values []float64) (mean, std float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	for _, v := range values {
		d := v - mean
		std += d * d
	}
	std /= float64(len(values))
	return mean, math.Sqrt(std)
}
