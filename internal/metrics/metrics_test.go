package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Date", "Total No.", "Prob")
	tb.AddRow("1/1/2017", 1234567, 3.0e-5)
	tb.AddRow("1/2/2017", 89, 0.25)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Date") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator: %q", lines[1])
	}
	if !strings.Contains(lines[2], "1234567") || !strings.Contains(lines[2], "3e-05") {
		t.Errorf("row: %q", lines[2])
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("misaligned header/separator: %d vs %d", len(lines[0]), len(lines[1]))
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

// TestTableRaggedRows pins the fix for the ragged-row panic: a row with
// more cells than the header used to index past the width slice inside
// writeRow. Wider and narrower rows must both render.
func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("one", "two", "three", "four") // wider than the header
	tb.AddRow("solo")                        // narrower than the header
	tb.AddRow("x", "y")
	out := tb.String() // pre-fix: panic (index out of range)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[2], "three") || !strings.Contains(lines[2], "four") {
		t.Errorf("wide row lost cells: %q", lines[2])
	}
	if strings.TrimRight(lines[3], " ") != "solo" {
		t.Errorf("narrow row: %q", lines[3])
	}
	// Shared columns still align: col 0 pads to len("solo") plus the
	// two-space separator before "y".
	if !strings.HasPrefix(lines[4], "x     y") {
		t.Errorf("alignment after ragged rows: %q", lines[4])
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 0) != "" {
		t.Error("empty series")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4}, 4)
	if len([]rune(s)) != 5 {
		t.Fatalf("length: %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[4] != '█' {
		t.Errorf("endpoints: %q", s)
	}
	// Auto-max.
	s2 := Sparkline([]float64{2, 4}, 0)
	if []rune(s2)[1] != '█' {
		t.Errorf("auto-max: %q", s2)
	}
	// All zero does not divide by zero.
	if Sparkline([]float64{0, 0}, 0) == "" {
		t.Error("zero series should render")
	}
	// Out-of-range values clamp.
	s3 := Sparkline([]float64{10}, 4)
	if []rune(s3)[0] != '█' {
		t.Errorf("clamp: %q", s3)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd(nil)
	if m != 0 || s != 0 {
		t.Error("empty stats")
	}
	m, s = MeanStd([]float64{2, 2, 2})
	if m != 2 || s != 0 {
		t.Errorf("constant series: %v %v", m, s)
	}
	m, s = MeanStd([]float64{1, 3})
	if m != 2 || math.Abs(s-1) > 1e-12 {
		t.Errorf("mean=%v std=%v, want 2,1", m, s)
	}
}

// TestCountersConcurrent hammers one Counters set from many goroutines;
// run under -race it pins the internal-mutex fix (Counters used to be
// documented unsafe and raced when the controller and a reader shared
// one).
func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	const workers, iters = 8, 500
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < iters; i++ {
				c.Add("shared", 1)
				c.Add("solo", int64(w))
				_ = c.Get("shared")
				if i%100 == 0 {
					_ = c.Snapshot()
					_ = c.Names()
					_ = c.String()
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := c.Get("shared"); got != workers*iters {
		t.Fatalf("shared = %d, want %d", got, workers*iters)
	}
}
