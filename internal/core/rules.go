package core

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// LossyTag is the reserved tag for packets that left the expected lossless
// paths. Switches map it to a lossy queue; it can only be assigned, never
// escaped (§4: the lossy fallback is the safeguard rule at the end of the
// TCAM list).
const LossyTag = 0

// Rule is one tag-rewriting match-action entry of the paper's conceptual
// switch model: a packet that arrived on ingress port In carrying Tag and
// is about to leave on egress port Out has its tag rewritten to NewTag.
type Rule struct {
	Switch topology.NodeID
	Tag    int
	In     int // ingress port number on Switch
	Out    int // egress port number on Switch
	NewTag int
}

// ruleKey packs a rule match (switch, tag, in, out) into one uint64 —
// 24 bits of switch, 8 of tag, 16 each of port number — so the rule
// table hits Go's fast integer map path on the replay hot loop. The
// field widths cover fabrics orders of magnitude beyond Table 5's;
// packRuleKey panics rather than silently truncating.
type ruleKey uint64

func packRuleKey(sw topology.NodeID, tag, in, out int) ruleKey {
	if uint64(uint32(sw)) >= 1<<24 || uint64(uint32(tag)) >= 1<<8 ||
		uint64(uint32(in)) >= 1<<16 || uint64(uint32(out)) >= 1<<16 {
		panic(fmt.Sprintf("core: rule key out of range: sw=%d tag=%d in=%d out=%d", sw, tag, in, out))
	}
	return ruleKey(uint64(sw)<<40 | uint64(tag)<<32 | uint64(in)<<16 | uint64(out))
}

// packRuleKeyOK is packRuleKey for lookups: out-of-range fields mean the
// key cannot be installed, reported as ok=false instead of a panic.
func packRuleKeyOK(sw topology.NodeID, tag, in, out int) (ruleKey, bool) {
	if sw < 0 || sw >= 1<<24 || tag < 0 || tag >= 1<<8 ||
		in < 0 || in >= 1<<16 || out < 0 || out >= 1<<16 {
		return 0, false
	}
	return ruleKey(uint64(sw)<<40 | uint64(tag)<<32 | uint64(in)<<16 | uint64(out)), true
}

func (k ruleKey) unpack() (sw topology.NodeID, tag, in, out int) {
	return topology.NodeID(k >> 40), int(k >> 32 & 0xff), int(k >> 16 & 0xffff), int(k & 0xffff)
}

// Conflict records two tagged-graph edges that demand different rewrites
// for the same (switch, tag, in, out) match. Conflicts can arise when
// Algorithm 2 merges two old tags at a port but splits their successors;
// DeriveRules resolves them by keeping the smaller NewTag (monotonicity is
// preserved, the packet continues on vertices that exist in the graph, and
// the low rewrite leaves RepairReplay headroom to patch the losing family)
// and reports them so RepairReplay can restore full ELP coverage.
type Conflict struct {
	Rule        Rule // the rule that was kept
	LoserNewTag int  // the rewrite that was discarded
}

// Ruleset is the per-switch tag rewriting table plus the implicit
// boundary behavior of the deployment (§7):
//
//   - ingress from a host-facing port keeps the packet's NIC-stamped tag
//     (injection; hosts stamp tag 1, or their class's start tag);
//   - egress to a host-facing port keeps the tag (delivery: the packet is
//     leaving the fabric);
//   - any other miss assigns LossyTag — the TCAM safeguard entry.
type Ruleset struct {
	g       *topology.Graph
	rules   map[ruleKey]int
	maxTag  int    // largest lossless tag any rule can assign or match
	isHostP []bool // dense by PortID: port attaches a host

	// ids/idKeys is the dense rule-ID index: each installed key's index
	// in Rules() order, so a rule has one stable small integer identity
	// for the flight recorder's TCAM attribution. Built lazily on first
	// ClassifyID/RuleByID and dropped whenever the table mutates.
	ids    map[ruleKey]int
	idKeys []ruleKey
}

// NewRuleset returns an empty ruleset over g with the given largest
// lossless tag.
func NewRuleset(g *topology.Graph, maxTag int) *Ruleset {
	rs := &Ruleset{
		g:       g,
		rules:   make(map[ruleKey]int),
		maxTag:  maxTag,
		isHostP: make([]bool, g.NumPorts()),
	}
	var nbuf []topology.NodeID
	for _, h := range g.Hosts() {
		nbuf = g.Neighbors(h, nbuf[:0])
		for _, sw := range nbuf {
			p := g.PortToPeer(sw, h)
			if p >= 0 {
				rs.isHostP[g.PortOn(sw, p)] = true
			}
		}
	}
	return rs
}

// Graph returns the topology the rules are installed over.
func (rs *Ruleset) Graph() *topology.Graph { return rs.g }

// MaxTag returns the largest lossless tag.
func (rs *Ruleset) MaxTag() int { return rs.maxTag }

// SetMaxTag raises the largest lossless tag (RepairReplay may need to).
func (rs *Ruleset) SetMaxTag(t int) {
	if t > rs.maxTag {
		rs.maxTag = t
	}
}

// IsLossless reports whether tag is one of the lossless tags.
func (rs *Ruleset) IsLossless(tag int) bool { return tag >= 1 && tag <= rs.maxTag }

// HostFacing reports whether port num on sw attaches a host.
func (rs *Ruleset) HostFacing(sw topology.NodeID, num int) bool {
	p := rs.g.PortOn(sw, num)
	return p >= 0 && int(p) < len(rs.isHostP) && rs.isHostP[p]
}

// Add installs a rule, returning the previously installed NewTag and true
// if the key already existed with a different rewrite (the caller decides
// the resolution; Add keeps the new value).
func (rs *Ruleset) Add(r Rule) (old int, conflicted bool) {
	rs.ids, rs.idKeys = nil, nil
	k := packRuleKey(r.Switch, r.Tag, r.In, r.Out)
	if prev, ok := rs.rules[k]; ok && prev != r.NewTag {
		rs.rules[k] = r.NewTag
		if r.NewTag > rs.maxTag {
			rs.maxTag = r.NewTag
		}
		return prev, true
	}
	rs.rules[k] = r.NewTag
	if r.NewTag > rs.maxTag {
		rs.maxTag = r.NewTag
	}
	return 0, false
}

// Lookup returns the exact-match rewrite for (sw, tag, in, out).
func (rs *Ruleset) Lookup(sw topology.NodeID, tag, in, out int) (int, bool) {
	k, ok := packRuleKeyOK(sw, tag, in, out)
	if !ok {
		return 0, false
	}
	v, ok := rs.rules[k]
	return v, ok
}

// Classify runs the full §7 pipeline decision for a packet at switch sw
// that arrived on ingress port in with the given tag and is destined for
// egress port out. It returns the packet's new tag; LossyTag means the
// packet must be enqueued lossy.
func (rs *Ruleset) Classify(sw topology.NodeID, tag, in, out int) int {
	if !rs.IsLossless(tag) {
		return LossyTag // once lossy, always lossy
	}
	if nt, ok := rs.Lookup(sw, tag, in, out); ok {
		return nt // exact TCAM entries precede the defaults
	}
	if rs.HostFacing(sw, in) {
		return tag // injection: trust the NIC stamp
	}
	if rs.HostFacing(sw, out) {
		return tag // delivery: leaving the fabric
	}
	return LossyTag
}

// Len returns the number of installed rules.
func (rs *Ruleset) Len() int { return len(rs.rules) }

// buildIDs materializes the dense rule-ID index in Rules() order.
func (rs *Ruleset) buildIDs() {
	keys := make([]ruleKey, 0, len(rs.rules))
	for k := range rs.rules {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ids := make(map[ruleKey]int, len(keys))
	for i, k := range keys {
		ids[k] = i
	}
	rs.ids, rs.idKeys = ids, keys
}

// ClassifyID is Classify, additionally reporting which exact TCAM entry
// decided (its dense ID — the rule's index in Rules() order); id -1
// means a §7 default action decided instead (injection, delivery, or
// the lossy safeguard).
func (rs *Ruleset) ClassifyID(sw topology.NodeID, tag, in, out int) (newTag, id int) {
	if !rs.IsLossless(tag) {
		return LossyTag, -1
	}
	if k, ok := packRuleKeyOK(sw, tag, in, out); ok {
		if nt, hit := rs.rules[k]; hit {
			if rs.ids == nil {
				rs.buildIDs()
			}
			return nt, rs.ids[k]
		}
	}
	if rs.HostFacing(sw, in) {
		return tag, -1
	}
	if rs.HostFacing(sw, out) {
		return tag, -1
	}
	return LossyTag, -1
}

// RuleByID resolves a dense rule ID back to its rule.
func (rs *Ruleset) RuleByID(id int) (Rule, bool) {
	if rs.ids == nil {
		rs.buildIDs()
	}
	if id < 0 || id >= len(rs.idKeys) {
		return Rule{}, false
	}
	k := rs.idKeys[id]
	sw, tag, in, o := k.unpack()
	return Rule{Switch: sw, Tag: tag, In: in, Out: o, NewTag: rs.rules[k]}, true
}

// Rules returns all rules in deterministic order.
func (rs *Ruleset) Rules() []Rule {
	// The packed key compares exactly like the (switch, tag, in, out)
	// tuple, so sorting the keys sorts the rules.
	keys := make([]ruleKey, 0, len(rs.rules))
	for k := range rs.rules {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Rule, len(keys))
	for i, k := range keys {
		sw, tag, in, o := k.unpack()
		out[i] = Rule{Switch: sw, Tag: tag, In: in, Out: o, NewTag: rs.rules[k]}
	}
	return out
}

// RulesAt returns the rules installed at one switch, in the same order.
func (rs *Ruleset) RulesAt(sw topology.NodeID) []Rule {
	var out []Rule
	for _, r := range rs.Rules() {
		if r.Switch == sw {
			out = append(out, r)
		}
	}
	return out
}

// DeriveRules converts a tagged graph into the match-action rules each
// switch needs: edge (A_i, x) -> (B_j, y) becomes the rule at A matching
// (tag x, InPort i, OutPort toward B) rewriting to y. Edges whose tail
// port is on a host (host-level ELP paths) produce no rule — hosts stamp
// tags, they do not rewrite them.
//
// When two edges demand different rewrites for the same match (see
// Conflict), the smaller NewTag wins: both candidates are >= the match
// tag (monotonic either way) and both target vertices exist in the graph,
// but the smaller one leaves more headroom for RepairReplay to patch the
// losing family's continuation without minting a new tag. Conflicts on
// host-facing egress are benign — the tag is leaving the fabric and
// pauses nothing downstream — so only fabric conflicts are reported,
// sorted by (switch, tag, in, out, losing rewrite).
func DeriveRules(tg *TaggedGraph) (*Ruleset, []Conflict) {
	return deriveRulesN(tg, 0)
}

// deriveRulesN is DeriveRules with an explicit worker count. Workers walk
// disjoint dense vertex ranges into shard-local rule maps; the fold keeps
// the minimum rewrite per key, so the result is independent of both edge
// iteration order and worker count.
func deriveRulesN(tg *TaggedGraph, par int) (*Ruleset, []Conflict) {
	defer telemetry.Default.StartSpan("synth/rules").End()
	type loser struct {
		k  ruleKey
		nt int
	}
	g := tg.g
	// derive fills rules (keeping the minimum rewrite per key) and losers
	// (every rewrite observed losing to a smaller one) from the out-edges
	// of the dense vertex range [lo, hi).
	derive := func(lo, hi int, rules map[ruleKey]int, losers *[]loser) {
		for id := lo; id < hi; id++ {
			from := tg.nodes[id]
			fromPort := g.Port(from.Port)
			sw := fromPort.Node
			if g.Node(sw).Kind == topology.KindHost {
				continue // hosts stamp, they do not rewrite
			}
			for i := tg.succHead[id]; i != 0; i = tg.succPool[i-1].next {
				to := tg.nodes[tg.succPool[i-1].node]
				toPort := g.Port(to.Port)
				out := g.PortToPeer(sw, toPort.Node)
				if out < 0 {
					panic(fmt.Sprintf("core: tagged edge between non-adjacent %s and %s",
						g.Node(sw).Name, g.Node(toPort.Node).Name))
				}
				k := packRuleKey(sw, from.Tag, fromPort.Num, out)
				prev, ok := rules[k]
				switch {
				case !ok:
					rules[k] = to.Tag
				case to.Tag < prev:
					rules[k] = to.Tag
					*losers = append(*losers, loser{k, prev})
				case to.Tag > prev:
					*losers = append(*losers, loser{k, to.Tag})
				}
			}
		}
	}

	rs := NewRuleset(g, tg.maxTag)
	var losers []loser
	w := parallel.Workers(par, len(tg.nodes))
	if w <= 1 {
		derive(0, len(tg.nodes), rs.rules, &losers)
	} else {
		shards := parallel.Shards(len(tg.nodes), w)
		maps := make([]map[ruleKey]int, len(shards))
		shardLosers := make([][]loser, len(shards))
		parallel.ForEachShard(len(tg.nodes), w, func(s parallel.Shard) {
			maps[s.Index] = make(map[ruleKey]int)
			derive(s.Lo, s.Hi, maps[s.Index], &shardLosers[s.Index])
		})
		for i, m := range maps {
			for k, nt := range m {
				prev, ok := rs.rules[k]
				switch {
				case !ok:
					rs.rules[k] = nt
				case nt < prev:
					rs.rules[k] = nt
					losers = append(losers, loser{k, prev})
				case nt > prev:
					losers = append(losers, loser{k, nt})
				}
			}
			losers = append(losers, shardLosers[i]...)
		}
	}

	// Report fabric conflicts: one entry per distinct losing rewrite,
	// against the final (minimum) winner, in canonical order.
	var conflicts []Conflict
	if len(losers) > 0 {
		seen := make(map[loser]bool, len(losers))
		for _, l := range losers {
			if seen[l] {
				continue
			}
			seen[l] = true
			sw, tag, in, out := l.k.unpack()
			peer := g.Port(g.PortOn(sw, out)).Peer
			if peer != topology.InvalidNode && g.Node(peer).Kind == topology.KindHost {
				continue // benign: host-facing egress
			}
			conflicts = append(conflicts, Conflict{
				Rule:        Rule{Switch: sw, Tag: tag, In: in, Out: out, NewTag: rs.rules[l.k]},
				LoserNewTag: l.nt,
			})
		}
		sort.Slice(conflicts, func(i, j int) bool {
			a, b := conflicts[i], conflicts[j]
			if a.Rule.Switch != b.Rule.Switch {
				return a.Rule.Switch < b.Rule.Switch
			}
			if a.Rule.Tag != b.Rule.Tag {
				return a.Rule.Tag < b.Rule.Tag
			}
			if a.Rule.In != b.Rule.In {
				return a.Rule.In < b.Rule.In
			}
			if a.Rule.Out != b.Rule.Out {
				return a.Rule.Out < b.Rule.Out
			}
			return a.LoserNewTag < b.LoserNewTag
		})
	}
	return rs, conflicts
}

// ReplayResult is the outcome of pushing one ELP path through a ruleset.
type ReplayResult struct {
	Tags     []int // tag carried on arrival at each node after the first
	Lossless bool  // true iff the packet stayed lossless end to end
	DropHop  int   // index into the path of the switch where it went lossy (-1)
}

// Replay walks one path through the ruleset, starting with the NIC stamp
// startTag, and reports the tag sequence. It is the runtime ground truth:
// whatever the tagged graph says, the switches execute this.
func (rs *Ruleset) Replay(p routing.Path, startTag int) ReplayResult {
	res := ReplayResult{Lossless: true, DropHop: -1}
	g := rs.g
	tag := startTag
	for i := 0; i+1 < len(p); i++ {
		if i == 0 {
			// The source — a host NIC, a relay server, or (for
			// switch-level paths) the edge switch whose host-facing
			// injection default applies — stamps the start tag.
			res.Tags = append(res.Tags, tag)
			continue
		}
		sw := p[i]
		in := g.PortToPeer(sw, p[i-1])
		out := g.PortToPeer(sw, p[i+1])
		tag = rs.Classify(sw, tag, in, out)
		if tag == LossyTag {
			res.Lossless = false
			res.DropHop = i
			// Tag stays lossy for the remaining hops.
			for j := i; j+1 < len(p); j++ {
				res.Tags = append(res.Tags, LossyTag)
			}
			return res
		}
		res.Tags = append(res.Tags, tag)
	}
	return res
}

// Priorities returns per-hop lossless priorities for a path under this
// ruleset: entry i is the priority occupied on arrival at path node i+1,
// with -1 for lossy hops. It adapts Replay for buffer-dependency analysis
// (package cbd), where tags are priorities and lossy hops contribute no
// dependencies.
func (rs *Ruleset) Priorities(p routing.Path, startTag int) []int {
	res := rs.Replay(p, startTag)
	out := make([]int, len(res.Tags))
	for i, t := range res.Tags {
		if t == LossyTag {
			out[i] = -1
		} else {
			out[i] = t
		}
	}
	return out
}
