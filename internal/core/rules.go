package core

import (
	"fmt"
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
)

// LossyTag is the reserved tag for packets that left the expected lossless
// paths. Switches map it to a lossy queue; it can only be assigned, never
// escaped (§4: the lossy fallback is the safeguard rule at the end of the
// TCAM list).
const LossyTag = 0

// Rule is one tag-rewriting match-action entry of the paper's conceptual
// switch model: a packet that arrived on ingress port In carrying Tag and
// is about to leave on egress port Out has its tag rewritten to NewTag.
type Rule struct {
	Switch topology.NodeID
	Tag    int
	In     int // ingress port number on Switch
	Out    int // egress port number on Switch
	NewTag int
}

type ruleKey struct {
	sw      topology.NodeID
	tag     int
	in, out int
}

// Conflict records two tagged-graph edges that demand different rewrites
// for the same (switch, tag, in, out) match. Conflicts can arise when
// Algorithm 2 merges two old tags at a port but splits their successors;
// DeriveRules resolves them by keeping the larger NewTag (monotonicity is
// preserved and the packet continues on vertices that exist in the graph)
// and reports them so RepairReplay can restore full ELP coverage.
type Conflict struct {
	Rule        Rule // the rule that was kept
	LoserNewTag int  // the rewrite that was discarded
}

// Ruleset is the per-switch tag rewriting table plus the implicit
// boundary behavior of the deployment (§7):
//
//   - ingress from a host-facing port keeps the packet's NIC-stamped tag
//     (injection; hosts stamp tag 1, or their class's start tag);
//   - egress to a host-facing port keeps the tag (delivery: the packet is
//     leaving the fabric);
//   - any other miss assigns LossyTag — the TCAM safeguard entry.
type Ruleset struct {
	g       *topology.Graph
	rules   map[ruleKey]int
	maxTag  int // largest lossless tag any rule can assign or match
	isHostP map[topology.PortID]bool
}

// NewRuleset returns an empty ruleset over g with the given largest
// lossless tag.
func NewRuleset(g *topology.Graph, maxTag int) *Ruleset {
	rs := &Ruleset{
		g:       g,
		rules:   make(map[ruleKey]int),
		maxTag:  maxTag,
		isHostP: make(map[topology.PortID]bool),
	}
	for _, h := range g.Hosts() {
		var nbuf []topology.NodeID
		nbuf = g.Neighbors(h, nbuf)
		for _, sw := range nbuf {
			p := g.PortToPeer(sw, h)
			if p >= 0 {
				rs.isHostP[g.PortOn(sw, p)] = true
			}
		}
	}
	return rs
}

// Graph returns the topology the rules are installed over.
func (rs *Ruleset) Graph() *topology.Graph { return rs.g }

// MaxTag returns the largest lossless tag.
func (rs *Ruleset) MaxTag() int { return rs.maxTag }

// SetMaxTag raises the largest lossless tag (RepairReplay may need to).
func (rs *Ruleset) SetMaxTag(t int) {
	if t > rs.maxTag {
		rs.maxTag = t
	}
}

// IsLossless reports whether tag is one of the lossless tags.
func (rs *Ruleset) IsLossless(tag int) bool { return tag >= 1 && tag <= rs.maxTag }

// HostFacing reports whether port num on sw attaches a host.
func (rs *Ruleset) HostFacing(sw topology.NodeID, num int) bool {
	return rs.isHostP[rs.g.PortOn(sw, num)]
}

// Add installs a rule, returning the previously installed NewTag and true
// if the key already existed with a different rewrite (the caller decides
// the resolution; Add keeps the new value).
func (rs *Ruleset) Add(r Rule) (old int, conflicted bool) {
	k := ruleKey{r.Switch, r.Tag, r.In, r.Out}
	if prev, ok := rs.rules[k]; ok && prev != r.NewTag {
		rs.rules[k] = r.NewTag
		if r.NewTag > rs.maxTag {
			rs.maxTag = r.NewTag
		}
		return prev, true
	}
	rs.rules[k] = r.NewTag
	if r.NewTag > rs.maxTag {
		rs.maxTag = r.NewTag
	}
	return 0, false
}

// Lookup returns the exact-match rewrite for (sw, tag, in, out).
func (rs *Ruleset) Lookup(sw topology.NodeID, tag, in, out int) (int, bool) {
	v, ok := rs.rules[ruleKey{sw, tag, in, out}]
	return v, ok
}

// Classify runs the full §7 pipeline decision for a packet at switch sw
// that arrived on ingress port in with the given tag and is destined for
// egress port out. It returns the packet's new tag; LossyTag means the
// packet must be enqueued lossy.
func (rs *Ruleset) Classify(sw topology.NodeID, tag, in, out int) int {
	if !rs.IsLossless(tag) {
		return LossyTag // once lossy, always lossy
	}
	if nt, ok := rs.Lookup(sw, tag, in, out); ok {
		return nt // exact TCAM entries precede the defaults
	}
	if rs.HostFacing(sw, in) {
		return tag // injection: trust the NIC stamp
	}
	if rs.HostFacing(sw, out) {
		return tag // delivery: leaving the fabric
	}
	return LossyTag
}

// Len returns the number of installed rules.
func (rs *Ruleset) Len() int { return len(rs.rules) }

// Rules returns all rules in deterministic order.
func (rs *Ruleset) Rules() []Rule {
	out := make([]Rule, 0, len(rs.rules))
	for k, nt := range rs.rules {
		out = append(out, Rule{Switch: k.sw, Tag: k.tag, In: k.in, Out: k.out, NewTag: nt})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		if a.In != b.In {
			return a.In < b.In
		}
		return a.Out < b.Out
	})
	return out
}

// RulesAt returns the rules installed at one switch, in the same order.
func (rs *Ruleset) RulesAt(sw topology.NodeID) []Rule {
	var out []Rule
	for _, r := range rs.Rules() {
		if r.Switch == sw {
			out = append(out, r)
		}
	}
	return out
}

// DeriveRules converts a tagged graph into the match-action rules each
// switch needs: edge (A_i, x) -> (B_j, y) becomes the rule at A matching
// (tag x, InPort i, OutPort toward B) rewriting to y. Edges whose tail
// port is on a host (host-level ELP paths) produce no rule — hosts stamp
// tags, they do not rewrite them.
//
// When two edges demand different rewrites for the same match (see
// Conflict), the larger NewTag wins.
func DeriveRules(tg *TaggedGraph) (*Ruleset, []Conflict) {
	rs := NewRuleset(tg.g, tg.maxTag)
	var conflicts []Conflict
	for _, e := range tg.Edges() {
		fromPort := tg.g.Port(e.From.Port)
		toPort := tg.g.Port(e.To.Port)
		sw := fromPort.Node
		if tg.g.Node(sw).Kind == topology.KindHost {
			continue // hosts stamp, they do not rewrite
		}
		out := tg.g.PortToPeer(sw, toPort.Node)
		if out < 0 {
			panic(fmt.Sprintf("core: tagged edge between non-adjacent %s and %s",
				tg.g.Node(sw).Name, tg.g.Node(toPort.Node).Name))
		}
		r := Rule{Switch: sw, Tag: e.From.Tag, In: fromPort.Num, Out: out, NewTag: e.To.Tag}
		if prev, ok := rs.Lookup(sw, r.Tag, r.In, r.Out); ok && prev != r.NewTag {
			// Keep the smaller rewrite: both candidates are >= the match
			// tag (monotonic either way) and both target vertices exist in
			// the graph, but the smaller one leaves more headroom for
			// RepairReplay to patch the losing family's continuation
			// without minting a new tag. Conflicts on host-facing egress
			// are benign — the tag is leaving the fabric and pauses
			// nothing downstream — so only fabric conflicts are reported.
			benign := tg.g.Node(toPort.Node).Kind == topology.KindHost
			if prev < r.NewTag {
				if !benign {
					conflicts = append(conflicts, Conflict{
						Rule:        Rule{Switch: sw, Tag: r.Tag, In: r.In, Out: r.Out, NewTag: prev},
						LoserNewTag: r.NewTag,
					})
				}
				continue
			}
			if !benign {
				conflicts = append(conflicts, Conflict{Rule: r, LoserNewTag: prev})
			}
		}
		rs.Add(r)
	}
	return rs, conflicts
}

// ReplayResult is the outcome of pushing one ELP path through a ruleset.
type ReplayResult struct {
	Tags     []int // tag carried on arrival at each node after the first
	Lossless bool  // true iff the packet stayed lossless end to end
	DropHop  int   // index into the path of the switch where it went lossy (-1)
}

// Replay walks one path through the ruleset, starting with the NIC stamp
// startTag, and reports the tag sequence. It is the runtime ground truth:
// whatever the tagged graph says, the switches execute this.
func (rs *Ruleset) Replay(p routing.Path, startTag int) ReplayResult {
	res := ReplayResult{Lossless: true, DropHop: -1}
	g := rs.g
	tag := startTag
	for i := 0; i+1 < len(p); i++ {
		if i == 0 {
			// The source — a host NIC, a relay server, or (for
			// switch-level paths) the edge switch whose host-facing
			// injection default applies — stamps the start tag.
			res.Tags = append(res.Tags, tag)
			continue
		}
		sw := p[i]
		in := g.PortToPeer(sw, p[i-1])
		out := g.PortToPeer(sw, p[i+1])
		tag = rs.Classify(sw, tag, in, out)
		if tag == LossyTag {
			res.Lossless = false
			res.DropHop = i
			// Tag stays lossy for the remaining hops.
			for j := i; j+1 < len(p); j++ {
				res.Tags = append(res.Tags, LossyTag)
			}
			return res
		}
		res.Tags = append(res.Tags, tag)
	}
	return res
}

// Priorities returns per-hop lossless priorities for a path under this
// ruleset: entry i is the priority occupied on arrival at path node i+1,
// with -1 for lossy hops. It adapts Replay for buffer-dependency analysis
// (package cbd), where tags are priorities and lossy hops contribute no
// dependencies.
func (rs *Ruleset) Priorities(p routing.Path, startTag int) []int {
	res := rs.Replay(p, startTag)
	out := make([]int, len(res.Tags))
	for i, t := range res.Tags {
		if t == LossyTag {
			out[i] = -1
		} else {
			out[i] = t
		}
	}
	return out
}
