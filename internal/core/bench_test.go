package core

import (
	"testing"

	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/topology"
)

func BenchmarkBruteForceTestbed(b *testing.B) {
	c := paper.Testbed()
	set := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	paths := set.Paths()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForce(c.Graph, paths)
	}
}

func BenchmarkVerifyLargeGraph(b *testing.B) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 100, Ports: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	set := elp.ShortestAll(j.Graph, j.Switches)
	sys, err := Synthesize(j.Graph, set.Paths(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Runtime.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	c := paper.Testbed()
	g := c.Graph
	rs := ClosRules(g, 1, 1)
	l1 := g.MustLookup("L1")
	in := g.PortToPeer(l1, g.MustLookup("S2"))
	out := g.PortToPeer(l1, g.MustLookup("S1"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs.Classify(l1, 1, in, out) != 2 {
			b.Fatal("wrong classification")
		}
	}
}

func BenchmarkReplayPath(b *testing.B) {
	c := paper.Testbed()
	rs := ClosRules(c.Graph, 1, 1)
	p := paper.Fig3GreenPath(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !rs.Replay(p, 1).Lossless {
			b.Fatal("lossy")
		}
	}
}
