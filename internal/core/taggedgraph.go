// Package core implements the Tagger tagging system from "Tagger:
// Practical PFC Deadlock Prevention in Data Center Networks" (Hu et al.,
// CoNEXT 2017): the tagged graph G(V,E) over (ingress port, tag) pairs,
// Algorithm 1 (brute-force per-hop tagging), Algorithm 2 (greedy tag
// merging), the Clos-specific optimal scheme, match-action rule synthesis,
// and the deadlock-freedom verifier for the two requirements of §5.1.
package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
)

// TagNode is a vertex of the tagged graph: the paper's "(A_i, x)" — switch
// A's ingress port i may receive lossless packets carrying tag x.
type TagNode struct {
	Port topology.PortID
	Tag  int
}

// TagEdge is a directed edge of the tagged graph: "(A_i, x) -> (B_j, y)" —
// switch A may forward a packet that arrived on A_i with tag x out toward
// B (arriving on B's port j) after rewriting its tag to y.
type TagEdge struct {
	From, To TagNode
}

// adjEntry is one cell of a pooled adjacency list: the dense ID of the
// neighbor plus the pool index (+1) of the next cell, 0 terminating.
type adjEntry struct {
	node int32
	next int32
}

// TaggedGraph is the paper's G(V, E).
//
// Internally every (port, tag) vertex is interned to a dense int32 ID via
// a flat port×tag table, and both adjacency directions live in two shared
// entry pools (per-vertex singly linked lists threaded through one slice).
// The layout makes vertex interning a single array access, adjacency
// traversal pointer-free of maps, and graph construction allocation-lean:
// building a graph costs O(1) allocations regardless of vertex count,
// which is what keeps Algorithm 1/2 fast on Table 5-sized inputs. The
// exported API is unchanged from the map-based implementation.
type TaggedGraph struct {
	g      *topology.Graph
	capTag int     // largest tag the intern table can hold
	tab    []int32 // (port*(capTag+1) + tag) -> dense ID + 1; 0 = absent
	nodes  []TagNode

	succHead []int32 // per dense ID: pool index + 1 of first successor
	predHead []int32
	succPool []adjEntry
	predPool []adjEntry

	numEdges int
	maxTag   int
}

// initialTagCap is the tag capacity graphs start with; it covers every
// merged and Clos graph in the paper so the table is rebuilt only for
// long brute-force chains.
const initialTagCap = 8

// NewTaggedGraph returns an empty tagged graph over the given topology.
func NewTaggedGraph(g *topology.Graph) *TaggedGraph {
	return &TaggedGraph{
		g:      g,
		capTag: initialTagCap,
		tab:    make([]int32, g.NumPorts()*(initialTagCap+1)),
	}
}

// Graph returns the underlying topology.
func (tg *TaggedGraph) Graph() *topology.Graph { return tg.g }

// growTag rebuilds the intern table so tags up to at least t fit.
func (tg *TaggedGraph) growTag(t int) {
	newCap := tg.capTag * 2
	if newCap < t {
		newCap = t
	}
	nt := make([]int32, tg.g.NumPorts()*(newCap+1))
	for p := 0; p < tg.g.NumPorts(); p++ {
		copy(nt[p*(newCap+1):p*(newCap+1)+tg.capTag+1], tg.tab[p*(tg.capTag+1):(p+1)*(tg.capTag+1)])
	}
	tg.tab, tg.capTag = nt, newCap
}

// intern returns the dense ID for n, creating the vertex if absent.
func (tg *TaggedGraph) intern(n TagNode) int32 {
	if n.Tag > tg.capTag {
		tg.growTag(n.Tag)
	}
	slot := int(n.Port)*(tg.capTag+1) + n.Tag
	if id := tg.tab[slot]; id != 0 {
		return id - 1
	}
	id := int32(len(tg.nodes))
	tg.tab[slot] = id + 1
	tg.nodes = append(tg.nodes, n)
	tg.succHead = append(tg.succHead, 0)
	tg.predHead = append(tg.predHead, 0)
	if n.Tag > tg.maxTag {
		tg.maxTag = n.Tag
	}
	return id
}

// lookup returns the dense ID for n, or -1 when the vertex is absent.
func (tg *TaggedGraph) lookup(n TagNode) int32 {
	if n.Tag < 0 || n.Tag > tg.capTag {
		return -1
	}
	return tg.tab[int(n.Port)*(tg.capTag+1)+n.Tag] - 1
}

// AddNode inserts a (port, tag) vertex.
func (tg *TaggedGraph) AddNode(n TagNode) { tg.intern(n) }

// addEdgeIDs inserts the directed edge between two interned vertices,
// returning false when it already existed.
func (tg *TaggedGraph) addEdgeIDs(from, to int32) bool {
	for i := tg.succHead[from]; i != 0; i = tg.succPool[i-1].next {
		if tg.succPool[i-1].node == to {
			return false
		}
	}
	tg.succPool = append(tg.succPool, adjEntry{node: to, next: tg.succHead[from]})
	tg.succHead[from] = int32(len(tg.succPool))
	tg.predPool = append(tg.predPool, adjEntry{node: from, next: tg.predHead[to]})
	tg.predHead[to] = int32(len(tg.predPool))
	tg.numEdges++
	return true
}

// AddEdge inserts both endpoints and the directed edge between them.
func (tg *TaggedGraph) AddEdge(from, to TagNode) {
	tg.addEdgeIDs(tg.intern(from), tg.intern(to))
}

// HasNode reports whether the vertex exists.
func (tg *TaggedGraph) HasNode(n TagNode) bool { return tg.lookup(n) >= 0 }

// HasEdge reports whether the directed edge exists.
func (tg *TaggedGraph) HasEdge(from, to TagNode) bool {
	f := tg.lookup(from)
	t := tg.lookup(to)
	if f < 0 || t < 0 {
		return false
	}
	for i := tg.succHead[f]; i != 0; i = tg.succPool[i-1].next {
		if tg.succPool[i-1].node == t {
			return true
		}
	}
	return false
}

// NumNodes returns |V|.
func (tg *TaggedGraph) NumNodes() int { return len(tg.nodes) }

// NumEdges returns |E|.
func (tg *TaggedGraph) NumEdges() int { return tg.numEdges }

// MaxTag returns the paper's T: the largest tag of any vertex.
func (tg *TaggedGraph) MaxTag() int { return tg.maxTag }

// Tags returns the sorted set of distinct tags in use. Its length is the
// number of lossless priorities the tagging system needs.
func (tg *TaggedGraph) Tags() []int {
	seen := make([]bool, tg.maxTag+1)
	for _, n := range tg.nodes {
		seen[n.Tag] = true
	}
	var out []int
	for t, ok := range seen {
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// NumTags returns the number of distinct tags (lossless priorities used).
func (tg *TaggedGraph) NumTags() int { return len(tg.Tags()) }

// SwitchTags returns the sorted distinct tags appearing on the ingress
// ports of forwarding nodes (switches, and relay servers in
// server-centric topologies). This is the number of lossless queues the
// system needs: tags that appear only on plain host ingress (the final
// hop of host-level paths) consume no switch queue.
func (tg *TaggedGraph) SwitchTags() []int {
	seen := make([]bool, tg.maxTag+1)
	for _, n := range tg.nodes {
		owner := tg.g.Port(n.Port).Node
		if tg.g.Node(owner).Kind.Forwards() {
			seen[n.Tag] = true
		}
	}
	var out []int
	for t, ok := range seen {
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// NumSwitchTags returns len(SwitchTags()).
func (tg *TaggedGraph) NumSwitchTags() int { return len(tg.SwitchTags()) }

// Nodes returns all vertices in a deterministic order.
func (tg *TaggedGraph) Nodes() []TagNode {
	out := make([]TagNode, len(tg.nodes))
	copy(out, tg.nodes)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tag != out[j].Tag {
			return out[i].Tag < out[j].Tag
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// Edges returns all edges in a deterministic order.
func (tg *TaggedGraph) Edges() []TagEdge {
	out := make([]TagEdge, 0, tg.numEdges)
	for id := range tg.nodes {
		from := tg.nodes[id]
		for i := tg.succHead[id]; i != 0; i = tg.succPool[i-1].next {
			out = append(out, TagEdge{From: from, To: tg.nodes[tg.succPool[i-1].node]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			if a.From.Tag != b.From.Tag {
				return a.From.Tag < b.From.Tag
			}
			return a.From.Port < b.From.Port
		}
		if a.To.Tag != b.To.Tag {
			return a.To.Tag < b.To.Tag
		}
		return a.To.Port < b.To.Port
	})
	return out
}

// Succ returns the successors of n (freshly allocated; order unspecified).
func (tg *TaggedGraph) Succ(n TagNode) []TagNode {
	id := tg.lookup(n)
	if id < 0 {
		return nil
	}
	var out []TagNode
	for i := tg.succHead[id]; i != 0; i = tg.succPool[i-1].next {
		out = append(out, tg.nodes[tg.succPool[i-1].node])
	}
	return out
}

// Pred returns the predecessors of n (freshly allocated; order unspecified).
func (tg *TaggedGraph) Pred(n TagNode) []TagNode {
	id := tg.lookup(n)
	if id < 0 {
		return nil
	}
	var out []TagNode
	for i := tg.predHead[id]; i != 0; i = tg.predPool[i-1].next {
		out = append(out, tg.nodes[tg.predPool[i-1].node])
	}
	return out
}

// mergeFrom copies every vertex and edge of other into tg. Vertices are
// visited in other's insertion order, so merging the same shard sequence
// always produces the same graph — the deterministic-merge step of the
// parallel builders.
func (tg *TaggedGraph) mergeFrom(other *TaggedGraph) {
	ids := make([]int32, len(other.nodes))
	for i, n := range other.nodes {
		ids[i] = tg.intern(n)
	}
	for id := range other.nodes {
		for i := other.succHead[id]; i != 0; i = other.succPool[i-1].next {
			tg.addEdgeIDs(ids[id], ids[other.succPool[i-1].node])
		}
	}
}

// NodeString renders a vertex using the paper's (A_i, x) notation.
func (tg *TaggedGraph) NodeString(n TagNode) string {
	p := tg.g.Port(n.Port)
	return fmt.Sprintf("(%s_%d,%d)", tg.g.Node(p.Node).Name, p.Num, n.Tag)
}

// Dump renders the tagged graph grouped by tag, in the style of the
// paper's Figure 5(b)/(c): each G_k's vertices in (Switch_port, tag)
// notation followed by the cross-tag edges.
func (tg *TaggedGraph) Dump(w io.Writer) {
	nodes := tg.Nodes()
	for _, k := range tg.Tags() {
		fmt.Fprintf(w, "G_%d:", k)
		for _, n := range nodes {
			if n.Tag == k {
				fmt.Fprintf(w, " %s", tg.NodeString(n))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "edges:")
	for _, e := range tg.Edges() {
		arrow := "->"
		if e.From.Tag != e.To.Tag {
			arrow = "=>" // tag transition
		}
		fmt.Fprintf(w, "  %s %s %s\n", tg.NodeString(e.From), arrow, tg.NodeString(e.To))
	}
}

// ingressPortID returns the global port of node `to` that faces node
// `from`, panicking when the nodes are not adjacent: tagged graphs are
// built from validated paths, so non-adjacency is a programming error.
func ingressPortID(g *topology.Graph, from, to topology.NodeID) topology.PortID {
	num := g.PortToPeer(to, from)
	if num < 0 {
		panic(fmt.Sprintf("core: %s and %s are not adjacent",
			g.Node(from).Name, g.Node(to).Name))
	}
	return g.PortOn(to, num)
}

// addPath walks one expected lossless path, inserting the Algorithm 1
// vertex chain (tag = hop index) into tg.
func (tg *TaggedGraph) addPath(r routing.Path) {
	g := tg.g
	var last int32
	haveLast := false
	for i := 1; i < len(r); i++ {
		id := tg.intern(TagNode{Port: ingressPortID(g, r[i-1], r[i]), Tag: i})
		if haveLast {
			tg.addEdgeIDs(last, id)
		}
		last, haveLast = id, true
	}
}

// BruteForce implements the paper's Algorithm 1: walk every expected
// lossless path and increase the tag by one at every hop. The resulting
// tagged graph trivially satisfies both deadlock-freedom requirements:
// each G_k has no edges at all (every edge goes k -> k+1), and every tag
// change is monotonic.
//
// Tags start at 1 on the first hop: for a path n0 > n1 > ... > nm the
// vertex at n1's ingress carries tag 1 and the vertex at nm's ingress
// carries tag m, matching the walk-through in the paper's Figure 5 /
// Table 3 where tag T+1 appears only at destination endpoints.
func BruteForce(g *topology.Graph, paths []routing.Path) *TaggedGraph {
	return BruteForceN(g, paths, 1)
}
