// Package core implements the Tagger tagging system from "Tagger:
// Practical PFC Deadlock Prevention in Data Center Networks" (Hu et al.,
// CoNEXT 2017): the tagged graph G(V,E) over (ingress port, tag) pairs,
// Algorithm 1 (brute-force per-hop tagging), Algorithm 2 (greedy tag
// merging), the Clos-specific optimal scheme, match-action rule synthesis,
// and the deadlock-freedom verifier for the two requirements of §5.1.
package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
)

// TagNode is a vertex of the tagged graph: the paper's "(A_i, x)" — switch
// A's ingress port i may receive lossless packets carrying tag x.
type TagNode struct {
	Port topology.PortID
	Tag  int
}

// TagEdge is a directed edge of the tagged graph: "(A_i, x) -> (B_j, y)" —
// switch A may forward a packet that arrived on A_i with tag x out toward
// B (arriving on B's port j) after rewriting its tag to y.
type TagEdge struct {
	From, To TagNode
}

// TaggedGraph is the paper's G(V, E). It indexes edges both ways so the
// verifier and Algorithm 2 can walk it efficiently.
type TaggedGraph struct {
	g       *topology.Graph
	nodes   map[TagNode]struct{}
	succ    map[TagNode][]TagNode
	pred    map[TagNode][]TagNode
	edgeSet map[TagEdge]struct{}
	maxTag  int
}

// NewTaggedGraph returns an empty tagged graph over the given topology.
func NewTaggedGraph(g *topology.Graph) *TaggedGraph {
	return &TaggedGraph{
		g:       g,
		nodes:   make(map[TagNode]struct{}),
		succ:    make(map[TagNode][]TagNode),
		pred:    make(map[TagNode][]TagNode),
		edgeSet: make(map[TagEdge]struct{}),
	}
}

// Graph returns the underlying topology.
func (tg *TaggedGraph) Graph() *topology.Graph { return tg.g }

// AddNode inserts a (port, tag) vertex.
func (tg *TaggedGraph) AddNode(n TagNode) {
	if _, ok := tg.nodes[n]; ok {
		return
	}
	tg.nodes[n] = struct{}{}
	if n.Tag > tg.maxTag {
		tg.maxTag = n.Tag
	}
}

// AddEdge inserts both endpoints and the directed edge between them.
func (tg *TaggedGraph) AddEdge(from, to TagNode) {
	tg.AddNode(from)
	tg.AddNode(to)
	e := TagEdge{from, to}
	if _, ok := tg.edgeSet[e]; ok {
		return
	}
	tg.edgeSet[e] = struct{}{}
	tg.succ[from] = append(tg.succ[from], to)
	tg.pred[to] = append(tg.pred[to], from)
}

// HasNode reports whether the vertex exists.
func (tg *TaggedGraph) HasNode(n TagNode) bool {
	_, ok := tg.nodes[n]
	return ok
}

// HasEdge reports whether the directed edge exists.
func (tg *TaggedGraph) HasEdge(from, to TagNode) bool {
	_, ok := tg.edgeSet[TagEdge{from, to}]
	return ok
}

// NumNodes returns |V|.
func (tg *TaggedGraph) NumNodes() int { return len(tg.nodes) }

// NumEdges returns |E|.
func (tg *TaggedGraph) NumEdges() int { return len(tg.edgeSet) }

// MaxTag returns the paper's T: the largest tag of any vertex.
func (tg *TaggedGraph) MaxTag() int { return tg.maxTag }

// Tags returns the sorted set of distinct tags in use. Its length is the
// number of lossless priorities the tagging system needs.
func (tg *TaggedGraph) Tags() []int {
	seen := map[int]bool{}
	for n := range tg.nodes {
		seen[n.Tag] = true
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// NumTags returns the number of distinct tags (lossless priorities used).
func (tg *TaggedGraph) NumTags() int { return len(tg.Tags()) }

// SwitchTags returns the sorted distinct tags appearing on the ingress
// ports of forwarding nodes (switches, and relay servers in
// server-centric topologies). This is the number of lossless queues the
// system needs: tags that appear only on plain host ingress (the final
// hop of host-level paths) consume no switch queue.
func (tg *TaggedGraph) SwitchTags() []int {
	seen := map[int]bool{}
	for n := range tg.nodes {
		owner := tg.g.Port(n.Port).Node
		if tg.g.Node(owner).Kind.Forwards() {
			seen[n.Tag] = true
		}
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// NumSwitchTags returns len(SwitchTags()).
func (tg *TaggedGraph) NumSwitchTags() int { return len(tg.SwitchTags()) }

// Nodes returns all vertices in a deterministic order.
func (tg *TaggedGraph) Nodes() []TagNode {
	out := make([]TagNode, 0, len(tg.nodes))
	for n := range tg.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tag != out[j].Tag {
			return out[i].Tag < out[j].Tag
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// Edges returns all edges in a deterministic order.
func (tg *TaggedGraph) Edges() []TagEdge {
	out := make([]TagEdge, 0, len(tg.edgeSet))
	for e := range tg.edgeSet {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			if a.From.Tag != b.From.Tag {
				return a.From.Tag < b.From.Tag
			}
			return a.From.Port < b.From.Port
		}
		if a.To.Tag != b.To.Tag {
			return a.To.Tag < b.To.Tag
		}
		return a.To.Port < b.To.Port
	})
	return out
}

// Succ returns the successor list of n (shared slice; do not modify).
func (tg *TaggedGraph) Succ(n TagNode) []TagNode { return tg.succ[n] }

// Pred returns the predecessor list of n (shared slice; do not modify).
func (tg *TaggedGraph) Pred(n TagNode) []TagNode { return tg.pred[n] }

// NodeString renders a vertex using the paper's (A_i, x) notation.
func (tg *TaggedGraph) NodeString(n TagNode) string {
	p := tg.g.Port(n.Port)
	return fmt.Sprintf("(%s_%d,%d)", tg.g.Node(p.Node).Name, p.Num, n.Tag)
}

// Dump renders the tagged graph grouped by tag, in the style of the
// paper's Figure 5(b)/(c): each G_k's vertices in (Switch_port, tag)
// notation followed by the cross-tag edges.
func (tg *TaggedGraph) Dump(w io.Writer) {
	for _, k := range tg.Tags() {
		fmt.Fprintf(w, "G_%d:", k)
		for _, n := range tg.Nodes() {
			if n.Tag == k {
				fmt.Fprintf(w, " %s", tg.NodeString(n))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "edges:")
	for _, e := range tg.Edges() {
		arrow := "->"
		if e.From.Tag != e.To.Tag {
			arrow = "=>" // tag transition
		}
		fmt.Fprintf(w, "  %s %s %s\n", tg.NodeString(e.From), arrow, tg.NodeString(e.To))
	}
}

// subgraphPerTag builds, for tag k, the paper's G_k: a directed graph over
// ports whose edges are the tagged edges with both endpoints carrying k.
func (tg *TaggedGraph) subgraphPerTag(k int) map[topology.PortID][]topology.PortID {
	adj := make(map[topology.PortID][]topology.PortID)
	for e := range tg.edgeSet {
		if e.From.Tag == k && e.To.Tag == k {
			adj[e.From.Port] = append(adj[e.From.Port], e.To.Port)
		}
	}
	return adj
}

// ingressPortID returns the global port of node `to` that faces node
// `from`, panicking when the nodes are not adjacent: tagged graphs are
// built from validated paths, so non-adjacency is a programming error.
func ingressPortID(g *topology.Graph, from, to topology.NodeID) topology.PortID {
	num := g.PortToPeer(to, from)
	if num < 0 {
		panic(fmt.Sprintf("core: %s and %s are not adjacent",
			g.Node(from).Name, g.Node(to).Name))
	}
	return g.PortOn(to, num)
}

// BruteForce implements the paper's Algorithm 1: walk every expected
// lossless path and increase the tag by one at every hop. The resulting
// tagged graph trivially satisfies both deadlock-freedom requirements:
// each G_k has no edges at all (every edge goes k -> k+1), and every tag
// change is monotonic.
//
// Tags start at 1 on the first hop: for a path n0 > n1 > ... > nm the
// vertex at n1's ingress carries tag 1 and the vertex at nm's ingress
// carries tag m, matching the walk-through in the paper's Figure 5 /
// Table 3 where tag T+1 appears only at destination endpoints.
func BruteForce(g *topology.Graph, paths []routing.Path) *TaggedGraph {
	tg := NewTaggedGraph(g)
	for _, r := range paths {
		tag := 1
		var last TagNode
		haveLast := false
		for i := 1; i < len(r); i++ {
			n := TagNode{Port: ingressPortID(g, r[i-1], r[i]), Tag: tag}
			tg.AddNode(n)
			if haveLast {
				tg.AddEdge(last, n)
			}
			last, haveLast = n, true
			tag++
		}
	}
	return tg
}
