package core

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// Repair records a rule synthesized by RepairReplay to restore lossless
// coverage of an ELP path after rule-conflict resolution discarded a
// rewrite.
type Repair struct {
	Rule Rule
	Path routing.Path // the path that needed it
}

// RepairReplay replays every ELP path through the ruleset and synthesizes
// the missing rules so that no expected lossless path ever falls into the
// lossy queue. A missing rule (tag x, in, out) is filled with NewTag x
// when the same-tag port graph G_x stays acyclic, and x+1 otherwise —
// the same greedy spirit as Algorithm 2, applied at rule granularity.
//
// For rulesets derived without conflicts this is a no-op. It returns the
// synthesized rules (possibly none).
func RepairReplay(rs *Ruleset, paths []routing.Path, startTag int) []Repair {
	g := rs.g
	// Seed the per-tag port adjacency from every same-tag rule: this is a
	// superset of the same-tag edges runtime traffic can create, so the
	// incremental acyclicity checks below are conservative.
	adj := make(map[int]map[topology.PortID][]topology.PortID)
	ensure := func(tag int) map[topology.PortID][]topology.PortID {
		m := adj[tag]
		if m == nil {
			m = make(map[topology.PortID][]topology.PortID)
			adj[tag] = m
		}
		return m
	}
	addRuleEdge := func(r Rule) {
		if r.Tag != r.NewTag {
			return
		}
		from := g.PortOn(r.Switch, r.In)
		peer := g.Port(g.PortOn(r.Switch, r.Out)).Peer
		if peer == topology.InvalidNode || g.Node(peer).Kind == topology.KindHost {
			return
		}
		toNum := g.PortToPeer(peer, r.Switch)
		to := g.PortOn(peer, toNum)
		ensure(r.Tag)[from] = append(adj[r.Tag][from], to)
	}
	for _, r := range rs.Rules() {
		addRuleEdge(r)
	}

	var repairs []Repair
	for _, p := range paths {
		tag := startTag
		for i := 1; i+1 < len(p); i++ { // the source stamps, it never rewrites
			sw := p[i]
			in := g.PortToPeer(sw, p[i-1])
			out := g.PortToPeer(sw, p[i+1])
			next := rs.Classify(sw, tag, in, out)
			if next != LossyTag {
				tag = next
				continue
			}
			// Fabric miss on an expected lossless path: synthesize.
			newTag := tag
			from := g.PortOn(sw, in)
			to := ingressPortID(g, sw, p[i+1])
			m := ensure(tag)
			m[from] = append(m[from], to)
			if !acyclicWith(m) {
				// Undo and bump.
				m[from] = m[from][:len(m[from])-1]
				newTag = tag + 1
				rs.SetMaxTag(newTag)
			}
			r := Rule{Switch: sw, Tag: tag, In: in, Out: out, NewTag: newTag}
			rs.Add(r)
			repairs = append(repairs, Repair{Rule: r, Path: p})
			tag = newTag
		}
	}
	return repairs
}

// BuildRuleGraph replays every path through the ruleset and materializes
// the runtime tagged graph: the (ingress port, tag) vertices and edges
// that actual packets on those paths traverse. This is the graph whose
// acyclicity-per-tag and monotonicity determine real deadlock freedom —
// the authoritative object to Verify.
//
// Lossy transitions produce no vertices or edges: packets in the lossy
// queue never generate PFC and so never contribute buffer dependencies.
// It also returns the paths that did not stay lossless (empty when the
// ruleset fully covers the ELP).
func BuildRuleGraph(rs *Ruleset, paths []routing.Path, startTag int) (*TaggedGraph, []routing.Path) {
	return buildRuleGraphN(rs, paths, startTag, 0)
}
