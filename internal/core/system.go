package core

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Options tunes Synthesize.
type Options struct {
	// SkipMerge keeps the brute-force tags (Algorithm 1 only). Used by the
	// ablation benchmarks to quantify what Algorithm 2 buys.
	SkipMerge bool
	// StartTag is the tag NICs stamp on fresh packets. Defaults to 1; the
	// multi-class composition of §6 passes higher values for later
	// application classes.
	StartTag int
	// Workers bounds the goroutines each synthesis stage fans out to:
	// 0 means GOMAXPROCS, 1 forces the serial path. Every worker count
	// produces the same system (see internal/parallel).
	Workers int
}

// System is a complete synthesized Tagger deployment for one topology and
// ELP set: the tagging rules to install plus the verified runtime tagged
// graph they induce.
type System struct {
	Graph *topology.Graph
	ELP   []routing.Path

	// BruteForce is Algorithm 1's graph; Merged is Algorithm 2's (nil when
	// Options.SkipMerge, identical tags to BruteForce then).
	BruteForce *TaggedGraph
	Merged     *TaggedGraph

	// Rules is what gets installed on switches.
	Rules *Ruleset

	// Runtime is the tagged graph actual packets traverse under Rules —
	// the graph Verify() proved deadlock-free.
	Runtime *TaggedGraph

	// Conflicts and Repairs record the (rare) rule-consistency fixes; both
	// empty for every topology in the paper's evaluation.
	Conflicts []Conflict
	Repairs   []Repair
}

// NumLosslessQueues returns the number of lossless priorities the system
// needs: the count of distinct tags that can appear on in-flight lossless
// packets.
func (s *System) NumLosslessQueues() int { return s.Runtime.NumTags() }

// Synthesize runs the full pipeline of the paper on any topology and ELP:
// Algorithm 1, Algorithm 2, rule derivation, replay repair, and final
// verification of the runtime graph. The returned system is guaranteed
// deadlock-free; an error means a bug in this package, not bad input
// (any loop-free ELP admits a valid tagging).
func Synthesize(g *topology.Graph, paths []routing.Path, opts Options) (*System, error) {
	defer telemetry.Default.StartSpan("synth").End()
	if opts.StartTag == 0 {
		opts.StartTag = 1
	}
	if opts.StartTag != 1 {
		return nil, fmt.Errorf("core: StartTag %d: synthesis tags paths from 1; use multiclass composition for higher classes", opts.StartTag)
	}
	s := &System{Graph: g, ELP: paths}
	s.BruteForce = BruteForceN(g, paths, opts.Workers)
	if err := s.BruteForce.Verify(); err != nil {
		return nil, fmt.Errorf("brute-force graph: %w", err)
	}
	tagged := s.BruteForce
	if !opts.SkipMerge {
		s.Merged = GreedyMinimize(s.BruteForce)
		if err := s.Merged.Verify(); err != nil {
			return nil, fmt.Errorf("merged graph: %w", err)
		}
		tagged = s.Merged
	}
	s.Rules, s.Conflicts = deriveRulesN(tagged, opts.Workers)
	// Build the runtime graph first: its replay doubles as the repair
	// pre-scan. Only when some path went lossy (possible only after rule
	// conflicts) does the serial repair pass run — followed by a rebuild
	// under the repaired rules.
	var violations []routing.Path
	s.Runtime, violations = buildRuleGraphN(s.Rules, paths, opts.StartTag, opts.Workers)
	if len(violations) > 0 {
		s.Repairs = RepairReplay(s.Rules, paths, opts.StartTag)
		s.Runtime, violations = buildRuleGraphN(s.Rules, paths, opts.StartTag, opts.Workers)
	}
	if len(violations) > 0 {
		return nil, fmt.Errorf("core: %d ELP paths not lossless after repair (first: %s)",
			len(violations), violations[0].String(g))
	}
	if err := s.Runtime.Verify(); err != nil {
		return nil, fmt.Errorf("runtime graph: %w", err)
	}
	return s, nil
}
