package core

import (
	"testing"
	"testing/quick"

	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/routing"
	"repro/internal/topology"
)

// maxBounces returns the largest bounce count any ELP path realizes; on a
// small fabric it can be less than the requested k because more bounces
// would force a node revisit.
func maxBounces(g *topology.Graph, paths []routing.Path) int {
	m := 0
	for _, p := range paths {
		if b := p.Bounces(g); b > m {
			m = b
		}
	}
	return m
}

func TestClosSynthesizeOptimalQueues(t *testing.T) {
	c := paper.Testbed()
	for k := 0; k <= 3; k++ {
		s := elp.KBounce(c.Graph, c.ToRs, k, nil)
		sys, err := ClosSynthesize(c.Graph, s.Paths(), k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// The testbed realizes at most 2 loop-free bounces, so the queue
		// count is bounded by what the ELP actually contains.
		want := MinLosslessQueues(maxBounces(c.Graph, s.Paths()))
		if got := sys.NumLosslessQueues(); got != want {
			t.Errorf("k=%d: queues = %d, want optimal %d", k, got, want)
		}
	}
}

func TestClosRulesBumpOnlyOnBounce(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	rs := ClosRules(g, 1, 1)
	n := func(name string) topology.NodeID { return g.MustLookup(name) }

	// Leaf L1: ingress from S1 (up), egress to S2 (up) = bounce: 1 -> 2.
	l1 := n("L1")
	inS1 := g.PortToPeer(l1, n("S1"))
	outS2 := g.PortToPeer(l1, n("S2"))
	if got := rs.Classify(l1, 1, inS1, outS2); got != 2 {
		t.Errorf("bounce at leaf = %d, want 2", got)
	}
	// Second bounce exceeds the budget: tag 2 bouncing goes lossy.
	if got := rs.Classify(l1, 2, inS1, outS2); got != LossyTag {
		t.Errorf("second bounce = %d, want lossy", got)
	}
	// Descending through the leaf keeps the tag.
	outT1 := g.PortToPeer(l1, n("T1"))
	if got := rs.Classify(l1, 1, inS1, outT1); got != 1 {
		t.Errorf("descend = %d, want 1", got)
	}
	// Ascending through the leaf keeps the tag.
	inT1 := g.PortToPeer(l1, n("T1"))
	if got := rs.Classify(l1, 1, inT1, outS2); got != 1 {
		t.Errorf("ascend = %d, want 1", got)
	}
	// Turning at the leaf apex (ToR to ToR same pod) keeps the tag.
	outT2 := g.PortToPeer(l1, n("T2"))
	if got := rs.Classify(l1, 1, inT1, outT2); got != 1 {
		t.Errorf("apex turn = %d, want 1", got)
	}
	// ToR bounce: ingress from L1, egress to L2.
	t1 := n("T1")
	if got := rs.Classify(t1, 1, g.PortToPeer(t1, n("L1")), g.PortToPeer(t1, n("L2"))); got != 2 {
		t.Errorf("ToR bounce = %d, want 2", got)
	}
	// Spine never bumps: L-in, L-out keeps.
	s1 := n("S1")
	if got := rs.Classify(s1, 1, g.PortToPeer(s1, n("L1")), g.PortToPeer(s1, n("L3"))); got != 1 {
		t.Errorf("spine transit = %d, want 1", got)
	}
}

func TestClosReplayCountsBounces(t *testing.T) {
	c := paper.Testbed()
	rs := ClosRules(c.Graph, 2, 1)
	green := paper.Fig3GreenPath(c)
	res := rs.Replay(green, 1)
	if !res.Lossless {
		t.Fatal("green path lossy under k=2 rules")
	}
	// Tags: L3=1, S1=1, L1=1, then bounce: S2=2, L2=2, T1=2.
	want := []int{1, 1, 1, 2, 2, 2}
	for i, w := range want {
		if res.Tags[i] != w {
			t.Errorf("tag[%d] = %d, want %d (tags=%v)", i, res.Tags[i], w, res.Tags)
		}
	}
}

func TestClosRulesRejectOverBudgetPath(t *testing.T) {
	// A 2-bounce path under k=1 rules must go lossy at the second bounce.
	c := paper.Testbed()
	g := c.Graph
	rs := ClosRules(g, 1, 1)
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	// T1 up L1 up S1 down L3 (bounce 1) up S2 down L1... revisits; use a
	// ToR bounce instead: T1>L1>T2 (descend to T2) then T2>L2 (bounce 1 at
	// T2) >S?... Build: T3>L3>S1>L1(b1)>S2>L2(b2 would need down-up at L2)…
	// Simplest legal 2-bounce: T3>L3>S1>L1>S2>L4>T4 is 1 bounce; append a
	// ToR bounce by ending T4 then up again is a new path. Use the KBounce
	// enumerator to find a genuine 2-bounce path instead of hand-rolling.
	s := elp.KBounce(g, c.ToRs, 2, nil)
	var twoBounce routing.Path
	for _, p := range s.Paths() {
		if p.Bounces(g) == 2 {
			twoBounce = p
			break
		}
	}
	if twoBounce == nil {
		t.Fatal("no 2-bounce path found")
	}
	res := rs.Replay(twoBounce, 1)
	if res.Lossless {
		t.Fatalf("2-bounce path %s stayed lossless under k=1", twoBounce.String(g))
	}
	_ = n
}

func TestClosSynthesizeErrorOnOverBudgetELP(t *testing.T) {
	c := paper.Testbed()
	s := elp.KBounce(c.Graph, c.ToRs, 2, nil)
	if _, err := ClosSynthesize(c.Graph, s.Paths(), 1); err == nil {
		t.Fatal("expected error: ELP has 2-bounce paths but budget is 1")
	}
}

func TestClosRulesOnFatTree(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph
	s := elp.KBounce(g, ft.Edges, 1, nil)
	sys, err := ClosSynthesize(g, s.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NumLosslessQueues(); got != 2 {
		t.Errorf("fat-tree k=1 queues = %d, want 2", got)
	}
}

func TestClosBiggerFabric(t *testing.T) {
	c, err := topology.NewClos(topology.ClosConfig{
		Pods: 3, ToRsPerPod: 3, LeafsPerPod: 2, Spines: 4, HostsPerToR: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	sys, err := ClosSynthesize(c.Graph, s.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NumLosslessQueues(); got != 2 {
		t.Errorf("queues = %d, want 2", got)
	}
	if err := sys.Runtime.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMinLosslessQueues(t *testing.T) {
	for k := 0; k < 5; k++ {
		if MinLosslessQueues(k) != k+1 {
			t.Errorf("MinLosslessQueues(%d) = %d", k, MinLosslessQueues(k))
		}
	}
}

// Property: for random Clos shapes and k in {0,1}, the Clos scheme always
// verifies deadlock-free with exactly k+1 queues.
func TestClosSchemeProperty(t *testing.T) {
	f := func(pods, tors, leafs, spines, kk uint8) bool {
		cfg := topology.ClosConfig{
			Pods:        int(pods%2) + 2,
			ToRsPerPod:  int(tors%2) + 1,
			LeafsPerPod: int(leafs%2) + 1,
			Spines:      int(spines%2) + 1,
			HostsPerToR: 1,
		}
		c, err := topology.NewClos(cfg)
		if err != nil {
			return false
		}
		k := int(kk % 2)
		s := elp.KBounce(c.Graph, c.ToRs, k, nil)
		sys, err := ClosSynthesize(c.Graph, s.Paths(), k)
		if err != nil {
			t.Logf("cfg=%+v k=%d: %v", cfg, k, err)
			return false
		}
		return sys.NumLosslessQueues() == maxBounces(c.Graph, s.Paths())+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
