package core

import (
	"testing"
	"testing/quick"

	"repro/internal/elp"
	"repro/internal/topology"
)

// Property: Synthesize on arbitrary random-path ELPs over Jellyfish
// topologies always produces a verified deadlock-free system with zero
// lossless violations — the paper's headline guarantee ("Once LP is given,
// Tagger guarantees that there will be no deadlock").
func TestSynthesizeAlwaysDeadlockFreeOnRandomELP(t *testing.T) {
	f := func(seed int64, nSw, nPaths uint8) bool {
		cfg := topology.JellyfishConfig{
			Switches: int(nSw%12) + 4,
			Ports:    6,
			Seed:     seed,
		}
		j, err := topology.NewJellyfish(cfg)
		if err != nil {
			t.Logf("jellyfish: %v", err)
			return false
		}
		paths := elp.RandomPaths(j.Graph, j.Switches, int(nPaths%40)+5, 6, seed^0x5ee)
		sys, err := Synthesize(j.Graph, paths.Paths(), Options{})
		if err != nil {
			t.Logf("synthesize: %v", err)
			return false
		}
		return sys.Runtime.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: GreedyMinimize preserves both deadlock-freedom requirements
// and never uses more tags than brute force.
func TestGreedyPreservesInvariants(t *testing.T) {
	f := func(seed int64, nSw, nPaths uint8) bool {
		cfg := topology.JellyfishConfig{
			Switches: int(nSw%10) + 4,
			Ports:    6,
			Seed:     seed,
		}
		j, err := topology.NewJellyfish(cfg)
		if err != nil {
			return false
		}
		paths := elp.RandomPaths(j.Graph, j.Switches, int(nPaths%30)+5, 5, seed^0xabc)
		bf := BruteForce(j.Graph, paths.Paths())
		if bf.Verify() != nil {
			return false
		}
		merged := GreedyMinimize(bf)
		if merged.Verify() != nil {
			return false
		}
		return merged.NumTags() <= bf.NumTags() && merged.NumNodes() <= bf.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// BCube with its default routing (one digit corrected per hop, all digit
// orders) needs exactly k+1 tags for BCube(n, k) — the paper: "a k-level
// BCube with default routing only needs k tags", where their k counts
// levels, i.e. our k+1.
func TestBCubeTagCount(t *testing.T) {
	cases := []struct {
		n, k     int
		wantTags int
	}{
		{4, 1, 2},
		{2, 2, 3},
	}
	for _, c := range cases {
		b, err := topology.NewBCube(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		s := elp.BCubeELP(b, nil)
		sys, err := Synthesize(b.Graph, s.Paths(), Options{})
		if err != nil {
			t.Fatalf("BCube(%d,%d): %v", c.n, c.k, err)
		}
		if got := sys.Runtime.NumSwitchTags(); got != c.wantTags {
			t.Errorf("BCube(%d,%d): switch tags = %d, want %d",
				c.n, c.k, got, c.wantTags)
		}
	}
}

// Jellyfish with shortest-path ELP needs very few tags (Table 5 reports 3
// for up to 2,000 switches); a 50-switch instance must stay at or below 3.
func TestJellyfishTagCountSmall(t *testing.T) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 50, Ports: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := elp.ShortestAll(j.Graph, j.Switches)
	sys, err := Synthesize(j.Graph, s.Paths(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Runtime.NumSwitchTags(); got > 3 {
		t.Errorf("jellyfish-50 tags = %d, want <= 3 (Table 5)", got)
	}
	if len(sys.Conflicts) > 0 {
		t.Logf("note: %d fabric conflicts repaired by %d rules", len(sys.Conflicts), len(sys.Repairs))
	}
}
