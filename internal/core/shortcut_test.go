package core

import (
	"testing"

	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestShortcutTopologySynthesis covers §6 "Flexible topology
// architectures": graft a Helios/Flyways-style ToR-to-ToR shortcut onto
// the testbed Clos, include shortcut paths in the ELP, and synthesize —
// the generic pipeline must produce a verified deadlock-free system.
func TestShortcutTopologySynthesis(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	t1, t3 := g.MustLookup("T1"), g.MustLookup("T3")
	if _, err := topology.AddShortcut(g, t1, t3); err != nil {
		t.Fatal(err)
	}

	// ELP: the usual up-down paths plus cross-pod traffic using the
	// shortcut (1 hop instead of 4).
	set := elp.UpDownAll(g, c.ToRs)
	set.MustAdd(g, routing.Path{t1, t3})
	set.MustAdd(g, routing.Path{t3, t1})
	// Shortcut + partial climb: T2 reaches T3 via T1's shortcut.
	t2, t4 := g.MustLookup("T2"), g.MustLookup("T4")
	l1 := g.MustLookup("L1")
	set.MustAdd(g, routing.Path{t2, l1, t1, t3})
	set.MustAdd(g, routing.Path{t1, t3, g.MustLookup("L3"), t4})

	sys, err := Synthesize(g, set.Paths(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Runtime.Verify(); err != nil {
		t.Fatal(err)
	}
	// The shortcut-augmented fabric needs few tags.
	if got := sys.Runtime.NumSwitchTags(); got > 3 {
		t.Errorf("shortcut Clos needs %d tags", got)
	}
	// The shortcut paths are fully lossless.
	for _, p := range set.Paths() {
		if res := sys.Rules.Replay(p, 1); !res.Lossless {
			t.Errorf("path %s lossy", p.String(g))
		}
	}
}

func TestShortcutValidation(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	t1 := g.MustLookup("T1")
	if _, err := topology.AddShortcut(g, t1, t1); err == nil {
		t.Error("self shortcut accepted")
	}
	if _, err := topology.AddShortcut(g, t1, g.MustLookup("L1")); err == nil {
		t.Error("cross-layer shortcut accepted")
	}
	if _, err := topology.AddShortcut(g, t1, g.MustLookup("H1")); err == nil {
		t.Error("host shortcut accepted")
	}
	if _, err := topology.AddShortcut(g, t1, g.MustLookup("T2")); err != nil {
		t.Errorf("valid shortcut rejected: %v", err)
	}
	if _, err := topology.AddShortcut(g, t1, g.MustLookup("T2")); err == nil {
		t.Error("duplicate shortcut accepted")
	}
}
