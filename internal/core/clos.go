package core

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// ClosRules generates the topology-specific optimal tagging rules for a
// layered Clos/fat-tree (§4.3): the tag counts bounces. Every ToR and
// leaf/agg switch bumps the tag by one when a packet that came down goes
// back up (ingress and egress both face a higher layer); every other move
// keeps the tag. Spines never rewrite up — they have no upward ports.
//
// maxBounces is the paper's k: paths with up to k bounces stay lossless,
// so tags 1..k+1 are lossless and a k+1-th bounce (no rule installed)
// drops the packet to the lossy queue via the TCAM safeguard.
//
// numClasses implements the multi-class sharing of §6: class c's NICs
// stamp tag c+1 (c in [0, numClasses)), classes share the bump rules, and
// the lossless tag space grows to maxBounces+numClasses instead of
// numClasses*(maxBounces+1).
func ClosRules(g *topology.Graph, maxBounces, numClasses int) *Ruleset {
	if numClasses < 1 {
		numClasses = 1
	}
	maxTag := maxBounces + numClasses
	rs := NewRuleset(g, maxTag)
	for _, sw := range g.Switches() {
		layer := g.Node(sw).Layer
		nPorts := g.PortCount(sw)
		for in := 0; in < nPorts; in++ {
			inPeer := g.Port(g.PortOn(sw, in)).Peer
			if inPeer == topology.InvalidNode || g.Node(inPeer).Kind == topology.KindHost {
				continue // injection handled by the pipeline default
			}
			inUp := g.Node(inPeer).Layer > layer
			for out := 0; out < nPorts; out++ {
				if out == in {
					continue
				}
				outPeer := g.Port(g.PortOn(sw, out)).Peer
				if outPeer == topology.InvalidNode || g.Node(outPeer).Kind == topology.KindHost {
					continue // delivery handled by the pipeline default
				}
				outUp := g.Node(outPeer).Layer > layer
				for t := 1; t <= maxTag; t++ {
					switch {
					case inUp && outUp:
						// Bounce: came down, going back up.
						if t+1 <= maxTag {
							rs.Add(Rule{Switch: sw, Tag: t, In: in, Out: out, NewTag: t + 1})
						}
						// No rule at t == maxTag: the packet has exhausted
						// its bounce budget and goes lossy.
					default:
						rs.Add(Rule{Switch: sw, Tag: t, In: in, Out: out, NewTag: t})
					}
				}
			}
		}
	}
	return rs
}

// ClosSynthesize builds the complete Clos-optimal system for the given
// ELP (which should be the up-to-maxBounces KBounce set): local
// bounce-counting rules, verified against the ELP. It uses exactly
// maxBounces+1 lossless priorities — provably the minimum (§4.4).
func ClosSynthesize(g *topology.Graph, paths []routing.Path, maxBounces int) (*System, error) {
	defer telemetry.Default.StartSpan("synth").End()
	s := &System{Graph: g, ELP: paths}
	s.Rules = ClosRules(g, maxBounces, 1)
	var violations []routing.Path
	s.Runtime, violations = BuildRuleGraph(s.Rules, paths, 1)
	if len(violations) > 0 {
		return nil, fmt.Errorf("core: clos rules leave %d ELP paths lossy (first: %s); does the ELP exceed %d bounces?",
			len(violations), violations[0].String(g), maxBounces)
	}
	if err := s.Runtime.Verify(); err != nil {
		return nil, fmt.Errorf("clos runtime graph: %w", err)
	}
	return s, nil
}

// MinLosslessQueues returns the provable lower bound on lossless
// priorities needed to keep all paths with up to k bounces lossless and
// deadlock-free (§4.4's pigeonhole argument): k+1.
func MinLosslessQueues(k int) int { return k + 1 }

// GreedyTagUpperBound is the §5.3 output bound for Algorithm 2: with T
// the largest brute-force tag (the longest lossless route length) and l a
// lower bound on the smallest cycle among the lossless routes' buffer
// dependencies, the merged tag count is at most ceil(T/l). With no cycle
// information (l <= 1) it degrades to the brute-force worst case T.
func GreedyTagUpperBound(longestRoute, smallestCycle int) int {
	if longestRoute <= 0 {
		return 0
	}
	if smallestCycle <= 1 {
		return longestRoute
	}
	return (longestRoute + smallestCycle - 1) / smallestCycle
}
