package core

// sandbox maintains the per-new-tag port DAG of Algorithm 2 and answers
// its one question: can vertex port p be admitted with same-tag in-edges
// us -> p without closing a cycle? The check is incremental — any new
// cycle must traverse a new edge u -> p, so it exists iff p already
// reaches some u — and runs over dense port-indexed, epoch-stamped
// arrays: admitting a vertex allocates nothing, the uncontested fast
// paths are O(1), and resetting the sandbox after a demotion is O(1).
//
// The old implementation kept the adjacency in a map of slices and
// re-ran a map-backed DFS per candidate; the dense layout removes every
// map operation and allocation from Algorithm 2's inner loop.
type sandbox struct {
	epoch    int32
	present  []int32 // epoch when the port last joined the sandbox
	succHead []int32 // pooled out-adjacency, valid iff present[p] == epoch
	succPool []adjEntry

	target []int32 // stamp marking the us set during one tryAdd
	seen   []int32 // DFS visit stamps
	stamp  int32   // shared counter for target/seen
	stack  []int32 // DFS worklist
}

func newSandbox(numPorts int) *sandbox {
	return &sandbox{
		epoch:    1,
		present:  make([]int32, numPorts),
		succHead: make([]int32, numPorts),
		target:   make([]int32, numPorts),
		seen:     make([]int32, numPorts),
	}
}

// reset empties the sandbox in O(1): stale per-port adjacency is
// invalidated by the epoch bump and the pool is truncated in place.
func (sb *sandbox) reset() {
	sb.epoch++
	sb.succPool = sb.succPool[:0]
}

// ensure admits port p with no edges yet.
func (sb *sandbox) ensure(p int32) {
	if sb.present[p] != sb.epoch {
		sb.present[p] = sb.epoch
		sb.succHead[p] = 0
	}
}

// reachesAny reports whether any stamped target is reachable from p.
func (sb *sandbox) reachesAny(p int32) bool {
	sb.seen[p] = sb.stamp
	sb.stack = append(sb.stack[:0], p)
	for len(sb.stack) > 0 {
		w := sb.stack[len(sb.stack)-1]
		sb.stack = sb.stack[:len(sb.stack)-1]
		for i := sb.succHead[w]; i != 0; i = sb.succPool[i-1].next {
			s := sb.succPool[i-1].node
			if sb.target[s] == sb.stamp {
				return true
			}
			if sb.seen[s] != sb.stamp {
				sb.seen[s] = sb.stamp
				sb.stack = append(sb.stack, s)
			}
		}
	}
	return false
}

// tryAdd attempts to admit vertex port p with the candidate same-tag
// edges us -> p, committing all of them iff the graph stays acyclic.
// Either way the sandbox is left consistent — the transactional contract
// Algorithm 2's accept-or-demote step needs.
func (sb *sandbox) tryAdd(p int32, us []int32) bool {
	if len(us) > 0 {
		// Fast path: a port that is absent or has no out-edges reaches
		// nothing, so only a self-loop can reject it. Every port's first
		// appearance as a vertex head lands here.
		if sb.present[p] != sb.epoch || sb.succHead[p] == 0 {
			for _, u := range us {
				if u == p {
					return false
				}
			}
		} else {
			sb.stamp++
			for _, u := range us {
				if u == p {
					return false // self-loop (cannot occur for path graphs)
				}
				sb.target[u] = sb.stamp
			}
			if sb.reachesAny(p) {
				return false
			}
		}
	}
	for _, u := range us {
		sb.ensure(u)
		sb.ensure(p)
		sb.succPool = append(sb.succPool, adjEntry{node: p, next: sb.succHead[u]})
		sb.succHead[u] = int32(len(sb.succPool))
	}
	return true
}
