package core

// Deletion-free linear-probe refcount tables for the resynth refGraphs.
// The workload is increment/decrement storms over a small, recurrent key
// universe (every flap revisits the same (port, tag) vertices), so open
// addressing with zero-key sentinels beats the builtin map by a wide
// margin: a key whose count drops to zero keeps its slot — it is almost
// certainly coming back on the next churn event — and zero-count slots
// are only shed when a growth rehash happens anyway. Packed tag keys are
// never zero (tags start at 1), which frees 0 as the empty sentinel.

type cmap32 struct {
	keys  []uint32
	vals  []int32
	mask  uint32
	shift uint32 // 32 - log2(len(keys)): Fibonacci hashing keeps the
	// product's high bits, which mix every input bit — packed tag keys
	// differ mostly in their high (port) bits
	live int // keys with a nonzero count
	used int // occupied slots, including zero-count keys
}

func newCmap32() *cmap32 {
	return &cmap32{keys: make([]uint32, 2048), vals: make([]int32, 2048), mask: 2047, shift: 21}
}

func (m *cmap32) slot(k uint32) uint32 {
	i := (k * 2654435761) >> m.shift
	for m.keys[i] != 0 && m.keys[i] != k {
		i = (i + 1) & m.mask
	}
	return i
}

// incr bumps k's count and reports a 0→1 set transition.
func (m *cmap32) incr(k uint32) bool {
	i := m.slot(k)
	if m.keys[i] == 0 {
		if (m.used+1)*4 > len(m.keys)*3 {
			m.grow()
			i = m.slot(k)
		}
		m.keys[i] = k
		m.used++
	}
	m.vals[i]++
	if m.vals[i] == 1 {
		m.live++
		return true
	}
	return false
}

// decr drops k's count and reports a 1→0 set transition. Decrementing an
// absent or zero-count key is a refcount underflow — a caller bug.
func (m *cmap32) decr(k uint32) bool {
	i := m.slot(k)
	if m.keys[i] == 0 || m.vals[i] <= 0 {
		panic("core: resynth refcount underflow")
	}
	m.vals[i]--
	if m.vals[i] == 0 {
		m.live--
		return true
	}
	return false
}

func (m *cmap32) grow() {
	oldK, oldV := m.keys, m.vals
	n := len(oldK) * 2
	m.keys, m.vals = make([]uint32, n), make([]int32, n)
	m.mask = uint32(n - 1)
	m.shift--
	m.used = 0
	for j, k := range oldK {
		if k != 0 && oldV[j] > 0 {
			i := m.slot(k)
			m.keys[i], m.vals[i] = k, oldV[j]
			m.used++
		}
	}
}

type cmap64 struct {
	keys  []uint64
	vals  []int32
	mask  uint32
	shift uint32 // 64 - log2(len(keys))
	live  int
	used  int
}

func newCmap64() *cmap64 {
	return &cmap64{keys: make([]uint64, 4096), vals: make([]int32, 4096), mask: 4095, shift: 52}
}

func (m *cmap64) slot(k uint64) uint32 {
	i := uint32(k * 0x9E3779B97F4A7C15 >> m.shift)
	for m.keys[i] != 0 && m.keys[i] != k {
		i = (i + 1) & m.mask
	}
	return i
}

func (m *cmap64) incr(k uint64) bool {
	i := m.slot(k)
	if m.keys[i] == 0 {
		if (m.used+1)*4 > len(m.keys)*3 {
			m.grow()
			i = m.slot(k)
		}
		m.keys[i] = k
		m.used++
	}
	m.vals[i]++
	if m.vals[i] == 1 {
		m.live++
		return true
	}
	return false
}

func (m *cmap64) decr(k uint64) bool {
	i := m.slot(k)
	if m.keys[i] == 0 || m.vals[i] <= 0 {
		panic("core: resynth refcount underflow")
	}
	m.vals[i]--
	if m.vals[i] == 0 {
		m.live--
		return true
	}
	return false
}

func (m *cmap64) grow() {
	oldK, oldV := m.keys, m.vals
	n := len(oldK) * 2
	m.keys, m.vals = make([]uint64, n), make([]int32, n)
	m.mask = uint32(n - 1)
	m.shift--
	m.used = 0
	for j, k := range oldK {
		if k != 0 && oldV[j] > 0 {
			i := m.slot(k)
			m.keys[i], m.vals[i] = k, oldV[j]
			m.used++
		}
	}
}
