package core

import (
	"fmt"
	"strings"

	"repro/internal/topology"
)

// VerifyError describes a violated deadlock-freedom requirement, with a
// witness cycle or edge.
type VerifyError struct {
	Requirement int    // 1 = per-tag acyclicity, 2 = monotonicity
	Detail      string // human-readable witness
}

// Error implements the error interface.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("tagger verify: requirement %d violated: %s", e.Requirement, e.Detail)
}

// Verify checks the two requirements of §5.1 that together guarantee
// deadlock freedom (Theorem 5.1):
//
//  1. for every tag k, the per-tag port graph G_k is acyclic — an edge in
//     G_k is a buffer dependency within one lossless priority, and a cycle
//     there is a CBD;
//  2. tags never decrease along any edge — otherwise a CBD could form
//     across priorities.
//
// It returns nil iff the tagging system is deadlock-free, or a
// *VerifyError with a concrete witness.
func (tg *TaggedGraph) Verify() error {
	if err := tg.verifyMonotonic(); err != nil {
		return err
	}
	return tg.verifyPerTagAcyclic()
}

func (tg *TaggedGraph) verifyMonotonic() error {
	for id := range tg.nodes {
		from := tg.nodes[id]
		for i := tg.succHead[id]; i != 0; i = tg.succPool[i-1].next {
			to := tg.nodes[tg.succPool[i-1].node]
			if to.Tag < from.Tag {
				return &VerifyError{
					Requirement: 2,
					Detail: fmt.Sprintf("edge %s -> %s decreases the tag",
						tg.NodeString(from), tg.NodeString(to)),
				}
			}
		}
	}
	return nil
}

func (tg *TaggedGraph) verifyPerTagAcyclic() error {
	// Within one tag k a port appears in at most one vertex, so the
	// subgraph of same-tag edges over dense vertex IDs is exactly the
	// disjoint union of the per-tag port graphs G_k — one iterative
	// three-color DFS that only follows same-tag successors checks every
	// G_k in a single allocation-lean pass.
	n := len(tg.nodes)
	color := make([]int8, n)
	parent := make([]int32, n)
	type frame struct{ id, it int32 }
	var stack []frame
	for start := 0; start < n; start++ {
		if color[start] != 0 {
			continue
		}
		color[start] = 1
		stack = append(stack[:0], frame{int32(start), tg.succHead[start]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.it == 0 {
				color[f.id] = 2
				stack = stack[:len(stack)-1]
				continue
			}
			e := tg.succPool[f.it-1]
			f.it = e.next
			v := e.node
			if tg.nodes[v].Tag != tg.nodes[f.id].Tag {
				continue
			}
			switch color[v] {
			case 0:
				color[v] = 1
				parent[v] = f.id
				stack = append(stack, frame{v, tg.succHead[v]})
			case 1:
				// Found a back edge f.id -> v: unwind the cycle and
				// reverse it to follow edge direction.
				cyc := []int32{v}
				for cur := f.id; cur != v; cur = parent[cur] {
					cyc = append(cyc, cur)
				}
				for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
					cyc[i], cyc[j] = cyc[j], cyc[i]
				}
				var names []string
				for _, id := range cyc {
					port := tg.g.Port(tg.nodes[id].Port)
					names = append(names, fmt.Sprintf("%s_%d", tg.g.Node(port.Node).Name, port.Num))
				}
				return &VerifyError{
					Requirement: 1,
					Detail: fmt.Sprintf("G_%d contains cycle %s",
						tg.nodes[v].Tag, strings.Join(names, " -> ")),
				}
			}
		}
	}
	return nil
}

// findCycle returns one directed cycle (as a port sequence, first element
// repeated implicitly) in adj, or nil if the graph is acyclic. Iterative
// three-color DFS: large tagged graphs would overflow the stack with a
// recursive walk.
func findCycle(adj map[topology.PortID][]topology.PortID) []topology.PortID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[topology.PortID]int, len(adj))
	parent := make(map[topology.PortID]topology.PortID)

	type frame struct {
		node topology.PortID
		next int
	}
	for start := range adj {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				v := adj[f.node][f.next]
				f.next++
				switch color[v] {
				case white:
					color[v] = gray
					parent[v] = f.node
					stack = append(stack, frame{node: v})
				case gray:
					// Found a back edge f.node -> v: unwind the cycle.
					cyc := []topology.PortID{v}
					for cur := f.node; cur != v; cur = parent[cur] {
						cyc = append(cyc, cur)
					}
					// Reverse to follow edge direction v -> ... -> f.node.
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// acyclicWith reports whether the directed port graph adj remains acyclic;
// it is the incremental check Algorithm 2 runs inside its sandbox.
func acyclicWith(adj map[topology.PortID][]topology.PortID) bool {
	return findCycle(adj) == nil
}
