package core

import (
	"testing"

	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/topology"
)

func testbed(t *testing.T) *topology.Clos {
	t.Helper()
	return paper.Testbed()
}

// --- Algorithm 1 -----------------------------------------------------------

func TestBruteForceFig5(t *testing.T) {
	f := paper.NewFig5()
	bf := BruteForce(f.Graph, f.ELP.Paths())

	if err := bf.Verify(); err != nil {
		t.Fatalf("brute-force graph not deadlock-free: %v", err)
	}
	// Figure 5(b): switch ports carry tags 1..3; tag 4 appears only on
	// destination servers (Table 3's caption).
	if got := bf.SwitchTags(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("switch tags = %v, want [1 2 3]", got)
	}
	if got := bf.Tags(); len(got) != 4 || got[3] != 4 {
		t.Errorf("all tags = %v, want [1 2 3 4]", got)
	}
	if bf.MaxTag() != 4 {
		t.Errorf("MaxTag = %d, want 4", bf.MaxTag())
	}
	// Tag 4 vertices are exactly server ingress ports.
	for _, n := range bf.Nodes() {
		if n.Tag == 4 {
			owner := f.Graph.Port(n.Port).Node
			if f.Graph.Node(owner).Kind != topology.KindHost {
				t.Errorf("tag 4 on switch port %s", bf.NodeString(n))
			}
		}
	}
	// Every edge increments the tag by exactly one.
	for _, e := range bf.Edges() {
		if e.To.Tag != e.From.Tag+1 {
			t.Errorf("edge %s -> %s not +1", bf.NodeString(e.From), bf.NodeString(e.To))
		}
	}
}

func TestBruteForceNodeCountsFig5(t *testing.T) {
	f := paper.NewFig5()
	bf := BruteForce(f.Graph, f.ELP.Paths())
	// Figure 5(b) shows 9 switch (port,tag) rectangles at tags 1-2 and 6 at
	// tag 3 plus... count what the construction must give: 3 first-hop
	// nodes (tag 1), 6 second-hop (tag 2), 6+3 third-hop (tag 3: 6 switch
	// nodes on 5-node paths' third hops are servers for 4-node paths),
	// and server tag-4 nodes. Rather than over-fit the figure, assert the
	// structural invariants: 3 tag-1 nodes, 6 tag-2 nodes.
	count := map[int]int{}
	for _, n := range bf.Nodes() {
		count[n.Tag]++
	}
	if count[1] != 3 {
		t.Errorf("tag-1 nodes = %d, want 3 (D->A, E->B, F->C ingresses)", count[1])
	}
	if count[2] != 6 {
		t.Errorf("tag-2 nodes = %d, want 6", count[2])
	}
}

func TestBruteForceUpDownClosIsShallow(t *testing.T) {
	c := testbed(t)
	s := elp.UpDownAll(c.Graph, c.ToRs)
	bf := BruteForce(c.Graph, s.Paths())
	if err := bf.Verify(); err != nil {
		t.Fatal(err)
	}
	// Longest up-down ToR-to-ToR path is 4 hops: tags 1..4.
	if bf.MaxTag() != 4 {
		t.Errorf("MaxTag = %d, want 4", bf.MaxTag())
	}
}

func TestBruteForceEmptyELP(t *testing.T) {
	c := testbed(t)
	bf := BruteForce(c.Graph, nil)
	if bf.NumNodes() != 0 || bf.NumEdges() != 0 || bf.NumTags() != 0 {
		t.Error("empty ELP should give empty graph")
	}
	if err := bf.Verify(); err != nil {
		t.Errorf("empty graph should verify: %v", err)
	}
}

// --- Algorithm 2 -----------------------------------------------------------

func TestGreedyMinimizeFig5(t *testing.T) {
	f := paper.NewFig5()
	bf := BruteForce(f.Graph, f.ELP.Paths())
	merged := GreedyMinimize(bf)

	if err := merged.Verify(); err != nil {
		t.Fatalf("merged graph not deadlock-free: %v", err)
	}
	// Figure 5(c): Algorithm 2 reduces the walk-through to two tags.
	if got := merged.NumSwitchTags(); got != 2 {
		t.Errorf("switch tags after merge = %d, want 2 (paper Fig 5c)", got)
	}
	// Same vertices as brute force, re-tagged: node count can only shrink
	// (merging collapses (port,t1),(port,t2) pairs).
	if merged.NumNodes() > bf.NumNodes() {
		t.Errorf("merged nodes %d > brute-force %d", merged.NumNodes(), bf.NumNodes())
	}
}

func TestGreedyMinimizeUpDownClosToOneTag(t *testing.T) {
	// Up-down paths alone have no CBD, so every vertex merges into tag 1.
	c := testbed(t)
	s := elp.UpDownAll(c.Graph, c.ToRs)
	bf := BruteForce(c.Graph, s.Paths())
	merged := GreedyMinimize(bf)
	if err := merged.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := merged.NumTags(); got != 1 {
		t.Errorf("up-down Clos needs %d tags after merge, want 1", got)
	}
}

func TestGreedyMinimizeOneBounceClos(t *testing.T) {
	// Figure 6: on Clos with shortest + 1-bounce ELP, Algorithm 2 yields
	// three tags where the topology-specific optimum is two.
	c := testbed(t)
	s := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	bf := BruteForce(c.Graph, s.Paths())
	merged := GreedyMinimize(bf)
	if err := merged.Verify(); err != nil {
		t.Fatal(err)
	}
	got := merged.NumSwitchTags()
	if got != 3 {
		t.Errorf("greedy on 1-bounce Clos = %d tags, paper's Figure 6 shows 3", got)
	}
	if got <= MinLosslessQueues(1)-1 {
		t.Errorf("greedy beat the provable lower bound: %d", got)
	}
}

func TestGreedyMinimizePanicsOnNonBruteForce(t *testing.T) {
	f := paper.NewFig5()
	tg := NewTaggedGraph(f.Graph)
	p1 := f.Graph.PortOn(f.A, 0)
	p2 := f.Graph.PortOn(f.B, 0)
	tg.AddEdge(TagNode{p1, 1}, TagNode{p2, 1}) // same-tag edge: not brute force
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GreedyMinimize(tg)
}

func TestGreedyNeverIncreasesTags(t *testing.T) {
	c := testbed(t)
	for k := 0; k <= 2; k++ {
		s := elp.KBounce(c.Graph, c.ToRs, k, nil)
		bf := BruteForce(c.Graph, s.Paths())
		merged := GreedyMinimize(bf)
		if merged.NumTags() > bf.NumTags() {
			t.Errorf("k=%d: merged %d > brute %d", k, merged.NumTags(), bf.NumTags())
		}
		if err := merged.Verify(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

// --- Verifier --------------------------------------------------------------

func TestVerifyDetectsSameTagCycle(t *testing.T) {
	f := paper.NewFig5()
	tg := NewTaggedGraph(f.Graph)
	// Build the Figure 1 style CBD: A->B->C->A within one tag.
	ab := TagNode{ingressPortOf(f.Graph, f.A, f.B), 1} // B's ingress from A
	bc := TagNode{ingressPortOf(f.Graph, f.B, f.C), 1}
	ca := TagNode{ingressPortOf(f.Graph, f.C, f.A), 1}
	tg.AddEdge(ab, bc)
	tg.AddEdge(bc, ca)
	tg.AddEdge(ca, ab)
	err := tg.Verify()
	if err == nil {
		t.Fatal("cycle not detected")
	}
	ve, ok := err.(*VerifyError)
	if !ok || ve.Requirement != 1 {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestVerifyDetectsTagDecrease(t *testing.T) {
	f := paper.NewFig5()
	tg := NewTaggedGraph(f.Graph)
	ab := TagNode{ingressPortOf(f.Graph, f.A, f.B), 2}
	bc := TagNode{ingressPortOf(f.Graph, f.B, f.C), 1}
	tg.AddEdge(ab, bc)
	err := tg.Verify()
	if err == nil {
		t.Fatal("tag decrease not detected")
	}
	ve, ok := err.(*VerifyError)
	if !ok || ve.Requirement != 2 {
		t.Fatalf("wrong error: %v", err)
	}
	if ve.Error() == "" {
		t.Error("empty error text")
	}
}

func TestVerifyAcceptsCrossTagCycle(t *testing.T) {
	// A cycle that climbs tags is fine as long as no single tag has one
	// and no edge decreases — impossible to close monotonically, so build
	// the two legal halves only.
	f := paper.NewFig5()
	tg := NewTaggedGraph(f.Graph)
	ab := TagNode{ingressPortOf(f.Graph, f.A, f.B), 1}
	bc := TagNode{ingressPortOf(f.Graph, f.B, f.C), 2}
	ca := TagNode{ingressPortOf(f.Graph, f.C, f.A), 2}
	tg.AddEdge(ab, bc)
	tg.AddEdge(bc, ca)
	if err := tg.Verify(); err != nil {
		t.Fatalf("legal graph rejected: %v", err)
	}
}

// ingressPortOf returns `to`'s ingress port facing `from`.
func ingressPortOf(g *topology.Graph, from, to topology.NodeID) topology.PortID {
	return g.PortOn(to, g.PortToPeer(to, from))
}

// --- Tagged graph plumbing ---------------------------------------------------

func TestTaggedGraphBasics(t *testing.T) {
	f := paper.NewFig5()
	tg := NewTaggedGraph(f.Graph)
	a := TagNode{ingressPortOf(f.Graph, f.A, f.B), 1}
	b := TagNode{ingressPortOf(f.Graph, f.B, f.C), 2}
	tg.AddEdge(a, b)
	tg.AddEdge(a, b) // duplicate ignored
	tg.AddNode(a)    // duplicate ignored
	if tg.NumNodes() != 2 || tg.NumEdges() != 1 {
		t.Errorf("nodes=%d edges=%d, want 2,1", tg.NumNodes(), tg.NumEdges())
	}
	if !tg.HasNode(a) || !tg.HasEdge(a, b) || tg.HasEdge(b, a) {
		t.Error("Has* accessors wrong")
	}
	if len(tg.Succ(a)) != 1 || len(tg.Pred(b)) != 1 {
		t.Error("adjacency wrong")
	}
	if tg.Graph() != f.Graph {
		t.Error("Graph accessor")
	}
	if s := tg.NodeString(a); s == "" {
		t.Error("NodeString empty")
	}
	edges := tg.Edges()
	if len(edges) != 1 || edges[0].From != a {
		t.Error("Edges() wrong")
	}
}

// --- Path replay across algorithms -------------------------------------------

func TestMergedGraphPreservesPathCoverage(t *testing.T) {
	// Every ELP path must exist as a vertex/edge chain in the merged
	// graph: walk each path's ports and check chain membership for the
	// tags the rules actually produce.
	f := paper.NewFig5()
	bf := BruteForce(f.Graph, f.ELP.Paths())
	merged := GreedyMinimize(bf)
	rs, conflicts := DeriveRules(merged)
	if len(conflicts) != 0 {
		t.Fatalf("unexpected conflicts on Fig 5: %+v", conflicts)
	}
	for _, p := range f.ELP.Paths() {
		res := rs.Replay(p, 1)
		if !res.Lossless {
			t.Errorf("path %s not lossless after merge", p.String(f.Graph))
		}
	}
}
