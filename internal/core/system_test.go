package core

import (
	"testing"

	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestSynthesizeFig5(t *testing.T) {
	f := paper.NewFig5()
	sys, err := Synthesize(f.Graph, f.ELP.Paths(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NumLosslessQueues(); got != 2 {
		t.Errorf("queues = %d, want 2", got)
	}
	if len(sys.Conflicts) != 0 || len(sys.Repairs) != 0 {
		t.Errorf("conflicts=%d repairs=%d, want 0,0", len(sys.Conflicts), len(sys.Repairs))
	}
	if sys.BruteForce == nil || sys.Merged == nil || sys.Rules == nil || sys.Runtime == nil {
		t.Fatal("missing artifacts")
	}
	// Runtime graph must verify (Synthesize already did; belt and braces).
	if err := sys.Runtime.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeSkipMerge(t *testing.T) {
	f := paper.NewFig5()
	sys, err := Synthesize(f.Graph, f.ELP.Paths(), Options{SkipMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Merged != nil {
		t.Error("SkipMerge should leave Merged nil")
	}
	// Brute force needs one tag per hop: 3 switch tags on Fig 5.
	if got := sys.Runtime.NumSwitchTags(); got != 3 {
		t.Errorf("brute-force queues = %d, want 3", got)
	}
}

func TestSynthesizeRejectsStartTag(t *testing.T) {
	f := paper.NewFig5()
	if _, err := Synthesize(f.Graph, f.ELP.Paths(), Options{StartTag: 2}); err == nil {
		t.Fatal("expected error for StartTag 2")
	}
}

func TestSynthesizeClosKBounce(t *testing.T) {
	c := paper.Testbed()
	for k := 0; k <= 2; k++ {
		s := elp.KBounce(c.Graph, c.ToRs, k, nil)
		sys, err := Synthesize(c.Graph, s.Paths(), Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		got := sys.NumLosslessQueues()
		if got < MinLosslessQueues(k) {
			t.Errorf("k=%d: %d queues beats the provable lower bound %d",
				k, got, MinLosslessQueues(k))
		}
	}
}

func TestReplayTagsMatchRuntimeGraph(t *testing.T) {
	f := paper.NewFig5()
	sys, err := Synthesize(f.Graph, f.ELP.Paths(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f.ELP.Paths() {
		res := sys.Rules.Replay(p, 1)
		if !res.Lossless {
			t.Fatalf("path %s not lossless", p.String(f.Graph))
		}
		if len(res.Tags) != len(p)-1 {
			t.Fatalf("tags len %d for %d-node path", len(res.Tags), len(p))
		}
		// Every (ingress, tag) the replay produces must be a runtime vertex.
		for i := 1; i < len(p); i++ {
			n := TagNode{Port: ingressPortOf(f.Graph, p[i-1], p[i]), Tag: res.Tags[i-1]}
			if !sys.Runtime.HasNode(n) {
				t.Errorf("replay vertex %s missing from runtime graph", sys.Runtime.NodeString(n))
			}
		}
	}
}

func TestRulesetClassifyDefaults(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	rs := NewRuleset(g, 2)
	t1 := g.MustLookup("T1")
	hostIn := g.PortToPeer(t1, g.MustLookup("H1"))
	fabricOut := g.PortToPeer(t1, g.MustLookup("L1"))
	fabricIn := g.PortToPeer(t1, g.MustLookup("L2"))

	// Injection: host ingress keeps the NIC stamp.
	if got := rs.Classify(t1, 1, hostIn, fabricOut); got != 1 {
		t.Errorf("injection = %d, want 1", got)
	}
	// Delivery: host egress keeps the tag.
	if got := rs.Classify(t1, 2, fabricIn, hostIn); got != 2 {
		t.Errorf("delivery = %d, want 2", got)
	}
	// Fabric miss goes lossy.
	if got := rs.Classify(t1, 1, fabricIn, fabricOut); got != LossyTag {
		t.Errorf("fabric miss = %d, want lossy", got)
	}
	// Lossy stays lossy even on host ingress.
	if got := rs.Classify(t1, LossyTag, hostIn, fabricOut); got != LossyTag {
		t.Errorf("lossy ingress = %d, want lossy", got)
	}
	// Out-of-range tags are lossy.
	if got := rs.Classify(t1, 99, hostIn, fabricOut); got != LossyTag {
		t.Errorf("overrange tag = %d, want lossy", got)
	}
	// Exact rule beats injection default.
	rs.Add(Rule{Switch: t1, Tag: 1, In: hostIn, Out: fabricOut, NewTag: 2})
	if got := rs.Classify(t1, 1, hostIn, fabricOut); got != 2 {
		t.Errorf("exact rule = %d, want 2", got)
	}
}

func TestRulesetAddConflictReporting(t *testing.T) {
	c := paper.Testbed()
	rs := NewRuleset(c.Graph, 3)
	t1 := c.Graph.MustLookup("T1")
	r := Rule{Switch: t1, Tag: 1, In: 0, Out: 1, NewTag: 2}
	if _, conflicted := rs.Add(r); conflicted {
		t.Error("fresh add conflicted")
	}
	if _, conflicted := rs.Add(r); conflicted {
		t.Error("identical re-add conflicted")
	}
	r.NewTag = 3
	old, conflicted := rs.Add(r)
	if !conflicted || old != 2 {
		t.Errorf("conflict = %v old=%d, want true,2", conflicted, old)
	}
	if got, _ := rs.Lookup(t1, 1, 0, 1); got != 3 {
		t.Errorf("lookup after conflicting add = %d, want 3", got)
	}
	if rs.Len() != 1 {
		t.Errorf("Len = %d, want 1", rs.Len())
	}
	if got := rs.RulesAt(t1); len(got) != 1 {
		t.Errorf("RulesAt = %d rules", len(got))
	}
}

func TestRulesetMaxTagGrows(t *testing.T) {
	c := paper.Testbed()
	rs := NewRuleset(c.Graph, 2)
	if rs.MaxTag() != 2 {
		t.Fatal("initial maxtag")
	}
	rs.Add(Rule{Switch: c.ToRs[0], Tag: 2, In: 0, Out: 1, NewTag: 5})
	if rs.MaxTag() != 5 {
		t.Errorf("MaxTag = %d, want 5", rs.MaxTag())
	}
	rs.SetMaxTag(3) // cannot shrink
	if rs.MaxTag() != 5 {
		t.Errorf("SetMaxTag shrank to %d", rs.MaxTag())
	}
	if !rs.IsLossless(5) || rs.IsLossless(6) || rs.IsLossless(0) {
		t.Error("IsLossless bounds wrong")
	}
}

func TestBuildRuleGraphReportsViolations(t *testing.T) {
	// An empty ruleset makes every fabric hop lossy.
	c := paper.Testbed()
	g := c.Graph
	rs := NewRuleset(g, 1)
	p := routing.Path{g.MustLookup("T1"), g.MustLookup("L1"), g.MustLookup("S1")}
	tg, violations := BuildRuleGraph(rs, []routing.Path{p}, 1)
	if len(violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(violations))
	}
	// The first hop out of T1 still injects lossless (T1 has host ports,
	// and the replay models injection), so L1's ingress vertex exists; the
	// L1 hop then goes lossy and produces nothing further.
	if tg.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0", tg.NumEdges())
	}
}

func TestRepairReplayFillsMissingRules(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	// Start from an empty ruleset and let the repair pass synthesize
	// everything for a small ELP: it must end lossless and verified.
	s := elp.UpDownAll(g, c.ToRs)
	rs := NewRuleset(g, 1)
	repairs := RepairReplay(rs, s.Paths(), 1)
	if len(repairs) == 0 {
		t.Fatal("expected synthesized rules")
	}
	tg, violations := BuildRuleGraph(rs, s.Paths(), 1)
	if len(violations) != 0 {
		t.Fatalf("%d violations after repair", len(violations))
	}
	if err := tg.Verify(); err != nil {
		t.Fatalf("repaired graph: %v", err)
	}
	// Up-down ELP should need just one tag even via repair.
	if got := tg.NumTags(); got != 1 {
		t.Errorf("repair used %d tags, want 1", got)
	}
}

func TestDeriveRulesSkipsHostTails(t *testing.T) {
	// Host-level path: the edge out of the host must not create a rule at
	// the host.
	c := paper.Testbed()
	g := c.Graph
	p := routing.Path{
		g.MustLookup("H1"), g.MustLookup("T1"), g.MustLookup("L1"),
		g.MustLookup("S1"), g.MustLookup("L3"), g.MustLookup("T3"), g.MustLookup("H9"),
	}
	bf := BruteForce(g, []routing.Path{p})
	rs, conflicts := DeriveRules(bf)
	if len(conflicts) != 0 {
		t.Fatal("unexpected conflicts")
	}
	for _, r := range rs.Rules() {
		if g.Node(r.Switch).Kind == topology.KindHost {
			t.Errorf("rule installed at host: %+v", r)
		}
	}
	res := rs.Replay(p, 1)
	if !res.Lossless {
		t.Fatal("host-level path not lossless")
	}
	// Tags increase by one per switch hop: 1 at T1's ingress, ..., 6 at H9.
	want := []int{1, 2, 3, 4, 5, 6}
	for i, w := range want {
		if res.Tags[i] != w {
			t.Errorf("tag[%d] = %d, want %d", i, res.Tags[i], w)
		}
	}
}
