package core

import (
	"testing"

	"repro/internal/elp"
	"repro/internal/paper"
)

// TestClosRulesCoverHostLevelELP: the Clos bounce-counting rules plus the
// injection/delivery pipeline defaults keep every host-to-host expected
// lossless path lossless — the deployment-level statement (NICs stamp
// DSCP 1, ToRs trust host-facing ingress).
func TestClosRulesCoverHostLevelELP(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	rs := ClosRules(g, 1, 1)
	sw := elp.KBounce(g, c.ToRs, 1, nil)
	hl := elp.HostLevel(g, sw, 2) // 2 hosts per endpoint keeps it quick
	for _, p := range hl.Paths() {
		res := rs.Replay(p, 1)
		if !res.Lossless {
			t.Fatalf("host-level path %s lossy at hop %d", p.String(g), res.DropHop)
		}
	}
	// And the induced runtime graph is deadlock-free.
	tg, violations := BuildRuleGraph(rs, hl.Paths(), 1)
	if len(violations) != 0 {
		t.Fatalf("%d violations", len(violations))
	}
	if err := tg.Verify(); err != nil {
		t.Fatal(err)
	}
	// Host-level synthesis through the GENERIC pipeline also works and
	// needs the same two switch queues.
	sys, err := Synthesize(g, hl.Paths(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Runtime.NumSwitchTags(); got < 2 || got > 3 {
		t.Errorf("generic host-level synthesis used %d switch tags", got)
	}
}
