package core_test

import (
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/routing"
	"repro/internal/topology"
)

// resynthClos builds the standard small Clos + k-bounce ELP the resynth
// tests churn.
func resynthClos(t *testing.T) (*topology.Clos, *elp.Set) {
	t.Helper()
	cl, err := topology.NewClos(topology.ClosConfig{
		Pods: 2, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, elp.KBounce(cl.Graph, cl.ToRs, 1, nil)
}

// assertScratchEqual holds the Resynth state to its contract: its system
// is indistinguishable — rules, max tag, conflicts, all three tagged
// graphs — from Synthesize on its own tracked path list.
func assertScratchEqual(t *testing.T, g *topology.Graph, rs *core.Resynth) {
	t.Helper()
	sys := rs.System()
	ref, err := core.Synthesize(g, rs.Paths(), core.Options{Workers: 1})
	if err != nil {
		t.Fatalf("reference synthesis: %v", err)
	}
	if diffs := check.DiffRulesets(ref.Rules, sys.Rules); len(diffs) > 0 {
		t.Fatalf("rules diverge from scratch (%d diffs; first: %s)", len(diffs), diffs[0])
	}
	if a, b := ref.Rules.MaxTag(), sys.Rules.MaxTag(); a != b {
		t.Fatalf("max tag %d, from-scratch %d", b, a)
	}
	if !reflect.DeepEqual(ref.Conflicts, sys.Conflicts) {
		t.Fatalf("conflicts diverge: %v vs %v", sys.Conflicts, ref.Conflicts)
	}
	pairs := []struct {
		name string
		a, b *core.TaggedGraph
	}{
		{"brute-force", ref.BruteForce, sys.BruteForce},
		{"merged", ref.Merged, sys.Merged},
		{"runtime", ref.Runtime, sys.Runtime},
	}
	for _, p := range pairs {
		if (p.a == nil) != (p.b == nil) {
			t.Fatalf("%s graph present on one side only", p.name)
		}
		if p.a == nil {
			continue
		}
		if !reflect.DeepEqual(p.a.Nodes(), p.b.Nodes()) || !reflect.DeepEqual(p.a.Edges(), p.b.Edges()) {
			t.Fatalf("%s graphs diverge from scratch", p.name)
		}
	}
}

// TestResynthLinkFlapMatchesFromScratch drives a link failure and its
// recovery through Apply and demands from-scratch equality at every
// step, ending rule-for-rule back at the initial deployment.
func TestResynthLinkFlapMatchesFromScratch(t *testing.T) {
	cl, set := resynthClos(t)
	g := cl.Graph
	rs, err := core.NewResynth(g, set.Paths(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	initialRules := rs.System().Rules
	tr := elp.NewTracker(g, set)

	a, b := g.MustLookup("T1"), g.MustLookup("L1")
	g.FailLink(a, b)
	removed := tr.LinkDown(a, b)
	if len(removed) == 0 {
		t.Fatal("link-down removed no paths")
	}
	if _, err := rs.Apply(nil, removed); err != nil {
		t.Fatal(err)
	}
	assertScratchEqual(t, g, rs)
	if len(rs.Paths()) != set.Len()-len(removed) {
		t.Fatalf("tracked %d paths, want %d", len(rs.Paths()), set.Len()-len(removed))
	}

	g.RestoreLink(a, b)
	if _, err := rs.Apply(tr.LinkUp(a, b), nil); err != nil {
		t.Fatal(err)
	}
	assertScratchEqual(t, g, rs)
	if diffs := check.DiffRulesets(initialRules, rs.System().Rules); len(diffs) > 0 {
		t.Fatalf("down+up did not restore the initial rules: %d diffs", len(diffs))
	}
}

// TestResynthFastPathReusesRules: when every removed path's brute-force
// chain is covered by surviving paths, the vertex/edge set is unchanged
// and Apply must reuse the previous Ruleset object outright (no re-merge,
// no re-derive) while staying equal to from-scratch.
func TestResynthFastPathReusesRules(t *testing.T) {
	g := topology.New()
	t1 := g.AddNode("T1", topology.KindToR, 1)
	l1 := g.AddNode("L1", topology.KindLeaf, 2)
	s1 := g.AddNode("S1", topology.KindSpine, 3)
	l2 := g.AddNode("L2", topology.KindLeaf, 2)
	g.Connect(t1, l1)
	g.Connect(l1, s1)
	g.Connect(s1, l2)

	short := routing.Path{t1, l1, s1}
	long := routing.Path{t1, l1, s1, l2}
	rs, err := core.NewResynth(g, []routing.Path{short, long}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := rs.System()
	sys, err := rs.Apply(nil, []routing.Path{short})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Rules != prev.Rules || sys.Merged != prev.Merged || sys.BruteForce != prev.BruteForce {
		t.Fatal("BF-set-preserving removal did not take the rules-reuse fast path")
	}
	assertScratchEqual(t, g, rs)

	// Re-adding it is also set-preserving: same fast path, same rules.
	sys2, err := rs.Apply([]routing.Path{short}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.Rules != prev.Rules {
		t.Fatal("BF-set-preserving add did not reuse the rules")
	}
	assertScratchEqual(t, g, rs)
}

// TestResynthEmptyDelta: a no-op churn returns the current system
// without any recomputation.
func TestResynthEmptyDelta(t *testing.T) {
	cl, set := resynthClos(t)
	rs, err := core.NewResynth(cl.Graph, set.Paths(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := rs.System()
	sys, err := rs.Apply(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys != prev {
		t.Fatal("empty delta rebuilt the system")
	}
	// Removing untracked and re-adding tracked paths is also a no-op.
	foreign := routing.Path{cl.Graph.MustLookup("T1"), cl.Graph.MustLookup("L1")}
	sys, err = rs.Apply(set.Paths()[:1], []routing.Path{foreign})
	if err != nil {
		t.Fatal(err)
	}
	if sys != prev {
		t.Fatal("no-op add/remove rebuilt the system")
	}
}

// TestResynthRemoveAllThenReadd: the state survives draining the entire
// ELP (an empty but valid system) and rebuilding it back.
func TestResynthRemoveAllThenReadd(t *testing.T) {
	cl, set := resynthClos(t)
	g := cl.Graph
	rs, err := core.NewResynth(g, set.Paths(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	initialRules := rs.System().Rules
	sys, err := rs.Apply(nil, set.Paths())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Rules.Len() != 0 || len(rs.Paths()) != 0 {
		t.Fatalf("emptied system still has %d rules, %d paths", sys.Rules.Len(), len(rs.Paths()))
	}
	assertScratchEqual(t, g, rs)
	if _, err := rs.Apply(set.Paths(), nil); err != nil {
		t.Fatal(err)
	}
	assertScratchEqual(t, g, rs)
	if diffs := check.DiffRulesets(initialRules, rs.System().Rules); len(diffs) > 0 {
		t.Fatalf("re-add did not restore the initial rules: %d diffs", len(diffs))
	}
}

// TestResynthApplySetExpansion: ApplySet diffs against the tracked set —
// here across a pod expansion, where the graph grows under the state.
func TestResynthApplySetExpansion(t *testing.T) {
	cl, set := resynthClos(t)
	g := cl.Graph
	rs, err := core.NewResynth(g, set.Paths(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Expand(1); err != nil {
		t.Fatal(err)
	}
	grown := elp.KBounce(g, cl.ToRs, 1, nil)
	if grown.Len() <= set.Len() {
		t.Fatalf("expansion did not grow the ELP: %d -> %d", set.Len(), grown.Len())
	}
	if _, err := rs.ApplySet(grown.Paths()); err != nil {
		t.Fatal(err)
	}
	if len(rs.Paths()) != grown.Len() {
		t.Fatalf("tracking %d paths, want %d", len(rs.Paths()), grown.Len())
	}
	assertScratchEqual(t, g, rs)

	// And shrinking back down via the same entry point.
	if _, err := rs.ApplySet(set.Paths()); err != nil {
		t.Fatal(err)
	}
	assertScratchEqual(t, g, rs)
}

// TestResynthWorkersConsistent: the incremental path under parallel
// derivation matches serial from-scratch synthesis (the engine inherits
// internal/parallel's determinism contract).
func TestResynthWorkersConsistent(t *testing.T) {
	cl, set := resynthClos(t)
	g := cl.Graph
	rs, err := core.NewResynth(g, set.Paths(), core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := elp.NewTracker(g, set)
	a, b := g.MustLookup("T2"), g.MustLookup("L2")
	g.FailLink(a, b)
	if _, err := rs.Apply(nil, tr.LinkDown(a, b)); err != nil {
		t.Fatal(err)
	}
	assertScratchEqual(t, g, rs)
}
