package core

import (
	"strings"
	"testing"

	"repro/internal/paper"
)

func TestDumpRendersPerTagGroups(t *testing.T) {
	f := paper.NewFig5()
	sys, err := Synthesize(f.Graph, f.ELP.Paths(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	sys.Runtime.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "G_1:") || !strings.Contains(out, "G_2:") {
		t.Errorf("missing tag groups:\n%s", out)
	}
	if !strings.Contains(out, "edges:") {
		t.Error("missing edge section")
	}
	// Tag transitions render with the => arrow; same-tag with ->.
	if !strings.Contains(out, "->") {
		t.Error("no same-tag edges rendered")
	}
	// Every vertex line uses the paper's (A_i, x) notation.
	if !strings.Contains(out, "(A_") && !strings.Contains(out, "(B_") {
		t.Errorf("vertex notation missing:\n%s", out)
	}
}
