package core

import (
	"math/rand"
	"testing"

	"repro/internal/elp"
	"repro/internal/topology"
)

func TestGreedyTagUpperBoundArithmetic(t *testing.T) {
	cases := []struct{ T, l, want int }{
		{0, 4, 0},
		{5, 0, 5},
		{5, 1, 5},
		{6, 3, 2},
		{7, 3, 3},
		{9, 3, 3},
		{4, 10, 1},
	}
	for _, c := range cases {
		if got := GreedyTagUpperBound(c.T, c.l); got != c.want {
			t.Errorf("bound(%d,%d) = %d, want %d", c.T, c.l, got, c.want)
		}
	}
}

// TestGreedyRespectsBoundEmpirically: on Jellyfish instances, the merged
// tag count never exceeds ceil(T/l) computed from the observed smallest
// same-priority dependency cycle. Measuring the true smallest cycle is
// expensive; the conservative l = 2 (any directed cycle over distinct
// ports has length >= 2) must always hold, and so must the trivial l = 1.
func TestGreedyRespectsBoundEmpirically(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5; i++ {
		j, err := topology.NewJellyfish(topology.JellyfishConfig{
			Switches: 12 + rng.Intn(20), Ports: 6, Seed: int64(i) + 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		set := elp.ShortestAll(j.Graph, j.Switches)
		bf := BruteForce(j.Graph, set.Paths())
		merged := GreedyMinimize(bf)
		T := bf.MaxTag()
		if got := merged.NumTags(); got > GreedyTagUpperBound(T, 2) {
			t.Errorf("case %d: merged %d tags > bound %d (T=%d, l=2)",
				i, got, GreedyTagUpperBound(T, 2), T)
		}
	}
}

// TestRepairHealsSabotagedRules: delete random rules from a verified
// system; RepairReplay must restore full ELP losslessness and the runtime
// graph must verify again — the machinery that also covers merge-conflict
// fallout.
func TestRepairHealsSabotagedRules(t *testing.T) {
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 14, Ports: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	set := elp.ShortestAll(j.Graph, j.Switches)
	sys, err := Synthesize(j.Graph, set.Paths(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		// Rebuild a sabotaged copy: drop ~30% of rules.
		sab := NewRuleset(j.Graph, sys.Rules.MaxTag())
		for _, r := range sys.Rules.Rules() {
			if rng.Float64() < 0.3 {
				continue
			}
			sab.Add(r)
		}
		_, violations := BuildRuleGraph(sab, set.Paths(), 1)
		if len(violations) == 0 {
			continue // sabotage missed every path; try again
		}
		repairs := RepairReplay(sab, set.Paths(), 1)
		if len(repairs) == 0 {
			t.Fatalf("trial %d: repair produced nothing despite %d violations",
				trial, len(violations))
		}
		tg, after := BuildRuleGraph(sab, set.Paths(), 1)
		if len(after) != 0 {
			t.Fatalf("trial %d: %d paths still lossy after repair", trial, len(after))
		}
		if err := tg.Verify(); err != nil {
			t.Fatalf("trial %d: repaired graph unsafe: %v", trial, err)
		}
	}
}
