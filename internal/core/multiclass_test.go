package core

import (
	"testing"

	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/routing"
)

func TestMultiClassClosSharesTags(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	const M = 1 // bounces tolerated by class 0
	const N = 2 // application classes

	full := elp.KBounce(g, c.ToRs, M, nil)
	// Class 1 starts one tag higher and so tolerates M+N-2 = 0 bounces
	// within the shared range: give it the up-down-only ELP.
	ud := elp.UpDownAll(g, c.ToRs)

	base, err := ClosSynthesize(g, full.Paths(), M)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MultiClassClos(base, [][]routing.Path{full.Paths(), ud.Paths()}, M)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mc.NumLosslessQueues(), M+N; got != want {
		t.Errorf("shared queues = %d, want %d", got, want)
	}
	if naive := NaiveMultiClassQueues(N, M); naive != N*(M+1) || mc.NumLosslessQueues() >= naive+1 {
		t.Errorf("shared %d should not exceed naive %d", mc.NumLosslessQueues(), naive)
	}
	if mc.StartTag(0) != 1 || mc.StartTag(1) != 2 {
		t.Errorf("start tags = %d,%d", mc.StartTag(0), mc.StartTag(1))
	}
	if mc.BouncesTolerated(0) != M+N-1 || mc.BouncesTolerated(1) != M+N-2 {
		t.Errorf("bounce budgets = %d,%d", mc.BouncesTolerated(0), mc.BouncesTolerated(1))
	}
	if err := mc.System.Runtime.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiClassClassOverBudgetFails(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	full := elp.KBounce(g, c.ToRs, 1, nil)
	// Class 1 (start tag 2) asked to carry 1-bounce paths in a tag space
	// of 1+2=3 would succeed (a bounce lands on tag 3, still lossless);
	// shrink the space with M=0 to force failure.
	base0, err := ClosSynthesize(g, elp.UpDownAll(g, c.ToRs).Paths(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = MultiClassClos(base0, [][]routing.Path{full.Paths(), full.Paths()}, 0)
	if err == nil {
		t.Fatal("expected over-budget class to fail verification")
	}
}

func TestMultiClassNoClasses(t *testing.T) {
	c := paper.Testbed()
	base, err := ClosSynthesize(c.Graph, elp.UpDownAll(c.Graph, c.ToRs).Paths(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MultiClassClos(base, nil, 0); err == nil {
		t.Fatal("expected error for zero classes")
	}
}

func TestMultiClassReplayIsolation(t *testing.T) {
	// A class-1 packet (stamp 2) on an up-down path keeps tag 2 end to
	// end and never collides with class 0's tag-1 traffic until either
	// bounces.
	c := paper.Testbed()
	g := c.Graph
	rules := ClosRules(g, 1, 2) // tags 1..3 shared
	ud := elp.UpDownAll(g, c.ToRs)
	for _, p := range ud.Paths()[:8] {
		res := rules.Replay(p, 2)
		if !res.Lossless {
			t.Fatalf("class-1 path %s lossy", p.String(g))
		}
		for _, tag := range res.Tags {
			if tag != 2 {
				t.Fatalf("class-1 up-down path changed tag: %v", res.Tags)
			}
		}
	}
	// A class-0 1-bounce packet ends at tag 2, sharing class 1's queue —
	// the reduced isolation the paper accepts.
	green := paper.Fig3GreenPath(c)
	res := rules.Replay(green, 1)
	if !res.Lossless || res.Tags[len(res.Tags)-1] != 2 {
		t.Fatalf("class-0 bounce tags = %v", res.Tags)
	}
}
