package core

import (
	"fmt"
	"sort"

	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// This file implements incremental re-synthesis: keeping a synthesized
// System up to date under ELP churn (link flaps, switch drains, pod adds)
// without re-running the full pipeline, while guaranteeing the result is
// rule-for-rule identical to from-scratch synthesis on the same path set.
//
// The correctness argument rests on every pipeline stage being a pure
// function of the brute-force graph's vertex/edge *set*, not of the order
// paths were inserted:
//
//   - Algorithm 1's graph is a union of per-path chains, so it can be
//     maintained as a reference-counted set of (port, tag) vertices and
//     edges: removing a path decrements its chain, adding one increments.
//   - GreedyMinimize sorts each tag group by (merge degree, port) — a
//     total order, since ports within a group are distinct — and the
//     sandbox admission test is reachability-based (set-pure), so its
//     output depends only on the brute-force set.
//   - DeriveRules keeps the minimum rewrite per match key and reports
//     conflicts canonically sorted, so rules and conflicts are set-pure.
//   - The runtime graph is a union of per-path replay chains. A path's
//     replay is determined by its NIC stamp plus the rule-table entries
//     at the match keys it consults hop by hop, so a path whose consulted
//     keys all carry the same value in the new ruleset replays to an
//     identical chain: the first divergent hop of any two replays of the
//     same path consults the same key in both rulesets (the trajectories
//     agree up to it), which would make that key a changed one. Resynth
//     therefore indexes paths by consulted key and replays only the paths
//     hit by the old-vs-new rule diff.
//
// Anything outside that argument — replay repairs, a path unexpectedly
// going lossy — falls back to full Synthesize, which is correct by
// construction (it *is* from-scratch synthesis). Rule conflicts stay on
// the incremental path: min-rewrite resolution is itself set-pure.

// Packed (port, tag) vertex keys for the reference-counted graphs. The
// packing doubles as the canonical materialization order: sorting keys
// sorts vertices by (port, tag).
const (
	rsTagBits = 13
	rsTagMask = 1<<rsTagBits - 1
	rsMaxPort = 1<<(32-rsTagBits) - 1
)

func packTagKey(p topology.PortID, tag int) uint32 {
	if p < 0 || int(p) > rsMaxPort || tag < 0 || tag > rsTagMask {
		panic(fmt.Sprintf("core: tag key out of range: port=%d tag=%d", p, tag))
	}
	return uint32(p)<<rsTagBits | uint32(tag)
}

func unpackTagKey(k uint32) TagNode {
	return TagNode{Port: topology.PortID(k >> rsTagBits), Tag: int(k & rsTagMask)}
}

// refGraph is a reference-counted (port, tag) multigraph: counts track how
// many live paths contribute each vertex/edge, and `changed` records
// whether the underlying *set* (count zero vs non-zero) changed since the
// last clearChanged.
type refGraph struct {
	nodes   *cmap32
	edges   *cmap64
	changed bool

	// materialize scratch, reused across calls.
	matKeys  []uint32
	matEkeys []uint64
	matIDs   []int32 // tg vertex id per nodes-table slot
}

func newRefGraph() refGraph {
	return refGraph{nodes: newCmap32(), edges: newCmap64()}
}

func (rg *refGraph) addChain(chain []uint32) {
	for i, k := range chain {
		if rg.nodes.incr(k) {
			rg.changed = true
		}
		if i > 0 {
			if rg.edges.incr(uint64(chain[i-1])<<32 | uint64(k)) {
				rg.changed = true
			}
		}
	}
}

func (rg *refGraph) removeChain(chain []uint32) {
	for i, k := range chain {
		if rg.nodes.decr(k) {
			rg.changed = true
		}
		if i > 0 {
			if rg.edges.decr(uint64(chain[i-1])<<32 | uint64(k)) {
				rg.changed = true
			}
		}
	}
}

// materialize builds a TaggedGraph over g from the refcounted set, visiting
// vertices and edges in sorted key order so the same set always produces
// the same graph regardless of the churn history that led to it.
func (rg *refGraph) materialize(g *topology.Graph) *TaggedGraph {
	tg := NewTaggedGraph(g)
	keys := rg.matKeys[:0]
	for j, k := range rg.nodes.keys {
		if k != 0 && rg.nodes.vals[j] > 0 {
			keys = append(keys, k)
		}
	}
	rg.matKeys = keys
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// The nodes table's slot position doubles as a dense vertex-id index,
	// sparing a per-materialize map.
	if cap(rg.matIDs) < len(rg.nodes.keys) {
		rg.matIDs = make([]int32, len(rg.nodes.keys))
	}
	ids := rg.matIDs[:len(rg.nodes.keys)]
	for _, k := range keys {
		ids[rg.nodes.slot(k)] = tg.intern(unpackTagKey(k))
	}
	ekeys := rg.matEkeys[:0]
	for j, ek := range rg.edges.keys {
		if ek != 0 && rg.edges.vals[j] > 0 {
			ekeys = append(ekeys, ek)
		}
	}
	rg.matEkeys = ekeys
	sort.Slice(ekeys, func(i, j int) bool { return ekeys[i] < ekeys[j] })
	for _, ek := range ekeys {
		tg.addEdgeIDs(ids[rg.nodes.slot(uint32(ek>>32))], ids[rg.nodes.slot(uint32(ek))])
	}
	return tg
}

// rsHop is the static classification context of one interior hop: the
// switch that rewrites the tag and the port numbers the match key uses.
// Port numbering never changes once a link exists (failures only mark
// links down), so this is computed once per path.
type rsHop struct {
	sw      topology.NodeID
	in, out int32
}

// rsPath is one tracked ELP slot's cached replay state; the path itself
// and its liveness bit live in the Resynth's parallel paths/lives slices,
// which hot scans (activePaths, lookup) walk without dragging these wider
// structs through the cache. A slot with lives[idx]=false is *parked*:
// the path left the ELP but its static metadata, key set, and index
// entries stay resident so a re-add (the flap-recovery case) revives it
// without recomputing graph state or touching the key index. ver
// invalidates the slot's keyIdx entries when its key set is replaced.
type rsPath struct {
	pids  []topology.PortID // ingress port per hop (len(path)-1)
	hops  []rsHop           // classification context per interior hop (len(path)-2)
	chain []uint32          // runtime replay chain under the current rules
	keys  []uint64          // rule keys the replay consulted (hits and misses)
	ver   uint32
}

// pathState resolves the static per-path replay metadata from the graph.
func pathState(g *topology.Graph, p routing.Path) rsPath {
	e := rsPath{pids: make([]topology.PortID, 0, len(p)-1)}
	if len(p) > 2 {
		e.hops = make([]rsHop, 0, len(p)-2)
	}
	for i := 1; i < len(p); i++ {
		e.pids = append(e.pids, ingressPortID(g, p[i-1], p[i]))
		if i+1 < len(p) {
			sw := p[i]
			e.hops = append(e.hops, rsHop{
				sw:  sw,
				in:  int32(g.PortToPeer(sw, p[i-1])),
				out: int32(g.PortToPeer(sw, p[i+1])),
			})
		}
	}
	return e
}

// bfChainOf writes the packed Algorithm 1 vertex chain (tag = hop index,
// starting at 1) into buf using the cached ingress ports.
func bfChainOf(pids []topology.PortID, buf []uint32) []uint32 {
	buf = buf[:0]
	for i, pid := range pids {
		buf = append(buf, packTagKey(pid, i+1))
	}
	return buf
}

// replayInto runs e's path through rs from the NIC stamp (tag 1) using the
// cached hop metadata, appending the packed runtime chain and the rule
// keys consulted (whether they hit or missed — a key that later gains an
// entry changes the outcome too) to the caller's buffers. ok=false means
// the path went lossy.
func (e *rsPath) replayInto(rs *Ruleset, chain []uint32, keys []uint64) ([]uint32, []uint64, bool) {
	tag := 1
	for i, pid := range e.pids {
		chain = append(chain, packTagKey(pid, tag))
		if i < len(e.hops) {
			h := e.hops[i]
			if k, kok := packRuleKeyOK(h.sw, tag, int(h.in), int(h.out)); kok {
				keys = append(keys, uint64(k))
				if nt, hit := rs.rules[k]; hit {
					tag = nt
				} else {
					tag = rs.Classify(h.sw, tag, int(h.in), int(h.out))
				}
			} else {
				tag = rs.Classify(h.sw, tag, int(h.in), int(h.out))
			}
			if tag == LossyTag {
				return chain, keys, false
			}
		}
	}
	return chain, keys, true
}

// Resynth maintains a synthesized System incrementally across ELP churn.
// Apply diffs the path set, updates the refcounted brute-force graph,
// reruns only the stages whose inputs changed, and replays only the added
// paths plus those whose consulted rule keys the old-vs-new table diff
// touched. The returned System is guaranteed identical (rules, graphs,
// max tag, conflicts) to Synthesize(g, Paths(), opts) — the churn fuzzer
// in internal/check asserts exactly that.
//
// Resynth is not safe for concurrent use; callers serialize Apply.
type Resynth struct {
	g    *topology.Graph
	opts Options
	// byKey maps path hash → slot index (parked slots included, so check
	// lives on lookup), with true hash collisions spilling to the overflow
	// map; lookups verify node-for-node. Hashing the node IDs directly
	// avoids routing.Path.Key's string construction on the churn hot path.
	byKey     map[uint64]int32
	byKeyOver map[uint64][]int32
	list      []rsPath
	paths     []routing.Path // per-slot path, parallel to list
	lives     []bool         // per-slot liveness, parallel to list
	dead      int            // parked slot count
	bf        refGraph
	run       refGraph
	sys       *System

	// keyIdx maps each consulted rule key to the slots that consulted it,
	// as packed idx<<32|ver entries. Parked slots keep their entries
	// (dormant, skipped on read); entries go stale only when a slot's key
	// set is replaced, and the whole index is rebuilt when stale entries
	// dominate.
	keyIdx   map[uint64][]uint64
	idxLive  int
	idxStale int

	// Reusable scratch for replays, chain staging, and affected-path
	// collection.
	chainBuf  []uint32
	keyBuf    []uint64
	seen      []bool
	remBuf    [][]uint32
	addBuf    []int
	affectBuf []int

	// fullSynth, when non-nil, replaces the direct Synthesize calls the
	// initial build and the rebuild() fallback make — the synthesis cache
	// (internal/synthcache) hooks in here so churn controllers reuse
	// cached systems instead of re-running Algorithms 1+2.
	fullSynth func(g *topology.Graph, paths []routing.Path, opts Options) (*System, error)

	broken bool
}

// pathHash is an FNV-1a style hash over the path's node IDs.
func pathHash(p routing.Path) uint64 {
	h := uint64(14695981039346656037)
	for _, n := range p {
		h = (h ^ uint64(uint32(n))) * 1099511628211
	}
	return h
}

func pathsEqual(a, b routing.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup finds the slot (live or parked) tracking p.
func (r *Resynth) lookup(p routing.Path) (int, bool) {
	h := pathHash(p)
	if idx, ok := r.byKey[h]; ok {
		if pathsEqual(r.paths[idx], p) {
			return int(idx), true
		}
		for _, idx := range r.byKeyOver[h] {
			if pathsEqual(r.paths[idx], p) {
				return int(idx), true
			}
		}
	}
	return 0, false
}

// insert registers slot idx in the path index.
func (r *Resynth) insert(idx int) {
	h := pathHash(r.paths[idx])
	if _, ok := r.byKey[h]; !ok {
		r.byKey[h] = int32(idx)
		return
	}
	if r.byKeyOver == nil {
		r.byKeyOver = make(map[uint64][]int32)
	}
	r.byKeyOver[h] = append(r.byKeyOver[h], int32(idx))
}

// NewResynth synthesizes the initial system from scratch and returns the
// incremental state tracking it. Duplicate paths (by Key) are dropped,
// matching elp.Set semantics.
func NewResynth(g *topology.Graph, paths []routing.Path, opts Options) (*Resynth, error) {
	return NewResynthFull(g, paths, opts, nil)
}

// NewResynthFull is NewResynth with an explicit full-synthesis function:
// fn replaces every from-scratch Synthesize call (the initial build here
// and the rebuild() fallback), and must be observably equivalent to
// Synthesize — the synthesis cache qualifies because cached systems are
// rule-identical to fresh ones. A nil fn means plain Synthesize.
//
// The systems fn returns may be shared with other consumers: Resynth
// never mutates a system it was handed — incremental application always
// constructs fresh System values.
func NewResynthFull(g *topology.Graph, paths []routing.Path, opts Options,
	fn func(*topology.Graph, []routing.Path, Options) (*System, error)) (*Resynth, error) {
	if opts.StartTag == 0 {
		opts.StartTag = 1
	}
	if opts.StartTag != 1 {
		return nil, fmt.Errorf("core: resynth requires StartTag 1, got %d", opts.StartTag)
	}
	deduped := make([]routing.Path, 0, len(paths))
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		if k := p.Key(); !seen[k] {
			seen[k] = true
			deduped = append(deduped, p)
		}
	}
	r := &Resynth{g: g, opts: opts, fullSynth: fn}
	sys, err := r.synthesize(deduped)
	if err != nil {
		return nil, err
	}
	if err := r.initFrom(sys); err != nil {
		return nil, err
	}
	return r, nil
}

// synthesize runs the full-synthesis function (the hook if installed,
// plain Synthesize otherwise).
func (r *Resynth) synthesize(paths []routing.Path) (*System, error) {
	if r.fullSynth != nil {
		return r.fullSynth(r.g, paths, r.opts)
	}
	return Synthesize(r.g, paths, r.opts)
}

// initFrom rebuilds the entire incremental state (path index, refcounted
// graphs, cached chains, key index) from a freshly synthesized system.
func (r *Resynth) initFrom(sys *System) error {
	r.sys = sys
	r.byKey = make(map[uint64]int32, len(sys.ELP))
	r.byKeyOver = nil
	r.list = make([]rsPath, 0, len(sys.ELP))
	r.paths = make([]routing.Path, 0, len(sys.ELP))
	r.lives = make([]bool, 0, len(sys.ELP))
	r.dead = 0
	r.bf = newRefGraph()
	r.run = newRefGraph()
	r.keyIdx = make(map[uint64][]uint64)
	r.idxLive, r.idxStale = 0, 0
	r.seen = nil // may hold flags for the list being discarded
	var buf []uint32
	for _, p := range sys.ELP {
		e := pathState(r.g, p)
		buf = bfChainOf(e.pids, buf)
		r.bf.addChain(buf)
		chain, keys, ok := e.replayInto(sys.Rules, nil, nil)
		if !ok {
			return fmt.Errorf("core: resynth init: path %s lossy under synthesized rules", p.String(r.g))
		}
		e.chain, e.keys = chain, keys
		idx := len(r.list)
		r.run.addChain(chain)
		r.list = append(r.list, e)
		r.paths = append(r.paths, p)
		r.lives = append(r.lives, true)
		r.insert(idx)
		r.indexKeys(idx)
	}
	return nil
}

// indexKeys registers r.list[idx]'s consulted keys in the key index.
func (r *Resynth) indexKeys(idx int) {
	e := &r.list[idx]
	en := uint64(idx)<<32 | uint64(e.ver)
	for _, k := range e.keys {
		r.keyIdx[k] = append(r.keyIdx[k], en)
	}
	r.idxLive += len(e.keys)
}

// unindexKeys marks r.list[idx]'s current index entries stale (they are
// filtered lazily on read or swept by rebuildIndex).
func (r *Resynth) unindexKeys(idx int) {
	e := &r.list[idx]
	e.ver++
	r.idxLive -= len(e.keys)
	r.idxStale += len(e.keys)
}

// rebuildIndex re-derives the key index from every resident slot — live
// and parked alike, since parked slots' entries must survive for revival —
// dropping all stale entries.
func (r *Resynth) rebuildIndex() {
	r.keyIdx = make(map[uint64][]uint64)
	r.idxLive, r.idxStale = 0, 0
	for idx := range r.list {
		r.indexKeys(idx)
	}
}

// commit stores a freshly replayed chain and key set on slot idx, reusing
// the slot's backing arrays (the inputs may live in scratch buffers) and
// keeping the key index consistent: when the consulted keys are unchanged
// — every flap-recovery revival — the existing entries stay valid and the
// index is untouched.
func (r *Resynth) commit(idx int, chain []uint32, keys []uint64) {
	e := &r.list[idx]
	if !keysEqual(keys, e.keys) {
		r.unindexKeys(idx)
		e.keys = append(e.keys[:0], keys...)
		r.indexKeys(idx)
	}
	e.chain = append(e.chain[:0], chain...)
}

// System returns the current synthesized system.
func (r *Resynth) System() *System { return r.sys }

// Paths returns the current ELP set in insertion order.
func (r *Resynth) Paths() []routing.Path { return r.activePaths() }

func (r *Resynth) activePaths() []routing.Path {
	out := make([]routing.Path, 0, len(r.list)-r.dead)
	for i, alive := range r.lives {
		if alive {
			out = append(out, r.paths[i])
		}
	}
	return out
}

// rebuild is the full-synthesis fallback: anything the incremental
// argument does not cover (prior repairs, a lossy replay) re-runs
// Synthesize on the current path set and rebuilds the state. Correct by
// construction, O(fabric).
func (r *Resynth) rebuild() (*System, error) {
	telemetry.Default.Counter("resynth_full_rebuilds_total").Inc()
	sys, err := r.synthesize(r.activePaths())
	if err != nil {
		r.broken = true
		return nil, err
	}
	if err := r.initFrom(sys); err != nil {
		r.broken = true
		return nil, err
	}
	return sys, nil
}

// Apply removes then adds the given paths and returns the re-synthesized
// system. Removals of untracked paths and re-adds of tracked paths are
// ignored, so callers can pass raw churn deltas. An error marks the state
// unusable (it indicates a bug in synthesis, not bad input).
func (r *Resynth) Apply(added, removed []routing.Path) (*System, error) {
	defer telemetry.Default.StartSpan("synth/resynth").End()
	if r.broken {
		return nil, fmt.Errorf("core: resynth state is broken by a previous error")
	}
	telemetry.Default.Counter("resynth_apply_total").Inc()

	// Prior replay repairs mean the current rules are not the pure
	// set-function of the brute-force graph the incremental argument
	// needs (the repair pass scans paths in order); stay on the full path
	// until synthesis is repair-free. Conflicts alone are fine: their
	// resolution keeps the minimum rewrite per match key and reports them
	// canonically sorted, both pure functions of the merged graph.
	dirty := len(r.sys.Repairs) > 0

	r.bf.changed = false
	var buf []uint32

	// Removals first, so a remove+add of the same path nets to a replace.
	// A removal only parks the slot: its metadata and dormant index
	// entries wait for revival.
	remChains := r.remBuf[:0]
	for _, p := range removed {
		idx, ok := r.lookup(p)
		if !ok || !r.lives[idx] {
			continue
		}
		e := &r.list[idx]
		buf = bfChainOf(e.pids, buf)
		r.bf.removeChain(buf)
		remChains = append(remChains, e.chain)
		r.lives[idx] = false
		r.dead++
	}
	r.remBuf = remChains
	addedIdx := r.addBuf[:0]
	for _, p := range added {
		if idx, ok := r.lookup(p); ok {
			if !r.lives[idx] {
				// Revival: the parked metadata was validated when the
				// path first entered, and ports never renumber.
				r.lives[idx] = true
				r.dead--
				buf = bfChainOf(r.list[idx].pids, buf)
				r.bf.addChain(buf)
				addedIdx = append(addedIdx, idx)
			}
			continue
		}
		if !p.LoopFree() || !p.Valid(r.g) {
			r.broken = true
			return nil, fmt.Errorf("core: resynth: invalid path %s", p.String(r.g))
		}
		e := pathState(r.g, p)
		buf = bfChainOf(e.pids, buf)
		r.bf.addChain(buf)
		idx := len(r.list)
		r.list = append(r.list, e)
		r.paths = append(r.paths, p)
		r.lives = append(r.lives, true)
		r.insert(idx)
		addedIdx = append(addedIdx, idx)
	}
	r.addBuf = addedIdx
	telemetry.Default.Counter("resynth_paths_removed_total").Add(int64(len(remChains)))
	telemetry.Default.Counter("resynth_paths_added_total").Add(int64(len(addedIdx)))

	if len(remChains) == 0 && len(addedIdx) == 0 {
		return r.sys, nil
	}
	if dirty {
		return r.rebuild()
	}

	if !r.bf.changed {
		return r.applySameRules(remChains, addedIdx)
	}
	return r.applyNewRules(remChains, addedIdx)
}

// applySameRules is the fast path: the brute-force vertex/edge set did not
// change (every removed chain is still covered by surviving paths, every
// added chain was already present), so tags, rules, and conflicts are all
// unchanged — only the runtime graph's refcounts move.
func (r *Resynth) applySameRules(remChains [][]uint32, addedIdx []int) (*System, error) {
	prev := r.sys
	r.run.changed = false
	for _, c := range remChains {
		r.run.removeChain(c)
	}
	for _, idx := range addedIdx {
		chain, keys, ok := r.list[idx].replayInto(prev.Rules, r.chainBuf[:0], r.keyBuf[:0])
		r.chainBuf, r.keyBuf = chain, keys
		if !ok {
			// From-scratch synthesis would have repaired; defer to it.
			return r.rebuild()
		}
		r.run.addChain(chain)
		r.commit(idx, chain, keys)
	}
	runtime := prev.Runtime
	if r.run.changed {
		runtime = r.run.materialize(r.g)
		if err := runtime.Verify(); err != nil {
			r.broken = true
			return nil, fmt.Errorf("core: resynth runtime graph: %w", err)
		}
	}
	telemetry.Default.Counter("resynth_rules_reused_total").Inc()
	r.sys = &System{
		Graph:      r.g,
		ELP:        r.activePaths(),
		BruteForce: prev.BruteForce,
		Merged:     prev.Merged,
		Rules:      prev.Rules,
		Runtime:    runtime,
		Conflicts:  prev.Conflicts,
	}
	r.compact()
	return r.sys, nil
}

// applyNewRules re-runs Algorithm 2 and rule derivation on the updated
// brute-force set, then replays only the added paths plus the paths the
// key index reports as touched by the old-vs-new rule diff — everything
// else provably replays to its stored chain.
func (r *Resynth) applyNewRules(remChains [][]uint32, addedIdx []int) (*System, error) {
	prev := r.sys
	bfTG := r.bf.materialize(r.g)
	tagged := bfTG
	var merged *TaggedGraph
	if !r.opts.SkipMerge {
		merged = GreedyMinimize(bfTG)
		if err := merged.Verify(); err != nil {
			r.broken = true
			return nil, fmt.Errorf("core: resynth merged graph: %w", err)
		}
		tagged = merged
	}
	// Conflicts are carried, not punted on: min-rewrite resolution is
	// set-pure. Only a lossy replay below (Synthesize's repair trigger)
	// demands the full pipeline.
	rules, conflicts := deriveRulesN(tagged, r.opts.Workers)

	r.run.changed = false
	for _, c := range remChains {
		r.run.removeChain(c)
	}

	// Collect the live paths whose replay consulted a key whose table
	// entry changed (value change, removal, or addition at a previously-
	// missed key). Reads through the index drop stale entries as they go;
	// dormant entries (parked slots) are kept but not collected.
	if cap(r.seen) < len(r.list) {
		r.seen = make([]bool, len(r.list))
	}
	seen := r.seen[:len(r.list)]
	affected := r.affectBuf[:0]
	collect := func(k uint64) {
		entries, ok := r.keyIdx[k]
		if !ok {
			return
		}
		kept := entries[:0]
		for _, en := range entries {
			idx, ver := int(en>>32), uint32(en)
			e := &r.list[idx]
			if e.ver != ver {
				r.idxStale--
				continue
			}
			kept = append(kept, en)
			if r.lives[idx] && !seen[idx] {
				seen[idx] = true
				affected = append(affected, idx)
			}
		}
		if len(kept) == 0 {
			delete(r.keyIdx, k)
		} else {
			r.keyIdx[k] = kept
		}
	}
	for k, v := range prev.Rules.rules {
		if nv, ok := rules.rules[k]; !ok || nv != v {
			collect(uint64(k))
		}
	}
	for k := range rules.rules {
		if _, ok := prev.Rules.rules[k]; !ok {
			collect(uint64(k))
		}
	}
	r.affectBuf = affected

	replays := 0
	for _, idx := range addedIdx {
		chain, keys, ok := r.list[idx].replayInto(rules, r.chainBuf[:0], r.keyBuf[:0])
		r.chainBuf, r.keyBuf = chain, keys
		if !ok {
			return r.rebuild()
		}
		r.run.addChain(chain)
		r.commit(idx, chain, keys)
		replays++
	}
	for _, idx := range affected {
		seen[idx] = false
		e := &r.list[idx]
		chain, keys, ok := e.replayInto(rules, r.chainBuf[:0], r.keyBuf[:0])
		r.chainBuf, r.keyBuf = chain, keys
		if !ok {
			return r.rebuild()
		}
		replays++
		if chainsEqual(chain, e.chain) {
			continue // the touched rules resolved to the same trajectory
		}
		r.run.removeChain(e.chain)
		r.run.addChain(chain)
		r.commit(idx, chain, keys)
	}
	telemetry.Default.Counter("resynth_replays_total").Add(int64(replays))

	runtime := prev.Runtime
	if r.run.changed {
		runtime = r.run.materialize(r.g)
		if err := runtime.Verify(); err != nil {
			r.broken = true
			return nil, fmt.Errorf("core: resynth runtime graph: %w", err)
		}
	}
	r.sys = &System{
		Graph:      r.g,
		ELP:        r.activePaths(),
		BruteForce: bfTG,
		Merged:     merged,
		Rules:      rules,
		Runtime:    runtime,
		Conflicts:  conflicts,
	}
	r.compact()
	return r.sys, nil
}

func chainsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func keysEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApplySet diffs the given path set against the tracked one and applies
// the delta — the entry point for policy re-evaluation (e.g. after a pod
// expansion re-enumerates ELP paths).
func (r *Resynth) ApplySet(paths []routing.Path) (*System, error) {
	want := make(map[string]bool, len(paths))
	var added []routing.Path
	for _, p := range paths {
		k := p.Key()
		if want[k] {
			continue
		}
		want[k] = true
		if idx, ok := r.lookup(p); !ok || !r.lives[idx] {
			added = append(added, p)
		}
	}
	var removed []routing.Path
	for i, alive := range r.lives {
		if alive && !want[r.paths[i].Key()] {
			removed = append(removed, r.paths[i])
		}
	}
	return r.Apply(added, removed)
}

// compact drops parked slots once they dominate the path list, and sweeps
// the key index once stale entries dominate it. Both rebuilds are O(live
// state) and amortize against the churn that made the garbage.
func (r *Resynth) compact() {
	if r.dead > len(r.list)/2 && r.dead > 0 {
		n := len(r.list) - r.dead
		live := make([]rsPath, 0, n)
		paths := make([]routing.Path, 0, n)
		for i, alive := range r.lives {
			if alive {
				live = append(live, r.list[i])
				paths = append(paths, r.paths[i])
			}
		}
		r.list, r.paths, r.dead = live, paths, 0
		r.lives = make([]bool, n)
		for i := range r.lives {
			r.lives[i] = true
		}
		r.seen = nil
		r.byKey = make(map[uint64]int32, n)
		r.byKeyOver = nil
		for idx := range r.list {
			r.insert(idx)
		}
		r.rebuildIndex() // entry idx fields shifted
		return
	}
	if r.idxStale > r.idxLive && r.idxStale > 4096 {
		r.rebuildIndex()
	}
}
