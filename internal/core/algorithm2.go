package core

import (
	"sort"

	"repro/internal/telemetry"
)

// GreedyMinimize implements the paper's Algorithm 2: it compresses the
// tags of a brute-force tagged graph by greedily merging as many (port,
// oldTag) vertices as possible into each new tag, subject to the per-tag
// CBD-free constraint.
//
// New tags are assigned in increasing old-tag order, which preserves the
// monotonic property: an edge's head is always processed after its tail,
// so the head's new tag can never be smaller. Within one new tag t', the
// sandbox graph over ports must stay acyclic; a vertex whose addition
// would close a cycle is re-tagged t'+1 (which cannot itself create a
// cycle, because every vertex demoted during one old-tag iteration shares
// that old tag and brute-force graphs have no same-tag edges).
//
// The sandbox (sandbox.go) answers the acyclicity question incrementally
// over dense, epoch-stamped port arrays: uncontested admissions are O(1)
// and contested ones cost one allocation-free reachability walk. The loop
// below likewise runs over dense vertex IDs — no per-vertex map
// operations anywhere in Algorithm 2.
//
// The input graph must be a brute-force graph (every edge increases the
// tag by exactly one); GreedyMinimize panics otherwise, because the
// sandbox reasoning above is unsound for arbitrary graphs. The check is
// folded into the predecessor walk that computes merge degrees anyway
// (every edge is some vertex's in-edge), so validation costs nothing
// extra and stops at the first violation.
func GreedyMinimize(bf *TaggedGraph) *TaggedGraph {
	defer telemetry.Default.StartSpan("synth/alg2").End()
	n := len(bf.nodes)

	// Bucket vertex IDs by old tag (counting sort — byTag[start[t]:start[t+1]]
	// is old tag t's group, in insertion order before the per-group sort).
	start := make([]int32, bf.maxTag+2)
	for _, nd := range bf.nodes {
		start[nd.Tag+1]++
	}
	for t := 1; t <= bf.maxTag+1; t++ {
		start[t] += start[t-1]
	}
	byTag := make([]int32, n)
	fill := make([]int32, bf.maxTag+1)
	copy(fill, start)
	for id, nd := range bf.nodes {
		if nd.Tag == 0 && bf.predHead[id] != 0 {
			// An in-edge whose head carries tag 0 cannot satisfy
			// To.Tag == From.Tag+1; tag-0 groups are never processed
			// below, so this is the one case the fused check would miss.
			panic("core: GreedyMinimize requires a brute-force tagged graph")
		}
		byTag[fill[nd.Tag]] = int32(id)
		fill[nd.Tag]++
	}

	newTag := make([]int32, n)
	// sb is the port graph of the current new tag t'. Edges exist only
	// between ports whose vertices were both merged into t'.
	sb := newSandbox(bf.g.NumPorts())
	deg := make([]int32, n)
	var us []int32
	tPrime := int32(1)
	// Merge-loop telemetry: vertices admitted into the current new tag vs
	// demoted to the next one. Tallied locally, exported once at the end.
	var merges, demotions int64

	for t := 1; t <= bf.maxTag; t++ {
		// Process the least-constrained vertices first: those with the
		// fewest candidate same-tag in-edges. Unconstrained vertices can
		// never fail, and admitting them first leaves the sandbox as
		// sparse as possible when the contested ones arrive. The ordering
		// is what keeps large Jellyfish instances at the paper's three
		// priorities (Table 5); a naive port order drifts to four. The
		// degrees are stable within the iteration because every
		// predecessor (old tag t-1) was assigned in the previous one.
		group := byTag[start[t]:start[t+1]]
		for _, v := range group {
			d := int32(0)
			for i := bf.predHead[v]; i != 0; i = bf.predPool[i-1].next {
				u := bf.predPool[i-1].node
				if bf.nodes[u].Tag != t-1 {
					panic("core: GreedyMinimize requires a brute-force tagged graph")
				}
				if newTag[u] == tPrime {
					d++
				}
			}
			deg[v] = d
		}
		sort.Slice(group, func(i, j int) bool {
			if deg[group[i]] != deg[group[j]] {
				return deg[group[i]] < deg[group[j]]
			}
			return bf.nodes[group[i]].Port < bf.nodes[group[j]].Port
		})
		demoted := false
		for _, v := range group {
			// Candidate same-tag edges: predecessors (old tag t-1) that
			// were merged into the current new tag.
			us = us[:0]
			for i := bf.predHead[v]; i != 0; i = bf.predPool[i-1].next {
				u := bf.predPool[i-1].node
				if newTag[u] == tPrime {
					us = append(us, int32(bf.nodes[u].Port))
				}
			}
			if sb.tryAdd(int32(bf.nodes[v].Port), us) {
				newTag[v] = tPrime
				merges++
			} else {
				newTag[v] = tPrime + 1
				demotions++
				demoted = true
			}
		}
		if demoted {
			// The demoted vertices all share old tag t, so G_{t'+1} starts
			// with no edges among them; an empty sandbox is exactly it.
			tPrime++
			sb.reset()
		}
	}
	telemetry.Default.Counter("synth_alg2_merges_total").Add(merges)
	telemetry.Default.Counter("synth_alg2_demotions_total").Add(demotions)

	// Materialize the merged graph: remap every vertex and edge through
	// newTag. intern/addEdgeIDs collapse vertices (and dedup edges) that
	// merged onto the same (port, newTag).
	out := NewTaggedGraph(bf.g)
	out.nodes = make([]TagNode, 0, n)
	out.succHead = make([]int32, 0, n)
	out.predHead = make([]int32, 0, n)
	out.succPool = make([]adjEntry, 0, bf.numEdges)
	out.predPool = make([]adjEntry, 0, bf.numEdges)
	ids := make([]int32, n)
	for id, nd := range bf.nodes {
		ids[id] = out.intern(TagNode{Port: nd.Port, Tag: int(newTag[id])})
	}
	for id := range bf.nodes {
		for i := bf.succHead[id]; i != 0; i = bf.succPool[i-1].next {
			out.addEdgeIDs(ids[id], ids[bf.succPool[i-1].node])
		}
	}
	return out
}
