package core

import (
	"sort"

	"repro/internal/topology"
)

// GreedyMinimize implements the paper's Algorithm 2: it compresses the
// tags of a brute-force tagged graph by greedily merging as many (port,
// oldTag) vertices as possible into each new tag, subject to the per-tag
// CBD-free constraint.
//
// New tags are assigned in increasing old-tag order, which preserves the
// monotonic property: an edge's head is always processed after its tail,
// so the head's new tag can never be smaller. Within one new tag t', the
// sandbox graph over ports must stay acyclic; a vertex whose addition
// would close a cycle is re-tagged t'+1 (which cannot itself create a
// cycle, because every vertex demoted during one old-tag iteration shares
// that old tag and brute-force graphs have no same-tag edges).
//
// The input graph must be a brute-force graph (every edge increases the
// tag by exactly one); GreedyMinimize panics otherwise, because the
// sandbox reasoning above is unsound for arbitrary graphs.
func GreedyMinimize(bf *TaggedGraph) *TaggedGraph {
	for e := range bf.edgeSet {
		if e.To.Tag != e.From.Tag+1 {
			panic("core: GreedyMinimize requires a brute-force tagged graph")
		}
	}

	// Vertices grouped by old tag.
	byTag := make(map[int][]TagNode)
	for n := range bf.nodes {
		byTag[n.Tag] = append(byTag[n.Tag], n)
	}

	newTag := make(map[TagNode]int, len(bf.nodes))
	// sandbox is the port graph of the current new tag t'. Edges exist
	// only between ports whose vertices were both merged into t'.
	sandbox := make(map[topology.PortID][]topology.PortID)
	tPrime := 1

	for t := 1; t <= bf.maxTag; t++ {
		// Process the least-constrained vertices first: those with the
		// fewest candidate same-tag in-edges. Unconstrained vertices can
		// never fail, and admitting them first leaves the sandbox as
		// sparse as possible when the contested ones arrive. The ordering
		// is what keeps large Jellyfish instances at the paper's three
		// priorities (Table 5); a naive port order drifts to four. The
		// degrees are stable within the iteration because every
		// predecessor (old tag t-1) was assigned in the previous one.
		ns := byTag[t]
		deg := make(map[TagNode]int, len(ns))
		for _, v := range ns {
			d := 0
			for _, u := range bf.pred[v] {
				if newTag[u] == tPrime {
					d++
				}
			}
			deg[v] = d
		}
		sort.Slice(ns, func(i, j int) bool {
			if deg[ns[i]] != deg[ns[j]] {
				return deg[ns[i]] < deg[ns[j]]
			}
			return ns[i].Port < ns[j].Port
		})
		demoted := false
		for _, v := range ns {
			// Candidate same-tag edges: predecessors (old tag t-1) that
			// were merged into the current new tag.
			var newEdges []topology.PortID
			for _, u := range bf.pred[v] {
				if newTag[u] == tPrime {
					newEdges = append(newEdges, u.Port)
				}
			}
			if tryAddAcyclic(sandbox, v.Port, newEdges) {
				newTag[v] = tPrime
			} else {
				newTag[v] = tPrime + 1
				demoted = true
			}
		}
		if demoted {
			// The demoted vertices all share old tag t, so G_{t'+1} starts
			// with no edges among them; a fresh sandbox is exactly it.
			tPrime++
			sandbox = make(map[topology.PortID][]topology.PortID)
		}
	}

	// Materialize the merged graph.
	out := NewTaggedGraph(bf.g)
	for n := range bf.nodes {
		out.AddNode(TagNode{Port: n.Port, Tag: newTag[n]})
	}
	for e := range bf.edgeSet {
		out.AddEdge(
			TagNode{Port: e.From.Port, Tag: newTag[e.From]},
			TagNode{Port: e.To.Port, Tag: newTag[e.To]},
		)
	}
	return out
}

// tryAddAcyclic tentatively adds port p (with the given incoming same-tag
// edges) to the sandbox and commits iff the graph stays acyclic. The check
// is incremental: a new cycle must pass through a new edge u->p, which
// exists iff p already reaches u.
func tryAddAcyclic(adj map[topology.PortID][]topology.PortID, p topology.PortID, newEdges []topology.PortID) bool {
	if len(newEdges) > 0 {
		targets := make(map[topology.PortID]bool, len(newEdges))
		for _, u := range newEdges {
			if u == p {
				return false // self-loop (cannot occur for path graphs)
			}
			targets[u] = true
		}
		if reachesAny(adj, p, targets) {
			return false
		}
	}
	for _, u := range newEdges {
		adj[u] = append(adj[u], p)
	}
	return true
}

// reachesAny reports whether any node in targets is reachable from start.
func reachesAny(adj map[topology.PortID][]topology.PortID, start topology.PortID, targets map[topology.PortID]bool) bool {
	if targets[start] {
		return true
	}
	seen := map[topology.PortID]bool{start: true}
	stack := []topology.PortID{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if targets[v] {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}
