package core

import (
	"repro/internal/parallel"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// This file holds the sharded builders of the synthesis pipeline. They
// all follow the same shape: path (or switch) ranges are fanned out to
// workers, each worker fills a shard-private structure, and shards are
// folded in shard order — so any worker count yields the same output as
// the serial walk, and par=1 runs inline with no goroutines at all.

// BruteForceN is BruteForce with an explicit worker count (0 =
// GOMAXPROCS, 1 = serial). All worker counts produce the same graph.
func BruteForceN(g *topology.Graph, paths []routing.Path, par int) *TaggedGraph {
	defer telemetry.Default.StartSpan("synth/alg1").End()
	w := parallel.Workers(par, len(paths))
	if w <= 1 {
		tg := NewTaggedGraph(g)
		for _, r := range paths {
			tg.addPath(r)
		}
		return tg
	}
	shards := parallel.Shards(len(paths), w)
	locals := make([]*TaggedGraph, len(shards))
	parallel.ForEachShard(len(paths), w, func(s parallel.Shard) {
		tg := NewTaggedGraph(g)
		for _, r := range paths[s.Lo:s.Hi] {
			tg.addPath(r)
		}
		locals[s.Index] = tg
	})
	out := locals[0]
	for _, l := range locals[1:] {
		out.mergeFrom(l)
	}
	return out
}

// replayPath pushes one path through rs starting at startTag and, when tg
// is non-nil, materializes the (port, tag) vertices and edges the packet
// traverses. It returns whether the path stayed lossless end to end.
// Inlining the replay avoids the per-path tag-slice allocation of
// Ruleset.Replay on the synthesis hot path.
func replayPath(rs *Ruleset, tg *TaggedGraph, p routing.Path, startTag int) bool {
	g := rs.g
	tag := startTag
	var last int32
	haveLast := false
	for i := 1; i < len(p); i++ {
		if tg != nil {
			id := tg.intern(TagNode{Port: ingressPortID(g, p[i-1], p[i]), Tag: tag})
			if haveLast {
				tg.addEdgeIDs(last, id)
			}
			last, haveLast = id, true
		}
		if i+1 < len(p) {
			sw := p[i]
			in := g.PortToPeer(sw, p[i-1])
			out := g.PortToPeer(sw, p[i+1])
			tag = rs.Classify(sw, tag, in, out)
			if tag == LossyTag {
				return false
			}
		}
	}
	return true
}

// buildRuleGraphN is BuildRuleGraph with an explicit worker count.
func buildRuleGraphN(rs *Ruleset, paths []routing.Path, startTag, par int) (*TaggedGraph, []routing.Path) {
	defer telemetry.Default.StartSpan("synth/runtime").End()
	w := parallel.Workers(par, len(paths))
	if w <= 1 {
		tg := NewTaggedGraph(rs.g)
		var violations []routing.Path
		for _, p := range paths {
			if !replayPath(rs, tg, p, startTag) {
				violations = append(violations, p)
			}
		}
		return tg, violations
	}
	shards := parallel.Shards(len(paths), w)
	locals := make([]*TaggedGraph, len(shards))
	lviol := make([][]routing.Path, len(shards))
	parallel.ForEachShard(len(paths), w, func(s parallel.Shard) {
		tg := NewTaggedGraph(rs.g)
		for _, p := range paths[s.Lo:s.Hi] {
			if !replayPath(rs, tg, p, startTag) {
				lviol[s.Index] = append(lviol[s.Index], p)
			}
		}
		locals[s.Index] = tg
	})
	out := locals[0]
	for _, l := range locals[1:] {
		out.mergeFrom(l)
	}
	var violations []routing.Path
	for _, v := range lviol {
		violations = append(violations, v...)
	}
	return out, violations
}
