package core

import (
	"fmt"

	"repro/internal/routing"
)

// MultiClassSystem is the §6 composition: several application classes
// sharing one tagging system with overlapping tag ranges. Class c's NICs
// stamp tag StartTag(c); all classes share the rewrite rules.
type MultiClassSystem struct {
	System     *System
	NumClasses int
	MaxBounces int
}

// StartTag returns the NIC stamp for application class c (0-based).
func (m *MultiClassSystem) StartTag(c int) int { return c + 1 }

// NumLosslessQueues returns the shared lossless priority count: M + N
// rather than the naive N*(M+1).
func (m *MultiClassSystem) NumLosslessQueues() int {
	return m.MaxBounces + m.NumClasses
}

// BouncesTolerated returns how many bounces class c can absorb before its
// packets fall to the lossy queue. Later classes start higher in the
// shared tag space and therefore tolerate fewer bounces — the isolation
// trade-off §6 describes.
func (m *MultiClassSystem) BouncesTolerated(c int) int {
	return m.NumLosslessQueues() - m.StartTag(c)
}

// MultiClassClos builds the shared-tag multi-class system on a Clos:
// numClasses application classes, each tolerating up to maxBounces
// bounces (the later classes tolerate progressively fewer within the
// shared range; see BouncesTolerated). Every class's ELP replay is
// verified lossless within its tolerated bounce budget, and the combined
// runtime graph is verified deadlock-free.
//
// elpByClass[c] is the path set class c must keep lossless. Classes whose
// path sets exceed their tolerated bounces return an error.
func MultiClassClos(sys *System, elpByClass [][]routing.Path, maxBounces int) (*MultiClassSystem, error) {
	n := len(elpByClass)
	if n == 0 {
		return nil, fmt.Errorf("core: no application classes")
	}
	g := sys.Graph
	rules := ClosRules(g, maxBounces, n)
	m := &MultiClassSystem{
		System:     &System{Graph: g, Rules: rules},
		NumClasses: n,
		MaxBounces: maxBounces,
	}
	combined := NewTaggedGraph(g)
	for c, paths := range elpByClass {
		tg, violations := BuildRuleGraph(rules, paths, m.StartTag(c))
		if len(violations) > 0 {
			return nil, fmt.Errorf("core: class %d has %d lossy ELP paths (first: %s)",
				c, len(violations), violations[0].String(g))
		}
		for _, e := range tg.Edges() {
			combined.AddEdge(e.From, e.To)
		}
		for _, node := range tg.Nodes() {
			combined.AddNode(node)
		}
	}
	if err := combined.Verify(); err != nil {
		return nil, fmt.Errorf("multi-class runtime graph: %w", err)
	}
	m.System.Runtime = combined
	return m, nil
}

// NaiveMultiClassQueues returns the queue count of the isolation-preserving
// composition the paper calls naive: N separate systems of M+1 priorities.
func NaiveMultiClassQueues(numClasses, maxBounces int) int {
	return numClasses * (maxBounces + 1)
}
