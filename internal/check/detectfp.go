package check

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// DetectorQuietReport is the verdict of one false-positive oracle run:
// the in-switch detector rode along on a Tagger-protected scenario with
// mitigation off, and an independent global-view watchdog confirmed no
// pause-wait cycle ever existed for it to find.
type DetectorQuietReport struct {
	Seed int64
	// WatchdogSamples counts independent cycle checks; DeadlockSamples
	// must be zero for the oracle's premise to hold.
	WatchdogSamples int
	DeadlockSamples int
	// Detections is what the oracle is about: with no cycle ever live,
	// every firing is a false positive by definition.
	Detections     int
	FalsePositives int
	// Incidents holds the flight-recorder captures for this seed: a
	// detector firing with no live cycle freezes the recorder with
	// trigger "fp-oracle", so an oracle failure ships its own forensic
	// evidence (feed Incident.Data to `taggertrace postmortem`). Empty
	// on a healthy run.
	Incidents []sim.Incident
}

// VerifyDetectorQuiet is the detector's false-positive oracle: for each
// seed it builds the detect-matrix scenario (CBD-capable pinned paths,
// background traffic, off-path reboots) with Tagger's 1-bounce rules
// installed, arms the in-switch detector in observe-only mode, and runs
// a 500us global-view watchdog beside it. Tagger guarantees the
// pause-wait graph stays acyclic (Theorem 5.1), the watchdog
// independently confirms it on this run, and therefore any detector
// firing is a false positive — the oracle fails on the first one.
//
// The two detection mechanisms share nothing: the watchdog walks the
// live queue-wait graph globally, the in-switch detector circulates
// tags hop by hop. Agreement ("nothing to find" / "found nothing") is
// the evidence; a detection with zero deadlock samples indicts the tag
// machinery, and a deadlock sample indicts the premise (Tagger rules
// failed), reported distinctly.
func VerifyDetectorQuiet(seeds []int64) ([]DetectorQuietReport, error) {
	out := make([]DetectorQuietReport, 0, len(seeds))
	for _, seed := range seeds {
		s := workload.DetectMatrix(workload.Options{Bounces: 1}, seed)
		det := s.Net.EnableDetector(sim.DetectorConfig{Mitigation: sim.MitigateNone})
		fr := s.Net.EnableFlightRecorder(sim.FlightRecConfig{})
		wd := s.Net.StartWatchdog(500 * time.Microsecond)
		s.Run()
		r := DetectorQuietReport{
			Seed:            seed,
			WatchdogSamples: wd.Samples,
			DeadlockSamples: wd.DeadlockSamples,
			Detections:      det.Detections,
			FalsePositives:  det.FalsePositives,
			Incidents:       fr.Incidents(),
		}
		out = append(out, r)
		if r.WatchdogSamples == 0 {
			return out, fmt.Errorf("check: seed %d: watchdog never sampled; the oracle has no independent witness", seed)
		}
		if r.DeadlockSamples != 0 {
			return out, fmt.Errorf("check: seed %d: %d deadlock samples under Tagger rules — the oracle's premise failed, not the detector",
				seed, r.DeadlockSamples)
		}
		if r.Detections != 0 {
			return out, fmt.Errorf("check: seed %d: detector fired %d times on a run the watchdog confirms was deadlock-free — false positives (%d flight-recorder captures attached)",
				seed, r.Detections, len(r.Incidents))
		}
	}
	return out, nil
}
