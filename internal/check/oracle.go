// Package check is the differential verification and fuzzing subsystem:
// an independent re-implementation of the Theorem 5.1 invariants, rule-
// and decision-level differential comparison of the synthesis schemes and
// the compiled TCAM pipelines, and a seeded fuzz loop with automatic
// shrinking of failing inputs.
//
// Everything here is deliberately naive. The production verifier in
// internal/core runs one interned-ID three-color DFS over pooled
// adjacency lists; the oracle rebuilds the graph into plain Go maps from
// the exported API and runs Kahn's algorithm. The production replay packs
// rule keys into a uint64 map; the oracle keys a map by a four-field
// struct. Sharing no representation and no traversal algorithm is the
// point: a bug in the fast path and an identical bug here would have to
// be two independent inventions.
package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/topology"
)

// VerifyGraph re-checks the two §5.1 requirements on a tagged graph using
// only its exported vertex/edge listing:
//
//  1. monotonicity — no edge decreases the tag;
//  2. per-tag acyclicity — for every tag k, the subgraph of same-tag
//     edges has no cycle, checked by Kahn's algorithm (a leftover after
//     peeling all zero-in-degree vertices is a cycle).
func VerifyGraph(tg *core.TaggedGraph) error {
	edges := tg.Edges()
	for _, e := range edges {
		if e.To.Tag < e.From.Tag {
			return fmt.Errorf("check: monotonicity violated: edge (%d,%d) -> (%d,%d) decreases the tag",
				e.From.Port, e.From.Tag, e.To.Port, e.To.Tag)
		}
	}

	// Group same-tag edges by tag and Kahn-peel each per-tag subgraph.
	byTag := make(map[int][]core.TagEdge)
	for _, e := range edges {
		if e.From.Tag == e.To.Tag {
			byTag[e.From.Tag] = append(byTag[e.From.Tag], e)
		}
	}
	for tag, tagEdges := range byTag {
		succ := make(map[core.TagNode][]core.TagNode)
		indeg := make(map[core.TagNode]int)
		for _, e := range tagEdges {
			succ[e.From] = append(succ[e.From], e.To)
			indeg[e.To]++
			if _, ok := indeg[e.From]; !ok {
				indeg[e.From] = 0
			}
		}
		var queue []core.TagNode
		for n, d := range indeg {
			if d == 0 {
				queue = append(queue, n)
			}
		}
		peeled := 0
		for len(queue) > 0 {
			n := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			peeled++
			for _, m := range succ[n] {
				indeg[m]--
				if indeg[m] == 0 {
					queue = append(queue, m)
				}
			}
		}
		if peeled != len(indeg) {
			return fmt.Errorf("check: per-tag acyclicity violated: G_%d has a cycle among %d of its %d vertices",
				tag, len(indeg)-peeled, len(indeg))
		}
	}
	return nil
}

// naiveKey is the oracle's rule-match key: a plain comparable struct, in
// contrast to core's packed-uint64 ruleKey.
type naiveKey struct {
	sw      topology.NodeID
	tag     int
	in, out int
}

// naiveTable is the oracle's re-materialization of a ruleset: the rule
// map, the host-facing port set and the lossless tag range, all rebuilt
// from exported data.
type naiveTable struct {
	rules      map[naiveKey]int
	hostFacing map[[2]int32]bool // (switch, port num) attaches a KindHost
	maxTag     int
}

// newNaiveTable rebuilds rs into plain maps. The host-facing set comes
// straight from the topology's port list, not from Ruleset.HostFacing.
func newNaiveTable(rs *core.Ruleset) *naiveTable {
	t := &naiveTable{
		rules:      make(map[naiveKey]int, rs.Len()),
		hostFacing: make(map[[2]int32]bool),
		maxTag:     rs.MaxTag(),
	}
	for _, r := range rs.Rules() {
		t.rules[naiveKey{r.Switch, r.Tag, r.In, r.Out}] = r.NewTag
	}
	g := rs.Graph()
	for _, sw := range g.Nodes() {
		for num := 0; num < g.PortCount(sw); num++ {
			peer := g.Port(g.PortOn(sw, num)).Peer
			if peer != topology.InvalidNode && g.Node(peer).Kind == topology.KindHost {
				t.hostFacing[[2]int32{int32(sw), int32(num)}] = true
			}
		}
	}
	return t
}

// classify is the oracle's §7 decision: lossy stays lossy, exact entries
// precede the injection/delivery defaults, everything else hits the
// safeguard.
func (t *naiveTable) classify(sw topology.NodeID, tag, in, out int) int {
	if tag < 1 || tag > t.maxTag {
		return core.LossyTag
	}
	if nt, ok := t.rules[naiveKey{sw, tag, in, out}]; ok {
		return nt
	}
	if t.hostFacing[[2]int32{int32(sw), int32(in)}] || t.hostFacing[[2]int32{int32(sw), int32(out)}] {
		return tag
	}
	return core.LossyTag
}

// replay walks one path and returns the per-hop tags (mirroring
// core.Ruleset.Replay's shape: entry i is the tag on arrival at path node
// i+1) and whether the packet stayed lossless.
func (t *naiveTable) replay(g *topology.Graph, p routing.Path, startTag int) ([]int, bool) {
	tags := make([]int, 0, len(p)-1)
	tag := startTag
	for i := 0; i+1 < len(p); i++ {
		if i == 0 {
			tags = append(tags, tag)
			continue
		}
		sw := p[i]
		tag = t.classify(sw, tag, g.PortToPeer(sw, p[i-1]), g.PortToPeer(sw, p[i+1]))
		tags = append(tags, tag)
		if tag == core.LossyTag {
			for j := i + 1; j+1 < len(p); j++ {
				tags = append(tags, core.LossyTag)
			}
			return tags, false
		}
	}
	return tags, true
}

// VerifyCoverage replays every ELP path through the oracle's rebuilt
// table and demands end-to-end losslessness plus monotonically
// non-decreasing tags — the runtime face of Theorem 5.1.
func VerifyCoverage(rs *core.Ruleset, paths []routing.Path, startTag int) error {
	t := newNaiveTable(rs)
	g := rs.Graph()
	for _, p := range paths {
		tags, lossless := t.replay(g, p, startTag)
		if !lossless {
			return fmt.Errorf("check: ELP path %s goes lossy (tags %v)", p.String(g), tags)
		}
		for i := 1; i < len(tags); i++ {
			if tags[i] < tags[i-1] {
				return fmt.Errorf("check: ELP path %s tag decreases at hop %d (tags %v)",
					p.String(g), i, tags)
			}
		}
	}
	return nil
}

// VerifySystem runs the oracle over everything a synthesis produced: each
// tagged graph re-verified from scratch, and the installed rules
// re-replayed over the full ELP.
func VerifySystem(s *core.System) error {
	for _, tg := range []struct {
		name string
		g    *core.TaggedGraph
	}{
		{"brute-force", s.BruteForce},
		{"merged", s.Merged},
		{"runtime", s.Runtime},
	} {
		if tg.g == nil {
			continue
		}
		if err := VerifyGraph(tg.g); err != nil {
			return fmt.Errorf("%s graph: %w", tg.name, err)
		}
	}
	if err := VerifyCoverage(s.Rules, s.ELP, 1); err != nil {
		return err
	}
	return nil
}
