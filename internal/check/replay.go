package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/tcam"
)

// ReplayOpts configures ReplayPaths.
type ReplayOpts struct {
	StartTag        int  // NIC stamp; 0 means 1
	RequireLossless bool // fail if any path goes lossy (ELP yes, deviations no)
	Par             int  // worker count for the compiled image
	Legacy          bool // run the §7 egress-by-old-tag ablation variant too
}

// ReplayPaths pushes every path hop by hop through three independent
// implementations — the abstract ruleset replay (core), the uncompressed
// §7 pipeline, and the compiled TCAM image — and demands identical
// (NewTag, ingress queue, egress queue) decisions at every hop, plus the
// structural invariants any §7-correct dataplane must keep:
//
//   - once lossy, always lossy (the safeguard tag cannot be escaped);
//   - non-legacy egress queues follow the NEW tag (the §7 priority-
//     transition rule), legacy egress queues the old one;
//   - lossless tags never decrease along a path.
//
// ELP paths additionally must stay lossless end to end when
// RequireLossless is set; deviation paths exercise the safeguard instead.
func ReplayPaths(rs *core.Ruleset, paths []routing.Path, opts ReplayOpts) error {
	startTag := opts.StartTag
	if startTag == 0 {
		startTag = 1
	}
	g := rs.Graph()
	pl := &tcam.Pipeline{Rules: rs}
	cp := tcam.NewCompiled(rs, opts.Par)
	legacies := []bool{false}
	if opts.Legacy {
		legacies = append(legacies, true)
	}
	for _, p := range paths {
		ref := rs.Replay(p, startTag)
		if opts.RequireLossless && !ref.Lossless {
			return fmt.Errorf("check: path %s goes lossy at hop %d", p.String(g), ref.DropHop)
		}
		for _, legacy := range legacies {
			pl.LegacyEgressByOldTag = legacy
			cp.LegacyEgressByOldTag = legacy
			tag := startTag
			for i := 1; i+1 < len(p); i++ {
				sw := p[i]
				in := g.PortToPeer(sw, p[i-1])
				out := g.PortToPeer(sw, p[i+1])
				a := pl.Process(sw, tag, in, out)
				b := cp.Process(sw, tag, in, out)
				if a != b {
					return fmt.Errorf("check: path %s hop %d (legacy=%v): uncompressed %+v vs compiled %+v",
						p.String(g), i, legacy, a, b)
				}
				// The reference replay recorded the tag on arrival at
				// p[i+1]; the pipelines must rewrite to exactly that.
				if want := ref.Tags[i]; a.NewTag != want {
					return fmt.Errorf("check: path %s hop %d (legacy=%v): pipeline rewrites to %d, replay says %d",
						p.String(g), i, legacy, a.NewTag, want)
				}
				if tag == core.LossyTag && a.NewTag != core.LossyTag {
					return fmt.Errorf("check: path %s hop %d (legacy=%v): lossy packet re-promoted to tag %d",
						p.String(g), i, legacy, a.NewTag)
				}
				if a.NewTag != core.LossyTag && tag != core.LossyTag && a.NewTag < tag {
					return fmt.Errorf("check: path %s hop %d (legacy=%v): tag decreased %d -> %d",
						p.String(g), i, legacy, tag, a.NewTag)
				}
				wantEgress := a.NewTag
				if legacy && rs.IsLossless(tag) && a.NewTag != core.LossyTag {
					wantEgress = tag
				}
				if rs.IsLossless(wantEgress) {
					if a.EgressQueue != wantEgress || a.Kind != tcam.Lossless {
						return fmt.Errorf("check: path %s hop %d (legacy=%v): egress queue %d kind %v, want lossless queue %d",
							p.String(g), i, legacy, a.EgressQueue, a.Kind, wantEgress)
					}
				} else if a.EgressQueue != 0 || a.Kind != tcam.Lossy {
					return fmt.Errorf("check: path %s hop %d (legacy=%v): egress queue %d kind %v, want the lossy queue",
						p.String(g), i, legacy, a.EgressQueue, a.Kind)
				}
				tag = a.NewTag
			}
		}
	}
	return nil
}
