package check

import (
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/tcam"
	"repro/internal/topology"
)

// RuleDiff records one rule-level divergence between two rulesets.
type RuleDiff struct {
	Rule    core.Rule // match fields + A's rewrite (NewTag = -1: absent in A)
	NewTagB int       // B's rewrite for the same match (-1: absent in B)
}

func (d RuleDiff) String() string {
	return fmt.Sprintf("rule (sw=%d tag=%d in=%d out=%d): A rewrites to %d, B to %d",
		d.Rule.Switch, d.Rule.Tag, d.Rule.In, d.Rule.Out, d.Rule.NewTag, d.NewTagB)
}

// DiffRulesets compares two rulesets rule for rule and returns every
// divergence: matches present in one but not the other, and matches
// rewritten differently. Empty means rule-level identical.
func DiffRulesets(a, b *core.Ruleset) []RuleDiff {
	type match struct {
		sw           topology.NodeID
		tag, in, out int
	}
	am := make(map[match]int, a.Len())
	for _, r := range a.Rules() {
		am[match{r.Switch, r.Tag, r.In, r.Out}] = r.NewTag
	}
	var diffs []RuleDiff
	seen := make(map[match]bool, b.Len())
	for _, r := range b.Rules() {
		m := match{r.Switch, r.Tag, r.In, r.Out}
		seen[m] = true
		if nt, ok := am[m]; !ok {
			diffs = append(diffs, RuleDiff{
				Rule:    core.Rule{Switch: m.sw, Tag: m.tag, In: m.in, Out: m.out, NewTag: -1},
				NewTagB: r.NewTag,
			})
		} else if nt != r.NewTag {
			diffs = append(diffs, RuleDiff{Rule: r, NewTagB: r.NewTag})
			diffs[len(diffs)-1].Rule.NewTag = nt
		}
	}
	for _, r := range a.Rules() {
		if !seen[match{r.Switch, r.Tag, r.In, r.Out}] {
			diffs = append(diffs, RuleDiff{Rule: r, NewTagB: -1})
		}
	}
	return diffs
}

// DiffParallelism synthesizes the same input serially and with par
// workers and demands bit-identical output at every layer: rules (rule
// for rule), max tag, conflicts, repairs, the three tagged graphs, and
// the compressed TCAM image. Any divergence means the deterministic-
// parallelism contract of internal/parallel broke somewhere.
func DiffParallelism(g *topology.Graph, paths []routing.Path, par int) error {
	serial, err := core.Synthesize(g, paths, core.Options{Workers: 1})
	if err != nil {
		return fmt.Errorf("check: serial synthesis failed: %w", err)
	}
	parl, err := core.Synthesize(g, paths, core.Options{Workers: par})
	if err != nil {
		return fmt.Errorf("check: par=%d synthesis failed: %w", par, err)
	}
	if diffs := DiffRulesets(serial.Rules, parl.Rules); len(diffs) > 0 {
		return fmt.Errorf("check: par=1 vs par=%d rules diverge (%d diffs; first: %s)",
			par, len(diffs), diffs[0])
	}
	if a, b := serial.Rules.MaxTag(), parl.Rules.MaxTag(); a != b {
		return fmt.Errorf("check: par=1 vs par=%d max tag: %d vs %d", par, a, b)
	}
	if !reflect.DeepEqual(serial.Conflicts, parl.Conflicts) {
		return fmt.Errorf("check: par=1 vs par=%d conflicts diverge: %v vs %v",
			par, serial.Conflicts, parl.Conflicts)
	}
	if len(serial.Repairs) != len(parl.Repairs) {
		return fmt.Errorf("check: par=1 vs par=%d repair count: %d vs %d",
			par, len(serial.Repairs), len(parl.Repairs))
	}
	graphs := []struct {
		name string
		a, b *core.TaggedGraph
	}{
		{"brute-force", serial.BruteForce, parl.BruteForce},
		{"merged", serial.Merged, parl.Merged},
		{"runtime", serial.Runtime, parl.Runtime},
	}
	for _, gp := range graphs {
		if (gp.a == nil) != (gp.b == nil) {
			return fmt.Errorf("check: par=1 vs par=%d: %s graph present on one side only", par, gp.name)
		}
		if gp.a == nil {
			continue
		}
		if !reflect.DeepEqual(gp.a.Nodes(), gp.b.Nodes()) || !reflect.DeepEqual(gp.a.Edges(), gp.b.Edges()) {
			return fmt.Errorf("check: par=1 vs par=%d: %s graphs diverge", par, gp.name)
		}
	}
	rules := serial.Rules.Rules()
	if !reflect.DeepEqual(tcam.CompressN(rules, 1), tcam.CompressN(rules, par)) {
		return fmt.Errorf("check: par=1 vs par=%d compressed TCAM images diverge", par)
	}
	return nil
}

// SchemeReport is the outcome of the Algorithm 1 / Algorithm 2 / Clos
// scheme differential. The schemes legitimately install different rules,
// so they are compared on semantics: every scheme must keep every ELP
// path lossless, re-verify under the oracle, and obey the provable queue-
// count ordering (Alg2 never needs more queues than Alg1; on Clos the
// specific scheme achieves the k+1 lower bound no scheme can beat).
type SchemeReport struct {
	Alg1Queues int
	Alg2Queues int
	ClosQueues int // 0 when the Clos scheme was not applicable
}

// DiffSchemes runs the scheme differential. closBase and maxBounces
// describe the Clos-specific scheme's input (its ELP must stay inside the
// bounce budget); both zero-valued skip that scheme.
func DiffSchemes(g *topology.Graph, paths []routing.Path, closBase []routing.Path, maxBounces int) (*SchemeReport, error) {
	rep := &SchemeReport{}
	alg1, err := core.Synthesize(g, paths, core.Options{SkipMerge: true, Workers: 1})
	if err != nil {
		return nil, fmt.Errorf("check: algorithm 1 synthesis failed: %w", err)
	}
	alg2, err := core.Synthesize(g, paths, core.Options{Workers: 1})
	if err != nil {
		return nil, fmt.Errorf("check: algorithm 2 synthesis failed: %w", err)
	}
	for name, s := range map[string]*core.System{"algorithm 1": alg1, "algorithm 2": alg2} {
		if err := VerifySystem(s); err != nil {
			return nil, fmt.Errorf("check: %s fails the oracle: %w", name, err)
		}
	}
	rep.Alg1Queues = alg1.NumLosslessQueues()
	rep.Alg2Queues = alg2.NumLosslessQueues()
	if rep.Alg2Queues > rep.Alg1Queues {
		return nil, fmt.Errorf("check: greedy merge grew the queue count: alg1=%d alg2=%d",
			rep.Alg1Queues, rep.Alg2Queues)
	}

	if len(closBase) > 0 {
		clos, err := core.ClosSynthesize(g, closBase, maxBounces)
		if err != nil {
			return nil, fmt.Errorf("check: clos scheme synthesis failed: %w", err)
		}
		if err := VerifyGraph(clos.Runtime); err != nil {
			return nil, fmt.Errorf("check: clos runtime graph fails the oracle: %w", err)
		}
		if err := VerifyCoverage(clos.Rules, closBase, 1); err != nil {
			return nil, fmt.Errorf("check: clos scheme loses an ELP path: %w", err)
		}
		rep.ClosQueues = clos.Runtime.NumSwitchTags()
		// The §4.4 bound k+1 is an upper bound by construction here; the
		// matching lower bound binds only when the ELP actually realizes
		// k-bounce paths, which tiny fuzzed fabrics may not, so only the
		// provable direction is asserted.
		if want := core.MinLosslessQueues(maxBounces); rep.ClosQueues > want {
			return nil, fmt.Errorf("check: clos scheme uses %d queues, provable optimum is %d",
				rep.ClosQueues, want)
		}
	}
	return rep, nil
}
