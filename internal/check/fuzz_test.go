package check

import "testing"

// FuzzRunCase is the native entry point to the differential battery: Go's
// fuzzer mutates (family selector, seed), GenCase maps them into a
// bounded topology + ELP instance, and RunCase cross-checks every layer.
// Any reported input IS a failing Case — re-derive it with GenCase and
// hand it to Shrink/ReproSource (what cmd/taggerfuzz automates).
func FuzzRunCase(f *testing.F) {
	for seed := int64(1); seed <= 3; seed++ {
		for idx := range Topos() {
			f.Add(uint8(idx), seed)
		}
	}
	topos := Topos()
	f.Fuzz(func(t *testing.T, topoIdx uint8, seed int64) {
		c := GenCase(topos[int(topoIdx)%len(topos)], seed)
		if !c.validConfig() {
			t.Fatalf("GenCase emitted an invalid config: %s", c)
		}
		if err := RunCase(c); err != nil {
			t.Fatalf("differential failure (shrink with: taggerfuzz -topo %s -seed %d -seeds 1): %v",
				c.Topo, c.Seed, err)
		}
	})
}

// FuzzShrinkConvergence: for any synthetic threshold predicate the
// shrinker must terminate, keep the case failing, and never probe an
// invalid configuration.
func FuzzShrinkConvergence(f *testing.F) {
	f.Add(int64(7), 3, 4)
	f.Add(int64(11), 1, 0)
	f.Fuzz(func(t *testing.T, seed int64, podFloor, extraFloor int) {
		if podFloor < 1 || podFloor > 4 || extraFloor < 0 || extraFloor > 6 {
			t.Skip()
		}
		c := GenCase("clos", seed)
		if c.Pods < podFloor {
			c.Pods = podFloor
		}
		if c.ExtraPaths < extraFloor {
			c.ExtraPaths = extraFloor
		}
		fails := func(c Case) bool {
			if !c.validConfig() {
				t.Fatalf("invalid probe: %s", c)
			}
			return c.Pods >= podFloor && c.ExtraPaths >= extraFloor
		}
		got := Shrink(c, fails)
		if !fails(got) {
			t.Fatalf("shrunk case stopped failing: %s", got)
		}
		if got.Pods > c.Pods || got.ExtraPaths > c.ExtraPaths {
			t.Fatalf("shrinker grew the case: %s -> %s", c, got)
		}
	})
}
