package check

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/tcam"
	"repro/internal/topology"
)

func paperTestbed(t *testing.T) *topology.Clos {
	t.Helper()
	c, err := topology.NewClos(topology.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// twoSwitches returns a minimal topology for hand-built tagged graphs:
// two adjacent switches, each also holding one host.
func twoSwitches(t *testing.T) (*topology.Graph, topology.NodeID, topology.NodeID) {
	t.Helper()
	g := topology.New()
	a := g.AddNode("A", topology.KindSwitch, -1)
	b := g.AddNode("B", topology.KindSwitch, -1)
	g.Connect(a, b)
	ha := g.AddNode("HA", topology.KindHost, 0)
	hb := g.AddNode("HB", topology.KindHost, 0)
	g.Connect(ha, a)
	g.Connect(hb, b)
	return g, a, b
}

// TestOracleAgreesOnHealthySystem: a full synthesis over the paper
// testbed passes both the production verifier and the independent oracle.
func TestOracleAgreesOnHealthySystem(t *testing.T) {
	c := paperTestbed(t)
	paths := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	s, err := core.Synthesize(c.Graph, paths.Paths(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Runtime.Verify(); err != nil {
		t.Fatalf("production verifier: %v", err)
	}
	if err := VerifySystem(s); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// TestOracleCatchesSameTagCycle: both the production verifier and the
// oracle must reject a per-tag cycle, independently.
func TestOracleCatchesSameTagCycle(t *testing.T) {
	g, a, b := twoSwitches(t)
	tg := core.NewTaggedGraph(g)
	na := core.TagNode{Port: g.PortOn(a, 0), Tag: 1}
	nb := core.TagNode{Port: g.PortOn(b, 0), Tag: 1}
	tg.AddEdge(na, nb)
	tg.AddEdge(nb, na)
	if err := tg.Verify(); err == nil {
		t.Error("production verifier missed the cycle")
	}
	if err := VerifyGraph(tg); err == nil {
		t.Error("oracle missed the cycle")
	} else if !strings.Contains(err.Error(), "acyclicity") {
		t.Errorf("wrong oracle verdict: %v", err)
	}
}

// TestOracleCatchesTagDecrease: requirement 2, independently re-checked.
func TestOracleCatchesTagDecrease(t *testing.T) {
	g, a, b := twoSwitches(t)
	tg := core.NewTaggedGraph(g)
	tg.AddEdge(core.TagNode{Port: g.PortOn(a, 0), Tag: 2}, core.TagNode{Port: g.PortOn(b, 0), Tag: 1})
	if err := tg.Verify(); err == nil {
		t.Error("production verifier missed the decreasing edge")
	}
	if err := VerifyGraph(tg); err == nil {
		t.Error("oracle missed the decreasing edge")
	} else if !strings.Contains(err.Error(), "monotonicity") {
		t.Errorf("wrong oracle verdict: %v", err)
	}
}

// TestOracleCoverageCatchesMissingRules: an empty ruleset cannot keep a
// fabric-interior path lossless, and the oracle's independent replay must
// say so.
func TestOracleCoverageCatchesMissingRules(t *testing.T) {
	c := paperTestbed(t)
	paths := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	empty := core.NewRuleset(c.Graph, 2)
	if err := VerifyCoverage(empty, paths.Paths(), 1); err == nil {
		t.Error("oracle accepted an empty ruleset")
	}
}

// cloneRules copies a ruleset rule for rule.
func cloneRules(rs *core.Ruleset) *core.Ruleset {
	out := core.NewRuleset(rs.Graph(), rs.MaxTag())
	for _, r := range rs.Rules() {
		out.Add(r)
	}
	return out
}

// TestDiffRulesetsPinsDivergence: identical rulesets diff empty; a single
// mutated rewrite, a missing rule, and an extra rule are each reported.
func TestDiffRulesetsPinsDivergence(t *testing.T) {
	c := paperTestbed(t)
	rs := core.ClosRules(c.Graph, 1, 1)
	if d := DiffRulesets(rs, cloneRules(rs)); len(d) != 0 {
		t.Fatalf("identical rulesets diff: %v", d)
	}

	mut := cloneRules(rs)
	victim := rs.Rules()[0]
	victim.NewTag++
	mut.Add(victim)
	d := DiffRulesets(rs, mut)
	if len(d) != 1 || d[0].NewTagB != victim.NewTag {
		t.Errorf("mutated rewrite: got %v", d)
	}

	extra := cloneRules(rs)
	// in == out never occurs in generated rules, so this key is new.
	extra.Add(core.Rule{Switch: victim.Switch, Tag: rs.MaxTag(), In: victim.In, Out: victim.In, NewTag: rs.MaxTag()})
	if d := DiffRulesets(rs, extra); len(d) == 0 {
		t.Error("extra rule not reported")
	}
}

// TestDiffDecisionsCatchesSingleDivergence: the exhaustive decision diff
// is empty for a faithful compilation and reports a deliberately
// corrupted decision exactly once.
func TestDiffDecisionsCatchesSingleDivergence(t *testing.T) {
	c := paperTestbed(t)
	rs := core.ClosRules(c.Graph, 1, 1)
	if d := DiffDecisionsExhaustive(rs, 2); len(d) != 0 {
		t.Fatalf("faithful compilation diffs: %v", d[0])
	}

	pl := &tcam.Pipeline{Rules: rs}
	cp := tcam.NewCompiled(rs, 1)
	badSw := c.Leaves[0]
	corrupted := func(sw topology.NodeID, tag, in, out int) tcam.QueueDecision {
		d := cp.Process(sw, tag, in, out)
		if sw == badSw && tag == 1 && in == 0 && out == 1 {
			// A lost compression bit turns a hit into a safeguard miss.
			d.NewTag = core.LossyTag
			d.EgressQueue = 0
			d.Kind = tcam.Lossy
		}
		return d
	}
	d := DiffDecisions(c.Graph, rs.MaxTag(), false, pl.Process, corrupted)
	if len(d) != 1 {
		t.Fatalf("corrupted decision reported %d times, want 1: %v", len(d), d)
	}
	if d[0].Switch != badSw || d[0].Tag != 1 || d[0].In != 0 || d[0].Out != 1 {
		t.Errorf("wrong probe pinned: %+v", d[0])
	}
}

// TestDiffParallelismTestbed: serial and parallel synthesis are
// bit-identical on the paper testbed, ELP extended with random paths.
func TestDiffParallelismTestbed(t *testing.T) {
	c := paperTestbed(t)
	paths := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	elp.AddRandomPaths(paths, c.Graph, c.ToRs, 8, 8, 11)
	for _, par := range []int{2, 4, 0} {
		if err := DiffParallelism(c.Graph, paths.Paths(), par); err != nil {
			t.Errorf("par=%d: %v", par, err)
		}
	}
}

// TestDiffSchemesTestbed: the three synthesis schemes agree semantically
// on the paper testbed and the queue-count ordering holds.
func TestDiffSchemesTestbed(t *testing.T) {
	c := paperTestbed(t)
	base := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	ext := elp.NewSet()
	if err := ext.AddAll(c.Graph, base.Paths()); err != nil {
		t.Fatal(err)
	}
	elp.AddRandomPaths(ext, c.Graph, c.ToRs, 5, 8, 23)
	rep, err := DiffSchemes(c.Graph, ext.Paths(), base.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alg2Queues > rep.Alg1Queues {
		t.Errorf("queue ordering: alg1=%d alg2=%d", rep.Alg1Queues, rep.Alg2Queues)
	}
	if rep.ClosQueues < 1 || rep.ClosQueues > core.MinLosslessQueues(1) {
		t.Errorf("clos queues = %d, want in [1, %d]", rep.ClosQueues, core.MinLosslessQueues(1))
	}
}

// TestReplayPathsCatchesLossyELP: replay with RequireLossless rejects a
// ruleset that demotes an ELP path.
func TestReplayPathsCatchesLossyELP(t *testing.T) {
	c := paperTestbed(t)
	// One bounce needs tag 2; a 0-bounce-only ruleset must drop it.
	rs := core.ClosRules(c.Graph, 0, 1)
	paths := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	err := ReplayPaths(rs, paths.Paths(), ReplayOpts{RequireLossless: true, Par: 2, Legacy: true})
	if err == nil {
		t.Error("bounce path survived a 0-bounce ruleset")
	}
}

// TestRunCaseSeeds: the full battery runs clean on fixed seeds of every
// topology family — the deterministic core of the fuzz loop.
func TestRunCaseSeeds(t *testing.T) {
	for _, topo := range Topos() {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 4; seed++ {
				c := GenCase(topo, seed)
				if !c.validConfig() {
					t.Fatalf("GenCase produced invalid config: %s", c)
				}
				if err := RunCase(c); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestShrinkGreedyDescent: the shrinker reaches the minimal case for a
// synthetic predicate and never proposes an invalid configuration.
func TestShrinkGreedyDescent(t *testing.T) {
	start := Case{
		Topo: "clos", Seed: 99,
		Pods: 3, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 2, HostsPerToR: 2,
		MaxBounces: 2, ExtraPaths: 5, Deviations: 7, Workers: 4,
	}
	probes := 0
	fails := func(c Case) bool {
		probes++
		if !c.validConfig() {
			t.Errorf("shrinker probed invalid config: %s", c)
		}
		return c.Pods >= 2 || c.ExtraPaths >= 3
	}
	got := Shrink(start, fails)
	if !fails(got) {
		t.Fatalf("shrunk case no longer fails: %s", got)
	}
	if got.Pods != 1 || got.ExtraPaths != 3 {
		t.Errorf("not minimal: pods=%d extra=%d, want 1, 3", got.Pods, got.ExtraPaths)
	}
	if got.ToRsPerPod != 2 || got.Spines != 1 || got.Deviations != 0 || got.Workers != 2 {
		t.Errorf("satellite knobs not floored: %s", got)
	}
	if probes == 0 {
		t.Error("predicate never probed")
	}
}

// TestReproSourceIsValidGo: the emitted repro parses as Go and carries
// the case verbatim.
func TestReproSourceIsValidGo(t *testing.T) {
	c := GenCase("clos", 42)
	src := ReproSource(c, errFixture{})
	if _, err := parser.ParseFile(token.NewFileSet(), "repro.go", src, 0); err != nil {
		t.Fatalf("emitted repro does not parse: %v\n%s", err, src)
	}
	for _, want := range []string{"TestRepro_clos_seed42", "check.RunCase", "Topo: \"clos\"", "multi\n//\tline"} {
		if !strings.Contains(src, want) {
			t.Errorf("repro missing %q:\n%s", want, src)
		}
	}
}

type errFixture struct{}

func (errFixture) Error() string { return "boom: multi\nline failure" }
