package check

import (
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/tcam"
	"repro/internal/topology"
)

// DecisionDiff records one (switch, tag, in, out) probe where the
// uncompressed pipeline and the compiled (compressed) pipeline disagreed.
type DecisionDiff struct {
	Switch       topology.NodeID
	Tag, In, Out int
	Legacy       bool
	Uncompressed tcam.QueueDecision
	Compiled     tcam.QueueDecision
}

func (d DecisionDiff) String() string {
	return fmt.Sprintf("decision (sw=%d tag=%d in=%d out=%d legacy=%v): uncompressed %+v, compiled %+v",
		d.Switch, d.Tag, d.In, d.Out, d.Legacy, d.Uncompressed, d.Compiled)
}

// Decide is one classification implementation under differential test.
type Decide func(sw topology.NodeID, tag, in, out int) tcam.QueueDecision

// DiffDecisions probes every (switch, tag, in, out) combination — tags 0
// through maxTag+1 to cover the lossy and out-of-range edges, all port
// pairs — through two implementations and records every disagreement.
// The legacy flag only labels the diffs; callers flip the ablation mode
// on the implementations themselves.
func DiffDecisions(g *topology.Graph, maxTag int, legacy bool, a, b Decide) []DecisionDiff {
	var diffs []DecisionDiff
	for _, sw := range g.Switches() {
		nPorts := g.PortCount(sw)
		for tag := 0; tag <= maxTag+1; tag++ {
			for in := 0; in < nPorts; in++ {
				for out := 0; out < nPorts; out++ {
					da := a(sw, tag, in, out)
					db := b(sw, tag, in, out)
					if da != db {
						diffs = append(diffs, DecisionDiff{
							Switch: sw, Tag: tag, In: in, Out: out, Legacy: legacy,
							Uncompressed: da, Compiled: db,
						})
					}
				}
			}
		}
	}
	return diffs
}

// DiffDecisionsExhaustive runs DiffDecisions between the uncompressed
// Pipeline and the compiled image, under both the correct §7 egress
// mapping and the legacy (egress-by-old-tag) ablation. Compression is
// only legal because the Figure 9 merges are exact cross products; this
// is the ground-truth check of that claim, decision for decision.
func DiffDecisionsExhaustive(rs *core.Ruleset, par int) []DecisionDiff {
	g := rs.Graph()
	pl := &tcam.Pipeline{Rules: rs}
	cp := tcam.NewCompiled(rs, par)
	var diffs []DecisionDiff
	for _, legacy := range []bool{false, true} {
		pl.LegacyEgressByOldTag = legacy
		cp.LegacyEgressByOldTag = legacy
		diffs = append(diffs, DiffDecisions(g, rs.MaxTag(), legacy, pl.Process, cp.Process)...)
	}
	return diffs
}

// DiffCompiledParallelism compresses the same ruleset serially and with
// par workers and demands entry-for-entry identical per-switch TCAM
// images. Canonical (trimmed) bitmaps make struct equality meaningful.
func DiffCompiledParallelism(rs *core.Ruleset, par int) error {
	a := tcam.NewCompiled(rs, 1)
	b := tcam.NewCompiled(rs, par)
	if ta, tb := a.TotalEntries(), b.TotalEntries(); ta != tb {
		return fmt.Errorf("check: compiled par=1 has %d entries, par=%d has %d", ta, par, tb)
	}
	for _, sw := range rs.Graph().Switches() {
		if !reflect.DeepEqual(a.Entries(sw), b.Entries(sw)) {
			return fmt.Errorf("check: compiled entries diverge at switch %d between par=1 and par=%d", sw, par)
		}
	}
	return nil
}
