package check

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestDetectorQuietOnTaggerTopology is the false-positive oracle gate:
// across a handful of seeds of the matrix scenario under Tagger rules,
// the independent watchdog must confirm no cycle ever formed and the
// in-switch detector must never have fired.
func TestDetectorQuietOnTaggerTopology(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	reports, err := VerifyDetectorQuiet(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(seeds) {
		t.Fatalf("got %d reports, want %d", len(reports), len(seeds))
	}
	for _, r := range reports {
		if r.WatchdogSamples == 0 {
			t.Errorf("seed %d: no independent witness", r.Seed)
		}
		if r.Detections != 0 || r.FalsePositives != 0 {
			t.Errorf("seed %d: detections=%d fp=%d, want 0/0", r.Seed, r.Detections, r.FalsePositives)
		}
	}
}

// TestDetectorQuietOracleNotVacuous proves the oracle can actually
// fail: the same scenario without Tagger rules deadlocks, and the
// oracle must reject it as a premise failure (the watchdog saw a
// cycle) — distinctly from a detector false positive. An oracle that
// passes everything proves nothing.
func TestDetectorQuietOracleNotVacuous(t *testing.T) {
	s := workload.DetectMatrix(workload.Options{}, 1)
	det := s.Net.EnableDetector(sim.DetectorConfig{Mitigation: sim.MitigateNone})
	wd := s.Net.StartWatchdog(500 * time.Microsecond)
	s.Run()
	if wd.DeadlockSamples == 0 {
		t.Fatal("unprotected scenario did not deadlock; the oracle's negative control drifted")
	}
	if det.Detections == 0 {
		t.Fatal("detector missed a genuine, watchdog-confirmed deadlock")
	}
}
