package check

import "testing"

// TestChurnSweep runs a small seeded churn-fuzz sweep over both families
// as the always-on smoke layer; cmd/taggerfuzz -churn and `make
// churn-fuzz` scale the same loop to hundreds of seeds.
func TestChurnSweep(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for _, topo := range ChurnTopos() {
		for seed := int64(1); seed <= seeds; seed++ {
			c := GenChurnCase(topo, seed)
			if !c.validChurnConfig() {
				t.Fatalf("GenChurnCase emitted an invalid config: %s", c)
			}
			if err := RunChurnCase(c); err != nil {
				t.Errorf("churn differential failure (replay with: taggerfuzz -churn -topo %s -seed %d -seeds 1): %v",
					topo, seed, err)
			}
		}
	}
}

// TestShrinkChurnConvergence mirrors FuzzShrinkConvergence: for a
// synthetic predicate the shrinker terminates, keeps the case failing,
// and never probes an invalid configuration.
func TestShrinkChurnConvergence(t *testing.T) {
	c := GenChurnCase("clos", 7)
	evFloor := 3
	fails := func(c ChurnCase) bool {
		if !c.validChurnConfig() {
			t.Fatalf("invalid probe: %s", c)
		}
		return c.Events >= evFloor
	}
	got := ShrinkChurn(c, fails)
	if !fails(got) {
		t.Fatalf("shrunk case stopped failing: %s", got)
	}
	if got.Events != evFloor {
		t.Fatalf("events not fully shrunk: got %d, want %d", got.Events, evFloor)
	}
	if got.Pods*got.ToRsPerPod != 2 || got.Workers != 1 || got.PodAdds != 0 {
		t.Fatalf("knobs not at floors: %s", got)
	}
}
