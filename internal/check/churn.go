package check

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/routing"
	"repro/internal/topology"
)

// ChurnCase is one self-contained churn-fuzz input: a topology family
// with its knobs plus a seeded churn sequence (link flaps, drains, pod
// adds) driven through the incremental re-synthesis engine. Like Case,
// everything is plain exported ints so a failing case round-trips
// through the emitted repro test verbatim.
type ChurnCase struct {
	Topo string // "clos" or "jellyfish"
	Seed int64  // drives random wiring and the churn sequence

	// Clos knobs.
	Pods, ToRsPerPod, LeafsPerPod, Spines, HostsPerToR int
	MaxBounces                                         int

	// Jellyfish knobs.
	Switches, Ports, NetPorts int

	Events  int // churn sequence length
	PodAdds int // pod expansions interleaved into the sequence (Clos only)
	Workers int // resynth parallelism (the reference always runs serial)
}

func (c ChurnCase) String() string {
	switch c.Topo {
	case "clos":
		return fmt.Sprintf("churn-clos{pods=%d tors=%d leafs=%d spines=%d hosts=%d k=%d ev=%d podadds=%d par=%d seed=%d}",
			c.Pods, c.ToRsPerPod, c.LeafsPerPod, c.Spines, c.HostsPerToR, c.MaxBounces, c.Events, c.PodAdds, c.Workers, c.Seed)
	case "jellyfish":
		return fmt.Sprintf("churn-jellyfish{sw=%d ports=%d net=%d ev=%d par=%d seed=%d}",
			c.Switches, c.Ports, c.NetPorts, c.Events, c.Workers, c.Seed)
	}
	return fmt.Sprintf("churn-case{topo=%q seed=%d}", c.Topo, c.Seed)
}

// ChurnTopos lists the families the churn fuzzer supports. BCube is out:
// its ELP recipe is server-centric and the churn model (drains, pod
// adds) is switch-fabric shaped.
func ChurnTopos() []string { return []string{"clos", "jellyfish"} }

// GenChurnCase derives a churn case from a seed with every knob bounded
// so a full run — each event pays one from-scratch reference synthesis —
// stays well under a second.
func GenChurnCase(topo string, seed int64) ChurnCase {
	rng := rand.New(rand.NewSource(seed))
	c := ChurnCase{
		Topo:    topo,
		Seed:    seed,
		Events:  6 + rng.Intn(10),
		Workers: 1 + rng.Intn(3),
	}
	switch topo {
	case "clos":
		c.Pods = 2 + rng.Intn(2)
		c.ToRsPerPod = 1 + rng.Intn(2)
		c.LeafsPerPod = 1 + rng.Intn(2)
		c.Spines = 1 + rng.Intn(3)
		c.HostsPerToR = rng.Intn(2)
		c.MaxBounces = 1 + rng.Intn(2)
		c.PodAdds = rng.Intn(2)
	case "jellyfish":
		c.Switches = 4 + rng.Intn(7)
		c.NetPorts = 2 + rng.Intn(2)
		if c.NetPorts >= c.Switches {
			c.NetPorts = c.Switches - 1
		}
		c.Ports = c.NetPorts + 1 + rng.Intn(3)
	}
	return c
}

// validChurnConfig mirrors Case.validConfig for the churn knobs, keeping
// the shrinker from wandering into configurations whose build errors
// would "fail" for the wrong reason.
func (c ChurnCase) validChurnConfig() bool {
	if c.Events < 1 || c.PodAdds < 0 || c.Workers < 1 {
		return false
	}
	switch c.Topo {
	case "clos":
		return c.Pods >= 1 && c.ToRsPerPod >= 1 && c.LeafsPerPod >= 1 &&
			c.Spines >= 1 && c.HostsPerToR >= 0 && c.MaxBounces >= 1 &&
			c.Pods*c.ToRsPerPod >= 2
	case "jellyfish":
		return c.Switches >= 2 && c.Ports >= 2 && c.NetPorts >= 1 &&
			c.NetPorts < c.Switches && c.NetPorts <= c.Ports && c.PodAdds == 0
	}
	return false
}

// buildChurn materializes the topology. The Clos handle is non-nil only
// for the clos family; pod-add events need it to call Expand.
func (c ChurnCase) buildChurn() (*topology.Graph, *topology.Clos, []topology.NodeID, error) {
	switch c.Topo {
	case "clos":
		cl, err := topology.NewClos(topology.ClosConfig{
			Pods: c.Pods, ToRsPerPod: c.ToRsPerPod, LeafsPerPod: c.LeafsPerPod,
			Spines: c.Spines, HostsPerToR: c.HostsPerToR,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		return cl.Graph, cl, cl.ToRs, nil
	case "jellyfish":
		j, err := topology.NewJellyfish(topology.JellyfishConfig{
			Switches: c.Switches, Ports: c.Ports, NetPorts: c.NetPorts,
			Seed: c.Seed, Attempts: 64,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		return j.Graph, nil, j.Switches, nil
	}
	return nil, nil, nil, fmt.Errorf("check: unknown churn topology family %q", c.Topo)
}

// enumerate re-runs the family's ELP policy over the current topology.
// For Clos the endpoint roster is re-read from the handle so pod adds
// pick up the new ToRs; enumeration sees only healthy links, which is
// fine — paths through currently-failed links are already tracked.
func (c ChurnCase) enumerate(g *topology.Graph, cl *topology.Clos, endpoints []topology.NodeID) *elp.Set {
	if c.Topo == "clos" {
		return elp.KBounce(g, cl.ToRs, c.MaxBounces, nil)
	}
	return elp.ShortestAllN(g, endpoints, 1)
}

// switchLinks collects the switch-to-switch links as name pairs — the
// churn generator's link-flap candidates. Host attachment links are
// excluded: the ELP recipes never traverse them, so flapping them is
// pure no-op noise.
func switchLinks(g *topology.Graph) [][2]string {
	var out [][2]string
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		if g.Node(l.A).Kind.IsSwitch() && g.Node(l.B).Kind.IsSwitch() {
			out = append(out, [2]string{g.Node(l.A).Name, g.Node(l.B).Name})
		}
	}
	return out
}

// RunChurnCase drives one seeded churn sequence through the incremental
// engine and, after every event, holds it to the PR's contract:
//
//  1. the incrementally re-synthesized system is rule-for-rule identical
//     (rules, max tag, conflicts, and all three tagged graphs) to
//     from-scratch synthesis on the same path set;
//  2. the system still passes the independent oracle (Theorem 5.1:
//     per-tag acyclicity + monotone lossless replay of every ELP path).
//
// The reference synthesis is fed st.Paths() — the engine's own tracked
// order — so the comparison also covers the full-rebuild fallback, which
// synthesizes on exactly that list.
func RunChurnCase(c ChurnCase) error {
	g, cl, endpoints, err := c.buildChurn()
	if err != nil {
		return fmt.Errorf("check: building %s: %w", c, err)
	}
	base := c.enumerate(g, cl, endpoints)
	if base.Len() == 0 {
		return fmt.Errorf("check: empty base ELP for %s", c)
	}
	tracker := elp.NewTracker(g, base)
	st, err := core.NewResynth(g, tracker.Active(), core.Options{Workers: c.Workers})
	if err != nil {
		return fmt.Errorf("check: %s: initial synthesis: %w", c, err)
	}

	var swNames []string
	for _, id := range g.Switches() {
		swNames = append(swNames, g.Node(id).Name)
	}
	events := chaos.GenerateChurn(chaos.ChurnConfig{
		Links:    switchLinks(g),
		Switches: swNames,
		Events:   c.Events,
		PodAdds:  c.PodAdds,
	}, c.Seed+3)

	for i, ev := range events {
		var added, removed []routing.Path
		switch ev.Kind {
		case chaos.ChurnLinkDown:
			a, b := g.MustLookup(ev.A), g.MustLookup(ev.B)
			g.FailLink(a, b)
			removed = tracker.LinkDown(a, b)
		case chaos.ChurnLinkUp:
			a, b := g.MustLookup(ev.A), g.MustLookup(ev.B)
			g.RestoreLink(a, b)
			added = tracker.LinkUp(a, b)
		case chaos.ChurnDrain:
			removed = tracker.Drain(g.MustLookup(ev.Switch))
		case chaos.ChurnUndrain:
			added = tracker.Undrain(g.MustLookup(ev.Switch))
		case chaos.ChurnPodAdd:
			if cl == nil {
				continue
			}
			if err := cl.Expand(1); err != nil {
				return fmt.Errorf("check: %s: event %d: %w", c, i, err)
			}
			added = tracker.AddPaths(c.enumerate(g, cl, endpoints).Paths())
		}
		sys, err := st.Apply(added, removed)
		if err != nil {
			return fmt.Errorf("%s: event %d (%s): resynth: %w", c, i, ev, err)
		}
		if err := churnEquiv(g, sys, st.Paths()); err != nil {
			return fmt.Errorf("%s: after event %d (%s): %w", c, i, ev, err)
		}
	}
	return nil
}

// churnEquiv asserts the incremental result is indistinguishable from
// from-scratch synthesis on the same path set and re-verifies it under
// the oracle.
func churnEquiv(g *topology.Graph, got *core.System, paths []routing.Path) error {
	ref, err := core.Synthesize(g, paths, core.Options{Workers: 1})
	if err != nil {
		return fmt.Errorf("reference synthesis: %w", err)
	}
	if diffs := DiffRulesets(ref.Rules, got.Rules); len(diffs) > 0 {
		return fmt.Errorf("incremental vs from-scratch rules diverge (%d diffs; first: %s)",
			len(diffs), diffs[0])
	}
	if a, b := ref.Rules.MaxTag(), got.Rules.MaxTag(); a != b {
		return fmt.Errorf("incremental vs from-scratch max tag: %d vs %d", b, a)
	}
	if !reflect.DeepEqual(ref.Conflicts, got.Conflicts) {
		return fmt.Errorf("incremental vs from-scratch conflicts diverge: %v vs %v",
			got.Conflicts, ref.Conflicts)
	}
	graphs := []struct {
		name string
		a, b *core.TaggedGraph
	}{
		{"brute-force", ref.BruteForce, got.BruteForce},
		{"merged", ref.Merged, got.Merged},
		{"runtime", ref.Runtime, got.Runtime},
	}
	for _, gp := range graphs {
		if (gp.a == nil) != (gp.b == nil) {
			return fmt.Errorf("%s graph present on one side only", gp.name)
		}
		if gp.a == nil {
			continue
		}
		if !reflect.DeepEqual(gp.a.Nodes(), gp.b.Nodes()) || !reflect.DeepEqual(gp.a.Edges(), gp.b.Edges()) {
			return fmt.Errorf("incremental vs from-scratch %s graphs diverge", gp.name)
		}
	}
	if err := VerifySystem(got); err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	return nil
}

// ShrinkChurn minimizes a failing churn case by greedy per-knob descent,
// exactly like Shrink: the event count shrinks first (shorter sequences
// are prefixes of longer ones under a fixed seed, so this trims events
// off the tail), then the topology knobs.
func ShrinkChurn(c ChurnCase, fails func(ChurnCase) bool) ChurnCase {
	type knob struct {
		get func(*ChurnCase) *int
		min int
	}
	knobs := map[string][]knob{
		"clos": {
			{func(c *ChurnCase) *int { return &c.Pods }, 1},
			{func(c *ChurnCase) *int { return &c.ToRsPerPod }, 1},
			{func(c *ChurnCase) *int { return &c.LeafsPerPod }, 1},
			{func(c *ChurnCase) *int { return &c.Spines }, 1},
			{func(c *ChurnCase) *int { return &c.HostsPerToR }, 0},
			{func(c *ChurnCase) *int { return &c.MaxBounces }, 1},
		},
		"jellyfish": {
			{func(c *ChurnCase) *int { return &c.Switches }, 3},
			{func(c *ChurnCase) *int { return &c.Ports }, 3},
			{func(c *ChurnCase) *int { return &c.NetPorts }, 2},
		},
	}
	common := []knob{
		{func(c *ChurnCase) *int { return &c.Events }, 1},
		{func(c *ChurnCase) *int { return &c.PodAdds }, 0},
		{func(c *ChurnCase) *int { return &c.Workers }, 1},
	}
	all := append(append([]knob{}, common...), knobs[c.Topo]...)

	for changed := true; changed; {
		changed = false
		for _, k := range all {
			for {
				cur := *k.get(&c)
				if cur <= k.min {
					break
				}
				cand := c
				*k.get(&cand) = k.min
				if !cand.validChurnConfig() || !fails(cand) {
					cand = c
					*k.get(&cand) = cur - 1
					if !cand.validChurnConfig() || !fails(cand) {
						break
					}
				}
				c = cand
				changed = true
			}
		}
	}
	return c
}

// ChurnReproName returns the deterministic identifier a churn case's
// repro test and corpus file use.
func ChurnReproName(c ChurnCase) string {
	return fmt.Sprintf("churn_%s_seed%d", c.Topo, c.Seed)
}

// ChurnReproSource renders a shrunk failing churn case as a runnable Go
// test, mirroring ReproSource.
func ChurnReproSource(c ChurnCase, failure error) string {
	name := ChurnReproName(c)
	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	app("// Code generated by taggerfuzz; minimal shrunk repro. DO NOT EDIT.\n")
	app("//\n// Original failure:\n")
	for _, line := range strings.Split(failure.Error(), "\n") {
		app("//\t%s\n", line)
	}
	app("package check_test\n\n")
	app("import (\n\t\"testing\"\n\n\t\"repro/internal/check\"\n)\n\n")
	app("func TestRepro_%s(t *testing.T) {\n", name)
	app("\tc := check.ChurnCase{\n")
	app("\t\tTopo: %q,\n\t\tSeed: %d,\n", c.Topo, c.Seed)
	switch c.Topo {
	case "clos":
		app("\t\tPods: %d, ToRsPerPod: %d, LeafsPerPod: %d, Spines: %d, HostsPerToR: %d,\n",
			c.Pods, c.ToRsPerPod, c.LeafsPerPod, c.Spines, c.HostsPerToR)
		app("\t\tMaxBounces: %d,\n", c.MaxBounces)
	case "jellyfish":
		app("\t\tSwitches: %d, Ports: %d, NetPorts: %d,\n", c.Switches, c.Ports, c.NetPorts)
	}
	app("\t\tEvents: %d, PodAdds: %d, Workers: %d,\n", c.Events, c.PodAdds, c.Workers)
	app("\t}\n")
	app("\tif err := check.RunChurnCase(c); err != nil {\n")
	app("\t\tt.Fatalf(\"repro still failing: %%v\", err)\n")
	app("\t}\n}\n")
	return string(b)
}
