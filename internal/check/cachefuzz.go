package check

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/routing"
	"repro/internal/synthcache"
	"repro/internal/topology"
)

// CacheCase is one cache-differential input: a topology family with its
// knobs. Each case is run against a SHARED synthcache: the first request
// is a cold build, the second (same graph instance) must be a shared
// hit, and a rebuilt twin instance must be servable by canonical-order
// translation — and every one of those results must be rule-for-rule
// identical to from-scratch synthesis plus pass the §5.1 oracle. Clos
// and fat-tree cases go through ClosKBounce, so uniform multi-pod
// fabrics also exercise the representative-pod stamping path.
type CacheCase struct {
	Topo string // "clos", "fattree" or "jellyfish"
	Seed int64

	// Clos knobs.
	Pods, ToRsPerPod, LeafsPerPod, Spines, HostsPerToR int
	MaxBounces                                         int

	// Fat-tree knob (even, >= 4).
	K int

	// Jellyfish knobs.
	Switches, Ports, NetPorts int

	// FailLinks randomly fails this many switch-to-switch links before
	// synthesis, so non-uniform fabrics (pod-stamping fallback) and
	// health-sensitive keys are covered too.
	FailLinks int
}

func (c CacheCase) String() string {
	switch c.Topo {
	case "clos":
		return fmt.Sprintf("cache-clos{pods=%d tors=%d leafs=%d spines=%d hosts=%d k=%d fail=%d seed=%d}",
			c.Pods, c.ToRsPerPod, c.LeafsPerPod, c.Spines, c.HostsPerToR, c.MaxBounces, c.FailLinks, c.Seed)
	case "fattree":
		return fmt.Sprintf("cache-fattree{k=%d bounces=%d fail=%d seed=%d}", c.K, c.MaxBounces, c.FailLinks, c.Seed)
	case "jellyfish":
		return fmt.Sprintf("cache-jellyfish{sw=%d ports=%d net=%d fail=%d seed=%d}",
			c.Switches, c.Ports, c.NetPorts, c.FailLinks, c.Seed)
	}
	return fmt.Sprintf("cache-case{topo=%q seed=%d}", c.Topo, c.Seed)
}

// CacheTopos lists the families the cache differential covers.
func CacheTopos() []string { return []string{"clos", "fattree", "jellyfish"} }

// GenCacheCase derives a bounded cache case from a seed.
func GenCacheCase(topo string, seed int64) CacheCase {
	rng := rand.New(rand.NewSource(seed))
	c := CacheCase{Topo: topo, Seed: seed}
	switch topo {
	case "clos":
		c.Pods = 2 + rng.Intn(3)
		c.ToRsPerPod = 1 + rng.Intn(2)
		c.LeafsPerPod = 1 + rng.Intn(2)
		c.Spines = 1 + rng.Intn(3)
		c.HostsPerToR = rng.Intn(2)
		c.MaxBounces = 1 + rng.Intn(2)
	case "fattree":
		c.K = 4 + 2*rng.Intn(2) // 4 or 6
		c.MaxBounces = 1
	case "jellyfish":
		c.Switches = 4 + rng.Intn(7)
		c.NetPorts = 2 + rng.Intn(2)
		if c.NetPorts >= c.Switches {
			c.NetPorts = c.Switches - 1
		}
		c.Ports = c.NetPorts + 1 + rng.Intn(3)
	}
	if rng.Intn(3) == 0 {
		c.FailLinks = 1 + rng.Intn(2)
	}
	return c
}

// buildCache materializes one instance of the case's topology. Called
// twice per run: the builders are deterministic, so the two instances
// are isomorphic twins with distinct graph pointers.
func (c CacheCase) buildCache() (*topology.Graph, []topology.NodeID, error) {
	switch c.Topo {
	case "clos":
		cl, err := topology.NewClos(topology.ClosConfig{
			Pods: c.Pods, ToRsPerPod: c.ToRsPerPod, LeafsPerPod: c.LeafsPerPod,
			Spines: c.Spines, HostsPerToR: c.HostsPerToR,
		})
		if err != nil {
			return nil, nil, err
		}
		return cl.Graph, cl.ToRs, nil
	case "fattree":
		ft, err := topology.NewFatTree(c.K)
		if err != nil {
			return nil, nil, err
		}
		return ft.Graph, ft.Edges, nil
	case "jellyfish":
		j, err := topology.NewJellyfish(topology.JellyfishConfig{
			Switches: c.Switches, Ports: c.Ports, NetPorts: c.NetPorts,
			Seed: c.Seed, Attempts: 64,
		})
		if err != nil {
			return nil, nil, err
		}
		return j.Graph, j.Switches, nil
	}
	return nil, nil, fmt.Errorf("check: unknown cache topology family %q", c.Topo)
}

// failSome fails c.FailLinks switch-to-switch links, chosen by the
// case's seed — identically on both twin instances.
func (c CacheCase) failSome(g *topology.Graph) {
	if c.FailLinks == 0 {
		return
	}
	links := switchLinks(g)
	if len(links) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(c.Seed + 17))
	for i := 0; i < c.FailLinks; i++ {
		l := links[rng.Intn(len(links))]
		g.FailLink(g.MustLookup(l[0]), g.MustLookup(l[1]))
	}
}

// cacheSynth issues the family's cached request against the shared
// cache; reference runs the matching from-scratch synthesis.
func (c CacheCase) cacheSynth(cache *synthcache.Cache, g *topology.Graph, eps []topology.NodeID) (synthcache.Result, error) {
	if c.Topo == "jellyfish" {
		set := elp.ShortestAllN(g, eps, 1)
		return cache.Synthesize(g, set.Paths(), core.Options{})
	}
	return cache.ClosKBounce(g, eps, c.MaxBounces)
}

func (c CacheCase) reference(g *topology.Graph, eps []topology.NodeID) (*core.System, error) {
	if c.Topo == "jellyfish" {
		set := elp.ShortestAllN(g, eps, 1)
		return core.Synthesize(g, set.Paths(), core.Options{})
	}
	set := elp.KBounce(g, eps, c.MaxBounces, nil)
	return core.ClosSynthesize(g, set.Paths(), c.MaxBounces)
}

// cacheEquiv demands the cached result be indistinguishable from the
// from-scratch reference: identical rules and max tag, identical runtime
// tagged graph, the same ELP as a set (stamped path order may differ
// from enumeration order), and a clean pass of the independent oracle.
func cacheEquiv(got *core.System, ref *core.System) error {
	if diffs := DiffRulesets(ref.Rules, got.Rules); len(diffs) > 0 {
		return fmt.Errorf("cached vs from-scratch rules diverge (%d diffs; first: %s)", len(diffs), diffs[0])
	}
	if a, b := ref.Rules.MaxTag(), got.Rules.MaxTag(); a != b {
		return fmt.Errorf("cached vs from-scratch max tag: %d vs %d", b, a)
	}
	gn, rn := got.Runtime.Nodes(), ref.Runtime.Nodes()
	ge, re := got.Runtime.Edges(), ref.Runtime.Edges()
	if len(gn) != len(rn) || len(ge) != len(re) {
		return fmt.Errorf("runtime graph size: %d/%d nodes, %d/%d edges", len(gn), len(rn), len(ge), len(re))
	}
	for i := range gn {
		if gn[i] != rn[i] {
			return fmt.Errorf("runtime node %d diverges: %+v vs %+v", i, gn[i], rn[i])
		}
	}
	for i := range ge {
		if ge[i] != re[i] {
			return fmt.Errorf("runtime edge %d diverges: %+v vs %+v", i, ge[i], re[i])
		}
	}
	if err := samePathSet(got.ELP, ref.ELP); err != nil {
		return err
	}
	if err := VerifySystem(got); err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	return nil
}

func samePathSet(a, b []routing.Path) error {
	key := func(ps []routing.Path) []string {
		out := make([]string, len(ps))
		for i, p := range ps {
			out[i] = p.Key()
		}
		sort.Strings(out)
		return out
	}
	ka, kb := key(a), key(b)
	if len(ka) != len(kb) {
		return fmt.Errorf("ELP size: %d vs %d paths", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Errorf("ELP differs at sorted index %d: %s vs %s", i, ka[i], kb[i])
		}
	}
	return nil
}

// RunCacheCase drives one case through the shared cache:
//
//  1. cold: first request builds (possibly pod-stamped) — must match the
//     from-scratch reference on the same instance;
//  2. warm: second request on the same graph must be a shared hit
//     returning the identical System;
//  3. twin: the same request against a rebuilt instance (distinct
//     pointers, equal fingerprint) must match that instance's own
//     from-scratch reference, whether it was served by translation or by
//     an uncached rebuild.
//
// The cache is shared across every case of a sweep, so cross-case
// eviction and key-collision behavior is exercised for free.
func RunCacheCase(c CacheCase, cache *synthcache.Cache) error {
	g, eps, err := c.buildCache()
	if err != nil {
		return fmt.Errorf("check: building %s: %w", c, err)
	}
	c.failSome(g)

	ref, err := c.reference(g, eps)
	if err != nil {
		return fmt.Errorf("check: %s: reference synthesis: %w", c, err)
	}
	cold, err := c.cacheSynth(cache, g, eps)
	if err != nil {
		return fmt.Errorf("%s: cold cached synthesis: %w", c, err)
	}
	if cold.Sys.Graph != g {
		return fmt.Errorf("%s: cold System bound to the wrong graph", c)
	}
	if err := cacheEquiv(cold.Sys, ref); err != nil {
		return fmt.Errorf("%s: cold: %w", c, err)
	}

	warm, err := c.cacheSynth(cache, g, eps)
	if err != nil {
		return fmt.Errorf("%s: warm cached synthesis: %w", c, err)
	}
	// The cache is shared across a sweep's seeds, and distinct seeds can
	// generate identical fabrics: the resident entry for this key may be
	// bound to ANOTHER seed's graph instance, in which case the warm
	// request legitimately misses (or is served by translation) instead
	// of hitting the shared tier. Whatever tier answered, the result must
	// be bound to our graph and match the reference.
	if warm.Sys.Graph != g {
		return fmt.Errorf("%s: warm System bound to the wrong graph", c)
	}
	if warm.Hit && !warm.Translated && warm.Sys != cold.Sys && cold.Sys.Graph == g && !cold.Hit {
		return fmt.Errorf("%s: shared hit returned a different System than the cold build", c)
	}
	if err := cacheEquiv(warm.Sys, ref); err != nil {
		return fmt.Errorf("%s: warm: %w", c, err)
	}

	g2, eps2, err := c.buildCache()
	if err != nil {
		return fmt.Errorf("check: rebuilding %s: %w", c, err)
	}
	c.failSome(g2)
	ref2, err := c.reference(g2, eps2)
	if err != nil {
		return fmt.Errorf("check: %s: twin reference synthesis: %w", c, err)
	}
	twin, err := c.cacheSynth(cache, g2, eps2)
	if err != nil {
		return fmt.Errorf("%s: twin cached synthesis: %w", c, err)
	}
	if twin.Sys == cold.Sys {
		return fmt.Errorf("%s: twin instance was handed the first instance's System", c)
	}
	if twin.Sys.Graph != g2 {
		return fmt.Errorf("%s: twin System bound to the wrong graph", c)
	}
	if err := cacheEquiv(twin.Sys, ref2); err != nil {
		return fmt.Errorf("%s: twin: %w", c, err)
	}
	return nil
}
