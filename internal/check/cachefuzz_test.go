package check

import (
	"sync"
	"testing"

	"repro/internal/synthcache"
)

// TestCacheSweepShared runs a small seeded cache-differential sweep over
// every family with ONE shared cache — the always-on smoke layer for
// cmd/taggerfuzz -cache / `make cache-fuzz`. Sequential here; the
// concurrent variant below and the -race run of `make cache-fuzz` cover
// contention.
func TestCacheSweepShared(t *testing.T) {
	seeds := int64(5)
	if testing.Short() {
		seeds = 2
	}
	cache := synthcache.New(32)
	for _, topo := range CacheTopos() {
		for seed := int64(1); seed <= seeds; seed++ {
			c := GenCacheCase(topo, seed)
			if err := RunCacheCase(c, cache); err != nil {
				t.Errorf("cache differential failure (replay with: taggerfuzz -cache -topo %s -seed %d -seeds 1): %v",
					topo, seed, err)
			}
		}
	}
	st := cache.Stats()
	if st.Misses == 0 {
		t.Error("sweep never built anything")
	}
	if st.PodStamped == 0 {
		t.Error("sweep never exercised pod stamping (clos/fattree cases should)")
	}
}

// TestCacheSweepConcurrent drives every case of the sweep against the
// shared cache from its own goroutine; `go test -race` plus the
// per-case differential is the assertion. A small capacity forces
// eviction churn under contention.
func TestCacheSweepConcurrent(t *testing.T) {
	seeds := int64(3)
	if testing.Short() {
		seeds = 1
	}
	cache := synthcache.New(4)
	var wg sync.WaitGroup
	for _, topo := range CacheTopos() {
		for seed := int64(1); seed <= seeds; seed++ {
			topo, seed := topo, seed
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := GenCacheCase(topo, seed)
				if err := RunCacheCase(c, cache); err != nil {
					t.Errorf("concurrent cache differential: %v", err)
				}
			}()
		}
	}
	wg.Wait()
}
