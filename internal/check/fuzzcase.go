package check

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Case is one self-contained fuzz input: a topology family with its
// knobs, the ELP recipe, and the parallelism to differentiate against.
// Everything is plain exported ints so a failing case round-trips through
// the emitted repro test verbatim.
type Case struct {
	Topo string // "clos", "jellyfish" or "bcube"
	Seed int64  // drives random wiring, extra paths and deviations

	// Clos knobs.
	Pods, ToRsPerPod, LeafsPerPod, Spines, HostsPerToR int
	MaxBounces                                         int

	// Jellyfish knobs.
	Switches, Ports, NetPorts int

	// BCube knobs.
	N, K int

	ExtraPaths int // seeded random paths added to the base ELP
	Deviations int // seeded off-ELP paths replayed through the pipelines
	Workers    int // parallel worker count diffed against serial
}

func (c Case) String() string {
	switch c.Topo {
	case "clos":
		return fmt.Sprintf("clos{pods=%d tors=%d leafs=%d spines=%d hosts=%d k=%d extra=%d dev=%d par=%d seed=%d}",
			c.Pods, c.ToRsPerPod, c.LeafsPerPod, c.Spines, c.HostsPerToR, c.MaxBounces, c.ExtraPaths, c.Deviations, c.Workers, c.Seed)
	case "jellyfish":
		return fmt.Sprintf("jellyfish{sw=%d ports=%d net=%d extra=%d dev=%d par=%d seed=%d}",
			c.Switches, c.Ports, c.NetPorts, c.ExtraPaths, c.Deviations, c.Workers, c.Seed)
	case "bcube":
		return fmt.Sprintf("bcube{n=%d k=%d extra=%d dev=%d par=%d seed=%d}",
			c.N, c.K, c.ExtraPaths, c.Deviations, c.Workers, c.Seed)
	}
	return fmt.Sprintf("case{topo=%q seed=%d}", c.Topo, c.Seed)
}

// Topos lists the supported topology families.
func Topos() []string { return []string{"clos", "jellyfish", "bcube"} }

// GenCase derives a case from a seed, keeping every knob inside bounds
// where a full differential run stays sub-second: the fuzz loop's value
// is input diversity, not instance size.
func GenCase(topo string, seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	c := Case{
		Topo:       topo,
		Seed:       seed,
		ExtraPaths: rng.Intn(6),
		Deviations: 4 + rng.Intn(8),
		Workers:    2 + rng.Intn(3),
	}
	switch topo {
	case "clos":
		c.Pods = 1 + rng.Intn(3)
		c.ToRsPerPod = 1 + rng.Intn(2)
		c.LeafsPerPod = 1 + rng.Intn(2)
		c.Spines = 1 + rng.Intn(3)
		c.HostsPerToR = rng.Intn(3)
		c.MaxBounces = 1 + rng.Intn(2)
		if c.Pods*c.ToRsPerPod < 2 {
			c.ToRsPerPod = 2 // at least one endpoint pair
		}
	case "jellyfish":
		c.Switches = 4 + rng.Intn(7)
		c.NetPorts = 2 + rng.Intn(2)
		if c.NetPorts >= c.Switches {
			c.NetPorts = c.Switches - 1
		}
		c.Ports = c.NetPorts + 1 + rng.Intn(3)
	case "bcube":
		c.N = 2 + rng.Intn(2)
		c.K = 1
		if c.N == 2 && rng.Intn(2) == 0 {
			c.K = 2
		}
	}
	return c
}

// validConfig reports whether the knobs describe a buildable instance
// with at least one endpoint pair. The shrinker consults it so greedy
// descent cannot wander from a genuine divergence into a trivially
// impossible configuration whose build error also "fails".
func (c Case) validConfig() bool {
	switch c.Topo {
	case "clos":
		return c.Pods >= 1 && c.ToRsPerPod >= 1 && c.LeafsPerPod >= 1 &&
			c.Spines >= 1 && c.HostsPerToR >= 0 && c.MaxBounces >= 1 &&
			c.Pods*c.ToRsPerPod >= 2
	case "jellyfish":
		return c.Switches >= 2 && c.Ports >= 2 && c.NetPorts >= 1 &&
			c.NetPorts < c.Switches && c.NetPorts <= c.Ports
	case "bcube":
		return c.N >= 2 && c.K >= 0
	}
	return false
}

// build materializes the case's topology and endpoint roster. The second
// return value is the endpoints the ELP recipes draw from.
func (c Case) build() (*topology.Graph, []topology.NodeID, *topology.BCube, error) {
	switch c.Topo {
	case "clos":
		cl, err := topology.NewClos(topology.ClosConfig{
			Pods: c.Pods, ToRsPerPod: c.ToRsPerPod, LeafsPerPod: c.LeafsPerPod,
			Spines: c.Spines, HostsPerToR: c.HostsPerToR,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		return cl.Graph, cl.ToRs, nil, nil
	case "jellyfish":
		j, err := topology.NewJellyfish(topology.JellyfishConfig{
			Switches: c.Switches, Ports: c.Ports, NetPorts: c.NetPorts,
			Seed: c.Seed, Attempts: 64,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		return j.Graph, j.Switches, nil, nil
	case "bcube":
		b, err := topology.NewBCube(c.N, c.K)
		if err != nil {
			return nil, nil, nil, err
		}
		return b.Graph, b.Servers, b, nil
	}
	return nil, nil, nil, fmt.Errorf("check: unknown topology family %q", c.Topo)
}

// elpSets builds the base ELP for the family plus the extended set with
// the seeded random paths mixed in. The base set is what the Clos scheme
// (bounce budget) is held to; the generic algorithms get the extension.
func (c Case) elpSets(g *topology.Graph, endpoints []topology.NodeID, b *topology.BCube) (base, ext *elp.Set, err error) {
	switch c.Topo {
	case "clos":
		base = elp.KBounce(g, endpoints, c.MaxBounces, nil)
	case "jellyfish":
		base = elp.ShortestAllN(g, endpoints, 1)
	case "bcube":
		base = elp.BCubeELP(b, endpoints)
	}
	if base.Len() == 0 {
		return nil, nil, fmt.Errorf("check: empty base ELP for %s", c)
	}
	ext = elp.NewSet()
	if err := ext.AddAll(g, base.Paths()); err != nil {
		return nil, nil, err
	}
	elp.AddRandomPaths(ext, g, endpoints, c.ExtraPaths, 8, c.Seed+1)
	return base, ext, nil
}

// RunCase executes the full differential battery on one case and returns
// the first divergence or invariant violation:
//
//  1. oracle re-verification of everything both generic algorithms built;
//  2. scheme differential (Alg1 vs Alg2 vs, on Clos, the bounce scheme);
//  3. serial-vs-parallel synthesis, rule for rule;
//  4. compressed-vs-uncompressed TCAM decisions, exhaustively and along
//     both ELP and seeded deviation paths, correct and legacy egress.
func RunCase(c Case) error {
	g, endpoints, b, err := c.build()
	if err != nil {
		return fmt.Errorf("check: building %s: %w", c, err)
	}
	base, ext, err := c.elpSets(g, endpoints, b)
	if err != nil {
		return err
	}

	var closBase []routing.Path
	if c.Topo == "clos" {
		closBase = base.Paths()
	}
	if _, err := DiffSchemes(g, ext.Paths(), closBase, c.MaxBounces); err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}

	par := c.Workers
	if par < 2 {
		par = 2
	}
	if err := DiffParallelism(g, ext.Paths(), par); err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}

	s, err := core.Synthesize(g, ext.Paths(), core.Options{Workers: 1})
	if err != nil {
		return fmt.Errorf("%s: synthesis: %w", c, err)
	}
	rulesets := []*core.Ruleset{s.Rules}
	if c.Topo == "clos" {
		rulesets = append(rulesets, core.ClosRules(g, c.MaxBounces, 1))
	}
	deviations := elp.DeviationPaths(g, ext, endpoints, c.Deviations, 8, c.Seed+2)
	for _, rs := range rulesets {
		if diffs := DiffDecisionsExhaustive(rs, par); len(diffs) > 0 {
			return fmt.Errorf("%s: %d compressed/uncompressed decision diffs (first: %s)",
				c, len(diffs), diffs[0])
		}
		if err := DiffCompiledParallelism(rs, par); err != nil {
			return fmt.Errorf("%s: %w", c, err)
		}
		if err := ReplayPaths(rs, deviations, ReplayOpts{Par: par, Legacy: true}); err != nil {
			return fmt.Errorf("%s: deviation replay: %w", c, err)
		}
	}
	if err := ReplayPaths(s.Rules, ext.Paths(), ReplayOpts{Par: par, Legacy: true, RequireLossless: true}); err != nil {
		return fmt.Errorf("%s: ELP replay: %w", c, err)
	}
	if len(closBase) > 0 {
		if err := ReplayPaths(rulesets[1], closBase, ReplayOpts{Par: par, Legacy: true, RequireLossless: true}); err != nil {
			return fmt.Errorf("%s: clos ELP replay: %w", c, err)
		}
	}
	return nil
}

// Shrink minimizes a failing case: it walks every shrinkable knob,
// repeatedly trying smaller values (and zero for the optional ones) while
// fails keeps returning true, until a full pass changes nothing. The
// result fails the same predicate but is as small as greedy per-field
// descent gets — usually a two-switch fabric with a handful of paths.
func Shrink(c Case, fails func(Case) bool) Case {
	type knob struct {
		get func(*Case) *int
		min int
	}
	knobs := map[string][]knob{
		"clos": {
			{func(c *Case) *int { return &c.Pods }, 1},
			{func(c *Case) *int { return &c.ToRsPerPod }, 1},
			{func(c *Case) *int { return &c.LeafsPerPod }, 1},
			{func(c *Case) *int { return &c.Spines }, 1},
			{func(c *Case) *int { return &c.HostsPerToR }, 0},
			{func(c *Case) *int { return &c.MaxBounces }, 1},
		},
		"jellyfish": {
			{func(c *Case) *int { return &c.Switches }, 3},
			{func(c *Case) *int { return &c.Ports }, 3},
			{func(c *Case) *int { return &c.NetPorts }, 2},
		},
		"bcube": {
			{func(c *Case) *int { return &c.N }, 2},
			{func(c *Case) *int { return &c.K }, 1},
		},
	}
	common := []knob{
		{func(c *Case) *int { return &c.ExtraPaths }, 0},
		{func(c *Case) *int { return &c.Deviations }, 0},
		{func(c *Case) *int { return &c.Workers }, 2},
	}
	all := append(append([]knob{}, knobs[c.Topo]...), common...)

	for changed := true; changed; {
		changed = false
		for _, k := range all {
			for {
				cur := *k.get(&c)
				if cur <= k.min {
					break
				}
				// Try the floor first (one probe often finishes the
				// field), then single steps. Structurally impossible
				// candidates are never probed: their build errors would
				// satisfy fails for the wrong reason.
				cand := c
				*k.get(&cand) = k.min
				if !cand.validConfig() || !fails(cand) {
					cand = c
					*k.get(&cand) = cur - 1
					if !cand.validConfig() || !fails(cand) {
						break
					}
				}
				c = cand
				changed = true
			}
		}
	}
	return c
}
