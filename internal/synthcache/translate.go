package synthcache

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/routing"
	"repro/internal/tcam"
	"repro/internal/topology"
)

// permFromCanons maps producer node IDs to consumer node IDs through the
// shared canonical order. Equal fingerprints guarantee this position-wise
// map is an isomorphism preserving kinds, layers and port numbers (see
// internal/fingerprint), which is what makes translated rules exact:
// rules match on (switch, tag, port numbers) and port numbers are
// invariant under the map.
func permFromCanons(prod, cons *fingerprint.Canon) []topology.NodeID {
	out := make([]topology.NodeID, len(prod.Order))
	for pos, id := range prod.Order {
		out[id] = cons.Order[pos]
	}
	return out
}

// translateEntry rebuilds a cached system over the caller's graph by
// relabeling switches through the canonical orders, then re-replays and
// re-verifies over the caller's own paths. Cheap relative to synthesis:
// Algorithms 1+2 and TCAM compression are skipped entirely. It declines
// (errUntranslatable) when the producer carries conflict/repair state the
// relabeling does not model.
func translateEntry(e *entry, g *topology.Graph, canon *fingerprint.Canon,
	paths []routing.Path) (*core.System, *tcam.Compiled, error) {

	src := e.sys
	if len(src.Conflicts) > 0 || len(src.Repairs) > 0 {
		return nil, nil, errUntranslatable
	}
	perm := permFromCanons(e.canon, canon)
	rs := core.NewRuleset(g, src.Rules.MaxTag())
	for _, r := range src.Rules.Rules() {
		r.Switch = perm[r.Switch]
		if _, conflicted := rs.Add(r); conflicted {
			return nil, nil, errUntranslatable
		}
	}
	runtime, violations := core.BuildRuleGraph(rs, paths, 1)
	if len(violations) > 0 {
		return nil, nil, fmt.Errorf("synthcache: translated rules leave %d ELP paths lossy", len(violations))
	}
	if err := runtime.Verify(); err != nil {
		return nil, nil, fmt.Errorf("synthcache: translated runtime graph: %w", err)
	}
	rs.RuleByID(0) // pre-warm the lazy ID index before the result escapes
	image := translateImage(e.image, e.g, rs, perm)
	return &core.System{Graph: g, ELP: paths, Rules: rs, Runtime: runtime}, image, nil
}

// translateImage relabels a compiled TCAM image switch-by-switch. Port
// bitmaps carry over verbatim — the isomorphism preserves port numbers —
// and per-switch entry order (TCAM priority order) is kept intact.
func translateImage(src *tcam.Compiled, srcGraph *topology.Graph,
	rs *core.Ruleset, perm []topology.NodeID) *tcam.Compiled {

	entries := make([]tcam.Entry, 0, src.TotalEntries())
	for _, sw := range srcGraph.Switches() {
		for _, en := range src.Entries(sw) {
			en.Switch = perm[sw]
			entries = append(entries, en)
		}
	}
	return tcam.CompiledFromEntries(rs, entries)
}
