package synthcache_test

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/routing"
	"repro/internal/synthcache"
	"repro/internal/topology"
)

func smallClos(t *testing.T) *topology.Clos {
	t.Helper()
	c, err := topology.NewClos(topology.ClosConfig{
		Pods: 4, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 4, HostsPerToR: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallJellyfish(t *testing.T) *topology.Jellyfish {
	t.Helper()
	j, err := topology.NewJellyfish(topology.JellyfishConfig{Switches: 12, Ports: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func pathKeys(paths []routing.Path) []string {
	keys := make([]string, len(paths))
	for i, p := range paths {
		keys[i] = p.Key()
	}
	sort.Strings(keys)
	return keys
}

// requireIdentical asserts two systems agree rule-for-rule, on the
// runtime tagged graph, and on the ELP as a set.
func requireIdentical(t *testing.T, got, want *core.System) {
	t.Helper()
	if diffs := check.DiffRulesets(got.Rules, want.Rules); len(diffs) != 0 {
		t.Fatalf("rulesets differ: %d diffs, first %+v", len(diffs), diffs[0])
	}
	gn, wn := got.Runtime.Nodes(), want.Runtime.Nodes()
	if len(gn) != len(wn) {
		t.Fatalf("runtime nodes: %d vs %d", len(gn), len(wn))
	}
	for i := range gn {
		if gn[i] != wn[i] {
			t.Fatalf("runtime node %d: %+v vs %+v", i, gn[i], wn[i])
		}
	}
	ge, we := got.Runtime.Edges(), want.Runtime.Edges()
	if len(ge) != len(we) {
		t.Fatalf("runtime edges: %d vs %d", len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("runtime edge %d: %+v vs %+v", i, ge[i], we[i])
		}
	}
	gk, wk := pathKeys(got.ELP), pathKeys(want.ELP)
	if len(gk) != len(wk) {
		t.Fatalf("ELP size: %d vs %d paths", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Fatalf("ELP differs at sorted index %d: %s vs %s", i, gk[i], wk[i])
		}
	}
}

func TestWarmHitSharesSystem(t *testing.T) {
	c := smallClos(t)
	cache := synthcache.New(8)
	set := elp.KBounce(c.Graph, c.ToRs, 1, nil)

	cold, err := cache.SynthesizeClos(c.Graph, set.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hit {
		t.Fatal("first request hit")
	}
	warm, err := cache.SynthesizeClos(c.Graph, set.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit || warm.Translated {
		t.Fatalf("second request: hit=%v translated=%v, want shared hit", warm.Hit, warm.Translated)
	}
	if warm.Sys != cold.Sys || warm.Image != cold.Image {
		t.Fatal("shared hit did not return the cached objects")
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestWarmHitSurvivesLinkFlap(t *testing.T) {
	// Link health is not wiring: a flap must not invalidate the canon
	// memo or change the synthesis key (the path set is the same object).
	c := smallClos(t)
	cache := synthcache.New(8)
	set := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	if _, err := cache.SynthesizeClos(c.Graph, set.Paths(), 1); err != nil {
		t.Fatal(err)
	}
	c.Graph.FailLink(c.ToRs[0], c.Leaves[0])
	c.Graph.RestoreLink(c.ToRs[0], c.Leaves[0])
	warm, err := cache.SynthesizeClos(c.Graph, set.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit {
		t.Fatal("link flap evicted a wiring-keyed entry")
	}
}

func TestTranslatedHitMatchesFromScratch(t *testing.T) {
	a := smallClos(t)
	b := smallClos(t) // separate instance, identical construction
	cache := synthcache.New(8)

	setA := elp.KBounce(a.Graph, a.ToRs, 1, nil)
	if _, err := cache.SynthesizeClos(a.Graph, setA.Paths(), 1); err != nil {
		t.Fatal(err)
	}
	setB := elp.KBounce(b.Graph, b.ToRs, 1, nil)
	res, err := cache.SynthesizeClos(b.Graph, setB.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || !res.Translated {
		t.Fatalf("hit=%v translated=%v, want translated hit", res.Hit, res.Translated)
	}
	if res.Sys.Graph != b.Graph {
		t.Fatal("translated system not rebound to the caller's graph")
	}
	want, err := core.ClosSynthesize(b.Graph, setB.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, res.Sys, want)
	if res.Image.TotalEntries() == 0 {
		t.Fatal("translated image is empty")
	}
}

func TestGenericSynthesizeWarm(t *testing.T) {
	j := smallJellyfish(t)
	cache := synthcache.New(8)
	set := elp.ShortestAllN(j.Graph, j.Switches, 1)

	cold, err := cache.Synthesize(j.Graph, set.Paths(), core.Options{StartTag: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cache.Synthesize(j.Graph, set.Paths(), core.Options{StartTag: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit || warm.Sys != cold.Sys {
		t.Fatal("generic warm request missed")
	}
	// A different option set is a different key.
	other, err := cache.Synthesize(j.Graph, set.Paths(), core.Options{StartTag: 1, SkipMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if other.Hit {
		t.Fatal("SkipMerge request hit the merged entry")
	}
}

func TestSingleFlightBuildsOnce(t *testing.T) {
	c := smallClos(t)
	cache := synthcache.New(8)
	set := elp.KBounce(c.Graph, c.ToRs, 1, nil)

	const n = 8
	results := make([]synthcache.Result, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			r, err := cache.SynthesizeClos(c.Graph, set.Paths(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	close(start)
	wg.Wait()

	s := cache.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want exactly one build", s.Misses)
	}
	if s.Hits != n-1 {
		t.Fatalf("hits = %d, want %d", s.Hits, n-1)
	}
	for i := 1; i < n; i++ {
		if results[i].Sys != results[0].Sys {
			t.Fatal("concurrent requests got distinct systems")
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallClos(t)
	cache := synthcache.New(1)
	set1 := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	set2 := elp.KBounce(c.Graph, c.ToRs, 2, nil)

	if _, err := cache.SynthesizeClos(c.Graph, set1.Paths(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.SynthesizeClos(c.Graph, set2.Paths(), 2); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if cache.Len() != 1 {
		t.Fatalf("len = %d, want 1", cache.Len())
	}
	// The evicted key rebuilds cleanly.
	r, err := cache.SynthesizeClos(c.Graph, set1.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit {
		t.Fatal("evicted entry served a hit")
	}
}

func TestEvictionUnderConcurrency(t *testing.T) {
	// Capacity 1 with three hot keys: every response must still be a
	// complete, verified system — eviction must never expose a
	// partially-built image to an in-flight waiter.
	c := smallClos(t)
	cache := synthcache.New(1)
	sets := []*elp.Set{
		elp.KBounce(c.Graph, c.ToRs, 0, nil),
		elp.KBounce(c.Graph, c.ToRs, 1, nil),
		elp.KBounce(c.Graph, c.ToRs, 2, nil),
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := (w + i) % 3
				r, err := cache.SynthesizeClos(c.Graph, sets[k].Paths(), k)
				if err != nil {
					t.Error(err)
					return
				}
				if r.Sys == nil || r.Image == nil {
					t.Error("incomplete result")
					return
				}
				if err := r.Sys.Runtime.Verify(); err != nil {
					t.Errorf("cached runtime failed verification: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if cache.Len() != 1 {
		t.Fatalf("len = %d, want capacity bound 1", cache.Len())
	}
}

func TestErroredBuildNotCached(t *testing.T) {
	c := smallClos(t)
	cache := synthcache.New(8)
	// A 2-bounce ELP against a 1-bounce budget cannot be kept lossless.
	set := elp.KBounce(c.Graph, c.ToRs, 2, nil)
	if _, err := cache.SynthesizeClos(c.Graph, set.Paths(), 1); err == nil {
		t.Fatal("expected a synthesis error")
	}
	if cache.Len() != 0 {
		t.Fatalf("failed build left %d entries resident", cache.Len())
	}
	if _, err := cache.SynthesizeClos(c.Graph, set.Paths(), 1); err == nil {
		t.Fatal("retry unexpectedly succeeded")
	}
	if s := cache.Stats(); s.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (errors are not cached)", s.Misses)
	}
}

func TestPodStampedMatchesFromScratchFatTree(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cache := synthcache.New(8)
	res, err := cache.ClosKBounce(ft.Graph, ft.Edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PodMemoized {
		t.Fatal("FatTree(4) did not take the pod-stamped path")
	}
	set := elp.KBounce(ft.Graph, ft.Edges, 1, nil)
	want, err := core.ClosSynthesize(ft.Graph, set.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, res.Sys, want)
	if res.Sys.NumLosslessQueues() != want.NumLosslessQueues() {
		t.Fatalf("queues: %d vs %d", res.Sys.NumLosslessQueues(), want.NumLosslessQueues())
	}
	wantImage := len(pathKeys(want.ELP))
	if got := len(res.Sys.ELP); got != wantImage {
		t.Fatalf("ELP count: %d vs %d", got, wantImage)
	}
}

func TestPodStampedMatchesFromScratchClos(t *testing.T) {
	c := smallClos(t)
	cache := synthcache.New(8)
	for _, k := range []int{0, 1, 2} {
		res, err := cache.ClosKBounce(c.Graph, c.ToRs, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.PodMemoized {
			t.Fatalf("k=%d: 4-pod Clos did not take the pod-stamped path", k)
		}
		set := elp.KBounce(c.Graph, c.ToRs, k, nil)
		want, err := core.ClosSynthesize(c.Graph, set.Paths(), k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		requireIdentical(t, res.Sys, want)
	}
}

func TestPodStampingFallsBackOnFailedLink(t *testing.T) {
	// An intra-pod failure breaks pod uniformity; the build must fall
	// back to full enumeration and stay correct. Health IS part of the
	// ClosKBounce key, so the healthy entry must not be reused either.
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cache := synthcache.New(8)
	healthy, err := cache.ClosKBounce(ft.Graph, ft.Edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	ft.Graph.FailLink(ft.Edges[0], ft.Aggs[0])

	res, err := cache.ClosKBounce(ft.Graph, ft.Edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("failed-link request hit the healthy entry")
	}
	if res.PodMemoized {
		t.Fatal("non-uniform fabric took the pod-stamped path")
	}
	set := elp.KBounce(ft.Graph, ft.Edges, 1, nil)
	want, err := core.ClosSynthesize(ft.Graph, set.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, res.Sys, want)
	if len(res.Sys.ELP) >= len(healthy.Sys.ELP) {
		t.Fatal("failure did not shrink the ELP — key separation suspect")
	}

	ft.Graph.RestoreLink(ft.Edges[0], ft.Aggs[0])
	again, err := cache.ClosKBounce(ft.Graph, ft.Edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Hit || again.Sys != healthy.Sys {
		t.Fatal("restored fabric did not rehit the healthy entry")
	}
}
