package synthcache_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/elp"
	"repro/internal/synthcache"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// driveCounters pushes one deterministic request sequence through a
// capacity-1 cache: a cold Clos miss, a shared rehit, a translated hit
// from an isomorphic twin, and a pod-stamped fat-tree build that evicts
// the Clos entry. Final tallies: 2 hits, 2 misses, 1 eviction,
// 1 translated, 1 pod-stamped.
func driveCounters(t *testing.T, reg *telemetry.Registry) {
	t.Helper()
	cache := synthcache.New(1)
	cache.SetTelemetry(reg)

	mkClos := func() *topology.Clos {
		c, err := topology.NewClos(topology.ClosConfig{
			Pods: 2, ToRsPerPod: 1, LeafsPerPod: 1, Spines: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := mkClos()
	setA := elp.KBounce(a.Graph, a.ToRs, 1, nil)
	if _, err := cache.SynthesizeClos(a.Graph, setA.Paths(), 1); err != nil {
		t.Fatal(err) // miss
	}
	if r, err := cache.SynthesizeClos(a.Graph, setA.Paths(), 1); err != nil || !r.Hit {
		t.Fatalf("rehit = %+v, %v", r, err) // shared hit
	}
	b := mkClos()
	setB := elp.KBounce(b.Graph, b.ToRs, 1, nil)
	if r, err := cache.SynthesizeClos(b.Graph, setB.Paths(), 1); err != nil || !r.Translated {
		t.Fatalf("twin = %+v, %v", r, err) // translated hit
	}
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := cache.ClosKBounce(ft.Graph, ft.Edges, 1); err != nil || !r.PodMemoized {
		t.Fatalf("fattree = %+v, %v", r, err) // pod-stamped miss + eviction
	}

	want := synthcache.Stats{Hits: 2, Misses: 2, Evictions: 1, Translated: 1, PodStamped: 1}
	if got := cache.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

// TestPrometheusGoldenCacheCounters pins the cache's metric families in
// the Prometheus text exposition byte-for-byte, the same way the
// telemetry exporter's own goldens do.
func TestPrometheusGoldenCacheCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	driveCounters(t, reg)
	var sb strings.Builder
	if err := telemetry.WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE synthcache_evictions counter
synthcache_evictions 1
# TYPE synthcache_hits counter
synthcache_hits 2
# TYPE synthcache_misses counter
synthcache_misses 2
# TYPE synthcache_pod_stamped counter
synthcache_pod_stamped 1
# TYPE synthcache_translated counter
synthcache_translated 1
`
	if got := sb.String(); got != want {
		t.Fatalf("cache counter exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMetricsEndpointServesCacheCounters scrapes the counters off the
// ops /metrics endpoint — the path operators actually read.
func TestMetricsEndpointServesCacheCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	driveCounters(t, reg)
	srv := httptest.NewServer(telemetry.Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, line := range []string{
		"synthcache_hits 2",
		"synthcache_misses 2",
		"synthcache_evictions 1",
		"synthcache_translated 1",
		"synthcache_pod_stamped 1",
	} {
		if !strings.Contains(string(body), line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
}
