package synthcache

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/fingerprint"
	"repro/internal/routing"
	"repro/internal/tcam"
	"repro/internal/topology"
)

// This file implements pod-isomorphism memoization for the Clos-optimal
// synthesis pipeline (KBounce ELP enumeration + ClosSynthesize). On a
// uniform multi-pod fabric the k-bounce path set between pods (p, q) is
// the image of the (0, 1) set under the pod-permutation automorphism
// σ_{p,q}, so the expensive enumeration and replay run only for the
// representative pod pair and the rest is stamped out by dense node-ID
// translation:
//
//   - ELP: the true path set decomposes into per-pod-pair buckets by
//     endpoint membership. Bucket (p,p) = σ_{p,q}(bucket (0,0)) and
//     bucket (p,q) = σ_{p,q}(bucket (0,1)) for ANY automorphism sending
//     0->p (and 1->q), because bucket membership depends on endpoints
//     only while σ bijects the full k-bounce path universe. Stamping is
//     therefore exact, not approximate.
//   - Rules: ClosRules is purely local and layer-based, so it is emitted
//     once over the full graph (cheap) and is invariant under every
//     layer-preserving automorphism — which is also why losslessness of
//     the replayed representative buckets transfers to every stamped
//     image: replaying σ(path) over σ-invariant rules yields the same
//     tag sequence.
//   - Runtime graph: the tagged chain of σ(path) is the port-wise image
//     of path's chain, so the full runtime equals the union of the
//     representative fragment's images under all σ_{p,q}. The union is
//     idempotent, so overlapping coverage (every σ_{p,q} re-contributes
//     some intra-pod chains) is harmless.
//
// The result is rule-for-rule and runtime-graph identical to from-scratch
// ClosSynthesize over the full KBounce set; `make cache-fuzz` enforces
// that with the internal/check differential oracle.

// ClosKBounce is a memoized and pod-stamped equivalent of
//
//	set := elp.KBounce(g, endpoints, maxBounces, nil)
//	sys, err := core.ClosSynthesize(g, set.Paths(), maxBounces)
//	image := tcam.NewCompiled(sys.Rules, 0)
//
// The cache key covers the graph fingerprint, the endpoint roster (as
// canonical positions, order-sensitive) and the failed-link set — unlike
// rule synthesis, path ENUMERATION routes around failed links, so health
// is part of this key.
func (c *Cache) ClosKBounce(g *topology.Graph, endpoints []topology.NodeID, maxBounces int) (Result, error) {
	canon := c.canonOf(g)
	params := make([]int, 1, len(endpoints)+1)
	params[0] = maxBounces
	for _, ep := range endpoints {
		params = append(params, int(canon.Pos[ep]))
	}
	key := fingerprint.Key("closkb", params, canon.FP, fingerprint.HealthSum(canon, g))

	e, builder := c.acquire(key)
	if !builder {
		c.wait(e)
		switch {
		case e.err != nil:
			return Result{}, e.err
		case e.g == g:
			c.count(&c.hits, "hits")
			return Result{Sys: e.sys, Image: e.image, Hit: true, PodMemoized: e.pod}, nil
		}
		// Same fingerprint, different graph instance: the cached entry
		// stays with its producer (translating millions of stamped paths
		// buys nothing over re-stamping); rebuild for this instance
		// uncached — still pod-memoized, so still fast.
		c.count(&c.misses, "misses")
		sys, pod, err := c.podStampedBuild(g, endpoints, maxBounces)
		if err != nil {
			return Result{}, err
		}
		return Result{Sys: sys, Image: tcam.NewCompiled(sys.Rules, 0), PodMemoized: pod}, nil
	}

	c.count(&c.misses, "misses")
	sys, pod, err := c.podStampedBuild(g, endpoints, maxBounces)
	var image *tcam.Compiled
	if err == nil {
		image = tcam.NewCompiled(sys.Rules, 0)
	}
	c.fill(e, g, canon, sys, image, pod, err)
	if err != nil {
		return Result{}, err
	}
	return Result{Sys: sys, Image: image, PodMemoized: pod}, nil
}

// podStampedBuild synthesizes via representative-pod stamping when the
// fabric shape allows it, falling back to the plain full enumeration
// otherwise. The bool reports whether stamping was used.
func (c *Cache) podStampedBuild(g *topology.Graph, endpoints []topology.NodeID, maxBounces int) (*core.System, bool, error) {
	d, ok := fingerprint.Decompose(g)
	// Stamping needs >= 3 uniform pods to beat full enumeration (with 2
	// pods the representative set IS the full set) and a pod-symmetric
	// endpoint roster.
	if !ok || !d.Uniform || len(d.Pods) < 3 || !endpointsPodUniform(d, endpoints) {
		set := elp.KBounce(g, endpoints, maxBounces, nil)
		sys, err := core.ClosSynthesize(g, set.Paths(), maxBounces)
		return sys, false, err
	}
	sys, err := stampClosSystem(g, d, endpoints, maxBounces)
	if err != nil {
		return nil, false, err
	}
	c.count(&c.podStamped, "pod_stamped")
	return sys, true, nil
}

// endpointsPodUniform reports whether every endpoint is a pod member and
// every pod carries the same multiset of member positions — the license
// to map pod 0's endpoint set onto pod p's by position.
func endpointsPodUniform(d *fingerprint.PodDecomposition, endpoints []topology.NodeID) bool {
	if len(endpoints) == 0 {
		return false
	}
	per := make([][]int, len(d.Pods))
	for _, ep := range endpoints {
		pi := d.PodOf(ep)
		if pi < 0 {
			return false
		}
		per[pi] = append(per[pi], d.MemberPos(ep))
	}
	for _, ps := range per {
		sort.Ints(ps)
	}
	for i := 1; i < len(per); i++ {
		if len(per[i]) != len(per[0]) {
			return false
		}
		for j := range per[i] {
			if per[i][j] != per[0][j] {
				return false
			}
		}
	}
	return len(per[0]) > 0
}

// stampClosSystem runs the representative enumeration + replay and stamps
// the full system out of it.
func stampClosSystem(g *topology.Graph, d *fingerprint.PodDecomposition,
	endpoints []topology.NodeID, maxBounces int) (*core.System, error) {

	nPods := len(d.Pods)

	// Representative roster: the endpoints of pods 0 and 1, in original
	// roster order. Per-pair enumeration in elp.KBounce is independent of
	// the rest of the roster, so the representative buckets equal the
	// corresponding buckets of the full enumeration exactly.
	var rep []topology.NodeID
	for _, ep := range endpoints {
		if pi := d.PodOf(ep); pi == 0 || pi == 1 {
			rep = append(rep, ep)
		}
	}
	repSet := elp.KBounce(g, rep, maxBounces, nil)

	// Bucket the representative paths by endpoint pods. (1,0) and (1,1)
	// are automorphic images of (0,1) and (0,0); dropping them loses
	// nothing — the stamping loop regenerates their content.
	var b00, b01 []routing.Path
	n00, n01 := 0, 0
	for _, p := range repSet.Paths() {
		sp, dp := d.PodOf(p[0]), d.PodOf(p[len(p)-1])
		switch {
		case sp == 0 && dp == 0:
			b00 = append(b00, p)
			n00 += len(p)
		case sp == 0 && dp == 1:
			b01 = append(b01, p)
			n01 += len(p)
		}
	}

	// Rules are emitted over the full graph directly — ClosRules is local
	// and cheap — and replayed over the representative buckets only.
	// Losslessness of every stamped image follows from the rules'
	// invariance under the pod automorphisms (see file comment).
	rules := core.ClosRules(g, maxBounces, 1)
	frag, violations := core.BuildRuleGraph(rules, append(append([]routing.Path{}, b00...), b01...), 1)
	if len(violations) > 0 {
		return nil, fmt.Errorf("core: clos rules leave %d ELP paths lossy (representative pod pair); does the ELP exceed %d bounces?",
			len(violations), maxBounces)
	}
	fragNodes := frag.Nodes()
	fragEdges := frag.Edges()

	// Stamp the ELP into one arena and the runtime graph by translating
	// the fragment under every σ_{p,q}. Intra-pod content is stamped once
	// per pod (on p's first partner) to keep the path list duplicate-free.
	arena := make([]topology.NodeID, 0, nPods*n00+nPods*(nPods-1)*n01)
	stamped := make([]routing.Path, 0, nPods*len(b00)+nPods*(nPods-1)*len(b01))
	stampPaths := func(nm []topology.NodeID, src []routing.Path) error {
		for _, p := range src {
			start := len(arena)
			for _, n := range p {
				m := nm[n]
				if m == topology.InvalidNode {
					return fmt.Errorf("synthcache: path node %d not covered by pod translation", n)
				}
				arena = append(arena, m)
			}
			stamped = append(stamped, routing.Path(arena[start:len(arena):len(arena)]))
		}
		return nil
	}

	runtime := core.NewTaggedGraph(g)
	portMap := make(map[topology.PortID]topology.PortID, len(fragNodes))
	for p := 0; p < nPods; p++ {
		firstPartner := 0
		if p == 0 {
			firstPartner = 1
		}
		for q := 0; q < nPods; q++ {
			if q == p {
				continue
			}
			nm := d.Translate(fingerprint.PodPerm(nPods, p, q))
			if q == firstPartner {
				if err := stampPaths(nm, b00); err != nil {
					return nil, err
				}
			}
			if err := stampPaths(nm, b01); err != nil {
				return nil, err
			}

			// Fragment image under σ_{p,q}. A fragment node is an ingress
			// port: the lowest-numbered port on the hop facing its
			// predecessor (Port.Peer). Its image is the lowest-numbered
			// port on σ(hop) facing σ(predecessor) — exactly what replay
			// of the stamped path would intern.
			clear(portMap)
			tp := func(pid topology.PortID) topology.PortID {
				if v, ok := portMap[pid]; ok {
					return v
				}
				pt := g.Port(pid)
				v := g.PortOn(nm[pt.Node], g.PortToPeer(nm[pt.Node], nm[pt.Peer]))
				portMap[pid] = v
				return v
			}
			for _, n := range fragNodes {
				runtime.AddNode(core.TagNode{Port: tp(n.Port), Tag: n.Tag})
			}
			for _, ed := range fragEdges {
				runtime.AddEdge(
					core.TagNode{Port: tp(ed.From.Port), Tag: ed.From.Tag},
					core.TagNode{Port: tp(ed.To.Port), Tag: ed.To.Tag},
				)
			}
		}
	}

	if err := runtime.Verify(); err != nil {
		return nil, fmt.Errorf("clos runtime graph (pod-stamped): %w", err)
	}
	return &core.System{Graph: g, ELP: stamped, Rules: rules, Runtime: runtime}, nil
}
