// Package synthcache memoizes rule synthesis and TCAM compilation behind
// content-addressed fingerprints (internal/fingerprint).
//
// The cache exploits the paper's §6 observation that Tagger's rules are a
// pure function of (topology, ELP, synthesis options): two requests with
// equal fingerprints must produce identical rule sets, so the second can
// be served from the first's result. Three tiers of reuse:
//
//   - shared hit: the request comes from the same graph instance the
//     entry was built on (a long-lived controller resynthesizing, a sweep
//     rerunning seeds over one topology). The cached System and TCAM
//     image are returned directly — synthesis cost drops to hashing.
//   - translated hit: a different graph instance with an equal
//     fingerprint (an isomorphic rebuild). Rules and TCAM entries are
//     translated through the canonical node order, the runtime graph is
//     re-replayed over the caller's paths and re-verified. Algorithms 1+2
//     and compression are skipped.
//   - pod memoization (ClosKBounce): for uniform multi-pod fabrics the
//     KBounce ELP is enumerated for a representative pod pair only and
//     stamped onto the remaining pods by pod-permutation automorphisms.
//
// Concurrency: the cache is safe for concurrent use and single-flight —
// concurrent misses on one fingerprint synthesize exactly once, the rest
// wait. Eviction only unlinks an entry from the index; in-flight waiters
// keep their pointer, so a partially-built image is never observable.
// Cached Systems are shared read-only; the ruleset's lazy rule-ID index
// is pre-warmed at fill time so shared readers never race on it.
package synthcache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/routing"
	"repro/internal/tcam"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Stats is a point-in-time view of the cache's effectiveness counters.
type Stats struct {
	Hits             int64 // served from cache (shared + translated)
	Misses           int64 // built from scratch (pod-memoized builds included)
	Evictions        int64 // entries dropped by the LRU bound
	SingleFlightWait int64 // lookups that waited on a concurrent build
	Translated       int64 // hits served by canonical-order translation
	PodStamped       int64 // builds that used pod-isomorphism stamping
}

// HitRatio returns hits / (hits + misses), 0 when idle.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Result is a cache-served synthesis.
type Result struct {
	Sys *core.System
	// Image is the compiled TCAM pipeline over Sys.Rules.
	Image *tcam.Compiled
	// Hit reports the result came from the cache; Translated that it was
	// rebuilt by canonical-order translation rather than shared directly.
	Hit        bool
	Translated bool
	// PodMemoized reports the build used representative-pod stamping
	// (ClosKBounce only).
	PodMemoized bool
}

// entry is one cache slot. The builder goroutine fills every field below
// ready and then closes it; waiters read them only after <-ready. An
// evicted entry stays valid for the waiters that already hold it.
type entry struct {
	key   fingerprint.Fingerprint
	ready chan struct{}

	err   error
	g     *topology.Graph
	canon *fingerprint.Canon
	sys   *core.System
	image *tcam.Compiled
	pod   bool
}

type canonAt struct {
	gen uint64
	c   *fingerprint.Canon
}

// pathsAt identifies a path list by slice identity under a specific
// canonical labeling. Holding the element pointer in the memo keeps the
// backing array alive, so an address can never be reused by a different
// list while its entry exists; the remaining assumption — path lists are
// never mutated in place — is the same immutability contract elp.Set
// already provides.
type pathsAt struct {
	canon *fingerprint.Canon
	head  *routing.Path
	n     int
}

// Cache is a concurrency-safe, single-flight, LRU-bounded synthesis
// cache. The zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[fingerprint.Fingerprint]*list.Element
	lru      *list.List // of *entry; front = most recently used
	canons   map[*topology.Graph]canonAt
	pathSums map[pathsAt]fingerprint.Fingerprint

	tel *telemetry.Registry

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	sfWaits    atomic.Int64
	translated atomic.Int64
	podStamped atomic.Int64
}

// DefaultCapacity bounds caches constructed with New(0).
const DefaultCapacity = 64

// New returns a cache holding at most capacity entries (0 or negative:
// DefaultCapacity). Metrics go to telemetry.Default unless SetTelemetry
// points them elsewhere.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[fingerprint.Fingerprint]*list.Element),
		lru:      list.New(),
		canons:   make(map[*topology.Graph]canonAt),
		pathSums: make(map[pathsAt]fingerprint.Fingerprint),
		tel:      telemetry.Default,
	}
}

// SetTelemetry redirects the cache's counters to reg (tests, or a
// per-sweep registry). Call before first use.
func (c *Cache) SetTelemetry(reg *telemetry.Registry) {
	c.mu.Lock()
	c.tel = reg
	c.mu.Unlock()
}

func (c *Cache) registry() *telemetry.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tel
}

func (c *Cache) count(counter *atomic.Int64, name string) {
	counter.Add(1)
	c.registry().Counter("synthcache." + name).Inc()
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Evictions:        c.evictions.Load(),
		SingleFlightWait: c.sfWaits.Load(),
		Translated:       c.translated.Load(),
		PodStamped:       c.podStamped.Load(),
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// canonOf returns the canonical form of g, memoized per (graph, wiring
// generation) so repeated requests against a live graph pay hashing cost
// only once per topology change.
func (c *Cache) canonOf(g *topology.Graph) *fingerprint.Canon {
	gen := g.Gen()
	c.mu.Lock()
	if m, ok := c.canons[g]; ok && m.gen == gen {
		c.mu.Unlock()
		return m.c
	}
	c.mu.Unlock()
	cn := fingerprint.Canonicalize(g)
	c.mu.Lock()
	if len(c.canons) > 4*c.capacity+16 {
		c.canons = make(map[*topology.Graph]canonAt)
	}
	c.canons[g] = canonAt{gen: gen, c: cn}
	c.mu.Unlock()
	return cn
}

// pathsSumOf returns fingerprint.PathsSum memoized by slice identity:
// a warm hit on a long-lived path list (a sweep rerunning one topology,
// a controller resynthesizing the same ELP) costs a map lookup instead
// of re-hashing tens of thousands of paths.
func (c *Cache) pathsSumOf(canon *fingerprint.Canon, paths []routing.Path) fingerprint.Fingerprint {
	if len(paths) == 0 {
		return fingerprint.PathsSum(canon, paths)
	}
	k := pathsAt{canon: canon, head: &paths[0], n: len(paths)}
	c.mu.Lock()
	if sum, ok := c.pathSums[k]; ok {
		c.mu.Unlock()
		return sum
	}
	c.mu.Unlock()
	sum := fingerprint.PathsSum(canon, paths)
	c.mu.Lock()
	if len(c.pathSums) > 4*c.capacity+16 {
		c.pathSums = make(map[pathsAt]fingerprint.Fingerprint)
	}
	c.pathSums[k] = sum
	c.mu.Unlock()
	return sum
}

// acquire returns the entry for key, creating (and becoming the builder
// of) a fresh one on a miss. The LRU bound is enforced here; eviction
// removes entries from the index only, never invalidating pointers that
// in-flight waiters hold.
func (c *Cache) acquire(key fingerprint.Fingerprint) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*entry), false
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(e)
	for len(c.entries) > c.capacity {
		back := c.lru.Back()
		be := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, be.key)
		c.evictions.Add(1)
		c.tel.Counter("synthcache.evictions").Inc()
	}
	return e, true
}

// drop unlinks e (a failed or superseded build) from the index.
func (c *Cache) drop(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok && el.Value.(*entry) == e {
		c.lru.Remove(el)
		delete(c.entries, e.key)
	}
}

// wait blocks until e is fully built, counting the single-flight wait if
// the build was still in flight.
func (c *Cache) wait(e *entry) {
	select {
	case <-e.ready:
	default:
		c.count(&c.sfWaits, "singleflight_waits")
		<-e.ready
	}
}

// fill completes a build: pre-warms the shared ruleset's lazy ID index
// (shared readers must never trigger the lazy build concurrently),
// publishes the fields and wakes waiters. A build error unlinks the
// entry so the next request retries.
func (c *Cache) fill(e *entry, g *topology.Graph, canon *fingerprint.Canon,
	sys *core.System, image *tcam.Compiled, pod bool, err error) {
	if err == nil && sys != nil {
		sys.Rules.RuleByID(0)
	}
	e.g, e.canon, e.sys, e.image, e.pod, e.err = g, canon, sys, image, pod, err
	if err != nil {
		c.drop(e)
	}
	close(e.ready)
}

// Synthesize is a memoized core.Synthesize + tcam.NewCompiled. The cache
// key covers the graph fingerprint, the path sequence and the
// output-affecting options; opts.Workers is excluded (par=1 and par=N
// provably emit identical systems — see internal/check).
func (c *Cache) Synthesize(g *topology.Graph, paths []routing.Path, opts core.Options) (Result, error) {
	canon := c.canonOf(g)
	skip := 0
	if opts.SkipMerge {
		skip = 1
	}
	key := fingerprint.Key("generic", []int{skip, opts.StartTag},
		canon.FP, c.pathsSumOf(canon, paths))
	return c.cachedSynthesis(g, canon, key, paths, opts.Workers, func() (*core.System, error) {
		return core.Synthesize(g, paths, opts)
	})
}

// SynthesizeClos is a memoized core.ClosSynthesize + tcam.NewCompiled
// for an explicit ELP path list.
func (c *Cache) SynthesizeClos(g *topology.Graph, paths []routing.Path, maxBounces int) (Result, error) {
	canon := c.canonOf(g)
	key := fingerprint.Key("clos", []int{maxBounces},
		canon.FP, c.pathsSumOf(canon, paths))
	return c.cachedSynthesis(g, canon, key, paths, 0, func() (*core.System, error) {
		return core.ClosSynthesize(g, paths, maxBounces)
	})
}

// cachedSynthesis is the shared lookup/build/translate flow for requests
// that carry their path list explicitly.
func (c *Cache) cachedSynthesis(g *topology.Graph, canon *fingerprint.Canon,
	key fingerprint.Fingerprint, paths []routing.Path, par int,
	build func() (*core.System, error)) (Result, error) {

	e, builder := c.acquire(key)
	if builder {
		c.count(&c.misses, "misses")
		sys, err := build()
		var image *tcam.Compiled
		if err == nil {
			image = tcam.NewCompiled(sys.Rules, par)
		}
		c.fill(e, g, canon, sys, image, false, err)
		if err != nil {
			return Result{}, err
		}
		return Result{Sys: sys, Image: image}, nil
	}

	c.wait(e)
	if e.err != nil {
		// Deterministic inputs fail deterministically; surface the same
		// error a fresh build would have produced.
		return Result{}, e.err
	}
	if e.g == g {
		c.count(&c.hits, "hits")
		return Result{Sys: e.sys, Image: e.image, Hit: true}, nil
	}
	sys, image, err := translateEntry(e, g, canon, paths)
	if err == nil {
		c.count(&c.hits, "hits")
		c.count(&c.translated, "translated")
		return Result{Sys: sys, Image: image, Hit: true, Translated: true}, nil
	}
	// Translation declined (producer carried repairs/conflicts, or the
	// replay disagreed): fall back to an uncached from-scratch build.
	c.count(&c.misses, "misses")
	sys, err = build()
	if err != nil {
		return Result{}, err
	}
	return Result{Sys: sys, Image: tcam.NewCompiled(sys.Rules, par)}, nil
}

var errUntranslatable = fmt.Errorf("synthcache: entry not translatable")

// FullSynth adapts the cache to core.Resynth's full-synthesis hook
// (core.NewResynthFull): churn controllers route their initial build and
// every full-rebuild fallback through the cache.
func FullSynth(c *Cache) func(*topology.Graph, []routing.Path, core.Options) (*core.System, error) {
	return func(g *topology.Graph, paths []routing.Path, opts core.Options) (*core.System, error) {
		r, err := c.Synthesize(g, paths, opts)
		if err != nil {
			return nil, err
		}
		return r.Sys, nil
	}
}
