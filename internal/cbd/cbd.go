// Package cbd builds and analyzes Cyclic Buffer Dependency graphs.
//
// A buffer dependency exists from queue X to queue Y when packets held in
// X must be forwarded into Y: if Y fills and pauses its upstream, X cannot
// drain. A cycle of such dependencies (a CBD) is the necessary condition
// for PFC deadlock (§2 of the Tagger paper); Tagger works by making the
// per-priority dependency graphs provably acyclic.
package cbd

import (
	"fmt"
	"strings"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Queue identifies one lossless ingress queue: a port on its owning node
// plus the PFC priority.
type Queue struct {
	Port     topology.PortID
	Priority int
}

// Graph is a buffer-dependency graph.
type Graph struct {
	g   *topology.Graph
	adj map[Queue][]Queue
	set map[[2]Queue]struct{}
}

// New returns an empty dependency graph over topology g.
func New(g *topology.Graph) *Graph {
	return &Graph{
		g:   g,
		adj: make(map[Queue][]Queue),
		set: make(map[[2]Queue]struct{}),
	}
}

// AddDependency inserts the edge from -> to (idempotent).
func (d *Graph) AddDependency(from, to Queue) {
	k := [2]Queue{from, to}
	if _, ok := d.set[k]; ok {
		return
	}
	d.set[k] = struct{}{}
	d.adj[from] = append(d.adj[from], to)
}

// NumEdges returns the number of distinct dependencies.
func (d *Graph) NumEdges() int { return len(d.set) }

// Classifier assigns the lossless priority a packet occupies on each hop
// of a path; returning a negative priority marks the hop lossy (no
// dependency contributed from that hop on). Hop i refers to the arrival
// at path node i+1.
type Classifier func(p routing.Path) []int

// SinglePriority treats every hop of every path as priority prio — the
// world without Tagger, where all RDMA traffic shares one lossless class.
func SinglePriority(prio int) Classifier {
	return func(p routing.Path) []int {
		out := make([]int, len(p)-1)
		for i := range out {
			out[i] = prio
		}
		return out
	}
}

// FromPaths builds the dependency graph induced by traffic on the given
// paths under the classifier: for consecutive hops, the ingress queue at
// node i depends on the ingress queue at node i+1 (the packet held at i
// must enter i+1). Hops at or beyond a lossy classification contribute no
// dependencies, and dependencies into plain hosts are skipped (hosts sink
// traffic; nothing behind them can be paused into a cycle).
func FromPaths(g *topology.Graph, paths []routing.Path, classify Classifier) *Graph {
	d := New(g)
	for _, p := range paths {
		if len(p) < 3 {
			continue
		}
		prios := classify(p)
		for i := 1; i+1 < len(p); i++ {
			if g.Node(p[i]).Kind == topology.KindHost {
				break // hosts do not forward; nothing downstream
			}
			if prios[i-1] < 0 || prios[i] < 0 {
				continue
			}
			if g.Node(p[i+1]).Kind == topology.KindHost {
				continue // delivery hop: the host NIC is not a paused queue
			}
			from := Queue{Port: ingressPort(g, p[i-1], p[i]), Priority: prios[i-1]}
			to := Queue{Port: ingressPort(g, p[i], p[i+1]), Priority: prios[i]}
			d.AddDependency(from, to)
		}
	}
	return d
}

func ingressPort(g *topology.Graph, from, to topology.NodeID) topology.PortID {
	num := g.PortToPeer(to, from)
	if num < 0 {
		panic(fmt.Sprintf("cbd: %s and %s not adjacent", g.Node(from).Name, g.Node(to).Name))
	}
	return g.PortOn(to, num)
}

// FindCycle returns one dependency cycle as a queue sequence (the edge
// from the last element back to the first closes it), or nil if the graph
// is acyclic — i.e. deadlock-free for the modeled traffic.
func (d *Graph) FindCycle() []Queue {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Queue]int, len(d.adj))
	parent := make(map[Queue]Queue)
	type frame struct {
		node Queue
		next int
	}
	for start := range d.adj {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(d.adj[f.node]) {
				v := d.adj[f.node][f.next]
				f.next++
				switch color[v] {
				case white:
					color[v] = gray
					parent[v] = f.node
					stack = append(stack, frame{node: v})
				case gray:
					cyc := []Queue{v}
					for cur := f.node; cur != v; cur = parent[cur] {
						cyc = append(cyc, cur)
					}
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// HasCBD reports whether any cyclic buffer dependency exists.
func (d *Graph) HasCBD() bool { return d.FindCycle() != nil }

// CycleString renders a cycle like "L1<-S1 ... " using switch names, for
// test failure messages and the CLI.
func (d *Graph) CycleString(cyc []Queue) string {
	if len(cyc) == 0 {
		return ""
	}
	parts := make([]string, 0, len(cyc))
	for _, q := range cyc {
		p := d.g.Port(q.Port)
		parts = append(parts, fmt.Sprintf("%s_%d@p%d", d.g.Node(p.Node).Name, p.Num, q.Priority))
	}
	return strings.Join(parts, " -> ")
}
