package cbd

import (
	"testing"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestFigure1CBD reproduces the paper's Figure 1: three switches in a
// triangle, three flows each crossing two switches, cyclic buffer
// dependency A -> B -> C -> A with no routing loop.
func TestFigure1CBD(t *testing.T) {
	g := topology.New()
	a := g.AddNode("A", topology.KindSwitch, -1)
	b := g.AddNode("B", topology.KindSwitch, -1)
	c := g.AddNode("C", topology.KindSwitch, -1)
	// Hosts sourcing/sinking each flow.
	ha := g.AddNode("Ha", topology.KindHost, 0)
	hb := g.AddNode("Hb", topology.KindHost, 0)
	hc := g.AddNode("Hc", topology.KindHost, 0)
	g.Connect(a, b)
	g.Connect(b, c)
	g.Connect(c, a)
	g.Connect(ha, a)
	g.Connect(hb, b)
	g.Connect(hc, c)

	// Each flow crosses two inter-switch links so that consecutive flows
	// share ingress queues: flow 1 occupies (B, from A) and waits on
	// (C, from B); flow 2 occupies (C, from B) and waits on (A, from C);
	// flow 3 occupies (A, from C) and waits on (B, from A) — the cycle of
	// the figure.
	paths := []routing.Path{
		{ha, a, b, c, hc},
		{hb, b, c, a, ha},
		{hc, c, a, b, hb},
	}
	d := FromPaths(g, paths, SinglePriority(1))
	cyc := d.FindCycle()
	if cyc == nil {
		t.Fatal("Figure 1 CBD not detected")
	}
	if len(cyc) != 3 {
		t.Errorf("cycle length = %d, want 3 (%s)", len(cyc), d.CycleString(cyc))
	}
	if d.CycleString(cyc) == "" {
		t.Error("empty cycle string")
	}
	if !d.HasCBD() {
		t.Error("HasCBD = false")
	}
}

// TestFigure3OneBounceCBD reproduces Figure 3: the two 1-bounce flows on
// the testbed Clos create the CBD L1 -> S1 -> L3 -> S2 -> L1 despite both
// paths being loop-free.
func TestFigure3OneBounceCBD(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	paths := []routing.Path{paper.Fig3GreenPath(c), paper.Fig3BluePath(c)}
	for _, p := range paths {
		if !p.LoopFree() {
			t.Fatalf("path %s is not loop-free; the point of Fig 3 is CBD without loops", p.String(g))
		}
	}
	d := FromPaths(g, paths, SinglePriority(1))
	cyc := d.FindCycle()
	if cyc == nil {
		t.Fatal("Figure 3 CBD not detected")
	}
	if len(cyc) != 4 {
		t.Errorf("cycle length = %d, want 4: %s", len(cyc), d.CycleString(cyc))
	}
}

// TestFigure3TaggerBreaksCBD: under the Clos k=1 tagging rules the same
// two paths produce an acyclic dependency graph — the bounce moves the
// post-bounce segment into priority 2.
func TestFigure3TaggerBreaksCBD(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	rs := core.ClosRules(g, 1, 1)
	paths := []routing.Path{paper.Fig3GreenPath(c), paper.Fig3BluePath(c)}
	d := FromPaths(g, paths, func(p routing.Path) []int { return rs.Priorities(p, 1) })
	if cyc := d.FindCycle(); cyc != nil {
		t.Fatalf("CBD under Tagger: %s", d.CycleString(cyc))
	}
}

// TestZeroBounceNoCBD: pure up-down traffic has no CBD even in a single
// priority.
func TestZeroBounceNoCBD(t *testing.T) {
	c := paper.Testbed()
	s := elp.UpDownAll(c.Graph, c.ToRs)
	d := FromPaths(c.Graph, s.Paths(), SinglePriority(1))
	if d.HasCBD() {
		t.Fatal("up-down traffic should have no CBD")
	}
	if d.NumEdges() == 0 {
		t.Fatal("expected some dependencies")
	}
}

// TestAllOneBouncePathsWithoutTaggerHaveCBD: the full 1-bounce ELP in one
// priority contains CBDs; under Clos tagging it does not. This is the
// paper's core claim quantified over the whole path set rather than one
// example.
func TestAllOneBouncePathsTaggerVsNot(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	s := elp.KBounce(g, c.ToRs, 1, nil)

	plain := FromPaths(g, s.Paths(), SinglePriority(1))
	if !plain.HasCBD() {
		t.Fatal("1-bounce ELP without Tagger should contain a CBD")
	}

	rs := core.ClosRules(g, 1, 1)
	tagged := FromPaths(g, s.Paths(), func(p routing.Path) []int { return rs.Priorities(p, 1) })
	if cyc := tagged.FindCycle(); cyc != nil {
		t.Fatalf("CBD under Tagger: %s", tagged.CycleString(cyc))
	}
}

// TestRoutingLoopLossyNoDependency: a looping path classified lossy
// contributes no dependencies at the lossy hops, so no CBD forms even
// though the trajectory cycles (the Fig 11 safety argument).
func TestRoutingLoopLossyNoDependency(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	// A trajectory that ping-pongs T1 <-> L1 (routing loop). Not loop-free
	// as a path, but FromPaths models trajectories, not ELP.
	loop := routing.Path{n("T2"), n("L1"), n("T1"), n("L1"), n("T1"), n("L1"), n("T1")}
	rs := core.ClosRules(g, 1, 1)
	d := FromPaths(g, []routing.Path{loop}, func(p routing.Path) []int { return rs.Priorities(p, 1) })
	if d.HasCBD() {
		t.Fatal("lossy loop produced a CBD")
	}
	// Without Tagger the same trajectory in one lossless priority IS a CBD.
	plain := FromPaths(g, []routing.Path{loop}, SinglePriority(1))
	if !plain.HasCBD() {
		t.Fatal("loop without Tagger should be a CBD")
	}
}

func TestShortPathsContributeNothing(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	d := FromPaths(g, []routing.Path{{c.ToRs[0], c.Leaves[0]}}, SinglePriority(1))
	if d.NumEdges() != 0 {
		t.Error("2-node path should add no dependencies")
	}
}

func TestAddDependencyIdempotent(t *testing.T) {
	c := paper.Testbed()
	d := New(c.Graph)
	q1 := Queue{Port: c.Graph.PortOn(c.Leaves[0], 0), Priority: 1}
	q2 := Queue{Port: c.Graph.PortOn(c.Leaves[1], 0), Priority: 1}
	d.AddDependency(q1, q2)
	d.AddDependency(q1, q2)
	if d.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", d.NumEdges())
	}
	if d.HasCBD() {
		t.Error("no cycle expected")
	}
	d.AddDependency(q2, q1)
	if !d.HasCBD() {
		t.Error("2-cycle not detected")
	}
}
