package deploy

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/elp"
	"repro/internal/paper"
	"repro/internal/topology"
)

func testRules(t *testing.T) (*topology.Clos, *core.Ruleset) {
	t.Helper()
	c := paper.Testbed()
	return c, core.ClosRules(c.Graph, 1, 1)
}

func TestExportImportRoundTrip(t *testing.T) {
	c, rs := testRules(t)
	b := Export(rs)
	if b.MaxTag != 2 {
		t.Errorf("MaxTag = %d", b.MaxTag)
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := Import(c.Graph, b2)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identical behavior: every rule present, same classifications
	// on a full ELP replay.
	if rs2.Len() != rs.Len() || rs2.MaxTag() != rs.MaxTag() {
		t.Fatalf("len %d vs %d, maxtag %d vs %d", rs2.Len(), rs.Len(), rs2.MaxTag(), rs.MaxTag())
	}
	set := elp.KBounce(c.Graph, c.ToRs, 1, nil)
	for _, p := range set.Paths() {
		a := rs.Replay(p, 1)
		b := rs2.Replay(p, 1)
		for i := range a.Tags {
			if a.Tags[i] != b.Tags[i] {
				t.Fatalf("replay differs on %s", p.String(c.Graph))
			}
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	_, rs := testRules(t)
	a, err := Export(rs).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Export(rs).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("bundle serialization is not deterministic")
	}
}

func TestImportUnknownSwitch(t *testing.T) {
	c, rs := testRules(t)
	b := Export(rs)
	b.Switches["NOPE"] = SwitchBundle{Rules: []RuleJSON{{Tag: 1, In: 0, Out: 1, NewTag: 1}}}
	if _, err := Import(c.Graph, b); err == nil {
		t.Fatal("unknown switch accepted")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestExpansionLeavesOldSwitchesUntouched is the §6 claim: "If a
// FatTree-like topology is expanded by adding new pods under existing
// spines, none of the older switches need any rule changes" — modulo the
// spines themselves, which gain keep-entries for their new ports (the
// paper's deployment covers those with port-wildcard patterns, so no
// entry rewrite is needed there either; we assert the strict version for
// non-spine switches and additions-only for spines).
func TestExpansionLeavesOldSwitchesUntouched(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	before := Export(core.ClosRules(g, 1, 1))

	oldSwitchNames := map[string]bool{}
	for _, sw := range g.Switches() {
		oldSwitchNames[g.Node(sw).Name] = true
	}
	spineNames := map[string]bool{}
	for _, s := range c.Spines {
		spineNames[g.Node(s).Name] = true
	}

	if err := c.Expand(1); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	after := Export(core.ClosRules(g, 1, 1))

	diffs := Diff(before, after)
	for name, d := range diffs {
		switch {
		case !oldSwitchNames[name]:
			// New switch: additions only, naturally.
			if len(d.Removed) != 0 {
				t.Errorf("new switch %s has removals", name)
			}
		case spineNames[name]:
			if len(d.Removed) != 0 {
				t.Errorf("spine %s lost rules on expansion", name)
			}
			// Every added spine rule must involve a new port.
			sw := g.MustLookup(name)
			for _, r := range d.Added {
				inPeer := g.Port(g.PortOn(sw, r.In)).Peer
				outPeer := g.Port(g.PortOn(sw, r.Out)).Peer
				if oldSwitchNames[g.Node(inPeer).Name] && oldSwitchNames[g.Node(outPeer).Name] {
					t.Errorf("spine %s added rule between OLD ports: %+v", name, r)
				}
			}
		default:
			t.Errorf("old non-spine switch %s needs rule changes: +%d -%d",
				name, len(d.Added), len(d.Removed))
		}
	}

	// And the expanded fabric still verifies with the same queue count.
	set := elp.KBounce(g, c.ToRs, 1, nil)
	sys, err := core.ClosSynthesize(g, set.Paths(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NumLosslessQueues(); got != 2 {
		t.Errorf("expanded fabric queues = %d", got)
	}
}

// TestFailureNeedsNoRuleChanges is the deeper §3/§6 point: Tagger's rules
// are static — link failures change routing, not rules.
func TestFailureNeedsNoRuleChanges(t *testing.T) {
	c := paper.Testbed()
	g := c.Graph
	before := Export(core.ClosRules(g, 1, 1))
	g.FailLink(g.MustLookup("L1"), g.MustLookup("T1"))
	after := Export(core.ClosRules(g, 1, 1))
	if diffs := Diff(before, after); len(diffs) != 0 {
		t.Fatalf("link failure changed rules: %v", diffs)
	}
}

func TestDiffSymmetry(t *testing.T) {
	_, rs := testRules(t)
	b := Export(rs)
	if diffs := Diff(b, b); len(diffs) != 0 {
		t.Fatal("self-diff not empty")
	}
	empty := &Bundle{MaxTag: b.MaxTag, Switches: map[string]SwitchBundle{}}
	add := Diff(empty, b)
	rem := Diff(b, empty)
	for n, d := range add {
		if len(d.Removed) != 0 || len(rem[n].Added) != 0 {
			t.Fatal("diff directions crossed")
		}
		if len(d.Added) != len(rem[n].Removed) {
			t.Fatal("diff asymmetric")
		}
	}
}
