package deploy

import (
	"fmt"
	"sort"
	"strings"
)

// Group is a set of switches whose per-switch bundles are rule-identical
// (order-insensitively), so a fan-out push can treat them as one batch:
// the same serialized bundle body, sent to every member.
type Group struct {
	// Switches holds the member names, sorted.
	Switches []string
	// Rules is the shared rule count (0 for an empty bundle).
	Rules int
}

// GroupIdentical partitions the given switches by bundle content. On the
// symmetric fabrics Tagger targets, most switches of a layer share one
// rule list (Clos bounce rules are identical across same-shape switches),
// which collapses a thousand-switch push into a handful of distinct
// bundle bodies. Groups come back ordered by their first (smallest)
// member name; membership order inside a group is sorted, so the result
// is deterministic for a fixed bundle.
func GroupIdentical(b *Bundle, switches []string) []Group {
	byKey := make(map[string][]string)
	for _, sw := range switches {
		byKey[ruleKey(b.Switches[sw])] = append(byKey[ruleKey(b.Switches[sw])], sw)
	}
	groups := make([]Group, 0, len(byKey))
	for k, members := range byKey {
		sort.Strings(members)
		groups = append(groups, Group{Switches: members, Rules: strings.Count(k, ";")})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Switches[0] < groups[j].Switches[0] })
	return groups
}

// ruleKey canonicalizes a switch bundle's content: rules sorted by
// (tag, in, out), serialized. Two bundles with equal keys install the
// same forwarding behavior.
func ruleKey(b SwitchBundle) string {
	rs := append([]RuleJSON(nil), b.Rules...)
	sortRules(rs)
	var sb strings.Builder
	sb.Grow(len(rs) * 16)
	for _, r := range rs {
		fmt.Fprintf(&sb, "%d/%d/%d>%d;", r.Tag, r.In, r.Out, r.NewTag)
	}
	return sb.String()
}
