// Package deploy serializes a synthesized Tagger system into the bundle
// an operator (or the SDN controller of §6) pushes to switches, and
// computes the rule diffs topology changes require. The format is plain
// JSON keyed by switch name, stable across runs, so bundles can be
// version-controlled and diffed like any other network config.
package deploy

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/topology"
)

// RuleJSON is one match-action entry in the bundle.
type RuleJSON struct {
	Tag    int `json:"tag"`
	In     int `json:"in"`
	Out    int `json:"out"`
	NewTag int `json:"newTag"`
}

// SwitchBundle is everything one switch needs.
type SwitchBundle struct {
	Rules []RuleJSON `json:"rules"`
}

// Bundle is the fabric-wide deployment artifact.
type Bundle struct {
	// MaxTag is the largest lossless tag; switches map tags 1..MaxTag to
	// lossless priorities and everything else to the lossy queue.
	MaxTag int `json:"maxTag"`
	// Switches maps switch name to its rules.
	Switches map[string]SwitchBundle `json:"switches"`
}

// Export converts a ruleset into a bundle.
func Export(rs *core.Ruleset) *Bundle {
	g := rs.Graph()
	b := &Bundle{MaxTag: rs.MaxTag(), Switches: make(map[string]SwitchBundle)}
	for _, r := range rs.Rules() {
		name := g.Node(r.Switch).Name
		sb := b.Switches[name]
		sb.Rules = append(sb.Rules, RuleJSON{Tag: r.Tag, In: r.In, Out: r.Out, NewTag: r.NewTag})
		b.Switches[name] = sb
	}
	return b
}

// Marshal renders the bundle as deterministic, indented JSON.
func (b *Bundle) Marshal() ([]byte, error) {
	for _, sb := range b.Switches {
		sort.Slice(sb.Rules, func(i, j int) bool {
			a, c := sb.Rules[i], sb.Rules[j]
			if a.Tag != c.Tag {
				return a.Tag < c.Tag
			}
			if a.In != c.In {
				return a.In < c.In
			}
			return a.Out < c.Out
		})
	}
	return json.MarshalIndent(b, "", "  ")
}

// Unmarshal parses a bundle.
func Unmarshal(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	return &b, nil
}

// Import reconstructs a ruleset over the given topology. Switch names
// must resolve; unknown names are an error (the bundle belongs to a
// different fabric).
func Import(g *topology.Graph, b *Bundle) (*core.Ruleset, error) {
	rs := core.NewRuleset(g, b.MaxTag)
	for name, sb := range b.Switches {
		id, ok := g.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("deploy: bundle references unknown switch %q", name)
		}
		for _, r := range sb.Rules {
			rs.Add(core.Rule{Switch: id, Tag: r.Tag, In: r.In, Out: r.Out, NewTag: r.NewTag})
		}
	}
	return rs, nil
}

// ModifiedRule records a rewrite change for an existing match: the entry
// carries the new NewTag, OldNewTag what it replaced.
type ModifiedRule struct {
	RuleJSON
	OldNewTag int
}

// SwitchDiff lists the rule changes one switch needs, classified by
// match key (tag, in, out): entries whose match is new are Added, gone
// matches are Removed, and matches whose rewrite changed are Modified.
// It doubles as the wire-level patch a delta-capable agent applies to a
// switch's active table (see ApplyDelta).
type SwitchDiff struct {
	Added    []RuleJSON
	Removed  []RuleJSON
	Modified []ModifiedRule
}

// Empty reports whether the switch needs no changes.
func (d SwitchDiff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Modified) == 0
}

// Counts returns the number of added, removed, and modified rules.
func (d SwitchDiff) Counts() (added, removed, modified int) {
	return len(d.Added), len(d.Removed), len(d.Modified)
}

// matchKey identifies a rule by its match fields only.
func matchKey(r RuleJSON) string { return fmt.Sprintf("%d/%d/%d", r.Tag, r.In, r.Out) }

// DeltaFor computes the patch turning one switch's table `from` into
// `to`, in canonical (sorted) order.
func DeltaFor(from, to SwitchBundle) SwitchDiff {
	fromSet := make(map[string]RuleJSON, len(from.Rules))
	for _, r := range from.Rules {
		fromSet[matchKey(r)] = r
	}
	toSet := make(map[string]RuleJSON, len(to.Rules))
	for _, r := range to.Rules {
		toSet[matchKey(r)] = r
	}
	var d SwitchDiff
	for k, r := range toSet {
		prev, ok := fromSet[k]
		switch {
		case !ok:
			d.Added = append(d.Added, r)
		case prev.NewTag != r.NewTag:
			d.Modified = append(d.Modified, ModifiedRule{RuleJSON: r, OldNewTag: prev.NewTag})
		}
	}
	for k, r := range fromSet {
		if _, ok := toSet[k]; !ok {
			d.Removed = append(d.Removed, r)
		}
	}
	sortRules(d.Added)
	sortRules(d.Removed)
	sort.Slice(d.Modified, func(i, j int) bool {
		a, c := d.Modified[i].RuleJSON, d.Modified[j].RuleJSON
		if a.Tag != c.Tag {
			return a.Tag < c.Tag
		}
		if a.In != c.In {
			return a.In < c.In
		}
		return a.Out < c.Out
	})
	return d
}

// ApplyDelta applies a patch to a switch table and returns the result in
// canonical order. Removals match on (tag, in, out) only; adds and
// modifies both install their NewTag, so applying the same delta twice is
// idempotent (the agent-retry property the controller relies on).
func ApplyDelta(from SwitchBundle, d SwitchDiff) SwitchBundle {
	set := make(map[string]RuleJSON, len(from.Rules)+len(d.Added))
	for _, r := range from.Rules {
		set[matchKey(r)] = r
	}
	for _, r := range d.Removed {
		delete(set, matchKey(r))
	}
	for _, r := range d.Added {
		set[matchKey(r)] = r
	}
	for _, m := range d.Modified {
		set[matchKey(m.RuleJSON)] = m.RuleJSON
	}
	out := SwitchBundle{Rules: make([]RuleJSON, 0, len(set))}
	for _, r := range set {
		out.Rules = append(out.Rules, r)
	}
	sortRules(out.Rules)
	return out
}

// Diff computes per-switch changes from old to new bundle. Switches
// absent from a side are treated as having no rules there.
func Diff(oldB, newB *Bundle) map[string]SwitchDiff {
	out := make(map[string]SwitchDiff)
	names := map[string]bool{}
	for n := range oldB.Switches {
		names[n] = true
	}
	for n := range newB.Switches {
		names[n] = true
	}
	for n := range names {
		if d := DeltaFor(oldB.Switches[n], newB.Switches[n]); !d.Empty() {
			out[n] = d
		}
	}
	return out
}

func sortRules(rs []RuleJSON) {
	sort.Slice(rs, func(i, j int) bool {
		a, c := rs[i], rs[j]
		if a.Tag != c.Tag {
			return a.Tag < c.Tag
		}
		if a.In != c.In {
			return a.In < c.In
		}
		return a.Out < c.Out
	})
}
