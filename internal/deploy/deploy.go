// Package deploy serializes a synthesized Tagger system into the bundle
// an operator (or the SDN controller of §6) pushes to switches, and
// computes the rule diffs topology changes require. The format is plain
// JSON keyed by switch name, stable across runs, so bundles can be
// version-controlled and diffed like any other network config.
package deploy

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/topology"
)

// RuleJSON is one match-action entry in the bundle.
type RuleJSON struct {
	Tag    int `json:"tag"`
	In     int `json:"in"`
	Out    int `json:"out"`
	NewTag int `json:"newTag"`
}

// SwitchBundle is everything one switch needs.
type SwitchBundle struct {
	Rules []RuleJSON `json:"rules"`
}

// Bundle is the fabric-wide deployment artifact.
type Bundle struct {
	// MaxTag is the largest lossless tag; switches map tags 1..MaxTag to
	// lossless priorities and everything else to the lossy queue.
	MaxTag int `json:"maxTag"`
	// Switches maps switch name to its rules.
	Switches map[string]SwitchBundle `json:"switches"`
}

// Export converts a ruleset into a bundle.
func Export(rs *core.Ruleset) *Bundle {
	g := rs.Graph()
	b := &Bundle{MaxTag: rs.MaxTag(), Switches: make(map[string]SwitchBundle)}
	for _, r := range rs.Rules() {
		name := g.Node(r.Switch).Name
		sb := b.Switches[name]
		sb.Rules = append(sb.Rules, RuleJSON{Tag: r.Tag, In: r.In, Out: r.Out, NewTag: r.NewTag})
		b.Switches[name] = sb
	}
	return b
}

// Marshal renders the bundle as deterministic, indented JSON.
func (b *Bundle) Marshal() ([]byte, error) {
	for _, sb := range b.Switches {
		sort.Slice(sb.Rules, func(i, j int) bool {
			a, c := sb.Rules[i], sb.Rules[j]
			if a.Tag != c.Tag {
				return a.Tag < c.Tag
			}
			if a.In != c.In {
				return a.In < c.In
			}
			return a.Out < c.Out
		})
	}
	return json.MarshalIndent(b, "", "  ")
}

// Unmarshal parses a bundle.
func Unmarshal(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	return &b, nil
}

// Import reconstructs a ruleset over the given topology. Switch names
// must resolve; unknown names are an error (the bundle belongs to a
// different fabric).
func Import(g *topology.Graph, b *Bundle) (*core.Ruleset, error) {
	rs := core.NewRuleset(g, b.MaxTag)
	for name, sb := range b.Switches {
		id, ok := g.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("deploy: bundle references unknown switch %q", name)
		}
		for _, r := range sb.Rules {
			rs.Add(core.Rule{Switch: id, Tag: r.Tag, In: r.In, Out: r.Out, NewTag: r.NewTag})
		}
	}
	return rs, nil
}

// SwitchDiff lists the rule changes one switch needs.
type SwitchDiff struct {
	Added   []RuleJSON
	Removed []RuleJSON
}

// Empty reports whether the switch needs no changes.
func (d SwitchDiff) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// Diff computes per-switch changes from old to new bundle. Switches
// absent from a side are treated as having no rules there.
func Diff(oldB, newB *Bundle) map[string]SwitchDiff {
	out := make(map[string]SwitchDiff)
	names := map[string]bool{}
	for n := range oldB.Switches {
		names[n] = true
	}
	for n := range newB.Switches {
		names[n] = true
	}
	key := func(r RuleJSON) string { return fmt.Sprintf("%d/%d/%d>%d", r.Tag, r.In, r.Out, r.NewTag) }
	for n := range names {
		oldSet := map[string]RuleJSON{}
		for _, r := range oldB.Switches[n].Rules {
			oldSet[key(r)] = r
		}
		newSet := map[string]RuleJSON{}
		for _, r := range newB.Switches[n].Rules {
			newSet[key(r)] = r
		}
		var d SwitchDiff
		for k, r := range newSet {
			if _, ok := oldSet[k]; !ok {
				d.Added = append(d.Added, r)
			}
		}
		for k, r := range oldSet {
			if _, ok := newSet[k]; !ok {
				d.Removed = append(d.Removed, r)
			}
		}
		if !d.Empty() {
			sortRules(d.Added)
			sortRules(d.Removed)
			out[n] = d
		}
	}
	return out
}

func sortRules(rs []RuleJSON) {
	sort.Slice(rs, func(i, j int) bool {
		a, c := rs[i], rs[j]
		if a.Tag != c.Tag {
			return a.Tag < c.Tag
		}
		if a.In != c.In {
			return a.In < c.In
		}
		return a.Out < c.Out
	})
}
