package deploy

import (
	"reflect"
	"testing"
)

func sb(rules ...RuleJSON) SwitchBundle { return SwitchBundle{Rules: rules} }

func TestDeltaForClassifies(t *testing.T) {
	from := sb(
		RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 1}, // unchanged
		RuleJSON{Tag: 1, In: 1, Out: 0, NewTag: 1}, // rewrite changes
		RuleJSON{Tag: 2, In: 0, Out: 1, NewTag: 2}, // removed
	)
	to := sb(
		RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 1},
		RuleJSON{Tag: 1, In: 1, Out: 0, NewTag: 2},
		RuleJSON{Tag: 3, In: 2, Out: 1, NewTag: 3}, // added
	)
	d := DeltaFor(from, to)
	if a, r, m := d.Counts(); a != 1 || r != 1 || m != 1 {
		t.Fatalf("Counts() = (%d, %d, %d), want (1, 1, 1): %+v", a, r, m, d)
	}
	if d.Added[0] != (RuleJSON{Tag: 3, In: 2, Out: 1, NewTag: 3}) {
		t.Errorf("Added = %+v", d.Added)
	}
	if d.Removed[0] != (RuleJSON{Tag: 2, In: 0, Out: 1, NewTag: 2}) {
		t.Errorf("Removed = %+v", d.Removed)
	}
	if d.Modified[0].NewTag != 2 || d.Modified[0].OldNewTag != 1 {
		t.Errorf("Modified = %+v", d.Modified)
	}
}

func TestDeltaForIdenticalIsEmpty(t *testing.T) {
	b := sb(RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 2}, RuleJSON{Tag: 2, In: 1, Out: 0, NewTag: 2})
	if d := DeltaFor(b, b); !d.Empty() {
		t.Fatalf("identical tables produced a non-empty delta: %+v", d)
	}
	if d := DeltaFor(SwitchBundle{}, SwitchBundle{}); !d.Empty() {
		t.Fatalf("empty tables produced a non-empty delta: %+v", d)
	}
}

// TestApplyDeltaRoundTrip: for arbitrary from/to tables,
// ApplyDelta(from, DeltaFor(from, to)) reproduces `to` exactly (in
// canonical order), and re-applying the same delta is a no-op — the
// idempotence the controller's blind RPC retries rely on.
func TestApplyDeltaRoundTrip(t *testing.T) {
	cases := []struct{ from, to SwitchBundle }{
		{sb(), sb(RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 1})},
		{sb(RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 1}), sb()},
		{
			sb(RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 1}, RuleJSON{Tag: 2, In: 1, Out: 2, NewTag: 2}),
			sb(RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 3}, RuleJSON{Tag: 5, In: 1, Out: 2, NewTag: 5}),
		},
	}
	for i, c := range cases {
		d := DeltaFor(c.from, c.to)
		got := ApplyDelta(c.from, d)
		want := ApplyDelta(c.to, SwitchDiff{}) // canonicalize ordering
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: ApplyDelta = %+v, want %+v", i, got, want)
		}
		if again := ApplyDelta(got, d); !reflect.DeepEqual(again, want) {
			t.Errorf("case %d: delta is not idempotent: %+v", i, again)
		}
	}
}

// TestDiffClassifiesModified: a rewrite-only change surfaces as Modified
// in the bundle-level diff, not as a remove+add pair.
func TestDiffClassifiesModified(t *testing.T) {
	oldB := &Bundle{Switches: map[string]SwitchBundle{
		"S1": sb(RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 1}),
		"S2": sb(RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 1}),
	}}
	newB := &Bundle{Switches: map[string]SwitchBundle{
		"S1": sb(RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 2}),
		"S2": sb(RuleJSON{Tag: 1, In: 0, Out: 1, NewTag: 1}),
	}}
	d := Diff(oldB, newB)
	if len(d) != 1 {
		t.Fatalf("Diff touched %d switches, want 1: %v", len(d), d)
	}
	s1 := d["S1"]
	if a, r, m := s1.Counts(); a != 0 || r != 0 || m != 1 {
		t.Fatalf("S1 diff = (%d, %d, %d), want pure modify: %+v", a, r, m, s1)
	}
}
