package deploy

import (
	"reflect"
	"testing"
)

func TestGroupIdenticalPartitionsByContent(t *testing.T) {
	b := &Bundle{Switches: map[string]SwitchBundle{
		// s1 and s3 share a rule set modulo order; s2 differs; s4 is empty.
		"s1": {Rules: []RuleJSON{{Tag: 1, In: 1, Out: 2, NewTag: 1}, {Tag: 2, In: 2, Out: 1, NewTag: 2}}},
		"s3": {Rules: []RuleJSON{{Tag: 2, In: 2, Out: 1, NewTag: 2}, {Tag: 1, In: 1, Out: 2, NewTag: 1}}},
		"s2": {Rules: []RuleJSON{{Tag: 1, In: 1, Out: 2, NewTag: 9}}},
		"s4": {},
	}}
	groups := GroupIdentical(b, []string{"s4", "s3", "s2", "s1"})
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3: %+v", len(groups), groups)
	}
	// Ordered by smallest member name; members sorted.
	want := [][]string{{"s1", "s3"}, {"s2"}, {"s4"}}
	for i, gr := range groups {
		if !reflect.DeepEqual(gr.Switches, want[i]) {
			t.Errorf("group %d = %v, want %v", i, gr.Switches, want[i])
		}
	}
	if groups[0].Rules != 2 || groups[1].Rules != 1 || groups[2].Rules != 0 {
		t.Errorf("rule counts = %d/%d/%d, want 2/1/0",
			groups[0].Rules, groups[1].Rules, groups[2].Rules)
	}
}

func TestGroupIdenticalDeterministic(t *testing.T) {
	b := &Bundle{Switches: map[string]SwitchBundle{}}
	var names []string
	for _, n := range []string{"c", "a", "b", "e", "d"} {
		b.Switches[n] = SwitchBundle{Rules: []RuleJSON{{Tag: 1, In: 1, Out: 2, NewTag: 1}}}
		names = append(names, n)
	}
	g1 := GroupIdentical(b, names)
	g2 := GroupIdentical(b, []string{"e", "d", "c", "b", "a"})
	if !reflect.DeepEqual(g1, g2) {
		t.Fatal("grouping depends on input order")
	}
	if len(g1) != 1 || !reflect.DeepEqual(g1[0].Switches, []string{"a", "b", "c", "d", "e"}) {
		t.Fatalf("unexpected grouping: %+v", g1)
	}
}
