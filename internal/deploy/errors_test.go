package deploy

import (
	"bytes"
	"testing"
)

// TestUnmarshalTruncated: a bundle cut off mid-transfer must be rejected
// at every truncation point, never half-parsed into a partial rule set.
func TestUnmarshalTruncated(t *testing.T) {
	_, rs := testRules(t)
	data, err := Export(rs).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(data))
		}
	}
}

// TestUnmarshalCorrupt: structurally valid JSON with the wrong shapes is
// rejected rather than silently zeroed.
func TestUnmarshalCorrupt(t *testing.T) {
	cases := []string{
		`{"maxTag": "two", "switches": {}}`,
		`{"maxTag": 2, "switches": {"T1": {"rules": [{"tag": "x"}]}}}`,
		`{"maxTag": 2, "switches": [1, 2]}`,
		`[]`,
	}
	for _, c := range cases {
		if _, err := Unmarshal([]byte(c)); err == nil {
			t.Errorf("corrupt bundle accepted: %s", c)
		}
	}
}

// TestImportTruncatedBundle drives the full decode path an operator
// hits: corrupt bytes never reach the fabric as a ruleset.
func TestImportTruncatedBundle(t *testing.T) {
	c, rs := testRules(t)
	data, err := Export(rs).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unmarshal(data[:len(data)/2])
	if err == nil {
		if _, err := Import(c.Graph, b); err == nil {
			t.Fatal("truncated bundle imported successfully")
		}
	}
}

// TestDiffForeignSwitches: a switch present on only one side diffs as
// all-added or all-removed — Diff never drops it on the floor, so a
// controller pushing the diff cannot miss a decommissioned or new
// switch.
func TestDiffForeignSwitches(t *testing.T) {
	_, rs := testRules(t)
	oldB, newB := Export(rs), Export(rs)
	rules := []RuleJSON{{Tag: 1, In: 0, Out: 1, NewTag: 2}, {Tag: 2, In: 1, Out: 0, NewTag: 2}}
	newB.Switches["NEW99"] = SwitchBundle{Rules: rules}
	oldB.Switches["GONE7"] = SwitchBundle{Rules: rules[:1]}

	d := Diff(oldB, newB)
	if got := d["NEW99"]; len(got.Added) != 2 || len(got.Removed) != 0 {
		t.Errorf("new switch diff = %+v", got)
	}
	if got := d["GONE7"]; len(got.Added) != 0 || len(got.Removed) != 1 {
		t.Errorf("removed switch diff = %+v", got)
	}
	for name, sd := range d {
		if name != "NEW99" && name != "GONE7" {
			t.Errorf("identical switch %s produced diff %+v", name, sd)
		}
	}
}

// TestExportImportExportByteIdentical is the round-trip property the
// version-control story relies on: re-exporting an imported bundle
// reproduces the exact bytes, so a bundle checked into git never churns
// from a pull-modify-push cycle that changed nothing.
func TestExportImportExportByteIdentical(t *testing.T) {
	c, rs := testRules(t)
	first, err := Export(rs).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unmarshal(first)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := Import(c.Graph, b)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Export(rs2).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("Export -> Import -> Export is not byte-identical")
	}
}
