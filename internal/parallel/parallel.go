// Package parallel provides the small deterministic fan-out primitives
// the synthesis pipeline shares: contiguous sharding of an index range
// across a bounded worker pool.
//
// Every user follows the same discipline: workers compute into
// shard-indexed slots and the caller folds the slots together in shard
// order, so the fan-out is invisible in the output — par=1 and par=N
// produce identical results. Worker count 1 must (and does) run inline on
// the calling goroutine with zero scheduling overhead: it is the legacy
// serial path, kept exercised by the -par=1 flag and the determinism
// tests.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: n <= 0 means GOMAXPROCS,
// and the result is clamped to items so no worker starts idle.
func Workers(n, items int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Shard is one contiguous sub-range [Lo, Hi) of an index space.
type Shard struct {
	Index  int // shard number, dense from 0
	Lo, Hi int
}

// Shards splits [0, items) into at most want contiguous shards of
// near-equal size, in order. want <= 0 means GOMAXPROCS.
func Shards(items, want int) []Shard {
	w := Workers(want, items)
	if items == 0 {
		return nil
	}
	out := make([]Shard, 0, w)
	base := items / w
	rem := items % w
	lo := 0
	for i := 0; i < w; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out = append(out, Shard{Index: i, Lo: lo, Hi: lo + sz})
		lo += sz
	}
	return out
}

// ForEachShard splits [0, items) into shards and calls fn once per shard,
// on workers goroutines (1 = inline on the caller, the serial path). fn
// must write only to its own shard's slot of whatever output it fills;
// the caller merges slots in shard order after ForEachShard returns.
func ForEachShard(items, workers int, fn func(s Shard)) {
	shards := Shards(items, workers)
	if len(shards) <= 1 {
		for _, s := range shards {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for _, s := range shards {
		go func(s Shard) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}
