package detect

import "testing"

func TestTagCodec(t *testing.T) {
	cases := []struct {
		node, port, prio int
		epoch            uint32
	}{
		{0, 0, 0, 0},
		{1, 2, 3, 4},
		{65535, 4095, 15, 0xffffff},
		{17, 0, 1, 9000},
	}
	for _, c := range cases {
		tg := MakeTag(c.node, c.port, c.prio, c.epoch)
		if tg == 0 {
			t.Fatalf("MakeTag(%v) = 0; the zero value must stay reserved", c)
		}
		if tg.Node() != c.node || tg.Port() != c.port || tg.Prio() != c.prio || tg.Epoch() != c.epoch {
			t.Errorf("roundtrip %v -> (%d,%d,%d,%d)", c, tg.Node(), tg.Port(), tg.Prio(), tg.Epoch())
		}
	}
	if Tag(0).String() != "tag(none)" {
		t.Errorf("zero tag renders as %q", Tag(0).String())
	}
}

// ring drives a synthetic wait-for ring of k switches: switch i's
// ingress port 0 (prio 1) feeds egress port 1 (prio 1), which is paused
// by switch (i+1)%k. It exercises the engine without the simulator.
type ring struct {
	e *Engine
	k int
}

func newRing(k int) *ring {
	counts := make([]int, k)
	for i := range counts {
		counts[i] = 2 // port 0 = upstream, port 1 = downstream
	}
	return &ring{e: NewEngine(counts, 2), k: k}
}

// TestPauseChainDetection closes a ring causally: each switch holds a
// packet for its downstream egress, receives the downstream pause, then
// asserts its own — inheriting the tag. The origin must detect when its
// own tag arrives on the final pause.
func TestPauseChainDetection(t *testing.T) {
	r := newRing(4)
	e := r.e
	for i := 0; i < r.k; i++ {
		e.Enqueue(i, 0, 1, 1, 1) // ingress 0 holds a packet for egress 1
	}
	// Switch 0 triggers first (no paused egress yet): it originates.
	tag := e.PauseSent(0, 0, 1)
	if tag == 0 || tag.Node() != 0 {
		t.Fatalf("origin tag = %v", tag)
	}
	if st := e.Stats(); st.Origins != 1 {
		t.Fatalf("Origins = %d, want 1", st.Origins)
	}
	// The pause wave chains backward: switch 0's pause lands on switch
	// k-1's egress, which then asserts its own pause and inherits, and so
	// on around the ring.
	cur := tag
	for i := r.k - 1; i >= 1; i-- {
		if _, ok := e.PauseReceived(i, 1, 1, cur); ok {
			t.Fatalf("premature detection at switch %d", i)
		}
		cur = e.PauseSent(i, 0, 1)
		if cur != tag {
			t.Fatalf("switch %d minted %v instead of inheriting %v", i, cur, tag)
		}
	}
	// The final pause closes the ring at the origin.
	d, ok := e.PauseReceived(0, 1, 1, cur)
	if !ok {
		t.Fatal("origin did not detect its own returning tag")
	}
	if d.Node != 0 || d.Port != 0 || d.Prio != 1 || d.Via != ViaPause {
		t.Errorf("detection = %+v", d)
	}
	// The epoch retired: the same tag cannot fire twice.
	if _, ok := e.PauseReceived(0, 1, 1, cur); ok {
		t.Error("stale tag re-fired after detection")
	}
}

// TestPacketReturnDetection walks a tag around the ring in packet
// metadata: every hop's charged ingress is paused, so the tag keeps
// riding; the creator detects on arrival.
func TestPacketReturnDetection(t *testing.T) {
	r := newRing(3)
	e := r.e
	for i := 0; i < r.k; i++ {
		e.Enqueue(i, 0, 1, 1, 1)
		e.PauseSent(i, 0, 1)
	}
	tag := e.PacketDeparture(0, 0, 1, 0)
	if tag == 0 || tag.Node() != 0 {
		t.Fatalf("departure through a paused ingress carried %v", tag)
	}
	for i := 1; i < r.k; i++ {
		if _, ok := e.PacketArrival(i, 0, 1, tag); ok {
			t.Fatalf("foreign tag fired at switch %d", i)
		}
		out := e.PacketDeparture(i, 0, 1, tag)
		if out != tag {
			t.Fatalf("switch %d replaced the foreign tag: %v", i, out)
		}
	}
	if _, ok := e.PacketArrival(0, 0, 1, tag); !ok {
		t.Fatal("creator did not detect its returning packet tag")
	}
	st := e.Stats()
	if st.Detections != 1 || st.ViaPacketN != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestUnpausedHopClearsTag: a hop whose charged ingress is not paused
// breaks the congestion chain, so the tag must not survive it.
func TestUnpausedHopClearsTag(t *testing.T) {
	r := newRing(2)
	e := r.e
	e.PauseSent(0, 0, 1)
	tag := e.PacketDeparture(0, 0, 1, 0)
	if tag == 0 {
		t.Fatal("no tag from paused origin")
	}
	// Switch 1's ingress is NOT paused.
	if out := e.PacketDeparture(1, 0, 1, tag); out != 0 {
		t.Errorf("unpaused hop forwarded tag %v", out)
	}
}

// TestResumeInvalidatesEpoch: once the origin resumes, its outstanding
// tags are stale even if the ingress re-pauses later.
func TestResumeInvalidatesEpoch(t *testing.T) {
	r := newRing(2)
	e := r.e
	e.PauseSent(0, 0, 1)
	old := e.PacketDeparture(0, 0, 1, 0)
	e.ResumeSent(0, 0, 1)
	e.PauseSent(0, 0, 1) // new episode, new epoch
	if _, ok := e.PacketArrival(0, 0, 1, old); ok {
		t.Error("stale-epoch tag fired after resume")
	}
}

// TestRefreshConvergesConcurrentOrigins reproduces the two-origin race:
// both switches of a 2-ring assert before seeing each other's pause, so
// both originate. The periodic refresh must let one chain adopt the
// other's tag and close the loop.
func TestRefreshConvergesConcurrentOrigins(t *testing.T) {
	r := newRing(2)
	e := r.e
	e.Enqueue(0, 0, 1, 1, 1)
	e.Enqueue(1, 0, 1, 1, 1)
	t0 := e.PauseSent(0, 0, 1) // both originate: neither has a paused egress yet
	t1 := e.PauseSent(1, 0, 1)
	if _, ok := e.PauseReceived(1, 1, 1, t0); ok {
		t.Fatal("foreign tag fired")
	}
	if _, ok := e.PauseReceived(0, 1, 1, t1); ok {
		t.Fatal("foreign tag fired")
	}
	// Refresh: each side now sees a paused egress holding its packets and
	// adopts the foreign tag; delivering either refreshed tag upstream
	// closes the cycle at that tag's creator.
	rt := e.RefreshTag(0, 0, 1)
	if rt != t1 {
		t.Fatalf("refresh at 0 carries %v, want adopted %v", rt, t1)
	}
	d, ok := e.PauseReceived(1, 1, 1, rt)
	if !ok {
		t.Fatal("refresh delivery did not close the cycle")
	}
	if d.Node != 1 || d.Via != ViaPause {
		t.Errorf("detection = %+v", d)
	}
}

// TestResetNode: a reboot clears holds and retires epochs.
func TestResetNode(t *testing.T) {
	r := newRing(2)
	e := r.e
	e.Enqueue(0, 0, 1, 1, 1)
	e.PauseSent(0, 0, 1)
	tag := e.PacketDeparture(0, 0, 1, 0)
	e.ResetNode(0)
	if _, ok := e.PacketArrival(0, 0, 1, tag); ok {
		t.Error("pre-reboot tag fired after ResetNode")
	}
	if tg, ok := e.inheritTag(0, 0, 1); ok {
		t.Errorf("holds survived reset: %v", tg)
	}
}
