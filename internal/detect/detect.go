// Package detect implements an in-switch, data-plane PFC deadlock
// detection scheme in the style of DCFIT (PAPERS.md, Wu & Ng): the
// switch that first triggers a PFC PAUSE stamps a detection tag, the
// tag travels with the congestion — carried in packet metadata and on
// the pause frames that chain backward through the wait-for graph —
// and a deadlock is declared the moment a switch sees a tag it created
// come back while the pause episode that created it is still open.
// Detection is purely local: no global snapshot, no controller in the
// loop, just a few words of per-(port, priority) state on each switch.
//
// # Tag transport
//
// A cyclic buffer dependency (CBD) closes through two media, and the
// engine uses both:
//
//   - Pause frames. When an ingress (port, priority) asserts PAUSE, it
//     either inherits the tag of a paused egress queue currently holding
//     packets charged to that ingress (the wait-for edge the pause just
//     extended) or, when no such queue exists, originates a fresh tag —
//     this switch is the initial trigger of the chain. The tag rides the
//     pause frame to the upstream switch. Real PFC refreshes PAUSE
//     periodically (802.1Qbb pause quanta expire); the simulator models
//     that refresh for the detector's benefit, so a chain whose edges
//     asserted out of causal order still converges on one tag.
//
//   - Packets. A packet departing through a still-paused ingress carries
//     that ingress's tag downstream; while any hop's charged ingress is
//     paused the tag keeps walking, and a hop whose ingress is unpaused
//     clears it (the congestion chain is broken there). DCFIT's original
//     formulation uses exactly this piggybacking.
//
// # Detection rule
//
// Tags encode (creator node, ingress port, priority, epoch). The epoch
// increments whenever the ingress resumes, so a tag is "live" only while
// the pause episode that minted it persists. A switch receiving a tag —
// by either medium — checks: did I create this, and is the named ingress
// still paused in the same epoch? If so, the wait chain it started has
// closed on itself: deadlock. The check is epoch-exact, so stale tags
// from resolved episodes can never fire, and each detection bumps the
// epoch so one cycle is reported once per round trip, not once per
// packet.
//
// The engine is simulator-agnostic: it speaks dense (node, port,
// priority) indexes and is driven entirely by the hooks below. The
// internal/sim wiring lives in sim/detector.go.
package detect

import "fmt"

// Tag is a detection tag: a packed (node, port, prio, epoch) identity
// of the pause episode that minted it. The zero Tag means "no tag".
//
// Layout: bit 63 marks validity (so node 0, port 0 still yields a
// nonzero tag), bits 32..55 the epoch, 16..31 the node, 4..15 the port,
// 0..3 the priority.
type Tag uint64

const tagValid Tag = 1 << 63

// MakeTag packs a tag. Arguments must fit their fields (node < 2^16,
// port < 2^12, prio < 2^4); the simulator's fabrics are far below that.
func MakeTag(node, port, prio int, epoch uint32) Tag {
	return tagValid |
		Tag(epoch&0xffffff)<<32 |
		Tag(node&0xffff)<<16 |
		Tag(port&0xfff)<<4 |
		Tag(prio&0xf)
}

// Node returns the creator node index.
func (t Tag) Node() int { return int(t >> 16 & 0xffff) }

// Port returns the creator's ingress port.
func (t Tag) Port() int { return int(t >> 4 & 0xfff) }

// Prio returns the creator's ingress priority.
func (t Tag) Prio() int { return int(t & 0xf) }

// Epoch returns the pause-episode epoch the tag was minted in.
func (t Tag) Epoch() uint32 { return uint32(t >> 32 & 0xffffff) }

// String renders a tag for diagnostics.
func (t Tag) String() string {
	if t == 0 {
		return "tag(none)"
	}
	return fmt.Sprintf("tag(n%d p%d q%d e%d)", t.Node(), t.Port(), t.Prio(), t.Epoch())
}

// Transport media a returning tag can arrive by.
const (
	// ViaPacket: the tag came back piggybacked on a data packet.
	ViaPacket = "packet"
	// ViaPause: the tag came back on a PFC pause frame (or its refresh).
	ViaPause = "pause"
)

// Detection reports one confirmed own-tag return.
type Detection struct {
	// Node is the detecting switch — the tag's creator.
	Node int
	// Port and Prio name the origin ingress whose pause episode closed
	// into a cycle; mitigation targets the packets charged to it.
	Port int
	Prio int
	// Tag is the returned tag.
	Tag Tag
	// Via is ViaPacket or ViaPause.
	Via string
}

// Stats tallies the engine's activity.
type Stats struct {
	// Origins counts fresh tags minted (pause asserts with no upstream
	// wait edge to inherit from).
	Origins int64
	// Inherited counts pause asserts that extended an existing chain.
	Inherited int64
	// Adopted counts foreign tags picked up from arriving packets.
	Adopted int64
	// Refreshes counts per-ingress pause-refresh re-evaluations.
	Refreshes int64
	// Detections counts own-tag returns, split by medium.
	Detections int64
	ViaPacketN int64
	ViaPauseN  int64
}

// inState is the per-(ingress port, priority) detector state: the tag
// our asserted pause carries, whether we minted it, a foreign tag
// adopted from passing packets, and the pause-episode epoch.
type inState struct {
	paused bool
	origin bool
	tag    Tag
	carry  Tag
	epoch  uint32
}

// nodeState is one switch's detector state.
type nodeState struct {
	nPorts int
	// in is the ingress state, indexed port*nPrio+prio.
	in []inState
	// eg records, per egress (port*nPrio+prio), the tag carried by the
	// downstream pause currently asserted against it (0 = not paused).
	eg []Tag
	// hold counts queued packets by (ingress port, ingress prio, egress
	// port, egress prio) — the wait-for edges available for tag
	// inheritance — indexed (in*nPrio+ip)*nPorts*nPrio + out*nPrio+op.
	hold []int32
}

// Engine is the fabric-wide collection of per-switch detector state
// machines. All methods are synchronous and deterministic; the caller
// (one simulator instance) serializes access.
type Engine struct {
	nPrio int
	nodes []nodeState
	stats Stats
}

// NewEngine sizes the state for a fabric: portCounts[i] is node i's
// port count (hosts may be included with their real counts; the caller
// simply never invokes hooks for them), nPrio the number of priority
// classes including the lossy class 0.
func NewEngine(portCounts []int, nPrio int) *Engine {
	e := &Engine{nPrio: nPrio, nodes: make([]nodeState, len(portCounts))}
	for i, np := range portCounts {
		e.nodes[i] = nodeState{
			nPorts: np,
			in:     make([]inState, np*nPrio),
			eg:     make([]Tag, np*nPrio),
			hold:   make([]int32, np*nPrio*np*nPrio),
		}
	}
	return e
}

// Stats returns a copy of the running tallies.
func (e *Engine) Stats() Stats { return e.stats }

func (e *Engine) in(node, port, prio int) *inState {
	return &e.nodes[node].in[port*e.nPrio+prio]
}

// inheritTag scans node's paused egress queues for one holding packets
// charged to ingress (port, prio) — a live wait-for edge — and returns
// its tag. The scan order (ascending port, then priority) is fixed, so
// inheritance is deterministic.
func (e *Engine) inheritTag(node, port, prio int) (Tag, bool) {
	ns := &e.nodes[node]
	base := (port*e.nPrio + prio) * ns.nPorts * e.nPrio
	for out := 0; out < ns.nPorts; out++ {
		for op := 1; op < e.nPrio; op++ {
			slot := out*e.nPrio + op
			if ns.eg[slot] != 0 && ns.hold[base+slot] > 0 {
				return ns.eg[slot], true
			}
		}
	}
	return 0, false
}

// PauseSent records that node asserted PAUSE on ingress (port, prio)
// and returns the tag the pause frame should carry: inherited from the
// downstream wait edge when one exists, freshly minted otherwise.
func (e *Engine) PauseSent(node, port, prio int) Tag {
	st := e.in(node, port, prio)
	st.paused = true
	st.carry = 0
	if tg, ok := e.inheritTag(node, port, prio); ok && tg.Node() != node {
		st.tag, st.origin = tg, false
		e.stats.Inherited++
	} else {
		st.tag, st.origin = MakeTag(node, port, prio, st.epoch), true
		e.stats.Origins++
	}
	return st.tag
}

// ResumeSent records that the ingress resumed: the pause episode ends,
// its epoch retires, and every outstanding copy of its tags goes stale.
func (e *Engine) ResumeSent(node, port, prio int) {
	st := e.in(node, port, prio)
	st.paused = false
	st.origin = false
	st.tag = 0
	st.carry = 0
	st.epoch++
}

// PauseReceived records a pause (or pause refresh) taking effect at
// node's egress (port, prio), carrying tag. Returns a Detection when
// the tag is the receiver's own live tag.
func (e *Engine) PauseReceived(node, port, prio int, tag Tag) (Detection, bool) {
	e.nodes[node].eg[port*e.nPrio+prio] = tag
	return e.check(node, tag, ViaPause)
}

// ResumeReceived clears the egress pause record.
func (e *Engine) ResumeReceived(node, port, prio int) {
	e.nodes[node].eg[port*e.nPrio+prio] = 0
}

// check applies the detection rule: a tag fires iff this node minted it
// and the ingress it names is still paused in the minting epoch.
func (e *Engine) check(node int, tag Tag, via string) (Detection, bool) {
	if tag == 0 || tag.Node() != node {
		return Detection{}, false
	}
	st := e.in(node, tag.Port(), tag.Prio())
	if !st.paused || st.epoch != tag.Epoch() {
		return Detection{}, false
	}
	e.stats.Detections++
	if via == ViaPacket {
		e.stats.ViaPacketN++
	} else {
		e.stats.ViaPauseN++
	}
	// Retire the epoch (still paused, so outstanding copies go stale and
	// the same cycle cannot re-fire until a tag makes a fresh round trip)
	// and re-arm as an origin under the new epoch.
	st.epoch++
	st.tag, st.origin = MakeTag(node, tag.Port(), tag.Prio(), st.epoch), true
	st.carry = 0
	return Detection{Node: node, Port: tag.Port(), Prio: tag.Prio(), Tag: tag, Via: via}, true
}

// PacketDeparture decides the tag a departing packet carries onward.
// The packet leaves through ingress (inPort, inPrio) of node; carried
// is the tag it arrived with. An unpaused ingress breaks the chain and
// clears the tag; a paused one propagates, in preference order, a
// foreign carried tag, an adopted foreign tag, then its own pause tag.
func (e *Engine) PacketDeparture(node, inPort, inPrio int, carried Tag) Tag {
	st := e.in(node, inPort, inPrio)
	if !st.paused {
		return 0
	}
	if carried != 0 && carried.Node() != node {
		return carried
	}
	if st.carry != 0 {
		return st.carry
	}
	return st.tag
}

// PacketArrival processes a packet arriving at node charged to ingress
// (inPort, inPrio) with the given carried tag. An own live tag is a
// detection; a foreign tag is adopted into the ingress's carry slot if
// the ingress is paused (first adoption wins — deterministic, and the
// oldest chain keeps walking).
func (e *Engine) PacketArrival(node, inPort, inPrio int, carried Tag) (Detection, bool) {
	if carried == 0 {
		return Detection{}, false
	}
	if d, ok := e.check(node, carried, ViaPacket); ok {
		return d, true
	}
	if carried.Node() != node {
		st := e.in(node, inPort, inPrio)
		if st.paused && st.carry == 0 {
			st.carry = carried
			e.stats.Adopted++
		}
	}
	return Detection{}, false
}

// RefreshTag re-evaluates a still-paused ingress at a pause refresh and
// returns the tag the refresh frame should carry (0 if the ingress is
// not paused). A foreign tag now inheritable from a downstream wait
// edge replaces the current one — this is what lets two chains that
// asserted concurrently (both originating) converge on a single tag
// that can complete the round trip.
func (e *Engine) RefreshTag(node, port, prio int) Tag {
	st := e.in(node, port, prio)
	if !st.paused {
		return 0
	}
	e.stats.Refreshes++
	if tg, ok := e.inheritTag(node, port, prio); ok && tg.Node() != node {
		if st.tag != tg {
			st.tag, st.origin = tg, false
			e.stats.Inherited++
		}
	} else if !st.origin {
		// The edge we inherited from resolved; this ingress is a chain
		// head again.
		st.tag, st.origin = MakeTag(node, port, prio, st.epoch), true
		e.stats.Origins++
	}
	return st.tag
}

// LiveTag is one live ingress detector state, reported by VisitLive.
type LiveTag struct {
	Node, Port, Prio int
	// Tag is the tag the asserted pause carries; Origin whether this
	// ingress minted it (chain head) or inherited it.
	Tag    Tag
	Origin bool
	// Carry is the adopted foreign tag, if any (0 = none).
	Carry Tag
}

// VisitLive calls fn for every paused ingress holding a live tag, in
// deterministic (node, port, prio) order — the detector's working set,
// snapshotted by the flight recorder at an incident freeze.
func (e *Engine) VisitLive(fn func(LiveTag)) {
	for ni := range e.nodes {
		ns := &e.nodes[ni]
		for port := 0; port < ns.nPorts; port++ {
			for prio := 0; prio < e.nPrio; prio++ {
				st := &ns.in[port*e.nPrio+prio]
				if !st.paused || st.tag == 0 {
					continue
				}
				fn(LiveTag{
					Node: ni, Port: port, Prio: prio,
					Tag: st.tag, Origin: st.origin, Carry: st.carry,
				})
			}
		}
	}
}

// Enqueue records a lossless packet charged to ingress (inPort, inPrio)
// entering egress queue (outPort, outPrio) at node.
func (e *Engine) Enqueue(node, inPort, inPrio, outPort, outPrio int) {
	ns := &e.nodes[node]
	ns.hold[(inPort*e.nPrio+inPrio)*ns.nPorts*e.nPrio+outPort*e.nPrio+outPrio]++
}

// Dequeue reverses Enqueue when the packet leaves the queue (transmit,
// flush, mitigation sweep).
func (e *Engine) Dequeue(node, inPort, inPrio, outPort, outPrio int) {
	ns := &e.nodes[node]
	ns.hold[(inPort*e.nPrio+inPrio)*ns.nPorts*e.nPrio+outPort*e.nPrio+outPrio]--
}

// ResetNode clears node's hold matrix and ingress state — a switch
// reboot empties every queue and forgets every pause it asserted. The
// egress pause records survive: those claims live at the downstream
// peers, which resume on their own. Epochs advance so any in-flight
// tags minted before the reboot are stale.
func (e *Engine) ResetNode(node int) {
	ns := &e.nodes[node]
	for i := range ns.hold {
		ns.hold[i] = 0
	}
	for i := range ns.in {
		st := &ns.in[i]
		st.paused = false
		st.origin = false
		st.tag = 0
		st.carry = 0
		st.epoch++
	}
}
