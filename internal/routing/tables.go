package routing

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Discipline selects how forwarding tables are computed.
type Discipline uint8

const (
	// Shortest computes plain shortest-path next hops over healthy links
	// (valleys allowed). This models what BGP/OSPF converge to after
	// failures: detour routes may bounce.
	Shortest Discipline = iota
	// UpDown computes valley-free next hops for layered fabrics: prefer a
	// shortest valley-free route; destinations with no valley-free route
	// get no entry.
	UpDown
)

// tableKey identifies one forwarding entry.
type tableKey struct {
	node topology.NodeID
	dst  topology.NodeID
}

// Tables is per-node, per-destination forwarding state: a set of ECMP
// egress ports. Packets are forwarded hop by hop; nodes hash flows across
// the port set. Tables are destination-based and memoryless, exactly like
// commodity L3 switches — a bounced packet is forwarded by the same
// entries as a fresh one.
type Tables struct {
	g          *topology.Graph
	discipline Discipline
	next       map[tableKey][]int
	dsts       []topology.NodeID
}

// Compute builds forwarding tables toward every destination in dsts (hosts
// and/or switches) using the given discipline over the currently healthy
// links.
func Compute(g *topology.Graph, discipline Discipline, dsts []topology.NodeID) *Tables {
	t := &Tables{
		g:          g,
		discipline: discipline,
		next:       make(map[tableKey][]int),
		dsts:       append([]topology.NodeID(nil), dsts...),
	}
	t.Recompute()
	return t
}

// ComputeToHosts builds tables toward every host.
func ComputeToHosts(g *topology.Graph, discipline Discipline) *Tables {
	return Compute(g, discipline, g.Hosts())
}

// Recompute rebuilds all entries from the current healthy-link state,
// discarding overrides. Use it to model routing reconvergence after
// failures.
func (t *Tables) Recompute() {
	t.next = make(map[tableKey][]int)
	for _, d := range t.dsts {
		switch t.discipline {
		case Shortest:
			t.computeShortestTo(d)
		case UpDown:
			t.computeUpDownTo(d)
		}
	}
}

// computeShortestTo installs shortest-path next hops toward d via reverse
// BFS (hosts are not transit).
func (t *Tables) computeShortestTo(d topology.NodeID) {
	g := t.g
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[d] = 0
	queue := []topology.NodeID{d}
	var nbuf []topology.NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbuf = g.Neighbors(u, nbuf[:0])
		for _, v := range nbuf {
			if dist[v] != -1 {
				continue
			}
			dist[v] = dist[u] + 1
			// Hosts receive a distance (they originate traffic and need a
			// first-hop entry) but are never expanded: packets do not
			// transit hosts.
			if g.Node(v).Kind != topology.KindHost {
				queue = append(queue, v)
			}
		}
	}
	for n := 0; n < g.NumNodes(); n++ {
		u := topology.NodeID(n)
		if u == d || dist[u] < 0 {
			continue
		}
		var ports []int
		nbuf = g.Neighbors(u, nbuf[:0])
		for _, v := range nbuf {
			if v != d && g.Node(v).Kind == topology.KindHost {
				continue // never forward toward a non-destination host
			}
			if dist[v] >= 0 && dist[v] == dist[u]-1 {
				ports = append(ports, g.PortToPeer(u, v))
			}
		}
		sort.Ints(ports)
		if len(ports) > 0 {
			t.next[tableKey{u, d}] = ports
		}
	}
}

// computeUpDownTo installs valley-free next hops toward d.
//
// For each node u, let down[u] be the down-only distance to d (descending
// layers all the way), and vf[u] = min(down[u], 1 + min over up-neighbors
// v of vf[v]). Processing nodes in descending layer order makes the
// up-recursion well-founded because "up" strictly increases layer.
func (t *Tables) computeUpDownTo(d topology.NodeID) {
	g := t.g
	const inf = int(^uint(0) >> 2)
	down := make([]int, g.NumNodes())
	for i := range down {
		down[i] = inf
	}
	down[d] = 0
	// BFS from d moving to strictly higher layers: down[u] is then the
	// length of the descending path u -> ... -> d.
	queue := []topology.NodeID{d}
	var nbuf []topology.NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbuf = g.Neighbors(u, nbuf[:0])
		for _, v := range nbuf {
			if g.Node(v).Kind == topology.KindHost {
				continue
			}
			if g.Node(v).Layer > g.Node(u).Layer && down[v] == inf {
				down[v] = down[u] + 1
				queue = append(queue, v)
			}
		}
	}

	// Order nodes by descending layer.
	order := make([]topology.NodeID, 0, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		order = append(order, topology.NodeID(n))
	}
	sort.Slice(order, func(a, b int) bool {
		return g.Node(order[a]).Layer > g.Node(order[b]).Layer
	})

	vf := make([]int, g.NumNodes())
	for i := range vf {
		vf[i] = down[i]
	}
	for _, u := range order {
		nbuf = g.Neighbors(u, nbuf[:0])
		for _, v := range nbuf {
			if g.Node(v).Layer <= g.Node(u).Layer || g.Node(v).Kind == topology.KindHost {
				continue
			}
			if vf[v] < inf && vf[v]+1 < vf[u] {
				vf[u] = vf[v] + 1
			}
		}
	}

	for n := 0; n < g.NumNodes(); n++ {
		u := topology.NodeID(n)
		if u == d || vf[u] >= inf {
			continue
		}
		var ports []int
		nbuf = g.Neighbors(u, nbuf[:0])
		for _, v := range nbuf {
			if v != d && g.Node(v).Kind == topology.KindHost {
				continue
			}
			lu, lv := g.Node(u).Layer, g.Node(v).Layer
			switch {
			case lv < lu && down[u] < inf && down[v] == down[u]-1 && vf[u] == down[u]:
				ports = append(ports, g.PortToPeer(u, v))
			case lv > lu && vf[v] < inf && vf[v]+1 == vf[u]:
				ports = append(ports, g.PortToPeer(u, v))
			}
		}
		sort.Ints(ports)
		if len(ports) > 0 {
			t.next[tableKey{u, d}] = ports
		}
	}
}

// NextHops returns the ECMP egress port set at node n toward dst, or nil
// if there is no entry (destination unreachable under the discipline).
// The returned slice must not be modified.
func (t *Tables) NextHops(n, dst topology.NodeID) []int {
	return t.next[tableKey{n, dst}]
}

// Override replaces the entry at node n toward dst with the given egress
// ports. Passing no ports removes the entry (blackhole). This is the
// scenario hook for the paper's "manually change the routing tables"
// experiments (Fig 11, Fig 12).
func (t *Tables) Override(n, dst topology.NodeID, ports ...int) {
	if len(ports) == 0 {
		delete(t.next, tableKey{n, dst})
		return
	}
	t.next[tableKey{n, dst}] = append([]int(nil), ports...)
}

// OverrideNextNode points n's entry for dst at the single neighbor next.
// It panics if the nodes are not adjacent, because a scenario asking for
// that is malformed.
func (t *Tables) OverrideNextNode(n, dst, next topology.NodeID) {
	p := t.g.PortToPeer(n, next)
	if p < 0 {
		panic(fmt.Sprintf("routing: %s is not adjacent to %s",
			t.g.Node(n).Name, t.g.Node(next).Name))
	}
	t.Override(n, dst, p)
}

// RouteResult is the outcome of walking the tables from a source.
type RouteResult struct {
	Path    Path // nodes visited, starting at src
	Reached bool // dst reached
	Looped  bool // walk revisited a (node, entry) state
	Dropped bool // no entry at some node
}

// Route walks the forwarding tables from src toward dst, picking among
// ECMP ports with the flow hash, for at most maxHops hops (<= 0 means 64,
// a TTL-like default). It reports loops instead of walking forever.
func (t *Tables) Route(src, dst topology.NodeID, flowHash uint64, maxHops int) RouteResult {
	if maxHops <= 0 {
		maxHops = 64
	}
	res := RouteResult{Path: Path{src}}
	seen := map[topology.NodeID]int{src: 1}
	cur := src
	for hop := 0; hop < maxHops; hop++ {
		if cur == dst {
			res.Reached = true
			return res
		}
		ports := t.NextHops(cur, dst)
		if len(ports) == 0 {
			res.Dropped = true
			return res
		}
		port := ports[ecmpIndex(flowHash, uint64(hop), len(ports))]
		next := t.g.Port(t.g.PortOn(cur, port)).Peer
		res.Path = append(res.Path, next)
		seen[next]++
		if seen[next] > 2 {
			res.Looped = true
			return res
		}
		cur = next
	}
	if cur == dst {
		res.Reached = true
	} else {
		res.Looped = true
	}
	return res
}

// ecmpIndex deterministically selects an ECMP member from a flow hash.
// The hop count is mixed in so that a flow does not always pick index 0
// at every switch of an equal-cost fan-out (per-hop field hashing, as
// real switches do with the 5-tuple plus inbound context).
func ecmpIndex(flowHash, hop uint64, n int) int {
	x := flowHash ^ (hop * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(n))
}

// Entries returns the number of installed forwarding entries.
func (t *Tables) Entries() int { return len(t.next) }

// Graph returns the topology the tables were computed over.
func (t *Tables) Graph() *topology.Graph { return t.g }

// Destinations returns the destination set the tables cover.
func (t *Tables) Destinations() []topology.NodeID { return t.dsts }
