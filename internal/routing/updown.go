package routing

import (
	"sort"

	"repro/internal/topology"
)

// UpDownPaths enumerates all shortest valley-free (up-down) paths from src
// to dst over healthy links: the path ascends in layer, optionally turns
// once, and then descends; it never goes up after going down. limit <= 0
// means unlimited. Both endpoints may be hosts or switches.
func UpDownPaths(g *topology.Graph, src, dst topology.NodeID, limit int) []Path {
	return upDownPaths(g, src, dst, limit, false)
}

// UpDownPathsFirstUp is UpDownPaths restricted to paths whose first hop
// ascends in layer. This is the continuation a bounced packet takes: it
// arrived descending and must go back up (§4.2), so the usual shortest
// valley-free route (which may start downward) is not available to it.
func UpDownPathsFirstUp(g *topology.Graph, src, dst topology.NodeID, limit int) []Path {
	return upDownPaths(g, src, dst, limit, true)
}

func upDownPaths(g *topology.Graph, src, dst topology.NodeID, limit int, firstUp bool) []Path {
	if src == dst {
		return []Path{{src}}
	}
	// State BFS: phase 0 = still ascending (may turn down), 1 = descending.
	type state struct {
		node  topology.NodeID
		phase int
	}
	dist := map[state]int{{src, 0}: 0}
	parents := map[state][]state{}
	queue := []state{{src, 0}}
	best := -1
	var nbuf []topology.NodeID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := dist[cur]
		if best >= 0 && d >= best {
			continue
		}
		if cur.node != src && g.Node(cur.node).Kind == topology.KindHost {
			continue // hosts do not forward
		}
		curLayer := g.Node(cur.node).Layer
		nbuf = g.Neighbors(cur.node, nbuf[:0])
		for _, v := range nbuf {
			vLayer := g.Node(v).Layer
			var next state
			switch {
			case cur.phase == 0 && vLayer > curLayer:
				next = state{v, 0}
			case vLayer < curLayer:
				if firstUp && cur.node == src && cur.phase == 0 {
					continue // first hop must ascend
				}
				next = state{v, 1}
			default:
				continue // same-layer or up-after-down moves are not valley-free
			}
			nd, seen := dist[next]
			switch {
			case !seen:
				dist[next] = d + 1
				parents[next] = append(parents[next], cur)
				queue = append(queue, next)
				if v == dst && (best < 0 || d+1 < best) {
					best = d + 1
				}
			case nd == d+1:
				parents[next] = append(parents[next], cur)
			}
		}
	}
	if best < 0 {
		return nil
	}
	// Collect shortest-distance terminal states for dst.
	var terms []state
	for _, ph := range []int{0, 1} {
		s := state{dst, ph}
		if d, ok := dist[s]; ok && d == best {
			terms = append(terms, s)
		}
	}
	var out []Path
	seenPath := map[string]bool{}
	var walk func(s state, suffix Path) bool
	walk = func(s state, suffix Path) bool {
		suffix = append(suffix, s.node)
		if s.node == src && len(suffix) == best+1 {
			p := make(Path, len(suffix))
			for i, n := range suffix {
				p[len(suffix)-1-i] = n
			}
			if k := p.Key(); !seenPath[k] {
				seenPath[k] = true
				out = append(out, p)
			}
			return limit > 0 && len(out) >= limit
		}
		ps := parents[s]
		// Deterministic order.
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].node != ps[b].node {
				return ps[a].node < ps[b].node
			}
			return ps[a].phase < ps[b].phase
		})
		for _, par := range ps {
			if walk(par, suffix) {
				return true
			}
		}
		return false
	}
	for _, tstate := range terms {
		if walk(tstate, make(Path, 0, best+1)) {
			break
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key() < out[b].Key() })
	return out
}

// UpDownDistance returns the shortest valley-free hop count from src to
// dst, or -1 if no valley-free path exists.
func UpDownDistance(g *topology.Graph, src, dst topology.NodeID) int {
	ps := UpDownPaths(g, src, dst, 1)
	if len(ps) == 0 {
		return -1
	}
	return ps[0].Hops()
}
