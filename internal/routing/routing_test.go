package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func paperClos(t *testing.T) *topology.Clos {
	t.Helper()
	c, err := topology.NewClos(topology.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPathHelpers(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	t1, l1, s1 := g.MustLookup("T1"), g.MustLookup("L1"), g.MustLookup("S1")
	p := Path{t1, l1, s1}
	if p.Hops() != 2 {
		t.Errorf("Hops = %d, want 2", p.Hops())
	}
	if p.Src() != t1 || p.Dst() != s1 {
		t.Error("Src/Dst wrong")
	}
	if !p.LoopFree() {
		t.Error("path should be loop-free")
	}
	if !p.Valid(g) {
		t.Error("path should be valid")
	}
	if !(Path{t1, l1, t1}).Valid(g) {
		t.Error("repeated adjacency is still valid")
	}
	if (Path{t1, l1, t1}).LoopFree() {
		t.Error("loop not detected")
	}
	if (Path{t1, s1}).Valid(g) {
		t.Error("T1-S1 are not adjacent")
	}
	if got := p.String(g); got != "T1>L1>S1" {
		t.Errorf("String = %q", got)
	}
	var empty Path
	if empty.Hops() != 0 || empty.Src() != topology.InvalidNode || empty.Dst() != topology.InvalidNode {
		t.Error("empty path accessors wrong")
	}
	q := Path{t1, l1, s1}
	if !p.Equal(q) {
		t.Error("Equal failed")
	}
	if p.Equal(Path{t1, l1}) {
		t.Error("Equal on different lengths")
	}
	if p.Key() == (Path{t1, l1}).Key() {
		t.Error("keys should differ")
	}
}

func TestPathBounces(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	cases := []struct {
		path Path
		want int
	}{
		{Path{n("T1"), n("L1"), n("S1"), n("L3"), n("T3")}, 0},                   // up-down
		{Path{n("T3"), n("L3"), n("S1"), n("L1"), n("S2"), n("L2"), n("T1")}, 1}, // 1 bounce at L1
		{Path{n("T1"), n("L1"), n("T2"), n("L2"), n("T1")}, 1},                   // bounce at T2 (not loop-free but layered)
		{Path{n("T1"), n("L1"), n("S1"), n("L1")}, 0},                            // down only at end
		{Path{n("H1"), n("T1"), n("L1"), n("S1"), n("L3"), n("T3"), n("H9")}, 0}, // host to host
	}
	for i, cse := range cases {
		if got := cse.path.Bounces(g); got != cse.want {
			t.Errorf("case %d (%s): Bounces = %d, want %d", i, cse.path.String(g), got, cse.want)
		}
		if cse.path.ValleyFree(g) != (cse.want == 0) {
			t.Errorf("case %d: ValleyFree inconsistent", i)
		}
	}
}

func TestConcat(t *testing.T) {
	p := Path{1, 2, 3}
	q := Path{3, 4}
	got, ok := Concat(p, q)
	if !ok || !got.Equal(Path{1, 2, 3, 4}) {
		t.Fatalf("Concat = %v, %v", got, ok)
	}
	if _, ok := Concat(p, Path{9}); ok {
		t.Error("Concat with mismatched junction should fail")
	}
	if got, ok := Concat(nil, q); !ok || !got.Equal(q) {
		t.Error("Concat with empty prefix")
	}
	if got, ok := Concat(p, nil); !ok || !got.Equal(p) {
		t.Error("Concat with empty suffix")
	}
}

func TestShortestPath(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }

	// Same pod: T1 -> T2 via a leaf, 2 hops.
	p := ShortestPath(g, n("T1"), n("T2"))
	if p.Hops() != 2 {
		t.Errorf("T1->T2 hops = %d, want 2 (%s)", p.Hops(), p.String(g))
	}
	// Cross pod: T1 -> T3 via leaf, spine, leaf: 4 hops.
	p = ShortestPath(g, n("T1"), n("T3"))
	if p.Hops() != 4 {
		t.Errorf("T1->T3 hops = %d, want 4 (%s)", p.Hops(), p.String(g))
	}
	// Host to host cross-pod: 6 hops.
	p = ShortestPath(g, n("H1"), n("H9"))
	if p.Hops() != 6 {
		t.Errorf("H1->H9 hops = %d, want 6 (%s)", p.Hops(), p.String(g))
	}
	if got := Distance(g, n("H1"), n("H9")); got != 6 {
		t.Errorf("Distance = %d, want 6", got)
	}
	if got := Distance(g, n("T1"), n("T1")); got != 0 {
		t.Errorf("Distance self = %d", got)
	}
	// Hosts are not transit: H1 and H2 share T1, distance 2 not via each other.
	p = ShortestPath(g, n("H1"), n("H2"))
	if p.Hops() != 2 || p[1] != n("T1") {
		t.Errorf("H1->H2 = %s", p.String(g))
	}
	if p := ShortestPath(g, n("T1"), n("T1")); p.Hops() != 0 {
		t.Error("self path")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := topology.New()
	a := g.AddNode("A", topology.KindSwitch, -1)
	b := g.AddNode("B", topology.KindSwitch, -1)
	if p := ShortestPath(g, a, b); p != nil {
		t.Errorf("expected nil path, got %v", p)
	}
	if d := Distance(g, a, b); d != -1 {
		t.Errorf("Distance = %d, want -1", d)
	}
}

func TestAllShortestPaths(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	// T1->T2: via L1 or L2, exactly 2 paths.
	ps := AllShortestPaths(g, n("T1"), n("T2"), 0)
	if len(ps) != 2 {
		t.Fatalf("T1->T2 shortest paths = %d, want 2", len(ps))
	}
	// T1->T3: 2 leaves x 2 spines x 2 leaves = 8 paths of 4 hops.
	ps = AllShortestPaths(g, n("T1"), n("T3"), 0)
	if len(ps) != 8 {
		t.Fatalf("T1->T3 shortest paths = %d, want 8", len(ps))
	}
	for _, p := range ps {
		if p.Hops() != 4 {
			t.Errorf("path %s has %d hops", p.String(g), p.Hops())
		}
		if !p.LoopFree() || !p.Valid(g) {
			t.Errorf("path %s invalid", p.String(g))
		}
	}
	// Limit respected.
	ps = AllShortestPaths(g, n("T1"), n("T3"), 3)
	if len(ps) != 3 {
		t.Errorf("limited paths = %d, want 3", len(ps))
	}
	if got := AllShortestPaths(g, n("T1"), n("T1"), 0); len(got) != 1 || got[0].Hops() != 0 {
		t.Error("self all-shortest wrong")
	}
}

func TestEccentricity(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	// From a spine, the farthest switch is a ToR: 2 hops.
	if got := Eccentricity(g, g.MustLookup("S1")); got != 2 {
		t.Errorf("spine eccentricity = %d, want 2", got)
	}
	// From a ToR, farthest is another pod's ToR: 4 hops.
	if got := Eccentricity(g, g.MustLookup("T1")); got != 4 {
		t.Errorf("tor eccentricity = %d, want 4", got)
	}
}

func TestUpDownPaths(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }

	ps := UpDownPaths(g, n("T1"), n("T3"), 0)
	if len(ps) != 8 {
		t.Fatalf("up-down T1->T3 = %d paths, want 8", len(ps))
	}
	for _, p := range ps {
		if !p.ValleyFree(g) {
			t.Errorf("path %s not valley-free", p.String(g))
		}
		if p.Hops() != 4 {
			t.Errorf("path %s hops = %d", p.String(g), p.Hops())
		}
	}
	// Same pod.
	ps = UpDownPaths(g, n("T1"), n("T2"), 0)
	if len(ps) != 2 {
		t.Fatalf("up-down T1->T2 = %d paths, want 2", len(ps))
	}
	// Downward only: S1 -> T1 via L1 or L2.
	ps = UpDownPaths(g, n("S1"), n("T1"), 0)
	if len(ps) != 2 {
		t.Fatalf("up-down S1->T1 = %d paths, want 2", len(ps))
	}
	for _, p := range ps {
		if p.Hops() != 2 {
			t.Errorf("S1->T1 path %s", p.String(g))
		}
	}
	// Upward only: T1 -> S1.
	ps = UpDownPaths(g, n("T1"), n("S1"), 0)
	if len(ps) != 2 {
		t.Fatalf("up-down T1->S1 = %d paths, want 2", len(ps))
	}
	if got := UpDownDistance(g, n("T1"), n("T3")); got != 4 {
		t.Errorf("UpDownDistance = %d, want 4", got)
	}
	if got := UpDownPaths(g, n("T1"), n("T1"), 0); len(got) != 1 {
		t.Error("self up-down")
	}
	// Limit respected.
	if got := UpDownPaths(g, n("T1"), n("T3"), 2); len(got) != 2 {
		t.Errorf("limit ignored: %d", len(got))
	}
}

func TestUpDownPathsAfterFailure(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	// Fail L1-T1: up-down T3 -> T1 must avoid L1 on the down leg.
	g.FailLink(n("L1"), n("T1"))
	ps := UpDownPaths(g, n("T3"), n("T1"), 0)
	if len(ps) != 4 {
		t.Fatalf("after failure, up-down T3->T1 = %d paths, want 4", len(ps))
	}
	for _, p := range ps {
		for _, node := range p[1 : len(p)-1] {
			if node == n("L1") {
				// L1 can only appear if the path enters it downward and
				// leaves downward to T1 — impossible now.
				t.Errorf("path %s uses L1 despite failed L1-T1", p.String(g))
			}
		}
	}
}

func TestUpDownNoValleyFreeRoute(t *testing.T) {
	// Two ToRs in different pods with no spine: no valley-free route.
	g := topology.New()
	t1 := g.AddNode("T1", topology.KindToR, 1)
	t2 := g.AddNode("T2", topology.KindToR, 1)
	l1 := g.AddNode("L1", topology.KindLeaf, 2)
	l2 := g.AddNode("L2", topology.KindLeaf, 2)
	g.Connect(t1, l1)
	g.Connect(t2, l2)
	if ps := UpDownPaths(g, t1, t2, 0); ps != nil {
		t.Errorf("expected no valley-free route, got %d", len(ps))
	}
	if d := UpDownDistance(g, t1, t2); d != -1 {
		t.Errorf("UpDownDistance = %d, want -1", d)
	}
}

// Property: every up-down path is a shortest valley-free path — its hop
// count equals UpDownDistance and it is valley-free and loop-free.
func TestUpDownPathsProperty(t *testing.T) {
	cfg := topology.ClosConfig{Pods: 3, ToRsPerPod: 2, LeafsPerPod: 2, Spines: 3, HostsPerToR: 1}
	c, err := topology.NewClos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	f := func(ai, bi uint8) bool {
		a := c.ToRs[int(ai)%len(c.ToRs)]
		b := c.ToRs[int(bi)%len(c.ToRs)]
		if a == b {
			return true
		}
		d := UpDownDistance(g, a, b)
		for _, p := range UpDownPaths(g, a, b, 0) {
			if p.Hops() != d || !p.ValleyFree(g) || !p.LoopFree() || !p.Valid(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
