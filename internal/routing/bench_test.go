package routing

import (
	"testing"

	"repro/internal/topology"
)

func benchGraph(b *testing.B) *topology.Clos {
	b.Helper()
	c, err := topology.NewClos(topology.ClosConfig{
		Pods: 4, ToRsPerPod: 4, LeafsPerPod: 4, Spines: 8, HostsPerToR: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkShortestPath(b *testing.B) {
	c := benchGraph(b)
	g := c.Graph
	src, dst := c.Hosts[0], c.Hosts[len(c.Hosts)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ShortestPath(g, src, dst) == nil {
			b.Fatal("no path")
		}
	}
}

func BenchmarkUpDownPaths(b *testing.B) {
	c := benchGraph(b)
	g := c.Graph
	src, dst := c.ToRs[0], c.ToRs[len(c.ToRs)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(UpDownPaths(g, src, dst, 0)) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkComputeToHostsUpDown(b *testing.B) {
	c := benchGraph(b)
	for i := 0; i < b.N; i++ {
		ComputeToHosts(c.Graph, UpDown)
	}
}

func BenchmarkRouteWalk(b *testing.B) {
	c := benchGraph(b)
	tb := ComputeToHosts(c.Graph, UpDown)
	src, dst := c.Hosts[0], c.Hosts[len(c.Hosts)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tb.Route(src, dst, uint64(i), 0)
		if !res.Reached {
			b.Fatal("unreached")
		}
	}
}
