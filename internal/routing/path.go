// Package routing computes forwarding state and paths over topologies.
//
// It provides the two routing disciplines the Tagger paper reasons about:
// shortest-path routing (what BGP/OSPF converge to, valleys allowed after
// failures) and valley-free "up-down" routing for layered Clos/fat-tree
// fabrics. It also provides the failure-reaction machinery (recompute and
// per-entry overrides) used to reproduce the paper's bounce and
// routing-loop scenarios.
package routing

import (
	"strconv"
	"strings"

	"repro/internal/topology"
)

// Path is a node sequence from source to destination, inclusive.
type Path []topology.NodeID

// Hops returns the number of links traversed.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Src returns the first node, or InvalidNode for an empty path.
func (p Path) Src() topology.NodeID {
	if len(p) == 0 {
		return topology.InvalidNode
	}
	return p[0]
}

// Dst returns the last node, or InvalidNode for an empty path.
func (p Path) Dst() topology.NodeID {
	if len(p) == 0 {
		return topology.InvalidNode
	}
	return p[len(p)-1]
}

// LoopFree reports whether no node repeats. Paths are almost always a
// handful of hops, where the quadratic scan beats building a set; the
// set is kept for pathological lengths.
func (p Path) LoopFree() bool {
	if len(p) <= 24 {
		for i := 1; i < len(p); i++ {
			for j := 0; j < i; j++ {
				if p[i] == p[j] {
					return false
				}
			}
		}
		return true
	}
	seen := make(map[topology.NodeID]bool, len(p))
	for _, n := range p {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}

// Valid reports whether every consecutive pair is adjacent in g (failed
// links count as valid adjacency: a path computed before a failure is
// still a well-formed path).
func (p Path) Valid(g *topology.Graph) bool {
	for i := 1; i < len(p); i++ {
		if g.LinkBetween(p[i-1], p[i]) == nil {
			return false
		}
	}
	return true
}

// Bounces counts the down→up turns at intermediate nodes of a layered
// path: positions where the path was descending (or flat) in layer and
// then ascends. This is the paper's notion of a "bounce" (§4.2). Unlayered
// nodes (layer < 0) make the count meaningless; callers must only use this
// on layered topologies.
func (p Path) Bounces(g *topology.Graph) int {
	bounces := 0
	dirDown := false
	for i := 1; i < len(p); i++ {
		from, to := g.Node(p[i-1]).Layer, g.Node(p[i]).Layer
		switch {
		case to > from: // going up
			if dirDown {
				bounces++
			}
			dirDown = false
		case to < from: // going down
			dirDown = true
		}
	}
	return bounces
}

// ValleyFree reports whether the path never goes up again after going
// down, i.e. has zero bounces.
func (p Path) ValleyFree(g *topology.Graph) bool { return p.Bounces(g) == 0 }

// Equal reports whether two paths visit the same node sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string form usable as a map key for dedup.
// Node IDs are appended with strconv into a stack buffer, so the only
// allocation is the returned string itself.
func (p Path) Key() string {
	var a [96]byte
	buf := a[:0]
	for i, n := range p {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(n), 10)
	}
	return string(buf)
}

// String renders the path with node names, e.g. "T3>L4>S2>L1".
func (p Path) String(g *topology.Graph) string {
	var b strings.Builder
	for i, n := range p {
		if i > 0 {
			b.WriteByte('>')
		}
		b.WriteString(g.Node(n).Name)
	}
	return b.String()
}

// Concat joins p and q at a shared junction node (p's last == q's first)
// and returns the combined path, or ok=false if they do not share the
// junction.
func Concat(p, q Path) (Path, bool) {
	if len(p) == 0 {
		return q, true
	}
	if len(q) == 0 {
		return p, true
	}
	if p[len(p)-1] != q[0] {
		return nil, false
	}
	out := make(Path, 0, len(p)+len(q)-1)
	out = append(out, p...)
	out = append(out, q[1:]...)
	return out, true
}
