package routing

import (
	"sort"

	"repro/internal/topology"
)

// bfsTree holds BFS distances and shortest-path predecessors from one
// source over healthy links.
type bfsTree struct {
	dist    []int               // -1 = unreachable
	parents [][]topology.NodeID // all shortest-path predecessors
}

// bfsFrom runs BFS from src over healthy links. If switchOnly is set, host
// nodes are not expanded (they never forward), though they can terminate a
// path.
func bfsFrom(g *topology.Graph, src topology.NodeID, switchOnly bool) *bfsTree {
	n := g.NumNodes()
	t := &bfsTree{dist: make([]int, n), parents: make([][]topology.NodeID, n)}
	for i := range t.dist {
		t.dist[i] = -1
	}
	t.dist[src] = 0
	queue := []topology.NodeID{src}
	var nbuf []topology.NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if switchOnly && u != src && g.Node(u).Kind == topology.KindHost {
			continue // hosts do not forward
		}
		nbuf = g.Neighbors(u, nbuf[:0])
		for _, v := range nbuf {
			switch {
			case t.dist[v] == -1:
				t.dist[v] = t.dist[u] + 1
				t.parents[v] = append(t.parents[v], u)
				queue = append(queue, v)
			case t.dist[v] == t.dist[u]+1:
				t.parents[v] = append(t.parents[v], u)
			}
		}
	}
	// Deterministic parent order.
	for i := range t.parents {
		ps := t.parents[i]
		sort.Slice(ps, func(a, b int) bool { return ps[a] < ps[b] })
	}
	return t
}

// ShortestPath returns one shortest path from src to dst over healthy
// links, breaking ties deterministically by smallest node ID, or nil if
// dst is unreachable. Hosts are never used as transit.
func ShortestPath(g *topology.Graph, src, dst topology.NodeID) Path {
	if src == dst {
		return Path{src}
	}
	t := bfsFrom(g, src, true)
	if t.dist[dst] < 0 {
		return nil
	}
	rev := Path{dst}
	cur := dst
	for cur != src {
		cur = t.parents[cur][0]
		rev = append(rev, cur)
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AllShortestPaths enumerates every shortest path from src to dst over
// healthy links, up to limit paths (limit <= 0 means no limit). Hosts are
// never transit nodes.
func AllShortestPaths(g *topology.Graph, src, dst topology.NodeID, limit int) []Path {
	if src == dst {
		return []Path{{src}}
	}
	t := bfsFrom(g, src, true)
	if t.dist[dst] < 0 {
		return nil
	}
	var out []Path
	var walk func(cur topology.NodeID, suffix Path) bool
	walk = func(cur topology.NodeID, suffix Path) bool {
		suffix = append(suffix, cur)
		if cur == src {
			p := make(Path, len(suffix))
			for i, n := range suffix {
				p[len(suffix)-1-i] = n
			}
			out = append(out, p)
			return limit > 0 && len(out) >= limit
		}
		for _, par := range t.parents[cur] {
			if walk(par, suffix) {
				return true
			}
		}
		return false
	}
	walk(dst, make(Path, 0, t.dist[dst]+1))
	return out
}

// Distance returns the shortest hop count from src to dst over healthy
// links, or -1 if unreachable.
func Distance(g *topology.Graph, src, dst topology.NodeID) int {
	if src == dst {
		return 0
	}
	return bfsFrom(g, src, true).dist[dst]
}

// Eccentricity returns the largest finite shortest-path distance from src
// to any switch, used to compute lossless-route length bounds for Table 5.
func Eccentricity(g *topology.Graph, src topology.NodeID) int {
	t := bfsFrom(g, src, true)
	ecc := 0
	for _, sw := range g.Switches() {
		if d := t.dist[sw]; d > ecc {
			ecc = d
		}
	}
	return ecc
}
