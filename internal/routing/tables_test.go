package routing

import (
	"testing"

	"repro/internal/topology"
)

func TestShortestTablesDeliver(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	tb := ComputeToHosts(g, Shortest)
	for _, src := range c.Hosts {
		for _, dst := range c.Hosts {
			if src == dst {
				continue
			}
			res := tb.Route(src, dst, uint64(src)*1000003+uint64(dst), 0)
			if !res.Reached {
				t.Fatalf("route %s->%s failed: %+v", g.Node(src).Name, g.Node(dst).Name, res)
			}
			if !res.Path.LoopFree() {
				t.Fatalf("route %s->%s loops: %s", g.Node(src).Name, g.Node(dst).Name, res.Path.String(g))
			}
		}
	}
}

func TestUpDownTablesDeliverValleyFree(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	tb := ComputeToHosts(g, UpDown)
	for _, src := range c.Hosts {
		for _, dst := range c.Hosts {
			if src == dst {
				continue
			}
			for hash := uint64(0); hash < 4; hash++ {
				res := tb.Route(src, dst, hash*7919+uint64(src), 0)
				if !res.Reached {
					t.Fatalf("route %s->%s failed: %+v", g.Node(src).Name, g.Node(dst).Name, res)
				}
				if !res.Path.ValleyFree(g) {
					t.Fatalf("up-down route bounces: %s", res.Path.String(g))
				}
			}
		}
	}
}

func TestUpDownTablesShortest(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	tb := ComputeToHosts(g, UpDown)
	h1, h9 := g.MustLookup("H1"), g.MustLookup("H9")
	res := tb.Route(h1, h9, 42, 0)
	if res.Path.Hops() != 6 {
		t.Errorf("H1->H9 = %d hops, want 6 (%s)", res.Path.Hops(), res.Path.String(g))
	}
	h2 := g.MustLookup("H2")
	res = tb.Route(h1, h2, 42, 0)
	if res.Path.Hops() != 2 {
		t.Errorf("H1->H2 = %d hops, want 2 (%s)", res.Path.Hops(), res.Path.String(g))
	}
}

func TestShortestReconvergenceCreatesBounce(t *testing.T) {
	// The Fig-3 scenario: failing L1-T1 and recomputing shortest routes
	// makes traffic to T1's hosts that lands on L1 bounce back up.
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	tb := ComputeToHosts(g, Shortest)
	g.FailLink(n("L1"), n("T1"))
	tb.Recompute()
	// From S1, traffic for H1 (under T1) can no longer go S1->L1->T1.
	// Route from a pod-1 host to H1 must avoid the dead link and stay
	// loop-free.
	found := false
	for hash := uint64(0); hash < 32; hash++ {
		res := tb.Route(n("H9"), n("H1"), hash, 0)
		if !res.Reached {
			t.Fatalf("reroute failed: %+v", res)
		}
		for i := 1; i < len(res.Path); i++ {
			if res.Path[i-1] == n("L1") && res.Path[i] == n("T1") {
				t.Fatalf("route uses failed link: %s", res.Path.String(g))
			}
		}
		if res.Path.Bounces(g) > 0 {
			found = true
		}
	}
	// With ECMP someone will land on L1 and bounce; if all 32 hashes
	// avoided L1 the test is vacuous, which deterministic hashing makes
	// effectively impossible on this small fabric.
	if !found {
		t.Log("warning: no hash produced a bounced path; ECMP avoided L1 entirely")
	}
}

func TestOverrideAndLoopDetection(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	tb := ComputeToHosts(g, UpDown)
	// Install the Fig-11 routing loop: T1 sends H6-bound traffic to L1,
	// L1 sends it back to T1.
	tb.OverrideNextNode(n("T1"), n("H6"), n("L1"))
	tb.OverrideNextNode(n("L1"), n("H6"), n("T1"))
	res := tb.Route(n("H1"), n("H6"), 1, 0)
	if !res.Looped {
		t.Fatalf("expected loop, got %+v (%s)", res, res.Path.String(g))
	}
}

func TestOverrideBlackhole(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	n := func(name string) topology.NodeID { return g.MustLookup(name) }
	tb := ComputeToHosts(g, UpDown)
	tb.Override(n("T1"), n("H9")) // remove entry
	res := tb.Route(n("H1"), n("H9"), 1, 0)
	if !res.Dropped {
		t.Fatalf("expected drop, got %+v", res)
	}
}

func TestOverrideNextNodePanicsOnNonAdjacent(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	tb := ComputeToHosts(g, UpDown)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.OverrideNextNode(g.MustLookup("T1"), g.MustLookup("H9"), g.MustLookup("S1"))
}

func TestTablesAccessors(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	tb := ComputeToHosts(g, Shortest)
	if tb.Graph() != g {
		t.Error("Graph accessor")
	}
	if len(tb.Destinations()) != len(c.Hosts) {
		t.Error("Destinations accessor")
	}
	if tb.Entries() == 0 {
		t.Error("no entries installed")
	}
	if got := tb.NextHops(g.MustLookup("S1"), g.MustLookup("H1")); len(got) == 0 {
		t.Error("S1 should have a route to H1")
	}
}

func TestECMPSpreads(t *testing.T) {
	c := paperClos(t)
	g := c.Graph
	tb := ComputeToHosts(g, UpDown)
	h1, h9 := g.MustLookup("H1"), g.MustLookup("H9")
	seen := map[string]bool{}
	for hash := uint64(0); hash < 64; hash++ {
		res := tb.Route(h1, h9, hash, 0)
		seen[res.Path.Key()] = true
	}
	if len(seen) < 2 {
		t.Errorf("ECMP produced only %d distinct paths over 64 hashes", len(seen))
	}
}

func TestTablesOnFatTree(t *testing.T) {
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph
	tb := ComputeToHosts(g, UpDown)
	// Every host pair is reachable valley-free.
	hosts := ft.Hosts
	for i := 0; i < len(hosts); i += 3 {
		for j := 0; j < len(hosts); j += 5 {
			if hosts[i] == hosts[j] {
				continue
			}
			res := tb.Route(hosts[i], hosts[j], uint64(i*31+j), 0)
			if !res.Reached || !res.Path.ValleyFree(g) {
				t.Fatalf("fat-tree route %d->%d: %+v (%s)", i, j, res, res.Path.String(g))
			}
		}
	}
}
