package trace

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Config tunes a Writer. The zero value picks sensible defaults.
type Config struct {
	// RingSize is the ring capacity in 32-byte slots (rounded up to a
	// power of two; default 65536 ≈ 2 MB). The ring must absorb one
	// FlushInterval of peak event rate or records are dropped.
	RingSize int
	// FlushInterval is how often the writer goroutine drains the ring
	// (default 1ms). The final drain on Close is always complete.
	FlushInterval time.Duration
	// TickHz is the tick rate stamped into the header (default
	// TickHzNanos: ticks are nanoseconds).
	TickHz uint64
	// Dropped, when non-nil, mirrors the dropped-record count into a
	// telemetry counter so live soaks expose capture loss on /metrics.
	Dropped *telemetry.Counter
}

// Writer captures fixed-width entries from a single producer goroutine
// and streams them to an io.Writer from a background goroutine. Emit
// and Intern are wait-free and allocation-free in steady state (a
// first-seen string allocates once for its table entry); neither ever
// blocks on the sink. Close stops the drainer, flushes, and reports the
// first sink error.
type Writer struct {
	ring *ring
	out  *bufio.Writer

	// strs interns strings; producer-only.
	strs   map[string]internedString
	nextID uint32

	ctr *telemetry.Counter

	stop    chan struct{}
	done    chan struct{}
	stopped sync.Once

	mu  sync.Mutex
	err error
}

// internedString tracks one interned string. defined=false means its
// KindStrDef record was dropped by a full ring; the next Intern of the
// same string retries so a long trace heals its table.
type internedString struct {
	id      uint32
	defined bool
}

// maxStrLen caps interned string bytes at what Aux can carry.
const maxStrLen = 1<<16 - 1

// NewWriter writes the file header synchronously (so a bad sink fails
// fast) and starts the drain goroutine. Callers must Close.
func NewWriter(w io.Writer, cfg Config) (*Writer, error) {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1 << 16
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Millisecond
	}
	if cfg.TickHz == 0 {
		cfg.TickHz = TickHzNanos
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [HeaderSize]byte
	marshalHeader(&hdr, cfg.TickHz)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	tw := &Writer{
		ring: newRing(cfg.RingSize),
		out:  bw,
		strs: make(map[string]internedString),
		ctr:  cfg.Dropped,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go tw.run(cfg.FlushInterval)
	return tw, nil
}

// Intern returns the stable ID for s, assigning one and emitting its
// definition record on first sight. The empty string is ID 0 and never
// emitted. Single producer only.
func (w *Writer) Intern(s string) uint32 {
	if s == "" {
		return 0
	}
	if e, ok := w.strs[s]; ok && e.defined {
		return e.id
	}
	e, ok := w.strs[s]
	if !ok {
		w.nextID++
		e = internedString{id: w.nextID}
	}
	if len(s) > maxStrLen {
		s = s[:maxStrLen]
	}
	k := 1 + strDefSlots(len(s))
	start, fit := w.ring.reserve(k)
	if !fit {
		// Definition lost; remember the ID and retry on next sight.
		w.strs[s] = e
		w.countDrop()
		return e.id
	}
	def := Entry{Kind: KindStrDef, A: e.id, Aux: uint16(len(s))}
	def.marshal(w.ring.slot(start))
	for i, off := 1, 0; off < len(s); i, off = i+1, off+EntrySize {
		slot := w.ring.slot(start + uint64(i))
		*slot = [EntrySize]byte{}
		copy(slot[:], s[off:])
	}
	w.ring.publish(k)
	e.defined = true
	w.strs[s] = e
	return e.id
}

// Emit captures one entry, dropping (and counting) it when the ring is
// full. Single producer only.
func (w *Writer) Emit(e Entry) {
	start, fit := w.ring.reserve(1)
	if !fit {
		w.countDrop()
		return
	}
	e.marshal(w.ring.slot(start))
	w.ring.publish(1)
}

// EmitDeadlock captures a deadlock onset: the onset entry plus one
// cycle-edge entry per interned edge ID, as one all-or-nothing record.
func (w *Writer) EmitDeadlock(tick int64, node uint32, edges []uint32) {
	k := 1 + len(edges)
	start, fit := w.ring.reserve(k)
	if !fit {
		w.countDrop()
		return
	}
	on := Entry{Tick: tick, Kind: KindDeadlock, A: node, Aux: uint16(len(edges))}
	on.marshal(w.ring.slot(start))
	for i, id := range edges {
		ce := Entry{Tick: tick, Kind: KindCycleEdge, C: id}
		ce.marshal(w.ring.slot(start + 1 + uint64(i)))
	}
	w.ring.publish(k)
}

// Dropped returns how many records were lost — to ring backpressure or
// discarded after a sink write error.
func (w *Writer) Dropped() int64 { return w.ring.dropped.Load() }

func (w *Writer) countDrop() {
	w.ring.drop()
	w.ctr.Inc()
}

// run drains the ring on a ticker until stopped, then drains the rest.
func (w *Writer) run(flush time.Duration) {
	defer close(w.done)
	tick := time.NewTicker(flush)
	defer tick.Stop()
	buf := make([]byte, 0, 4096*EntrySize)
	for {
		select {
		case <-w.stop:
			w.drainAll(buf)
			return
		case <-tick.C:
			buf = w.drainOnce(buf)
		}
	}
}

// drainOnce moves every currently-pending slot to the sink.
func (w *Writer) drainOnce(buf []byte) []byte {
	for {
		buf = w.ring.drain(buf[:0], cap(buf)/EntrySize)
		if len(buf) == 0 {
			return buf
		}
		w.sink(buf)
	}
}

func (w *Writer) drainAll(buf []byte) { w.drainOnce(buf) }

// sink writes one drained batch, recording the first error; after an
// error, batches are discarded and counted so the producer never stalls
// and the loss is visible.
func (w *Writer) sink(buf []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.ring.dropped.Add(int64(len(buf) / EntrySize))
		w.ctr.Add(int64(len(buf) / EntrySize))
		return
	}
	if _, err := w.out.Write(buf); err != nil {
		w.err = err
		w.ring.dropped.Add(int64(len(buf) / EntrySize))
		w.ctr.Add(int64(len(buf) / EntrySize))
	}
}

// Close drains outstanding entries, flushes the sink, and returns the
// first write error (if any). The Writer must not be used afterwards.
func (w *Writer) Close() error {
	w.stopped.Do(func() { close(w.stop) })
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.err = w.out.Flush()
	return w.err
}
