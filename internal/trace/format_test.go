package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// header returns a valid 16-byte header with the given tick rate.
func header(tickHz uint64) []byte {
	var b [HeaderSize]byte
	marshalHeader(&b, tickHz)
	return b[:]
}

// rawEntry marshals one entry for hand-built streams.
func rawEntry(e Entry) []byte {
	var b [EntrySize]byte
	e.marshal(&b)
	return b[:]
}

func TestHeaderRoundTrip(t *testing.T) {
	h, err := unmarshalHeader(header(TickHzNanos))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.TickHz != TickHzNanos {
		t.Fatalf("header = %+v", h)
	}
}

func TestHeaderBadMagic(t *testing.T) {
	b := header(TickHzNanos)
	b[0] = 'X'
	if _, err := unmarshalHeader(b); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	// JSONL fed to the binary reader is the realistic mistake.
	if _, err := NewReader(bytes.NewReader([]byte(`{"t":1,"kind":"pause","node":"A","peer":"B"}`))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("jsonl err = %v, want ErrBadMagic", err)
	}
}

func TestHeaderEndianSwapped(t *testing.T) {
	b := header(TickHzNanos)
	// Rewrite the magic big-endian: a byte-swapped producer.
	binary.BigEndian.PutUint32(b[0:4], Magic)
	if _, err := unmarshalHeader(b); !errors.Is(err, ErrEndianSwapped) {
		t.Fatalf("err = %v, want ErrEndianSwapped", err)
	}
}

func TestHeaderVersionMismatch(t *testing.T) {
	b := header(TickHzNanos)
	binary.LittleEndian.PutUint32(b[4:8], Version+7)
	_, err := unmarshalHeader(b)
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != Version+7 {
		t.Fatalf("err = %v, want VersionError{%d}", err, Version+7)
	}
	binary.LittleEndian.PutUint32(b[4:8], 0)
	if _, err := unmarshalHeader(b); !errors.As(err, &ve) {
		t.Fatalf("version 0 err = %v, want VersionError", err)
	}
}

func TestHeaderTruncated(t *testing.T) {
	for _, n := range []int{0, 1, HeaderSize - 1} {
		if _, err := NewReader(bytes.NewReader(header(TickHzNanos)[:n])); !errors.Is(err, ErrTruncated) {
			t.Errorf("%d-byte stream: err = %v, want ErrTruncated", n, err)
		}
	}
}

func TestReaderRejectsZeroTickRate(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(header(0))); err == nil {
		t.Fatal("zero tick rate accepted")
	}
}

func TestEntryRoundTrip(t *testing.T) {
	in := Entry{Tick: -5, Kind: KindDrop, Prio: 3, Aux: 77, A: 1, B: 2, C: 3, Depth: 1 << 40}
	if got := UnmarshalEntry(rawEntry(in)); got != in {
		t.Fatalf("round trip: %+v != %+v", got, in)
	}
}

// TestTruncatedEntryTail: a stream that ends mid-entry (crashed writer)
// yields everything before the tear, counts it, and flags truncation.
func TestTruncatedEntryTail(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(TickHzNanos))
	buf.Write(rawEntry(Entry{Tick: 1, Kind: KindPause, Prio: 1}))
	buf.Write(rawEntry(Entry{Tick: 2, Kind: KindResume, Prio: 1})[:EntrySize-5])

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Next()
	if err != nil || ev.Kind != "pause" {
		t.Fatalf("first event = %+v, %v", ev, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("tail err = %v, want io.EOF", err)
	}
	if !r.Truncated() || r.Skipped() != 1 {
		t.Errorf("truncated=%v skipped=%d, want true/1", r.Truncated(), r.Skipped())
	}
}

// TestTickRateRescaling: a microsecond-tick producer reads back in
// nanoseconds.
func TestTickRateRescaling(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(1e6))
	buf.Write(rawEntry(Entry{Tick: 1500, Kind: KindPause}))
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.T != 1500*1000 {
		t.Fatalf("T = %d, want %d", ev.T, 1500*1000)
	}
}

// TestReaderSkipsGarbageKinds: unknown kinds and orphaned cycle edges
// cost one entry each, never the stream.
func TestReaderSkipsGarbageKinds(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(TickHzNanos))
	buf.Write(rawEntry(Entry{Tick: 1, Kind: Kind(200)}))          // unknown
	buf.Write(rawEntry(Entry{Tick: 2, Kind: KindCycleEdge, C: 9})) // orphan
	buf.Write(rawEntry(Entry{Tick: 3, Kind: KindDemote, A: 0, B: 0}))

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Next()
	if err != nil || ev.Kind != "demote" || ev.T != 3 {
		t.Fatalf("event = %+v, %v", ev, err)
	}
	if r.Skipped() != 2 {
		t.Errorf("skipped = %d, want 2", r.Skipped())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

// TestUndefinedStringRendersPlaceholder: a reference whose definition
// record was dropped decodes as "?" instead of failing the stream.
func TestUndefinedStringRendersPlaceholder(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(TickHzNanos))
	buf.Write(rawEntry(Entry{Tick: 1, Kind: KindPause, A: 42, B: 43, Prio: 2}))
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Node != "?" || ev.Peer != "?" {
		t.Fatalf("event = %+v, want ? placeholders", ev)
	}
}

// TestStrDefTruncatedPayload: a tear inside a definition's payload ends
// the stream cleanly.
func TestStrDefTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(TickHzNanos))
	buf.Write(rawEntry(Entry{Kind: KindStrDef, A: 1, Aux: 40})) // needs 2 slots
	buf.Write(bytes.Repeat([]byte{'x'}, EntrySize))             // only 1 present
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	if !r.Truncated() {
		t.Error("truncation not flagged")
	}
}
