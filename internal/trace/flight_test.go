package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// dumpAll drains a reader, returning the events and final error.
func dumpAll(t *testing.T, r *Reader) []Event {
	t.Helper()
	var evs []Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
}

// TestRecorderRoundTrip: events recorded through the flight ring, plus
// a snapshot, decode back intact — including strings interned long
// before the dump.
func TestRecorderRoundTrip(t *testing.T) {
	rec := NewRecorder(64)
	a, b := rec.Intern("T0"), rec.Intern("T1")
	flow, hr := rec.Intern("f0"), rec.Intern("headroom")
	rec.Record(Entry{Tick: 10, Kind: KindPause, Prio: 1, A: a, B: b, Depth: 96})
	rec.Record(Entry{Tick: 20, Kind: KindDrop, A: b, B: flow, C: hr})

	trig := rec.Intern("deadlock-onset")
	snap := []Entry{
		SnapStartEntry(25, a, trig),
		WaitQueueEntry(0, a, b, 1, 4096, 4),
		WaitQueueEntry(1, b, a, 1, 2048, 2),
		WaitEdgeEntry(0, 1),
		WaitEdgeEntry(1, 0),
		QueueStateEntry(a, b, 1, QFlagPausedByPeer|QFlagTxBusy, 512, 4096),
		RuleDefEntry(3, rec.Intern("tag 1 in2 out4 => 1")),
		RuleMatchEntry(a, flow, b, 1, 3, 4096),
		DetTagEntry(a, b, 2, 1, 0x8000_0001_0002_0011, DetFlagOrigin),
	}
	snap = append(snap, SnapEndEntry(25, rec.Overwrites(), len(snap)+1))

	var buf bytes.Buffer
	if err := rec.Dump(&buf, 0, snap); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := dumpAll(t, r)
	if len(evs) != 2 || evs[0].Kind != "pause" || evs[0].Node != "T0" ||
		evs[1].Kind != "drop" || evs[1].Reason != "headroom" {
		t.Fatalf("events = %+v", evs)
	}
	if r.Skipped() != 0 || r.Truncated() {
		t.Fatalf("skipped=%d truncated=%v", r.Skipped(), r.Truncated())
	}
	s := r.Snapshot()
	if s == nil {
		t.Fatal("no snapshot decoded")
	}
	if !s.Complete || s.Trigger != "deadlock-onset" || s.Node != "T0" || s.Tick != 25 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.WaitQueues) != 2 || s.WaitQueues[1].Peer != "T0" || s.WaitQueues[0].Bytes != 4096 {
		t.Fatalf("wait queues = %+v", s.WaitQueues)
	}
	if len(s.WaitEdges) != 2 || s.WaitEdges[0] != [2]int{0, 1} {
		t.Fatalf("wait edges = %+v", s.WaitEdges)
	}
	if len(s.Queues) != 1 || s.Queues[0].Flags != QFlagPausedByPeer|QFlagTxBusy ||
		s.Queues[0].IngressBytes != 512 || s.Queues[0].EgressBytes != 4096 {
		t.Fatalf("queues = %+v", s.Queues)
	}
	if len(s.RuleDefs) != 1 || s.RuleDefs[0] != (SnapRuleDef{ID: 3, Desc: "tag 1 in2 out4 => 1"}) {
		t.Fatalf("rule defs = %+v", s.RuleDefs)
	}
	if len(s.RuleMatches) != 1 || s.RuleMatches[0].RuleID != 3 || s.RuleMatches[0].Flow != "f0" {
		t.Fatalf("rule matches = %+v", s.RuleMatches)
	}
	dt := s.DetTags
	if len(dt) != 1 || dt[0].Tag != 0x8000_0001_0002_0011 || !dt[0].Origin || dt[0].Carry || dt[0].Port != 2 {
		t.Fatalf("det tags = %+v", dt)
	}
	if s.Records != 10 || s.Overwrites != 0 {
		t.Fatalf("records=%d overwrites=%d", s.Records, s.Overwrites)
	}
}

// TestRecorderOverwrite: a lapped ring keeps the newest entries, counts
// the shed ones, and still resolves strings interned before the lap.
func TestRecorderOverwrite(t *testing.T) {
	rec := NewRecorder(64)
	node := rec.Intern("sw-early") // defined before the ring laps
	for i := 0; i < 200; i++ {
		rec.Record(Entry{Tick: int64(i), Kind: KindPause, Prio: 1, A: node})
	}
	if rec.Len() != 64 {
		t.Fatalf("len = %d, want 64", rec.Len())
	}
	if rec.Overwrites() != 200-64 {
		t.Fatalf("overwrites = %d, want %d", rec.Overwrites(), 200-64)
	}
	var buf bytes.Buffer
	if err := rec.Dump(&buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := dumpAll(t, r)
	if len(evs) != 64 || evs[0].T != 200-64 || evs[63].T != 199 {
		t.Fatalf("window = %d events, [%d..%d]", len(evs), evs[0].T, evs[len(evs)-1].T)
	}
	if evs[0].Node != "sw-early" {
		t.Fatalf("node = %q: string table lost to the lap", evs[0].Node)
	}
}

// TestRecorderWindowTrim: Dump's fromTick drops history older than the
// incident window.
func TestRecorderWindowTrim(t *testing.T) {
	rec := NewRecorder(64)
	for i := 0; i < 10; i++ {
		rec.Record(Entry{Tick: int64(i * 100), Kind: KindResume, Prio: 1})
	}
	var buf bytes.Buffer
	if err := rec.Dump(&buf, 500, nil); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := dumpAll(t, r)
	if len(evs) != 5 || evs[0].T != 500 {
		t.Fatalf("window = %+v", evs)
	}
}

// TestRecorderZeroAllocRecordPath gates the recorder's steady-state
// cost: recording an event whose strings are already interned must not
// allocate.
func TestRecorderZeroAllocRecordPath(t *testing.T) {
	rec := NewRecorder(1 << 10)
	node, peer := rec.Intern("sw0"), rec.Intern("sw1")
	e := Entry{Tick: 1, Kind: KindPause, Prio: 1, A: node, B: peer, Depth: 4096}
	if avg := testing.AllocsPerRun(1000, func() {
		e.A, e.B = rec.Intern("sw0"), rec.Intern("sw1")
		rec.Record(e)
	}); avg != 0 {
		t.Fatalf("allocs/record = %v, want 0", avg)
	}
	_ = node
}

// TestReaderEmptyFile: an empty stream cannot even produce a header —
// ErrTruncated, not a silent success. (Satellite: reader edge cases.)
func TestReaderEmptyFile(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// TestReaderHeaderOnlyFile: a header with zero entries is a valid,
// empty trace — io.EOF with nothing skipped and no truncation.
func TestReaderHeaderOnlyFile(t *testing.T) {
	r, err := NewReader(bytes.NewReader(header(TickHzNanos)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	if r.Truncated() || r.Skipped() != 0 {
		t.Fatalf("truncated=%v skipped=%d, want clean EOF", r.Truncated(), r.Skipped())
	}
}

// TestReaderSnapshotTruncatedMidEntry: a capture torn inside a snapshot
// record must surface via Truncated(), not read as a complete incident.
func TestReaderSnapshotTruncatedMidEntry(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(TickHzNanos))
	buf.Write(rawEntry(SnapStartEntry(5, 0, 0)))
	buf.Write(rawEntry(WaitQueueEntry(0, 0, 0, 1, 4096, 4))[:EntrySize-7])

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	if !r.Truncated() || r.Skipped() != 1 {
		t.Fatalf("truncated=%v skipped=%d, want true/1", r.Truncated(), r.Skipped())
	}
	s := r.Snapshot()
	if s == nil || s.Complete {
		t.Fatalf("snapshot = %+v, want partial (no SnapEnd)", s)
	}
}

// TestReaderOrphanSnapshotRecords: snapshot records with no preceding
// SnapStart (head of the section lost) are skipped and counted.
func TestReaderOrphanSnapshotRecords(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(TickHzNanos))
	buf.Write(rawEntry(WaitQueueEntry(0, 0, 0, 1, 64, 1)))
	buf.Write(rawEntry(SnapEndEntry(9, 0, 2)))
	buf.Write(rawEntry(Entry{Tick: 9, Kind: KindPause, Prio: 1}))

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := dumpAll(t, r)
	if len(evs) != 1 || evs[0].Kind != "pause" {
		t.Fatalf("events = %+v", evs)
	}
	if r.Skipped() != 2 {
		t.Fatalf("skipped = %d, want 2", r.Skipped())
	}
	if r.Snapshot() != nil {
		t.Fatalf("snapshot = %+v, want nil", r.Snapshot())
	}
}

// TestReaderWaitQueueIndexGap: a wait-queue record whose index does not
// extend the vertex list densely (lost predecessor) is rejected rather
// than silently renumbered — edge indices must stay meaningful.
func TestReaderWaitQueueIndexGap(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(TickHzNanos))
	buf.Write(rawEntry(SnapStartEntry(5, 0, 0)))
	buf.Write(rawEntry(WaitQueueEntry(1, 0, 0, 1, 64, 1))) // index 0 missing
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dumpAll(t, r)
	if r.Skipped() != 1 || len(r.Snapshot().WaitQueues) != 0 {
		t.Fatalf("skipped=%d queues=%+v", r.Skipped(), r.Snapshot().WaitQueues)
	}
}
